package main

import (
	"fmt"

	crest "github.com/crestlab/crest"
)

// runCrossRun is an extension experiment beyond the paper's figures: the
// paper's data model distinguishes *runs* of an application (§II), and a
// deployed estimator is trained on past runs and applied to new ones. We
// train per field on run A (one generator seed) and predict the same
// field of run B (a different seed) — in-field but out-of-run transfer,
// sitting between the paper's in-sample and out-of-sample protocols.
func runCrossRun(cfg runConfig) error {
	nz, ny, nx := cfg.sizes()
	runA := crest.HurricaneDataset(crest.DataOptions{NZ: nz, NY: ny, NX: nx, Seed: cfg.seed})
	runB := crest.HurricaneDataset(crest.DataOptions{NZ: nz, NY: ny, NX: nx, Seed: cfg.seed + 1000})
	comp := crest.MustCompressor("szinterp")
	eps := 1e-3
	cache := crest.NewCRCache()
	fields := []string{"CLOUD", "PRECIP", "TC", "W", "QRAIN", "QVAPOR"}
	fmt.Printf("%-8s %12s %12s\n", "field", "in-run", "cross-run")
	var csvRows [][]string
	for _, name := range fields {
		m := crest.NewProposedMethod(crest.EstimatorConfig{})
		// In-run reference: k-fold within run A.
		q, _, err := crest.KFoldEvaluate(m, runA.Field(name).Buffers, comp, eps, 5, cfg.seed, cache)
		if err != nil {
			return err
		}
		// Cross-run: train on all of run A's field, predict run B's.
		m2 := crest.NewProposedMethod(crest.EstimatorConfig{})
		cross, _, err := crest.OutOfSampleEvaluate(m2, runA.Field(name).Buffers, runB.Field(name).Buffers, comp, eps, cache)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %11.2f%% %11.2f%%\n", name, q.Q50, cross)
		csvRows = append(csvRows, []string{name, f64(q.Q50), f64(cross)})
	}
	if err := cfg.writeCSV("crossrun_medape", []string{"field", "inrun_medape_pct", "crossrun_medape_pct"}, csvRows); err != nil {
		return err
	}
	fmt.Println("(a model trained on one run transfers to a fresh run of the same")
	fmt.Println(" simulation with accuracy between in-sample and out-of-field)")
	return nil
}
