// Command experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic substrate. Each experiment prints
// the same rows/series the paper reports; EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
// Usage:
//
//	experiments -run fig1|fig2|fig3|fig4|fig5|fig6|fig7|table2|table3|
//	            usecaseB|usecaseC|training|model-a|all [-seed N] [-quick]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

type experiment struct {
	name string
	desc string
	run  func(cfg runConfig) error
}

type runConfig struct {
	seed   int64
	quick  bool
	outDir string
}

// writeCSV emits one experiment artifact as CSV when -out is set; the
// printed tables remain the primary output.
func (c runConfig) writeCSV(name string, header []string, rows [][]string) error {
	if c.outDir == "" {
		return nil
	}
	if err := os.MkdirAll(c.outDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(c.outDir, name+".csv"))
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		f.Close()
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	fmt.Printf("[wrote %s]\n", filepath.Join(c.outDir, name+".csv"))
	return f.Close()
}

// f64 formats a float for CSV cells.
func f64(v float64) string { return fmt.Sprintf("%g", v) }

var experiments = []experiment{
	{"fig1", "Fig. 1: leave-one-predictor-out ablation (hurricane, szinterp)", runFig1},
	{"fig2", "Fig. 2: latent clustering of (CR, features) via PCA", runFig2},
	{"fig3", "Fig. 3: use-case-A estimate error injection", runFig3},
	{"fig4", "Fig. 4: accuracy summary across 4 datasets x 3 compressors x 2 bounds", runFig4},
	{"fig5", "Fig. 5: multi-field training curves in similarity order", runFig5},
	{"fig6", "Fig. 6: in/out-of-sample predicted-vs-actual with conformal CIs", runFig6},
	{"fig7", "Fig. 7: use-case-A speedup, 5 compressors x 4 methods", runFig7},
	{"table2", "Table II: accuracy comparison vs Underwood/Tao/Lu", runTable2},
	{"table3", "Table III: field-similarity matrix (hurricane)", runTable3},
	{"usecaseB", "Sec. V-D: selection inversion probabilities + empirical", runUseCaseB},
	{"usecaseC", "Sec. V-E: parallel aggregated write, model + empirical", runUseCaseC},
	{"training", "Sec. VI-E: minimal training set + training speedup", runTraining},
	{"model-a", "Sec. V-C/VI-G: analytic use-case-A speedup worked example", runModelA},
	{"crossrun", "Extension: train on one run, predict a fresh run (out-of-run)", runCrossRun},
}

func main() {
	var (
		run   = flag.String("run", "all", "experiment id or 'all'")
		seed  = flag.Int64("seed", 1, "deterministic experiment seed")
		quick = flag.Bool("quick", false, "reduced sizes for a fast pass")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		out   = flag.String("out", "", "also write per-experiment CSV artifacts into this directory")
	)
	flag.Parse()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-10s %s\n", e.name, e.desc)
		}
		return
	}
	cfg := runConfig{seed: *seed, quick: *quick, outDir: *out}
	names := map[string]experiment{}
	for _, e := range experiments {
		names[e.name] = e
	}
	var todo []experiment
	if *run == "all" {
		todo = experiments
	} else {
		e, ok := names[*run]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *run)
			os.Exit(2)
		}
		todo = []experiment{e}
	}
	for _, e := range todo {
		fmt.Printf("=== %s: %s ===\n", e.name, e.desc)
		start := time.Now()
		if err := e.run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %v ---\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
}

// sizes returns the dataset dimensions for the run mode.
func (c runConfig) sizes() (nz, ny, nx int) {
	if c.quick {
		return 16, 48, 48
	}
	return 24, 96, 96
}

// sortedKeys returns map keys in sorted order for deterministic printing.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
