package main

import (
	"fmt"
	"math"

	crest "github.com/crestlab/crest"
)

func runTable2(cfg runConfig) error {
	nz, ny, nx := cfg.sizes()
	hur := crest.HurricaneDataset(crest.DataOptions{NZ: nz, NY: ny, NX: nx, Seed: cfg.seed})
	comp := crest.MustCompressor("szinterp")
	cache := crest.NewCRCache()

	// --- Out-of-sample worst-field comparison (top half of Table II) ---
	sim, err := crest.FieldSimilarity(hur.Fields, crest.PredictorConfig{})
	if err != nil {
		return err
	}
	eps := 1e-3
	type worst struct {
		field         string
		q10, q50, q90 float64
	}
	fmt.Println("Out-of-Sample (hurricane, train on 4 most similar fields, szinterp, 1e-3):")
	fmt.Printf("%-10s %-10s %12s %12s %12s\n", "method", "worst", "10%", "MedAPE", "90%")
	methods := map[string]func() crest.Method{
		"underwood": func() crest.Method { return crest.NewUnderwoodMethod() },
		"proposed":  func() crest.Method { return crest.NewProposedMethod(crest.EstimatorConfig{}) },
	}
	var t2CSV [][]string
	for _, name := range sortedKeys(methods) {
		m := methods[name]()
		w := worst{q50: -1}
		for ti, target := range sim.Fields {
			var trainBufs []*crest.Buffer
			for _, oi := range sim.Order(ti)[:4] {
				trainBufs = append(trainBufs, hur.Field(sim.Fields[oi]).Buffers...)
			}
			_, pairs, err := crest.OutOfSampleEvaluate(m, trainBufs, hur.Field(target).Buffers, comp, eps, cache)
			if err != nil {
				return fmt.Errorf("%s target %s: %w", name, target, err)
			}
			q10, q50, q90 := groupedMedAPE(pairs)
			if q50 > w.q50 {
				w = worst{field: target, q10: q10, q50: q50, q90: q90}
			}
		}
		fmt.Printf("%-10s %-10s %12.4g %12.4g %12.4g\n", name, w.field, w.q10, w.q50, w.q90)
		t2CSV = append(t2CSV, []string{"out-of-sample-worst", name, w.field, f64(w.q10), f64(w.q50), f64(w.q90)})
	}

	// --- In-sample on Miranda VX at 1e-6 (bottom half of Table II) ---
	mir := crest.MirandaDataset(crest.DataOptions{NZ: nz, NY: ny, NX: nx, Seed: cfg.seed})
	vx := mir.Field("velocityx")
	fmt.Println("\nIn-Sample (miranda velocityx, szinterp, 1e-6):")
	fmt.Printf("%-10s %12s %12s %12s\n", "method", "10%", "MedAPE", "90%")
	inMethods := []crest.Method{
		crest.NewUnderwoodMethod(),
		crest.NewTaoMethod(),
		crest.NewLuMethod(),
		crest.NewProposedMethod(crest.EstimatorConfig{}),
	}
	for _, m := range inMethods {
		q, _, err := crest.KFoldEvaluate(m, vx.Buffers, comp, 1e-6, 5, cfg.seed, cache)
		if err != nil {
			return fmt.Errorf("%s: %w", m.Name(), err)
		}
		fmt.Printf("%-10s %12.4g %12.4g %12.4g\n", m.Name(), q.Q10, q.Q50, q.Q90)
		t2CSV = append(t2CSV, []string{"in-sample-miranda-vx", m.Name(), "", f64(q.Q10), f64(q.Q50), f64(q.Q90)})
	}
	if err := cfg.writeCSV("table2_comparison", []string{"section", "method", "worst_field", "q10", "medape", "q90"}, t2CSV); err != nil {
		return err
	}
	fmt.Println("(expected shape: proposed ≤ underwood ≪ tao < lu in-sample;")
	fmt.Println(" out-of-sample, underwood's unguarded extrapolation blows up while")
	fmt.Println(" proposed stays bounded)")
	return nil
}

func runTable3(cfg runConfig) error {
	nz, ny, nx := cfg.sizes()
	ds := crest.HurricaneDataset(crest.DataOptions{NZ: nz, NY: ny, NX: nx, Seed: cfg.seed})
	sim, err := crest.FieldSimilarity(ds.Fields, crest.PredictorConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("%-8s", "")
	for _, f := range sim.Fields {
		fmt.Printf(" %8s", truncName(f, 8))
	}
	fmt.Println()
	for i, f := range sim.Fields {
		fmt.Printf("%-8s", truncName(f, 8))
		for j := range sim.Fields {
			fmt.Printf(" %8.1f", sim.D[i][j])
		}
		fmt.Println()
		_ = f
	}
	var t3CSV [][]string
	for i := range sim.Fields {
		row := []string{sim.Fields[i]}
		for j := range sim.Fields {
			row = append(row, f64(sim.D[i][j]))
		}
		t3CSV = append(t3CSV, row)
	}
	if err := cfg.writeCSV("table3_similarity", append([]string{"field"}, sim.Fields...), t3CSV); err != nil {
		return err
	}
	fmt.Printf("\nself-distance baseline (diagonal mean): %.2f\n", selfBaseline(sim))
	fmt.Println("(hydrometeor fields cluster; QVAPOR and V are the far outliers,")
	fmt.Println(" matching the structure of the paper's Table III)")
	return nil
}

func selfBaseline(sim *crest.SimilarityMatrix) float64 {
	var s float64
	for i := range sim.Fields {
		s += sim.D[i][i]
	}
	return s / math.Max(float64(len(sim.Fields)), 1)
}

func truncName(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
