package main

import (
	"os"
	"path/filepath"
	"testing"

	crest "github.com/crestlab/crest"
)

func TestExperimentRegistryIntegrity(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments {
		if e.name == "" || e.desc == "" || e.run == nil {
			t.Errorf("incomplete experiment entry %+v", e)
		}
		if seen[e.name] {
			t.Errorf("duplicate experiment id %q", e.name)
		}
		seen[e.name] = true
	}
	// Every experiment id promised by DESIGN.md's index must exist.
	for _, want := range []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"table2", "table3", "usecaseB", "usecaseC", "training", "model-a",
	} {
		if !seen[want] {
			t.Errorf("missing experiment %q", want)
		}
	}
}

func TestRunConfigSizes(t *testing.T) {
	quick := runConfig{quick: true}
	full := runConfig{}
	qz, qy, qx := quick.sizes()
	fz, fy, fx := full.sizes()
	if qz >= fz || qy >= fy || qx >= fx {
		t.Errorf("quick sizes (%d,%d,%d) not smaller than full (%d,%d,%d)", qz, qy, qx, fz, fy, fx)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	keys := sortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Errorf("sortedKeys = %v", keys)
	}
}

func TestGroupedMedAPE(t *testing.T) {
	// Pairs with constant 10% over-prediction: every group's MedAPE is
	// exactly 10, so all three quantiles are 10.
	pairs := make([]crest.PredPair, 10)
	for i := range pairs {
		pairs[i] = crest.PredPair{True: 20, Pred: 22}
	}
	q10, q50, q90 := groupedMedAPE(pairs)
	if q10 != 10 || q50 != 10 || q90 != 10 {
		t.Errorf("quantiles = %g %g %g", q10, q50, q90)
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	cfg := runConfig{outDir: dir}
	err := cfg.writeCSV("sample", []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "sample.csv"))
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,4\n"
	if string(data) != want {
		t.Errorf("csv = %q, want %q", data, want)
	}
	// Disabled when no out dir is configured.
	if err := (runConfig{}).writeCSV("x", nil, nil); err != nil {
		t.Errorf("disabled writeCSV errored: %v", err)
	}
}
