package main

import (
	"fmt"
	"math"

	crest "github.com/crestlab/crest"
)

// fig1Fields are the hurricane fields shown in the ablation study.
var fig1Fields = []string{"CLOUD", "PRECIP", "TC", "W", "QRAIN", "QVAPOR"}

func runFig1(cfg runConfig) error {
	nz, ny, nx := cfg.sizes()
	ds := crest.HurricaneDataset(crest.DataOptions{NZ: nz, NY: ny, NX: nx, Seed: cfg.seed})
	var fields []*crest.Field
	for _, name := range fig1Fields {
		fields = append(fields, ds.Field(name))
	}
	comp := crest.MustCompressor("szinterp")
	rows, err := crest.AblationStudy(fields, comp, 1e-3, crest.EstimatorConfig{}, 5, cfg.seed, crest.NewCRCache())
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %8s", "field", "full")
	header := []string{"field", "full_medape_pct"}
	for _, n := range crest.FeatureNames {
		fmt.Printf(" %11s", "-"+n)
		header = append(header, "without_"+n)
	}
	fmt.Println()
	var csvRows [][]string
	for _, r := range rows {
		fmt.Printf("%-8s %7.2f%%", r.Field, r.Full)
		row := []string{r.Field, f64(r.Full)}
		for _, w := range r.Without {
			fmt.Printf(" %10.2f%%", w)
			row = append(row, f64(w))
		}
		fmt.Println()
		csvRows = append(csvRows, row)
	}
	if err := cfg.writeCSV("fig1_ablation", header, csvRows); err != nil {
		return err
	}
	fmt.Println("(MedAPE of the full 5-predictor model vs each leave-one-out model;")
	fmt.Println(" per the paper, different fields are hurt by dropping different predictors)")
	return nil
}

// fig2Fields are the four hurricane fields of the clustering figure.
var fig2Fields = []string{"CLOUD", "TC", "QVAPOR", "V"}

func runFig2(cfg runConfig) error {
	nz, ny, nx := cfg.sizes()
	ds := crest.HurricaneDataset(crest.DataOptions{NZ: nz, NY: ny, NX: nx, Seed: cfg.seed})
	comp := crest.MustCompressor("szinterp")
	eps := 1e-3
	var rows [][]float64
	var owner []string
	for _, name := range fig2Fields {
		f := ds.Field(name)
		for _, b := range f.Buffers {
			feats, err := crest.ComputeFeatureVector(b, eps, crest.PredictorConfig{})
			if err != nil {
				return err
			}
			cr, err := crest.CompressionRatio(comp, b, eps)
			if err != nil {
				return err
			}
			if cr > 100 {
				cr = 100
			}
			row := append([]float64{math.Log(cr)}, feats...)
			rows = append(rows, row)
			owner = append(owner, name)
		}
	}
	// Standardize columns before PCA so no feature dominates.
	standardizeColumns(rows)
	scores := crest.PCAProject(rows, 2)
	k := crest.SelectClusterCount(rows, 5, cfg.seed)
	labels := crest.KMeansCluster(rows, k, cfg.seed)
	fmt.Printf("selected cluster count L = %d\n", k)
	fmt.Printf("%-8s %10s %10s %8s\n", "field", "PC1", "PC2", "cluster")
	var csvRows [][]string
	for i, s := range scores {
		fmt.Printf("%-8s %10.3f %10.3f %8d\n", owner[i], s[0], s[1], labels[i])
		csvRows = append(csvRows, []string{owner[i], f64(s[0]), f64(s[1]), fmt.Sprint(labels[i])})
	}
	if err := cfg.writeCSV("fig2_pca_clusters", []string{"field", "pc1", "pc2", "cluster"}, csvRows); err != nil {
		return err
	}
	// Cluster-vs-field contingency: a visible grouping effect means the
	// clusters align with (groups of) fields.
	counts := map[string]int{}
	for i := range labels {
		counts[fmt.Sprintf("%s/c%d", owner[i], labels[i])]++
	}
	fmt.Println("field/cluster counts:")
	for _, k := range sortedKeys(counts) {
		fmt.Printf("  %-12s %d\n", k, counts[k])
	}
	return nil
}

func standardizeColumns(rows [][]float64) {
	if len(rows) == 0 {
		return
	}
	d := len(rows[0])
	for j := 0; j < d; j++ {
		var mean, m2 float64
		for _, r := range rows {
			mean += r[j]
		}
		mean /= float64(len(rows))
		for _, r := range rows {
			m2 += (r[j] - mean) * (r[j] - mean)
		}
		std := math.Sqrt(m2 / float64(len(rows)))
		if std == 0 {
			std = 1
		}
		for _, r := range rows {
			r[j] = (r[j] - mean) / std
		}
	}
}

func runFig3(cfg runConfig) error {
	nz, ny, nx := cfg.sizes()
	ds := crest.HurricaneDataset(crest.DataOptions{NZ: nz, NY: ny, NX: nx, Seed: cfg.seed})
	buf := ds.Field("CLOUD").Buffers[0]
	comp := crest.MustCompressor("szinterp")
	memo := map[float64]float64{}
	truth := func(eps float64) float64 {
		if v, ok := memo[eps]; ok {
			return v
		}
		cr, err := crest.CompressionRatio(comp, buf, eps)
		if err != nil {
			cr = 1
		}
		memo[eps] = cr
		return cr
	}
	trials := 40
	if cfg.quick {
		trials = 10
	}
	levels := []float64{0.005, 0.01, 0.02, 0.04, 0.08}
	results := crest.ErrorInjectionStudy(truth, 20, 1e-6, 1e-1, 18, levels, trials, cfg.seed)
	fmt.Printf("%-12s %-16s\n", "noise (%CR)", "search err (%CR)")
	var csvRows [][]string
	for _, r := range results {
		fmt.Printf("%11.1f%% %15.2f%%\n", r.NoisePct, r.ErrPct)
		csvRows = append(csvRows, []string{f64(r.NoisePct), f64(r.ErrPct)})
	}
	if err := cfg.writeCSV("fig3_error_injection", []string{"noise_pct", "search_err_pct"}, csvRows); err != nil {
		return err
	}
	fmt.Println("(paper reports 9.9/10.3/11.2/17.4% style growth: error grows")
	fmt.Println(" super-linearly with injected estimate noise, so use case A needs")
	fmt.Println(" high-accuracy estimators)")
	return nil
}

var fig4Fields = map[string][]string{
	"hurricane": {"CLOUD", "TC", "W"},
	"nyx":       {"baryon_density", "temperature", "velocity_x"},
	"miranda":   {"density", "pressure", "velocityx"},
	"cesm":      {"CLDHGH", "FLDS", "TS"},
}

func runFig4(cfg runConfig) error {
	nz, ny, nx := cfg.sizes()
	datasets := crest.AllDatasets(crest.DataOptions{NZ: nz, NY: ny, NX: nx, Seed: cfg.seed})
	comps := []string{"szinterp", "zfplike", "sperrlike"}
	bounds := []float64{1e-3, 1e-4}
	cache := crest.NewCRCache()
	type key struct {
		comp string
		eps  float64
	}
	sums := map[key][]float64{}
	var csvRows [][]string
	fmt.Printf("%-10s %-16s %-10s %-8s %8s %8s %8s\n",
		"dataset", "field", "comp", "eps", "10%", "med", "90%")
	for _, ds := range datasets {
		for _, fieldName := range fig4Fields[ds.Name] {
			field := ds.Field(fieldName)
			for _, compName := range comps {
				comp := crest.MustCompressor(compName)
				for _, eps := range bounds {
					m := crest.NewProposedMethod(crest.EstimatorConfig{})
					q, _, err := crest.KFoldEvaluate(m, field.Buffers, comp, eps, 5, cfg.seed, cache)
					if err != nil {
						return fmt.Errorf("%s/%s %s %g: %w", ds.Name, fieldName, compName, eps, err)
					}
					fmt.Printf("%-10s %-16s %-10s %-8.0e %7.2f%% %7.2f%% %7.2f%%\n",
						ds.Name, fieldName, compName, eps, q.Q10, q.Q50, q.Q90)
					csvRows = append(csvRows, []string{ds.Name, fieldName, compName, f64(eps), f64(q.Q10), f64(q.Q50), f64(q.Q90)})
					k := key{compName, eps}
					sums[k] = append(sums[k], q.Q50)
				}
			}
		}
	}
	if err := cfg.writeCSV("fig4_summary", []string{"dataset", "field", "compressor", "eps", "q10", "medape", "q90"}, csvRows); err != nil {
		return err
	}
	fmt.Println("\nlegend (avg / max MedAPE per compressor+bound across all fields):")
	for _, compName := range comps {
		for _, eps := range bounds {
			vals := sums[key{compName, eps}]
			var avg, mx float64
			for _, v := range vals {
				avg += v
				if v > mx {
					mx = v
				}
			}
			avg /= float64(len(vals))
			fmt.Printf("  %-10s eps=%-8.0e avg=%.2f%% max=%.2f%%\n", compName, eps, avg, mx)
		}
	}
	return nil
}
