package main

import (
	"fmt"
	"math"

	crest "github.com/crestlab/crest"
	"github.com/crestlab/crest/internal/stats"
)

// groupedMedAPE splits test pairs into ~5 groups and returns the 10/50/90
// quantiles of the per-group MedAPEs, the Fig. 5/Table II uncertainty
// summary for a single out-of-sample split.
func groupedMedAPE(pairs []crest.PredPair) (q10, q50, q90 float64) {
	const groups = 5
	buckets := make([][]float64, groups)
	for i, p := range pairs {
		g := i % groups
		buckets[g] = append(buckets[g], stats.AbsPercentageError(p.True, p.Pred))
	}
	meds := make([]float64, 0, groups)
	for _, b := range buckets {
		if len(b) > 0 {
			meds = append(meds, stats.Median(b))
		}
	}
	qs := stats.Quantiles(meds, 0.10, 0.50, 0.90)
	return qs[0], qs[1], qs[2]
}

func runFig5(cfg runConfig) error {
	nz, ny, nx := cfg.sizes()
	ds := crest.HurricaneDataset(crest.DataOptions{NZ: nz, NY: ny, NX: nx, Seed: cfg.seed})
	comp := crest.MustCompressor("szinterp")
	eps := 1e-3
	sim, err := crest.FieldSimilarity(ds.Fields, crest.PredictorConfig{})
	if err != nil {
		return err
	}
	cache := crest.NewCRCache()
	targets := []string{"CLOUD", "PRECIP"}
	var fig5CSV [][]string
	maxFields := 8
	if cfg.quick {
		maxFields = 4
	}
	for _, target := range targets {
		ti := sim.FieldIndex(target)
		order := sim.Order(ti)
		fmt.Printf("target field %s; training order:", target)
		for _, oi := range order[:maxFields] {
			fmt.Printf(" %s", sim.Fields[oi])
		}
		fmt.Println()
		fmt.Printf("%-8s %8s %8s %8s\n", "#fields", "10%", "med", "90%")
		method := crest.NewProposedMethod(crest.EstimatorConfig{})
		var trainBufs []*crest.Buffer
		for n := 1; n <= maxFields; n++ {
			f := ds.Field(sim.Fields[order[n-1]])
			trainBufs = append(trainBufs, f.Buffers...)
			_, pairs, err := crest.OutOfSampleEvaluate(method, trainBufs, ds.Field(target).Buffers, comp, eps, cache)
			if err != nil {
				return err
			}
			q10, q50, q90 := groupedMedAPE(pairs)
			fmt.Printf("%-8d %7.2f%% %7.2f%% %7.2f%%\n", n, q10, q50, q90)
			fig5CSV = append(fig5CSV, []string{target, fmt.Sprint(n), f64(q10), f64(q50), f64(q90)})
		}
		fmt.Println()
	}
	if err := cfg.writeCSV("fig5_multifield", []string{"target", "num_fields", "q10", "medape", "q90"}, fig5CSV); err != nil {
		return err
	}
	fmt.Println("(adding fields in similarity order generally tightens the error,")
	fmt.Println(" the cheaper-to-train behavior of Fig. 5)")
	return nil
}

func runFig6(cfg runConfig) error {
	nz, ny, nx := cfg.sizes()
	hur := crest.HurricaneDataset(crest.DataOptions{NZ: nz, NY: ny, NX: nx, Seed: cfg.seed})
	nyx := crest.NYXDataset(crest.DataOptions{NZ: nz, NY: ny, NX: nx, Seed: cfg.seed})
	comp := crest.MustCompressor("szinterp")
	eps := 1e-3
	cache := crest.NewCRCache()
	sim, err := crest.FieldSimilarity(hur.Fields, crest.PredictorConfig{})
	if err != nil {
		return err
	}

	type panel struct {
		name        string
		train, test []*crest.Buffer
	}
	outTrain := func(target string) []*crest.Buffer {
		ti := sim.FieldIndex(target)
		var bufs []*crest.Buffer
		for _, oi := range sim.Order(ti)[:4] {
			bufs = append(bufs, hur.Field(sim.Fields[oi]).Buffers...)
		}
		return bufs
	}
	split := func(f *crest.Field) (train, test []*crest.Buffer) {
		for i, b := range f.Buffers {
			if i%3 == 0 {
				test = append(test, b)
			} else {
				train = append(train, b)
			}
		}
		return train, test
	}
	cloudTrain, cloudTest := split(hur.Field("CLOUD"))
	nyxTrain, nyxTest := split(nyx.Field("baryon_density"))
	// Pooled out-of-field panel: several held-out fields at once, the
	// regime where field-level exchangeability (and hence the conformal
	// guarantee) actually applies.
	heldOut := map[string]bool{"QSNOW": true, "W": true, "QRAIN": true}
	var pooledTrain, pooledTest []*crest.Buffer
	for _, f := range hur.Fields {
		if heldOut[f.Name] {
			pooledTest = append(pooledTest, f.Buffers...)
		} else {
			pooledTrain = append(pooledTrain, f.Buffers...)
		}
	}
	panels := []panel{
		{"hurricane-CLOUD in-sample", cloudTrain, cloudTest},
		{"hurricane-CLOUD out-of-sample", outTrain("CLOUD"), hur.Field("CLOUD").Buffers},
		{"nyx-baryon in-sample", nyxTrain, nyxTest},
		{"hurricane-PRECIP out-of-sample", outTrain("PRECIP"), hur.Field("PRECIP").Buffers},
		{"hurricane pooled out-of-field (3 held-out fields)", pooledTrain, pooledTest},
	}
	var fig6CSV [][]string
	for _, p := range panels {
		m := crest.NewProposedMethod(crest.EstimatorConfig{})
		medape, pairs, err := crest.OutOfSampleEvaluate(m, p.train, p.test, comp, eps, cache)
		if err != nil {
			return fmt.Errorf("%s: %w", p.name, err)
		}
		for _, pr := range pairs {
			fig6CSV = append(fig6CSV, []string{p.name, f64(pr.True), f64(pr.Pred), f64(pr.Lo), f64(pr.Hi)})
		}
		fmt.Printf("panel %s (MedAPE %.2f%%)\n", p.name, medape)
		fmt.Printf("  %10s %10s %10s %10s %8s\n", "actual", "predicted", "lo", "hi", "covered")
		covered, total := 0, 0
		var width float64
		for i, pr := range pairs {
			in := pr.True >= pr.Lo && pr.True <= pr.Hi
			if in {
				covered++
			}
			total++
			width += pr.Hi - pr.Lo
			if i < 12 {
				fmt.Printf("  %10.2f %10.2f %10.2f %10.2f %8v\n", pr.True, pr.Pred, pr.Lo, pr.Hi, in)
			} else if i == 12 {
				fmt.Printf("  ... (%d more)\n", len(pairs)-12)
			}
		}
		fmt.Printf("  coverage %.1f%% (nominal 95%%), mean interval width %.2f\n\n",
			100*float64(covered)/float64(total), width/float64(total))
	}
	if err := cfg.writeCSV("fig6_conformal", []string{"panel", "actual", "predicted", "lo", "hi"}, fig6CSV); err != nil {
		return err
	}
	fmt.Println("(out-of-sample panels show visibly wider conformal intervals than")
	fmt.Println(" in-sample ones, matching the paper's Fig. 6 observation)")
	return nil
}

func runFig7(cfg runConfig) error {
	nz, ny, nx := cfg.sizes()
	ds := crest.HurricaneDataset(crest.DataOptions{NZ: nz, NY: ny, NX: nx, Seed: cfg.seed})
	field := ds.Field("CLOUD")
	testBuf := field.Buffers[len(field.Buffers)-1]
	trainBufs := field.Buffers[:len(field.Buffers)-1]
	comps := []string{"szlorenzo", "szinterp", "zfplike", "sperrlike", "mgardlike"}
	iters := 50
	if cfg.quick {
		iters = 15
	}
	eps0 := 1e-3
	trainEps := []float64{1e-2, 1e-3, 1e-4, 1e-5}
	fmt.Printf("%-12s %-10s %10s %12s %10s\n", "compressor", "method", "speedup", "target err", "effective")
	var fig7CSV [][]string
	for _, compName := range comps {
		comp := crest.MustCompressor(compName)
		// Train methods for this compressor across several bounds so the
		// bound search can interrogate them anywhere in the range.
		crs := make([]float64, len(trainBufs))
		multiCRs := make([][]float64, len(trainBufs))
		for i, b := range trainBufs {
			multiCRs[i] = make([]float64, len(trainEps))
			for j, te := range trainEps {
				cr, err := crest.CompressionRatio(comp, b, te)
				if err != nil {
					return err
				}
				multiCRs[i][j] = math.Min(cr, 100)
				if te == eps0 {
					crs[i] = multiCRs[i][j]
				}
			}
		}
		// Target: a ratio the compressor can reach on this data.
		midCR, err := crest.CompressionRatio(comp, testBuf, 1e-2)
		if err != nil {
			return err
		}
		target := math.Min(midCR, 100) * 0.8
		if target < 2 {
			target = 2
		}
		methods := []crest.Method{
			crest.NewProposedMethod(crest.EstimatorConfig{}),
			crest.NewUnderwoodMethod(),
			crest.NewTaoMethod(),
			crest.NewLuMethod(),
		}
		for _, m := range methods {
			if m.Name() == "lu" && compName != "szlorenzo" && compName != "zfplike" {
				fmt.Printf("%-12s %-10s %10s %12s\n", compName, m.Name(), "n/a", "(SZ/ZFP only)")
				continue
			}
			if mt, ok := m.(crest.MultiBoundTrainer); ok {
				if err := mt.FitMulti(trainBufs, multiCRs, trainEps); err != nil {
					return fmt.Errorf("%s/%s fit: %w", compName, m.Name(), err)
				}
			} else if err := m.Fit(trainBufs, crs, eps0); err != nil {
				return fmt.Errorf("%s/%s fit: %w", compName, m.Name(), err)
			}
			sc, err := crest.CompareSearch(comp, testBuf, m, target, 1e-6, 1e-1, iters)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", compName, m.Name(), err)
			}
			// Effective speedup: an estimate-driven search that misses the
			// target by more than 10% must fall back to the full
			// compressor-driven search, so its estimate time is pure
			// overhead — this is how inaccurate-but-fast methods end up
			// below 1x in the paper's Fig. 7.
			eff := sc.Speedup
			if sc.TargetErrPct > 10 {
				eff = sc.Speedup / (1 + sc.Speedup)
			}
			fmt.Printf("%-12s %-10s %9.2fx %11.2f%% %9.2fx\n", compName, m.Name(), sc.Speedup, sc.TargetErrPct, eff)
			fig7CSV = append(fig7CSV, []string{compName, m.Name(), f64(sc.Speedup), f64(sc.TargetErrPct), f64(eff)})
		}
	}
	if err := cfg.writeCSV("fig7_speedup", []string{"compressor", "method", "speedup", "target_err_pct", "effective_speedup"}, fig7CSV); err != nil {
		return err
	}
	fmt.Println("(speedup = no-estimation search time / estimate-driven search time;")
	fmt.Println(" 'target err' is the CR deviation cost of trusting the estimates;")
	fmt.Println(" 'effective' folds a >10% miss back into a full re-search)")
	return nil
}
