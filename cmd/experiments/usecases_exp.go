package main

import (
	"fmt"
	"math"
	"time"

	crest "github.com/crestlab/crest"
)

func runUseCaseB(cfg runConfig) error {
	// --- Analytic worked example of §V-D ---
	fmt.Println("analytic inversion probabilities (CR means 1,2,3; CR var 0.1):")
	fmt.Printf("%-14s %12s\n", "est err var", "P(inversion)")
	crMean := []float64{3, 2, 1} // best first
	crVar := []float64{0.1, 0.1, 0.1}
	fmt.Printf("%-14s %11.1f%%\n", "none", 100*crest.SelectionInversionProbability(crMean, crVar, nil))
	for _, ev := range []float64{0.0625, 0.125, 0.25, 0.5} {
		errVar := []float64{ev, ev, ev}
		p := crest.SelectionInversionProbability(crMean, crVar, errVar)
		fmt.Printf("%-14.4f %11.1f%%\n", ev, 100*p)
	}
	fmt.Println("(paper's worked example: 3.9 / 6.9 / 12.3 / 20.8%)")
	var ucbCSV [][]string
	for _, ev := range []float64{0, 0.0625, 0.125, 0.25, 0.5} {
		var errVar []float64
		if ev > 0 {
			errVar = []float64{ev, ev, ev}
		}
		ucbCSV = append(ucbCSV, []string{f64(ev),
			f64(100 * crest.SelectionInversionProbability(crMean, crVar, errVar))})
	}
	if err := cfg.writeCSV("usecaseB_inversion", []string{"est_err_var", "inversion_pct"}, ucbCSV); err != nil {
		return err
	}

	// --- Empirical selection accuracy + speedup on two regimes (§VI-G):
	// QVAPOR has a clear per-compressor winner, TC is competitive (all
	// candidates within a fraction of a percent), where the model predicts
	// selection errors without CR cost. ---
	nz, ny, nx := cfg.sizes()
	ds := crest.HurricaneDataset(crest.DataOptions{NZ: nz, NY: ny, NX: nx, Seed: cfg.seed})
	compNames := []string{"szlorenzo", "szinterp", "zfplike", "sperrlike", "mgardlike"}
	eps := 1e-3
	for _, fieldName := range []string{"QVAPOR", "TC"} {
		field := ds.Field(fieldName)
		nTrain := len(field.Buffers) * 3 / 5
		trainBufs, testBufs := field.Buffers[:nTrain], field.Buffers[nTrain:]
		comps := make([]crest.Compressor, len(compNames))
		methods := map[string]crest.Method{}
		shared := crest.NewFeatureCache(crest.EstimatorConfig{})
		for i, name := range compNames {
			comps[i] = crest.MustCompressor(name)
			crs := make([]float64, len(trainBufs))
			for j, b := range trainBufs {
				cr, err := crest.CompressionRatio(comps[i], b, eps)
				if err != nil {
					return err
				}
				crs[j] = math.Min(cr, 100)
			}
			m := crest.NewProposedMethodShared(crest.EstimatorConfig{}, shared)
			if err := m.Fit(trainBufs, crs, eps); err != nil {
				return err
			}
			methods[name] = m
		}
		correct := 0
		var tNo, tEst time.Duration
		var crLoss float64
		for _, b := range testBufs {
			rNo, err := crest.SelectBestNoEstimate(comps, b, eps)
			if err != nil {
				return err
			}
			rEst, err := crest.SelectBestWithEstimate(comps, b, eps, methods)
			if err != nil {
				return err
			}
			if rEst.Correct {
				correct++
			}
			crLoss += 100 * (rEst.BestCR - rEst.ChosenCR) / rEst.BestCR
			tNo += rNo.Elapsed
			tEst += rEst.Elapsed
			fmt.Printf("%s step %2d: chose %-12s true best %-12s (CR %.2f vs %.2f)\n",
				fieldName, b.Step, rEst.Chosen, rEst.TrueBest, rEst.ChosenCR, rEst.BestCR)
		}
		fmt.Printf("%s: correct %d/%d, mean CR loss %.2f%%, speedup %.2fx\n\n",
			fieldName, correct, len(testBufs), crLoss/float64(len(testBufs)),
			float64(tNo)/math.Max(float64(tEst), 1))
	}
	fmt.Println("(clear-winner fields select correctly; competitive fields mis-select")
	fmt.Println(" between near-ties at negligible CR cost — the §VI-G regimes)")
	return nil
}

func runUseCaseC(cfg runConfig) error {
	nz, ny, nx := cfg.sizes()
	ds := crest.HurricaneDataset(crest.DataOptions{NZ: nz, NY: ny, NX: nx, Seed: cfg.seed})
	// Use a compressor whose cost dominates the predictors — the regime
	// use case C targets (in-situ HPC compression of large buffers).
	comp := crest.MustCompressor("sperrlike")
	eps := 1e-3

	// Train one estimator over a few buffers of every field so size
	// estimates work for heterogeneous data.
	var trainBufs, writeBufs []*crest.Buffer
	for _, f := range ds.Fields {
		k := len(f.Buffers) / 3
		trainBufs = append(trainBufs, f.Buffers[:k]...)
		writeBufs = append(writeBufs, f.Buffers[k:]...)
	}
	crs := make([]float64, len(trainBufs))
	for i, b := range trainBufs {
		cr, err := crest.CompressionRatio(comp, b, eps)
		if err != nil {
			return err
		}
		crs[i] = math.Min(cr, 100)
	}
	m := crest.NewProposedMethod(crest.EstimatorConfig{})
	if err := m.Fit(trainBufs, crs, eps); err != nil {
		return err
	}

	for _, workers := range []int{1, 4} {
		base, err := crest.ParallelWriteNoEstimate(writeBufs, comp, eps, workers, 2)
		if err != nil {
			return err
		}
		// A fresh method per measurement keeps the feature cache cold: the
		// timed section must pay the full per-buffer predictor cost,
		// exactly as a real single-pass write would.
		mc := crest.NewProposedMethod(crest.EstimatorConfig{})
		if err := mc.Fit(trainBufs, crs, eps); err != nil {
			return err
		}
		est, err := crest.ParallelWriteWithEstimate(writeBufs, comp, eps, workers,
			crest.ConservativeEstimator(mc, 1.0))
		if err != nil {
			return err
		}
		speedup := float64(base.Elapsed) / math.Max(float64(est.Elapsed), 1)
		fmt.Printf("workers=%d: no-est %v (%d compressions) | est %v (%d compressions, %d misses, %d overflow B, %d wasted B) | speedup %.2fx\n",
			workers, base.Elapsed.Round(time.Millisecond), base.Compressions,
			est.Elapsed.Round(time.Millisecond), est.Compressions, est.Mispredicts,
			est.OverflowBytes, est.File.WastedBytes(), speedup)
		// Round-trip validation: every entry decompresses within bound.
		blob := est.File.Marshal()
		f2, err := crest.UnmarshalAggFile(blob)
		if err != nil {
			return err
		}
		worst := 0.0
		for i, b := range writeBufs {
			dec, err := f2.Read(i, comp)
			if err != nil {
				return fmt.Errorf("read back entry %d: %w", i, err)
			}
			if d := b.MaxAbsDiff(dec); d > worst {
				worst = d
			}
		}
		fmt.Printf("  aggregated file: %d entries, %d bytes, max abs error %.2e (bound %.0e)\n",
			len(f2.Entries), len(blob), worst, eps)
	}
	// The §V model with *measured* runtimes explains the empirical result:
	// on this CPU-only substrate the predictors cost more than one
	// sperrlike invocation, so estimation does not pay here — and the
	// model quantifies what the paper's GPU offload (the γ factor of the
	// §IV-C complexity model) would restore.
	featT := timeIt(6, func() {
		if _, err := crest.ComputeDatasetFeatures(writeBufs[0], crest.PredictorConfig{}); err != nil {
			panic(err)
		}
	})
	ebT := timeIt(6, func() {
		if _, err := crest.ComputeDistortion(writeBufs[0], eps, crest.PredictorConfig{}); err != nil {
			panic(err)
		}
	})
	compT := timeIt(6, func() {
		if _, err := crest.CompressionRatio(comp, writeBufs[0], eps); err != nil {
			panic(err)
		}
	})
	fmt.Printf("\nmeasured per buffer: dset-preds %.2fms, eb-preds %.2fms, %s %.2fms\n",
		1e3*featT.Mu, 1e3*ebT.Mu, comp.Name(), 1e3*compT.Mu)
	fmt.Printf("%-28s %10s\n", "Sec. V-E model", "speedup")
	for _, gamma := range []float64{1, 4, 16} {
		in := crest.UseCaseCModel{
			Compressor: compT,
			DataPred:   crest.RuntimeDist{Mu: featT.Mu / gamma, Sigma: featT.Sigma / gamma},
			EBPred:     ebT,
			Estimate:   crest.RuntimeDist{Mu: 2e-7},
			Buffers:    len(writeBufs),
			MemBuffers: 2,
			Procs:      4,
			MissRate:   0.02,
		}
		fmt.Printf("predictor accel gamma=%-5.0f %9.2fx\n", gamma, crest.UseCaseCSpeedup(in))
	}
	fmt.Println("(gamma=1 matches the measured CPU slowdown; the paper's GPU-class")
	fmt.Println(" predictor acceleration restores the ~2x the model promises)")

	// §VI-G: the conformal level dials the miss rate a priori, trading
	// wasted reservation space against repair compressions.
	var dialCSV [][]string
	fmt.Println("\na-priori miss-rate dial (conformal lambda = 2*target):")
	fmt.Printf("%-12s %10s %14s %14s\n", "target miss", "misses", "overflow B", "wasted B")
	for _, target := range []float64{0.25, 0.10, 0.02} {
		sized, err := crest.TargetMissEstimator(m, trainBufs, crs, eps, target)
		if err != nil {
			return err
		}
		res, err := crest.ParallelWriteWithEstimate(writeBufs, comp, eps, 4, sized)
		if err != nil {
			return err
		}
		fmt.Printf("%11.0f%% %7d/%-3d %14d %14d\n",
			100*target, res.Mispredicts, len(writeBufs), res.OverflowBytes, res.File.WastedBytes())
		dialCSV = append(dialCSV, []string{f64(100 * target),
			fmt.Sprint(res.Mispredicts), fmt.Sprint(len(writeBufs)),
			fmt.Sprint(res.OverflowBytes), fmt.Sprint(res.File.WastedBytes())})
	}
	if err := cfg.writeCSV("usecaseC_miss_dial", []string{"target_miss_pct", "misses", "buffers", "overflow_bytes", "wasted_bytes"}, dialCSV); err != nil {
		return err
	}
	fmt.Println("(tighter targets reserve more space and miss less — the space")
	fmt.Println(" vs speed trade-off chosen before writing anything)")
	return nil
}

func runTraining(cfg runConfig) error {
	nz, ny, nx := cfg.sizes()
	ds := crest.HurricaneDataset(crest.DataOptions{NZ: nz, NY: ny, NX: nx, Seed: cfg.seed})
	comp := crest.MustCompressor("szinterp")
	eps := 1e-3
	cache := crest.NewCRCache()
	required := []string{"CLOUD", "QCLOUD", "PRECIP", "QGRAUP", "QRAIN", "QSNOW", "QICE", "TC", "V"}

	// Coverage relation from actual pairwise out-of-field accuracy:
	// training on field i covers field j when the MedAPE stays ≤ 8%.
	idx := map[string]int{}
	var fields []*crest.Field
	for i, name := range required {
		idx[name] = i
		fields = append(fields, ds.Field(name))
	}
	n := len(fields)
	covers := make([][]bool, n)
	pairMedape := make([][]float64, n)
	m := crest.NewProposedMethod(crest.EstimatorConfig{})
	const accuracyTarget = 8.0
	fmt.Printf("pairwise out-of-field MedAPE (train row -> predict col), %% :\n%-8s", "")
	for _, f := range fields {
		fmt.Printf(" %8s", truncName(f.Name, 8))
	}
	fmt.Println()
	for i := range fields {
		covers[i] = make([]bool, n)
		covers[i][i] = true
		pairMedape[i] = make([]float64, n)
		fmt.Printf("%-8s", truncName(fields[i].Name, 8))
		for j := range fields {
			if i == j {
				fmt.Printf(" %8s", "-")
				continue
			}
			medape, _, err := crest.OutOfSampleEvaluate(m, fields[i].Buffers, fields[j].Buffers, comp, eps, cache)
			if err != nil {
				return err
			}
			covers[i][j] = medape <= accuracyTarget
			pairMedape[i][j] = medape
			fmt.Printf(" %8.1f", medape)
		}
		fmt.Println()
	}
	var pairCSV [][]string
	for i := range fields {
		for j := range fields {
			if i != j {
				pairCSV = append(pairCSV, []string{fields[i].Name, fields[j].Name, f64(pairMedape[i][j])})
			}
		}
	}
	if err := cfg.writeCSV("training_pairwise_medape", []string{"train_field", "predict_field", "medape_pct"}, pairCSV); err != nil {
		return err
	}
	cover, err := crest.MinimalTrainingSet(covers, nil)
	if err != nil {
		return fmt.Errorf("no feasible cover at %.0f%% target: %w", accuracyTarget, err)
	}
	fmt.Printf("minimal training set at ≤%.0f%% accuracy: ", accuracyTarget)
	for _, c := range cover {
		fmt.Printf("%s ", fields[c].Name)
	}
	fmt.Printf("(%d of %d fields)\n", len(cover), n)

	// Training speedup: measured predictor + compressor runtimes feed the
	// §V-F model. The baseline trains on every field with unfused
	// metrics; ours trains on the cover set with the fused pass.
	buf := fields[0].Buffers[0]
	fused := timeIt(8, func() {
		if _, err := crest.ComputeDatasetFeatures(buf, crest.PredictorConfig{}); err != nil {
			panic(err)
		}
		if _, err := crest.ComputeDistortion(buf, eps, crest.PredictorConfig{}); err != nil {
			panic(err)
		}
	})
	naive := timeIt(8, func() {
		if _, err := crest.ComputeDatasetFeaturesNaive(buf, crest.PredictorConfig{}); err != nil {
			panic(err)
		}
		if _, err := crest.ComputeDistortion(buf, eps, crest.PredictorConfig{}); err != nil {
			panic(err)
		}
	})
	compT := timeIt(8, func() {
		if _, err := crest.CompressionRatio(comp, buf, eps); err != nil {
			panic(err)
		}
	})
	perField := len(fields[0].Buffers)
	speedup := crest.TrainingSpeedup(crest.TrainingModel{
		Fit0: crest.RuntimeDist{}, Fit1: crest.RuntimeDist{},
		Pred0: naive, Pred1: fused,
		Compressor: compT,
		Buffers0:   n * perField, Buffers1: len(cover) * perField,
		Procs: 4,
	})
	metricOnly := crest.TrainingSpeedup(crest.TrainingModel{
		Pred0: naive, Pred1: fused, Compressor: compT,
		Buffers0: n * perField, Buffers1: n * perField, Procs: 4,
	})
	fmt.Printf("fused metrics %.2fms vs unfused %.2fms per buffer; compressor %.2fms\n",
		1e3*fused.Mu, 1e3*naive.Mu, 1e3*compT.Mu)
	fmt.Printf("metric-speed-only training speedup: %.2fx (paper: 1.42x)\n", metricOnly)
	fmt.Printf("cover-set + fused-metrics training speedup: %.2fx (paper: 2.56x)\n", speedup)
	return nil
}

// timeIt measures reps runs of fn and returns the Gaussian runtime model.
func timeIt(reps int, fn func()) crest.RuntimeDist {
	samples := make([]float64, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		samples[i] = time.Since(start).Seconds()
	}
	return crest.MeasureRuntime(samples)
}

func runModelA(cfg runConfig) error {
	// The §VI-G worked example: compressor and predictors with unit mean
	// and unit variance, error-bound predictors with σ = 0.33, 100 000
	// iterations on 40 processors.
	in := crest.UseCaseAModel{
		Compressor: crest.RuntimeDist{Mu: 1, Sigma: 1},
		DataPred:   crest.RuntimeDist{Mu: 1, Sigma: 1},
		EBPred:     crest.RuntimeDist{Mu: 1, Sigma: 0.33},
		Estimate:   crest.RuntimeDist{},
		Searches:   100000,
		Procs:      40,
	}
	fmt.Printf("analytic use-case-A speedup (unit-cost predictors, sigma_e=0.33,\n")
	fmt.Printf("100k iterations, 40 procs): %.2fx (paper reports 2.56x)\n", crest.UseCaseASpeedup(in))
	fmt.Println("\nspeedup sensitivity to estimator consistency (sigma of eb-predictors):")
	fmt.Printf("%-10s %10s\n", "sigma_e", "speedup")
	var maCSV [][]string
	for _, s := range []float64{1.0, 0.66, 0.33, 0.1, 0.01} {
		in.EBPred.Sigma = s
		sp := crest.UseCaseASpeedup(in)
		fmt.Printf("%-10.2f %9.2fx\n", s, sp)
		maCSV = append(maCSV, []string{f64(s), f64(sp)})
	}
	if err := cfg.writeCSV("modelA_sigma_sweep", []string{"sigma_e", "speedup"}, maCSV); err != nil {
		return err
	}
	fmt.Println("(consistent-latency predictors buy speedup even at equal mean cost,")
	fmt.Println(" the §VI-G observation)")
	return nil
}
