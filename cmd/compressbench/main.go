// Command compressbench measures compressor and predictor runtimes on the
// synthetic datasets and summarizes them as the Gaussian runtime models
// (μ, σ) consumed by the paper's §V speedup formulas, then evaluates those
// formulas with the measured numbers. It is the measurement companion of
// the perfmodel package.
package main

import (
	"flag"
	"fmt"
	"time"

	crest "github.com/crestlab/crest"
)

func main() {
	var (
		dataset = flag.String("dataset", "hurricane", "dataset: hurricane|nyx|miranda|cesm")
		field   = flag.String("field", "", "field (empty: first)")
		eps     = flag.Float64("eps", 1e-3, "absolute error bound")
		reps    = flag.Int("reps", 5, "repetitions per buffer")
		ny      = flag.Int("ny", 96, "rows")
		nx      = flag.Int("nx", 96, "cols")
		nz      = flag.Int("nz", 12, "slices")
		seed    = flag.Int64("seed", 1, "seed")
		procs   = flag.Int("procs", 8, "processors assumed by the speedup models")
	)
	flag.Parse()

	opts := crest.DataOptions{NZ: *nz, NY: *ny, NX: *nx, Seed: *seed}
	var ds *crest.Dataset
	switch *dataset {
	case "hurricane":
		ds = crest.HurricaneDataset(opts)
	case "nyx":
		ds = crest.NYXDataset(opts)
	case "miranda":
		ds = crest.MirandaDataset(opts)
	case "cesm":
		ds = crest.CESMDataset(opts)
	default:
		fmt.Printf("unknown dataset %q\n", *dataset)
		return
	}
	f := ds.Fields[0]
	if *field != "" {
		if f = ds.Field(*field); f == nil {
			fmt.Printf("no field %q\n", *field)
			return
		}
	}

	measure := func(fn func(b *crest.Buffer)) crest.RuntimeDist {
		var samples []float64
		for _, b := range f.Buffers {
			for r := 0; r < *reps; r++ {
				start := time.Now()
				fn(b)
				samples = append(samples, time.Since(start).Seconds())
			}
		}
		return crest.MeasureRuntime(samples)
	}

	fmt.Printf("dataset=%s field=%s %dx%d eps=%g (times in ms)\n\n", ds.Name, f.Name, *ny, *nx, *eps)
	fmt.Printf("%-14s %10s %10s %10s\n", "task", "mean", "stddev", "cv")

	dPred := measure(func(b *crest.Buffer) {
		if _, err := crest.ComputeDatasetFeatures(b, crest.PredictorConfig{}); err != nil {
			panic(err)
		}
	})
	report("dset-preds", dPred)
	ePred := measure(func(b *crest.Buffer) {
		if _, err := crest.ComputeDistortion(b, *eps, crest.PredictorConfig{}); err != nil {
			panic(err)
		}
	})
	report("eb-preds", ePred)

	comps := map[string]crest.RuntimeDist{}
	for _, name := range crest.CompressorNames() {
		comp := crest.MustCompressor(name)
		comps[name] = measure(func(b *crest.Buffer) {
			if _, err := crest.CompressionRatio(comp, b, *eps); err != nil {
				panic(err)
			}
		})
		report(name, comps[name])
	}

	// Model estimate evaluation is effectively free compared to the
	// above; the paper treats it as nanoseconds.
	yEst := crest.RuntimeDist{Mu: 2e-7, Sigma: 5e-8}

	fmt.Println("\nuse-case-A model speedups (50 searches):")
	fmt.Printf("%-14s %10s\n", "compressor", "speedup")
	for _, name := range crest.CompressorNames() {
		in := crest.UseCaseAModel{
			Compressor: comps[name],
			DataPred:   dPred,
			EBPred:     ePred,
			Estimate:   yEst,
			Searches:   50,
			Procs:      *procs,
		}
		fmt.Printf("%-14s %9.2fx\n", name, crest.UseCaseASpeedup(in))
	}

	fmt.Println("\nuse-case-C model speedups (64 buffers, 4 in-memory, 2% miss):")
	fmt.Printf("%-14s %10s\n", "compressor", "speedup")
	for _, name := range crest.CompressorNames() {
		in := crest.UseCaseCModel{
			Compressor: comps[name],
			DataPred:   dPred,
			EBPred:     ePred,
			Estimate:   yEst,
			Buffers:    64,
			MemBuffers: 4,
			Procs:      *procs,
			MissRate:   0.02,
		}
		fmt.Printf("%-14s %9.2fx\n", name, crest.UseCaseCSpeedup(in))
	}
}

func report(name string, d crest.RuntimeDist) {
	cv := 0.0
	if d.Mu > 0 {
		cv = d.Sigma / d.Mu
	}
	fmt.Printf("%-14s %10.3f %10.3f %10.2f\n", name, 1e3*d.Mu, 1e3*d.Sigma, cv)
}
