package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/retry"
	"github.com/crestlab/crest/internal/server"
)

// cmdClient estimates one buffer against a running `crest serve`,
// honoring the server's overload contract: a 503 is retried with jittered
// exponential backoff that waits at least the advertised Retry-After; a
// 4xx is permanent and fails immediately.
func cmdClient(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("client", flag.ExitOnError)
	var df datasetFlags
	df.register(fs)
	url := fs.String("url", "http://localhost:8080", "server base URL")
	eps := fs.Float64("eps", 1e-3, "absolute error bound")
	step := fs.Int("step", 0, "buffer index within the field")
	attempts := fs.Int("attempts", 4, "max tries against an overloaded server")
	baseDelay := fs.Duration("base-delay", 100*time.Millisecond, "first backoff delay")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request HTTP timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, field, err := df.load()
	if err != nil {
		return err
	}
	if *step < 0 || *step >= len(field.Buffers) {
		return fmt.Errorf("step %d outside field of %d buffers", *step, len(field.Buffers))
	}
	buf := field.Buffers[*step]
	body, err := json.Marshal(server.EstimateRequest{
		Dataset: buf.Dataset, Field: buf.Field, Step: buf.Step,
		Rows: buf.Rows, Cols: buf.Cols, Data: buf.Data, Eps: *eps,
	})
	if err != nil {
		return err
	}

	client := &http.Client{Timeout: *timeout}
	var out server.EstimateResponse
	policy := retry.Policy{MaxAttempts: *attempts, BaseDelay: *baseDelay}
	err = policy.Do(ctx, func(ctx context.Context) error {
		res, err := postEstimate(ctx, client, *url+"/v1/estimate", body)
		if err != nil {
			return err
		}
		out = *res
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s/%s step %d at eps %g: CR %.3f [%.3f, %.3f]\n",
		df.dataset, field.Name, *step, *eps, out.CR, out.Lo, out.Hi)
	return nil
}

// postEstimate performs one estimate POST, translating HTTP failures into
// the retry taxonomy: 503 (overload) and 429 (quota) carry their
// Retry-After as a typed hint and retry; other 4xx are permanent; 5xx and
// transport errors retry on backoff alone.
func postEstimate(ctx context.Context, client *http.Client, url string, body []byte) (*server.EstimateResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, retry.Permanent(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		var out server.EstimateResponse
		if err := json.Unmarshal(payload, &out); err != nil {
			return nil, fmt.Errorf("bad response body: %v", err)
		}
		return &out, nil
	case resp.StatusCode == http.StatusServiceUnavailable:
		err := fmt.Errorf("%w: %s", crerr.ErrOverloaded, wireMessage(payload))
		if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
			err = retry.WithRetryAfter(err, time.Duration(secs)*time.Second)
		}
		return nil, err
	case resp.StatusCode == http.StatusTooManyRequests:
		// Quota exhaustion is transient — the tenant's bucket refills — so
		// unlike other 4xx it retries, waiting at least the server's
		// per-tenant Retry-After.
		err := fmt.Errorf("%w: %s", crerr.ErrQuotaExceeded, wireMessage(payload))
		if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
			err = retry.WithRetryAfter(err, time.Duration(secs)*time.Second)
		}
		return nil, err
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		return nil, retry.Permanent(fmt.Errorf("HTTP %d: %s", resp.StatusCode, wireMessage(payload)))
	default:
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, wireMessage(payload))
	}
}

// wireMessage extracts the typed error body's message, falling back to
// the raw payload.
func wireMessage(payload []byte) string {
	var we map[string]server.WireError
	if err := json.Unmarshal(payload, &we); err == nil {
		if e, ok := we["error"]; ok {
			return e.Kind + ": " + e.Message
		}
	}
	return string(bytes.TrimSpace(payload))
}
