package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	crest "github.com/crestlab/crest"
	"github.com/crestlab/crest/internal/batch"
	"github.com/crestlab/crest/internal/featcache"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/predictors"
	"github.com/crestlab/crest/internal/server"
)

// serveBenchReport is the JSON document `crest servebench` emits — the
// serving-layer benchmark scripts/bench.sh archives as BENCH_server.json.
type serveBenchReport struct {
	Requests    int     `json:"requests"`
	OK          int     `json:"ok"`
	Shed        int     `json:"shed"`
	Errors      int     `json:"errors"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	ShedRate    float64 `json:"shed_rate"`
	WallMs      float64 `json:"wall_ms"`
	Concurrency int     `json:"concurrency"`
	MaxInflight int     `json:"max_inflight"`
	MaxQueue    int     `json:"max_queue"`
	WorkDelayMs float64 `json:"work_delay_ms"`
}

// cmdServeBench drives an in-process estimation server to saturation and
// reports tail latency and shed rate: every feature computation carries a
// fixed work delay, the offered concurrency exceeds the admission bounds,
// and the overflow must be shed with 503 instead of queuing unboundedly.
func cmdServeBench(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("servebench", flag.ExitOnError)
	n := fs.Int("n", 400, "total requests to offer")
	concurrency := fs.Int("concurrency", 32, "concurrent client goroutines")
	maxInflight := fs.Int("max-inflight", 4, "server execution slots")
	maxQueue := fs.Int("max-queue", 8, "server queue bound")
	workDelay := fs.Duration("work-delay", 2*time.Millisecond, "injected per-estimate work")
	rows := fs.Int("rows", 48, "benchmark buffer rows")
	cols := fs.Int("cols", 48, "benchmark buffer columns")
	out := fs.String("out", "-", "write the JSON report here (-: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// A tiny synthetic model: the bench measures the serving layer, not
	// model quality.
	rng := rand.New(rand.NewSource(17))
	samples := make([]crest.Sample, 60)
	for i := range samples {
		f := make([]float64, 5)
		for j := range f {
			f[j] = rng.NormFloat64()
		}
		samples[i] = crest.Sample{Features: f, CR: 1 + 8*math.Exp(0.4*f[0])}
	}
	est, err := crest.TrainEstimatorContext(ctx, samples, crest.EstimatorConfig{})
	if err != nil {
		return err
	}
	pcfg := est.PredictorConfig()
	delayed := func(buf *grid.Buffer, c predictors.Config) (predictors.DatasetFeatures, error) {
		time.Sleep(*workDelay)
		return predictors.ComputeDataset(buf, c)
	}
	cache := featcache.NewWithCompute(pcfg, delayed, nil)
	srv, err := server.New(server.Config{
		Engine:      batch.New(est, cache, *maxInflight),
		MaxInflight: *maxInflight,
		MaxQueue:    *maxQueue,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	url := "http://" + ln.Addr().String() + "/v1/estimate"

	// Pre-build distinct request bodies so the cache cannot collapse the
	// work (the cache keys on buffer identity).
	bodies := make([][]byte, *n)
	for i := range bodies {
		data := make([]float64, *rows**cols)
		for j := range data {
			r, c := j / *cols, j%*cols
			data[j] = math.Sin(float64(r)/5+float64(i)) * math.Cos(float64(c)/7)
		}
		bodies[i], err = json.Marshal(server.EstimateRequest{
			Rows: *rows, Cols: *cols, Data: data, Eps: 1e-3,
		})
		if err != nil {
			return err
		}
	}

	var next atomic.Int64
	var okN, shedN, errN atomic.Int64
	lat := make([][]time.Duration, *concurrency)
	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *n || ctx.Err() != nil {
					return
				}
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[i]))
				if err != nil {
					errN.Add(1)
					continue
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					okN.Add(1)
					lat[w] = append(lat[w], time.Since(t0))
				case http.StatusServiceUnavailable:
					shedN.Add(1)
				default:
					errN.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		idx := int(p * float64(len(all)-1))
		return float64(all[idx]) / float64(time.Millisecond)
	}
	report := serveBenchReport{
		Requests:    *n,
		OK:          int(okN.Load()),
		Shed:        int(shedN.Load()),
		Errors:      int(errN.Load()),
		P50Ms:       pct(0.50),
		P99Ms:       pct(0.99),
		ShedRate:    float64(shedN.Load()) / float64(*n),
		WallMs:      float64(wall) / float64(time.Millisecond),
		Concurrency: *concurrency,
		MaxInflight: *maxInflight,
		MaxQueue:    *maxQueue,
		WorkDelayMs: float64(*workDelay) / float64(time.Millisecond),
	}
	doc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(doc)
		return err
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (ok %d, shed %d, p50 %.2fms, p99 %.2fms)\n",
		*out, report.OK, report.Shed, report.P50Ms, report.P99Ms)
	return nil
}
