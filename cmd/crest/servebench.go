package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/crestlab/crest/internal/batch"
	"github.com/crestlab/crest/internal/capacity"
	"github.com/crestlab/crest/internal/featcache"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/predictors"
	"github.com/crestlab/crest/internal/server"
)

// serveBenchReport is the JSON document `crest servebench` emits — the
// serving-layer benchmark scripts/bench.sh archives as BENCH_server.json.
type serveBenchReport struct {
	Requests    int     `json:"requests"`
	OK          int     `json:"ok"`
	Shed        int     `json:"shed"`
	Errors      int     `json:"errors"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	ShedRate    float64 `json:"shed_rate"`
	WallMs      float64 `json:"wall_ms"`
	Concurrency int     `json:"concurrency"`
	MaxInflight int     `json:"max_inflight"`
	MaxQueue    int     `json:"max_queue"`
	WorkDelayMs float64 `json:"work_delay_ms"`
}

// cmdServeBench drives an in-process estimation server to saturation and
// reports tail latency and shed rate: every feature computation carries a
// fixed work delay, the offered concurrency exceeds the admission bounds,
// and the overflow must be shed with 503 instead of queuing unboundedly.
// Span bookkeeping and percentiles come from internal/capacity, the same
// convention `crest capacity` fits against.
func cmdServeBench(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("servebench", flag.ExitOnError)
	n := fs.Int("n", 400, "total requests to offer")
	concurrency := fs.Int("concurrency", 32, "concurrent client goroutines")
	maxInflight := fs.Int("max-inflight", 4, "server execution slots")
	maxQueue := fs.Int("max-queue", 8, "server queue bound")
	workDelay := fs.Duration("work-delay", 2*time.Millisecond, "injected per-estimate work")
	rows := fs.Int("rows", 48, "benchmark buffer rows")
	cols := fs.Int("cols", 48, "benchmark buffer columns")
	out := fs.String("out", "-", "write the JSON report here (-: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// A tiny synthetic model: the bench measures the serving layer, not
	// model quality.
	est, err := benchEstimator(ctx, 17)
	if err != nil {
		return err
	}
	pcfg := est.PredictorConfig()
	delayed := func(buf *grid.Buffer, c predictors.Config) (predictors.DatasetFeatures, error) {
		time.Sleep(*workDelay)
		return predictors.ComputeDataset(buf, c)
	}
	cache := featcache.NewWithCompute(pcfg, delayed, nil)
	srv, err := server.New(server.Config{
		Engine:      batch.New(est, cache, *maxInflight),
		MaxInflight: *maxInflight,
		MaxQueue:    *maxQueue,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	url := "http://" + ln.Addr().String() + "/v1/estimate"

	// Pre-build distinct request bodies so the cache cannot collapse the
	// work (the cache keys on buffer identity).
	bodies := make([][]byte, *n)
	for i := range bodies {
		data := make([]float64, *rows**cols)
		for j := range data {
			r, c := j / *cols, j%*cols
			data[j] = math.Sin(float64(r)/5+float64(i)) * math.Cos(float64(c)/7)
		}
		bodies[i], err = json.Marshal(server.EstimateRequest{
			Rows: *rows, Cols: *cols, Data: data, Eps: 1e-3,
		})
		if err != nil {
			return err
		}
	}

	var rec capacity.Recorder
	rec.SetLevel(*concurrency)
	var next atomic.Int64
	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *n || ctx.Err() != nil {
					return
				}
				t0 := time.Now()
				span := capacity.Span{Start: t0}
				resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[i]))
				span.Duration = time.Since(t0)
				switch {
				case err != nil:
					span.Outcome = capacity.Error
				case resp.StatusCode == http.StatusOK:
					span.Outcome = capacity.OK
				case resp.StatusCode == http.StatusServiceUnavailable:
					span.Outcome = capacity.Shed
				default:
					span.Outcome = capacity.Error
				}
				if err == nil {
					resp.Body.Close()
				}
				rec.Record(span)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	st := capacity.Aggregate(rec.Spans(), *concurrency, wall)
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	report := serveBenchReport{
		Requests:    *n,
		OK:          st.OK,
		Shed:        st.Shed,
		Errors:      st.Errors,
		P50Ms:       ms(st.P50),
		P99Ms:       ms(st.P99),
		ShedRate:    float64(st.Shed) / float64(*n),
		WallMs:      ms(wall),
		Concurrency: *concurrency,
		MaxInflight: *maxInflight,
		MaxQueue:    *maxQueue,
		WorkDelayMs: ms(*workDelay),
	}
	doc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(doc)
		return err
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (ok %d, shed %d, p50 %.2fms, p99 %.2fms)\n",
		*out, report.OK, report.Shed, report.P50Ms, report.P99Ms)
	return nil
}
