package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"time"

	crest "github.com/crestlab/crest"
	"github.com/crestlab/crest/internal/obs"
	"github.com/crestlab/crest/internal/registry"
)

// registryBenchReport is the JSON document `crest registrybench` emits —
// the model-lifecycle benchmark scripts/bench.sh archives as
// BENCH_registry.json. The numbers that matter operationally: how much
// the routing hot path costs per request, how long a canary takes to
// reach a promote/rollback verdict (decision latency), and what a quota
// check adds to admission.
type registryBenchReport struct {
	RouteP50Us    float64 `json:"route_p50_us"`
	RouteP99Us    float64 `json:"route_p99_us"`
	FeedbackP50Us float64 `json:"feedback_p50_us"`
	FeedbackP99Us float64 `json:"feedback_p99_us"`

	PromoteObservations  int     `json:"promote_observations"`
	PromoteWallMs        float64 `json:"promote_wall_ms"`
	RollbackObservations int     `json:"rollback_observations"`
	RollbackWallMs       float64 `json:"rollback_wall_ms"`

	QuotaAllowNs  float64 `json:"quota_allow_ns"`
	QuotaRejectNs float64 `json:"quota_reject_ns"`

	Routes    int `json:"routes"`
	Feedbacks int `json:"feedbacks"`
}

// cmdRegistryBench benchmarks the registry's lifecycle paths in-process:
// route resolution under an active canary split, feedback scoring with
// the double-estimate comparison, end-to-end decision latency for a
// promotion and a rollback, and the token-bucket quota check.
func cmdRegistryBench(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("registrybench", flag.ExitOnError)
	routes := fs.Int("routes", 20000, "route resolutions to time")
	out := fs.String("out", "-", "write the JSON report here (-: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	truth := func(f []float64) float64 { return 1 + 10*math.Exp(0.5*f[0]-0.3*f[1]) }
	train := func(seed int64, shuffle bool) (*crest.Estimator, error) {
		rng := rand.New(rand.NewSource(seed))
		samples := make([]crest.Sample, 80)
		for i := range samples {
			f := make([]float64, 5)
			for j := range f {
				f[j] = rng.NormFloat64()
			}
			samples[i] = crest.Sample{Features: f, CR: truth(f)}
		}
		if shuffle {
			rng.Shuffle(len(samples), func(i, j int) {
				samples[i].CR, samples[j].CR = samples[j].CR, samples[i].CR
			})
		}
		return crest.TrainEstimatorContext(ctx, samples, crest.EstimatorConfig{})
	}

	canary := registry.CanaryConfig{
		Fraction:     0.25,
		Window:       64,
		MinObs:       16,
		EvalEvery:    8,
		SustainEvals: 3,
	}
	reg, err := registry.Open(registry.Config{
		Root:   must(os.MkdirTemp("", "registrybench")),
		Obs:    obs.NewRegistry(),
		Canary: canary,
		Quota: registry.QuotaConfig{
			Tenants: map[string]registry.TenantQuota{
				"open":   {Rate: 1e9, Burst: 1 << 30},
				"closed": {Rate: 0.001, Burst: 1},
			},
		},
	})
	if err != nil {
		return err
	}
	defer reg.Close()

	active, err := train(7, false)
	if err != nil {
		return err
	}
	if _, err := reg.Publish("bench", active); err != nil {
		return err
	}

	// Phase 1: routing hot path, with a canary split in flight so the
	// measurement includes the split decision and counter persistence.
	good, err := train(11, false)
	if err != nil {
		return err
	}
	if _, err := reg.Publish("bench", good); err != nil {
		return err
	}
	routeLat := make([]time.Duration, 0, *routes)
	for i := 0; i < *routes; i++ {
		t0 := time.Now()
		if _, err := reg.Route("bench"); err != nil {
			return err
		}
		routeLat = append(routeLat, time.Since(t0))
	}

	// Phase 2: drive feedback until the good candidate auto-promotes,
	// timing each observation (the double-estimate comparison) and the
	// wall time from first observation to the verdict.
	rng := rand.New(rand.NewSource(23))
	feedback := func() (obsCount int, wall time.Duration, lat []time.Duration, decision string, err error) {
		start := time.Now()
		for i := 0; i < 5000; i++ {
			f := make([]float64, 5)
			for j := range f {
				f[j] = rng.NormFloat64()
			}
			t0 := time.Now()
			res, ferr := reg.ObserveFeedback("bench", f, truth(f))
			if ferr != nil {
				return 0, 0, nil, "", ferr
			}
			lat = append(lat, time.Since(t0))
			if res.Decision != "" {
				return i + 1, time.Since(start), lat, res.Decision, nil
			}
		}
		return 0, 0, lat, "", fmt.Errorf("no canary decision after 5000 observations")
	}
	promoteObs, promoteWall, feedLat, decision, err := feedback()
	if err != nil {
		return err
	}
	if decision != "promote" {
		return fmt.Errorf("good candidate decided %q, want promote", decision)
	}

	// Phase 3: a regressed candidate must roll back; time the verdict.
	bad, err := train(13, true)
	if err != nil {
		return err
	}
	if _, err := reg.Publish("bench", bad); err != nil {
		return err
	}
	rollbackObs, rollbackWall, moreLat, decision, err := feedback()
	if err != nil {
		return err
	}
	if decision != "rollback" {
		return fmt.Errorf("regressed candidate decided %q, want rollback", decision)
	}
	feedLat = append(feedLat, moreLat...)

	// Phase 4: quota check overhead on both verdicts.
	quotaNs := func(tenant string) float64 {
		const n = 200000
		t0 := time.Now()
		for i := 0; i < n; i++ {
			reg.AllowTenant(tenant)
		}
		return float64(time.Since(t0).Nanoseconds()) / n
	}
	allowNs := quotaNs("open")
	rejectNs := quotaNs("closed")

	us := func(lat []time.Duration, p float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		sorted := append([]time.Duration(nil), lat...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return float64(sorted[int(p*float64(len(sorted)-1))]) / float64(time.Microsecond)
	}
	report := registryBenchReport{
		RouteP50Us:           us(routeLat, 0.50),
		RouteP99Us:           us(routeLat, 0.99),
		FeedbackP50Us:        us(feedLat, 0.50),
		FeedbackP99Us:        us(feedLat, 0.99),
		PromoteObservations:  promoteObs,
		PromoteWallMs:        float64(promoteWall) / float64(time.Millisecond),
		RollbackObservations: rollbackObs,
		RollbackWallMs:       float64(rollbackWall) / float64(time.Millisecond),
		QuotaAllowNs:         allowNs,
		QuotaRejectNs:        rejectNs,
		Routes:               len(routeLat),
		Feedbacks:            len(feedLat),
	}
	doc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(doc)
		return err
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (route p99 %.1fus, promote after %d obs, quota allow %.0fns)\n",
		*out, report.RouteP99Us, report.PromoteObservations, report.QuotaAllowNs)
	return nil
}

func must(s string, err error) string {
	if err != nil {
		panic(err)
	}
	return s
}
