package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"time"

	"github.com/crestlab/crest/internal/batch"
	"github.com/crestlab/crest/internal/capacity"
	"github.com/crestlab/crest/internal/chaos"
	"github.com/crestlab/crest/internal/cluster"
	"github.com/crestlab/crest/internal/featcache"
	"github.com/crestlab/crest/internal/obs"
	"github.com/crestlab/crest/internal/server"
)

// clusterBenchReport is the JSON document `crest clusterbench` emits —
// the replication-layer benchmark scripts/bench.sh archives as
// BENCH_cluster.json. The headline number is TailRatio: hedged p99 over
// the bound hedging promises, max(healthy p99, hedge-after) — with one
// replica slowed by SlowDelayMs it should stay near 1, instead of
// near SlowDelayMs/bound as it would without hedging.
type clusterBenchReport struct {
	Nodes        int     `json:"nodes"`
	Replicas     int     `json:"replicas"`
	Requests     int     `json:"requests"`
	HealthyP50Ms float64 `json:"healthy_p50_ms"`
	HealthyP99Ms float64 `json:"healthy_p99_ms"`
	SlowDelayMs  float64 `json:"slow_delay_ms"`
	HedgedP50Ms  float64 `json:"hedged_p50_ms"`
	HedgedP99Ms  float64 `json:"hedged_p99_ms"`
	TailRatio    float64 `json:"tail_ratio"`
	HedgeAfterMs float64 `json:"hedge_after_ms"`
	Forwarded    uint64  `json:"forwarded"`
	Hedges       uint64  `json:"hedges"`
	HedgeWins    uint64  `json:"hedge_wins"`
	Errors       int     `json:"errors"`
	// PerPeer breaks the entry node's forward legs down by replica —
	// the per-peer span tagging `crest capacity -nodes` builds its
	// per-replica USL fits from.
	PerPeer map[string]clusterPeerSpans `json:"per_peer"`
}

// clusterPeerSpans summarizes one replica's forward legs as seen from
// the entry node's span recorder.
type clusterPeerSpans struct {
	OK       int     `json:"ok"`
	Shed     int     `json:"shed"`
	Errors   int     `json:"errors"`
	Canceled int     `json:"canceled"`
	P99Ms    float64 `json:"p99_ms"`
}

// benchNode is one in-process replica: a full server with its own
// cluster layer, obs registry and engine, listening on a loopback port.
type benchNode struct {
	addr string
	cl   *cluster.Cluster
	hs   *http.Server
}

// cmdClusterBench boots a local in-process N-node fleet sharing one
// trained model, measures estimate latency through the routing layer
// while healthy, then injects a fixed delay on every path to one replica
// and measures again with hedging active. Without hedging the slow
// replica would own ~1/N of the keys and set the p99 at the injected
// delay; the report shows how close hedging keeps the tail to baseline.
func cmdClusterBench(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("clusterbench", flag.ExitOnError)
	nodes := fs.Int("nodes", 3, "fleet size")
	n := fs.Int("n", 120, "requests per phase")
	replicas := fs.Int("replicas", 2, "owner replica-set size per key")
	hedgeAfter := fs.Duration("hedge-after", 20*time.Millisecond, "backup-request delay")
	slowDelay := fs.Duration("slow-delay", 250*time.Millisecond, "injected one-way delay to the slow replica")
	out := fs.String("out", "-", "write the JSON report here (-: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nodes < 2 {
		return fmt.Errorf("clusterbench needs at least 2 nodes, got %d", *nodes)
	}

	// One tiny shared model: the bench measures the replication layer.
	est, err := benchEstimator(ctx, 23)
	if err != nil {
		return err
	}

	lns := make([]net.Listener, *nodes)
	addrs := make([]string, *nodes)
	for i := range lns {
		if lns[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			return err
		}
		addrs[i] = "http://" + lns[i].Addr().String()
	}
	net_ := chaos.NewNetwork()

	var rec capacity.Recorder
	fleet := make([]*benchNode, *nodes)
	for i := range fleet {
		ccfg := cluster.Config{
			Self:           addrs[i],
			Peers:          addrs,
			Replicas:       *replicas,
			HedgeAfter:     *hedgeAfter,
			ForwardTimeout: 5 * time.Second,
			Health:         cluster.HealthConfig{Interval: time.Hour, Seed: int64(i + 1)},
			Transport:      net_.Transport(addrs[i], &http.Transport{}),
			Obs:            obs.NewRegistry(),
		}
		if i == 0 {
			// The entry node records one span per forward leg, tagged
			// with the replica that handled it.
			ccfg.Spans = &rec
		}
		cl, err := cluster.New(ccfg)
		if err != nil {
			return err
		}
		srv, err := server.New(server.Config{
			Engine:  batch.New(est, featcache.New(est.PredictorConfig()), 4),
			Cluster: cl,
			Obs:     obs.NewRegistry(),
		})
		if err != nil {
			return err
		}
		node := &benchNode{addr: addrs[i], cl: cl, hs: &http.Server{Handler: srv.Handler()}}
		go node.hs.Serve(lns[i])
		defer node.hs.Close()
		fleet[i] = node
	}

	body := func(i int) []byte {
		data := make([]float64, 24*24)
		for j := range data {
			data[j] = math.Sin(float64(j)/9 + float64(i%7))
		}
		b, _ := json.Marshal(server.EstimateRequest{
			Dataset: "bench", Field: fmt.Sprintf("f%d", i),
			Rows: 24, Cols: 24, Data: data, Eps: 1e-3,
		})
		return b
	}
	client := &http.Client{Timeout: 10 * time.Second}
	errs := 0
	run := func(count int) ([]time.Duration, error) {
		lat := make([]time.Duration, 0, count)
		for i := 0; i < count; i++ {
			if ctx.Err() != nil {
				return lat, ctx.Err()
			}
			t0 := time.Now()
			resp, err := client.Post(fleet[0].addr+"/v1/estimate", "application/json", bytes.NewReader(body(i)))
			if err != nil {
				errs++
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs++
				continue
			}
			lat = append(lat, time.Since(t0))
		}
		return lat, nil
	}
	// Nearest-rank percentiles from the shared capacity convention —
	// the same code path servebench and `crest capacity` report through.
	pct := func(lat []time.Duration, p float64) float64 {
		return float64(capacity.Percentile(lat, p)) / float64(time.Millisecond)
	}

	healthy, err := run(*n)
	if err != nil {
		return err
	}

	// Slow one replica that node 0 forwards to: every path toward it
	// (requests and hedges alike) pays the injected delay.
	net_.SetLatency("", fleet[1].addr, *slowDelay)
	hedged, err := run(*n)
	if err != nil {
		return err
	}

	st := fleet[0].cl.Stats()
	hp99 := pct(healthy, 0.99)
	sp99 := pct(hedged, 0.99)
	bound := hp99
	if ha := float64(*hedgeAfter) / float64(time.Millisecond); ha > bound {
		bound = ha
	}
	ratio := 0.0
	if bound > 0 {
		ratio = sp99 / bound
	}
	perPeer := make(map[string]clusterPeerSpans)
	peerLats := make(map[string][]time.Duration)
	for _, sp := range rec.Spans() {
		agg := perPeer[sp.Peer]
		switch sp.Outcome {
		case capacity.OK:
			agg.OK++
			peerLats[sp.Peer] = append(peerLats[sp.Peer], sp.Duration)
		case capacity.Shed:
			agg.Shed++
		case capacity.Canceled:
			agg.Canceled++
		default:
			agg.Errors++
		}
		perPeer[sp.Peer] = agg
	}
	for peer, agg := range perPeer {
		agg.P99Ms = pct(peerLats[peer], 0.99)
		perPeer[peer] = agg
	}
	report := clusterBenchReport{
		Nodes:        *nodes,
		Replicas:     *replicas,
		Requests:     *n,
		HealthyP50Ms: pct(healthy, 0.50),
		HealthyP99Ms: hp99,
		SlowDelayMs:  float64(*slowDelay) / float64(time.Millisecond),
		HedgedP50Ms:  pct(hedged, 0.50),
		HedgedP99Ms:  sp99,
		TailRatio:    ratio,
		HedgeAfterMs: float64(*hedgeAfter) / float64(time.Millisecond),
		Forwarded:    st.Forwarded,
		Hedges:       st.Hedges,
		HedgeWins:    st.HedgeWins,
		Errors:       errs,
		PerPeer:      perPeer,
	}
	for _, node := range fleet {
		node.cl.Close()
	}

	doc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(doc)
		return err
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (healthy p99 %.1fms, hedged p99 %.1fms, ratio %.2f, hedges %d/%d wins)\n",
		*out, report.HealthyP99Ms, report.HedgedP99Ms, report.TailRatio, report.HedgeWins, report.Hedges)
	return nil
}
