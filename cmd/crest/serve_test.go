package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	crest "github.com/crestlab/crest"
)

// trainTinySnapshot runs cmdTrain into dir and returns the written path.
func trainTinySnapshot(t *testing.T, dir string) string {
	t.Helper()
	args := append([]string{"-dataset", "miranda", "-field", "density",
		"-eps", "1e-3", "-dir", dir}, "-nz", "8", "-ny", "24", "-nx", "24")
	if err := cmdTrain(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("train wrote nothing: %v", err)
	}
	return filepath.Join(dir, entries[len(entries)-1].Name())
}

// startServe launches cmdServe against dir and waits for the bound
// address; the returned cancel triggers the SIGTERM drain path.
func startServe(t *testing.T, extra ...string) (addr string, cancel context.CancelFunc, done chan error) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	ctx, cancelCtx := context.WithCancel(context.Background())
	done = make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, extra...)
	go func() { done <- cmdServe(ctx, args) }()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return string(b), cancelCtx, done
		}
		select {
		case err := <-done:
			t.Fatalf("serve exited before binding: %v", err)
		default:
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancelCtx()
	t.Fatal("server never wrote its address file")
	return "", nil, nil
}

// TestTrainServeClientRoundTrip is the durability round trip: train →
// snapshot → serve from the snapshot directory → estimate over HTTP (via
// the retrying client) → SIGTERM-equivalent cancellation drains cleanly.
func TestTrainServeClientRoundTrip(t *testing.T) {
	dir := t.TempDir()
	trainTinySnapshot(t, dir)

	addr, cancel, done := startServe(t, "-model-dir", dir)
	defer cancel()

	r, err := http.Get("http://" + addr + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %d", r.StatusCode)
	}

	clientArgs := append([]string{"-url", "http://" + addr, "-dataset", "miranda",
		"-field", "density", "-step", "2", "-eps", "1e-3"}, "-nz", "8", "-ny", "24", "-nx", "24")
	if err := cmdClient(context.Background(), clientArgs); err != nil {
		t.Fatalf("client: %v", err)
	}

	// Stats moved and are well-formed JSON.
	r, err = http.Get("http://" + addr + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	var stats struct {
		Server struct {
			Served uint64 `json:"served"`
		} `json:"server"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("statsz: %v: %s", err, body)
	}
	if stats.Server.Served == 0 {
		t.Error("served counter did not move")
	}

	// The signal path: cancellation drains and the command returns nil.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve did not drain cleanly: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not exit after cancellation")
	}
}

// TestServeSingleModelFlag serves from an exact -model path.
func TestServeSingleModelFlag(t *testing.T) {
	dir := t.TempDir()
	path := trainTinySnapshot(t, dir)
	addr, cancel, done := startServe(t, "-model", path)
	r, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", r.StatusCode)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestServeCorruptedSnapshotStartup: a startup against corrupt state must
// fail with the typed snapshot error — no panic, non-nil error (main maps
// it to a non-zero exit).
func TestServeCorruptedSnapshotStartup(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model-000000.crsnap")
	if err := os.WriteFile(path, []byte("crest-snapshot 1\nsha256 zzzz\n\ngarbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	err := cmdServe(context.Background(), []string{"-model", path, "-addr", "127.0.0.1:0"})
	if !errors.Is(err, crest.ErrSnapshotCorrupt) {
		t.Fatalf("corrupt -model: %v, want ErrSnapshotCorrupt", err)
	}
	// Directory mode with only corrupt candidates fails the same way.
	err = cmdServe(context.Background(), []string{"-model-dir", dir, "-addr", "127.0.0.1:0"})
	if !errors.Is(err, crest.ErrSnapshotCorrupt) {
		t.Fatalf("corrupt -model-dir: %v, want ErrSnapshotCorrupt", err)
	}
}

// TestServeFallsBackPastCorruptHead: the newest snapshot is truncated;
// serve must start from the previous valid one.
func TestServeFallsBackPastCorruptHead(t *testing.T) {
	dir := t.TempDir()
	good := trainTinySnapshot(t, dir)
	// A "newer" snapshot arrives truncated (torn write at crash).
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "model-000001.crsnap")
	if err := os.WriteFile(bad, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(time.Hour)
	if err := os.Chtimes(bad, future, future); err != nil {
		t.Fatal(err)
	}

	addr, cancel, done := startServe(t, "-model-dir", dir)
	r, err := http.Get("http://" + addr + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("readyz after fallback: %d", r.StatusCode)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestServeFlagValidation(t *testing.T) {
	if err := cmdServe(context.Background(), nil); err == nil {
		t.Error("no model source accepted")
	}
	if err := cmdServe(context.Background(), []string{"-model", "a", "-model-dir", "b"}); err == nil {
		t.Error("both model sources accepted")
	}
	if err := cmdTrain(context.Background(), nil); err == nil {
		t.Error("train without destination accepted")
	}
}

// TestCmdTrainExactPathLoadsBack exercises -o and verifies the snapshot
// decodes through the public API.
func TestCmdTrainExactPathLoadsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.crsnap")
	args := append([]string{"-dataset", "cesm", "-eps", "1e-3", "-o", path},
		"-nz", "8", "-ny", "24", "-nx", "24")
	if err := cmdTrain(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	est, err := crest.LoadEstimator(path)
	if err != nil {
		t.Fatal(err)
	}
	if est.IntervalRadius() < 0 {
		t.Fatal("implausible restored model")
	}
}

// TestCmdBatchStatsJSON checks the -stats flag emits parseable JSON with
// the cache counters (the CLI face of /statsz's engine half).
func TestCmdBatchStatsJSON(t *testing.T) {
	old := os.Stdout
	rp, wp, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = wp
	captured := make(chan []byte, 1)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, rp)
		captured <- buf.Bytes()
	}()

	args := append([]string{"-dataset", "miranda", "-field", "density",
		"-eps", "1e-3", "-train", "0.6", "-stats", "-quiet"}, "-nz", "8", "-ny", "24", "-nx", "24")
	cmdErr := cmdBatch(context.Background(), args)
	wp.Close()
	os.Stdout = old
	out := <-captured
	if cmdErr != nil {
		t.Fatal(cmdErr)
	}
	var doc struct {
		Workers int `json:"workers"`
		Engine  struct {
			Requests uint64 `json:"Requests"`
			Cache    struct {
				DatasetMisses uint64
			}
		} `json:"engine"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("-stats output not JSON: %v: %s", err, out)
	}
	if doc.Workers <= 0 || doc.Engine.Requests == 0 || doc.Engine.Cache.DatasetMisses == 0 {
		t.Fatalf("stats content implausible: %s", out)
	}
}

// TestCmdServeBenchEmitsReport runs a miniature saturation bench and
// validates the report invariants.
func TestCmdServeBenchEmitsReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	args := []string{"-n", "60", "-concurrency", "12", "-max-inflight", "2",
		"-max-queue", "2", "-work-delay", "5ms", "-rows", "24", "-cols", "24", "-out", out}
	if err := cmdServeBench(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep serveBenchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report not JSON: %v: %s", err, raw)
	}
	if rep.OK+rep.Shed+rep.Errors != rep.Requests {
		t.Fatalf("outcomes do not sum: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("bench saw hard errors: %+v", rep)
	}
	if rep.Shed == 0 {
		t.Fatalf("no shedding at 12x concurrency over 4 slots: %+v", rep)
	}
	if rep.OK == 0 || rep.P50Ms <= 0 || rep.P99Ms < rep.P50Ms {
		t.Fatalf("latency stats implausible: %+v", rep)
	}
}

// TestCmdClusterBenchEmitsReport runs a miniature fleet bench and
// validates the report invariants: no hard errors, hedges fired against
// the slowed replica, and the hedged tail landed far below the injected
// delay.
func TestCmdClusterBenchEmitsReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	args := []string{"-n", "60", "-hedge-after", "15ms", "-slow-delay", "200ms", "-out", out}
	if err := cmdClusterBench(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep clusterBenchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report not JSON: %v: %s", err, raw)
	}
	if rep.Errors != 0 {
		t.Fatalf("bench saw request errors: %+v", rep)
	}
	if rep.Hedges == 0 || rep.Forwarded == 0 {
		t.Fatalf("bench never forwarded or hedged: %+v", rep)
	}
	if rep.HedgedP99Ms >= rep.SlowDelayMs {
		t.Fatalf("hedging did not beat the slow replica: %+v", rep)
	}
	if rep.HealthyP50Ms <= 0 || rep.HedgedP99Ms <= 0 {
		t.Fatalf("latency stats implausible: %+v", rep)
	}
}

// TestServeClusterFlags boots two clustered serve processes (in-process)
// that list each other as peers, and checks /statsz exposes the cluster
// block with both peers while estimates still succeed end to end.
func TestServeClusterFlags(t *testing.T) {
	dir := t.TempDir()
	trainTinySnapshot(t, dir)

	// Reserve two ports by binding and releasing, so both nodes can know
	// the full peer list up front.
	reserve := func() string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		return addr
	}
	a1, a2 := reserve(), reserve()
	peers := "http://" + a1 + ",http://" + a2

	var cancels []context.CancelFunc
	var dones []chan error
	for _, a := range []string{a1, a2} {
		addrFile := filepath.Join(t.TempDir(), "addr")
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func(a string) {
			done <- cmdServe(ctx, []string{
				"-model-dir", dir, "-addr", a, "-addr-file", addrFile,
				"-peers", peers, "-self", "http://" + a, "-hedge-after", "-1ms",
			})
		}(a)
		cancels = append(cancels, cancel)
		dones = append(dones, done)
	}
	defer func() {
		for _, c := range cancels {
			c()
		}
		for _, d := range dones {
			select {
			case err := <-d:
				if err != nil {
					t.Errorf("serve exited with %v", err)
				}
			case <-time.After(10 * time.Second):
				t.Error("serve did not drain after cancel")
			}
		}
	}()

	waitReady := func(addr string) {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get("http://" + addr + "/readyz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("node %s never became ready", addr)
	}
	waitReady(a1)
	waitReady(a2)

	resp, err := http.Get("http://" + a1 + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var sp struct {
		Cluster *struct {
			Self  string `json:"self"`
			Peers []struct {
				Addr string `json:"addr"`
			} `json:"peers"`
		} `json:"cluster"`
	}
	if err := json.Unmarshal(body, &sp); err != nil {
		t.Fatalf("statsz not JSON: %v: %s", err, body)
	}
	if sp.Cluster == nil {
		t.Fatalf("clustered serve missing cluster block: %s", body)
	}
	if sp.Cluster.Self != "http://"+a1 || len(sp.Cluster.Peers) != 2 {
		t.Fatalf("cluster block implausible: %s", body)
	}
}

// TestServeRegistryRoundTrip is the registry-mode CLI round trip: train
// seeds a lineage directory, serve -registry adopts it (re-sequenced as
// v1), estimates route with version headers, `crest models list` renders
// the lineage, and a configured tenant quota answers 429 with Retry-After
// once its burst is spent.
func TestServeRegistryRoundTrip(t *testing.T) {
	root := t.TempDir()
	trainTinySnapshot(t, filepath.Join(root, "default"))

	addr, cancel, done := startServe(t,
		"-registry", root, "-quota", "tiny=0.1:1,*=1000")
	defer cancel()
	base := "http://" + addr

	clientArgs := append([]string{"-url", base, "-dataset", "miranda",
		"-field", "density", "-step", "2", "-eps", "1e-3"}, "-nz", "8", "-ny", "24", "-nx", "24")
	if err := cmdClient(context.Background(), clientArgs); err != nil {
		t.Fatalf("client: %v", err)
	}

	// The models admin surface answers and carries the adopted version.
	r, err := http.Get(base + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	var doc struct {
		Lineages []struct {
			Name   string `json:"name"`
			Active int    `json:"active"`
		} `json:"lineages"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("models list: %v: %s", err, body)
	}
	if len(doc.Lineages) != 1 || doc.Lineages[0].Name != "default" || doc.Lineages[0].Active != 1 {
		t.Fatalf("lineages = %s", body)
	}
	if err := cmdModels(context.Background(), []string{"list", "-url", base}); err != nil {
		t.Fatalf("models list CLI: %v", err)
	}

	// The tiny tenant's burst of 1 is spent by the first request; the
	// second must be a 429 with a Retry-After hint.
	data := make([]float64, 64)
	for i := range data {
		data[i] = float64(i % 8)
	}
	estBody, err := json.Marshal(map[string]any{"rows": 8, "cols": 8, "data": data, "eps": 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{http.StatusOK, http.StatusTooManyRequests} {
		req, _ := http.NewRequest(http.MethodPost, base+"/v1/estimate", bytes.NewReader(estBody))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Crest-Tenant", "tiny")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("tiny tenant request %d: status %d, want %d", i, resp.StatusCode, want)
		}
		if want == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After")
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve did not drain cleanly: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not exit after cancellation")
	}
}

// TestServeRegistryFlagValidation pins the mutual-exclusion rules.
func TestServeRegistryFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-registry", "x", "-model", "y"},
		{"-registry", "x", "-model-dir", "y"},
		{"-registry", "x", "-peers", "http://a,http://b"},
		{},
	} {
		if err := cmdServe(context.Background(), args); err == nil {
			t.Errorf("args %v: expected a flag validation error", args)
		}
	}
}

// TestParseQuotaSpec covers the -quota grammar.
func TestParseQuotaSpec(t *testing.T) {
	cfg, err := parseQuotaSpec("alice=5:10, bob=2 ,*=100")
	if err != nil {
		t.Fatal(err)
	}
	if q := cfg.Tenants["alice"]; q.Rate != 5 || q.Burst != 10 {
		t.Fatalf("alice = %+v", q)
	}
	if q := cfg.Tenants["bob"]; q.Rate != 2 || q.Burst != 0 {
		t.Fatalf("bob = %+v", q)
	}
	if cfg.Default.Rate != 100 {
		t.Fatalf("default = %+v", cfg.Default)
	}
	for _, bad := range []string{"alice", "alice=", "alice=x", "alice=1:x", "=5"} {
		if _, err := parseQuotaSpec(bad); err == nil {
			t.Errorf("spec %q: expected an error", bad)
		}
	}
}
