// Command crest is the command-line front end of the library: it computes
// compressibility predictors, trains estimation models, predicts
// compression ratios with conformal bounds, runs the compressors, and
// prints field-similarity matrices — all on the built-in synthetic
// datasets or on raw little-endian float64 files.
//
// Usage:
//
//	crest metrics    -dataset hurricane -field TC -eps 1e-3
//	crest compress   -dataset hurricane -field TC -compressor szinterp -eps 1e-3
//	crest estimate   -dataset hurricane -field TC -compressor szinterp -eps 1e-3
//	crest similarity -dataset hurricane
//	crest rawfile    -file data.f64 -rows 512 -cols 512 -compressor zfplike -eps 1e-3
//	crest train      -dataset hurricane -field TC -dir models/
//	crest serve      -model-dir models/ -addr localhost:8080
//	crest serve      -registry registry/ -quota "alice=5:10,*=100"
//	crest models     list -url http://localhost:8080
//	crest client     -url http://localhost:8080 -dataset hurricane -step 3
//	crest stream     gen -dataset hurricane -field TC -nz 16 -o tc.crbs
//	crest stream     features -file tc.crbs -eps 1e-3
//	crest list
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	crest "github.com/crestlab/crest"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// The first SIGINT/SIGTERM cancels the context: workers finish the
	// buffer they are on and drain, and the command reports what completed.
	// A second signal kills the process the default way (stop restores the
	// default disposition).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "metrics":
		err = cmdMetrics(args)
	case "compress":
		err = cmdCompress(args)
	case "estimate":
		err = cmdEstimate(ctx, args)
	case "batch":
		err = cmdBatch(ctx, args)
	case "train":
		err = cmdTrain(ctx, args)
	case "serve":
		err = cmdServe(ctx, args)
	case "client":
		err = cmdClient(ctx, args)
	case "models":
		err = cmdModels(ctx, args)
	case "registrybench":
		err = cmdRegistryBench(ctx, args)
	case "stream":
		err = cmdStream(ctx, args)
	case "streambench":
		err = cmdStreamBench(args)
	case "servebench":
		err = cmdServeBench(ctx, args)
	case "clusterbench":
		err = cmdClusterBench(ctx, args)
	case "capacity":
		err = cmdCapacity(ctx, args)
	case "predbench":
		err = cmdPredBench(args)
	case "metricscheck":
		err = cmdMetricsCheck(ctx, args)
	case "similarity":
		err = cmdSimilarity(args)
	case "rawfile":
		err = cmdRawFile(args)
	case "volume":
		err = cmdVolume(args)
	case "list":
		err = cmdList(args)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "crest: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "crest %s: %v\n", cmd, err)
		if errors.Is(err, crest.ErrCanceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `crest <command> [flags]

commands:
  metrics     compute the five compressibility predictors for a field
  compress    run a compressor over a field and report ratios
  estimate    train on part of a field, predict the rest with bounds
  batch       concurrent batch estimation over buffers x error bounds
  train       train an estimator and persist it as a durable snapshot
  serve       serve the estimation HTTP API from a model snapshot
  client      estimate one buffer against a running server (with backoff)
  models      list, promote or roll back a registry server's model lineages
  registrybench model-lifecycle benchmark: canary decision latency + quota overhead
  stream      out-of-core: generate, featurize, estimate or post CRBS block streams
  streambench streaming-ingest benchmark: per-slice cost must stay flat with stream length
  servebench  in-process serving benchmark: tail latency + shed rate
  clusterbench in-process replicated-fleet benchmark: hedged tail latency with a slow replica
  capacity    concurrency sweep + Universal Scalability Law fit: contention, coherence, forecast peak
  predbench   predictor-kernel benchmark: ComputeDataset latency + allocs
  metricscheck verify a running server's GET /metrics exposes every expected series
  similarity  print the field-similarity (Mahalanobis) matrix of a dataset
  rawfile     compress a raw little-endian float64 file
  volume      compress a whole synthetic field as a 3D volume
  list        list datasets and compressors`)
}

// datasetFlags are shared flags for synthetic-dataset commands.
type datasetFlags struct {
	dataset, field string
	nz, ny, nx     int
	seed           int64
}

func (d *datasetFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&d.dataset, "dataset", "hurricane", "dataset: hurricane|nyx|miranda|cesm")
	fs.StringVar(&d.field, "field", "", "field name (empty: first field)")
	fs.IntVar(&d.nz, "nz", 20, "slices per field")
	fs.IntVar(&d.ny, "ny", 96, "rows per slice")
	fs.IntVar(&d.nx, "nx", 96, "columns per slice")
	fs.Int64Var(&d.seed, "seed", 1, "generation seed")
}

func (d *datasetFlags) load() (*crest.Dataset, *crest.Field, error) {
	opts := crest.DataOptions{NZ: d.nz, NY: d.ny, NX: d.nx, Seed: d.seed}
	var ds *crest.Dataset
	switch d.dataset {
	case "hurricane":
		ds = crest.HurricaneDataset(opts)
	case "nyx":
		ds = crest.NYXDataset(opts)
	case "miranda":
		ds = crest.MirandaDataset(opts)
	case "cesm":
		ds = crest.CESMDataset(opts)
	default:
		return nil, nil, fmt.Errorf("unknown dataset %q", d.dataset)
	}
	if d.field == "" {
		return ds, ds.Fields[0], nil
	}
	f := ds.Field(d.field)
	if f == nil {
		return nil, nil, fmt.Errorf("dataset %s has no field %q (have %v)", d.dataset, d.field, ds.FieldNames())
	}
	return ds, f, nil
}

func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	var df datasetFlags
	df.register(fs)
	eps := fs.Float64("eps", 1e-3, "absolute error bound")
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, field, err := df.load()
	if err != nil {
		return err
	}
	fmt.Printf("%-6s", "step")
	for _, n := range crest.FeatureNames {
		fmt.Printf(" %12s", n)
	}
	fmt.Println()
	for _, b := range field.Buffers {
		f, err := crest.ComputeFeatures(b, *eps, crest.PredictorConfig{})
		if err != nil {
			return err
		}
		fmt.Printf("%-6d", b.Step)
		for _, v := range f.Vector() {
			fmt.Printf(" %12.4f", v)
		}
		fmt.Println()
	}
	return nil
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	var df datasetFlags
	df.register(fs)
	eps := fs.Float64("eps", 1e-3, "absolute error bound")
	compName := fs.String("compressor", "szinterp", "compressor name")
	verify := fs.Bool("verify", true, "verify the error bound on every buffer")
	if err := fs.Parse(args); err != nil {
		return err
	}
	comp, err := crest.NewCompressor(*compName)
	if err != nil {
		return err
	}
	_, field, err := df.load()
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %10s %12s %10s\n", "step", "CR", "maxErr", "boundOK")
	for _, b := range field.Buffers {
		cr, err := crest.CompressionRatio(comp, b, *eps)
		if err != nil {
			return err
		}
		if *verify {
			maxErr, ok, err := crest.VerifyErrorBound(comp, b, *eps)
			if err != nil {
				return err
			}
			fmt.Printf("%-6d %10.3f %12.3e %10v\n", b.Step, cr, maxErr, ok)
		} else {
			fmt.Printf("%-6d %10.3f %12s %10s\n", b.Step, cr, "-", "-")
		}
	}
	return nil
}

func cmdEstimate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("estimate", flag.ExitOnError)
	var df datasetFlags
	df.register(fs)
	eps := fs.Float64("eps", 1e-3, "absolute error bound")
	compName := fs.String("compressor", "szinterp", "compressor name")
	trainFrac := fs.Float64("train", 0.7, "fraction of buffers used for training")
	timeout := fs.Duration("timeout", 0, "overall deadline for collection + training (0: none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	comp, err := crest.NewCompressor(*compName)
	if err != nil {
		return err
	}
	_, field, err := df.load()
	if err != nil {
		return err
	}
	nTrain := int(*trainFrac * float64(len(field.Buffers)))
	if nTrain < 4 || nTrain >= len(field.Buffers) {
		return fmt.Errorf("train fraction %g leaves %d/%d buffers for training", *trainFrac, nTrain, len(field.Buffers))
	}
	samples, err := crest.CollectSamplesContext(ctx, field.Buffers[:nTrain], comp, *eps, crest.PredictorConfig{}, 0)
	if err != nil {
		return err
	}
	est, err := crest.TrainEstimatorContext(ctx, samples, crest.EstimatorConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("trained on %d buffers; conformal radius %.4f (log CR)\n", nTrain, est.IntervalRadius())
	fmt.Printf("%-6s %10s %10s %20s %8s\n", "step", "true CR", "est CR", "95% interval", "APE")
	for _, b := range field.Buffers[nTrain:] {
		truth, err := crest.CompressionRatio(comp, b, *eps)
		if err != nil {
			return err
		}
		truth = math.Min(truth, 100)
		feats, err := crest.ComputeFeatureVector(b, *eps, crest.PredictorConfig{})
		if err != nil {
			return err
		}
		e, err := est.Estimate(feats)
		if err != nil {
			return err
		}
		ape := 100 * math.Abs(truth-e.CR) / truth
		fmt.Printf("%-6d %10.3f %10.3f [%8.3f,%8.3f] %7.2f%%\n", b.Step, truth, e.CR, e.Lo, e.Hi, ape)
	}
	return nil
}

func cmdBatch(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	var df datasetFlags
	df.register(fs)
	epsList := fs.String("eps", "1e-2,1e-3,1e-4", "comma-separated absolute error bounds")
	compName := fs.String("compressor", "szinterp", "compressor name")
	trainFrac := fs.Float64("train", 0.6, "fraction of buffers used for training")
	workers := fs.Int("workers", 0, "worker pool bound (0: GOMAXPROCS)")
	repeat := fs.Int("repeat", 1, "evaluate the whole request batch this many times (exercises the cache)")
	quiet := fs.Bool("quiet", false, "print only the stats snapshot")
	statsJSON := fs.Bool("stats", false, "emit the engine + cache stats snapshot as JSON")
	obsOut := fs.String("obs-out", "", "write an observability summary (predictor quantiles, cache hit rate, registry snapshot) to this JSON file")
	timeout := fs.Duration("timeout", 0, "per-batch deadline (0: none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var epses []float64
	for _, tok := range strings.Split(*epsList, ",") {
		e, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return fmt.Errorf("bad -eps entry %q: %v", tok, err)
		}
		epses = append(epses, e)
	}
	if len(epses) == 0 {
		return fmt.Errorf("need at least one error bound")
	}
	comp, err := crest.NewCompressor(*compName)
	if err != nil {
		return err
	}
	_, field, err := df.load()
	if err != nil {
		return err
	}
	nTrain := int(*trainFrac * float64(len(field.Buffers)))
	if nTrain < 4 || nTrain >= len(field.Buffers) {
		return fmt.Errorf("train fraction %g leaves %d/%d buffers for training", *trainFrac, nTrain, len(field.Buffers))
	}
	cfg := crest.EstimatorConfig{}
	var samples []crest.Sample
	for _, eps := range epses {
		s, err := crest.CollectSamplesContext(ctx, field.Buffers[:nTrain], comp, eps, cfg.Predictors, 0)
		if err != nil {
			return err
		}
		samples = append(samples, s...)
	}
	est, err := crest.TrainEstimatorContext(ctx, samples, cfg)
	if err != nil {
		return err
	}

	test := field.Buffers[nTrain:]
	reqs := make([]crest.BatchRequest, 0, len(test)*len(epses))
	for _, b := range test {
		for _, eps := range epses {
			reqs = append(reqs, crest.BatchRequest{Buf: b, Eps: eps})
		}
	}
	cache := crest.NewFeatureCache(cfg)
	engine := crest.NewBatchEstimator(est, cache, *workers)
	engine.SetBatchTimeout(*timeout)
	var ests []crest.Estimate
	for r := 0; r < maxInt(*repeat, 1); r++ {
		ests, err = engine.EstimateAllContext(ctx, reqs)
		if err != nil {
			return err
		}
	}
	if !*quiet {
		fmt.Printf("%-6s %10s %10s %20s\n", "step", "eps", "est CR", "95% interval")
		for i, r := range reqs {
			fmt.Printf("%-6d %10.2e %10.3f [%8.3f,%8.3f]\n", r.Buf.Step, r.Eps, ests[i].CR, ests[i].Lo, ests[i].Hi)
		}
	}
	st := engine.Stats()
	if *obsOut != "" {
		if err := writeObsSummary(*obsOut, st); err != nil {
			return err
		}
	}
	if *statsJSON {
		// The same shape /statsz serves for the engine half, so scripts
		// can consume either source.
		doc, err := json.MarshalIndent(struct {
			Workers int              `json:"workers"`
			Engine  crest.BatchStats `json:"engine"`
		}{engine.Workers(), st}, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(doc))
		return nil
	}
	fmt.Printf("workers:   %d\n", engine.Workers())
	fmt.Printf("requests:  %d in %d batch(es)\n", st.Requests, st.Batches)
	fmt.Printf("cache:     dataset %d hit / %d miss, distortion %d hit / %d miss\n",
		st.Cache.DatasetHits, st.Cache.DatasetMisses, st.Cache.EBHits, st.Cache.EBMisses)
	fmt.Printf("occupancy: peak %d in-flight\n", st.PeakInFlight)
	fmt.Printf("stages:    features %s, estimate %s (summed), wall %s\n",
		st.FeatureTime.Round(time.Microsecond), st.EstimateTime.Round(time.Microsecond),
		st.WallTime.Round(time.Microsecond))
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func cmdSimilarity(args []string) error {
	fs := flag.NewFlagSet("similarity", flag.ExitOnError)
	var df datasetFlags
	df.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, _, err := df.load()
	if err != nil {
		return err
	}
	sim, err := crest.FieldSimilarity(ds.Fields, crest.PredictorConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("%-8s", "")
	for _, f := range sim.Fields {
		fmt.Printf(" %8.8s", f)
	}
	fmt.Println()
	for i := range sim.Fields {
		fmt.Printf("%-8.8s", sim.Fields[i])
		for j := range sim.Fields {
			fmt.Printf(" %8.1f", sim.D[i][j])
		}
		fmt.Println()
	}
	return nil
}

func cmdRawFile(args []string) error {
	fs := flag.NewFlagSet("rawfile", flag.ExitOnError)
	file := fs.String("file", "", "raw little-endian float64 file")
	rows := fs.Int("rows", 0, "rows")
	cols := fs.Int("cols", 0, "columns")
	eps := fs.Float64("eps", 1e-3, "absolute error bound")
	compName := fs.String("compressor", "szinterp", "compressor name")
	out := fs.String("o", "", "write compressed stream to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" || *rows <= 0 || *cols <= 0 {
		return fmt.Errorf("need -file, -rows and -cols")
	}
	raw, err := os.ReadFile(*file)
	if err != nil {
		return err
	}
	if len(raw) != 8**rows**cols {
		return fmt.Errorf("file holds %d bytes, want %d for %dx%d float64", len(raw), 8**rows**cols, *rows, *cols)
	}
	data := make([]float64, *rows**cols)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	buf, err := crest.BufferFromSlice(*rows, *cols, data)
	if err != nil {
		return err
	}
	comp, err := crest.NewCompressor(*compName)
	if err != nil {
		return err
	}
	blob, err := comp.Compress(buf, *eps)
	if err != nil {
		return err
	}
	feats, err := crest.ComputeFeatures(buf, *eps, crest.PredictorConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("compressed %d -> %d bytes (CR %.3f) with %s at eps %g\n",
		buf.SizeBytes(), len(blob), float64(buf.SizeBytes())/float64(len(blob)), *compName, *eps)
	fmt.Printf("predictors: SD=%.4f SC=%.4f CG=%.4f CovSVD=%.4f D=%.4f\n",
		feats.SD, feats.SC, feats.CodingGain, feats.CovSVDTrunc, feats.Distortion)
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

func cmdVolume(args []string) error {
	fs := flag.NewFlagSet("volume", flag.ExitOnError)
	var df datasetFlags
	df.register(fs)
	eps := fs.Float64("eps", 1e-3, "absolute error bound")
	rel := fs.Float64("rel", 0, "value-range-relative bound (overrides -eps when > 0)")
	compName := fs.String("compressor", "szinterp", "compressor name")
	workers := fs.Int("workers", 4, "slice-compression workers")
	out := fs.String("o", "", "write the packed volume stream to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	comp, err := crest.NewCompressor(*compName)
	if err != nil {
		return err
	}
	_, field, err := df.load()
	if err != nil {
		return err
	}
	// Reassemble the field's slices into one contiguous volume.
	nz := len(field.Buffers)
	vol, err := crest.NewVolume(nz, field.Buffers[0].Rows, field.Buffers[0].Cols)
	if err != nil {
		return err
	}
	vol.Field = field.Name
	for z, b := range field.Buffers {
		copy(vol.Data[z*vol.NY*vol.NX:], b.Data)
	}
	bound := *eps
	if *rel > 0 {
		bound = crest.RelativeBound(vol.Slice(0), *rel)
		for z := 1; z < nz; z++ {
			if b := crest.RelativeBound(vol.Slice(z), *rel); b > bound {
				bound = b
			}
		}
		fmt.Printf("relative bound %g -> absolute %g\n", *rel, bound)
	}
	blob, err := crest.CompressVolume(comp, vol, bound, *workers)
	if err != nil {
		return err
	}
	back, err := crest.DecompressVolume(comp, blob, *workers)
	if err != nil {
		return err
	}
	worst := 0.0
	for i := range vol.Data {
		if d := math.Abs(vol.Data[i] - back.Data[i]); d > worst {
			worst = d
		}
	}
	raw := 8 * len(vol.Data)
	fmt.Printf("volume %s/%s %dx%dx%d: %d -> %d bytes (CR %.3f), max error %.3e (bound %g)\n",
		df.dataset, field.Name, vol.NZ, vol.NY, vol.NX, raw, len(blob),
		float64(raw)/float64(len(blob)), worst, bound)
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

func cmdList(args []string) error {
	fmt.Println("datasets:    hurricane nyx miranda cesm")
	fmt.Print("compressors:")
	for _, n := range crest.CompressorNames() {
		fmt.Printf(" %s", n)
	}
	fmt.Println()
	return nil
}
