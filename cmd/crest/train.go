package main

import (
	"context"
	"flag"
	"fmt"
	"strconv"
	"strings"

	crest "github.com/crestlab/crest"
)

// cmdTrain collects ground truth on a synthetic field, trains an
// estimator and persists it as a durable snapshot — the artifact
// `crest serve` loads at startup.
func cmdTrain(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	var df datasetFlags
	df.register(fs)
	epsList := fs.String("eps", "1e-2,1e-3", "comma-separated absolute error bounds to train across")
	compName := fs.String("compressor", "szinterp", "compressor providing ground-truth ratios")
	out := fs.String("o", "", "write the snapshot to this exact path")
	dir := fs.String("dir", "", "write a sequence-numbered snapshot into this directory")
	workers := fs.Int("workers", 0, "sample-collection workers (0: GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "overall deadline for collection + training (0: none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*out == "") == (*dir == "") {
		return fmt.Errorf("need exactly one of -o or -dir")
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var epses []float64
	for _, tok := range strings.Split(*epsList, ",") {
		e, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return fmt.Errorf("bad -eps entry %q: %v", tok, err)
		}
		epses = append(epses, e)
	}
	comp, err := crest.NewCompressor(*compName)
	if err != nil {
		return err
	}
	_, field, err := df.load()
	if err != nil {
		return err
	}
	cfg := crest.EstimatorConfig{}
	var samples []crest.Sample
	for _, eps := range epses {
		s, err := crest.CollectSamplesContext(ctx, field.Buffers, comp, eps, cfg.Predictors, *workers)
		if err != nil {
			return err
		}
		samples = append(samples, s...)
	}
	est, err := crest.TrainEstimatorContext(ctx, samples, cfg)
	if err != nil {
		return err
	}
	path := *out
	if *dir != "" {
		if path, err = crest.WriteNewEstimator(*dir, est); err != nil {
			return err
		}
	} else if err := crest.SaveEstimator(path, est); err != nil {
		return err
	}
	fmt.Printf("trained on %d samples (%s/%s x %d bounds); conformal radius %.4f (log CR)\n",
		len(samples), df.dataset, field.Name, len(epses), est.IntervalRadius())
	fmt.Printf("wrote %s\n", path)
	return nil
}
