package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	crest "github.com/crestlab/crest"
	"github.com/crestlab/crest/internal/batch"
	"github.com/crestlab/crest/internal/capacity"
	"github.com/crestlab/crest/internal/cluster"
	"github.com/crestlab/crest/internal/featcache"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/obs"
	"github.com/crestlab/crest/internal/predictors"
	"github.com/crestlab/crest/internal/server"
)

// capacityReport is the JSON document `crest capacity` emits —
// scripts/bench.sh archives the synthetic mode as BENCH_capacity.json
// and gates on PeakInRange plus the rel_err block.
type capacityReport struct {
	Mode     string `json:"mode"`
	SweptMin int    `json:"swept_min"`
	SweptMax int    `json:"swept_max"`
	// Levels carries the raw per-level aggregates of a real sweep
	// (absent in synthetic mode, which has no spans).
	Levels []capacity.LevelStats `json:"levels,omitempty"`
	// Curve is the (N, X) samples the fit consumed.
	Curve []capacity.Point `json:"curve"`
	Fit   *capacity.Fit    `json:"fit,omitempty"`
	// NStar/PeakX forecast the saturation point when the fitted κ > 0.
	NStar float64 `json:"n_star,omitempty"`
	PeakX float64 `json:"peak_throughput_rps,omitempty"`
	// PeakInRange reports whether the forecast peak lies inside the
	// swept concurrency range — the sanity gate of the committed
	// synthetic benchmark.
	PeakInRange bool `json:"peak_in_range"`
	// Truth and RelErr are present in synthetic mode only: the
	// generating parameters and the fit's relative recovery error.
	Truth  *capacity.Fit `json:"truth,omitempty"`
	RelErr *struct {
		Lambda float64 `json:"lambda_rel_err"`
		Sigma  float64 `json:"sigma_rel_err"`
		Kappa  float64 `json:"kappa_rel_err"`
	} `json:"rel_err,omitempty"`
	// PerPeer carries one fitted curve per replica in fleet mode, built
	// from the cluster layer's per-peer span tags.
	PerPeer map[string]*peerCapacity `json:"per_peer,omitempty"`
}

// peerCapacity is one replica's slice of a fleet sweep.
type peerCapacity struct {
	Curve []capacity.Point `json:"curve"`
	Fit   *capacity.Fit    `json:"fit,omitempty"`
	NStar float64          `json:"n_star,omitempty"`
}

// cmdCapacity runs a concurrency sweep — against an in-process server
// (default), a live server (-url), an in-process fleet (-nodes), or a
// synthetic USL curve with known parameters (-synthetic) — fits the
// Universal Scalability Law X(N) = λN/(1+σ(N−1)+κN(N−1)) to the measured
// throughputs, and reports contention σ, coherence κ and the forecast
// saturation point N*.
func cmdCapacity(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("capacity", flag.ExitOnError)
	levelsCSV := fs.String("levels", "1,2,4,8,16,32", "comma-separated concurrency levels to sweep")
	perLevel := fs.Int("per-level", 100, "requests offered per level")
	levelTimeout := fs.Duration("level-timeout", 15*time.Second, "wall-time bound per level (in-flight requests at expiry are canceled, not errors)")
	url := fs.String("url", "", "sweep a live server at this base URL instead of booting one in-process")
	nodes := fs.Int("nodes", 0, "boot an in-process fleet of this size and sweep through its first node (0: single server)")
	synthetic := fs.Bool("synthetic", false, "skip the sweep: generate X(N) from known (lambda, sigma, kappa) plus noise and report fit recovery error")
	lambda := fs.Float64("lambda", 1000, "synthetic single-stream throughput λ (req/s)")
	sigma := fs.Float64("sigma", 0.05, "synthetic contention σ")
	kappa := fs.Float64("kappa", 0.001, "synthetic coherence κ")
	noise := fs.Float64("noise", 0.02, "synthetic multiplicative throughput noise amplitude")
	seed := fs.Int64("seed", 7, "synthetic noise seed")
	maxInflight := fs.Int("max-inflight", 4, "in-process server execution slots")
	maxQueue := fs.Int("max-queue", 64, "in-process server queue bound")
	workDelay := fs.Duration("work-delay", 2*time.Millisecond, "injected per-estimate work (in-process modes)")
	rows := fs.Int("rows", 32, "benchmark buffer rows")
	cols := fs.Int("cols", 32, "benchmark buffer columns")
	out := fs.String("out", "-", "write the JSON report here (-: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	levels, err := parseLevels(*levelsCSV)
	if err != nil {
		return err
	}

	var report capacityReport
	report.SweptMin, report.SweptMax = levels[0], levels[len(levels)-1]
	switch {
	case *synthetic:
		report = syntheticCapacity(levels, *lambda, *sigma, *kappa, *noise, *seed)
	case *url != "":
		report, err = sweepCapacity(ctx, "url", levels, *perLevel, *levelTimeout, nil,
			httpEstimateDo(*url, *rows, *cols))
	case *nodes > 0:
		report, err = fleetCapacity(ctx, levels, *perLevel, *levelTimeout, *nodes,
			*maxInflight, *maxQueue, *workDelay, *rows, *cols)
	default:
		report, err = localCapacity(ctx, levels, *perLevel, *levelTimeout,
			*maxInflight, *maxQueue, *workDelay, *rows, *cols)
	}
	if err != nil {
		return err
	}

	printCapacityHuman(os.Stderr, report)
	doc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(doc)
		return err
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// parseLevels parses the -levels CSV into ascending unique ints ≥ 1.
func parseLevels(csv string) ([]int, error) {
	var levels []int
	for _, tok := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return nil, fmt.Errorf("bad -levels entry %q: %v", tok, err)
		}
		if n < 1 {
			return nil, fmt.Errorf("concurrency level %d < 1", n)
		}
		levels = append(levels, n)
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("need at least one concurrency level")
	}
	sort.Ints(levels)
	uniq := levels[:1]
	for _, n := range levels[1:] {
		if n != uniq[len(uniq)-1] {
			uniq = append(uniq, n)
		}
	}
	return uniq, nil
}

// finishFit attaches the USL fit (and its saturation forecast) to a
// report whose Curve is already populated.
func finishFit(report *capacityReport) {
	fit, err := capacity.FitUSL(report.Curve)
	if err != nil {
		fmt.Fprintf(os.Stderr, "capacity: fit skipped: %v\n", err)
		return
	}
	report.Fit = &fit
	if nstar, xpeak, ok := fit.Peak(); ok {
		report.NStar, report.PeakX = nstar, xpeak
		report.PeakInRange = nstar >= float64(report.SweptMin) && nstar <= float64(report.SweptMax)
	}
}

// syntheticCapacity generates X(N) from a known USL curve with seeded
// multiplicative noise and reports how well the fit recovers the
// generating parameters — the deterministic workload the committed
// BENCH_capacity.json gate runs on.
func syntheticCapacity(levels []int, lambda, sigma, kappa, noise float64, seed int64) capacityReport {
	truth := capacity.Fit{Lambda: lambda, Sigma: sigma, Kappa: kappa}
	rng := rand.New(rand.NewSource(seed))
	report := capacityReport{
		Mode:     "synthetic",
		SweptMin: levels[0],
		SweptMax: levels[len(levels)-1],
		Truth:    &truth,
	}
	for _, n := range levels {
		x := truth.Throughput(float64(n)) * (1 + noise*(2*rng.Float64()-1))
		report.Curve = append(report.Curve, capacity.Point{N: float64(n), X: x})
	}
	finishFit(&report)
	if report.Fit != nil {
		rel := func(got, want float64) float64 {
			if want == 0 {
				return math.Abs(got)
			}
			return math.Abs(got-want) / math.Abs(want)
		}
		report.RelErr = &struct {
			Lambda float64 `json:"lambda_rel_err"`
			Sigma  float64 `json:"sigma_rel_err"`
			Kappa  float64 `json:"kappa_rel_err"`
		}{
			Lambda: rel(report.Fit.Lambda, lambda),
			Sigma:  rel(report.Fit.Sigma, sigma),
			Kappa:  rel(report.Fit.Kappa, kappa),
		}
	}
	return report
}

// sweepCapacity runs the shared sweep-and-fit path over any Do function.
func sweepCapacity(ctx context.Context, mode string, levels []int, perLevel int,
	levelTimeout time.Duration, rec *capacity.Recorder,
	do func(context.Context) error) (capacityReport, error) {
	stats, err := capacity.Sweep(ctx, capacity.SweepConfig{
		Levels:       levels,
		PerLevel:     perLevel,
		LevelTimeout: levelTimeout,
		Recorder:     rec,
		Do:           do,
	})
	if err != nil {
		return capacityReport{}, err
	}
	report := capacityReport{
		Mode:     mode,
		SweptMin: levels[0],
		SweptMax: levels[len(levels)-1],
		Levels:   stats,
		Curve:    capacity.CurveFromLevels(stats),
	}
	finishFit(&report)
	return report, nil
}

// benchEstimator trains the tiny synthetic model the serving benches
// share: the load tools measure the serving stack, not model quality.
func benchEstimator(ctx context.Context, seed int64) (*crest.Estimator, error) {
	rng := rand.New(rand.NewSource(seed))
	samples := make([]crest.Sample, 60)
	for i := range samples {
		f := make([]float64, 5)
		for j := range f {
			f[j] = rng.NormFloat64()
		}
		samples[i] = crest.Sample{Features: f, CR: 1 + 8*math.Exp(0.4*f[0])}
	}
	return crest.TrainEstimatorContext(ctx, samples, crest.EstimatorConfig{})
}

// httpEstimateDo builds a sweep Do that posts distinct estimate bodies
// (the phase varies per request so the server's feature cache cannot
// collapse the work) and classifies by status code: 200 OK, 503 shed,
// anything else an error.
func httpEstimateDo(baseURL string, rows, cols int) func(context.Context) error {
	var seq atomic.Int64
	client := &http.Client{}
	return func(ctx context.Context) error {
		i := seq.Add(1)
		data := make([]float64, rows*cols)
		for j := range data {
			r, c := j/cols, j%cols
			data[j] = math.Sin(float64(r)/5+float64(i)) * math.Cos(float64(c)/7)
		}
		body, err := json.Marshal(server.EstimateRequest{
			Dataset: "capacity", Field: fmt.Sprintf("f%d", i),
			Rows: rows, Cols: cols, Data: data, Eps: 1e-3,
		})
		if err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			baseURL+"/v1/estimate", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return crest.ErrCanceled
			}
			return err
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return nil
		case http.StatusServiceUnavailable:
			return fmt.Errorf("%w: server shed the request", crest.ErrOverloaded)
		default:
			return fmt.Errorf("HTTP %d from %s", resp.StatusCode, baseURL)
		}
	}
}

// localCapacity boots the servebench-style in-process server (injected
// per-estimate work, bounded admission) and sweeps it.
func localCapacity(ctx context.Context, levels []int, perLevel int, levelTimeout time.Duration,
	maxInflight, maxQueue int, workDelay time.Duration, rows, cols int) (capacityReport, error) {
	est, err := benchEstimator(ctx, 17)
	if err != nil {
		return capacityReport{}, err
	}
	pcfg := est.PredictorConfig()
	delayed := func(buf *grid.Buffer, c predictors.Config) (predictors.DatasetFeatures, error) {
		time.Sleep(workDelay)
		return predictors.ComputeDataset(buf, c)
	}
	cache := featcache.NewWithCompute(pcfg, delayed, nil)
	srv, err := server.New(server.Config{
		Engine:      batch.New(est, cache, maxInflight),
		MaxInflight: maxInflight,
		MaxQueue:    maxQueue,
		Obs:         obs.NewRegistry(),
	})
	if err != nil {
		return capacityReport{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return capacityReport{}, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	return sweepCapacity(ctx, "server", levels, perLevel, levelTimeout, nil,
		httpEstimateDo("http://"+ln.Addr().String(), rows, cols))
}

// fleetCapacity boots a clusterbench-style in-process fleet, attaches a
// span recorder to the entry node's cluster layer, sweeps through that
// node and fits the USL both fleet-wide and per replica.
func fleetCapacity(ctx context.Context, levels []int, perLevel int, levelTimeout time.Duration,
	nodes, maxInflight, maxQueue int, workDelay time.Duration, rows, cols int) (capacityReport, error) {
	if nodes < 2 {
		return capacityReport{}, fmt.Errorf("fleet mode needs at least 2 nodes, got %d", nodes)
	}
	est, err := benchEstimator(ctx, 23)
	if err != nil {
		return capacityReport{}, err
	}
	lns := make([]net.Listener, nodes)
	addrs := make([]string, nodes)
	for i := range lns {
		if lns[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			return capacityReport{}, err
		}
		addrs[i] = "http://" + lns[i].Addr().String()
	}
	var rec capacity.Recorder
	pcfg := est.PredictorConfig()
	for i := range addrs {
		ccfg := cluster.Config{
			Self:           addrs[i],
			Peers:          addrs,
			ForwardTimeout: 10 * time.Second,
			Health:         cluster.HealthConfig{Interval: time.Hour, Seed: int64(i + 1)},
			Obs:            obs.NewRegistry(),
		}
		if i == 0 {
			ccfg.Spans = &rec
		}
		cl, err := cluster.New(ccfg)
		if err != nil {
			return capacityReport{}, err
		}
		defer cl.Close()
		delayed := func(buf *grid.Buffer, c predictors.Config) (predictors.DatasetFeatures, error) {
			time.Sleep(workDelay)
			return predictors.ComputeDataset(buf, c)
		}
		srv, err := server.New(server.Config{
			Engine:      batch.New(est, featcache.NewWithCompute(pcfg, delayed, nil), maxInflight),
			MaxInflight: maxInflight,
			MaxQueue:    maxQueue,
			Cluster:     cl,
			Obs:         obs.NewRegistry(),
		})
		if err != nil {
			return capacityReport{}, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(lns[i])
		defer hs.Close()
	}

	report, err := sweepCapacity(ctx, "fleet", levels, perLevel, levelTimeout, &rec,
		httpEstimateDo(addrs[0], rows, cols))
	if err != nil {
		return report, err
	}
	report.PerPeer = make(map[string]*peerCapacity)
	for peer, pts := range capacity.PeerCurves(rec.Spans(), report.Levels) {
		pc := &peerCapacity{Curve: pts}
		if fit, err := capacity.FitUSL(pts); err == nil {
			pc.Fit = &fit
			if nstar, _, ok := fit.Peak(); ok {
				pc.NStar = nstar
			}
		}
		report.PerPeer[peer] = pc
	}
	return report, nil
}

// printCapacityHuman writes the operator-facing summary: the measured
// curve and what the fit says about where the deployment saturates.
func printCapacityHuman(w *os.File, r capacityReport) {
	fmt.Fprintf(w, "capacity sweep (%s mode), levels %d..%d\n", r.Mode, r.SweptMin, r.SweptMax)
	if len(r.Levels) > 0 {
		fmt.Fprintf(w, "%-6s %10s %6s %6s %6s %6s %10s %10s\n",
			"N", "X (req/s)", "ok", "shed", "err", "cncl", "p50", "p99")
		for _, l := range r.Levels {
			fmt.Fprintf(w, "%-6d %10.1f %6d %6d %6d %6d %10s %10s\n",
				l.N, l.Throughput, l.OK, l.Shed, l.Errors, l.Canceled,
				l.P50.Round(100*time.Microsecond), l.P99.Round(100*time.Microsecond))
		}
	} else {
		for _, p := range r.Curve {
			fmt.Fprintf(w, "  N=%-5g X=%.1f req/s\n", p.N, p.X)
		}
	}
	if r.Fit == nil {
		fmt.Fprintln(w, "no USL fit (need ≥3 distinct levels with served requests)")
		return
	}
	fmt.Fprintf(w, "USL fit: λ=%.1f req/s, σ=%.4f (contention), κ=%.6f (coherence), R²=%.4f\n",
		r.Fit.Lambda, r.Fit.Sigma, r.Fit.Kappa, r.Fit.R2)
	switch {
	case r.Fit.Kappa > 0:
		inRange := "inside"
		if !r.PeakInRange {
			inRange = "OUTSIDE"
		}
		fmt.Fprintf(w, "forecast: peak %.1f req/s at N*=%.1f (%s the swept range); beyond N* throughput is retrograde\n",
			r.PeakX, r.NStar, inRange)
	case r.Fit.Sigma > 0:
		fmt.Fprintf(w, "forecast: no interior peak (κ=0); throughput approaches λ/σ = %.1f req/s asymptotically\n",
			r.Fit.Lambda/r.Fit.Sigma)
	default:
		fmt.Fprintln(w, "forecast: linear scaling over the swept range (σ=κ=0)")
	}
	if r.RelErr != nil {
		fmt.Fprintf(w, "recovery: λ %.2f%%, σ %.2f%%, κ %.2f%% relative error vs truth\n",
			100*r.RelErr.Lambda, 100*r.RelErr.Sigma, 100*r.RelErr.Kappa)
	}
	peers := make([]string, 0, len(r.PerPeer))
	for p := range r.PerPeer {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	for _, p := range peers {
		pc := r.PerPeer[p]
		if pc.Fit != nil {
			fmt.Fprintf(w, "  peer %s: λ=%.1f σ=%.4f κ=%.6f", p, pc.Fit.Lambda, pc.Fit.Sigma, pc.Fit.Kappa)
			if pc.NStar > 0 {
				fmt.Fprintf(w, " N*=%.1f", pc.NStar)
			}
			fmt.Fprintln(w)
		} else {
			fmt.Fprintf(w, "  peer %s: %d curve point(s), no fit\n", p, len(pc.Curve))
		}
	}
}
