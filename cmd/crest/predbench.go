package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	crest "github.com/crestlab/crest"
)

// predBenchReport is the schema of BENCH_predictors.json: tail latency and
// steady-state allocation cost of the fused dataset-predictor pass
// (ComputeDataset) on a synthetic buffer. scripts/bench.sh archives it and
// CI runs a small smoke configuration to catch kernel regressions.
type predBenchReport struct {
	Edge    int    `json:"edge"`
	K       int    `json:"k"`
	Blocks  int    `json:"blocks"`
	Iters   int    `json:"iters"`
	Workers int    `json:"workers"`
	DType   string `json:"dtype"`

	P50Seconds  float64 `json:"p50_seconds"`
	P90Seconds  float64 `json:"p90_seconds"`
	MeanSeconds float64 `json:"mean_seconds"`

	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// cmdPredBench benchmarks ComputeDataset in-process: warmup iterations
// populate the scratch pools, then timed iterations record per-call wall
// latency and the runtime.MemStats allocation deltas.
func cmdPredBench(args []string) error {
	fs := flag.NewFlagSet("predbench", flag.ExitOnError)
	edge := fs.Int("edge", 512, "buffer edge length (edge×edge float64)")
	k := fs.Int("k", 8, "block edge length")
	iters := fs.Int("iters", 20, "timed iterations")
	warmup := fs.Int("warmup", 2, "untimed warmup iterations (fill the scratch pools)")
	workers := fs.Int("workers", 0, "predictor workers (0: GOMAXPROCS)")
	dtype := fs.String("dtype", "f64", "element type of the benchmarked buffer: f64 or f32 (native single-precision kernels)")
	out := fs.String("out", "BENCH_predictors.json", "write the JSON report to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *edge < *k || *iters < 1 {
		return fmt.Errorf("need edge ≥ k and iters ≥ 1")
	}
	if *dtype != "f64" && *dtype != "f32" {
		return fmt.Errorf("unknown -dtype %q (want f64 or f32)", *dtype)
	}

	buf, err := synthBuffer(*edge)
	if err != nil {
		return err
	}
	cfg := crest.PredictorConfig{K: *k, Workers: *workers}
	var op func() error
	if *dtype == "f32" {
		buf32, err := crest.NewBuffer32(*edge, *edge)
		if err != nil {
			return err
		}
		for i, v := range buf.Data {
			buf32.Data[i] = float32(v)
		}
		op = func() error {
			_, err := crest.ComputeDatasetFeatures32(buf32, cfg)
			return err
		}
	} else {
		op = func() error {
			_, err := crest.ComputeDatasetFeatures(buf, cfg)
			return err
		}
	}
	for i := 0; i < *warmup; i++ {
		if err := op(); err != nil {
			return err
		}
	}

	lat := make([]float64, *iters)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := range lat {
		t0 := time.Now()
		if err := op(); err != nil {
			return err
		}
		lat[i] = time.Since(t0).Seconds()
	}
	runtime.ReadMemStats(&after)

	sort.Float64s(lat)
	var sum float64
	for _, v := range lat {
		sum += v
	}
	n := int64(*iters)
	rep := predBenchReport{
		Edge:        *edge,
		K:           *k,
		Blocks:      (*edge / *k) * (*edge / *k),
		Iters:       *iters,
		Workers:     *workers,
		DType:       *dtype,
		P50Seconds:  quantileSorted(lat, 0.50),
		P90Seconds:  quantileSorted(lat, 0.90),
		MeanSeconds: sum / float64(*iters),
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / n,
	}
	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(doc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("predbench: %dx%d k=%d %s: p50 %.1fms p90 %.1fms, %d allocs/op %d B/op -> %s\n",
		*edge, *edge, *k, *dtype, 1e3*rep.P50Seconds, 1e3*rep.P90Seconds,
		rep.AllocsPerOp, rep.BytesPerOp, *out)
	return nil
}

// synthBuffer builds the deterministic smooth-plus-oscillation field the
// kernel benchmarks use, so CLI and go-test numbers are comparable.
func synthBuffer(edge int) (*crest.Buffer, error) {
	data := make([]float64, edge*edge)
	for r := 0; r < edge; r++ {
		x := float64(r) / float64(edge)
		for c := 0; c < edge; c++ {
			y := float64(c) / float64(edge)
			data[r*edge+c] = math.Sin(7*x)*math.Cos(5*y) + 0.1*math.Sin(113*(x+2*y))
		}
	}
	return crest.BufferFromSlice(edge, edge, data)
}

// quantileSorted returns the q-quantile of ascending xs (nearest-rank).
func quantileSorted(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(q * float64(len(xs)-1))
	return xs[i]
}
