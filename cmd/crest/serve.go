package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	crest "github.com/crestlab/crest"
	"github.com/crestlab/crest/internal/cluster"
	"github.com/crestlab/crest/internal/obs"
	"github.com/crestlab/crest/internal/registry"
	"github.com/crestlab/crest/internal/server"
)

// cmdServe loads a model snapshot and serves the estimation API until the
// context is canceled (SIGINT/SIGTERM), then drains gracefully: readiness
// is withdrawn, inflight requests finish, listeners close, and only then
// does the process exit. A corrupt or unreadable snapshot is a typed
// startup error — never a panic — and a corrupt newest snapshot in
// -model-dir falls back to the previous valid one.
func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	model := fs.String("model", "", "snapshot file to serve")
	modelDir := fs.String("model-dir", "", "snapshot directory: serve the newest valid snapshot")
	addr := fs.String("addr", "localhost:8080", "listen address (host:port; port 0 picks a free port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening")
	workers := fs.Int("workers", 0, "estimation workers (0: GOMAXPROCS)")
	maxInflight := fs.Int("max-inflight", 0, "max concurrently executing requests (0: worker count)")
	maxQueue := fs.Int("max-queue", 0, "max queued requests before shedding (0: 4x inflight)")
	reqTimeout := fs.Duration("timeout", 30*time.Second, "per-request deadline (negative: none)")
	retryAfter := fs.Duration("retry-after", time.Second, "backoff hint advertised on 503 responses")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max wait for inflight requests at shutdown")
	pprof := fs.Bool("pprof", false, "mount the Go profiler under /debug/pprof/")
	slowReq := fs.Duration("slow-request", time.Second, "log requests slower than this with their request ID (negative: never)")
	capacityWindow := fs.Duration("capacity-window", 0, "online capacity sampling interval: pair served-counter deltas with the inflight gauge into an X(N) curve exposed at /statsz (0: off)")
	recal := fs.Bool("recalibrate", false, "enable online conformal recalibration from POST /v1/feedback observations")
	recalWindow := fs.Int("recal-window", 512, "rolling observation window for recalibration")
	recalBand := fs.Float64("recal-band", 0.03, "coverage band half-width around the conformal target")
	peers := fs.String("peers", "", "comma-separated replica base URLs (including this node); empty: single-node")
	self := fs.String("self", "", "this node's base URL as it appears in -peers (default http://<addr>)")
	replicas := fs.Int("replicas", 2, "owner replica-set size per routing key")
	forwardDepth := fs.Int("forward-depth", 1, "max forwarding hops before a request is served locally")
	hedgeAfter := fs.Duration("hedge-after", 0, "fixed backup-request delay (0: adaptive p90 of recent forwards; negative: no hedging)")
	breakerThreshold := fs.Int("breaker-threshold", 5, "consecutive forward failures that open a peer's circuit breaker")
	breakerOpenFor := fs.Duration("breaker-open-for", 2*time.Second, "how long an open breaker rejects a peer before half-open probing")
	registryDir := fs.String("registry", "", "serve from a model registry root (each subdirectory is one lineage); mutually exclusive with -model/-model-dir/-peers")
	canaryFraction := fs.Float64("canary-fraction", 0.1, "traffic fraction routed to a canary candidate (registry mode)")
	keep := fs.Int("keep", 0, "per-lineage snapshot retention budget (registry mode; 0: default, negative: keep all)")
	quota := fs.String("quota", "", `per-tenant admission quotas "name=rate[:burst],..." in req/s (registry mode; entry "*=..." bounds unlisted tenants)`)
	driftThreshold := fs.Float64("drift-threshold", 0, "rolling feedback MedAPE %% that triggers background retraining (registry mode; 0: off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sources := 0
	for _, set := range []bool{*model != "", *modelDir != "", *registryDir != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return fmt.Errorf("need exactly one of -model, -model-dir or -registry")
	}
	if *registryDir != "" && *peers != "" {
		return fmt.Errorf("-registry and -peers are mutually exclusive")
	}

	var est *crest.Estimator
	var reg *registry.Registry
	var err error
	if *registryDir != "" {
		qcfg, qerr := parseQuotaSpec(*quota)
		if qerr != nil {
			return qerr
		}
		reg, err = registry.Open(registry.Config{
			Root:    *registryDir,
			Workers: *workers,
			Keep:    *keep,
			Canary:  registry.CanaryConfig{Fraction: *canaryFraction},
			Quota:   qcfg,
			Drift:   registry.DriftConfig{MedAPEThreshold: *driftThreshold},
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "crest serve: registry: "+format+"\n", args...)
			},
		})
		if err != nil {
			return fmt.Errorf("open registry: %w", err)
		}
		defer reg.Close()
		fmt.Fprintf(os.Stderr, "crest serve: registry %s hosting lineages %v (canary fraction %g)\n",
			*registryDir, reg.Lineages(), *canaryFraction)
	} else {
		var from string
		if *model != "" {
			from = *model
			est, err = crest.LoadEstimator(*model)
		} else {
			est, from, err = crest.LoadLatestEstimator(*modelDir)
		}
		if err != nil {
			return fmt.Errorf("load model: %w", err)
		}
		fmt.Fprintf(os.Stderr, "crest serve: model %s (conformal radius %.4f)\n", from, est.IntervalRadius())
		if *recal {
			if est.OnlineRecalibrationEnabled() {
				// The snapshot carried a live tracker; resume its window and
				// recalibrated radius rather than resetting to the flags.
				ost, _ := est.OnlineStats()
				fmt.Fprintf(os.Stderr, "crest serve: online recalibration resumed from snapshot (observed %d, windowed %d, radius %.4f)\n",
					ost.Observed, ost.Windowed, ost.Radius)
			} else {
				est.EnableOnlineRecalibration(crest.OnlineConformalConfig{Window: *recalWindow, Band: *recalBand})
				fmt.Fprintf(os.Stderr, "crest serve: online recalibration on (window %d, band ±%.3f)\n", *recalWindow, *recalBand)
			}
		}
	}

	// The listener binds before the cluster layer so -self can default to
	// the actually-bound address (port 0 picks a free port).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()

	var cl *cluster.Cluster
	if *peers != "" {
		var list []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				list = append(list, p)
			}
		}
		selfURL := *self
		if selfURL == "" {
			selfURL = "http://" + bound
		}
		cl, err = cluster.New(cluster.Config{
			Self:            selfURL,
			Peers:           list,
			Replicas:        *replicas,
			MaxForwardDepth: *forwardDepth,
			HedgeAfter:      *hedgeAfter,
			Breaker: cluster.BreakerConfig{
				FailureThreshold: *breakerThreshold,
				OpenFor:          *breakerOpenFor,
			},
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "crest serve: cluster: "+format+"\n", args...)
			},
		})
		if err != nil {
			ln.Close()
			return fmt.Errorf("cluster: %w", err)
		}
		cl.Start()
		defer cl.Close()
		fmt.Fprintf(os.Stderr, "crest serve: clustered as %s across %d peers (replicas %d)\n",
			selfURL, len(list), *replicas)
	}

	var engine *crest.BatchEstimator
	if est != nil {
		engine = crest.NewBatchEstimator(est, nil, *workers)
	}
	srv, err := server.New(server.Config{
		Engine:         engine,
		Registry:       reg,
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		RequestTimeout: *reqTimeout,
		RetryAfter:     *retryAfter,
		EnablePprof:    *pprof,
		SlowRequest:    *slowReq,
		CapacityWindow: *capacityWindow,
		Cluster:        cl,
		Logger:         obs.NewLogger(os.Stderr),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "crest serve: "+format+"\n", args...)
		},
	})
	if err != nil {
		ln.Close()
		return err
	}

	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	if *capacityWindow > 0 {
		fmt.Fprintf(os.Stderr, "crest serve: online capacity sampling every %s\n", *capacityWindow)
	}
	fmt.Fprintf(os.Stderr, "crest serve: listening on %s\n", bound)

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting (readiness flips inside Drain), let
	// inflight work finish, then close the listener and connections.
	fmt.Fprintf(os.Stderr, "crest serve: draining (up to %s)\n", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "crest serve: drain incomplete: %v\n", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "crest serve: drained; served %d, shed %d, failed %d\n",
		st.Served, st.Shed, st.Failed)
	return nil
}
