package main

import (
	"context"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var tinyArgs = []string{"-nz", "6", "-ny", "24", "-nx", "24"}

func TestCmdMetrics(t *testing.T) {
	args := append([]string{"-dataset", "miranda", "-field", "density", "-eps", "1e-3"}, tinyArgs...)
	if err := cmdMetrics(args); err != nil {
		t.Fatal(err)
	}
}

func TestCmdCompress(t *testing.T) {
	args := append([]string{"-dataset", "cesm", "-compressor", "zfplike"}, tinyArgs...)
	if err := cmdCompress(args); err != nil {
		t.Fatal(err)
	}
}

func TestCmdEstimate(t *testing.T) {
	args := append([]string{"-dataset", "miranda", "-field", "pressure", "-train", "0.7"}, "-nz", "10", "-ny", "24", "-nx", "24")
	if err := cmdEstimate(context.Background(), args); err != nil {
		t.Fatal(err)
	}
}

func TestCmdSimilarity(t *testing.T) {
	args := append([]string{"-dataset", "nyx"}, tinyArgs...)
	if err := cmdSimilarity(args); err != nil {
		t.Fatal(err)
	}
}

func TestCmdList(t *testing.T) {
	if err := cmdList(nil); err != nil {
		t.Fatal(err)
	}
}

func TestCmdRawFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.f64")
	rows, cols := 16, 16
	raw := make([]byte, 8*rows*cols)
	for i := 0; i < rows*cols; i++ {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(math.Sin(float64(i)/7)))
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.bin")
	err := cmdRawFile([]string{"-file", path, "-rows", "16", "-cols", "16", "-compressor", "szinterp", "-o", out})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("output not written: %v", err)
	}
	// Shape mismatch rejected.
	if err := cmdRawFile([]string{"-file", path, "-rows", "10", "-cols", "10"}); err == nil {
		t.Error("shape mismatch accepted")
	}
	if err := cmdRawFile([]string{"-rows", "10", "-cols", "10"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestDatasetFlagErrors(t *testing.T) {
	var df datasetFlags
	df.dataset = "nope"
	df.nz, df.ny, df.nx = 2, 8, 8
	if _, _, err := df.load(); err == nil {
		t.Error("unknown dataset accepted")
	}
	df.dataset = "nyx"
	df.field = "missing"
	if _, _, err := df.load(); err == nil {
		t.Error("unknown field accepted")
	}
	df.field = ""
	if _, f, err := df.load(); err != nil || f == nil {
		t.Errorf("default field load failed: %v", err)
	}
}

func TestCmdVolume(t *testing.T) {
	args := append([]string{"-dataset", "miranda", "-field", "density", "-compressor", "zfplike"}, tinyArgs...)
	if err := cmdVolume(args); err != nil {
		t.Fatal(err)
	}
	// Relative-bound path.
	args = append([]string{"-dataset", "miranda", "-rel", "1e-3"}, tinyArgs...)
	if err := cmdVolume(args); err != nil {
		t.Fatal(err)
	}
}
