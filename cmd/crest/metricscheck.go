package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	crest "github.com/crestlab/crest"
	"github.com/crestlab/crest/internal/obs"
)

// metricsDoc mirrors the GET /metrics payload shape loosely enough to
// survive additive changes: unknown fields are ignored, and the checks
// below only assert the series this build is known to emit.
type metricsDoc struct {
	Counters   map[string]uint64                `json:"counters"`
	Gauges     map[string]int64                 `json:"gauges"`
	Histograms map[string]obs.HistogramSnapshot `json:"histograms"`
	Derived    struct {
		FeatcacheHitRate float64 `json:"featcache_hit_rate"`
	} `json:"derived"`
}

// requiredHistograms must exist after the server has served at least one
// estimate from a snapshot-loaded model; those marked nonzero must also
// have recorded at least one observation.
var requiredHistograms = []struct {
	name    string
	nonzero bool
}{
	{"http_request_seconds_estimate", true},
	{"http_request_seconds_batch", false},
	{"predictor_sd_seconds", true},
	{"predictor_sc_seconds", true},
	{"predictor_coding_gain_seconds", true},
	{"predictor_cov_svd_seconds", true},
	{"predictor_distortion_seconds", true},
	{"batch_feature_seconds", true},
	{"batch_estimate_seconds", true},
	{"batch_request_seconds", true},
	{"snapshot_load_seconds", true},
}

var requiredGauges = []string{"server_queue_depth", "server_inflight"}

// registryHistograms/Gauges/Counters are additionally required when
// -registry is set: the series a registry-mode server must expose after
// serving at least one routed estimate. Lifecycle counters (publishes,
// promotions, rollbacks, retrains) must exist but need not have fired.
var registryHistograms = []struct {
	name    string
	nonzero bool
}{
	{"registry_decision_seconds", false},
}

var registryGauges = []string{"registry_lineages"}

var registryCounters = []struct {
	name    string
	nonzero bool
}{
	{"registry_requests_total", true},
	{"registry_canary_requests_total", false},
	{"registry_publishes_total", false},
	{"registry_promotions_total", false},
	{"registry_rollbacks_total", false},
	{"registry_retrains_total", false},
	{"registry_retrain_failures_total", false},
	{"tenant_requests_total", true},
	{"tenant_quota_rejections_total", false},
	{"snapshot_pruned_total", false},
	{"snapshot_prune_passes_total", false},
}

// capacityGauges/Counters are additionally required when -capacity is
// set: the series the online capacity sampler maintains when the server
// runs with -capacity-window. The tick counter must have fired (the
// sampler ticks on wall time, traffic or not); the gauges only need to
// exist, since a briefly-idle server can legitimately sit at zero.
var capacityGauges = []string{"capacity_levels", "capacity_last_inflight"}

var capacityCounters = []struct {
	name    string
	nonzero bool
}{
	{"capacity_samples_total", true},
}

var requiredCounters = []struct {
	name    string
	nonzero bool
}{
	{"server_accepted_total", true},
	{"server_served_total", true},
	{"featcache_dataset_misses_total", true},
	{"featcache_eb_misses_total", true},
	{"featcache_dataset_hits_total", false},
	{"featcache_eb_hits_total", false},
	{"featcache_dedup_waits_total", false},
	{"featcache_failures_total", false},
}

// cmdMetricsCheck fetches GET /metrics from a running server and fails
// unless every expected series is present (and populated where traffic
// must have populated it) — the CI gate that keeps the observability
// surface from silently regressing.
func cmdMetricsCheck(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("metricscheck", flag.ExitOnError)
	url := fs.String("url", "http://localhost:8080", "server base URL")
	timeout := fs.Duration("timeout", 10*time.Second, "fetch deadline")
	registryMode := fs.Bool("registry", false, "also require the registry/tenant lifecycle series (registry-mode servers)")
	capacityMode := fs.Bool("capacity", false, "also require the capacity_* series (servers running with -capacity-window)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, *url+"/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("fetch /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics returned %d", resp.StatusCode)
	}
	var doc metricsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("/metrics is not valid JSON: %w", err)
	}

	histChecks, gaugeChecks, counterChecks := requiredHistograms, requiredGauges, requiredCounters
	if *capacityMode {
		gaugeChecks = append(append([]string{}, gaugeChecks...), capacityGauges...)
		counterChecks = append(append([]struct {
			name    string
			nonzero bool
		}{}, counterChecks...), capacityCounters...)
	}
	if *registryMode {
		histChecks = append(append([]struct {
			name    string
			nonzero bool
		}{}, histChecks...), registryHistograms...)
		gaugeChecks = append(append([]string{}, gaugeChecks...), registryGauges...)
		counterChecks = append(append([]struct {
			name    string
			nonzero bool
		}{}, counterChecks...), registryCounters...)
	}

	var problems []string
	for _, h := range histChecks {
		s, ok := doc.Histograms[h.name]
		switch {
		case !ok:
			problems = append(problems, "missing histogram "+h.name)
		case h.nonzero && s.Count == 0:
			problems = append(problems, "empty histogram "+h.name)
		case s.Count > 0 && (s.P50 < 0 || s.P90 < s.P50 || s.P99 < s.P90):
			problems = append(problems, fmt.Sprintf("non-monotone quantiles on %s: p50=%g p90=%g p99=%g",
				h.name, s.P50, s.P90, s.P99))
		}
	}
	for _, g := range gaugeChecks {
		if _, ok := doc.Gauges[g]; !ok {
			problems = append(problems, "missing gauge "+g)
		}
	}
	for _, c := range counterChecks {
		v, ok := doc.Counters[c.name]
		if !ok {
			problems = append(problems, "missing counter "+c.name)
		} else if c.nonzero && v == 0 {
			problems = append(problems, "zero counter "+c.name)
		}
	}
	if hr := doc.Derived.FeatcacheHitRate; hr < 0 || hr > 1 {
		problems = append(problems, fmt.Sprintf("featcache_hit_rate %g outside [0,1]", hr))
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "metricscheck: %s\n", p)
		}
		return fmt.Errorf("%d metric series problem(s)", len(problems))
	}
	fmt.Printf("metricscheck: ok — %d counters, %d gauges, %d histograms; estimate p99 %.6fs; featcache hit rate %.3f\n",
		len(doc.Counters), len(doc.Gauges), len(doc.Histograms),
		doc.Histograms["http_request_seconds_estimate"].P99, doc.Derived.FeatcacheHitRate)
	return nil
}

// writeObsSummary writes the observability summary bench.sh publishes as
// BENCH_obs.json: per-predictor latency quantiles off the process-wide
// registry, the shared-cache hit rate, and the full registry snapshot.
func writeObsSummary(path string, st crest.BatchStats) error {
	snap := obs.Default().Snapshot()
	type quantiles struct {
		Count uint64  `json:"count"`
		P50   float64 `json:"p50_seconds"`
		P99   float64 `json:"p99_seconds"`
	}
	preds := make(map[string]quantiles)
	for short, series := range map[string]string{
		"sd":          "predictor_sd_seconds",
		"sc":          "predictor_sc_seconds",
		"coding_gain": "predictor_coding_gain_seconds",
		"cov_svd":     "predictor_cov_svd_seconds",
		"distortion":  "predictor_distortion_seconds",
	} {
		h := snap.Histograms[series]
		preds[short] = quantiles{Count: h.Count, P50: h.P50, P99: h.P99}
	}
	doc, err := json.MarshalIndent(struct {
		Predictors   map[string]quantiles `json:"predictors"`
		CacheHitRate float64              `json:"cache_hit_rate"`
		Registry     obs.Snapshot         `json:"registry"`
	}{preds, st.Cache.HitRate(), snap}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(doc, '\n'), 0o644)
}
