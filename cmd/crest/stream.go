package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"

	crest "github.com/crestlab/crest"
	"github.com/crestlab/crest/internal/synthdata"
)

// cmdStream is the out-of-core front end: it generates CRBS block-stream
// files from the synthetic datasets (3D volumes streamed slice by slice,
// or AR(1) temporal series streamed step by step), featurizes or
// estimates a stream one slice at a time with O(slice) working memory,
// and can pipe a stream straight into a running server's chunked-ingest
// endpoint.
//
//	crest stream gen      -dataset hurricane -field TC -nz 16 -o tc.crbs
//	crest stream gen      -mode temporal -steps 32 -rho 0.9 -o tc-t.crbs
//	crest stream features -file tc.crbs -eps 1e-3
//	crest stream estimate -file tc.crbs -model models/m.snap -eps 1e-3
//	crest stream post     -file tc.crbs -url http://localhost:8080 -eps 1e-3
func cmdStream(ctx context.Context, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: crest stream <gen|features|estimate|post> [flags]")
	}
	mode, rest := args[0], args[1:]
	switch mode {
	case "gen":
		return streamGen(rest)
	case "features":
		return streamFeatures(rest)
	case "estimate":
		return streamEstimate(rest)
	case "post":
		return streamPost(ctx, rest)
	default:
		return fmt.Errorf("unknown stream mode %q (want gen|features|estimate|post)", mode)
	}
}

// specFor resolves a dataset's field spec by name (empty: first field).
func specFor(dataset, field string) (synthdata.FieldSpec, error) {
	var specs []synthdata.FieldSpec
	switch dataset {
	case "hurricane":
		specs = synthdata.HurricaneSpecs()
	case "nyx":
		specs = synthdata.NYXSpecs()
	case "miranda":
		specs = synthdata.MirandaSpecs()
	case "cesm":
		specs = synthdata.CESMSpecs()
	default:
		return synthdata.FieldSpec{}, fmt.Errorf("unknown dataset %q", dataset)
	}
	if field == "" {
		return specs[0], nil
	}
	for _, s := range specs {
		if s.Name == field {
			return s, nil
		}
	}
	return synthdata.FieldSpec{}, fmt.Errorf("dataset %s has no field %q", dataset, field)
}

func streamGen(args []string) error {
	fs := flag.NewFlagSet("stream gen", flag.ExitOnError)
	dataset := fs.String("dataset", "hurricane", "dataset: hurricane|nyx|miranda|cesm")
	field := fs.String("field", "", "field name (empty: first field)")
	genMode := fs.String("mode", "volume", "volume (z-slices of one 3D field) or temporal (AR(1) steps)")
	nz := fs.Int("nz", 16, "slices (volume mode)")
	steps := fs.Int("steps", 16, "time steps (temporal mode)")
	ny := fs.Int("ny", 96, "rows per slice")
	nx := fs.Int("nx", 96, "columns per slice")
	seed := fs.Int64("seed", 1, "generation seed")
	rho := fs.Float64("rho", 0.85, "temporal persistence in (0,1)")
	dtype := fs.String("dtype", "f64", "element encoding: f64|f32")
	chunkRows := fs.Int("chunk-rows", 32, "rows per stream chunk")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	dt := crest.StreamF64
	switch *dtype {
	case "f64":
	case "f32":
		dt = crest.StreamF32
	default:
		return fmt.Errorf("unknown dtype %q (want f64|f32)", *dtype)
	}
	spec, err := specFor(*dataset, *field)
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		w = bw
	}
	var n int
	switch *genMode {
	case "volume":
		vol := crest.SynthVolume(*dataset, spec, *nz, *ny, *nx, *seed)
		if err := crest.EncodeVolume(w, vol, dt, *chunkRows); err != nil {
			return err
		}
		n = *nz
	case "temporal":
		series := crest.SynthTemporal(*dataset, spec, *steps, *ny, *nx, *seed, *rho)
		if err := crest.EncodeBuffers(w, series, dt, *chunkRows); err != nil {
			return err
		}
		n = *steps
	default:
		return fmt.Errorf("unknown gen mode %q (want volume|temporal)", *genMode)
	}
	fmt.Fprintf(os.Stderr, "crest stream gen: %s/%s %s, %d slices of %dx%d %s, chunk %d rows\n",
		*dataset, spec.Name, *genMode, n, *ny, *nx, dt, *chunkRows)
	return nil
}

// openStream opens the stream source: a file, or stdin for "-".
func openStream(path string) (io.ReadCloser, error) {
	if path == "" {
		return nil, fmt.Errorf("need -file (or -file - for stdin)")
	}
	if path == "-" {
		return io.NopCloser(bufio.NewReader(os.Stdin)), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return struct {
		io.Reader
		io.Closer
	}{bufio.NewReader(f), f}, nil
}

func parseEpsList(s string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(s, ",") {
		e, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil || e <= 0 {
			return nil, fmt.Errorf("bad -eps entry %q", tok)
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("need at least one error bound")
	}
	return out, nil
}

func streamFeatures(args []string) error {
	fs := flag.NewFlagSet("stream features", flag.ExitOnError)
	file := fs.String("file", "", "CRBS stream file (- for stdin)")
	epsList := fs.String("eps", "1e-3", "comma-separated absolute error bounds")
	workers := fs.Int("workers", 0, "feature workers (0: GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	epses, err := parseEpsList(*epsList)
	if err != nil {
		return err
	}
	src, err := openStream(*file)
	if err != nil {
		return err
	}
	defer src.Close()
	cr, err := crest.NewChunkReader(src)
	if err != nil {
		return err
	}
	hdr := cr.Header()
	fmt.Fprintf(os.Stderr, "crest stream features: %dx%d slices, dtype %s\n", hdr.Rows, hdr.Cols, hdr.DType)
	fmt.Printf("%-6s %10s", "step", "eps")
	for _, n := range crest.FeatureNames {
		fmt.Printf(" %12s", n)
	}
	fmt.Println()
	cfg := crest.PredictorConfig{Workers: *workers}
	return crest.ForEachStreamSlice(cr, epses, cfg, func(sf crest.SliceFeatures) error {
		for i, eps := range epses {
			fmt.Printf("%-6d %10.2e", sf.Step, eps)
			for _, v := range sf.FeaturesAt(i).Vector() {
				fmt.Printf(" %12.4f", v)
			}
			fmt.Println()
		}
		return nil
	})
}

func streamEstimate(args []string) error {
	fs := flag.NewFlagSet("stream estimate", flag.ExitOnError)
	file := fs.String("file", "", "CRBS stream file (- for stdin)")
	model := fs.String("model", "", "estimator snapshot file")
	epsList := fs.String("eps", "1e-3", "comma-separated absolute error bounds")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *model == "" {
		return fmt.Errorf("need -model")
	}
	epses, err := parseEpsList(*epsList)
	if err != nil {
		return err
	}
	est, err := crest.LoadEstimator(*model)
	if err != nil {
		return fmt.Errorf("load model: %w", err)
	}
	src, err := openStream(*file)
	if err != nil {
		return err
	}
	defer src.Close()
	cr, err := crest.NewChunkReader(src)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %10s %10s %20s\n", "step", "eps", "est CR", "95% interval")
	return crest.ForEachStreamSlice(cr, epses, est.PredictorConfig(), func(sf crest.SliceFeatures) error {
		for i, eps := range epses {
			e, err := est.Estimate(sf.FeaturesAt(i).Vector())
			if err != nil {
				return err
			}
			fmt.Printf("%-6d %10.2e %10.3f [%8.3f,%8.3f]\n", sf.Step, eps, e.CR, e.Lo, e.Hi)
		}
		return nil
	})
}

func streamPost(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("stream post", flag.ExitOnError)
	file := fs.String("file", "", "CRBS stream file (- for stdin)")
	url := fs.String("url", "http://localhost:8080", "server base URL")
	eps := fs.Float64("eps", 1e-3, "absolute error bound")
	if err := fs.Parse(args); err != nil {
		return err
	}
	src, err := openStream(*file)
	if err != nil {
		return err
	}
	defer src.Close()
	target := fmt.Sprintf("%s/v1/estimate?eps=%g", strings.TrimRight(*url, "/"), *eps)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, src)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-crest-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server returned %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var sr struct {
		Slices []struct {
			Step int     `json:"step"`
			CR   float64 `json:"cr"`
			Lo   float64 `json:"lo"`
			Hi   float64 `json:"hi"`
		} `json:"slices"`
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		return fmt.Errorf("decode response: %w", err)
	}
	fmt.Printf("%-6s %10s %20s\n", "step", "est CR", "95% interval")
	for _, s := range sr.Slices {
		fmt.Printf("%-6d %10.3f [%8.3f,%8.3f]\n", s.Step, s.CR, s.Lo, s.Hi)
	}
	return nil
}
