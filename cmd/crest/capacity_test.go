package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestCmdCapacitySynthetic pins the acceptance bar of the committed
// benchmark: the synthetic sweep with the default (λ, σ, κ) and seed
// must fit with < 10% relative error on σ and κ and forecast a peak
// inside the swept range.
func TestCmdCapacitySynthetic(t *testing.T) {
	out := filepath.Join(t.TempDir(), "cap.json")
	args := []string{"-synthetic", "-levels", "1,2,4,8,16,32,64", "-out", out}
	if err := cmdCapacity(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var r capacityReport
	if err := json.Unmarshal(raw, &r); err != nil {
		t.Fatalf("report not JSON: %v: %s", err, raw)
	}
	if r.Mode != "synthetic" || r.Fit == nil || r.RelErr == nil {
		t.Fatalf("incomplete synthetic report: %s", raw)
	}
	if !r.PeakInRange {
		t.Fatalf("forecast N* = %g outside swept range [%d, %d]", r.NStar, r.SweptMin, r.SweptMax)
	}
	if r.RelErr.Sigma >= 0.10 {
		t.Fatalf("sigma relative error %.3f >= 0.10", r.RelErr.Sigma)
	}
	if r.RelErr.Kappa >= 0.10 {
		t.Fatalf("kappa relative error %.3f >= 0.10", r.RelErr.Kappa)
	}
	if r.RelErr.Lambda >= 0.10 {
		t.Fatalf("lambda relative error %.3f >= 0.10", r.RelErr.Lambda)
	}
}

// TestCmdCapacityServerSweep drives the in-process server mode at a
// small scale: the sweep must measure every level with served requests
// and no errors.
func TestCmdCapacityServerSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps a live in-process server")
	}
	out := filepath.Join(t.TempDir(), "cap.json")
	args := []string{"-levels", "1,2,4", "-per-level", "12", "-work-delay", "1ms",
		"-rows", "16", "-cols", "16", "-out", out}
	if err := cmdCapacity(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var r capacityReport
	if err := json.Unmarshal(raw, &r); err != nil {
		t.Fatalf("report not JSON: %v: %s", err, raw)
	}
	if len(r.Levels) != 3 {
		t.Fatalf("swept %d levels, want 3: %s", len(r.Levels), raw)
	}
	for _, l := range r.Levels {
		if l.OK == 0 {
			t.Errorf("level N=%d served nothing: %+v", l.N, l)
		}
		if l.Errors != 0 {
			t.Errorf("level N=%d had %d error(s)", l.N, l.Errors)
		}
	}
}

func TestParseLevels(t *testing.T) {
	got, err := parseLevels(" 8, 1,2, 4,2 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("levels = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("levels = %v, want %v (sorted, deduplicated)", got, want)
		}
	}
	if _, err := parseLevels("0,2,4"); err == nil {
		t.Fatal("level 0 accepted")
	}
	if _, err := parseLevels(""); err == nil {
		t.Fatal("empty levels accepted")
	}
}
