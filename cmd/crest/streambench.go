package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	crest "github.com/crestlab/crest"
	"github.com/crestlab/crest/internal/synthdata"
)

// streamBenchReport is the schema of BENCH_stream.json: the streaming
// ingest pipeline featurized over increasing slice counts through one
// pooled featurizer. The load-bearing figures are the per-slice
// allocation counts: because the featurizer and kernel scratch are
// reused across slices, allocs/slice and bytes/slice must be flat as the
// stream grows — the measurable form of the O(block) working-memory
// claim. AllocGrowthRatio is (allocs/slice at the longest stream) ÷
// (allocs/slice at the shortest); scripts/bench.sh asserts it stays
// under a small bound.
type streamBenchReport struct {
	Rows      int    `json:"rows"`
	Cols      int    `json:"cols"`
	K         int    `json:"k"`
	Workers   int    `json:"workers"`
	ChunkRows int    `json:"chunk_rows"`
	DType     string `json:"dtype"`
	Slices    []int  `json:"slice_counts"`

	SecondsPerSlice []float64 `json:"seconds_per_slice"`
	AllocsPerSlice  []int64   `json:"allocs_per_slice"`
	BytesPerSlice   []int64   `json:"bytes_per_slice"`

	AllocGrowthRatio float64 `json:"alloc_growth_ratio"`
	BytesGrowthRatio float64 `json:"bytes_growth_ratio"`
}

// cmdStreamBench measures the streaming featurizer's per-slice cost as
// the stream length grows. Streams are pre-encoded in memory so the
// measurement isolates decode + featurize, not synthesis.
func cmdStreamBench(args []string) error {
	fs := flag.NewFlagSet("streambench", flag.ExitOnError)
	ny := fs.Int("ny", 256, "rows per slice")
	nx := fs.Int("nx", 256, "columns per slice")
	k := fs.Int("k", 8, "block edge length")
	workers := fs.Int("workers", 0, "feature workers (0: GOMAXPROCS)")
	chunkRows := fs.Int("chunk-rows", 32, "rows per stream chunk")
	dtype := fs.String("dtype", "f64", "stream element encoding: f64 or f32 (featurized natively at float32)")
	slicesList := fs.String("slices", "2,8,32", "comma-separated slice counts to sweep")
	out := fs.String("out", "BENCH_stream.json", "write the JSON report to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var counts []int
	for _, tok := range splitInts(*slicesList) {
		if tok < 1 {
			return fmt.Errorf("slice counts must be >= 1")
		}
		counts = append(counts, tok)
	}
	if len(counts) < 2 {
		return fmt.Errorf("need at least two slice counts to measure growth")
	}
	sdt := crest.StreamF64
	switch *dtype {
	case "f64":
	case "f32":
		sdt = crest.StreamF32
	default:
		return fmt.Errorf("unknown -dtype %q (want f64 or f32)", *dtype)
	}

	// One long temporal series, encoded once per sweep point.
	maxSlices := counts[len(counts)-1]
	spec := synthdata.HurricaneSpecs()[7] // TC: smooth, dense
	series := crest.SynthTemporal("hurricane", spec, maxSlices, *ny, *nx, 1, 0.9)
	cfg := crest.PredictorConfig{K: *k, Workers: *workers}

	rep := streamBenchReport{
		Rows: *ny, Cols: *nx, K: *k, Workers: *workers,
		ChunkRows: *chunkRows, DType: *dtype, Slices: counts,
	}
	run := func(n int) error {
		var enc bytes.Buffer
		if err := crest.EncodeBuffers(&enc, series[:n], sdt, *chunkRows); err != nil {
			return err
		}
		raw := enc.Bytes()
		// Warmup pass fills the kernel scratch pools.
		cr, err := crest.NewChunkReader(bytes.NewReader(raw))
		if err != nil {
			return err
		}
		if _, err := crest.ComputeStreamFeatures(cr, []float64{1e-3}, cfg); err != nil {
			return err
		}

		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		cr, err = crest.NewChunkReader(bytes.NewReader(raw))
		if err != nil {
			return err
		}
		got, err := crest.ComputeStreamFeatures(cr, []float64{1e-3}, cfg)
		if err != nil {
			return err
		}
		wall := time.Since(t0).Seconds()
		runtime.ReadMemStats(&after)
		if len(got) != n {
			return fmt.Errorf("featurized %d of %d slices", len(got), n)
		}
		rep.SecondsPerSlice = append(rep.SecondsPerSlice, wall/float64(n))
		rep.AllocsPerSlice = append(rep.AllocsPerSlice, int64(after.Mallocs-before.Mallocs)/int64(n))
		rep.BytesPerSlice = append(rep.BytesPerSlice, int64(after.TotalAlloc-before.TotalAlloc)/int64(n))
		return nil
	}
	for _, n := range counts {
		if err := run(n); err != nil {
			return err
		}
	}
	first, last := len(rep.AllocsPerSlice)-len(counts), len(rep.AllocsPerSlice)-1
	rep.AllocGrowthRatio = ratio(rep.AllocsPerSlice[last], rep.AllocsPerSlice[first])
	rep.BytesGrowthRatio = ratio(rep.BytesPerSlice[last], rep.BytesPerSlice[first])

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(doc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("streambench: %dx%d k=%d chunk=%d %s:", *ny, *nx, *k, *chunkRows, *dtype)
	for i, n := range counts {
		fmt.Printf(" [%d slices: %.1fms, %d allocs, %dB /slice]",
			n, 1e3*rep.SecondsPerSlice[i], rep.AllocsPerSlice[i], rep.BytesPerSlice[i])
	}
	fmt.Printf(" growth x%.2f -> %s\n", rep.AllocGrowthRatio, *out)
	return nil
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 1
	}
	return float64(a) / float64(b)
}

func splitInts(s string) []int {
	var out []int
	cur, have := 0, false
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if have {
				out = append(out, cur)
			}
			cur, have = 0, false
			continue
		}
		if s[i] >= '0' && s[i] <= '9' {
			cur = cur*10 + int(s[i]-'0')
			have = true
		}
	}
	return out
}
