package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/retry"
	"github.com/crestlab/crest/internal/server"
)

// quotaThenOK answers n requests with 429 + Retry-After, then 200s.
func quotaThenOK(n int32, retryAfter string) (*httptest.Server, *int32) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) <= n {
			w.Header().Set("Retry-After", retryAfter)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]server.WireError{
				"error": {Kind: "quota_exceeded", Message: "tenant over budget"},
			})
			return
		}
		json.NewEncoder(w).Encode(server.EstimateResponse{CR: 2.5, Lo: 2, Hi: 3})
	}))
	return ts, &calls
}

// TestPostEstimateQuota429Retryable pins the quota wire contract on the
// client side: a 429 is NOT permanent (the budget refills), it types as
// ErrQuotaExceeded, and it carries the server's Retry-After as a backoff
// hint — unlike other 4xx, which remain permanent.
func TestPostEstimateQuota429Retryable(t *testing.T) {
	ts, _ := quotaThenOK(1, "1")
	defer ts.Close()
	client := &http.Client{Timeout: 5 * time.Second}

	_, err := postEstimate(context.Background(), client, ts.URL, []byte("{}"))
	if err == nil {
		t.Fatal("first call should surface the 429")
	}
	if !errors.Is(err, crerr.ErrQuotaExceeded) {
		t.Fatalf("429 error = %v, want ErrQuotaExceeded in chain", err)
	}
	if retry.IsPermanent(err) {
		t.Fatalf("429 marked permanent: %v", err)
	}
	hint, ok := retry.RetryAfterHint(err)
	if !ok || hint != time.Second {
		t.Fatalf("Retry-After hint = %v, %v; want 1s, true", hint, ok)
	}
}

// TestClientRetriesThroughQuota drives the real retry loop through a
// transient 429 to a success.
func TestClientRetriesThroughQuota(t *testing.T) {
	ts, calls := quotaThenOK(1, "0") // no usable hint: backoff alone
	defer ts.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	policy := retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond}
	var out *server.EstimateResponse
	err := policy.Do(context.Background(), func(ctx context.Context) error {
		res, err := postEstimate(ctx, client, ts.URL, []byte("{}"))
		if err != nil {
			return err
		}
		out = res
		return nil
	})
	if err != nil {
		t.Fatalf("retry loop failed: %v", err)
	}
	if out == nil || out.CR != 2.5 {
		t.Fatalf("response = %+v", out)
	}
	if got := atomic.LoadInt32(calls); got != 2 {
		t.Fatalf("server saw %d calls, want 2 (one 429, one success)", got)
	}
}

// TestPostEstimateOther4xxStillPermanent guards the boundary: only 429
// became retryable; a 400 stays permanent.
func TestPostEstimateOther4xxStillPermanent(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad request", http.StatusBadRequest)
	}))
	defer ts.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	_, err := postEstimate(context.Background(), client, ts.URL, []byte("{}"))
	if err == nil || !retry.IsPermanent(err) {
		t.Fatalf("400 should be permanent, got %v", err)
	}
}
