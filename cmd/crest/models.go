package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/crestlab/crest/internal/registry"
	"github.com/crestlab/crest/internal/server"
)

// parseQuotaSpec parses the -quota flag: comma-separated
// "name=rate[:burst]" entries in requests per second, with "*" naming
// the default quota applied to unlisted tenants.
func parseQuotaSpec(spec string) (registry.QuotaConfig, error) {
	var cfg registry.QuotaConfig
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	cfg.Tenants = make(map[string]registry.TenantQuota)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, val, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return cfg, fmt.Errorf("bad -quota entry %q: want name=rate[:burst]", entry)
		}
		var q registry.TenantQuota
		rateStr, burstStr, hasBurst := strings.Cut(val, ":")
		rate, err := strconv.ParseFloat(rateStr, 64)
		if err != nil || rate <= 0 {
			return cfg, fmt.Errorf("bad -quota rate in %q", entry)
		}
		q.Rate = rate
		if hasBurst {
			burst, err := strconv.ParseFloat(burstStr, 64)
			if err != nil || burst <= 0 {
				return cfg, fmt.Errorf("bad -quota burst in %q", entry)
			}
			q.Burst = burst
		}
		if name == "*" {
			cfg.Default = q
		} else {
			cfg.Tenants[name] = q
		}
	}
	return cfg, nil
}

// cmdModels administers a registry-mode server's model lineages over its
// /v1/models endpoints:
//
//	crest models list     -url http://host:8080
//	crest models promote  -url http://host:8080 -lineage default -seq 3
//	crest models rollback -url http://host:8080 -lineage default
func cmdModels(ctx context.Context, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: crest models <list|promote|rollback> [flags]")
	}
	sub, rest := args[0], args[1:]
	fs := flag.NewFlagSet("models "+sub, flag.ExitOnError)
	url := fs.String("url", "http://localhost:8080", "server base URL")
	lineage := fs.String("lineage", registry.DefaultLineage, "lineage name")
	seq := fs.Int("seq", 0, "version to promote (promote only)")
	timeout := fs.Duration("timeout", 10*time.Second, "request deadline")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	switch sub {
	case "list":
		var doc struct {
			Lineages []registry.LineageInfo `json:"lineages"`
		}
		if err := modelsCall(ctx, http.MethodGet, *url+"/v1/models", nil, &doc); err != nil {
			return err
		}
		printLineages(doc.Lineages)
		return nil
	case "promote":
		if *seq <= 0 {
			return fmt.Errorf("promote needs -seq > 0")
		}
		body, _ := json.Marshal(server.PromoteRequest{Seq: *seq})
		var resp server.LifecycleResponse
		if err := modelsCall(ctx, http.MethodPost, *url+"/v1/models/"+*lineage+"/promote", body, &resp); err != nil {
			return err
		}
		fmt.Printf("%s: lineage %s active v%d\n", resp.Status, *lineage, resp.Lineage.Active)
		return nil
	case "rollback":
		var resp server.LifecycleResponse
		if err := modelsCall(ctx, http.MethodPost, *url+"/v1/models/"+*lineage+"/rollback", nil, &resp); err != nil {
			return err
		}
		fmt.Printf("%s: lineage %s active v%d\n", resp.Status, *lineage, resp.Lineage.Active)
		return nil
	default:
		return fmt.Errorf("unknown models subcommand %q (want list, promote or rollback)", sub)
	}
}

// modelsCall performs one admin request, decoding the typed error body on
// failure.
func modelsCall(ctx context.Context, method, url string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, wireMessage(payload))
	}
	return json.Unmarshal(payload, out)
}

// printLineages renders the lineage table plus each lineage's most recent
// lifecycle decisions.
func printLineages(lineages []registry.LineageInfo) {
	fmt.Printf("%-16s %8s %8s %10s %s\n", "lineage", "active", "lkg", "canary", "bad")
	for _, ln := range lineages {
		canary := "-"
		if c := ln.Canary; c != nil {
			canary = fmt.Sprintf("v%d@%.0f%%", c.Candidate, 100*c.Fraction)
		}
		lkg := "-"
		if ln.LKG > 0 {
			lkg = fmt.Sprintf("v%d", ln.LKG)
		}
		bad := "-"
		if len(ln.Bad) > 0 {
			bad = fmt.Sprint(ln.Bad)
		}
		fmt.Printf("%-16s %8s %8s %10s %s\n", ln.Name, fmt.Sprintf("v%d", ln.Active), lkg, canary, bad)
		for _, d := range tailDecisions(ln.Decisions, 3) {
			auto := "manual"
			if d.Auto {
				auto = "auto"
			}
			fmt.Printf("    %s %s v%d -> v%d (%s): %s\n",
				d.Time.Format(time.RFC3339), d.Action, d.From, d.To, auto, d.Reason)
		}
	}
}

func tailDecisions(ds []registry.Decision, n int) []registry.Decision {
	if len(ds) <= n {
		return ds
	}
	return ds[len(ds)-n:]
}
