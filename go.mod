module github.com/crestlab/crest

go 1.22
