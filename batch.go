package crest

import (
	"github.com/crestlab/crest/internal/batch"
	"github.com/crestlab/crest/internal/featcache"
)

// BatchRequest asks for one compression-ratio estimate: one buffer at one
// absolute error bound.
type BatchRequest = batch.Request

// BatchStats is a snapshot of the batch engine's observability counters:
// request/batch totals, shared-cache hits and misses, worker occupancy,
// and per-stage wall time.
type BatchStats = batch.Stats

// BatchEstimator fans estimation requests over a bounded worker pool while
// sharing one race-safe feature cache across requests and batches, so
// estimation stays cheap enough to run inline with parallel workloads (the
// paper's §IV-C operating point). Its results are bit-identical to calling
// Estimator.Estimate serially for any worker count or request order
// (given a deterministic predictor configuration, i.e. Workers=1 inside
// the predictor passes).
type BatchEstimator = batch.Engine

// FeatureCacheStats are the hit/miss counters of a FeatureCache.
type FeatureCacheStats = featcache.Stats

// NewBatchEstimator returns a batch engine over a trained estimator.
// cache may be shared with other engines and with proposed-method
// instances (NewProposedMethodShared) and must use the predictor
// configuration the estimator was trained with; nil creates a private
// cache from the estimator's configuration. workers <= 0 selects
// GOMAXPROCS.
func NewBatchEstimator(est *Estimator, cache *FeatureCache, workers int) *BatchEstimator {
	if cache == nil {
		return batch.New(est, nil, workers)
	}
	return batch.New(est, cache.Cache(), workers)
}
