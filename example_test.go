package crest_test

import (
	"fmt"

	crest "github.com/crestlab/crest"
)

// Example demonstrates the core loop: train on a few buffers, estimate an
// unseen one with a conformal interval, and check it against ground truth.
func Example() {
	ds := crest.HurricaneDataset(crest.DataOptions{NZ: 16, NY: 48, NX: 48, Seed: 9})
	field := ds.Field("TC")
	comp := crest.MustCompressor("szinterp")
	const eps = 1e-3

	samples, err := crest.CollectSamples(field.Buffers[:12], comp, eps, crest.PredictorConfig{})
	if err != nil {
		panic(err)
	}
	est, err := crest.TrainEstimator(samples, crest.EstimatorConfig{})
	if err != nil {
		panic(err)
	}

	feats, err := crest.ComputeFeatureVector(field.Buffers[13], eps, crest.PredictorConfig{})
	if err != nil {
		panic(err)
	}
	e, err := est.Estimate(feats)
	if err != nil {
		panic(err)
	}
	truth, err := crest.CompressionRatio(comp, field.Buffers[13], eps)
	if err != nil {
		panic(err)
	}
	if truth > 100 {
		truth = 100 // the model's operational regime is CR ≤ 100 (§IV-B)
	}
	ape := 100 * (truth - e.CR) / truth
	if ape < 0 {
		ape = -ape
	}
	fmt.Printf("estimate within 5%% of truth: %v\n", ape < 5)
	fmt.Printf("interval is proper: %v\n", e.Lo <= e.CR && e.CR <= e.Hi)
	// Output:
	// estimate within 5% of truth: true
	// interval is proper: true
}

// ExampleCompressionRatio shows the ground-truth side: run a compressor
// under an absolute bound and verify the bound held.
func ExampleCompressionRatio() {
	buf, _ := crest.NewBuffer(32, 32)
	for i := range buf.Data {
		buf.Data[i] = float64(i%7) / 10
	}
	comp := crest.MustCompressor("zfplike")
	cr, err := crest.CompressionRatio(comp, buf, 1e-4)
	if err != nil {
		panic(err)
	}
	_, ok, err := crest.VerifyErrorBound(comp, buf, 1e-4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("compresses: %v, bound held: %v\n", cr > 1, ok)
	// Output:
	// compresses: true, bound held: true
}

// ExampleSelectionInversionProbability evaluates the paper's §V-D worked
// example analytically.
func ExampleSelectionInversionProbability() {
	p := crest.SelectionInversionProbability(
		[]float64{3, 2, 1},       // CR means, best first
		[]float64{0.1, 0.1, 0.1}, // CR variances
		[]float64{0.5, 0.5, 0.5}, // estimate error variances
	)
	fmt.Printf("P(wrong compressor) = %.1f%%\n", 100*p)
	// Output:
	// P(wrong compressor) = 20.8%
}

// ExampleCompressVolume compresses a native 3D volume slice-parallel.
func ExampleCompressVolume() {
	vol, _ := crest.NewVolume(4, 16, 16)
	for i := range vol.Data {
		vol.Data[i] = float64(i % 5)
	}
	comp := crest.MustCompressor("szlorenzo")
	blob, err := crest.CompressVolume(comp, vol, 1e-3, 2)
	if err != nil {
		panic(err)
	}
	back, err := crest.DecompressVolume(comp, blob, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("round trip: %dx%dx%d\n", back.NZ, back.NY, back.NX)
	// Output:
	// round trip: 4x16x16
}
