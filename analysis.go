package crest

import (
	"github.com/crestlab/crest/internal/kmeans"
	"github.com/crestlab/crest/internal/linalg"
)

// PCAProject centers the rows of data (n×d) and projects them onto the top
// ncomp principal components, returning the n×ncomp scores. It is the
// dimensionality reduction behind the Fig. 2 latent-cluster visualization.
func PCAProject(data [][]float64, ncomp int) [][]float64 {
	n := len(data)
	if n == 0 {
		return nil
	}
	d := len(data[0])
	m := linalg.NewMatrix(n, d)
	for i, row := range data {
		copy(m.Row(i), row)
	}
	p := linalg.PCA(m, ncomp)
	scores := p.Transform(m)
	out := make([][]float64, n)
	for i := range out {
		out[i] = append([]float64(nil), scores.Row(i)...)
	}
	return out
}

// KMeansCluster clusters rows into k groups with deterministic k-means++
// and returns the labels.
func KMeansCluster(data [][]float64, k int, seed int64) []int {
	return kmeans.Fit(data, k, seed).Labels
}

// SelectClusterCount picks a cluster count in [1, maxK] by silhouette —
// the procedure the paper uses to set the mixture's latent dimension L.
func SelectClusterCount(data [][]float64, maxK int, seed int64) int {
	return kmeans.SelectK(data, maxK, 0.25, seed)
}
