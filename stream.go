package crest

import (
	"io"

	"github.com/crestlab/crest/internal/conformal"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/predictors"
	"github.com/crestlab/crest/internal/synthdata"
)

// stream.go is the facade of the out-of-core pipeline: the chunked block
// stream format ("CRBS"), the one-pass streaming featurizer, and the
// online conformal recalibration loop. A multi-GB volume or unbounded
// temporal feed is estimated slice by slice with O(one slice) working
// memory, and the streamed features are bit-identical to the in-memory
// path of the same precision: float64 streams match ComputeFeatures,
// and float32 streams run the native float32 kernel pipeline and match
// ComputeFeatures32 over the same values (the two precisions agree to a
// few ULP of float32 — see DESIGN.md).

// StreamDType identifies the element encoding of a block stream.
type StreamDType = grid.DType

// Stream element encodings.
const (
	StreamF64 = grid.DTypeF64
	StreamF32 = grid.DTypeF32
)

// StreamHeader describes the shape of a block stream.
type StreamHeader = grid.StreamHeader

// StreamLimits bounds what a stream reader will accept before touching
// payload bytes; zero-value fields select the defaults.
type StreamLimits = grid.StreamLimits

// ChunkReader decodes a block stream row by row or slice by slice.
type ChunkReader = grid.ChunkReader

// ChunkWriter frames buffers into a block stream.
type ChunkWriter = grid.ChunkWriter

// NewChunkReader opens a block stream for reading.
func NewChunkReader(r io.Reader, limits ...StreamLimits) (*ChunkReader, error) {
	return grid.NewChunkReader(r, limits...)
}

// NewChunkWriter opens a block stream for writing; chunkRows <= 0 selects
// the default chunk size.
func NewChunkWriter(w io.Writer, hdr StreamHeader, chunkRows int) (*ChunkWriter, error) {
	return grid.NewChunkWriter(w, hdr, chunkRows)
}

// EncodeBuffers frames bufs (equal shapes, in order) as one stream.
func EncodeBuffers(w io.Writer, bufs []*Buffer, dt StreamDType, chunkRows int) error {
	return grid.EncodeBuffers(w, bufs, dt, chunkRows)
}

// EncodeVolume frames a volume as a stream of its z-slices.
func EncodeVolume(w io.Writer, vol *Volume, dt StreamDType, chunkRows int) error {
	return grid.EncodeVolume(w, vol, dt, chunkRows)
}

// SliceFeatures carries one streamed slice's features and distortions.
type SliceFeatures = predictors.SliceFeatures

// StreamFeaturizer computes one slice's features from incrementally fed
// rows with pooled, reusable working memory.
type StreamFeaturizer = predictors.StreamFeaturizer

// NewStreamFeaturizer prepares a featurizer for rows×cols slices.
func NewStreamFeaturizer(rows, cols int, cfg PredictorConfig) (*StreamFeaturizer, error) {
	return predictors.NewStreamFeaturizer(rows, cols, cfg)
}

// StreamFeaturizer32 is StreamFeaturizer over native float32 rows: the
// same one-pass core at float32 element width, bit-identical to
// ComputeFeatures32 over the assembled slice.
type StreamFeaturizer32 = predictors.StreamFeaturizer32

// NewStreamFeaturizer32 prepares a float32 featurizer for rows×cols
// slices.
func NewStreamFeaturizer32(rows, cols int, cfg PredictorConfig) (*StreamFeaturizer32, error) {
	return predictors.NewStreamFeaturizer32(rows, cols, cfg)
}

// ComputeStreamFeatures featurizes every slice of a block stream at the
// given error bounds, holding one slice of working memory at a time.
func ComputeStreamFeatures(cr *ChunkReader, eps []float64, cfg PredictorConfig) ([]SliceFeatures, error) {
	return predictors.ComputeStream(cr, eps, cfg)
}

// ForEachStreamSlice featurizes slices as they arrive and hands each to
// fn, so arbitrarily long streams run in constant memory.
func ForEachStreamSlice(cr *ChunkReader, eps []float64, cfg PredictorConfig, fn func(SliceFeatures) error) error {
	return predictors.ForEachSlice(cr, eps, cfg, fn)
}

// OnlineConformalConfig tunes the rolling-coverage recalibration loop.
type OnlineConformalConfig = conformal.OnlineConfig

// OnlineConformalStats is a snapshot of the recalibration tracker.
type OnlineConformalStats = conformal.OnlineStats

// SynthVolume synthesizes one field's nz×ny×nx volume deterministically.
func SynthVolume(dataset string, spec FieldSpec, nz, ny, nx int, seed int64) *Volume {
	return synthdata.Volume(dataset, spec, nz, ny, nx, seed)
}

// SynthTemporal synthesizes a time-evolving 2D field: an AR(1) evolution
// across steps with persistence rho (out-of-range rho selects the
// default), for exercising temporal streams.
func SynthTemporal(dataset string, spec FieldSpec, steps, ny, nx int, seed int64, rho float64) []*Buffer {
	return synthdata.Temporal(dataset, spec, steps, ny, nx, seed, rho)
}
