package crest

import (
	"context"

	"github.com/crestlab/crest/internal/baselines"
	"github.com/crestlab/crest/internal/core"
	"github.com/crestlab/crest/internal/predictors"
)

// PredictorConfig tunes the computation of the five statistical
// predictors (block size, histogram resolution, parallelism).
type PredictorConfig = predictors.Config

// Features is the five-dimensional covariate vector of one buffer at one
// error bound: spatial diversity, spatial correlation, coding gain,
// CovSVD truncation, and the error-bound-specific generic distortion.
type Features = predictors.Features

// DatasetFeatures are the four error-bound-agnostic predictors, reusable
// across error bounds.
type DatasetFeatures = predictors.DatasetFeatures

// FeatureNames lists the feature vector components in order.
var FeatureNames = predictors.FeatureNames

// ComputeFeatures evaluates all five predictors for one buffer and bound.
func ComputeFeatures(buf *Buffer, eps float64, cfg PredictorConfig) (Features, error) {
	return predictors.Compute(buf, eps, cfg)
}

// ComputeFeatureVector is ComputeFeatures flattened to the model's
// covariate slice.
func ComputeFeatureVector(buf *Buffer, eps float64, cfg PredictorConfig) ([]float64, error) {
	return core.FeaturesOf(buf, eps, cfg)
}

// ComputeDatasetFeatures evaluates only the error-bound-agnostic
// predictors (the "dset_predictors" of Algorithm 2).
func ComputeDatasetFeatures(buf *Buffer, cfg PredictorConfig) (DatasetFeatures, error) {
	return predictors.ComputeDataset(buf, cfg)
}

// VolumeFeatures are pooled predictors for a native 3D volume, the
// paper's footnote-1 extension.
type VolumeFeatures = predictors.VolumeFeatures

// ComputeVolumeFeatures evaluates the 3D extension: the four spatial
// predictors pooled over slices (computed in parallel) and the generic
// distortion over the full volume sample.
func ComputeVolumeFeatures(vol *Volume, eps float64, cfg PredictorConfig) (VolumeFeatures, error) {
	return predictors.ComputeVolume(vol, eps, cfg)
}

// ComputeDatasetFeaturesNaive is the unfused one-pass-per-metric reference
// implementation of ComputeDatasetFeatures — the computation style of
// prior approaches, kept for differential testing and for quantifying the
// paper's fused-pass training-time advantage.
func ComputeDatasetFeaturesNaive(buf *Buffer, cfg PredictorConfig) (DatasetFeatures, error) {
	return predictors.NaiveComputeDataset(buf, cfg)
}

// ComputeDistortion evaluates the error-bound-specific generic distortion
// (the "eb_predictors" of Algorithm 2), returned as log2(1+D̂).
func ComputeDistortion(buf *Buffer, eps float64, cfg PredictorConfig) (float64, error) {
	return predictors.ComputeEB(buf, eps, cfg)
}

// ComputeFeatures32 is ComputeFeatures for a native float32 buffer: the
// whole pipeline runs at float32 element width with float64 reductions,
// skipping the widening copy. Results agree with the float64 path to a
// few ULP of float32 (see DESIGN.md's float32 accuracy contract) and
// are bit-identical to featurizing the same values from a dtype-f32
// block stream.
func ComputeFeatures32(buf *Buffer32, eps float64, cfg PredictorConfig) (Features, error) {
	return predictors.Compute32(buf, eps, cfg)
}

// ComputeDatasetFeatures32 is ComputeDatasetFeatures for a native
// float32 buffer.
func ComputeDatasetFeatures32(buf *Buffer32, cfg PredictorConfig) (DatasetFeatures, error) {
	return predictors.ComputeDataset32(buf, cfg)
}

// ComputeDistortion32 is ComputeDistortion for a native float32 buffer.
// The distortion is bit-identical to ComputeDistortion over the exactly
// widened values: the entropy estimators widen each element and bin in
// float64.
func ComputeDistortion32(buf *Buffer32, eps float64, cfg PredictorConfig) (float64, error) {
	return predictors.ComputeEB32(buf, eps, cfg)
}

// EstimatorConfig tunes the full estimation pipeline: predictors, mixture
// regression, conformal calibration, CR cap and the optional feature mask.
type EstimatorConfig = core.Config

// Sample is one training observation: covariates plus observed CR.
type Sample = core.Sample

// Estimate is a conformal compression-ratio estimate.
type Estimate = core.Estimate

// Estimator is the paper's trained compressibility model.
type Estimator = core.Estimator

// TrainEstimator fits the mixture-regression + conformal pipeline. When
// the EM fit degenerates it falls back to a single-component linear fit
// (Estimator.FellBack reports this); only if the fallback also fails does
// it return an error wrapping ErrModelDegenerate.
func TrainEstimator(samples []Sample, cfg EstimatorConfig) (*Estimator, error) {
	return core.Train(samples, cfg)
}

// TrainEstimatorContext is TrainEstimator with cooperative cancellation:
// the context is checked between EM iterations, and a canceled fit returns
// an error matching both ErrCanceled and the context's own sentinel.
func TrainEstimatorContext(ctx context.Context, samples []Sample, cfg EstimatorConfig) (*Estimator, error) {
	return core.TrainContext(ctx, samples, cfg)
}

// CollectSamples computes covariates and ground-truth ratios for buffers
// by running the compressor once each — the training-data collection step.
// Buffers are processed concurrently across all cores; the returned
// samples are in buffer order, identical to a serial run.
func CollectSamples(bufs []*Buffer, comp Compressor, eps float64, cfg PredictorConfig) ([]Sample, error) {
	return core.BuildSamples(bufs, comp, eps, cfg)
}

// CollectSamplesWorkers is CollectSamples with an explicit bound on the
// per-buffer worker pool (workers <= 0 selects GOMAXPROCS, 1 is serial).
func CollectSamplesWorkers(bufs []*Buffer, comp Compressor, eps float64, cfg PredictorConfig, workers int) ([]Sample, error) {
	return core.BuildSamplesWorkers(bufs, comp, eps, cfg, workers)
}

// CollectSamplesContext is CollectSamplesWorkers with cooperative
// cancellation and per-buffer fault isolation. Workers stop claiming new
// buffers once ctx is done and drain before the call returns, yielding an
// error matching ErrCanceled. A buffer whose features or compression fail
// (including a recovered compressor panic, classified under ErrCompressor)
// contributes an index-labelled entry to a BatchError while every other
// buffer's sample is still collected.
func CollectSamplesContext(ctx context.Context, bufs []*Buffer, comp Compressor, eps float64, cfg PredictorConfig, workers int) ([]Sample, error) {
	return core.BuildSamplesContext(ctx, bufs, comp, eps, cfg, workers)
}

// Method is a compression-ratio estimation method under evaluation: the
// proposed approach or one of the prior-work baselines.
type Method = baselines.Method

// MultiBoundTrainer is implemented by feature-based methods (proposed,
// Underwood) that can train across several error bounds at once, which the
// use-case-A bound search requires: crs[i][j] is the true ratio of
// bufs[i] at epses[j].
type MultiBoundTrainer interface {
	FitMulti(bufs []*Buffer, crs [][]float64, epses []float64) error
}

// NewProposedMethod wraps the paper's estimator in the Method interface,
// with feature caching for repeated evaluation.
func NewProposedMethod(cfg EstimatorConfig) *baselines.Proposed { return baselines.NewProposed(cfg) }

// FeatureCache is a shareable predictor-feature cache; per-compressor
// proposed methods should share one since features are
// compressor-independent. It is race-safe (sharded, mutex-protected,
// singleflight admission): any number of goroutines may share one cache,
// and each buffer's features are computed exactly once even under
// concurrent first requests.
type FeatureCache = baselines.FeatureCache

// NewFeatureCache returns an empty shareable feature cache.
func NewFeatureCache(cfg EstimatorConfig) *FeatureCache { return baselines.NewFeatureCache(cfg) }

// NewProposedMethodShared is NewProposedMethod with a shared feature
// cache.
func NewProposedMethodShared(cfg EstimatorConfig, cache *FeatureCache) *baselines.Proposed {
	return baselines.NewProposedShared(cfg, cache)
}

// NewUnderwoodMethod returns the Underwood et al. black-box linear
// baseline.
func NewUnderwoodMethod() Method { return baselines.NewUnderwood() }

// NewTaoMethod returns the Tao et al. sampled quantized-entropy baseline.
func NewTaoMethod() Method { return baselines.NewTao() }

// NewLuMethod returns the Lu et al. white-box SZ-internals baseline.
func NewLuMethod() Method { return baselines.NewLu() }

// NewRahmanMethod returns the decision-tree baseline (Rahman et al.
// style): a CART regression tree on the same five predictors.
func NewRahmanMethod() Method { return baselines.NewRahman() }
