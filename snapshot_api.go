package crest

import (
	"github.com/crestlab/crest/snapshot"
)

// SaveEstimator persists a trained estimator to path as a versioned,
// SHA-256-checksummed snapshot with a crash-safe atomic write (temp file
// + fsync + rename): a reader never observes a partial snapshot and a
// crash leaves either the previous file or the new one. See package
// snapshot for the format and the full durability contract.
func SaveEstimator(path string, est *Estimator) error {
	return snapshot.Save(path, est)
}

// LoadEstimator reads, verifies and decodes a snapshot written by
// SaveEstimator. Corrupt or truncated snapshots fail with a typed error
// matching ErrSnapshotCorrupt; snapshots from another format version
// match ErrSnapshotVersion. A loaded estimator is bit-identical to the
// one that was saved.
func LoadEstimator(path string) (*Estimator, error) {
	return snapshot.Load(path)
}

// WriteNewEstimator saves est into dir under a fresh sequence-numbered
// name (model-NNNNNN.crsnap), accumulating the history that
// LoadLatestEstimator falls back across. It returns the path written.
func WriteNewEstimator(dir string, est *Estimator) (string, error) {
	return snapshot.WriteNew(dir, est)
}

// LoadLatestEstimator loads the newest valid snapshot in dir, skipping
// truncated or corrupt files (a crash mid-write degrades to the previous
// good model). It returns the estimator and the path it came from.
func LoadLatestEstimator(dir string) (*Estimator, string, error) {
	return snapshot.LoadLatest(dir)
}
