package crest_test

import (
	"math/rand"
	"runtime"
	"testing"

	crest "github.com/crestlab/crest"
)

// serialPredCfg pins the intra-buffer predictor passes to one worker so
// feature values are bit-deterministic: the CAS and mutex accumulators of
// the §IV-C substrate are order-sensitive in the last float bits, so
// bit-identity across runs is only defined at Workers=1. Batch-level
// parallelism (many requests at once) never reorders a single request's
// arithmetic, which is what these tests prove.
var serialPredCfg = crest.PredictorConfig{Workers: 1}

func batchFixture(t *testing.T) (*crest.Estimator, []*crest.Buffer, []float64) {
	t.Helper()
	ds := crest.HurricaneDataset(crest.DataOptions{NZ: 10, NY: 48, NX: 48, Seed: 5})
	field := ds.Field("TC")
	comp := crest.MustCompressor("zfplike")
	epses := []float64{1e-2, 1e-3}
	var samples []crest.Sample
	for _, eps := range epses {
		s, err := crest.CollectSamples(field.Buffers[:6], comp, eps, serialPredCfg)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, s...)
	}
	est, err := crest.TrainEstimator(samples, crest.EstimatorConfig{Predictors: serialPredCfg})
	if err != nil {
		t.Fatal(err)
	}
	return est, field.Buffers[6:], epses
}

// TestBatchEstimatorMatchesSerialPath: the concurrent engine must return
// bit-identical estimates to the serial ComputeFeatureVector + Estimate
// path for every worker count, and its cache must record >1 hit per
// buffer shared across bounds — the acceptance gate of the batch engine.
func TestBatchEstimatorMatchesSerialPath(t *testing.T) {
	est, bufs, epses := batchFixture(t)

	var reqs []crest.BatchRequest
	for _, b := range bufs {
		for _, eps := range epses {
			reqs = append(reqs, crest.BatchRequest{Buf: b, Eps: eps})
		}
	}

	want := make([]crest.Estimate, len(reqs))
	for i, r := range reqs {
		feats, err := crest.ComputeFeatureVector(r.Buf, r.Eps, serialPredCfg)
		if err != nil {
			t.Fatal(err)
		}
		e, err := est.Estimate(feats)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = e
	}

	for _, workers := range []int{1, 3, runtime.GOMAXPROCS(0)} {
		cache := crest.NewFeatureCache(crest.EstimatorConfig{Predictors: serialPredCfg})
		engine := crest.NewBatchEstimator(est, cache, workers)
		got, err := engine.EstimateAll(reqs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d request %d: batch %+v != serial %+v", workers, i, got[i], want[i])
			}
		}
		st := engine.Stats()
		// Each buffer is requested at len(epses) bounds, so its dataset
		// features must be served from cache at least once (>1 hit per
		// shared buffer once the second batch below runs).
		if st.Cache.DatasetHits < uint64(len(bufs)*(len(epses)-1)) {
			t.Errorf("workers=%d: dataset hits %d, want >= %d", workers, st.Cache.DatasetHits, len(bufs)*(len(epses)-1))
		}
		// Re-running the identical batch doubles hits without recomputing.
		if _, err := engine.EstimateAll(reqs); err != nil {
			t.Fatal(err)
		}
		st2 := engine.Stats()
		if st2.Cache.Misses() != st.Cache.Misses() {
			t.Errorf("workers=%d: repeat batch recomputed features (misses %d -> %d)", workers, st.Cache.Misses(), st2.Cache.Misses())
		}
		perBuffer := float64(st2.Cache.DatasetHits) / float64(len(bufs))
		if perBuffer <= 1 {
			t.Errorf("workers=%d: %.1f dataset cache hits per shared buffer, want > 1", workers, perBuffer)
		}
	}
}

// TestBatchEstimatorOrderInvariance: shuffling the request order must not
// change any individual result.
func TestBatchEstimatorOrderInvariance(t *testing.T) {
	est, bufs, epses := batchFixture(t)
	var reqs []crest.BatchRequest
	for _, b := range bufs {
		for _, eps := range epses {
			reqs = append(reqs, crest.BatchRequest{Buf: b, Eps: eps})
		}
	}
	cache := crest.NewFeatureCache(crest.EstimatorConfig{Predictors: serialPredCfg})
	engine := crest.NewBatchEstimator(est, cache, 4)
	base, err := engine.EstimateAll(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		perm := rand.New(rand.NewSource(int64(trial))).Perm(len(reqs))
		shuffled := make([]crest.BatchRequest, len(reqs))
		for i, p := range perm {
			shuffled[i] = reqs[p]
		}
		// Fresh cache: order invariance must not depend on warm state.
		eng := crest.NewBatchEstimator(est, crest.NewFeatureCache(crest.EstimatorConfig{Predictors: serialPredCfg}), 4)
		got, err := eng.EstimateAll(shuffled)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range perm {
			if got[i] != base[p] {
				t.Errorf("trial %d: shuffled request %d (orig %d): %+v != %+v", trial, i, p, got[i], base[p])
			}
		}
	}
}

// TestCollectSamplesWorkersMatchesSerial: the concurrent training-data
// collection path must be bit-identical to the serial one.
func TestCollectSamplesWorkersMatchesSerial(t *testing.T) {
	ds := crest.HurricaneDataset(crest.DataOptions{NZ: 6, NY: 48, NX: 48, Seed: 9})
	bufs := ds.Field("TC").Buffers
	comp := crest.MustCompressor("zfplike")
	serial, err := crest.CollectSamplesWorkers(bufs, comp, 1e-3, serialPredCfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := crest.CollectSamplesWorkers(bufs, comp, 1e-3, serialPredCfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("%d vs %d samples", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].CR != parallel[i].CR {
			t.Errorf("sample %d CR: %g != %g", i, serial[i].CR, parallel[i].CR)
		}
		for j := range serial[i].Features {
			if serial[i].Features[j] != parallel[i].Features[j] {
				t.Errorf("sample %d feature %d: %g != %g", i, j, serial[i].Features[j], parallel[i].Features[j])
			}
		}
	}
}
