#!/bin/sh
# check-metrics.sh — end-to-end observability gate: trains a small model,
# serves it, drives one estimate through the HTTP API, then runs
# `crest metricscheck` against GET /metrics. Fails when the endpoint is
# unreachable, returns malformed JSON, or is missing any expected series
# (per-endpoint latency histograms, per-predictor timings, cache
# counters, occupancy gauges, snapshot-load latency).
#
# The registry phase re-serves the same snapshot through a model registry
# (`serve -registry`) and verifies the lifecycle series on top
# (`metricscheck -registry`): registry_*/tenant_* counters, the lineage
# gauge and the canary decision histogram.
#
# The capacity phase serves with `-capacity-window` so the server samples
# its own throughput-vs-inflight curve online, then verifies the
# capacity_* series (`metricscheck -capacity`). Run one phase alone by
# naming it:
#
#   ./scripts/check-metrics.sh single      # fixed-model server only
#   ./scripts/check-metrics.sh registry    # registry-mode server only
#   ./scripts/check-metrics.sh capacity    # capacity-window server only
set -eu

MODE="${1:-all}"

WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    [ -n "$SERVE_PID" ] && wait "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$WORK/crest" ./cmd/crest

"$WORK/crest" train -dataset hurricane -nz 12 -ny 64 -nx 64 -dir "$WORK/models"

# wait_addr <file>: block until the server publishes its bound address.
wait_addr() {
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "check-metrics: server never published its address" >&2
            exit 1
        fi
        if ! kill -0 "$SERVE_PID" 2>/dev/null; then
            echo "check-metrics: server exited before listening" >&2
            exit 1
        fi
        sleep 0.1
    done
}

stop_serve() {
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
    SERVE_PID=""
}

if [ "$MODE" = "all" ] || [ "$MODE" = "single" ]; then
    "$WORK/crest" serve -model-dir "$WORK/models" \
        -addr localhost:0 -addr-file "$WORK/addr" -pprof &
    SERVE_PID=$!
    wait_addr "$WORK/addr"
    URL="http://$(cat "$WORK/addr")"

    # One real estimate populates the predictor, cache and endpoint series.
    "$WORK/crest" client -url "$URL" -dataset hurricane -nz 12 -ny 64 -nx 64 -step 3

    "$WORK/crest" metricscheck -url "$URL"
    stop_serve
    echo "check-metrics: single-model ok"
fi

if [ "$MODE" = "all" ] || [ "$MODE" = "registry" ]; then
    # The registry adopts the trained snapshot as lineage "default" v1.
    mkdir -p "$WORK/registry"
    cp -r "$WORK/models" "$WORK/registry/default"

    "$WORK/crest" serve -registry "$WORK/registry" \
        -quota "smoke=0.1:1,*=1000" \
        -addr localhost:0 -addr-file "$WORK/addr-registry" &
    SERVE_PID=$!
    wait_addr "$WORK/addr-registry"
    URL="http://$(cat "$WORK/addr-registry")"

    # A routed estimate moves registry_requests_total/tenant_requests_total;
    # `crest models list` proves the admin surface is up.
    "$WORK/crest" client -url "$URL" -dataset hurricane -nz 12 -ny 64 -nx 64 -step 3
    "$WORK/crest" models list -url "$URL"

    "$WORK/crest" metricscheck -url "$URL" -registry
    stop_serve
    echo "check-metrics: registry ok"
fi

if [ "$MODE" = "all" ] || [ "$MODE" = "capacity" ]; then
    "$WORK/crest" serve -model-dir "$WORK/models" \
        -capacity-window 25ms \
        -addr localhost:0 -addr-file "$WORK/addr-capacity" &
    SERVE_PID=$!
    wait_addr "$WORK/addr-capacity"
    URL="http://$(cat "$WORK/addr-capacity")"

    # A burst of estimates gives the online sampler busy ticks to pair
    # served-counter deltas with inflight levels.
    "$WORK/crest" client -url "$URL" -dataset hurricane -nz 12 -ny 64 -nx 64 -step 3
    "$WORK/crest" client -url "$URL" -dataset hurricane -nz 12 -ny 64 -nx 64 -step 2
    sleep 0.2

    "$WORK/crest" metricscheck -url "$URL" -capacity
    stop_serve
    echo "check-metrics: capacity ok"
fi

echo "check-metrics: ok"
