#!/bin/sh
# check-metrics.sh — end-to-end observability gate: trains a small model,
# serves it, drives one estimate through the HTTP API, then runs
# `crest metricscheck` against GET /metrics. Fails when the endpoint is
# unreachable, returns malformed JSON, or is missing any expected series
# (per-endpoint latency histograms, per-predictor timings, cache
# counters, occupancy gauges, snapshot-load latency).
set -eu

WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    [ -n "$SERVE_PID" ] && wait "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$WORK/crest" ./cmd/crest

"$WORK/crest" train -dataset hurricane -nz 12 -ny 64 -nx 64 -dir "$WORK/models"

"$WORK/crest" serve -model-dir "$WORK/models" \
    -addr localhost:0 -addr-file "$WORK/addr" -pprof &
SERVE_PID=$!

# Wait for the server to publish its bound address.
i=0
while [ ! -s "$WORK/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "check-metrics: server never published its address" >&2
        exit 1
    fi
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "check-metrics: server exited before listening" >&2
        exit 1
    fi
    sleep 0.1
done
URL="http://$(cat "$WORK/addr")"

# One real estimate populates the predictor, cache and endpoint series.
"$WORK/crest" client -url "$URL" -dataset hurricane -nz 12 -ny 64 -nx 64 -step 3

"$WORK/crest" metricscheck -url "$URL"

echo "check-metrics: ok"
