#!/bin/sh
# bench.sh — serving-layer benchmark: drives `crest servebench` to
# saturation and archives the JSON report (p50/p99 latency of served
# requests plus the shed rate) as BENCH_server.json.
#
# Tune the operating point via env vars:
#
#   BENCH_N=2000 BENCH_CONCURRENCY=64 ./scripts/bench.sh
#
# The report is self-describing; see serveBenchReport in
# cmd/crest/servebench.go for the schema.
set -eu

OUT="${BENCH_OUT:-BENCH_server.json}"
N="${BENCH_N:-800}"
CONCURRENCY="${BENCH_CONCURRENCY:-32}"
MAX_INFLIGHT="${BENCH_MAX_INFLIGHT:-4}"
MAX_QUEUE="${BENCH_MAX_QUEUE:-8}"
WORK_DELAY="${BENCH_WORK_DELAY:-2ms}"

go run ./cmd/crest servebench \
    -n "$N" \
    -concurrency "$CONCURRENCY" \
    -max-inflight "$MAX_INFLIGHT" \
    -max-queue "$MAX_QUEUE" \
    -work-delay "$WORK_DELAY" \
    -out "$OUT"

echo "bench: wrote $OUT"
