#!/bin/sh
# bench.sh — serving-layer benchmark: drives `crest servebench` to
# saturation and archives the JSON report (p50/p99 latency of served
# requests plus the shed rate) as BENCH_server.json, then runs a batch
# workload and archives its observability summary (per-predictor p50/p99
# latency plus the feature-cache hit rate) as BENCH_obs.json.
#
# Tune the operating point via env vars:
#
#   BENCH_N=2000 BENCH_CONCURRENCY=64 ./scripts/bench.sh
#
# The reports are self-describing; see serveBenchReport in
# cmd/crest/servebench.go and writeObsSummary in
# cmd/crest/metricscheck.go for the schemas.
set -eu

OUT="${BENCH_OUT:-BENCH_server.json}"
OBS_OUT="${BENCH_OBS_OUT:-BENCH_obs.json}"
N="${BENCH_N:-800}"
CONCURRENCY="${BENCH_CONCURRENCY:-32}"
MAX_INFLIGHT="${BENCH_MAX_INFLIGHT:-4}"
MAX_QUEUE="${BENCH_MAX_QUEUE:-8}"
WORK_DELAY="${BENCH_WORK_DELAY:-2ms}"

go run ./cmd/crest servebench \
    -n "$N" \
    -concurrency "$CONCURRENCY" \
    -max-inflight "$MAX_INFLIGHT" \
    -max-queue "$MAX_QUEUE" \
    -work-delay "$WORK_DELAY" \
    -out "$OUT"

echo "bench: wrote $OUT"

# Observability phase: a repeated batch run warms the feature cache and
# populates the per-predictor latency histograms on the registry.
go run ./cmd/crest batch \
    -dataset hurricane -nz 12 -ny 64 -nx 64 \
    -eps 1e-2,1e-3 -repeat 2 -quiet \
    -obs-out "$OBS_OUT"

echo "bench: wrote $OBS_OUT"
