#!/bin/sh
# bench.sh — serving-layer benchmark: drives `crest servebench` to
# saturation and archives the JSON report (p50/p99 latency of served
# requests plus the shed rate) as BENCH_server.json, then runs a batch
# workload and archives its observability summary (per-predictor p50/p99
# latency plus the feature-cache hit rate) as BENCH_obs.json.
#
# Tune the operating point via env vars:
#
#   BENCH_N=2000 BENCH_CONCURRENCY=64 ./scripts/bench.sh
#
# The reports are self-describing; see serveBenchReport in
# cmd/crest/servebench.go and writeObsSummary in
# cmd/crest/metricscheck.go for the schemas.
#
# A third phase benchmarks the fused predictor kernels (`crest predbench`)
# and archives p50/p90 ComputeDataset latency plus allocs/op as
# BENCH_predictors.json; it *asserts* that the fresh p50 has not
# regressed by more than BENCH_PRED_MAX_REGRESSION (default 1.3) times
# the committed baseline's p50, when a comparable committed report
# exists. A fourth phase benchmarks streaming ingest
# (`crest streambench`) as BENCH_stream.json and *asserts* the O(block)
# working-memory claim: allocations per slice must stay flat as the
# stream grows (alloc_growth_ratio <= BENCH_STREAM_MAX_GROWTH, default
# 1.25). Run one phase alone by naming it:
#
#   ./scripts/bench.sh predictors     # kernel phase only (a CI smoke step)
#   ./scripts/bench.sh stream         # streaming-ingest phase only (a CI smoke step)
#   ./scripts/bench.sh server         # serving + observability phases only
#   ./scripts/bench.sh cluster        # replicated-fleet phase only (a CI smoke step)
#   ./scripts/bench.sh registry       # model-lifecycle phase only (a CI smoke step)
#   ./scripts/bench.sh capacity       # USL capacity-planning phase only (a CI smoke step)
#
# The registry phase (`crest registrybench`) drives a full canary cycle —
# publish, promote on a winning candidate, roll back a regressed one —
# and archives routing/feedback latency plus quota-check overhead as
# BENCH_registry.json; it *asserts* the route hot path stays under
# BENCH_REGISTRY_MAX_ROUTE_US (default 1000us).
#
# The cluster phase (`crest clusterbench`) boots an in-process 3-node
# fleet, slows one replica, and archives the hedged tail latency as
# BENCH_cluster.json; it *asserts* that the hedged p99 stays below the
# injected slow-replica delay (hedging bounds the tail).
#
# The capacity phase (`crest capacity -synthetic`) fits the Universal
# Scalability Law to a deterministic synthetic sweep with known
# contention/coherence and archives the fit as BENCH_capacity.json; it
# *asserts* that the forecast peak N* lands inside the swept range and
# that sigma and kappa are recovered within BENCH_CAPACITY_MAX_RELERR
# (default 0.10) relative error.
set -eu

MODE="${1:-all}"

OUT="${BENCH_OUT:-BENCH_server.json}"
OBS_OUT="${BENCH_OBS_OUT:-BENCH_obs.json}"
N="${BENCH_N:-800}"
CONCURRENCY="${BENCH_CONCURRENCY:-32}"
MAX_INFLIGHT="${BENCH_MAX_INFLIGHT:-4}"
MAX_QUEUE="${BENCH_MAX_QUEUE:-8}"
WORK_DELAY="${BENCH_WORK_DELAY:-2ms}"
PRED_OUT="${BENCH_PRED_OUT:-BENCH_predictors.json}"
PRED_EDGE="${BENCH_PRED_EDGE:-512}"
PRED_ITERS="${BENCH_PRED_ITERS:-10}"
PRED_DTYPE="${BENCH_PRED_DTYPE:-f64}"
PRED_MAX_REGRESSION="${BENCH_PRED_MAX_REGRESSION:-1.3}"
STREAM_OUT="${BENCH_STREAM_OUT:-BENCH_stream.json}"
STREAM_EDGE="${BENCH_STREAM_EDGE:-256}"
STREAM_SLICES="${BENCH_STREAM_SLICES:-2,8,32}"
STREAM_MAX_GROWTH="${BENCH_STREAM_MAX_GROWTH:-1.25}"
CLUSTER_OUT="${BENCH_CLUSTER_OUT:-BENCH_cluster.json}"
CLUSTER_N="${BENCH_CLUSTER_N:-120}"
CLUSTER_NODES="${BENCH_CLUSTER_NODES:-3}"
CLUSTER_HEDGE_AFTER="${BENCH_CLUSTER_HEDGE_AFTER:-20ms}"
CLUSTER_SLOW_DELAY="${BENCH_CLUSTER_SLOW_DELAY:-250ms}"
REGISTRY_OUT="${BENCH_REGISTRY_OUT:-BENCH_registry.json}"
CAPACITY_OUT="${BENCH_CAPACITY_OUT:-BENCH_capacity.json}"
CAPACITY_LEVELS="${BENCH_CAPACITY_LEVELS:-1,2,4,8,16,32,64}"
CAPACITY_MAX_RELERR="${BENCH_CAPACITY_MAX_RELERR:-0.10}"
REGISTRY_ROUTES="${BENCH_REGISTRY_ROUTES:-20000}"
REGISTRY_MAX_ROUTE_US="${BENCH_REGISTRY_MAX_ROUTE_US:-1000}"

if [ "$MODE" = "all" ] || [ "$MODE" = "server" ]; then
    go run ./cmd/crest servebench \
        -n "$N" \
        -concurrency "$CONCURRENCY" \
        -max-inflight "$MAX_INFLIGHT" \
        -max-queue "$MAX_QUEUE" \
        -work-delay "$WORK_DELAY" \
        -out "$OUT"

    echo "bench: wrote $OUT"

    # Observability phase: a repeated batch run warms the feature cache and
    # populates the per-predictor latency histograms on the registry.
    go run ./cmd/crest batch \
        -dataset hurricane -nz 12 -ny 64 -nx 64 \
        -eps 1e-2,1e-3 -repeat 2 -quiet \
        -obs-out "$OBS_OUT"

    echo "bench: wrote $OBS_OUT"
fi

if [ "$MODE" = "all" ] || [ "$MODE" = "predictors" ]; then
    # Capture the committed baseline's p50 BEFORE the fresh run overwrites
    # the report. The gate only fires when the committed report covers the
    # same operating point (edge/dtype), so a sweep at another size does
    # not compare apples to oranges.
    base_p50=""
    if [ -f "$PRED_OUT" ]; then
        base_edge=$(sed -n 's/.*"edge": \([0-9]*\).*/\1/p' "$PRED_OUT")
        base_dtype=$(sed -n 's/.*"dtype": "\([a-z0-9]*\)".*/\1/p' "$PRED_OUT")
        if [ "$base_edge" = "$PRED_EDGE" ] && [ "${base_dtype:-f64}" = "$PRED_DTYPE" ]; then
            base_p50=$(sed -n 's/.*"p50_seconds": \([0-9.eE+-]*\).*/\1/p' "$PRED_OUT")
        fi
    fi

    go run ./cmd/crest predbench \
        -edge "$PRED_EDGE" \
        -iters "$PRED_ITERS" \
        -dtype "$PRED_DTYPE" \
        -out "$PRED_OUT"

    # Kernel-regression assertion: the fresh p50 must stay within
    # PRED_MAX_REGRESSION x the committed baseline. A jump past that bound
    # means a fused-kernel or scratch-pool change slowed the hot path.
    if [ -n "$base_p50" ]; then
        new_p50=$(sed -n 's/.*"p50_seconds": \([0-9.eE+-]*\).*/\1/p' "$PRED_OUT")
        if [ -z "$new_p50" ]; then
            echo "bench: FAIL: no p50_seconds in $PRED_OUT" >&2
            exit 1
        fi
        if ! awk -v n="$new_p50" -v b="$base_p50" -v max="$PRED_MAX_REGRESSION" \
                'BEGIN { exit !(n <= b * max) }'; then
            echo "bench: FAIL: predictor p50 ${new_p50}s regressed past ${PRED_MAX_REGRESSION}x baseline ${base_p50}s" >&2
            exit 1
        fi
        echo "bench: wrote $PRED_OUT (p50 ${new_p50}s <= ${PRED_MAX_REGRESSION}x baseline ${base_p50}s)"
    else
        echo "bench: wrote $PRED_OUT (no comparable committed baseline; regression gate skipped)"
    fi
fi

if [ "$MODE" = "all" ] || [ "$MODE" = "stream" ]; then
    go run ./cmd/crest streambench \
        -ny "$STREAM_EDGE" \
        -nx "$STREAM_EDGE" \
        -slices "$STREAM_SLICES" \
        -out "$STREAM_OUT"

    # O(block) working-memory assertion: per-slice allocations must not
    # grow with the stream length. The featurizer and kernel scratch are
    # reused across slices, so allocs/slice at the longest stream should
    # match the shortest; a drifting ratio means per-slice state is
    # leaking into per-stream state.
    growth=$(sed -n 's/.*"alloc_growth_ratio": \([0-9.eE+-]*\).*/\1/p' "$STREAM_OUT")
    if [ -z "$growth" ]; then
        echo "bench: FAIL: no alloc_growth_ratio in $STREAM_OUT" >&2
        exit 1
    fi
    if ! awk -v g="$growth" -v max="$STREAM_MAX_GROWTH" 'BEGIN { exit !(g <= max) }'; then
        echo "bench: FAIL: alloc growth ratio $growth exceeds $STREAM_MAX_GROWTH (streaming memory is not O(block))" >&2
        exit 1
    fi
    echo "bench: wrote $STREAM_OUT (alloc growth x$growth <= $STREAM_MAX_GROWTH)"
fi

if [ "$MODE" = "all" ] || [ "$MODE" = "cluster" ]; then
    go run ./cmd/crest clusterbench \
        -nodes "$CLUSTER_NODES" \
        -n "$CLUSTER_N" \
        -hedge-after "$CLUSTER_HEDGE_AFTER" \
        -slow-delay "$CLUSTER_SLOW_DELAY" \
        -out "$CLUSTER_OUT"

    # Tail-bound assertion: with one replica slowed, the hedged p99 must
    # land below the injected delay — the request raced a backup replica
    # instead of waiting out the slow one.
    hedged=$(sed -n 's/.*"hedged_p99_ms": \([0-9.eE+-]*\).*/\1/p' "$CLUSTER_OUT")
    slow=$(sed -n 's/.*"slow_delay_ms": \([0-9.eE+-]*\).*/\1/p' "$CLUSTER_OUT")
    if [ -z "$hedged" ] || [ -z "$slow" ]; then
        echo "bench: FAIL: missing hedged_p99_ms/slow_delay_ms in $CLUSTER_OUT" >&2
        exit 1
    fi
    if ! awk -v h="$hedged" -v s="$slow" 'BEGIN { exit !(h < s) }'; then
        echo "bench: FAIL: hedged p99 ${hedged}ms did not beat the ${slow}ms slow replica" >&2
        exit 1
    fi
    echo "bench: wrote $CLUSTER_OUT (hedged p99 ${hedged}ms < slow ${slow}ms)"
fi

if [ "$MODE" = "all" ] || [ "$MODE" = "registry" ]; then
    go run ./cmd/crest registrybench \
        -routes "$REGISTRY_ROUTES" \
        -out "$REGISTRY_OUT"

    # Decision-latency assertion: the canary controller must reach both a
    # promote and a rollback verdict (registrybench itself fails if either
    # verdict is wrong), and the routing hot path must stay cheap — a p99
    # above 1ms means lineage routing grew a lock convoy or an allocation.
    route_p99=$(sed -n 's/.*"route_p99_us": \([0-9.eE+-]*\).*/\1/p' "$REGISTRY_OUT")
    if [ -z "$route_p99" ]; then
        echo "bench: FAIL: no route_p99_us in $REGISTRY_OUT" >&2
        exit 1
    fi
    if ! awk -v r="$route_p99" -v max="$REGISTRY_MAX_ROUTE_US" 'BEGIN { exit !(r <= max) }'; then
        echo "bench: FAIL: route p99 ${route_p99}us exceeds ${REGISTRY_MAX_ROUTE_US}us" >&2
        exit 1
    fi
    echo "bench: wrote $REGISTRY_OUT (route p99 ${route_p99}us <= ${REGISTRY_MAX_ROUTE_US}us)"
fi

if [ "$MODE" = "all" ] || [ "$MODE" = "capacity" ]; then
    go run ./cmd/crest capacity \
        -synthetic \
        -levels "$CAPACITY_LEVELS" \
        -out "$CAPACITY_OUT"

    # Fit-sanity assertions: the USL fit over the synthetic workload must
    # put the saturation peak inside the swept concurrency range and
    # recover the generating contention/coherence parameters. A peak
    # outside the range or a drifting parameter means the least-squares
    # fit (or its constraint back-off) regressed.
    in_range=$(sed -n 's/.*"peak_in_range": \([a-z]*\).*/\1/p' "$CAPACITY_OUT")
    sigma_err=$(sed -n 's/.*"sigma_rel_err": \([0-9.eE+-]*\).*/\1/p' "$CAPACITY_OUT")
    kappa_err=$(sed -n 's/.*"kappa_rel_err": \([0-9.eE+-]*\).*/\1/p' "$CAPACITY_OUT")
    if [ -z "$in_range" ] || [ -z "$sigma_err" ] || [ -z "$kappa_err" ]; then
        echo "bench: FAIL: missing peak_in_range/sigma_rel_err/kappa_rel_err in $CAPACITY_OUT" >&2
        exit 1
    fi
    if [ "$in_range" != "true" ]; then
        echo "bench: FAIL: forecast peak N* fell outside the swept range (peak_in_range=$in_range)" >&2
        exit 1
    fi
    if ! awk -v s="$sigma_err" -v k="$kappa_err" -v max="$CAPACITY_MAX_RELERR" \
            'BEGIN { exit !(s <= max && k <= max) }'; then
        echo "bench: FAIL: USL fit error sigma=$sigma_err kappa=$kappa_err exceeds $CAPACITY_MAX_RELERR" >&2
        exit 1
    fi
    echo "bench: wrote $CAPACITY_OUT (peak in range; sigma err $sigma_err, kappa err $kappa_err <= $CAPACITY_MAX_RELERR)"
fi
