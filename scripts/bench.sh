#!/bin/sh
# bench.sh — serving-layer benchmark: drives `crest servebench` to
# saturation and archives the JSON report (p50/p99 latency of served
# requests plus the shed rate) as BENCH_server.json, then runs a batch
# workload and archives its observability summary (per-predictor p50/p99
# latency plus the feature-cache hit rate) as BENCH_obs.json.
#
# Tune the operating point via env vars:
#
#   BENCH_N=2000 BENCH_CONCURRENCY=64 ./scripts/bench.sh
#
# The reports are self-describing; see serveBenchReport in
# cmd/crest/servebench.go and writeObsSummary in
# cmd/crest/metricscheck.go for the schemas.
#
# A third phase benchmarks the fused predictor kernels (`crest predbench`)
# and archives p50/p90 ComputeDataset latency plus allocs/op as
# BENCH_predictors.json. Run one phase alone by naming it:
#
#   ./scripts/bench.sh predictors     # kernel phase only (the CI smoke step)
#   ./scripts/bench.sh server         # serving + observability phases only
set -eu

MODE="${1:-all}"

OUT="${BENCH_OUT:-BENCH_server.json}"
OBS_OUT="${BENCH_OBS_OUT:-BENCH_obs.json}"
N="${BENCH_N:-800}"
CONCURRENCY="${BENCH_CONCURRENCY:-32}"
MAX_INFLIGHT="${BENCH_MAX_INFLIGHT:-4}"
MAX_QUEUE="${BENCH_MAX_QUEUE:-8}"
WORK_DELAY="${BENCH_WORK_DELAY:-2ms}"
PRED_OUT="${BENCH_PRED_OUT:-BENCH_predictors.json}"
PRED_EDGE="${BENCH_PRED_EDGE:-512}"
PRED_ITERS="${BENCH_PRED_ITERS:-10}"

if [ "$MODE" = "all" ] || [ "$MODE" = "server" ]; then
    go run ./cmd/crest servebench \
        -n "$N" \
        -concurrency "$CONCURRENCY" \
        -max-inflight "$MAX_INFLIGHT" \
        -max-queue "$MAX_QUEUE" \
        -work-delay "$WORK_DELAY" \
        -out "$OUT"

    echo "bench: wrote $OUT"

    # Observability phase: a repeated batch run warms the feature cache and
    # populates the per-predictor latency histograms on the registry.
    go run ./cmd/crest batch \
        -dataset hurricane -nz 12 -ny 64 -nx 64 \
        -eps 1e-2,1e-3 -repeat 2 -quiet \
        -obs-out "$OBS_OUT"

    echo "bench: wrote $OBS_OUT"
fi

if [ "$MODE" = "all" ] || [ "$MODE" = "predictors" ]; then
    go run ./cmd/crest predbench \
        -edge "$PRED_EDGE" \
        -iters "$PRED_ITERS" \
        -out "$PRED_OUT"

    echo "bench: wrote $PRED_OUT"
fi
