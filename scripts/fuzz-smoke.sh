#!/bin/sh
# fuzz-smoke.sh — short-budget pass over every fuzz target in the repo.
#
# Each target runs under `go test -fuzz` for FUZZTIME (default 5s), which
# is enough to exercise the mutator against the seed corpus and shake out
# shallow panics without tying up CI. Run a single package longer with,
# e.g.:
#
#   FUZZTIME=60s ./scripts/fuzz-smoke.sh ./internal/huffman
#
# Targets covered by default:
#   internal/huffman    FuzzDecode, FuzzRoundTrip    (canonical Huffman codec)
#   internal/usecases   FuzzUnmarshalAggFile         (aggregated-file parser)
#   internal/featcache  FuzzKeyDerivation            (cache key derivation)
#   internal/compressors  FuzzDecompress*            (all decoder hardening targets)
#   internal/grid       FuzzBufferValidate           (public-boundary buffer validation)
#   internal/grid       FuzzChunkDecode              (CRBS block-stream decoder hardening)
#   internal/stats      FuzzQuantizeBin              (saturated quantizer bin index)
#   snapshot            FuzzSnapshotDecode           (durable-model envelope decoder)
set -eu

FUZZTIME="${FUZZTIME:-5s}"
PKGS="${*:-./internal/huffman ./internal/usecases ./internal/featcache ./internal/compressors ./internal/grid ./internal/stats ./snapshot}"

for pkg in $PKGS; do
    targets=$(go test -list '^Fuzz' "$pkg" | grep '^Fuzz' || true)
    if [ -z "$targets" ]; then
        echo "fuzz-smoke: no fuzz targets in $pkg"
        continue
    fi
    for target in $targets; do
        echo "fuzz-smoke: $pkg $target ($FUZZTIME)"
        go test -run '^$' -fuzz "^${target}\$" -fuzztime "$FUZZTIME" "$pkg"
    done
done
echo "fuzz-smoke: all targets passed"
