package crest

import (
	"fmt"

	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/synthdata"
)

// Buffer is a single 2D float64 array belonging to one field and time-step
// — the atomic unit of compression and estimation.
type Buffer = grid.Buffer

// Volume is a 3D array sliced along its slowest dimension into Buffers.
type Volume = grid.Volume

// Field groups one physical quantity's buffers across time-steps.
type Field = grid.Field

// Dataset is all fields from one application run.
type Dataset = grid.Dataset

// NewBuffer allocates a zeroed rows×cols buffer. Invalid shapes are
// reported as an error wrapping ErrInvalidBuffer instead of panicking.
func NewBuffer(rows, cols int) (*Buffer, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("%w: shape %dx%d", crerr.ErrInvalidBuffer, rows, cols)
	}
	return grid.NewBuffer(rows, cols), nil
}

// BufferFromSlice wraps row-major data in a Buffer without copying.
func BufferFromSlice(rows, cols int, data []float64) (*Buffer, error) {
	return grid.FromSlice(rows, cols, data)
}

// Buffer32 is a single 2D float32 buffer — the native single-precision
// twin of Buffer. Estimation over a Buffer32 runs the float32 kernel
// pipeline end to end (no widening copy); see the float32 accuracy
// contract in DESIGN.md.
type Buffer32 = grid.Buffer32

// NewBuffer32 allocates a zeroed rows×cols float32 buffer. Invalid
// shapes are reported as an error wrapping ErrInvalidBuffer.
func NewBuffer32(rows, cols int) (*Buffer32, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("%w: shape %dx%d", crerr.ErrInvalidBuffer, rows, cols)
	}
	return grid.NewBuffer32(rows, cols), nil
}

// BufferFromSlice32 wraps row-major float32 data in a Buffer32 without
// copying.
func BufferFromSlice32(rows, cols int, data []float32) (*Buffer32, error) {
	return grid.FromSlice32(rows, cols, data)
}

// NewVolume allocates a zeroed nz×ny×nx volume. Invalid shapes are
// reported as an error wrapping ErrInvalidBuffer instead of panicking.
func NewVolume(nz, ny, nx int) (*Volume, error) {
	if nz <= 0 || ny <= 0 || nx <= 0 {
		return nil, fmt.Errorf("%w: volume shape %dx%dx%d", crerr.ErrInvalidBuffer, nz, ny, nx)
	}
	return grid.NewVolume(nz, ny, nx), nil
}

// ValidationPolicy bounds what buffer data the estimation pipeline accepts
// at its public boundaries. The zero value rejects any non-finite element.
type ValidationPolicy = grid.ValidationPolicy

// ValidateBuffer checks shape invariants and the policy's non-finite data
// bound. Shape violations wrap ErrInvalidBuffer; data violations wrap
// ErrNonFiniteData. The estimation entry points run this check with the
// default (zero) policy, so a caller that tolerates some NaN/Inf should
// validate with its own policy and pass the buffer through
// SanitizeBuffer first.
func ValidateBuffer(b *Buffer, p ValidationPolicy) error { return b.Validate(p) }

// SanitizeBuffer returns a copy with every non-finite element replaced by
// the mean of the finite ones (zero when none are finite) — the graceful-
// degradation path for data that fails ValidateBuffer on non-finiteness.
func SanitizeBuffer(b *Buffer) *Buffer { return b.Sanitized() }

// ValidateVolume is ValidateBuffer for a 3D volume.
func ValidateVolume(v *Volume, p ValidationPolicy) error { return v.Validate(p) }

// DataOptions sizes a generated synthetic dataset; zero values select the
// defaults (20 slices of 96×96).
type DataOptions = synthdata.Options

// FieldSpec describes one synthetic field recipe.
type FieldSpec = synthdata.FieldSpec

// HurricaneDataset generates the deterministic 12-field hurricane-like
// dataset (the paper's Hurricane ISABEL stand-in).
func HurricaneDataset(o DataOptions) *Dataset { return synthdata.Hurricane(o) }

// NYXDataset generates the cosmology-like dataset.
func NYXDataset(o DataOptions) *Dataset { return synthdata.NYX(o) }

// MirandaDataset generates the turbulence-like dataset.
func MirandaDataset(o DataOptions) *Dataset { return synthdata.Miranda(o) }

// CESMDataset generates the climate-like dataset.
func CESMDataset(o DataOptions) *Dataset { return synthdata.CESM(o) }

// AllDatasets generates the four evaluation datasets used by the Fig. 4
// reproduction.
func AllDatasets(o DataOptions) []*Dataset { return synthdata.All(o) }

// GenerateDataset builds a custom synthetic dataset from field recipes.
func GenerateDataset(name string, specs []FieldSpec, nz, ny, nx int, seed int64) *Dataset {
	return synthdata.Generate(name, specs, nz, ny, nx, seed)
}
