package crest_test

import (
	"context"
	"testing"

	crest "github.com/crestlab/crest"
)

// TestSnapshotRoundTripBitIdentityAcrossEvalCorpus is the durability
// differential check: an estimator trained on real collected samples is
// saved and reloaded through the public snapshot API, and the restored
// model must return bit-identical estimates (CR, Lo, Hi as exact
// float64s) for every buffer × error bound of the evaluation corpus. Any
// divergence means a restart silently shifts predictions — the failure
// the snapshot format exists to prevent.
func TestSnapshotRoundTripBitIdentityAcrossEvalCorpus(t *testing.T) {
	ds := crest.HurricaneDataset(crest.DataOptions{NZ: 10, NY: 24, NX: 24, Seed: 3})
	field := ds.Fields[0]
	comp, err := crest.NewCompressor("szinterp")
	if err != nil {
		t.Fatal(err)
	}
	cfg := crest.EstimatorConfig{Predictors: crest.PredictorConfig{Workers: 1}}
	epses := []float64{1e-2, 1e-3}

	// Train on the first 6 buffers; the rest are the held-out eval fold.
	var samples []crest.Sample
	for _, eps := range epses {
		s, err := crest.CollectSamplesContext(context.Background(), field.Buffers[:6], comp, eps, cfg.Predictors, 1)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, s...)
	}
	est, err := crest.TrainEstimator(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	path, err := crest.WriteNewEstimator(dir, est)
	if err != nil {
		t.Fatal(err)
	}
	loaded, from, err := crest.LoadLatestEstimator(dir)
	if err != nil {
		t.Fatal(err)
	}
	if from != path {
		t.Fatalf("loaded %s, wrote %s", from, path)
	}
	if loaded.FellBack() != est.FellBack() || loaded.IntervalRadius() != est.IntervalRadius() {
		t.Fatalf("model metadata diverged: FellBack %v/%v radius %v/%v",
			loaded.FellBack(), est.FellBack(), loaded.IntervalRadius(), est.IntervalRadius())
	}

	checked := 0
	for _, buf := range field.Buffers {
		for _, eps := range epses {
			feats, err := crest.ComputeFeatureVector(buf, eps, cfg.Predictors)
			if err != nil {
				t.Fatal(err)
			}
			want, err1 := est.Estimate(feats)
			got, err2 := loaded.Estimate(feats)
			if err1 != nil || err2 != nil {
				t.Fatalf("estimate: %v, %v", err1, err2)
			}
			// Exact equality on purpose: the snapshot contract is bit
			// identity, not tolerance.
			if want.CR != got.CR || want.Lo != got.Lo || want.Hi != got.Hi {
				t.Fatalf("step %d eps %g: restored %+v != original %+v", buf.Step, eps, got, want)
			}
			checked++
		}
	}
	if checked != len(field.Buffers)*len(epses) {
		t.Fatalf("covered %d points", checked)
	}
}
