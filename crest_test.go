package crest_test

import (
	"math"
	"testing"

	crest "github.com/crestlab/crest"
)

// TestPublicAPIEndToEnd walks the README quick-start path through the
// exported surface only.
func TestPublicAPIEndToEnd(t *testing.T) {
	ds := crest.HurricaneDataset(crest.DataOptions{NZ: 12, NY: 48, NX: 48, Seed: 42})
	if len(ds.Fields) != 12 {
		t.Fatalf("%d fields", len(ds.Fields))
	}
	field := ds.Field("TC")
	comp := crest.MustCompressor("szinterp")
	const eps = 1e-3

	samples, err := crest.CollectSamples(field.Buffers[:9], comp, eps, crest.PredictorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	est, err := crest.TrainEstimator(samples, crest.EstimatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, buf := range field.Buffers[9:] {
		feats, err := crest.ComputeFeatureVector(buf, eps, crest.PredictorConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if len(feats) != crest.NumFeatures {
			t.Fatalf("%d features", len(feats))
		}
		e, err := est.Estimate(feats)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := crest.CompressionRatio(comp, buf, eps)
		if err != nil {
			t.Fatal(err)
		}
		truth = math.Min(truth, 100)
		if ape := 100 * math.Abs(truth-e.CR) / truth; ape > 25 {
			t.Errorf("slice %d APE %.1f%%", buf.Step, ape)
		}
		if e.Lo > e.Hi {
			t.Errorf("inverted interval [%g, %g]", e.Lo, e.Hi)
		}
	}
}

func TestPublicCompressorSurface(t *testing.T) {
	names := crest.CompressorNames()
	if len(names) != 8 {
		t.Fatalf("%d compressors", len(names))
	}
	if _, err := crest.NewCompressor("nope"); err == nil {
		t.Error("unknown compressor accepted")
	}
	buf, err := crest.NewBuffer(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf.Data {
		buf.Data[i] = math.Sin(float64(i) / 5)
	}
	for _, n := range names {
		c := crest.MustCompressor(n)
		maxErr, ok, err := crest.VerifyErrorBound(c, buf, 1e-4)
		if err != nil || !ok {
			t.Errorf("%s: err=%v ok=%v maxErr=%g", n, err, ok, maxErr)
		}
	}
	if _, err := crest.BufferFromSlice(2, 2, []float64{1}); err == nil {
		t.Error("bad slice accepted")
	}
	v, err := crest.NewVolume(2, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Slices()) != 2 {
		t.Error("volume slicing broken")
	}
}

func TestPublicEvaluationSurface(t *testing.T) {
	ds := crest.MirandaDataset(crest.DataOptions{NZ: 10, NY: 40, NX: 40, Seed: 2})
	comp := crest.MustCompressor("zfplike")
	cache := crest.NewCRCache()
	m := crest.NewProposedMethod(crest.EstimatorConfig{})
	q, folds, err := crest.KFoldEvaluate(m, ds.Fields[0].Buffers, comp, 1e-3, 3, 1, cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 3 || math.IsNaN(q.Q50) {
		t.Errorf("kfold = %+v %v", q, folds)
	}
	medape, pairs, err := crest.OutOfSampleEvaluate(m, ds.Fields[0].Buffers, ds.Fields[1].Buffers, comp, 1e-3, cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != len(ds.Fields[1].Buffers) || math.IsNaN(medape) {
		t.Error("out-of-sample surface broken")
	}
}

func TestPublicSimilaritySurface(t *testing.T) {
	ds := crest.HurricaneDataset(crest.DataOptions{NZ: 8, NY: 40, NX: 40, Seed: 4})
	sim, err := crest.FieldSimilarity(ds.Fields[:5], crest.PredictorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sim.Fields) != 5 {
		t.Fatalf("%d fields", len(sim.Fields))
	}
	covers := sim.Covers(1e18) // everything covers everything
	set, err := crest.MinimalTrainingSet(covers, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 {
		t.Errorf("trivial cover size %d", len(set))
	}
	profiles, err := crest.FieldProfiles(ds.Fields[0], crest.PredictorConfig{})
	if err != nil || len(profiles) != 8 {
		t.Errorf("profiles: %v (%d)", err, len(profiles))
	}
}

func TestPublicPerfSurface(t *testing.T) {
	d := crest.RuntimeDist{Mu: 1, Sigma: 0.5}
	if crest.ExpectedMax(d, 10) <= 1 {
		t.Error("ExpectedMax of 10 samples not above the mean")
	}
	if w := crest.ParallelTime(crest.RuntimeDist{Mu: 2}, 10, 5); math.Abs(w-4) > 1e-9 {
		t.Errorf("ParallelTime = %g", w)
	}
	if m := crest.MinimalMakespan([]float64{3, 3, 2, 2, 2}, 2); math.Abs(m-6) > 1e-9 {
		t.Errorf("makespan = %g", m)
	}
	p := crest.SelectionInversionProbability([]float64{3, 2, 1}, []float64{.1, .1, .1}, []float64{.5, .5, .5})
	if math.Abs(p-0.208) > 0.005 {
		t.Errorf("inversion probability = %g", p)
	}
	if s := crest.UseCaseCSpeedup(crest.UseCaseCModel{
		Compressor: crest.RuntimeDist{Mu: 1}, Estimate: crest.RuntimeDist{Mu: 1e-9},
		Buffers: 10, Procs: 1,
	}); math.Abs(s-2) > 1e-6 {
		t.Errorf("use case C serial speedup = %g", s)
	}
	if d2 := crest.MeasureRuntime([]float64{1, 3}); d2.Mu != 2 {
		t.Errorf("MeasureRuntime = %+v", d2)
	}
	res := crest.ErrorInjectionStudy(func(eps float64) float64 {
		return 5 * math.Pow(eps/1e-6, 0.25)
	}, 20, 1e-8, 1e-1, 20, []float64{0.01}, 10, 1)
	if len(res) != 1 {
		t.Error("error injection surface broken")
	}
}

func TestPublicAnalysisSurface(t *testing.T) {
	data := [][]float64{{0, 0}, {0.1, 0.1}, {10, 10}, {10.1, 9.9}}
	scores := crest.PCAProject(data, 1)
	if len(scores) != 4 || len(scores[0]) != 1 {
		t.Fatal("PCA shape")
	}
	labels := crest.KMeansCluster(data, 2, 1)
	if labels[0] != labels[1] || labels[2] != labels[3] || labels[0] == labels[2] {
		t.Errorf("clusters = %v", labels)
	}
	if k := crest.SelectClusterCount(data, 3, 1); k != 2 {
		t.Errorf("SelectClusterCount = %d", k)
	}
}

func TestPublicAggFileSurface(t *testing.T) {
	ds := crest.CESMDataset(crest.DataOptions{NZ: 6, NY: 40, NX: 40, Seed: 6})
	comp := crest.MustCompressor("digitround")
	bufs := ds.Fields[0].Buffers
	res, err := crest.ParallelWriteNoEstimate(bufs, comp, 1e-3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	blob := res.File.Marshal()
	f, err := crest.UnmarshalAggFile(blob)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := f.Read(0, comp)
	if err != nil {
		t.Fatal(err)
	}
	if d := bufs[0].MaxAbsDiff(dec); d > 1e-3*(1+1e-12) {
		t.Errorf("round-trip error %g", d)
	}
}

func TestPublicVolumeSurface(t *testing.T) {
	vol, err := crest.NewVolume(4, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vol.Data {
		vol.Data[i] = math.Sin(float64(i) / 9)
	}
	c3d := crest.NewSZInterp3D()
	blob, err := c3d.CompressVolume(vol, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	back, err := c3d.DecompressVolume(blob)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := range vol.Data {
		if d := math.Abs(vol.Data[i] - back.Data[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-4*(1+1e-12) {
		t.Errorf("3D bound violated: %g", worst)
	}
	// Sliced helper + relative bound helper.
	comp := crest.MustCompressor("szinterp")
	blob2, err := crest.CompressVolume(comp, vol, 1e-4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := crest.DecompressVolume(comp, blob2, 2); err != nil {
		t.Fatal(err)
	}
	if b := crest.RelativeBound(vol.Slice(0), 0.01); b <= 0 {
		t.Errorf("relative bound = %g", b)
	}
	// Volume-level predictors.
	vf, err := crest.ComputeVolumeFeatures(vol, 1e-4, crest.PredictorConfig{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(vf.Mean.SD) {
		t.Error("volume features NaN")
	}
}
