package crest_test

// ablation_bench_test.go benchmarks the design choices DESIGN.md calls
// out: the fused single-pass metric computation, the block size k, the
// mixture (vs single) regression, and the conformal calibration split.
// The atomic-vs-mutex accumulation ablation lives with its subject in
// internal/parallel.

import (
	"math"
	"testing"

	crest "github.com/crestlab/crest"
)

// BenchmarkAblationFusedMetrics compares the paper's fused single-pass
// predictor computation (§IV-C) against the one-pass-per-metric reference.
func BenchmarkAblationFusedMetrics(b *testing.B) {
	ds := crest.HurricaneDataset(crest.DataOptions{NZ: 2, NY: 96, NX: 96, Seed: 1})
	buf := ds.Field("TC").Buffers[0]
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := crest.ComputeDatasetFeatures(buf, crest.PredictorConfig{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := crest.ComputeDatasetFeaturesNaive(buf, crest.PredictorConfig{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBlockSize sweeps the predictor block edge k; the
// paper's complexity model O(p²/(k·n_c) + p·k/(n_c·γ) + k⁶/γ) predicts the
// k⁶ eigendecomposition term dominating at large k.
func BenchmarkAblationBlockSize(b *testing.B) {
	ds := crest.HurricaneDataset(crest.DataOptions{NZ: 2, NY: 96, NX: 96, Seed: 1})
	buf := ds.Field("W").Buffers[0]
	for _, k := range []int{4, 6, 8, 12, 16} {
		b.Run(sizeName(k), func(b *testing.B) {
			cfg := crest.PredictorConfig{K: k}
			for i := 0; i < b.N; i++ {
				if _, err := crest.ComputeDatasetFeatures(buf, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(k int) string {
	return "k" + string(rune('0'+k/10)) + string(rune('0'+k%10))
}

// BenchmarkAblationMixture compares the mixture regression against a
// single-component fit on heterogeneous multi-field training data, the
// situation Fig. 2 motivates.
func BenchmarkAblationMixture(b *testing.B) {
	ds := crest.HurricaneDataset(crest.DataOptions{NZ: 10, NY: 48, NX: 48, Seed: 1})
	comp := crest.MustCompressor("szinterp")
	cache := crest.NewCRCache()
	var train, test []*crest.Buffer
	for _, name := range []string{"CLOUD", "TC", "QSNOW", "W"} {
		f := ds.Field(name)
		train = append(train, f.Buffers[:7]...)
		test = append(test, f.Buffers[7:]...)
	}
	run := func(b *testing.B, cfg crest.EstimatorConfig, label string) {
		var medape float64
		for i := 0; i < b.N; i++ {
			m := crest.NewProposedMethod(cfg)
			var err error
			medape, _, err = crest.OutOfSampleEvaluate(m, train, test, comp, 1e-3, cache)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(medape, "medape-%")
	}
	b.Run("mixture-auto", func(b *testing.B) { run(b, crest.EstimatorConfig{}, "auto") })
	b.Run("single-component", func(b *testing.B) {
		cfg := crest.EstimatorConfig{}
		cfg.Mixture.L = 1
		run(b, cfg, "L1")
	})
}

// BenchmarkAblationCalibSplit sweeps the conformal calibration fraction:
// larger calibration sets tighten the quantile estimate but starve the
// regression.
func BenchmarkAblationCalibSplit(b *testing.B) {
	ds := crest.HurricaneDataset(crest.DataOptions{NZ: 16, NY: 48, NX: 48, Seed: 1})
	comp := crest.MustCompressor("szinterp")
	field := ds.Field("TC")
	samples, err := crest.CollectSamples(field.Buffers, comp, 1e-3, crest.PredictorConfig{})
	if err != nil {
		b.Fatal(err)
	}
	var train, test []crest.Sample
	for i, s := range samples {
		if i%4 == 3 {
			test = append(test, s)
		} else {
			train = append(train, s)
		}
	}
	for _, frac := range []float64{0.2, 0.3, 0.5} {
		name := "calib" + string(rune('0'+int(frac*10)))
		b.Run(name, func(b *testing.B) {
			cfg := crest.EstimatorConfig{}
			cfg.Conformal.CalibFraction = frac
			var width, cov float64
			for i := 0; i < b.N; i++ {
				est, err := crest.TrainEstimator(train, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cov = est.Coverage(test)
				width = est.IntervalRadius()
			}
			b.ReportMetric(100*cov, "coverage-%")
			b.ReportMetric(width, "radius-logcr")
		})
	}
}

// BenchmarkCompressorsThroughput measures compression throughput (MB/s of
// input consumed) for every compressor at a representative bound.
func BenchmarkCompressorsThroughput(b *testing.B) {
	ds := crest.HurricaneDataset(crest.DataOptions{NZ: 2, NY: 96, NX: 96, Seed: 1})
	buf := ds.Field("TC").Buffers[0]
	mb := float64(buf.SizeBytes()) / (1 << 20)
	for _, name := range crest.CompressorNames() {
		comp := crest.MustCompressor(name)
		b.Run(name+"/compress", func(b *testing.B) {
			var cr float64
			for i := 0; i < b.N; i++ {
				var err error
				cr, err = crest.CompressionRatio(comp, buf, 1e-3)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(mb*float64(b.N)/b.Elapsed().Seconds(), "MB/s")
			b.ReportMetric(cr, "CR")
		})
		data, err := comp.Compress(buf, 1e-3)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/decompress", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := comp.Decompress(data); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(mb*float64(b.N)/b.Elapsed().Seconds(), "MB/s")
		})
	}
}

// BenchmarkPredictorLatency measures the two predictor stages that §V's
// models consume as μ_d and μ_e.
func BenchmarkPredictorLatency(b *testing.B) {
	ds := crest.HurricaneDataset(crest.DataOptions{NZ: 2, NY: 96, NX: 96, Seed: 1})
	buf := ds.Field("CLOUD").Buffers[0]
	b.Run("dataset-preds", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := crest.ComputeDatasetFeatures(buf, crest.PredictorConfig{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("eb-preds", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := crest.ComputeDistortion(buf, 1e-3, crest.PredictorConfig{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("model-estimate", func(b *testing.B) {
		samples := make([]crest.Sample, 24)
		for i := range samples {
			samples[i] = crest.Sample{
				Features: []float64{float64(i), 1, 2, 3, 4},
				CR:       4 + math.Mod(float64(i), 7),
			}
		}
		est, err := crest.TrainEstimator(samples, crest.EstimatorConfig{})
		if err != nil {
			b.Fatal(err)
		}
		feats := []float64{3, 1, 2, 3, 4}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := est.Estimate(feats); err != nil {
				b.Fatal(err)
			}
		}
	})
}
