package crest

import (
	"context"

	"github.com/crestlab/crest/internal/eval"
	"github.com/crestlab/crest/internal/fieldsim"
	"github.com/crestlab/crest/internal/predictors"
)

// Quantiles are the 10/50/90% quantiles of per-fold MedAPEs, the accuracy
// summary of the paper's Algorithm 2.
type Quantiles = eval.Quantiles

// CRCache memoizes ground-truth compression ratios so several methods can
// be compared without re-running compressors.
type CRCache = eval.CRCache

// NewCRCache returns an empty ground-truth cache.
func NewCRCache() *CRCache { return eval.NewCRCache() }

// PredPair is one predicted-vs-actual observation with an optional
// conformal interval.
type PredPair = eval.PredPair

// KFoldEvaluate runs Algorithm 2: k-fold cross-validation of a method on
// one set of buffers, returning MedAPE quantiles and per-fold MedAPEs.
func KFoldEvaluate(m Method, bufs []*Buffer, comp Compressor, eps float64, k int, seed int64, cache *CRCache) (Quantiles, []float64, error) {
	return eval.KFold(m, bufs, comp, eps, k, seed, cache)
}

// KFoldEvaluateContext is KFoldEvaluate with cooperative cancellation: the
// context gates the concurrent ground-truth and feature pre-passes and
// every fold boundary, so a canceled evaluation returns promptly with an
// error matching ErrCanceled.
func KFoldEvaluateContext(ctx context.Context, m Method, bufs []*Buffer, comp Compressor, eps float64, k int, seed int64, cache *CRCache) (Quantiles, []float64, error) {
	return eval.KFoldContext(ctx, m, bufs, comp, eps, k, seed, cache)
}

// OutOfSampleEvaluate trains on buffers from other fields and evaluates on
// a held-out field (the robustness protocol of §VI-C).
func OutOfSampleEvaluate(m Method, trainBufs, testBufs []*Buffer, comp Compressor, eps float64, cache *CRCache) (float64, []PredPair, error) {
	return eval.OutOfSample(m, trainBufs, testBufs, comp, eps, cache)
}

// AblationRow is one field's row of the Fig. 1 leave-one-predictor-out
// study.
type AblationRow = eval.AblationRow

// AblationStudy reproduces Fig. 1 for the given fields.
func AblationStudy(fields []*Field, comp Compressor, eps float64, cfg EstimatorConfig, k int, seed int64, cache *CRCache) ([]AblationRow, error) {
	return eval.Ablation(fields, comp, eps, cfg, k, seed, cache)
}

// SimilarityMatrix is the labelled Mahalanobis field-dissimilarity matrix
// of Table III.
type SimilarityMatrix = fieldsim.Matrix

// FieldSimilarity computes pairwise field dissimilarities from the
// singular-value-decay profiles of their slices.
func FieldSimilarity(fields []*Field, cfg PredictorConfig) (*SimilarityMatrix, error) {
	return fieldsim.SimilarityMatrix(fields, cfg)
}

// MinimalTrainingSet solves the minimal covering training-set selection of
// §VI-E on a coverage relation (exact for ≤ 20 fields, greedy beyond).
func MinimalTrainingSet(covers [][]bool, required []int) ([]int, error) {
	return fieldsim.MinimalCover(covers, required)
}

// FieldProfiles returns the per-slice singular-value decay signatures of a
// field, the raw material of the similarity analysis.
func FieldProfiles(field *Field, cfg PredictorConfig) ([][]float64, error) {
	return fieldsim.Profiles(field, cfg)
}

// NumFeatures is the dimensionality of the model covariates.
const NumFeatures = predictors.NumFeatures
