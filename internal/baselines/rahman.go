package baselines

import (
	"math"
	"sort"

	"github.com/crestlab/crest/internal/featcache"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/predictors"
)

// Rahman is the decision-tree baseline in the style of Rahman et al.
// (§III: "a black-box approach leveraging decision trees combined with
// generally applicable statistical predictors"). It fits a CART
// regression tree of log(CR) on the same five statistical predictors the
// proposed method uses, so the comparison isolates the model family:
// piecewise-constant trees capture the grouping effects of Fig. 2 but
// cannot interpolate within a leaf, which is where the mixture regression
// wins.
type Rahman struct {
	// MaxDepth caps the tree depth (default 6).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 3).
	MinLeaf int
	// CRCap clamps training ratios (default 100).
	CRCap float64

	root  *treeNode
	cache *featcache.Cache
}

// NewRahman returns the decision-tree baseline with default parameters.
func NewRahman() *Rahman {
	return &Rahman{MaxDepth: 6, MinLeaf: 3, CRCap: 100, cache: featcache.New(predictors.Config{})}
}

// Name implements Method.
func (r *Rahman) Name() string { return "rahman" }

// ConcurrentPredictSafe implements ConcurrentPredictor: tree traversal is
// read-only and the feature cache is race-safe.
func (r *Rahman) ConcurrentPredictSafe() bool { return true }

type treeNode struct {
	// Leaf prediction (mean log-CR of the leaf's samples).
	value float64
	// Split definition; children nil for leaves.
	feature     int
	threshold   float64
	left, right *treeNode
}

// Fit implements Method with a greedy variance-reduction CART build.
func (r *Rahman) Fit(bufs []*grid.Buffer, crs []float64, eps float64) error {
	x := make([][]float64, len(bufs))
	y := make([]float64, len(bufs))
	for i, b := range bufs {
		feats, err := r.cache.Features(b, eps)
		if err != nil {
			return err
		}
		x[i] = feats
		y[i] = logCR(crs[i], r.CRCap)
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	r.root = r.build(x, y, idx, 0)
	return nil
}

func (r *Rahman) build(x [][]float64, y []float64, idx []int, depth int) *treeNode {
	node := &treeNode{value: meanAt(y, idx)}
	if len(idx) < 2*r.MinLeaf || depth >= r.MaxDepth {
		return node
	}
	bestSSE := sseAt(y, idx)
	var bestFeature int = -1
	var bestThreshold float64
	d := len(x[idx[0]])
	vals := make([]float64, len(idx))
	for f := 0; f < d; f++ {
		for i, j := range idx {
			vals[i] = x[j][f]
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		for s := r.MinLeaf; s <= len(sorted)-r.MinLeaf; s++ {
			if sorted[s] == sorted[s-1] {
				continue
			}
			thr := (sorted[s] + sorted[s-1]) / 2
			var lSum, rSum float64
			var lN, rN int
			for _, j := range idx {
				if x[j][f] <= thr {
					lSum += y[j]
					lN++
				} else {
					rSum += y[j]
					rN++
				}
			}
			if lN < r.MinLeaf || rN < r.MinLeaf {
				continue
			}
			lMean, rMean := lSum/float64(lN), rSum/float64(rN)
			var sse float64
			for _, j := range idx {
				var m float64
				if x[j][f] <= thr {
					m = lMean
				} else {
					m = rMean
				}
				diff := y[j] - m
				sse += diff * diff
			}
			if sse < bestSSE-1e-12 {
				bestSSE = sse
				bestFeature = f
				bestThreshold = thr
			}
		}
	}
	if bestFeature < 0 {
		return node
	}
	var lIdx, rIdx []int
	for _, j := range idx {
		if x[j][bestFeature] <= bestThreshold {
			lIdx = append(lIdx, j)
		} else {
			rIdx = append(rIdx, j)
		}
	}
	node.feature = bestFeature
	node.threshold = bestThreshold
	node.left = r.build(x, y, lIdx, depth+1)
	node.right = r.build(x, y, rIdx, depth+1)
	return node
}

func meanAt(y []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var s float64
	for _, j := range idx {
		s += y[j]
	}
	return s / float64(len(idx))
}

func sseAt(y []float64, idx []int) float64 {
	m := meanAt(y, idx)
	var s float64
	for _, j := range idx {
		d := y[j] - m
		s += d * d
	}
	return s
}

// Predict implements Method.
func (r *Rahman) Predict(buf *grid.Buffer, eps float64) (float64, error) {
	if r.root == nil {
		return 0, ErrUntrained
	}
	feats, err := r.cache.Features(buf, eps)
	if err != nil {
		return 0, err
	}
	node := r.root
	for node.left != nil {
		if feats[node.feature] <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return math.Exp(node.value), nil
}

var _ Method = (*Rahman)(nil)
