package baselines

import (
	"errors"
	"math"
	"testing"

	"github.com/crestlab/crest/internal/compressors"
	"github.com/crestlab/crest/internal/core"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/stats"
	"github.com/crestlab/crest/internal/synthdata"
)

func trainingData(t *testing.T, field string, comp compressors.Compressor, eps float64) ([]*grid.Buffer, []float64, []*grid.Buffer, []float64) {
	t.Helper()
	ds := synthdata.Hurricane(synthdata.Options{NZ: 16, NY: 48, NX: 48, Seed: 99})
	bufs := ds.Field(field).Buffers
	crs := make([]float64, len(bufs))
	for i, b := range bufs {
		cr, err := compressors.Ratio(comp, b, eps)
		if err != nil {
			t.Fatal(err)
		}
		crs[i] = math.Min(cr, 100)
	}
	n := len(bufs) * 3 / 4
	return bufs[:n], crs[:n], bufs[n:], crs[n:]
}

func medapeOf(t *testing.T, m Method, test []*grid.Buffer, truth []float64, eps float64) float64 {
	t.Helper()
	preds := make([]float64, len(test))
	for i, b := range test {
		p, err := m.Predict(b, eps)
		if err != nil {
			t.Fatalf("%s predict: %v", m.Name(), err)
		}
		preds[i] = p
	}
	return stats.MedAPE(truth, preds)
}

func TestMethodNames(t *testing.T) {
	if NewProposed(core.Config{}).Name() != "proposed" ||
		NewUnderwood().Name() != "underwood" ||
		NewTao().Name() != "tao" ||
		NewLu().Name() != "lu" {
		t.Error("method names wrong")
	}
}

func TestUntrainedErrors(t *testing.T) {
	buf := grid.NewBuffer(16, 16)
	if _, err := NewProposed(core.Config{}).Predict(buf, 1e-3); !errors.Is(err, ErrUntrained) {
		t.Errorf("proposed untrained error = %v", err)
	}
	if _, err := NewProposed(core.Config{}).Interval(buf, 1e-3); !errors.Is(err, ErrUntrained) {
		t.Errorf("proposed untrained interval error = %v", err)
	}
	if _, err := NewUnderwood().Predict(buf, 1e-3); !errors.Is(err, ErrUntrained) {
		t.Errorf("underwood untrained error = %v", err)
	}
}

func TestTrainingFreeMethodsPredictWithoutFit(t *testing.T) {
	ds := synthdata.Hurricane(synthdata.Options{NZ: 2, NY: 32, NX: 32, Seed: 1})
	buf := ds.Field("TC").Buffers[0]
	for _, m := range []Method{NewTao(), NewLu()} {
		cr, err := m.Predict(buf, 1e-3)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if cr <= 0 || math.IsNaN(cr) {
			t.Errorf("%s predicted %g", m.Name(), cr)
		}
		if err := m.Fit(nil, nil, 1e-3); err != nil {
			t.Errorf("%s no-op fit errored: %v", m.Name(), err)
		}
	}
}

func TestAccuracyOrderingInSample(t *testing.T) {
	comp := compressors.MustNew("szinterp")
	eps := 1e-3
	train, trainCR, test, testCR := trainingData(t, "TC", comp, eps)

	prop := NewProposed(core.Config{})
	if err := prop.Fit(train, trainCR, eps); err != nil {
		t.Fatal(err)
	}
	under := NewUnderwood()
	if err := under.Fit(train, trainCR, eps); err != nil {
		t.Fatal(err)
	}
	tao := NewTao()
	lu := NewLu()

	mProp := medapeOf(t, prop, test, testCR, eps)
	mUnder := medapeOf(t, under, test, testCR, eps)
	mTao := medapeOf(t, tao, test, testCR, eps)
	mLu := medapeOf(t, lu, test, testCR, eps)
	t.Logf("MedAPE: proposed=%.2f underwood=%.2f tao=%.2f lu=%.2f", mProp, mUnder, mTao, mLu)

	if mProp > 10 {
		t.Errorf("proposed MedAPE %.2f too high in-sample", mProp)
	}
	if mProp > mTao || mProp > mLu {
		t.Error("proposed not better than the fast baselines")
	}
	if mUnder > mTao {
		t.Error("underwood not better than tao in-sample")
	}
}

func TestProposedIntervalContainsPoint(t *testing.T) {
	comp := compressors.MustNew("szinterp")
	eps := 1e-3
	train, trainCR, test, _ := trainingData(t, "CLOUD", comp, eps)
	prop := NewProposed(core.Config{})
	if err := prop.Fit(train, trainCR, eps); err != nil {
		t.Fatal(err)
	}
	for _, b := range test {
		est, err := prop.Interval(b, eps)
		if err != nil {
			t.Fatal(err)
		}
		if est.Lo > est.CR*1.0000001 || est.Hi < est.CR*0.9999999 {
			// The point is clamped to [1, cap]; the raw interval might not
			// contain a clamped point only in extreme extrapolation.
			t.Logf("interval [%g,%g] vs point %g (clamped)", est.Lo, est.Hi, est.CR)
		}
		if est.Lo > est.Hi {
			t.Errorf("inverted interval [%g, %g]", est.Lo, est.Hi)
		}
	}
	if prop.Estimator() == nil {
		t.Error("Estimator() nil after fit")
	}
}

func TestFitMultiMakesModelRateAware(t *testing.T) {
	comp := compressors.MustNew("szinterp")
	ds := synthdata.Hurricane(synthdata.Options{NZ: 12, NY: 48, NX: 48, Seed: 5})
	bufs := ds.Field("W").Buffers
	epses := []float64{1e-2, 1e-3, 1e-4}
	crs := make([][]float64, len(bufs))
	for i, b := range bufs {
		crs[i] = make([]float64, len(epses))
		for j, e := range epses {
			cr, err := compressors.Ratio(comp, b, e)
			if err != nil {
				t.Fatal(err)
			}
			crs[i][j] = math.Min(cr, 100)
		}
	}
	m := NewProposed(core.Config{})
	if err := m.FitMulti(bufs[:9], crs[:9], epses); err != nil {
		t.Fatal(err)
	}
	// Prediction at an unseen intermediate bound must land between the
	// neighboring bounds' predictions (monotone in eps).
	b := bufs[10]
	loose, err := m.Predict(b, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := m.Predict(b, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if loose <= tight {
		t.Errorf("CR at loose bound %.2f not above tight bound %.2f", loose, tight)
	}
	// Mismatched shape errors.
	if err := m.FitMulti(bufs[:2], crs[:1], epses); err == nil {
		t.Error("ragged FitMulti accepted")
	}
}

func TestSharedFeatureCache(t *testing.T) {
	comp := compressors.MustNew("szinterp")
	eps := 1e-3
	train, trainCR, test, _ := trainingData(t, "QSNOW", comp, eps)
	shared := NewFeatureCache(core.Config{})
	a := NewProposedShared(core.Config{}, shared)
	b := NewProposedShared(core.Config{}, shared)
	if err := a.Fit(train, trainCR, eps); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(train, trainCR, eps); err != nil {
		t.Fatal(err)
	}
	pa, err := a.Predict(test[0], eps)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Predict(test[0], eps)
	if err != nil {
		t.Fatal(err)
	}
	if pa != pb {
		t.Errorf("same training, shared cache, different predictions: %g vs %g", pa, pb)
	}
}

func TestLuSupportsCompressor(t *testing.T) {
	lu := NewLu()
	if !lu.SupportsCompressor("szlorenzo") || !lu.SupportsCompressor("zfplike") {
		t.Error("Lu must support the SZ2/ZFP families")
	}
	if lu.SupportsCompressor("szinterp") || lu.SupportsCompressor("sperrlike") {
		t.Error("Lu must not claim non-SZ2/ZFP compressors")
	}
}

func TestLuTracksSZLorenzoCR(t *testing.T) {
	// Lu's white-box estimate should be in the right ballpark for the
	// compressor whose internals it models.
	comp := compressors.MustNew("szlorenzo")
	ds := synthdata.Hurricane(synthdata.Options{NZ: 4, NY: 48, NX: 48, Seed: 31})
	lu := NewLu()
	for _, b := range ds.Field("TC").Buffers {
		truth, err := compressors.Ratio(comp, b, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		est, err := lu.Predict(b, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		if est < truth/3 || est > truth*3 {
			t.Errorf("Lu estimate %.2f vs true %.2f (off by >3x)", est, truth)
		}
	}
}

func TestFitLengthMismatch(t *testing.T) {
	ds := synthdata.Hurricane(synthdata.Options{NZ: 2, NY: 32, NX: 32, Seed: 1})
	bufs := ds.Field("TC").Buffers
	if err := NewProposed(core.Config{}).Fit(bufs, []float64{1}, 1e-3); err == nil {
		t.Error("length mismatch accepted")
	}
}
