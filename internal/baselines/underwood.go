package baselines

import (
	"fmt"
	"math"
	"sync"

	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/linalg"
	"github.com/crestlab/crest/internal/predictors"
	"github.com/crestlab/crest/internal/stats"
)

// Underwood is the black-box statistical baseline of Underwood et al.
// (§III): an ordinary least-squares linear model of log(CR) on two
// predictors — the SVD truncation of the block covariance and the
// quantized entropy of the buffer. Accurate in-sample, but the unguarded
// linear extrapolation on the log scale is what produces the enormous
// out-of-field errors the paper reports in Table II.
type Underwood struct {
	// PredCfg configures the block decomposition used for SVD truncation.
	PredCfg predictors.Config
	// CRCap clamps training ratios (default 100, matching the protocol).
	CRCap float64

	beta []float64 // intercept + 2 coefficients; nil before Fit

	mu  sync.Mutex // guards svd against concurrent Predict calls
	svd map[*grid.Buffer]float64
}

// NewUnderwood returns the Underwood baseline with default parameters.
func NewUnderwood() *Underwood {
	return &Underwood{PredCfg: predictors.Config{}, CRCap: 100, svd: make(map[*grid.Buffer]float64)}
}

// Name implements Method.
func (u *Underwood) Name() string { return "underwood" }

// features computes [svd-trunc, quantized entropy] for one buffer. The
// SVD truncation runs through the unfused per-metric path — the original
// computes its metrics standalone, which is exactly the runtime gap the
// paper's "1.42× faster to train" claim measures. Results are cached per
// buffer like the real implementation would.
func (u *Underwood) features(buf *grid.Buffer, eps float64) ([2]float64, error) {
	u.mu.Lock()
	trunc, ok := u.svd[buf]
	u.mu.Unlock()
	if !ok {
		t, _, err := predictors.NaiveCovSVDTrunc(buf, u.PredCfg)
		if err != nil {
			return [2]float64{}, err
		}
		trunc = t
		u.mu.Lock()
		u.svd[buf] = trunc
		u.mu.Unlock()
	}
	qe := stats.QuantizedEntropy(buf.Data, eps)
	return [2]float64{trunc, qe}, nil
}

// ConcurrentPredictSafe implements ConcurrentPredictor: the SVD memo is
// mutex-guarded and the fitted coefficients are read-only after Fit.
func (u *Underwood) ConcurrentPredictSafe() bool { return true }

// Fit implements Method with an OLS solve of the 3-parameter model.
func (u *Underwood) Fit(bufs []*grid.Buffer, crs []float64, eps float64) error {
	multi := make([][]float64, len(bufs))
	for i := range bufs {
		multi[i] = []float64{crs[i]}
	}
	return u.fitRows(bufs, multi, []float64{eps})
}

// FitMulti trains across several error bounds: crs[i][j] is the ratio of
// bufs[i] at epses[j].
func (u *Underwood) FitMulti(bufs []*grid.Buffer, crs [][]float64, epses []float64) error {
	return u.fitRows(bufs, crs, epses)
}

func (u *Underwood) fitRows(bufs []*grid.Buffer, crs [][]float64, epses []float64) error {
	if len(bufs) != len(crs) {
		return fmt.Errorf("baselines: %d buffers vs %d ratio rows", len(bufs), len(crs))
	}
	const p = 3
	ata := linalg.NewMatrix(p, p)
	atb := make([]float64, p)
	for i, b := range bufs {
		if len(crs[i]) != len(epses) {
			return fmt.Errorf("baselines: buffer %d has %d ratios for %d bounds", i, len(crs[i]), len(epses))
		}
		for j, eps := range epses {
			f, err := u.features(b, eps)
			if err != nil {
				return err
			}
			row := [p]float64{1, f[0], f[1]}
			y := logCR(crs[i][j], u.CRCap)
			for a := 0; a < p; a++ {
				atb[a] += row[a] * y
				for c := 0; c < p; c++ {
					ata.Add(a, c, row[a]*row[c])
				}
			}
		}
	}
	for a := 0; a < p; a++ {
		ata.Add(a, a, 1e-9)
	}
	beta, err := linalg.SolveSPD(ata, atb)
	if err != nil {
		return err
	}
	u.beta = beta
	return nil
}

// Predict implements Method.
func (u *Underwood) Predict(buf *grid.Buffer, eps float64) (float64, error) {
	if u.beta == nil {
		return 0, ErrUntrained
	}
	f, err := u.features(buf, eps)
	if err != nil {
		return 0, err
	}
	y := u.beta[0] + u.beta[1]*f[0] + u.beta[2]*f[1]
	// Deliberately no clamp: the original provides raw point estimates,
	// which is the failure mode Table II exposes out-of-sample.
	return math.Exp(y), nil
}
