// Package baselines implements the prior compression-ratio estimation
// methods the paper compares against (§III, Table II, Fig. 7), behind a
// single Method interface shared with the proposed approach:
//
//   - Underwood: black-box linear model on SVD truncation + quantized
//     entropy.
//   - Tao: training-free sampled quantized-entropy bit-rate estimate,
//     originally for online SZ/ZFP selection.
//   - Lu: white-box estimate that runs the SZ2-style prediction and
//     quantization stages and prices the stream from Huffman-tree
//     statistics; it has no notion of other compressor families, which is
//     why the paper observes large errors when it is applied to SZ3.
package baselines

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/crestlab/crest/internal/core"
	"github.com/crestlab/crest/internal/featcache"
	"github.com/crestlab/crest/internal/grid"
)

// Method is a compression-ratio estimation method under evaluation.
// Fit receives buffers with their observed compression ratios at the
// error bound; Predict estimates the ratio of an unseen buffer.
type Method interface {
	Name() string
	Fit(bufs []*grid.Buffer, crs []float64, eps float64) error
	Predict(buf *grid.Buffer, eps float64) (float64, error)
}

// ErrUntrained reports Predict before a successful Fit.
var ErrUntrained = errors.New("baselines: method not trained")

// ConcurrentPredictor marks methods whose Predict is safe to call from
// several goroutines once Fit has returned; concurrent evaluation paths
// (parallel k-fold prediction, the batch engine's method adapter) consult
// it before fanning predictions out.
type ConcurrentPredictor interface {
	ConcurrentPredictSafe() bool
}

// ---------------------------------------------------------------------------
// Proposed method adapter

// Proposed wraps the paper's estimator (internal/core) in the Method
// interface, caching the error-bound-agnostic features per buffer so
// k-fold evaluation does not recompute them.
type Proposed struct {
	Cfg   core.Config
	est   *core.Estimator
	cache *featcache.Cache
}

// NewProposed returns the proposed method with the given pipeline config.
func NewProposed(cfg core.Config) *Proposed {
	return &Proposed{Cfg: cfg, cache: featcache.New(cfg.Predictors)}
}

// NewProposedShared returns the proposed method sharing a feature cache
// with other instances. The five predictors are compressor-independent, so
// per-compressor models (use case B) should share one cache: features for
// each buffer are then computed once, not once per candidate compressor.
func NewProposedShared(cfg core.Config, cache *FeatureCache) *Proposed {
	return &Proposed{Cfg: cfg, cache: cache.inner}
}

// FeatureCache is a shareable, race-safe cache of predictor features keyed
// by buffer identity and error bound (a thin wrapper over the sharded
// singleflight cache of internal/featcache). One FeatureCache may be
// shared by any number of methods and goroutines.
type FeatureCache struct {
	inner *featcache.Cache
}

// NewFeatureCache returns an empty shareable cache for the predictor
// configuration.
func NewFeatureCache(cfg core.Config) *FeatureCache {
	return &FeatureCache{inner: featcache.New(cfg.Predictors)}
}

// Features returns the five-feature covariate vector of buf at eps,
// computed on first use and cached thereafter. Safe for concurrent use.
func (c *FeatureCache) Features(buf *grid.Buffer, eps float64) ([]float64, error) {
	return c.inner.Features(buf, eps)
}

// Stats returns a snapshot of the cache hit/miss counters.
func (c *FeatureCache) Stats() featcache.Stats { return c.inner.Stats() }

// Cache exposes the underlying sharded cache for engines that consume it
// directly (the batch estimator).
func (c *FeatureCache) Cache() *featcache.Cache { return c.inner }

// Name implements Method.
func (p *Proposed) Name() string { return "proposed" }

// Fit implements Method. Samples are grouped by source field so conformal
// calibration holds out whole fields when the training pool spans several.
func (p *Proposed) Fit(bufs []*grid.Buffer, crs []float64, eps float64) error {
	if len(bufs) != len(crs) {
		return fmt.Errorf("baselines: %d buffers vs %d ratios", len(bufs), len(crs))
	}
	samples := make([]core.Sample, len(bufs))
	for i, b := range bufs {
		feats, err := p.cache.Features(b, eps)
		if err != nil {
			return err
		}
		samples[i] = core.Sample{Features: feats, CR: crs[i]}
	}
	est, err := core.TrainGrouped(samples, fieldGroups(bufs, 1), p.Cfg)
	if err != nil {
		return err
	}
	p.est = est
	return nil
}

// fieldGroups labels each buffer (repeated rep times, consecutively) by
// its dataset/field identity for grouped conformal calibration.
func fieldGroups(bufs []*grid.Buffer, rep int) []int {
	ids := make(map[string]int)
	out := make([]int, 0, len(bufs)*rep)
	for _, b := range bufs {
		key := b.Dataset + "/" + b.Field
		id, ok := ids[key]
		if !ok {
			id = len(ids)
			ids[key] = id
		}
		for r := 0; r < rep; r++ {
			out = append(out, id)
		}
	}
	return out
}

// FitMulti trains across several error bounds at once: crs[i][j] is the
// ratio of bufs[i] at epses[j]. Multi-bound training makes the model
// rate-aware through the error-bound-specific distortion feature, which
// use case A's bound search requires.
func (p *Proposed) FitMulti(bufs []*grid.Buffer, crs [][]float64, epses []float64) error {
	if len(bufs) != len(crs) {
		return fmt.Errorf("baselines: %d buffers vs %d ratio rows", len(bufs), len(crs))
	}
	var samples []core.Sample
	for i, b := range bufs {
		if len(crs[i]) != len(epses) {
			return fmt.Errorf("baselines: buffer %d has %d ratios for %d bounds", i, len(crs[i]), len(epses))
		}
		for j, eps := range epses {
			feats, err := p.cache.Features(b, eps)
			if err != nil {
				return err
			}
			samples = append(samples, core.Sample{Features: feats, CR: crs[i][j]})
		}
	}
	est, err := core.TrainGrouped(samples, fieldGroups(bufs, len(epses)), p.Cfg)
	if err != nil {
		return err
	}
	p.est = est
	return nil
}

// Predict implements Method.
func (p *Proposed) Predict(buf *grid.Buffer, eps float64) (float64, error) {
	if p.est == nil {
		return 0, ErrUntrained
	}
	feats, err := p.cache.Features(buf, eps)
	if err != nil {
		return 0, err
	}
	e, err := p.est.Estimate(feats)
	if err != nil {
		return 0, err
	}
	return e.CR, nil
}

// Interval exposes the conformal interval for a buffer, used by the
// Fig. 6 reproduction.
func (p *Proposed) Interval(buf *grid.Buffer, eps float64) (core.Estimate, error) {
	if p.est == nil {
		return core.Estimate{}, ErrUntrained
	}
	feats, err := p.cache.Features(buf, eps)
	if err != nil {
		return core.Estimate{}, err
	}
	return p.est.Estimate(feats)
}

// Estimator exposes the trained core estimator (nil before Fit).
func (p *Proposed) Estimator() *core.Estimator { return p.est }

// ConcurrentPredictSafe implements ConcurrentPredictor: the sharded
// singleflight feature cache makes Predict race-free after Fit.
func (p *Proposed) ConcurrentPredictSafe() bool { return true }

// Warm fills the feature cache for every buffer × bound pair across a
// bounded worker pool (workers <= 0 selects GOMAXPROCS), so a subsequent
// Fit or k-fold pass finds every feature precomputed instead of faulting
// them in serially.
func (p *Proposed) Warm(bufs []*grid.Buffer, epses []float64, workers int) error {
	return p.cache.Warm(bufs, epses, workers)
}

// WarmContext is Warm with cooperative cancellation: workers stop claiming
// buffers once ctx is done and the call returns an error matching
// crerr.ErrCanceled after draining.
func (p *Proposed) WarmContext(ctx context.Context, bufs []*grid.Buffer, epses []float64, workers int) error {
	return p.cache.WarmContext(ctx, bufs, epses, workers)
}

// CacheStats returns the hit/miss counters of the method's feature cache.
func (p *Proposed) CacheStats() featcache.Stats { return p.cache.Stats() }

func logCR(cr, cap float64) float64 {
	if cr > cap {
		cr = cap
	}
	if cr < 1e-9 {
		cr = 1e-9
	}
	return math.Log(cr)
}
