package baselines

import (
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/stats"
)

// Tao is the fast training-free baseline of Tao et al. (§III): it samples
// a fraction of the data blocks, estimates the probability density of the
// quantized values, and prices the stream at the quantized entropy — i.e.
// CR ≈ 64 / H(α(X, 2ε)) bits. It needs no model fit, runs in a fraction of
// a compressor invocation, and — because it ignores prediction and the
// lossless back end — is exceptionally inaccurate, which is exactly the
// trade-off the paper quantifies (MedAPE near 90%).
type Tao struct {
	// SampleStride keeps every SampleStride-th block (default 4, i.e.
	// 25% of blocks sampled).
	SampleStride int
	// BlockSize is the sampling block edge (default 8).
	BlockSize int
}

// NewTao returns the Tao baseline with default parameters.
func NewTao() *Tao { return &Tao{SampleStride: 4, BlockSize: 8} }

// Name implements Method.
func (t *Tao) Name() string { return "tao" }

// ConcurrentPredictSafe implements ConcurrentPredictor: Predict touches no
// shared state.
func (t *Tao) ConcurrentPredictSafe() bool { return true }

// Fit implements Method; the method is training-free.
func (t *Tao) Fit(bufs []*grid.Buffer, crs []float64, eps float64) error { return nil }

// Predict implements Method.
func (t *Tao) Predict(buf *grid.Buffer, eps float64) (float64, error) {
	stride := t.SampleStride
	if stride <= 0 {
		stride = 4
	}
	bs := t.BlockSize
	if bs <= 0 {
		bs = 8
	}
	// Sample every stride-th block in raster order.
	sample := make([]float64, 0, len(buf.Data)/stride+bs*bs)
	nbr := (buf.Rows + bs - 1) / bs
	nbc := (buf.Cols + bs - 1) / bs
	idx := 0
	for br := 0; br < nbr; br++ {
		for bc := 0; bc < nbc; bc++ {
			if idx%stride == 0 {
				r1 := minInt((br+1)*bs, buf.Rows)
				c1 := minInt((bc+1)*bs, buf.Cols)
				for i := br * bs; i < r1; i++ {
					for j := bc * bs; j < c1; j++ {
						sample = append(sample, buf.Data[i*buf.Cols+j])
					}
				}
			}
			idx++
		}
	}
	if len(sample) == 0 {
		sample = buf.Data
	}
	h := stats.QuantizedEntropy(sample, 2*eps)
	if h < 0.05 {
		h = 0.05 // floor: near-constant data still pays container overhead
	}
	return 64 / h, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
