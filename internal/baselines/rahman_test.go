package baselines

import (
	"errors"
	"math"
	"testing"

	"github.com/crestlab/crest/internal/compressors"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/synthdata"
)

func TestRahmanUntrained(t *testing.T) {
	ds := synthdata.Hurricane(synthdata.Options{NZ: 2, NY: 32, NX: 32, Seed: 1})
	if _, err := NewRahman().Predict(ds.Fields[0].Buffers[0], 1e-3); !errors.Is(err, ErrUntrained) {
		t.Errorf("untrained error = %v", err)
	}
}

func TestRahmanInSampleAccuracy(t *testing.T) {
	comp := compressors.MustNew("szinterp")
	eps := 1e-3
	train, trainCR, test, testCR := trainingData(t, "CLOUD", comp, eps)
	r := NewRahman()
	if err := r.Fit(train, trainCR, eps); err != nil {
		t.Fatal(err)
	}
	m := medapeOf(t, r, test, testCR, eps)
	t.Logf("rahman MedAPE = %.2f", m)
	if m > 20 {
		t.Errorf("rahman in-sample MedAPE %.2f", m)
	}
	// The tree must beat the training-free baselines on trained data.
	tao := medapeOf(t, NewTao(), test, testCR, eps)
	if m >= tao {
		t.Errorf("rahman %.2f not better than tao %.2f", m, tao)
	}
}

func TestRahmanCapturesGroups(t *testing.T) {
	// Two fields with very different CR regimes: a depth-limited tree
	// must separate them (piecewise-constant grouping) and predict each
	// group's level for held-out buffers of both fields.
	ds := synthdata.Hurricane(synthdata.Options{NZ: 12, NY: 48, NX: 48, Seed: 7})
	comp := compressors.MustNew("szinterp")
	eps := 1e-3
	r := NewRahman()
	var trainBufs []*grid.Buffer
	var trainCRs []float64
	type heldOut struct {
		buf   *grid.Buffer
		truth float64
	}
	var tests []heldOut
	for _, name := range []string{"CLOUD", "TC"} {
		f := ds.Field(name)
		for i, b := range f.Buffers {
			cr, err := compressors.Ratio(comp, b, eps)
			if err != nil {
				t.Fatal(err)
			}
			cr = math.Min(cr, 100)
			if i < 9 {
				trainBufs = append(trainBufs, b)
				trainCRs = append(trainCRs, cr)
			} else {
				tests = append(tests, heldOut{b, cr})
			}
		}
	}
	if err := r.Fit(trainBufs, trainCRs, eps); err != nil {
		t.Fatal(err)
	}
	for _, h := range tests {
		pred, err := r.Predict(h.buf, eps)
		if err != nil {
			t.Fatal(err)
		}
		if ape := 100 * math.Abs(h.truth-pred) / h.truth; ape > 30 {
			t.Errorf("%s/%d: tree APE %.1f%% (true %.2f, pred %.2f)",
				h.buf.Field, h.buf.Step, ape, h.truth, pred)
		}
	}
}
