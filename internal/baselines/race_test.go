package baselines

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/crestlab/crest/internal/compressors"
	"github.com/crestlab/crest/internal/core"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/predictors"
)

// TestFeatureCacheConcurrentHammer is the regression test for the data
// race in the original featureCache: a single shared FeatureCache —
// exactly the sharing NewProposedShared advertises for use case B — is
// hammered from many goroutines. On the seed code (unsynchronized maps)
// this fails under -race with a concurrent map write; the sharded
// singleflight cache must survive it with every request returning the
// reference values and each key computed exactly once.
func TestFeatureCacheConcurrentHammer(t *testing.T) {
	cfg := core.Config{Predictors: predictors.Config{Workers: 1}}
	rng := rand.New(rand.NewSource(7))
	var bufs []*grid.Buffer
	for s := 0; s < 3; s++ {
		b := grid.NewBuffer(32, 32)
		for i := range b.Data {
			b.Data[i] = math.Cos(float64(i)/13) + 0.05*rng.NormFloat64()
		}
		b.Dataset, b.Field, b.Step = "hammer", "f", s
		bufs = append(bufs, b)
	}
	epses := []float64{1e-2, 1e-3}

	ref := NewFeatureCache(cfg)
	want := make([][][]float64, len(bufs))
	for i, b := range bufs {
		want[i] = make([][]float64, len(epses))
		for j, eps := range epses {
			v, err := ref.Features(b, eps)
			if err != nil {
				t.Fatal(err)
			}
			want[i][j] = v
		}
	}

	shared := NewFeatureCache(cfg)
	const goroutines = 12
	const iters = 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for it := 0; it < iters; it++ {
				i := rng.Intn(len(bufs))
				j := rng.Intn(len(epses))
				v, err := shared.Features(bufs[i], epses[j])
				if err != nil {
					t.Error(err)
					return
				}
				for x := range v {
					if v[x] != want[i][j][x] {
						t.Errorf("goroutine %d: buffer %d eps %g feature %d: %g != %g",
							g, i, epses[j], x, v[x], want[i][j][x])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	st := shared.Stats()
	if st.DatasetMisses != uint64(len(bufs)) {
		t.Errorf("dataset features computed %d times for %d buffers", st.DatasetMisses, len(bufs))
	}
	if st.EBMisses != uint64(len(bufs)*len(epses)) {
		t.Errorf("distortions computed %d times for %d keys", st.EBMisses, len(bufs)*len(epses))
	}
	wantRequests := uint64(goroutines * iters)
	if got := st.Hits() + st.Misses(); got != 2*wantRequests {
		t.Errorf("counter total %d, want %d (two halves per request)", got, 2*wantRequests)
	}
}

// TestProposedSharedCacheConcurrentPredict drives two Proposed instances
// sharing one cache from concurrent goroutines after training — the use
// case B deployment shape — and checks predictions stay deterministic.
func TestProposedSharedCacheConcurrentPredict(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two models")
	}
	comp := compressors.MustNew("zfplike")
	trainBufs, trainCRs, testBufs, _ := trainingData(t, "TC", comp, 1e-3)
	cfg := core.Config{Predictors: predictors.Config{Workers: 1}}
	shared := NewFeatureCache(cfg)
	pa := NewProposedShared(cfg, shared)
	pb := NewProposedShared(cfg, shared)
	if err := pa.Fit(trainBufs, trainCRs, 1e-3); err != nil {
		t.Fatal(err)
	}
	if err := pb.Fit(trainBufs, trainCRs, 1e-3); err != nil {
		t.Fatal(err)
	}
	wantA := make([]float64, len(testBufs))
	for i, b := range testBufs {
		v, err := pa.Predict(b, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		wantA[i] = v
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m := pa
			if g%2 == 1 {
				m = pb
			}
			for i, b := range testBufs {
				v, err := m.Predict(b, 1e-3)
				if err != nil {
					t.Error(err)
					return
				}
				if g%2 == 0 && v != wantA[i] {
					t.Errorf("goroutine %d: prediction drifted: %g != %g", g, v, wantA[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
