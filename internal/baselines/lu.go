package baselines

import (
	"math"

	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/huffman"
	"github.com/crestlab/crest/internal/quant"
)

// Lu is the white-box baseline of Lu et al. (§III): it executes the
// SZ2-style prediction and quantization stages — "quantities that require
// nearly running the entire compressor" — and prices the stream from the
// resulting Huffman-tree statistics and misprediction (outlier) counts.
// It is analytic (no per-field training) and hard-wired to the SZ2 code
// structure, so applying it to any other compressor family produces the
// large systematic errors of Table II, and the paper excludes it from
// non-SZ comparisons in Fig. 7.
type Lu struct {
	// BlockSize matches the SZ2-style prediction blocks (default 8).
	BlockSize int
}

// NewLu returns the Lu baseline with default parameters.
func NewLu() *Lu { return &Lu{BlockSize: 8} }

// Name implements Method.
func (l *Lu) Name() string { return "lu" }

// ConcurrentPredictSafe implements ConcurrentPredictor: the estimate is
// recomputed from scratch per call with no shared state.
func (l *Lu) ConcurrentPredictSafe() bool { return true }

// Fit implements Method; the estimate is analytic.
func (l *Lu) Fit(bufs []*grid.Buffer, crs []float64, eps float64) error { return nil }

// Predict implements Method: run Lorenzo prediction + quantization over
// the buffer, then price table + payload + outliers from the Huffman code
// statistics.
func (l *Lu) Predict(buf *grid.Buffer, eps float64) (float64, error) {
	q := quant.New(eps, 0)
	rows, cols := buf.Rows, buf.Cols
	recon := make([]float64, rows*cols)
	codes := make([]uint32, 0, rows*cols)
	outliers := 0
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			var pred float64
			if i > 0 && j > 0 {
				pred = recon[(i-1)*cols+j] + recon[i*cols+j-1] - recon[(i-1)*cols+j-1]
			} else if i > 0 {
				pred = recon[(i-1)*cols+j]
			} else if j > 0 {
				pred = recon[i*cols+j-1]
			}
			x := buf.Data[i*cols+j]
			code, ok := q.Quantize(x - pred)
			if !ok {
				outliers++
				codes = append(codes, quant.OutlierCode)
				recon[i*cols+j] = x
				continue
			}
			codes = append(codes, code)
			recon[i*cols+j] = pred + q.Dequantize(code)
		}
	}
	payloadBits := huffman.EncodedBits(codes)
	// Huffman table: roughly 40 bits per tree node; the node count is the
	// internal statistic Lu's model keys on.
	freqs := make(map[uint32]bool, 256)
	for _, c := range codes {
		freqs[c] = true
	}
	nodes := 2*len(freqs) - 1
	if nodes < 1 {
		nodes = 1
	}
	totalBits := payloadBits + float64(64*outliers) + float64(40*nodes) + 512
	cr := float64(64*rows*cols) / totalBits
	if math.IsNaN(cr) || cr <= 0 {
		cr = 1
	}
	return cr, nil
}

var _ Method = (*Lu)(nil)
var _ Method = (*Tao)(nil)
var _ Method = (*Underwood)(nil)
var _ Method = (*Proposed)(nil)

// SupportsCompressor reports whether Lu's white-box model applies to the
// named compressor family (SZ2/ZFP-style only, per the paper).
func (l *Lu) SupportsCompressor(name string) bool {
	return name == "szlorenzo" || name == "zfplike"
}
