package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"github.com/crestlab/crest/internal/obs"
)

// TestCapacityWindowStatsz: with CapacityWindow set, the sampler ticks,
// the capacity_* series move, /statsz grows a capacity block, and Drain
// stops the sampler.
func TestCapacityWindowStatsz(t *testing.T) {
	reg := obs.NewRegistry()
	env := newTestServer(t, Config{
		CapacityWindow: 2 * time.Millisecond,
		Obs:            reg,
	}, false)
	body := estimateBody(t, 16, 16, 1)
	for i := 0; i < 20; i++ {
		resp, out := postJSON(t, env.ts.URL+"/v1/estimate", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("estimate %d: HTTP %d: %s", i, resp.StatusCode, out)
		}
	}

	// The sampler runs on wall-clock ticks: poll until it has taken a few.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Counters["capacity_samples_total"] < 3 {
		if time.Now().After(deadline) {
			t.Fatal("capacity sampler never ticked")
		}
		time.Sleep(2 * time.Millisecond)
	}

	r, err := http.Get(env.ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(r.Body)
	r.Body.Close()
	var payload struct {
		Capacity *struct {
			Ticks   uint64 `json:"ticks"`
			Samples uint64 `json:"samples"`
		} `json:"capacity"`
	}
	if err := json.Unmarshal(raw, &payload); err != nil {
		t.Fatalf("statsz not JSON: %v: %s", err, raw)
	}
	if payload.Capacity == nil {
		t.Fatalf("statsz missing capacity block: %s", raw)
	}
	if payload.Capacity.Ticks == 0 {
		t.Fatalf("capacity block has zero ticks: %s", raw)
	}

	// Drain stops the sampler: the tick counter must go quiet.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := env.srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	before := reg.Snapshot().Counters["capacity_samples_total"]
	time.Sleep(20 * time.Millisecond)
	if after := reg.Snapshot().Counters["capacity_samples_total"]; after != before {
		t.Fatalf("sampler still ticking after Drain: %d -> %d", before, after)
	}
}

// TestCapacityWindowDisabled: without the flag there is no capacity
// block and no capacity_* series.
func TestCapacityWindowDisabled(t *testing.T) {
	reg := obs.NewRegistry()
	env := newTestServer(t, Config{Obs: reg}, false)
	r, err := http.Get(env.ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(r.Body)
	r.Body.Close()
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatal(err)
	}
	if _, ok := fields["capacity"]; ok {
		t.Fatalf("capacity block present without CapacityWindow: %s", raw)
	}
	if _, ok := reg.Snapshot().Counters["capacity_samples_total"]; ok {
		t.Fatal("capacity_samples_total registered without the sampler")
	}
}
