package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/crestlab/crest/internal/core"
	"github.com/crestlab/crest/internal/obs"
	"github.com/crestlab/crest/internal/predictors"
	"github.com/crestlab/crest/internal/registry"
)

// regTrueCR is the ground-truth relation registry-mode tests score
// feedback against (matches trainedEstimator's training relation).
func regTrueCR(f []float64) float64 { return 1 + 8*math.Exp(0.4*f[0]-0.2*f[3]) }

// regressedEstimator trains on shuffled labels so its predictions are
// uninformative — the deliberately bad canary candidate.
func regressedEstimator(t testing.TB) *core.Estimator {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	samples := make([]core.Sample, 60)
	for i := range samples {
		f := make([]float64, 5)
		for j := range f {
			f[j] = rng.NormFloat64()
		}
		samples[i] = core.Sample{Features: f, CR: regTrueCR(f)}
	}
	rng.Shuffle(len(samples), func(i, j int) {
		samples[i].CR, samples[j].CR = samples[j].CR, samples[i].CR
	})
	est, err := core.Train(samples, core.Config{Predictors: predictors.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// newRegistryServer wires a registry (with a trained default lineage) and
// a registry-mode Server into an httptest listener.
func newRegistryServer(t testing.TB, mutReg func(*registry.Config), mutSrv func(*Config)) (*registry.Registry, *testServer) {
	t.Helper()
	rcfg := registry.Config{
		Root: t.TempDir(),
		Obs:  obs.NewRegistry(),
		Canary: registry.CanaryConfig{
			Fraction:     0.25,
			Window:       32,
			MinObs:       8,
			EvalEvery:    4,
			SustainEvals: 2,
			PersistEvery: 4,
		},
	}
	if mutReg != nil {
		mutReg(&rcfg)
	}
	reg, err := registry.Open(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	if _, err := reg.Publish("default", trainedEstimator(t)); err != nil {
		t.Fatal(err)
	}
	scfg := Config{Registry: reg, Obs: rcfg.Obs}
	if mutSrv != nil {
		mutSrv(&scfg)
	}
	srv, err := New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return reg, &testServer{srv: srv, ts: ts}
}

// postHdr posts a JSON body with optional tenant/lineage headers and
// returns the response (caller closes the body).
func postHdr(t testing.TB, url string, body []byte, headers map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func feedbackBody(t testing.TB, f []float64, actual float64) []byte {
	t.Helper()
	b, err := json.Marshal(FeedbackRequest{Features: f, ActualCR: actual})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRegistryModeServesAndStampsVersion: requests route to the default
// lineage's active model and responses carry the serving version header.
func TestRegistryModeServesAndStampsVersion(t *testing.T) {
	_, ts := newRegistryServer(t, nil, nil)
	resp := postHdr(t, ts.ts.URL+"/v1/estimate", estimateBody(t, 16, 16, 1), nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if v := resp.Header.Get(ModelVersionHeader); v != "1" {
		t.Fatalf("%s = %q, want 1", ModelVersionHeader, v)
	}
	// Unknown lineage is the client's error: 404, not 500.
	resp2 := postHdr(t, ts.ts.URL+"/v1/estimate", estimateBody(t, 16, 16, 1),
		map[string]string{LineageHeader: "nope"})
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown lineage status %d, want 404", resp2.StatusCode)
	}
	var we map[string]WireError
	json.NewDecoder(resp2.Body).Decode(&we)
	if we["error"].Kind != "unknown_lineage" {
		t.Fatalf("kind %q, want unknown_lineage", we["error"].Kind)
	}
}

// TestQuota429DistinctFrom503 pins the wire contract: quota exhaustion is
// 429 quota_exceeded with a per-tenant Retry-After — never the 503 the
// overload and drain paths use — and does not consume served/shed
// counters of the overload path.
func TestQuota429DistinctFrom503(t *testing.T) {
	_, ts := newRegistryServer(t, func(c *registry.Config) {
		c.Quota = registry.QuotaConfig{
			Tenants: map[string]registry.TenantQuota{"alice": {Rate: 0.5, Burst: 2}},
		}
	}, nil)
	hdr := map[string]string{TenantHeader: "alice"}
	for i := 0; i < 2; i++ {
		resp := postHdr(t, ts.ts.URL+"/v1/estimate", estimateBody(t, 16, 16, 1), hdr)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d within burst: status %d", i, resp.StatusCode)
		}
	}
	resp := postHdr(t, ts.ts.URL+"/v1/estimate", estimateBody(t, 16, 16, 1), hdr)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After")
	}
	var we map[string]WireError
	json.NewDecoder(resp.Body).Decode(&we)
	if we["error"].Kind != "quota_exceeded" {
		t.Fatalf("kind %q, want quota_exceeded", we["error"].Kind)
	}
	st := ts.srv.Stats()
	if st.QuotaRejected != 1 {
		t.Fatalf("QuotaRejected = %d, want 1", st.QuotaRejected)
	}
	if st.Shed != 0 || st.DrainRejected != 0 {
		t.Fatalf("quota rejection leaked into overload counters: %+v", st)
	}
}

// TestTenantIsolationUnderQuotaStorm is the acceptance scenario: a tenant
// driving 10× its quota degrades only its own traffic (429s) while the
// other tenant's latency stays within 1.5× its baseline.
func TestTenantIsolationUnderQuotaStorm(t *testing.T) {
	_, ts := newRegistryServer(t, func(c *registry.Config) {
		c.Quota = registry.QuotaConfig{
			Tenants: map[string]registry.TenantQuota{"noisy": {Rate: 5, Burst: 5}},
		}
	}, nil)
	body := estimateBody(t, 16, 16, 1)

	// Baseline p99 for the quiet tenant, unloaded.
	quiet := map[string]string{TenantHeader: "quiet"}
	baseline := measureP99(t, ts.ts.URL, body, quiet, 30)

	// Noisy tenant fires 10× its quota budget concurrently with the quiet
	// tenant's run.
	var wg sync.WaitGroup
	noisy429 := 0
	var noisyMu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		hdr := map[string]string{TenantHeader: "noisy"}
		for i := 0; i < 50; i++ {
			resp := postHdr(t, ts.ts.URL+"/v1/estimate", body, hdr)
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				noisyMu.Lock()
				noisy429++
				noisyMu.Unlock()
			} else if resp.StatusCode != http.StatusOK {
				t.Errorf("noisy tenant got %d, want 200 or 429", resp.StatusCode)
			}
		}
	}()
	stormP99 := measureP99(t, ts.ts.URL, body, quiet, 30)
	wg.Wait()

	if noisy429 == 0 {
		t.Fatal("noisy tenant at 10x quota saw no 429s")
	}
	// The quiet tenant never saw a 429 (measureP99 fails non-200) and its
	// p99 stayed within 1.5x baseline (floored to absorb timer noise on
	// sub-millisecond baselines).
	limit := time.Duration(1.5 * float64(baseline))
	if floor := 50 * time.Millisecond; limit < floor {
		limit = floor
	}
	if stormP99 > limit {
		t.Fatalf("quiet tenant p99 %v under storm, want <= %v (baseline %v)", stormP99, limit, baseline)
	}
}

func measureP99(t testing.TB, url string, body []byte, hdr map[string]string, n int) time.Duration {
	t.Helper()
	durs := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		resp := postHdr(t, url+"/v1/estimate", body, hdr)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tenant %q got %d", hdr[TenantHeader], resp.StatusCode)
		}
		durs = append(durs, time.Since(start))
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return durs[(len(durs)*99)/100]
}

// TestCanaryRollbackOverHTTP drives a deliberately-regressed candidate
// through the HTTP feedback path until auto-rollback, then proves zero
// subsequent requests are served by it.
func TestCanaryRollbackOverHTTP(t *testing.T) {
	reg, ts := newRegistryServer(t, nil, nil)
	bad, err := reg.Publish("default", regressedEstimator(t))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	decided := ""
	for i := 0; i < 300 && decided == ""; i++ {
		f := make([]float64, 5)
		for j := range f {
			f[j] = rng.NormFloat64()
		}
		resp := postHdr(t, ts.ts.URL+"/v1/feedback", feedbackBody(t, f, regTrueCR(f)), nil)
		var fr FeedbackResponse
		json.NewDecoder(resp.Body).Decode(&fr)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("feedback status %d", resp.StatusCode)
		}
		decided = fr.Decision
	}
	if decided != "rollback" {
		t.Fatalf("decision %q, want rollback", decided)
	}
	badSeq := fmt.Sprint(bad)
	for i := 0; i < 100; i++ {
		resp := postHdr(t, ts.ts.URL+"/v1/estimate", estimateBody(t, 16, 16, 1), nil)
		resp.Body.Close()
		if resp.Header.Get(ModelVersionHeader) == badSeq || resp.Header.Get(CanaryHeader) != "" {
			t.Fatalf("request %d served by rolled-back v%s", i, badSeq)
		}
	}
}

// TestModelsAdminEndpoints exercises list, get, promote and rollback over
// the wire.
func TestModelsAdminEndpoints(t *testing.T) {
	reg, ts := newRegistryServer(t, nil, nil)
	seq, err := reg.Publish("default", trainedEstimator(t))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var list map[string][]registry.LineageInfo
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list["lineages"]) != 1 || list["lineages"][0].Name != "default" {
		t.Fatalf("list = %+v", list)
	}
	if c := list["lineages"][0].Canary; c == nil || c.Candidate != seq {
		t.Fatalf("canary candidate missing from list: %+v", list["lineages"][0])
	}

	body, _ := json.Marshal(PromoteRequest{Seq: seq})
	presp := postHdr(t, ts.ts.URL+"/v1/models/default/promote", body, nil)
	var lr LifecycleResponse
	json.NewDecoder(presp.Body).Decode(&lr)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK || lr.Lineage.Active != seq {
		t.Fatalf("promote: status %d, %+v", presp.StatusCode, lr)
	}

	rresp := postHdr(t, ts.ts.URL+"/v1/models/default/rollback", nil, nil)
	json.NewDecoder(rresp.Body).Decode(&lr)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK || lr.Lineage.Active != 1 {
		t.Fatalf("rollback: status %d, %+v", rresp.StatusCode, lr)
	}

	gresp, err := http.Get(ts.ts.URL + "/v1/models/missing")
	if err != nil {
		t.Fatal(err)
	}
	defer gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing lineage status %d, want 404", gresp.StatusCode)
	}
}

// TestStatszRegistryBlock: /statsz carries the per-lineage registry
// section in registry mode.
func TestStatszRegistryBlock(t *testing.T) {
	_, ts := newRegistryServer(t, nil, nil)
	resp, err := http.Get(ts.ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload StatsPayload
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Registry) != 1 || payload.Registry[0].Name != "default" {
		t.Fatalf("statsz registry block = %+v", payload.Registry)
	}
}
