package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/obs"
	"github.com/crestlab/crest/internal/retry"
)

// newObsServer is newTestServer with an isolated metrics registry wired
// through every layer (server, engine, feature cache), so assertions on
// registry contents cannot be polluted by other tests sharing the
// process-wide default registry.
func newObsServer(t testing.TB, cfg Config) (*testServer, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg.Obs = reg
	env := newTestServer(t, cfg, false)
	env.srv.engine.SetObs(reg)
	env.srv.engine.Cache().SetObs(reg)
	return env, reg
}

// wireErrorOf decodes the {"error": {...}} body.
func wireErrorOf(t testing.TB, body []byte) WireError {
	t.Helper()
	var m map[string]WireError
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("error body %q: %v", body, err)
	}
	return m["error"]
}

// TestOversizedBodyIs413: a body over MaxBodyBytes must map to 413 with
// its own wire kind — the regression test for the pre-fix behavior that
// folded the MaxBytesReader failure into the generic 400 invalid_buffer.
func TestOversizedBodyIs413(t *testing.T) {
	env, _ := newObsServer(t, Config{MaxBodyBytes: 64})
	resp, body := postJSON(t, env.ts.URL+"/v1/estimate", estimateBody(t, 24, 24, 1))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", resp.StatusCode, body)
	}
	if we := wireErrorOf(t, body); we.Kind != "body_too_large" {
		t.Fatalf("kind %q, want body_too_large (%s)", we.Kind, we.Message)
	}
}

// TestTrailingDataRejected: a concatenated second JSON document after the
// request must be rejected, not silently ignored.
func TestTrailingDataRejected(t *testing.T) {
	env, _ := newObsServer(t, Config{})
	body := append(estimateBody(t, 16, 16, 1), []byte(` {"rows":1}`)...)
	resp, out := postJSON(t, env.ts.URL+"/v1/estimate", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, out)
	}
	we := wireErrorOf(t, out)
	if we.Kind != "invalid_buffer" || !strings.Contains(we.Message, "trailing") {
		t.Fatalf("kind %q message %q, want invalid_buffer mentioning trailing data", we.Kind, we.Message)
	}
}

// TestUnknownFieldsRejected: a misspelled field must fail loudly instead
// of silently zeroing the parameter it was meant to set.
func TestUnknownFieldsRejected(t *testing.T) {
	env, _ := newObsServer(t, Config{})
	var req map[string]any
	if err := json.Unmarshal(estimateBody(t, 16, 16, 1), &req); err != nil {
		t.Fatal(err)
	}
	req["epz"] = req["eps"] // typo: would decode to eps=0 pre-fix
	delete(req, "eps")
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, out := postJSON(t, env.ts.URL+"/v1/estimate", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, out)
	}
	we := wireErrorOf(t, out)
	if we.Kind != "invalid_buffer" || !strings.Contains(we.Message, "epz") {
		t.Fatalf("kind %q message %q, want invalid_buffer naming the unknown field", we.Kind, we.Message)
	}
}

// TestClientServerErrorSplit: malformed input counts as a client error,
// never a server error, and the wire `failed` stays the sum of both.
func TestClientServerErrorSplit(t *testing.T) {
	env, reg := newObsServer(t, Config{})
	resp, _ := postJSON(t, env.ts.URL+"/v1/estimate", []byte(`{not json`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	st := env.srv.Stats()
	if st.ClientErrors != 1 || st.ServerErrors != 0 {
		t.Fatalf("client/server errors = %d/%d, want 1/0", st.ClientErrors, st.ServerErrors)
	}
	if st.Failed != st.ClientErrors+st.ServerErrors {
		t.Fatalf("failed %d != client %d + server %d", st.Failed, st.ClientErrors, st.ServerErrors)
	}
	snap := reg.Snapshot()
	if snap.Counters["server_client_errors_total"] != 1 || snap.Counters["server_server_errors_total"] != 0 {
		t.Fatalf("registry mirror: %+v", snap.Counters)
	}
}

// TestBatchErrorSplit: per-item failures inside a batch split the same
// way, and the batch call itself still serves 200.
func TestBatchErrorSplit(t *testing.T) {
	env, _ := newObsServer(t, Config{})
	wire := BatchWireRequest{Requests: []EstimateRequest{
		{Rows: 16, Cols: 16, Data: testBuffer(16, 16, 1), Eps: 1e-3},
		{Rows: 16, Cols: 16, Data: testBuffer(16, 16, 1), Eps: -1}, // invalid eps
	}}
	body, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	resp, out := postJSON(t, env.ts.URL+"/v1/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	st := env.srv.Stats()
	if st.ClientErrors != 1 || st.ServerErrors != 0 {
		t.Fatalf("client/server errors = %d/%d, want 1/0", st.ClientErrors, st.ServerErrors)
	}
}

// TestRetryAfterRoundingOnWire pins the header end-to-end (through a
// real 503) for exact-second, sub-second (round up, never down to a
// too-early retry) and zero (default 1s) configurations.
func TestRetryAfterRoundingOnWire(t *testing.T) {
	cases := []struct {
		name string
		cfg  time.Duration
		want string
	}{
		{"exact-second", 2 * time.Second, "2"},
		{"sub-second-rounds-up", 1500 * time.Millisecond, "2"},
		{"zero-defaults-to-1s", 0, "1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env, _ := newObsServer(t, Config{RetryAfter: tc.cfg})
			env.srv.SetReady(false)
			resp, err := http.Get(env.ts.URL + "/readyz")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("status %d, want 503", resp.StatusCode)
			}
			if got := resp.Header.Get("Retry-After"); got != tc.want {
				t.Fatalf("Retry-After %q, want %q", got, tc.want)
			}
		})
	}
}

// TestRetryAfterHintClampedByPolicy is the server⇄retry interplay: a
// Retry-After hint larger than the client policy's MaxDelay must be
// clamped by Policy.Do, so a misconfigured (or adversarial) server
// cannot stall a client beyond its own backoff ceiling.
func TestRetryAfterHintClampedByPolicy(t *testing.T) {
	env, _ := newObsServer(t, Config{RetryAfter: 30 * time.Second})
	env.srv.SetReady(false)
	resp, err := http.Get(env.ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("unparseable Retry-After %q", resp.Header.Get("Retry-After"))
	}
	hint := time.Duration(secs) * time.Second

	var waits []time.Duration
	p := retry.Policy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Jitter:      -1,
		Sleep: func(_ context.Context, d time.Duration) error {
			waits = append(waits, d)
			return nil
		},
	}
	_ = p.Do(context.Background(), func(context.Context) error {
		return retry.WithRetryAfter(fmt.Errorf("unavailable"), hint)
	})
	if len(waits) != 2 {
		t.Fatalf("%d waits, want 2", len(waits))
	}
	for i, w := range waits {
		if w > p.MaxDelay {
			t.Fatalf("wait %d = %v exceeds MaxDelay %v despite %v hint", i, w, p.MaxDelay, hint)
		}
	}
}

// TestMetricsEndpoint: GET /metrics returns valid JSON carrying the
// per-endpoint latency histograms with quantiles, the occupancy gauges,
// the featcache counters and the derived hit rate.
func TestMetricsEndpoint(t *testing.T) {
	env, _ := newObsServer(t, Config{})
	body := estimateBody(t, 24, 24, 1)
	for i := 0; i < 2; i++ {
		if resp, out := postJSON(t, env.ts.URL+"/v1/estimate", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("estimate %d: status %d: %s", i, resp.StatusCode, out)
		}
	}
	// The cache keys on buffer identity, so wire requests always miss;
	// hits need a reused *grid.Buffer — drive the shared cache directly.
	buf, err := grid.FromSlice(16, 16, testBuffer(16, 16, 2))
	if err != nil {
		t.Fatal(err)
	}
	cache := env.srv.engine.Cache()
	for i := 0; i < 2; i++ {
		if _, err := cache.Features(buf, 1e-3); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(env.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var payload MetricsPayload
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(&payload); err != nil {
		t.Fatalf("metrics body: %v", err)
	}
	resp.Body.Close()

	h, ok := payload.Histograms["http_request_seconds_estimate"]
	if !ok {
		t.Fatalf("no estimate latency histogram; have %v", keysOf(payload.Histograms))
	}
	if h.Count != 2 {
		t.Fatalf("estimate latency count %d, want 2", h.Count)
	}
	if h.P50 <= 0 || h.P90 < h.P50 || h.P99 < h.P90 {
		t.Fatalf("implausible quantiles p50=%g p90=%g p99=%g", h.P50, h.P90, h.P99)
	}
	for _, g := range []string{"server_queue_depth", "server_inflight"} {
		if _, ok := payload.Gauges[g]; !ok {
			t.Fatalf("gauge %s missing; have %v", g, payload.Gauges)
		}
	}
	if payload.Counters["server_served_total"] != 2 {
		t.Fatalf("server_served_total = %d, want 2", payload.Counters["server_served_total"])
	}
	// 3 dataset misses (two wire buffers + the direct one), 1 dataset hit
	// and 1 eb hit from the repeated direct lookup.
	if payload.Counters["featcache_dataset_hits_total"] != 1 ||
		payload.Counters["featcache_dataset_misses_total"] != 3 {
		t.Fatalf("featcache counters: %+v", payload.Counters)
	}
	if want := cache.Stats().HitRate(); payload.Derived.FeatcacheHitRate != want || want <= 0 || want >= 1 {
		t.Fatalf("featcache_hit_rate = %g, want %g in (0,1)", payload.Derived.FeatcacheHitRate, want)
	}

	// Batch-stage histograms recorded through the engine's registry.
	for _, name := range []string{"batch_feature_seconds", "batch_estimate_seconds", "batch_request_seconds"} {
		if h := payload.Histograms[name]; h.Count == 0 {
			t.Fatalf("%s empty; have %v", name, keysOf(payload.Histograms))
		}
	}
}

func keysOf[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestPredictorHistogramsOnDefaultRegistry: the predictor stage timings
// land on the process-wide default registry (package-level handles), so
// any estimate traffic populates them.
func TestPredictorHistogramsOnDefaultRegistry(t *testing.T) {
	env, _ := newObsServer(t, Config{})
	if resp, out := postJSON(t, env.ts.URL+"/v1/estimate", estimateBody(t, 24, 24, 9)); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	snap := obs.Default().Snapshot()
	for _, name := range []string{
		"predictor_sd_seconds", "predictor_sc_seconds",
		"predictor_coding_gain_seconds", "predictor_cov_svd_seconds",
		"predictor_distortion_seconds",
	} {
		if h, ok := snap.Histograms[name]; !ok || h.Count == 0 {
			t.Fatalf("predictor series %s missing/empty on default registry", name)
		}
	}
}

// TestRequestIDThreading: the header is adopted, echoed, and stamped
// into engine-side batch errors; absent a header, an ID is minted.
func TestRequestIDThreading(t *testing.T) {
	env, _ := newObsServer(t, Config{})

	// A 4×4 buffer passes wire validation but cannot be tiled at K=8, so
	// the failure happens inside the engine where the rid is stamped.
	req := EstimateRequest{Rows: 4, Cols: 4, Data: make([]float64, 16), Eps: 1e-3}
	for i := range req.Data {
		req.Data[i] = float64(i)
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest("POST", env.ts.URL+"/v1/estimate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Request-ID", "rid-under-test-42")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	out := new(bytes.Buffer)
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "rid-under-test-42" {
		t.Fatalf("response rid %q, want the client's", got)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, out)
	}
	if we := wireErrorOf(t, out.Bytes()); !strings.Contains(we.Message, "rid rid-under-test-42") {
		t.Fatalf("engine error lost the request ID: %q", we.Message)
	}

	// No header: the server mints one.
	resp2, _ := postJSON(t, env.ts.URL+"/healthz", nil)
	if rid := resp2.Header.Get("X-Request-ID"); len(rid) != 16 {
		t.Fatalf("minted rid %q, want 16 hex chars", rid)
	}
}

// TestMetricsUnderConcurrency hammers estimates, stats and metrics reads
// concurrently; under -race it proves the whole instrumented path —
// histograms, gauges, mirrored counters, snapshots — is race-free.
func TestMetricsUnderConcurrency(t *testing.T) {
	env, reg := newObsServer(t, Config{})
	const goroutines = 8
	const iters = 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			body := estimateBody(t, 16, 16, int64(g%3))
			for i := 0; i < iters; i++ {
				switch i % 3 {
				case 0:
					resp, err := http.Post(env.ts.URL+"/v1/estimate", "application/json", bytes.NewReader(body))
					if err == nil {
						resp.Body.Close()
					}
				case 1:
					resp, err := http.Get(env.ts.URL + "/metrics")
					if err == nil {
						var p MetricsPayload
						if derr := json.NewDecoder(resp.Body).Decode(&p); derr != nil {
							t.Errorf("metrics decode: %v", derr)
						}
						resp.Body.Close()
					}
				case 2:
					reg.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	snap := reg.Snapshot()
	if snap.Gauges["server_inflight"] != 0 || snap.Gauges["server_queue_depth"] != 0 {
		t.Fatalf("occupancy gauges nonzero at rest: %+v", snap.Gauges)
	}
	served := snap.Counters["server_served_total"]
	if served == 0 || served != env.srv.Stats().Served {
		t.Fatalf("served mirror %d vs stats %d", served, env.srv.Stats().Served)
	}
}
