package server

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/crestlab/crest/internal/batch"
	"github.com/crestlab/crest/internal/conformal"
	"github.com/crestlab/crest/internal/core"
	"github.com/crestlab/crest/internal/featcache"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/predictors"
)

// encodeTestStream frames the buffers as a CRBS stream.
func encodeTestStream(t testing.TB, bufs []*grid.Buffer, chunkRows int) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := grid.EncodeBuffers(&b, bufs, grid.DTypeF64, chunkRows); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func postStream(t testing.TB, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, StreamContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestStreamEstimateEndpoint posts a 3-slice binary stream and checks
// every slice's estimate equals the in-memory JSON path's estimate for
// the same slice — the end-to-end face of the bit-identity contract.
func TestStreamEstimateEndpoint(t *testing.T) {
	env := newTestServer(t, Config{}, false)

	const rows, cols, steps = 24, 24, 3
	bufs := make([]*grid.Buffer, steps)
	for i := range bufs {
		buf, err := grid.FromSlice(rows, cols, testBuffer(rows, cols, int64(10+i)))
		if err != nil {
			t.Fatal(err)
		}
		bufs[i] = buf
	}
	resp, body := postStream(t, env.ts.URL+"/v1/estimate?eps=0.001", encodeTestStream(t, bufs, 7))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr StreamResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Slices) != steps {
		t.Fatalf("got %d slices, want %d", len(sr.Slices), steps)
	}
	for i, se := range sr.Slices {
		if se.Step != i {
			t.Errorf("slice %d: step %d", i, se.Step)
		}
		jresp, jbody := postJSON(t, env.ts.URL+"/v1/estimate", mustJSON(t, EstimateRequest{
			Rows: rows, Cols: cols, Data: bufs[i].Data, Eps: 0.001,
		}))
		if jresp.StatusCode != http.StatusOK {
			t.Fatalf("json path status %d: %s", jresp.StatusCode, jbody)
		}
		var want EstimateResponse
		if err := json.Unmarshal(jbody, &want); err != nil {
			t.Fatal(err)
		}
		if se.CR != want.CR || se.Lo != want.Lo || se.Hi != want.Hi {
			t.Errorf("slice %d: stream estimate %+v != json estimate %+v", i, se, want)
		}
	}
}

func TestStreamEstimateRequiresEps(t *testing.T) {
	env := newTestServer(t, Config{}, false)
	buf, err := grid.FromSlice(16, 16, testBuffer(16, 16, 1))
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postStream(t, env.ts.URL+"/v1/estimate", encodeTestStream(t, []*grid.Buffer{buf}, 4))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing eps: status %d: %s", resp.StatusCode, body)
	}
}

// TestStreamEstimateCorruptBody checks a truncated stream fails closed:
// typed 400 stream_corrupt, no partial slice list.
func TestStreamEstimateCorruptBody(t *testing.T) {
	env := newTestServer(t, Config{}, false)
	buf, err := grid.FromSlice(24, 24, testBuffer(24, 24, 2))
	if err != nil {
		t.Fatal(err)
	}
	raw := encodeTestStream(t, []*grid.Buffer{buf, buf}, 5)
	for _, tc := range []struct {
		name string
		body []byte
	}{
		{"truncated payload", raw[:len(raw)-9]},
		{"garbage header", []byte("not a stream at all")},
	} {
		resp, body := postStream(t, env.ts.URL+"/v1/estimate?eps=0.001", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d: %s", tc.name, resp.StatusCode, body)
		}
		var we map[string]WireError
		if err := json.Unmarshal(body, &we); err != nil {
			t.Fatalf("%s: non-JSON error body %s", tc.name, body)
		}
		if we["error"].Kind != "stream_corrupt" {
			t.Errorf("%s: kind %q, want stream_corrupt", tc.name, we["error"].Kind)
		}
	}
}

// onlineTestServer builds a server whose estimator has online
// recalibration enabled with a tiny window, so feedback tests can drive
// a recalibration quickly.
func onlineTestServer(t *testing.T) (*testServer, *core.Estimator) {
	t.Helper()
	est := trainedEstimator(t)
	est.EnableOnlineRecalibration(conformal.OnlineConfig{Window: 32, Band: 0.02, MinObserve: 16, Cooldown: 16})
	cache := featcache.New(est.PredictorConfig())
	srv, err := New(Config{Engine: batch.New(est, cache, 4)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &testServer{srv: srv, ts: ts}, est
}

func TestFeedbackEndpoint(t *testing.T) {
	env, est := onlineTestServer(t)
	features := func(seed int64) []float64 {
		buf, err := grid.FromSlice(24, 24, testBuffer(24, 24, seed))
		if err != nil {
			t.Fatal(err)
		}
		f, err := predictors.Compute(buf, 1e-3, est.PredictorConfig())
		if err != nil {
			t.Fatal(err)
		}
		return f.Vector()
	}

	// Grossly wrong truths drive coverage to 0 past the warm-up: the
	// tracker must recalibrate and say so on the wire.
	recalibrated := false
	var last FeedbackResponse
	for i := 0; i < 40; i++ {
		fb := FeedbackRequest{Features: features(int64(i)), ActualCR: 95}
		resp, body := postJSON(t, env.ts.URL+"/v1/feedback", mustJSON(t, fb))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("iter %d: status %d: %s", i, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &last); err != nil {
			t.Fatal(err)
		}
		if last.Recalibrated {
			recalibrated = true
		}
	}
	if !recalibrated {
		t.Fatal("40 maximally-missed observations never recalibrated")
	}
	if last.Recalibrations == 0 || last.Windowed == 0 {
		t.Fatalf("implausible final feedback %+v", last)
	}
	if math.IsNaN(last.Coverage) {
		t.Fatal("coverage NaN after observations")
	}

	// The /statsz payload now carries the conformal block.
	resp, body := postJSON(t, env.ts.URL+"/statsz", nil)
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("POST /statsz should 405, got %d", resp.StatusCode)
	}
	resp, err := http.Get(env.ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var sp StatsPayload
	if err := json.Unmarshal(body, &sp); err != nil {
		t.Fatal(err)
	}
	if sp.Conformal == nil {
		t.Fatal("/statsz missing conformal block with recalibration enabled")
	}
	if sp.Conformal.Recalibrations != last.Recalibrations {
		t.Errorf("statsz recalibrations %d != feedback %d", sp.Conformal.Recalibrations, last.Recalibrations)
	}
}

func TestFeedbackDisabledConflicts(t *testing.T) {
	env := newTestServer(t, Config{}, false)
	fb := FeedbackRequest{Features: make([]float64, 5), ActualCR: 10}
	resp, body := postJSON(t, env.ts.URL+"/v1/feedback", mustJSON(t, fb))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d: %s (want 409 when recalibration disabled)", resp.StatusCode, body)
	}
	var we map[string]WireError
	if err := json.Unmarshal(body, &we); err != nil {
		t.Fatal(err)
	}
	if we["error"].Kind != "recalibration_disabled" {
		t.Errorf("kind %q", we["error"].Kind)
	}
}

func TestFeedbackRejectsBadCR(t *testing.T) {
	env, _ := onlineTestServer(t)
	for _, cr := range []float64{0, -3, math.NaN(), math.Inf(1)} {
		fb := map[string]any{"features": make([]float64, 5), "actual_cr": cr}
		raw, err := json.Marshal(fb)
		if err != nil {
			// NaN/Inf cannot be marshalled by encoding/json; send a raw body.
			raw = []byte(`{"features":[0,0,0,0,0],"actual_cr":"bad"}`)
		}
		resp, body := postJSON(t, env.ts.URL+"/v1/feedback", raw)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("cr=%v: status %d: %s", cr, resp.StatusCode, body)
		}
	}
}
