package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/crestlab/crest/internal/batch"
	"github.com/crestlab/crest/internal/conformal"
	"github.com/crestlab/crest/internal/core"
	"github.com/crestlab/crest/internal/featcache"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/predictors"
)

// encodeTestStream frames the buffers as a CRBS stream.
func encodeTestStream(t testing.TB, bufs []*grid.Buffer, chunkRows int) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := grid.EncodeBuffers(&b, bufs, grid.DTypeF64, chunkRows); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func postStream(t testing.TB, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, StreamContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestStreamEstimateEndpoint posts a 3-slice binary stream and checks
// every slice's estimate equals the in-memory JSON path's estimate for
// the same slice — the end-to-end face of the bit-identity contract.
func TestStreamEstimateEndpoint(t *testing.T) {
	env := newTestServer(t, Config{}, false)

	const rows, cols, steps = 24, 24, 3
	bufs := make([]*grid.Buffer, steps)
	for i := range bufs {
		buf, err := grid.FromSlice(rows, cols, testBuffer(rows, cols, int64(10+i)))
		if err != nil {
			t.Fatal(err)
		}
		bufs[i] = buf
	}
	resp, body := postStream(t, env.ts.URL+"/v1/estimate?eps=0.001", encodeTestStream(t, bufs, 7))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr StreamResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Slices) != steps {
		t.Fatalf("got %d slices, want %d", len(sr.Slices), steps)
	}
	for i, se := range sr.Slices {
		if se.Step != i {
			t.Errorf("slice %d: step %d", i, se.Step)
		}
		jresp, jbody := postJSON(t, env.ts.URL+"/v1/estimate", mustJSON(t, EstimateRequest{
			Rows: rows, Cols: cols, Data: bufs[i].Data, Eps: 0.001,
		}))
		if jresp.StatusCode != http.StatusOK {
			t.Fatalf("json path status %d: %s", jresp.StatusCode, jbody)
		}
		var want EstimateResponse
		if err := json.Unmarshal(jbody, &want); err != nil {
			t.Fatal(err)
		}
		if se.CR != want.CR || se.Lo != want.Lo || se.Hi != want.Hi {
			t.Errorf("slice %d: stream estimate %+v != json estimate %+v", i, se, want)
		}
	}
}

func TestStreamEstimateRequiresEps(t *testing.T) {
	env := newTestServer(t, Config{}, false)
	buf, err := grid.FromSlice(16, 16, testBuffer(16, 16, 1))
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postStream(t, env.ts.URL+"/v1/estimate", encodeTestStream(t, []*grid.Buffer{buf}, 4))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing eps: status %d: %s", resp.StatusCode, body)
	}
}

// TestStreamEstimateCorruptBody checks a truncated stream fails closed:
// typed 400 stream_corrupt, no partial slice list.
func TestStreamEstimateCorruptBody(t *testing.T) {
	env := newTestServer(t, Config{}, false)
	buf, err := grid.FromSlice(24, 24, testBuffer(24, 24, 2))
	if err != nil {
		t.Fatal(err)
	}
	raw := encodeTestStream(t, []*grid.Buffer{buf, buf}, 5)
	for _, tc := range []struct {
		name string
		body []byte
	}{
		{"truncated payload", raw[:len(raw)-9]},
		{"garbage header", []byte("not a stream at all")},
	} {
		resp, body := postStream(t, env.ts.URL+"/v1/estimate?eps=0.001", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d: %s", tc.name, resp.StatusCode, body)
		}
		var we map[string]WireError
		if err := json.Unmarshal(body, &we); err != nil {
			t.Fatalf("%s: non-JSON error body %s", tc.name, body)
		}
		if we["error"].Kind != "stream_corrupt" {
			t.Errorf("%s: kind %q, want stream_corrupt", tc.name, we["error"].Kind)
		}
	}
}

// onlineTestServer builds a server whose estimator has online
// recalibration enabled with a tiny window, so feedback tests can drive
// a recalibration quickly.
func onlineTestServer(t *testing.T) (*testServer, *core.Estimator) {
	t.Helper()
	est := trainedEstimator(t)
	est.EnableOnlineRecalibration(conformal.OnlineConfig{Window: 32, Band: 0.02, MinObserve: 16, Cooldown: 16})
	cache := featcache.New(est.PredictorConfig())
	srv, err := New(Config{Engine: batch.New(est, cache, 4)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &testServer{srv: srv, ts: ts}, est
}

func TestFeedbackEndpoint(t *testing.T) {
	env, est := onlineTestServer(t)
	features := func(seed int64) []float64 {
		buf, err := grid.FromSlice(24, 24, testBuffer(24, 24, seed))
		if err != nil {
			t.Fatal(err)
		}
		f, err := predictors.Compute(buf, 1e-3, est.PredictorConfig())
		if err != nil {
			t.Fatal(err)
		}
		return f.Vector()
	}

	// Grossly wrong truths drive coverage to 0 past the warm-up: the
	// tracker must recalibrate and say so on the wire.
	recalibrated := false
	var last FeedbackResponse
	for i := 0; i < 40; i++ {
		fb := FeedbackRequest{Features: features(int64(i)), ActualCR: 95}
		resp, body := postJSON(t, env.ts.URL+"/v1/feedback", mustJSON(t, fb))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("iter %d: status %d: %s", i, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &last); err != nil {
			t.Fatal(err)
		}
		if last.Recalibrated {
			recalibrated = true
		}
	}
	if !recalibrated {
		t.Fatal("40 maximally-missed observations never recalibrated")
	}
	if last.Recalibrations == 0 || last.Windowed == 0 {
		t.Fatalf("implausible final feedback %+v", last)
	}
	if math.IsNaN(last.Coverage) {
		t.Fatal("coverage NaN after observations")
	}

	// The /statsz payload now carries the conformal block.
	resp, body := postJSON(t, env.ts.URL+"/statsz", nil)
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("POST /statsz should 405, got %d", resp.StatusCode)
	}
	resp, err := http.Get(env.ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var sp StatsPayload
	if err := json.Unmarshal(body, &sp); err != nil {
		t.Fatal(err)
	}
	if sp.Conformal == nil {
		t.Fatal("/statsz missing conformal block with recalibration enabled")
	}
	if sp.Conformal.Recalibrations != last.Recalibrations {
		t.Errorf("statsz recalibrations %d != feedback %d", sp.Conformal.Recalibrations, last.Recalibrations)
	}
}

func TestFeedbackDisabledConflicts(t *testing.T) {
	env := newTestServer(t, Config{}, false)
	fb := FeedbackRequest{Features: make([]float64, 5), ActualCR: 10}
	resp, body := postJSON(t, env.ts.URL+"/v1/feedback", mustJSON(t, fb))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d: %s (want 409 when recalibration disabled)", resp.StatusCode, body)
	}
	var we map[string]WireError
	if err := json.Unmarshal(body, &we); err != nil {
		t.Fatal(err)
	}
	if we["error"].Kind != "recalibration_disabled" {
		t.Errorf("kind %q", we["error"].Kind)
	}
}

func TestFeedbackRejectsBadCR(t *testing.T) {
	env, _ := onlineTestServer(t)
	for _, cr := range []float64{0, -3, math.NaN(), math.Inf(1)} {
		fb := map[string]any{"features": make([]float64, 5), "actual_cr": cr}
		raw, err := json.Marshal(fb)
		if err != nil {
			// NaN/Inf cannot be marshalled by encoding/json; send a raw body.
			raw = []byte(`{"features":[0,0,0,0,0],"actual_cr":"bad"}`)
		}
		resp, body := postJSON(t, env.ts.URL+"/v1/feedback", raw)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("cr=%v: status %d: %s", cr, resp.StatusCode, body)
		}
	}
}

// TestFeedbackDrainingRejects pins the drain taxonomy on the feedback
// path: once Drain begins, POST /v1/feedback is 503 with a Retry-After
// hint and kind "draining" — the same contract as the estimate paths,
// so a feedback client's retry loop needs no special casing.
func TestFeedbackDrainingRejects(t *testing.T) {
	env, _ := onlineTestServer(t)
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := env.srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	fb := FeedbackRequest{Features: make([]float64, 5), ActualCR: 10}
	resp, body := postJSON(t, env.ts.URL+"/v1/feedback", mustJSON(t, fb))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s (want 503 during drain)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("drained feedback rejection missing Retry-After")
	}
	var we map[string]WireError
	if err := json.Unmarshal(body, &we); err != nil {
		t.Fatal(err)
	}
	if we["error"].Kind != "draining" {
		t.Errorf("kind %q, want draining", we["error"].Kind)
	}
}

// TestFeedbackDrainRace drains while stream-ingest and feedback traffic
// is in flight from concurrent clients. Every response must be either a
// clean 200 (admitted before the drain) or a 503 with Retry-After (shed
// by it) — never a hung request, a torn response, or a drain that
// returns while work is still running. Run under -race this also proves
// the tracker and drain bookkeeping tolerate the interleaving.
func TestFeedbackDrainRace(t *testing.T) {
	env, est := onlineTestServer(t)

	buf, err := grid.FromSlice(24, 24, testBuffer(24, 24, 5))
	if err != nil {
		t.Fatal(err)
	}
	streamBody := encodeTestStream(t, []*grid.Buffer{buf}, 7)
	f, err := predictors.Compute(buf, 1e-3, est.PredictorConfig())
	if err != nil {
		t.Fatal(err)
	}
	fbBody := mustJSON(t, FeedbackRequest{Features: f.Vector(), ActualCR: 12})

	const workers = 6
	type outcome struct {
		status     int
		retryAfter bool
		body       []byte
	}
	results := make(chan outcome, workers*64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	post := func(path, ctype string, body []byte) {
		req, err := http.NewRequest(http.MethodPost, env.ts.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			return
		}
		req.Header.Set("Content-Type", ctype)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Errorf("transport error during drain race: %v", err)
			return
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		results <- outcome{resp.StatusCode, resp.Header.Get("Retry-After") != "", out}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if w%2 == 0 {
					post("/v1/estimate?eps=0.001", StreamContentType, streamBody)
				} else {
					post("/v1/feedback", "application/json", fbBody)
				}
			}
		}(w)
	}

	// Let traffic establish, then drain mid-flight.
	time.Sleep(20 * time.Millisecond)
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := env.srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain with inflight traffic: %v", err)
	}
	close(stop)
	wg.Wait()
	close(results)

	var ok200, shed int
	for r := range results {
		switch r.status {
		case http.StatusOK:
			ok200++
		case http.StatusServiceUnavailable:
			shed++
			if !r.retryAfter {
				t.Errorf("503 without Retry-After: %s", r.body)
			}
		default:
			t.Errorf("unexpected status %d during drain race: %s", r.status, r.body)
		}
	}
	if ok200 == 0 {
		t.Error("no request succeeded before the drain")
	}
	if shed == 0 {
		t.Error("no request was shed by the drain")
	}

	// The server is now fully drained: stats must balance and a fresh
	// feedback post is still a clean 503, not a hang.
	st := env.srv.Stats()
	if st.Inflight != 0 {
		t.Errorf("drained server reports %d inflight", st.Inflight)
	}
	resp, _ := postJSON(t, env.ts.URL+"/v1/feedback", fbBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain feedback status %d, want 503", resp.StatusCode)
	}
}

// TestStatszBeforeAnyFeedback: with recalibration enabled but zero
// observations the tracker's coverage is NaN, which encoding/json cannot
// represent — a raw pass-through aborts the whole /statsz payload after
// the 200 header (empty body). The conformal block must report coverage
// as null instead.
func TestStatszBeforeAnyFeedback(t *testing.T) {
	env, _ := onlineTestServer(t)
	resp, err := http.Get(env.ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(body) == 0 {
		t.Fatal("/statsz returned an empty body with recalibration enabled and no observations")
	}
	var sp StatsPayload
	if err := json.Unmarshal(body, &sp); err != nil {
		t.Fatalf("/statsz not JSON: %v: %s", err, body)
	}
	if sp.Conformal == nil {
		t.Fatal("missing conformal block")
	}
	if sp.Conformal.Coverage != nil {
		t.Errorf("coverage %v before any observation, want null", *sp.Conformal.Coverage)
	}
	if sp.Conformal.Observed != 0 {
		t.Errorf("observed %d, want 0", sp.Conformal.Observed)
	}
}
