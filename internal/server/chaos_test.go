package server

import (
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/crestlab/crest/internal/chaos"
)

// TestChaosOverloadShedsWith503RetryAfter drives the server past
// saturation — every execution slot and queue slot held by gated
// requests — and asserts the overflow is shed with 503 + Retry-After
// while the admitted requests complete once capacity frees up.
func TestChaosOverloadShedsWith503RetryAfter(t *testing.T) {
	const inflight, queue, total = 2, 2, 12
	env := newTestServer(t, Config{MaxInflight: inflight, MaxQueue: queue}, true)

	type outcome struct {
		status     int
		retryAfter string
		kind       string
	}
	results := make(chan outcome, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			resp, body := postJSON(t, env.ts.URL+"/v1/estimate", estimateBody(t, 24, 24, seed))
			var we map[string]WireError
			json.Unmarshal(body, &we)
			results <- outcome{resp.StatusCode, resp.Header.Get("Retry-After"), we["error"].Kind}
		}(int64(i))
	}

	// All capacity held and every overflow request shed before release.
	waitFor(t, func() bool {
		st := env.srv.Stats()
		return st.Inflight == inflight && st.Queued == queue &&
			st.Shed == uint64(total-inflight-queue)
	})
	close(env.gate)
	wg.Wait()
	close(results)

	var ok, shed int
	for r := range results {
		switch r.status {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			shed++
			if r.retryAfter == "" {
				t.Error("503 without Retry-After header")
			}
			if r.kind != "overloaded" {
				t.Errorf("shed kind %q, want overloaded", r.kind)
			}
		default:
			t.Errorf("unexpected status %d", r.status)
		}
	}
	if ok != inflight+queue || shed != total-inflight-queue {
		t.Fatalf("ok=%d shed=%d, want %d/%d", ok, shed, inflight+queue, total-inflight-queue)
	}
	st := env.srv.Stats()
	if st.Served != uint64(ok) || st.Shed != uint64(shed) {
		t.Errorf("counters %+v disagree with outcomes ok=%d shed=%d", st, ok, shed)
	}
	if st.Inflight != 0 || st.Queued != 0 {
		t.Errorf("occupancy not released: %+v", st)
	}
}

// TestChaosGracefulDrain checks the SIGTERM sequence: readiness is
// withdrawn first, new work is rejected with 503, inflight requests
// finish, Drain returns only then, and no goroutines leak.
func TestChaosGracefulDrain(t *testing.T) {
	before := runtime.NumGoroutine()

	env := newTestServer(t, Config{MaxInflight: 4}, true)
	const inflight = 3
	statuses := make(chan int, inflight)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			resp, _ := postJSON(t, env.ts.URL+"/v1/estimate", estimateBody(t, 24, 24, seed))
			statuses <- resp.StatusCode
		}(int64(i))
	}
	waitFor(t, func() bool { return env.srv.Stats().Inflight == inflight })

	drainDone := make(chan error, 1)
	go func() { drainDone <- env.srv.Drain(context.Background()) }()

	// Readiness flips before inflight work finishes.
	waitFor(t, func() bool { return !env.srv.Ready() })
	r, err := http.Get(env.ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain: %d, want 503", r.StatusCode)
	}
	// New work is rejected while the old requests still run.
	resp, body := postJSON(t, env.ts.URL+"/v1/estimate", estimateBody(t, 24, 24, 99))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("estimate during drain: %d, want 503: %s", resp.StatusCode, body)
	}
	var we map[string]WireError
	json.Unmarshal(body, &we)
	if we["error"].Kind != "draining" {
		t.Errorf("drain rejection kind %q", we["error"].Kind)
	}
	select {
	case err := <-drainDone:
		t.Fatalf("Drain returned with %d requests inflight: %v", inflight, err)
	default:
	}

	// Release the gated work: every inflight request must complete 200
	// and only then may Drain return.
	close(env.gate)
	if err := <-drainDone; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	close(statuses)
	for code := range statuses {
		if code != http.StatusOK {
			t.Errorf("inflight request during drain got %d, want 200", code)
		}
	}
	st := env.srv.Stats()
	if st.Inflight != 0 || st.Queued != 0 || !st.Draining {
		t.Errorf("post-drain state %+v", st)
	}

	// No goroutine leaks once the listener and idle connections close.
	env.ts.Close()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("goroutines leaked: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

// TestChaosPanickingMiddlewareBecomes500 injects panics and failures via
// the chaos middleware seam and asserts each becomes a well-formed
// response — and that the process keeps serving afterwards.
func TestChaosPanickingMiddlewareBecomes500(t *testing.T) {
	inj := chaos.NewInjector(chaos.Plan{Seed: 0, PanicEvery: 2})
	env := newTestServer(t, Config{Middleware: inj.Middleware}, false)

	var panicked, served int
	for i := 0; i < 8; i++ {
		resp, body := postJSON(t, env.ts.URL+"/v1/estimate", estimateBody(t, 24, 24, int64(i)))
		switch resp.StatusCode {
		case http.StatusInternalServerError:
			panicked++
			var we map[string]WireError
			if err := json.Unmarshal(body, &we); err != nil {
				t.Fatalf("panic response not JSON: %s", body)
			}
			if we["error"].Kind != "panic" {
				t.Errorf("kind %q, want panic", we["error"].Kind)
			}
		case http.StatusOK:
			served++
		default:
			t.Errorf("status %d: %s", resp.StatusCode, body)
		}
	}
	if panicked != 4 || served != 4 {
		t.Fatalf("panicked=%d served=%d, want 4/4", panicked, served)
	}
	if st := env.srv.Stats(); st.RecoveredPanics != 4 {
		t.Errorf("RecoveredPanics=%d, want 4", st.RecoveredPanics)
	}
	// The server is still healthy after every recovered panic. The
	// injector fires on every second call, so burn one sequence number
	// first to land healthz on a clean one.
	if r, err := http.Get(env.ts.URL + "/healthz"); err == nil {
		r.Body.Close()
	}
	r, err := http.Get(env.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("healthz after panics: %d", r.StatusCode)
	}
}

// TestChaosFailingMiddlewareDoesNotStickCounters injects handler errors
// and checks admission slots are still released (the middleware runs
// outside withAdmission, so occupancy must stay zero).
func TestChaosFailingMiddlewareDoesNotStickCounters(t *testing.T) {
	inj := chaos.NewInjector(chaos.Plan{Seed: 1, ErrorEvery: 2})
	env := newTestServer(t, Config{Middleware: inj.Middleware}, false)
	for i := 0; i < 6; i++ {
		postJSON(t, env.ts.URL+"/v1/estimate", estimateBody(t, 24, 24, int64(i)))
	}
	st := env.srv.Stats()
	if st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("occupancy stuck: %+v", st)
	}
	if c := inj.Counts(); c.Errors != 3 {
		t.Errorf("injected errors %d, want 3", c.Errors)
	}
	if st.Served != 3 {
		t.Errorf("served %d, want 3", st.Served)
	}
}
