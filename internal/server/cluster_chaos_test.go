package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"testing"
	"time"

	"github.com/crestlab/crest/internal/batch"
	"github.com/crestlab/crest/internal/chaos"
	"github.com/crestlab/crest/internal/cluster"
	"github.com/crestlab/crest/internal/featcache"
	"github.com/crestlab/crest/internal/obs"
	"github.com/crestlab/crest/internal/retry"
)

// The multi-node chaos suite: a 3-node in-process fleet with every
// node's outbound traffic routed through one chaos.Network, proving the
// acceptance criteria of the replication layer — a single-node crash
// loses zero accepted requests, a flapping peer trips its breaker within
// the threshold and recovers through half-open probes without poisoning
// healthy peers, and hedging bounds p99 with one replica an order of
// magnitude slow.

// chaosNode is one in-process fleet member.
type chaosNode struct {
	addr string
	srv  *Server
	cl   *cluster.Cluster
	hs   *http.Server
	ln   net.Listener
}

// stop kills the node abruptly: listener and server down, cluster client
// stopped. Safe to call twice.
func (n *chaosNode) stop() {
	n.hs.Close()
	n.ln.Close()
	n.cl.Close()
}

type chaosFleet struct {
	nodes []*chaosNode
	net   *chaos.Network
}

// startChaosFleet brings up n nodes on loopback listeners sharing one
// trained model and one chaos network. mod tweaks each node's cluster and
// server configs before construction.
func startChaosFleet(t *testing.T, n int, mod func(i int, ccfg *cluster.Config, scfg *Config)) *chaosFleet {
	t.Helper()
	est := trainedEstimator(t)

	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = "http://" + ln.Addr().String()
	}

	fleet := &chaosFleet{net: chaos.NewNetwork()}
	for i := 0; i < n; i++ {
		ccfg := cluster.Config{
			Self:       addrs[i],
			Peers:      addrs,
			Replicas:   2,
			HedgeAfter: -1, // tests opt in
			// Short forward budget so blackholed routes fail over in test
			// time rather than the production default.
			ForwardTimeout: 500 * time.Millisecond,
			Health: cluster.HealthConfig{
				// No probes unless a test asks: probe-driven ejection would
				// mask the failure mode under study.
				Interval: time.Hour,
				Seed:     int64(i + 1),
			},
			Retry: retry.Policy{
				MaxAttempts: 3,
				BaseDelay:   5 * time.Millisecond,
				MaxDelay:    25 * time.Millisecond,
				Seed:        int64(i + 1),
			},
			Transport: fleet.net.Transport(addrs[i], &http.Transport{}),
			Obs:       obs.NewRegistry(),
		}
		scfg := Config{Obs: obs.NewRegistry()}
		if mod != nil {
			mod(i, &ccfg, &scfg)
		}
		cl, err := cluster.New(ccfg)
		if err != nil {
			t.Fatal(err)
		}
		cache := featcache.NewWithCompute(est.PredictorConfig(), nil, nil)
		scfg.Engine = batch.New(est, cache, 4)
		scfg.Cluster = cl
		srv, err := New(scfg)
		if err != nil {
			t.Fatal(err)
		}
		cl.Start()
		node := &chaosNode{
			addr: addrs[i],
			srv:  srv,
			cl:   cl,
			hs:   &http.Server{Handler: srv.Handler()},
			ln:   lns[i],
		}
		go node.hs.Serve(lns[i])
		fleet.nodes = append(fleet.nodes, node)
		t.Cleanup(node.stop)
	}
	return fleet
}

// namedEstimateBody builds an estimate payload routed by field identity.
func namedEstimateBody(t testing.TB, field string) []byte {
	t.Helper()
	body, err := json.Marshal(EstimateRequest{
		Dataset: "chaos", Field: field,
		Rows: 24, Cols: 24, Data: testBuffer(24, 24, 7), Eps: 1e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// fieldsOwnedBy scans field names until count keys route (from viewer's
// perspective) to wantPrimary as first remote owner.
func fieldsOwnedBy(t *testing.T, viewer *cluster.Cluster, wantPrimary string, count int) []string {
	t.Helper()
	var fields []string
	for i := 0; len(fields) < count && i < 100000; i++ {
		field := fmt.Sprintf("f%d", i)
		key := "chaos/" + field + "/0"
		if viewer.OwnsLocally(key) {
			continue
		}
		owners := viewer.RemoteOwners(key)
		if len(owners) > 0 && owners[0] == wantPrimary {
			fields = append(fields, field)
		}
	}
	if len(fields) < count {
		t.Fatalf("found only %d/%d fields with primary owner %s", len(fields), count, wantPrimary)
	}
	return fields
}

// postEstimateTo posts one estimate and returns status, the decoded
// response, and the served-by header.
func postEstimateTo(t *testing.T, url string, body []byte) (int, EstimateResponse, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/estimate", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, EstimateResponse{}, ""
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var er EstimateResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(out, &er); err != nil {
			t.Fatalf("bad estimate body: %v: %s", err, out)
		}
	}
	return resp.StatusCode, er, resp.Header.Get(cluster.ServedByHeader)
}

// TestClusterChaosSingleNodeCrashLosesNothing sends a stream of estimates
// at node 0 and kills node 1 partway through: every request must still be
// answered 200 — rerouted to the surviving replica or served degraded —
// and the fleet must have actually exercised remote serving before the
// crash.
func TestClusterChaosSingleNodeCrashLosesNothing(t *testing.T) {
	fleet := startChaosFleet(t, 3, func(i int, ccfg *cluster.Config, _ *Config) {
		// Probing on: ejection of the dead node is part of the story.
		ccfg.Health.Interval = 20 * time.Millisecond
		ccfg.Health.Timeout = 250 * time.Millisecond
		ccfg.Health.EjectAfter = 2
		ccfg.Breaker = cluster.BreakerConfig{FailureThreshold: 2, OpenFor: 100 * time.Millisecond}
	})
	entry := fleet.nodes[0]
	victim := fleet.nodes[1]

	client := retry.Policy{MaxAttempts: 5, BaseDelay: 20 * time.Millisecond, Seed: 1}
	const total = 60
	remoteServed := 0
	degraded := 0
	for i := 0; i < total; i++ {
		if i == total/2 {
			victim.stop()
		}
		body := namedEstimateBody(t, fmt.Sprintf("f%d", i))
		err := client.Do(context.Background(), func(context.Context) error {
			status, er, servedBy := postEstimateTo(t, entry.addr, body)
			if status != http.StatusOK {
				return fmt.Errorf("status %d", status)
			}
			if servedBy != "" && servedBy != entry.addr {
				remoteServed++
			}
			if er.Degraded {
				degraded++
			}
			if er.CR <= 0 {
				return retry.Permanent(fmt.Errorf("nonsense estimate %+v", er))
			}
			return nil
		})
		if err != nil {
			t.Fatalf("request %d lost during crash: %v", i, err)
		}
	}
	if remoteServed == 0 {
		t.Fatal("no request was served remotely — routing never exercised the fleet")
	}
	t.Logf("crash run: %d/%d remote-served, %d degraded", remoteServed, total, degraded)

	// The dead peer must end up ejected on the entry node's view.
	deadline := time.Now().Add(5 * time.Second)
	for {
		healthy := true
		for _, ps := range entry.cl.Stats().Peers {
			if ps.Addr == victim.addr {
				healthy = ps.Healthy
			}
		}
		if !healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("crashed peer never ejected by health probing")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterChaosBreakerIsolatesFlappingPeer storms 5xx on one peer,
// asserts its breaker trips within the configured threshold while healthy
// peers' breakers stay closed and every client request still succeeds,
// then heals the route and watches the breaker recover through half-open.
func TestClusterChaosBreakerIsolatesFlappingPeer(t *testing.T) {
	const threshold = 3
	fleet := startChaosFleet(t, 3, func(i int, ccfg *cluster.Config, _ *Config) {
		ccfg.Breaker = cluster.BreakerConfig{
			FailureThreshold: threshold,
			OpenFor:          100 * time.Millisecond,
		}
	})
	entry := fleet.nodes[0]
	flappy := fleet.nodes[1]

	fields := fieldsOwnedBy(t, entry.cl, flappy.addr, threshold+6)
	fleet.net.Storm(entry.addr, flappy.addr, http.StatusBadGateway)

	// Each forward to the flapping peer fails and rotates to the backup
	// owner; after `threshold` failures the breaker must be open.
	for i := 0; i < threshold; i++ {
		status, _, _ := postEstimateTo(t, entry.addr, namedEstimateBody(t, fields[i]))
		if status != http.StatusOK {
			t.Fatalf("request %d failed (%d) — storm leaked to the client", i, status)
		}
	}
	breakerState := func(peer string) string {
		for _, ps := range entry.cl.Stats().Peers {
			if ps.Addr == peer {
				return ps.Breaker
			}
		}
		return "?"
	}
	if got := breakerState(flappy.addr); got != "open" {
		t.Fatalf("flapping peer breaker = %q after %d failures, want open", got, threshold)
	}
	if got := breakerState(fleet.nodes[2].addr); got != "closed" {
		t.Fatalf("healthy peer breaker = %q — flapping peer poisoned it", got)
	}

	// While open, traffic to the flapping peer's keys must not touch it.
	before := fleet.net.Counts().Stormed
	for i := threshold; i < threshold+3; i++ {
		status, _, servedBy := postEstimateTo(t, entry.addr, namedEstimateBody(t, fields[i]))
		if status != http.StatusOK {
			t.Fatalf("request during open breaker failed: %d", status)
		}
		if servedBy == flappy.addr {
			t.Fatal("open breaker let a request through to the flapping peer")
		}
	}
	if after := fleet.net.Counts().Stormed; after != before {
		t.Fatalf("open breaker still sent %d request(s) into the storm", after-before)
	}

	// Heal, wait out OpenFor, and drive recovery: the next forward is the
	// half-open probe; its success closes the breaker.
	fleet.net.Heal(entry.addr, flappy.addr)
	time.Sleep(150 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for breakerState(flappy.addr) != "closed" {
		if time.Now().After(deadline) {
			t.Fatalf("breaker stuck %q after heal", breakerState(flappy.addr))
		}
		status, _, _ := postEstimateTo(t, entry.addr, namedEstimateBody(t, fields[threshold+3]))
		if status != http.StatusOK {
			t.Fatalf("recovery request failed: %d", status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// And the peer serves again.
	status, _, servedBy := postEstimateTo(t, entry.addr, namedEstimateBody(t, fields[threshold+4]))
	if status != http.StatusOK || servedBy != flappy.addr {
		t.Fatalf("recovered peer not serving: status %d servedBy %s", status, servedBy)
	}
}

// TestClusterChaosHedgingBoundsTailLatency measures a healthy-fleet p99,
// then delays one replica 10× the baseline handler latency and asserts
// the hedged p99 stays under 2× the healthy p99.
func TestClusterChaosHedgingBoundsTailLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("latency-sensitive chaos test")
	}
	const handlerDelay = 40 * time.Millisecond
	fleet := startChaosFleet(t, 3, func(i int, ccfg *cluster.Config, scfg *Config) {
		ccfg.HedgeAfter = 20 * time.Millisecond
		scfg.Middleware = func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/v1/estimate" {
					time.Sleep(handlerDelay)
				}
				next.ServeHTTP(w, r)
			})
		}
	})
	entry, slow := fleet.nodes[0], fleet.nodes[2]

	run := func(tag string) (p99 time.Duration) {
		const total = 40
		lat := make([]time.Duration, 0, total)
		for i := 0; i < total; i++ {
			body := namedEstimateBody(t, fmt.Sprintf("f%d", i))
			start := time.Now()
			status, _, _ := postEstimateTo(t, entry.addr, body)
			if status != http.StatusOK {
				t.Fatalf("%s request %d: status %d", tag, i, status)
			}
			lat = append(lat, time.Since(start))
		}
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		p99 = lat[len(lat)*99/100]
		t.Logf("%s: p50 %v p99 %v", tag, lat[len(lat)/2], p99)
		return p99
	}

	healthyP99 := run("healthy")
	// One replica goes 10× slow for everyone who forwards to it.
	fleet.net.SetLatency("", slow.addr, 10*handlerDelay)
	hedgedP99 := run("one-slow-hedged")

	// Floor the baseline at the injected handler latency so scheduler
	// noise on a loaded CI machine cannot manufacture a failure.
	base := healthyP99
	if base < handlerDelay {
		base = handlerDelay
	}
	if hedgedP99 > 2*base {
		t.Fatalf("hedged p99 %v exceeds 2× healthy baseline %v", hedgedP99, base)
	}
	st := entry.cl.Stats()
	if st.Hedges == 0 {
		t.Fatal("no hedge was ever sent — the tail bound was not hedging's doing")
	}
	t.Logf("hedges %d wins %d", st.Hedges, st.HedgeWins)
}

// TestClusterStatszExposesClusterBlock checks the /statsz cluster section
// appears on a clustered node with per-peer breaker and health state.
func TestClusterStatszExposesClusterBlock(t *testing.T) {
	fleet := startChaosFleet(t, 3, nil)
	entry := fleet.nodes[0]

	// One request so the counters move.
	fields := fieldsOwnedBy(t, entry.cl, fleet.nodes[1].addr, 1)
	if status, _, _ := postEstimateTo(t, entry.addr, namedEstimateBody(t, fields[0])); status != http.StatusOK {
		t.Fatalf("estimate failed: %d", status)
	}

	resp, err := http.Get(entry.addr + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		Cluster *ClusterBlock `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.Cluster == nil {
		t.Fatal("statsz has no cluster block on a clustered node")
	}
	if payload.Cluster.Self != entry.addr || len(payload.Cluster.Peers) != 3 {
		t.Fatalf("cluster block malformed: %+v", payload.Cluster)
	}
	if payload.Cluster.Forwarded == 0 {
		t.Fatal("forwarded counter did not move")
	}
	for _, ps := range payload.Cluster.Peers {
		if !ps.Self && ps.Breaker == "" {
			t.Fatalf("peer %s missing breaker state", ps.Addr)
		}
	}
}

// TestClusterBatchRoutesAndDegrades routes a batch across the fleet, then
// partitions one owner and asserts its share of a second batch comes back
// degraded rather than failed.
func TestClusterBatchRoutesAndDegrades(t *testing.T) {
	fleet := startChaosFleet(t, 3, func(i int, ccfg *cluster.Config, _ *Config) {
		ccfg.Breaker = cluster.BreakerConfig{FailureThreshold: 2, OpenFor: time.Hour}
	})
	entry := fleet.nodes[0]

	makeBatch := func(n int) []byte {
		wire := BatchWireRequest{Requests: make([]EstimateRequest, n)}
		for i := range wire.Requests {
			wire.Requests[i] = EstimateRequest{
				Dataset: "chaos", Field: fmt.Sprintf("f%d", i),
				Rows: 24, Cols: 24, Data: testBuffer(24, 24, 7), Eps: 1e-3,
			}
		}
		body, err := json.Marshal(wire)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	postBatch := func(body []byte) BatchWireResponse {
		t.Helper()
		resp, err := http.Post(entry.addr+"/v1/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			out, _ := io.ReadAll(resp.Body)
			t.Fatalf("batch status %d: %s", resp.StatusCode, out)
		}
		var out BatchWireResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	const n = 24
	body := makeBatch(n)
	out := postBatch(body)
	if len(out.Results) != n {
		t.Fatalf("got %d results, want %d", len(out.Results), n)
	}
	for i, item := range out.Results {
		if item.Error != nil {
			t.Fatalf("healthy batch item %d errored: %+v", i, item.Error)
		}
		if item.Result.Degraded {
			t.Fatalf("healthy batch item %d marked degraded", i)
		}
	}

	// Drop both remote owners: every forwarded group must fall back to
	// degraded local serving, with zero failed items.
	fleet.net.Partition(entry.addr, fleet.nodes[1].addr)
	fleet.net.Partition(entry.addr, fleet.nodes[2].addr)
	out = postBatch(body)
	degraded := 0
	for i, item := range out.Results {
		if item.Error != nil {
			t.Fatalf("partitioned batch item %d errored: %+v", i, item.Error)
		}
		if item.Result.Degraded {
			degraded++
		}
		if item.Result.CR <= 0 {
			t.Fatalf("partitioned batch item %d has nonsense CR", i)
		}
	}
	if degraded == 0 {
		t.Fatal("no item was served degraded despite a full partition")
	}
	t.Logf("partitioned batch: %d/%d degraded", degraded, n)
}
