package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"github.com/crestlab/crest/internal/conformal"
	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/obs"
	"github.com/crestlab/crest/internal/predictors"
)

// stream.go is the out-of-core ingest boundary: POST /v1/estimate with
// Content-Type application/x-crest-stream accepts a CRBS block stream
// (see grid.ChunkReader) instead of a JSON body, featurizes each slice
// with O(slice) working memory as chunks arrive, and returns one
// conformal estimate per slice. The error bound travels in the ?eps=
// query parameter since the binary body has no field for it.
//
// POST /v1/feedback closes the loop for online conformal recalibration:
// a client that later learns the true compression ratio of an estimated
// buffer posts it back, and the estimator's rolling-coverage tracker
// (conformal.OnlineModel) recalibrates the interval radius when empirical
// coverage drifts out of its band.

// StreamContentType selects the binary chunked-ingest path on
// POST /v1/estimate.
const StreamContentType = "application/x-crest-stream"

// streamMetrics are the streaming/recalibration series, resolved lazily
// so non-streaming deployments pay nothing.
type streamMetrics struct {
	slices        *obs.Counter
	streamErrs    *obs.Counter
	observations  *obs.Counter
	recals        *obs.Counter
	coverageBp    *obs.Gauge // rolling coverage in basis points (1e-4)
	radiusMicro   *obs.Gauge // interval radius in micro log-CR units
	driftEvents   *obs.Counter
	streamLatency *obs.Histogram
}

func newStreamMetrics(r *obs.Registry) streamMetrics {
	return streamMetrics{
		slices:        r.Counter("stream_slices_total"),
		streamErrs:    r.Counter("stream_errors_total"),
		observations:  r.Counter("conformal_observations_total"),
		recals:        r.Counter("conformal_recalibrations_total"),
		coverageBp:    r.Gauge("conformal_coverage_bp"),
		radiusMicro:   r.Gauge("conformal_radius_micro"),
		driftEvents:   r.Counter("conformal_drift_events_total"),
		streamLatency: r.Histogram("http_request_seconds_stream", nil),
	}
}

// SliceEstimate is one slice's estimate in a streaming response.
type SliceEstimate struct {
	Step int     `json:"step"`
	CR   float64 `json:"cr"`
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
}

// StreamResponse carries per-slice estimates in arrival order.
type StreamResponse struct {
	Slices []SliceEstimate `json:"slices"`
}

// streamBodyError types a streaming-body failure: the MaxBytesReader cap
// maps to ErrBodyTooLarge (a too-long stream hits the cap mid-chunk, so
// the decoder reports a corrupt stream wrapping the cap error); anything
// already typed under the taxonomy passes through untouched.
func streamBodyError(err error) error {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return fmt.Errorf("%w: stream exceeds %d bytes", crerr.ErrBodyTooLarge, mbe.Limit)
	}
	return err
}

// parseEps reads the ?eps= query parameter: a single error bound applied
// to every slice of the stream.
func parseEps(r *http.Request) (float64, error) {
	raw := r.URL.Query().Get("eps")
	if raw == "" {
		return 0, fmt.Errorf("%w: streaming ingest requires ?eps=", crerr.ErrInvalidBuffer)
	}
	eps, err := strconv.ParseFloat(raw, 64)
	if err != nil || eps <= 0 || math.IsInf(eps, 0) {
		return 0, fmt.Errorf("%w: eps %q", crerr.ErrInvalidBuffer, raw)
	}
	return eps, nil
}

// isStreamRequest reports whether the request selected the binary path.
func isStreamRequest(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == StreamContentType
}

// handleEstimateStream ingests a CRBS stream and estimates each slice as
// it completes. The body is capped at MaxBodyBytes like the JSON path;
// within the cap, working memory is O(one slice), not O(stream): each
// slice's rows scatter straight into the pooled featurizer scratch and
// the estimate is emitted before the next slice is read.
func (s *Server) handleEstimateStream(w http.ResponseWriter, r *http.Request) {
	s.withAdmission(w, r, func(ctx context.Context) {
		eps, err := parseEps(r)
		if err != nil {
			s.failRequest(w, err)
			return
		}
		est, err := s.estimatorFor(w, r)
		if err != nil {
			s.failRequest(w, err)
			return
		}
		body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		cr, err := grid.NewChunkReader(body, s.cfg.StreamLimits)
		if err != nil {
			s.sm.streamErrs.Inc()
			s.failRequest(w, streamBodyError(err))
			return
		}
		var out StreamResponse
		err = predictors.ForEachSlice(cr, []float64{eps}, est.PredictorConfig(), func(sf predictors.SliceFeatures) error {
			if cerr := ctx.Err(); cerr != nil {
				return crerr.Canceled(cerr)
			}
			e, eerr := est.Estimate(sf.FeaturesAt(0).Vector())
			if eerr != nil {
				return fmt.Errorf("slice %d: %w", sf.Step, eerr)
			}
			s.sm.slices.Inc()
			out.Slices = append(out.Slices, SliceEstimate{Step: sf.Step, CR: e.CR, Lo: e.Lo, Hi: e.Hi})
			return nil
		})
		if err != nil {
			s.sm.streamErrs.Inc()
			s.failRequest(w, streamBodyError(err))
			return
		}
		if len(out.Slices) == 0 {
			s.failRequest(w, fmt.Errorf("%w: stream carried no slices", crerr.ErrInvalidBuffer))
			return
		}
		s.served.Add(1)
		s.m.served.Inc()
		s.writeJSON(w, http.StatusOK, out)
	})
}

// FeedbackRequest posts the ground-truth compression ratio for a feature
// vector a client previously estimated.
type FeedbackRequest struct {
	Features []float64 `json:"features"`
	ActualCR float64   `json:"actual_cr"`
}

// FeedbackResponse reports the tracker state after absorbing the
// observation. Decision is present in registry mode when this very
// observation concluded a canary rollout ("promote" or "rollback").
type FeedbackResponse struct {
	Coverage       float64 `json:"coverage"`
	Target         float64 `json:"target"`
	Radius         float64 `json:"radius"`
	Recalibrated   bool    `json:"recalibrated"`
	Recalibrations int     `json:"recalibrations"`
	Windowed       int     `json:"windowed"`
	Decision       string  `json:"decision,omitempty"`
}

// handleFeedback feeds one ground-truth observation into the online
// conformal tracker. 409 when the deployment has recalibration disabled.
func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	s.withAdmission(w, r, func(ctx context.Context) {
		var req FeedbackRequest
		if err := s.decodeBody(w, r, &req); err != nil {
			s.failRequest(w, err)
			return
		}
		if s.cfg.Registry != nil {
			s.registryFeedback(w, r, &req)
			return
		}
		st, recal, err := s.engine.Estimator().ObserveActual(req.Features, req.ActualCR)
		if err != nil {
			if _, ok := s.engine.Estimator().OnlineStats(); !ok {
				s.clientErrors.Add(1)
				s.m.clientErrors.Inc()
				s.writeError(w, http.StatusConflict, "recalibration_disabled", err)
				return
			}
			s.failRequest(w, err)
			return
		}
		s.sm.observations.Inc()
		if recal {
			s.sm.recals.Inc()
			s.sm.driftEvents.Inc()
			s.cfg.Logger.Info("conformal recalibration",
				"coverage", st.Coverage, "target", st.Target, "radius", st.Radius,
				"recalibrations", st.Recalibrations)
		}
		if !math.IsNaN(st.Coverage) {
			s.sm.coverageBp.Set(int64(st.Coverage * 1e4))
		}
		s.sm.radiusMicro.Set(int64(st.Radius * 1e6))
		s.served.Add(1)
		s.m.served.Inc()
		s.writeJSON(w, http.StatusOK, FeedbackResponse{
			Coverage:       st.Coverage,
			Target:         st.Target,
			Radius:         st.Radius,
			Recalibrated:   recal,
			Recalibrations: st.Recalibrations,
			Windowed:       st.Windowed,
		})
	})
}

// OnlineSnapshot is the /statsz conformal block when online
// recalibration is enabled. Coverage is null until the first
// observation: the tracker reports NaN then, which encoding/json cannot
// represent — serializing it raw would abort the whole /statsz payload
// mid-response.
type OnlineSnapshot struct {
	Coverage       *float64 `json:"coverage"`
	Target         float64  `json:"target"`
	Band           float64  `json:"band"`
	Radius         float64  `json:"radius"`
	Observed       int      `json:"observed"`
	Windowed       int      `json:"windowed"`
	Recalibrations int      `json:"recalibrations"`
	InBand         bool     `json:"in_band"`
}

func onlineSnapshot(st conformal.OnlineStats) *OnlineSnapshot {
	snap := &OnlineSnapshot{
		Target:         st.Target,
		Band:           st.Band,
		Radius:         st.Radius,
		Observed:       st.Observed,
		Windowed:       st.Windowed,
		Recalibrations: st.Recalibrations,
		InBand:         st.InBand(),
	}
	if !math.IsNaN(st.Coverage) {
		cov := st.Coverage
		snap.Coverage = &cov
	}
	return snap
}
