// Package server is the network boundary of the estimation pipeline: an
// HTTP JSON API over the concurrent batch engine, built so that a trained
// CREST model can be consulted per-buffer at I/O time by remote writers —
// and so that the boundary degrades instead of collapsing when traffic
// exceeds capacity.
//
// Robustness model, layered on the PR-2 in-process guarantees:
//
//   - Admission control: a bounded inflight semaphore caps concurrent
//     estimation work; a bounded queue absorbs short bursts. A request
//     that finds both full is shed immediately with 503 and a
//     Retry-After hint — the server stays at its saturation throughput
//     instead of accumulating unbounded work and dying.
//   - Per-request deadlines: every admitted request runs under a context
//     deadline mapped onto the engine's cancellation plumbing; an
//     expired deadline yields 504 and the worker drains.
//   - Panic isolation: a panicking handler (or injected chaos fault)
//     becomes a 500 with a typed error body, never a process crash.
//   - Graceful drain: Drain withdraws readiness first (load balancers
//     stop routing), rejects new work with 503, lets inflight requests
//     finish, and only then returns — the SIGTERM sequence of
//     `crest serve`.
//
// Endpoints:
//
//	POST /v1/estimate  one buffer + bound -> one conformal estimate
//	POST /v1/batch     many buffers x bounds -> per-request results
//	GET  /healthz      process liveness (always 200 while serving)
//	GET  /readyz       admission readiness (503 while draining)
//	GET  /statsz       server + engine + feature-cache counters
//	GET  /metrics      observability registry snapshot (JSON): counters,
//	                   gauges, per-endpoint latency histograms with
//	                   p50/p90/p99, per-predictor timing, cache hit rate
//	GET  /debug/pprof  Go profiling endpoints (Config.EnablePprof only)
//
// Tracing: every request gets an ID — adopted from the X-Request-ID
// header when the client sent one, minted otherwise — echoed on the
// response, attached to the request context (so batch-engine errors
// carry it), and logged on slow requests.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/crestlab/crest/internal/batch"
	"github.com/crestlab/crest/internal/capacity"
	"github.com/crestlab/crest/internal/cluster"
	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/obs"
	"github.com/crestlab/crest/internal/registry"
)

// Config tunes the serving boundary. Engine is required; everything else
// has serviceable defaults.
type Config struct {
	// Engine is the batch-estimation engine requests run on.
	Engine *batch.Engine

	// MaxInflight caps concurrently executing requests (default: the
	// engine's worker bound). MaxQueue bounds requests waiting for a
	// slot (default 4×MaxInflight); beyond it, requests are shed.
	MaxInflight int
	MaxQueue    int

	// RequestTimeout bounds each admitted request (default 30s; negative
	// disables).
	RequestTimeout time.Duration

	// RetryAfter is the backoff hint advertised on 503 responses
	// (default 1s).
	RetryAfter time.Duration

	// MaxBatch caps the request count of one /v1/batch call
	// (default 1024). MaxBodyBytes caps a request body (default 64 MiB).
	MaxBatch     int
	MaxBodyBytes int64

	// StreamLimits bounds the shape a chunked-ingest stream may declare
	// (zero-value fields select grid.DefaultStreamLimits). The byte cap
	// is MaxBodyBytes, shared with the JSON path.
	StreamLimits grid.StreamLimits

	// Middleware, when set, wraps the route handlers inside the panic
	// recovery layer — the seam the chaos harness injects slow, failing
	// and panicking handlers through.
	Middleware func(http.Handler) http.Handler

	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)

	// Obs is the metrics registry the server records into and exports at
	// GET /metrics (default: the process-wide obs.Default()). Tests pass
	// their own registry for isolation.
	Obs *obs.Registry

	// SlowRequest is the duration beyond which a completed request is
	// logged with its request ID (default 1s; negative disables).
	SlowRequest time.Duration

	// Logger receives structured slow-request and drain log lines; nil
	// discards them.
	Logger *slog.Logger

	// EnablePprof mounts the Go profiler under GET /debug/pprof/.
	EnablePprof bool

	// CapacityWindow, when positive, starts the online capacity sampler:
	// every interval the server pairs its served-counter delta with the
	// admission-semaphore occupancy (the concurrency level it actually
	// ran at), accumulating an X(N) curve that /statsz exposes — with a
	// USL fit and saturation forecast once enough distinct busy levels
	// exist — under the "capacity" key. The sampler also maintains the
	// capacity_* series: capacity_samples_total (ticks taken),
	// capacity_levels (distinct busy levels), capacity_last_inflight.
	// Zero disables sampling entirely.
	CapacityWindow time.Duration

	// Cluster, when set, makes this server one node of a replicated
	// fleet: estimate and batch keys are consistent-hash-routed to their
	// owner replica set, non-owned requests are forwarded (with hedging
	// and circuit breaking) and, when every remote owner is unusable, the
	// request is served from the local model with `degraded: true`. The
	// caller owns the cluster's lifecycle (Start/Close).
	Cluster *cluster.Cluster

	// Registry, when set, puts the server in multi-tenant registry mode:
	// requests route to named model lineages (LineageHeader) with canary
	// splitting, tenants (TenantHeader) run under admission quotas (429 +
	// Retry-After on exhaustion, distinct from overload 503), feedback
	// feeds the canary comparison, and the /v1/models admin endpoints are
	// mounted. Engine may then be nil; the registry's default lineage
	// stands in for introspection. Mutually exclusive with Cluster.
	Registry *registry.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = c.Engine.Workers()
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInflight
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Obs == nil {
		c.Obs = obs.Default()
	}
	if c.SlowRequest == 0 {
		c.SlowRequest = time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Server is the HTTP serving layer. Construct with New; a Server is safe
// for concurrent use and for a single Drain.
type Server struct {
	cfg    Config
	engine *batch.Engine

	inflight chan struct{} // admission semaphore
	queued   atomic.Int64

	mu       sync.Mutex
	draining bool
	active   int           // requests between begin/end (admitted or queued)
	drainCh  chan struct{} // closed when draining starts
	idleCh   chan struct{} // closed when active hits 0 while draining

	ready atomic.Bool

	// Counters. The atomics are the per-instance source of truth for
	// Stats(); each is mirrored onto the observability registry, which
	// may be shared process-wide. Client-caused failures (4xx) and
	// server-caused failures (5xx) are counted separately so malformed
	// input load cannot masquerade as a server failure rate; the wire
	// `failed` field stays their sum for compatibility.
	accepted      atomic.Uint64
	served        atomic.Uint64
	clientErrors  atomic.Uint64
	serverErrors  atomic.Uint64
	shed          atomic.Uint64
	drainRejected atomic.Uint64
	timeouts      atomic.Uint64
	panics        atomic.Uint64
	quotaRejected atomic.Uint64

	// Registry handles, resolved once at construction.
	m  serverMetrics
	sm streamMetrics
	cm clusterServerMetrics

	// Online capacity sampling (Config.CapacityWindow > 0 only).
	capWin      *capacity.Window
	capStop     chan struct{}
	capStopOnce sync.Once
	capMetrics  capacityMetrics
}

// capacityMetrics are the capacity_* series handles, resolved only when
// the online sampler is enabled so a sampler-less server does not
// advertise empty capacity series.
type capacityMetrics struct {
	samples      *obs.Counter
	levels       *obs.Gauge
	lastInflight *obs.Gauge
}

// serverMetrics are the server's handles into the observability registry:
// mirrored counters, occupancy gauges, and per-endpoint latency
// histograms.
type serverMetrics struct {
	accepted      *obs.Counter
	served        *obs.Counter
	clientErrors  *obs.Counter
	serverErrors  *obs.Counter
	shed          *obs.Counter
	drainRejected *obs.Counter
	timeouts      *obs.Counter
	panics        *obs.Counter

	queueDepth *obs.Gauge
	inflight   *obs.Gauge

	latency map[string]*obs.Histogram // by endpoint label
}

// endpointLabels are the route labels carrying their own latency series;
// anything else records under "other".
var endpointLabels = []string{"estimate", "batch", "feedback", "healthz", "readyz", "statsz", "metrics", "models", "other"}

func newServerMetrics(r *obs.Registry) serverMetrics {
	m := serverMetrics{
		accepted:      r.Counter("server_accepted_total"),
		served:        r.Counter("server_served_total"),
		clientErrors:  r.Counter("server_client_errors_total"),
		serverErrors:  r.Counter("server_server_errors_total"),
		shed:          r.Counter("server_shed_total"),
		drainRejected: r.Counter("server_drain_rejected_total"),
		timeouts:      r.Counter("server_timeouts_total"),
		panics:        r.Counter("server_panics_total"),
		queueDepth:    r.Gauge("server_queue_depth"),
		inflight:      r.Gauge("server_inflight"),
		latency:       make(map[string]*obs.Histogram, len(endpointLabels)),
	}
	for _, l := range endpointLabels {
		m.latency[l] = r.Histogram("http_request_seconds_"+l, nil)
	}
	return m
}

// endpointLabel maps a request path to its latency-series label.
func endpointLabel(path string) string {
	switch path {
	case "/v1/estimate":
		return "estimate"
	case "/v1/batch":
		return "batch"
	case "/v1/feedback":
		return "feedback"
	case "/healthz":
		return "healthz"
	case "/readyz":
		return "readyz"
	case "/statsz":
		return "statsz"
	case "/metrics":
		return "metrics"
	default:
		if strings.HasPrefix(path, "/v1/models") {
			return "models"
		}
		return "other"
	}
}

// New builds a server over an engine, or — in registry mode — over the
// registry's lineages, with the default lineage's engine standing in for
// capacity sizing and introspection.
func New(cfg Config) (*Server, error) {
	if cfg.Registry != nil && cfg.Cluster != nil {
		return nil, errors.New("server: registry and cluster modes are mutually exclusive")
	}
	if cfg.Engine == nil {
		if cfg.Registry == nil {
			return nil, errors.New("server: nil engine")
		}
		eng, err := registryFallbackEngine(cfg.Registry)
		if err != nil {
			return nil, err
		}
		cfg.Engine = eng
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		engine:   cfg.Engine,
		inflight: make(chan struct{}, cfg.MaxInflight),
		drainCh:  make(chan struct{}),
		idleCh:   make(chan struct{}),
		m:        newServerMetrics(cfg.Obs),
		sm:       newStreamMetrics(cfg.Obs),
		cm:       newClusterServerMetrics(cfg.Obs),
	}
	s.ready.Store(true)
	if cfg.CapacityWindow > 0 {
		s.capWin = capacity.NewWindow()
		s.capStop = make(chan struct{})
		s.capMetrics = capacityMetrics{
			samples:      cfg.Obs.Counter("capacity_samples_total"),
			levels:       cfg.Obs.Gauge("capacity_levels"),
			lastInflight: cfg.Obs.Gauge("capacity_last_inflight"),
		}
		go s.capacitySampler()
	}
	return s, nil
}

// capacitySampler ticks the online capacity window until Drain stops it.
func (s *Server) capacitySampler() {
	t := time.NewTicker(s.cfg.CapacityWindow)
	defer t.Stop()
	for {
		select {
		case now := <-t.C:
			inflight := len(s.inflight)
			s.capWin.Tick(now, s.served.Load(), inflight)
			s.capMetrics.samples.Inc()
			s.capMetrics.levels.Set(int64(s.capWin.DistinctLevels()))
			s.capMetrics.lastInflight.Set(int64(inflight))
		case <-s.capStop:
			return
		}
	}
}

// stopCapacitySampler halts the sampler goroutine (idempotent, safe when
// the sampler was never started).
func (s *Server) stopCapacitySampler() {
	if s.capStop == nil {
		return
	}
	s.capStopOnce.Do(func() { close(s.capStop) })
}

// SetReady flips admission readiness without draining (manual maintenance
// mode). Draining overrides it.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports whether the server currently admits work.
func (s *Server) Ready() bool {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	return s.ready.Load() && !draining
}

// Drain performs the graceful-shutdown sequence: readiness is withdrawn
// and new requests are rejected with 503, queued waiters are released,
// and the call blocks until every inflight request has finished (or ctx
// expires, returning its error with work still in flight). Drain is
// idempotent; concurrent calls all block until idle.
func (s *Server) Drain(ctx context.Context) error {
	s.stopCapacitySampler()
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh)
	}
	if s.active == 0 {
		select {
		case <-s.idleCh:
		default:
			close(s.idleCh)
		}
	}
	idle := s.idleCh
	s.mu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// beginRequest registers an estimation request with the drain tracker.
func (s *Server) beginRequest() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.active++
	return true
}

func (s *Server) endRequest() {
	s.mu.Lock()
	s.active--
	if s.active == 0 && s.draining {
		select {
		case <-s.idleCh:
		default:
			close(s.idleCh)
		}
	}
	s.mu.Unlock()
}

// admit acquires an execution slot, waiting in the bounded queue when the
// semaphore is full. It returns a release function on success; on failure
// the error matches crerr.ErrOverloaded (queue full), crerr.ErrDraining
// (shutdown began while queued) or crerr.ErrCanceled (caller gave up).
func (s *Server) admit(ctx context.Context) (func(), error) {
	release := func() {
		<-s.inflight
		s.m.inflight.Add(-1)
	}
	select {
	case s.inflight <- struct{}{}:
		s.m.inflight.Add(1)
		return release, nil
	default:
	}
	if q := s.queued.Add(1); q > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		return nil, fmt.Errorf("%w: %d inflight, queue of %d full",
			crerr.ErrOverloaded, s.cfg.MaxInflight, s.cfg.MaxQueue)
	}
	s.m.queueDepth.Add(1)
	defer func() {
		s.queued.Add(-1)
		s.m.queueDepth.Add(-1)
	}()
	select {
	case s.inflight <- struct{}{}:
		s.m.inflight.Add(1)
		return release, nil
	case <-s.drainCh:
		return nil, crerr.ErrDraining
	case <-ctx.Done():
		return nil, crerr.Canceled(ctx.Err())
	}
}

// Handler returns the server's route tree wrapped, outermost first, in
// panic recovery, the instrumentation layer (request IDs, per-endpoint
// latency, slow-request log) and the configured middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/feedback", s.handleFeedback)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.Registry != nil {
		mux.HandleFunc("GET /v1/models", s.handleModelsList)
		mux.HandleFunc("GET /v1/models/{lineage}", s.handleModelGet)
		mux.HandleFunc("POST /v1/models/{lineage}/promote", s.handleModelPromote)
		mux.HandleFunc("POST /v1/models/{lineage}/rollback", s.handleModelRollback)
	}
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	var h http.Handler = mux
	if s.cfg.Middleware != nil {
		h = s.cfg.Middleware(h)
	}
	return s.recoverPanics(s.instrument(h))
}

// statusRecorder captures the response status for classification and
// logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument is the tracing and latency layer: it adopts or mints the
// request ID, threads it through the context (the batch engine stamps it
// into per-request errors) and the X-Request-ID response header, records
// the request on its endpoint's latency histogram, and logs requests
// slower than Config.SlowRequest with their ID so a client report can be
// joined against the server log.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get("X-Request-ID")
		if rid == "" {
			rid = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", rid)
		r = r.WithContext(obs.WithRequestID(r.Context(), rid))

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		dur := time.Since(start)

		s.m.latency[endpointLabel(r.URL.Path)].Observe(dur.Seconds())
		if s.cfg.SlowRequest > 0 && dur >= s.cfg.SlowRequest {
			s.cfg.Logger.Warn("slow request",
				"rid", rid,
				"method", r.Method,
				"path", r.URL.Path,
				"status", rec.status,
				"duration", dur.String())
		}
	})
}

// recoverPanics is the outermost layer: any panic below it — handler bug,
// injected chaos fault — becomes a 500 with a typed body and a logged
// stack, reusing the crerr taxonomy bridge.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.panics.Add(1)
				s.m.panics.Inc()
				err := crerr.Recovered(v, crerr.ErrInvalidBuffer)
				s.cfg.Logf("server: panic on %s %s: %v", r.Method, r.URL.Path, v)
				s.writeError(w, http.StatusInternalServerError, "panic", err)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// ---------------------------------------------------------------------------
// Wire types

// EstimateRequest is one buffer × bound estimation ask.
type EstimateRequest struct {
	Dataset string    `json:"dataset,omitempty"`
	Field   string    `json:"field,omitempty"`
	Step    int       `json:"step,omitempty"`
	Rows    int       `json:"rows"`
	Cols    int       `json:"cols"`
	Data    []float64 `json:"data"`
	Eps     float64   `json:"eps"`
}

// buffer validates the request and builds the engine's buffer.
func (er *EstimateRequest) buffer() (*grid.Buffer, error) {
	if er.Eps <= 0 {
		return nil, fmt.Errorf("%w: eps %g", crerr.ErrInvalidBuffer, er.Eps)
	}
	buf, err := grid.FromSlice(er.Rows, er.Cols, er.Data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", crerr.ErrInvalidBuffer, err)
	}
	buf.Dataset, buf.Field, buf.Step = er.Dataset, er.Field, er.Step
	if err := buf.Validate(grid.DefaultValidation); err != nil {
		return nil, err
	}
	return buf, nil
}

// EstimateResponse is one conformal estimate. Degraded marks a clustered
// response served from the local model because every owner replica was
// unusable — the answer is real, but came from outside the key's replica
// set (so its feature cache and online calibration may be colder).
type EstimateResponse struct {
	CR       float64 `json:"cr"`
	Lo       float64 `json:"lo"`
	Hi       float64 `json:"hi"`
	Degraded bool    `json:"degraded,omitempty"`
}

// WireError is the JSON error body: a stable kind for routing plus the
// human-readable message.
type WireError struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
}

// BatchWireRequest asks for many estimates at once.
type BatchWireRequest struct {
	Requests []EstimateRequest `json:"requests"`
}

// BatchItem is one slot of a batch response: a result or an error.
type BatchItem struct {
	Result *EstimateResponse `json:"result,omitempty"`
	Error  *WireError        `json:"error,omitempty"`
}

// BatchWireResponse carries per-request results in request order.
type BatchWireResponse struct {
	Results []BatchItem `json:"results"`
}

// ---------------------------------------------------------------------------
// Handlers

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if isStreamRequest(r) {
		s.handleEstimateStream(w, r)
		return
	}
	s.withAdmission(w, r, func(ctx context.Context) {
		engine, err := s.engineFor(w, r)
		if err != nil {
			s.failRequest(w, err)
			return
		}
		var req EstimateRequest
		degraded := false
		if s.clustered() {
			// Clustered path: read raw bytes once so the same payload can
			// be decoded for routing and forwarded verbatim.
			raw, err := s.readBodyBytes(w, r)
			if err != nil {
				s.failRequest(w, err)
				return
			}
			if err := strictDecode(raw, &req); err != nil {
				s.failRequest(w, err)
				return
			}
			var handled bool
			handled, degraded = s.routeEstimate(ctx, w, r, &req, raw)
			if handled {
				return
			}
		} else if err := s.decodeBody(w, r, &req); err != nil {
			s.failRequest(w, err)
			return
		}
		buf, err := req.buffer()
		if err != nil {
			s.failRequest(w, err)
			return
		}
		ests, err := engine.EstimateAllContext(ctx, []batch.Request{{Buf: buf, Eps: req.Eps}})
		if err != nil {
			var agg *crerr.AggregateError
			if errors.As(err, &agg) {
				err = agg.ByIndex(0)
			}
			s.failRequest(w, err)
			return
		}
		s.served.Add(1)
		s.m.served.Inc()
		if s.clustered() {
			w.Header().Set(cluster.ServedByHeader, s.cfg.Cluster.Self())
		}
		s.writeJSON(w, http.StatusOK, EstimateResponse{
			CR: ests[0].CR, Lo: ests[0].Lo, Hi: ests[0].Hi, Degraded: degraded,
		})
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.withAdmission(w, r, func(ctx context.Context) {
		engine, err := s.engineFor(w, r)
		if err != nil {
			s.failRequest(w, err)
			return
		}
		var wire BatchWireRequest
		if err := s.decodeBody(w, r, &wire); err != nil {
			s.failRequest(w, err)
			return
		}
		if len(wire.Requests) == 0 {
			s.failRequest(w, fmt.Errorf("%w: empty batch", crerr.ErrInvalidBuffer))
			return
		}
		if len(wire.Requests) > s.cfg.MaxBatch {
			s.failRequest(w, fmt.Errorf("%w: batch of %d exceeds limit %d",
				crerr.ErrInvalidBuffer, len(wire.Requests), s.cfg.MaxBatch))
			return
		}
		if s.clustered() {
			s.runBatchClustered(ctx, w, r, &wire)
			return
		}
		reqs := make([]batch.Request, len(wire.Requests))
		buildErrs := make([]error, len(wire.Requests))
		for i := range wire.Requests {
			buf, err := wire.Requests[i].buffer()
			if err != nil {
				buildErrs[i] = err
				continue
			}
			reqs[i] = batch.Request{Buf: buf, Eps: wire.Requests[i].Eps}
		}
		// Only structurally valid requests reach the engine; invalid ones
		// keep their slots and report their own typed errors.
		valid := make([]batch.Request, 0, len(reqs))
		validIdx := make([]int, 0, len(reqs))
		for i, br := range reqs {
			if buildErrs[i] == nil {
				valid = append(valid, br)
				validIdx = append(validIdx, i)
			}
		}
		ests, err := engine.EstimateAllContext(ctx, valid)
		// A whole-batch cancellation is a request-level failure.
		if err != nil && errors.Is(err, crerr.ErrCanceled) {
			s.failRequest(w, err)
			return
		}
		var agg *crerr.AggregateError
		errors.As(err, &agg)

		out := BatchWireResponse{Results: make([]BatchItem, len(reqs))}
		for vi, i := range validIdx {
			if agg != nil {
				if perReq := agg.ByIndex(vi); perReq != nil {
					buildErrs[i] = perReq
					continue
				}
			}
			e := ests[vi]
			out.Results[i] = BatchItem{Result: &EstimateResponse{CR: e.CR, Lo: e.Lo, Hi: e.Hi}}
		}
		for i, berr := range buildErrs {
			if berr != nil {
				kind, status := classify(berr)
				if status >= 500 {
					s.serverErrors.Add(1)
					s.m.serverErrors.Inc()
				} else {
					s.clientErrors.Add(1)
					s.m.clientErrors.Inc()
				}
				out.Results[i] = BatchItem{Error: &WireError{Kind: kind, Message: berr.Error()}}
			}
		}
		s.served.Add(1)
		s.m.served.Inc()
		s.writeJSON(w, http.StatusOK, out)
	})
}

// withAdmission runs fn under the full admission pipeline: per-tenant
// quota (registry mode), drain check, semaphore/queue, per-request
// deadline.
func (s *Server) withAdmission(w http.ResponseWriter, r *http.Request, fn func(ctx context.Context)) {
	if !s.checkQuota(w, r) {
		return
	}
	if !s.ready.Load() || !s.beginRequest() {
		s.drainRejected.Add(1)
		s.m.drainRejected.Inc()
		s.writeShed(w, crerr.ErrDraining)
		return
	}
	defer s.endRequest()
	release, err := s.admit(r.Context())
	if err != nil {
		switch {
		case errors.Is(err, crerr.ErrOverloaded):
			s.shed.Add(1)
			s.m.shed.Inc()
		case errors.Is(err, crerr.ErrDraining):
			s.drainRejected.Add(1)
			s.m.drainRejected.Inc()
		}
		s.writeShed(w, err)
		return
	}
	defer release()
	s.accepted.Add(1)
	s.m.accepted.Inc()

	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	fn(ctx)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.Ready() {
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		return
	}
	s.setRetryAfter(w)
	s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
}

// StatsPayload is the /statsz body: serving-layer counters plus the
// engine snapshot (which embeds the shared feature-cache counters).
type StatsPayload struct {
	Server Stats       `json:"server"`
	Engine batch.Stats `json:"engine"`
	// Conformal is present when online recalibration is enabled.
	Conformal *OnlineSnapshot `json:"conformal,omitempty"`
	// Cluster is present when this node serves as part of a fleet.
	Cluster *ClusterBlock `json:"cluster,omitempty"`
	// Registry is present in registry mode: one entry per lineage.
	Registry []registry.LineageInfo `json:"registry,omitempty"`
	// Capacity is present when the online sampler runs
	// (Config.CapacityWindow > 0): the observed X(N) curve and, with
	// enough distinct busy levels, its USL fit and saturation forecast.
	Capacity *capacity.WindowSnapshot `json:"capacity,omitempty"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	engine := s.currentEngine()
	payload := StatsPayload{
		Server:   s.Stats(),
		Engine:   engine.Stats(),
		Cluster:  s.clusterBlock(),
		Registry: s.registryBlock(),
	}
	if st, ok := engine.Estimator().OnlineStats(); ok {
		payload.Conformal = onlineSnapshot(st)
	}
	if s.capWin != nil {
		snap := s.capWin.Snapshot()
		payload.Capacity = &snap
	}
	s.writeJSON(w, http.StatusOK, payload)
}

// MetricsPayload is the GET /metrics body: the full registry snapshot
// plus derived convenience figures scripts would otherwise recompute.
type MetricsPayload struct {
	obs.Snapshot
	Derived DerivedMetrics `json:"derived"`
}

// DerivedMetrics are ratios computed from the raw series at read time.
type DerivedMetrics struct {
	// FeatcacheHitRate is hits / (hits + misses) of the engine's shared
	// feature cache, 0 before any lookup.
	FeatcacheHitRate float64 `json:"featcache_hit_rate"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, MetricsPayload{
		Snapshot: s.cfg.Obs.Snapshot(),
		Derived: DerivedMetrics{
			FeatcacheHitRate: s.currentEngine().Stats().Cache.HitRate(),
		},
	})
}

// Stats is a point-in-time snapshot of the serving-layer counters.
type Stats struct {
	// Accepted counts requests admitted past the semaphore; Served the
	// 2xx completions; ClientErrors per-request failures the client
	// caused (4xx: malformed body, invalid buffer, oversized payload);
	// ServerErrors failures the server caused (5xx: degenerate model,
	// internal errors) plus 504 timeouts; Failed their sum, kept for
	// wire compatibility; Shed 503s from a full queue; DrainRejected
	// 503s during drain or unreadiness; Timeouts 504s from expired
	// deadlines; RecoveredPanics handler panics converted to 500s.
	Accepted        uint64 `json:"accepted"`
	Served          uint64 `json:"served"`
	Failed          uint64 `json:"failed"`
	ClientErrors    uint64 `json:"client_errors"`
	ServerErrors    uint64 `json:"server_errors"`
	Shed            uint64 `json:"shed"`
	DrainRejected   uint64 `json:"drain_rejected"`
	Timeouts        uint64 `json:"timeouts"`
	RecoveredPanics uint64 `json:"recovered_panics"`
	// QuotaRejected counts 429s from per-tenant quota exhaustion
	// (registry mode) — deliberately separate from Shed: quota is the
	// tenant's backpressure, shed is the server's.
	QuotaRejected uint64 `json:"quota_rejected"`

	// Inflight and Queued are current occupancy; MaxInflight and
	// MaxQueue the configured bounds.
	Inflight    int `json:"inflight"`
	Queued      int `json:"queued"`
	MaxInflight int `json:"max_inflight"`
	MaxQueue    int `json:"max_queue"`

	Ready    bool `json:"ready"`
	Draining bool `json:"draining"`
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	ce, se := s.clientErrors.Load(), s.serverErrors.Load()
	return Stats{
		Accepted:        s.accepted.Load(),
		Served:          s.served.Load(),
		Failed:          ce + se,
		ClientErrors:    ce,
		ServerErrors:    se,
		Shed:            s.shed.Load(),
		DrainRejected:   s.drainRejected.Load(),
		Timeouts:        s.timeouts.Load(),
		RecoveredPanics: s.panics.Load(),
		QuotaRejected:   s.quotaRejected.Load(),
		Inflight:        len(s.inflight),
		Queued:          int(s.queued.Load()),
		MaxInflight:     s.cfg.MaxInflight,
		MaxQueue:        s.cfg.MaxQueue,
		Ready:           s.ready.Load() && !draining,
		Draining:        draining,
	}
}

// ---------------------------------------------------------------------------
// Response plumbing

// classify maps a pipeline error onto (wire kind, HTTP status) using the
// crerr taxonomy.
func classify(err error) (string, int) {
	switch {
	case errors.Is(err, crerr.ErrQuotaExceeded):
		return "quota_exceeded", http.StatusTooManyRequests
	case errors.Is(err, crerr.ErrUnknownLineage):
		return "unknown_lineage", http.StatusNotFound
	case errors.Is(err, crerr.ErrOverloaded):
		return "overloaded", http.StatusServiceUnavailable
	case errors.Is(err, crerr.ErrDraining):
		return "draining", http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline_exceeded", http.StatusGatewayTimeout
	case errors.Is(err, crerr.ErrCanceled):
		return "canceled", http.StatusServiceUnavailable
	case errors.Is(err, crerr.ErrBodyTooLarge):
		return "body_too_large", http.StatusRequestEntityTooLarge
	case errors.Is(err, crerr.ErrStreamCorrupt):
		return "stream_corrupt", http.StatusBadRequest
	case errors.Is(err, crerr.ErrNonFiniteData):
		return "non_finite_data", http.StatusBadRequest
	case errors.Is(err, crerr.ErrInvalidBuffer):
		return "invalid_buffer", http.StatusBadRequest
	case errors.Is(err, crerr.ErrModelDegenerate):
		return "model_degenerate", http.StatusInternalServerError
	default:
		return "internal", http.StatusInternalServerError
	}
}

// decodeBody decodes a JSON request body under the size cap. Three
// contract points, each with its own failure class:
//
//   - A body over MaxBodyBytes is ErrBodyTooLarge (413): the client must
//     shrink the payload, not fix its syntax — so the size-cap error is
//     never folded into the generic 400.
//   - Unknown fields are rejected: a misspelled field would otherwise
//     silently zero a parameter (an eps typo becoming eps=0).
//   - Trailing data after the JSON document is rejected: a concatenated
//     second document would otherwise be silently ignored.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return classifyBodyError(err)
	}
	if _, err := dec.Token(); err != io.EOF {
		if err == nil {
			err = errors.New("trailing data after JSON document")
		}
		return classifyBodyError(err)
	}
	return nil
}

// classifyBodyError types a body-read failure: the MaxBytesReader cap
// maps to ErrBodyTooLarge, everything else to ErrInvalidBuffer.
func classifyBodyError(err error) error {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return fmt.Errorf("%w: body exceeds %d bytes", crerr.ErrBodyTooLarge, mbe.Limit)
	}
	return fmt.Errorf("%w: body: %v", crerr.ErrInvalidBuffer, err)
}

// failRequest writes a classified error response and bumps the matching
// counters: client-caused failures (4xx) and server-caused failures
// (5xx) are tracked separately so malformed-input load does not inflate
// the server failure rate.
func (s *Server) failRequest(w http.ResponseWriter, err error) {
	kind, status := classify(err)
	if status == http.StatusGatewayTimeout {
		s.timeouts.Add(1)
		s.m.timeouts.Inc()
	}
	if status >= 500 {
		s.serverErrors.Add(1)
		s.m.serverErrors.Inc()
	} else {
		s.clientErrors.Add(1)
		s.m.clientErrors.Inc()
	}
	if status == http.StatusServiceUnavailable {
		s.setRetryAfter(w)
	}
	s.writeError(w, status, kind, err)
}

// writeShed writes the 503 shedding response with its Retry-After hint.
func (s *Server) writeShed(w http.ResponseWriter, err error) {
	kind, status := classify(err)
	s.setRetryAfter(w)
	s.writeError(w, status, kind, err)
}

func (s *Server) setRetryAfter(w http.ResponseWriter) {
	secs := int(s.cfg.RetryAfter / time.Second)
	if s.cfg.RetryAfter%time.Second != 0 || secs == 0 {
		secs++ // Retry-After is integral seconds; round up
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

func (s *Server) writeError(w http.ResponseWriter, status int, kind string, err error) {
	s.writeJSON(w, status, map[string]WireError{"error": {Kind: kind, Message: err.Error()}})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(body); err != nil {
		s.cfg.Logf("server: write response: %v", err)
	}
}
