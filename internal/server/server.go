// Package server is the network boundary of the estimation pipeline: an
// HTTP JSON API over the concurrent batch engine, built so that a trained
// CREST model can be consulted per-buffer at I/O time by remote writers —
// and so that the boundary degrades instead of collapsing when traffic
// exceeds capacity.
//
// Robustness model, layered on the PR-2 in-process guarantees:
//
//   - Admission control: a bounded inflight semaphore caps concurrent
//     estimation work; a bounded queue absorbs short bursts. A request
//     that finds both full is shed immediately with 503 and a
//     Retry-After hint — the server stays at its saturation throughput
//     instead of accumulating unbounded work and dying.
//   - Per-request deadlines: every admitted request runs under a context
//     deadline mapped onto the engine's cancellation plumbing; an
//     expired deadline yields 504 and the worker drains.
//   - Panic isolation: a panicking handler (or injected chaos fault)
//     becomes a 500 with a typed error body, never a process crash.
//   - Graceful drain: Drain withdraws readiness first (load balancers
//     stop routing), rejects new work with 503, lets inflight requests
//     finish, and only then returns — the SIGTERM sequence of
//     `crest serve`.
//
// Endpoints:
//
//	POST /v1/estimate  one buffer + bound -> one conformal estimate
//	POST /v1/batch     many buffers x bounds -> per-request results
//	GET  /healthz      process liveness (always 200 while serving)
//	GET  /readyz       admission readiness (503 while draining)
//	GET  /statsz       server + engine + feature-cache counters
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/crestlab/crest/internal/batch"
	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/grid"
)

// Config tunes the serving boundary. Engine is required; everything else
// has serviceable defaults.
type Config struct {
	// Engine is the batch-estimation engine requests run on.
	Engine *batch.Engine

	// MaxInflight caps concurrently executing requests (default: the
	// engine's worker bound). MaxQueue bounds requests waiting for a
	// slot (default 4×MaxInflight); beyond it, requests are shed.
	MaxInflight int
	MaxQueue    int

	// RequestTimeout bounds each admitted request (default 30s; negative
	// disables).
	RequestTimeout time.Duration

	// RetryAfter is the backoff hint advertised on 503 responses
	// (default 1s).
	RetryAfter time.Duration

	// MaxBatch caps the request count of one /v1/batch call
	// (default 1024). MaxBodyBytes caps a request body (default 64 MiB).
	MaxBatch     int
	MaxBodyBytes int64

	// Middleware, when set, wraps the route handlers inside the panic
	// recovery layer — the seam the chaos harness injects slow, failing
	// and panicking handlers through.
	Middleware func(http.Handler) http.Handler

	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = c.Engine.Workers()
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInflight
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the HTTP serving layer. Construct with New; a Server is safe
// for concurrent use and for a single Drain.
type Server struct {
	cfg    Config
	engine *batch.Engine

	inflight chan struct{} // admission semaphore
	queued   atomic.Int64

	mu       sync.Mutex
	draining bool
	active   int           // requests between begin/end (admitted or queued)
	drainCh  chan struct{} // closed when draining starts
	idleCh   chan struct{} // closed when active hits 0 while draining

	ready atomic.Bool

	// Counters.
	accepted      atomic.Uint64
	served        atomic.Uint64
	failed        atomic.Uint64
	shed          atomic.Uint64
	drainRejected atomic.Uint64
	timeouts      atomic.Uint64
	panics        atomic.Uint64
}

// New builds a server over an engine.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("server: nil engine")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		engine:   cfg.Engine,
		inflight: make(chan struct{}, cfg.MaxInflight),
		drainCh:  make(chan struct{}),
		idleCh:   make(chan struct{}),
	}
	s.ready.Store(true)
	return s, nil
}

// SetReady flips admission readiness without draining (manual maintenance
// mode). Draining overrides it.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports whether the server currently admits work.
func (s *Server) Ready() bool {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	return s.ready.Load() && !draining
}

// Drain performs the graceful-shutdown sequence: readiness is withdrawn
// and new requests are rejected with 503, queued waiters are released,
// and the call blocks until every inflight request has finished (or ctx
// expires, returning its error with work still in flight). Drain is
// idempotent; concurrent calls all block until idle.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh)
	}
	if s.active == 0 {
		select {
		case <-s.idleCh:
		default:
			close(s.idleCh)
		}
	}
	idle := s.idleCh
	s.mu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// beginRequest registers an estimation request with the drain tracker.
func (s *Server) beginRequest() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.active++
	return true
}

func (s *Server) endRequest() {
	s.mu.Lock()
	s.active--
	if s.active == 0 && s.draining {
		select {
		case <-s.idleCh:
		default:
			close(s.idleCh)
		}
	}
	s.mu.Unlock()
}

// admit acquires an execution slot, waiting in the bounded queue when the
// semaphore is full. It returns a release function on success; on failure
// the error matches crerr.ErrOverloaded (queue full), crerr.ErrDraining
// (shutdown began while queued) or crerr.ErrCanceled (caller gave up).
func (s *Server) admit(ctx context.Context) (func(), error) {
	release := func() { <-s.inflight }
	select {
	case s.inflight <- struct{}{}:
		return release, nil
	default:
	}
	if q := s.queued.Add(1); q > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		return nil, fmt.Errorf("%w: %d inflight, queue of %d full",
			crerr.ErrOverloaded, s.cfg.MaxInflight, s.cfg.MaxQueue)
	}
	defer s.queued.Add(-1)
	select {
	case s.inflight <- struct{}{}:
		return release, nil
	case <-s.drainCh:
		return nil, crerr.ErrDraining
	case <-ctx.Done():
		return nil, crerr.Canceled(ctx.Err())
	}
}

// Handler returns the server's route tree wrapped in panic recovery and
// the configured middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	var h http.Handler = mux
	if s.cfg.Middleware != nil {
		h = s.cfg.Middleware(h)
	}
	return s.recoverPanics(h)
}

// recoverPanics is the outermost layer: any panic below it — handler bug,
// injected chaos fault — becomes a 500 with a typed body and a logged
// stack, reusing the crerr taxonomy bridge.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.panics.Add(1)
				err := crerr.Recovered(v, crerr.ErrInvalidBuffer)
				s.cfg.Logf("server: panic on %s %s: %v", r.Method, r.URL.Path, v)
				s.writeError(w, http.StatusInternalServerError, "panic", err)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// ---------------------------------------------------------------------------
// Wire types

// EstimateRequest is one buffer × bound estimation ask.
type EstimateRequest struct {
	Dataset string    `json:"dataset,omitempty"`
	Field   string    `json:"field,omitempty"`
	Step    int       `json:"step,omitempty"`
	Rows    int       `json:"rows"`
	Cols    int       `json:"cols"`
	Data    []float64 `json:"data"`
	Eps     float64   `json:"eps"`
}

// buffer validates the request and builds the engine's buffer.
func (er *EstimateRequest) buffer() (*grid.Buffer, error) {
	if er.Eps <= 0 {
		return nil, fmt.Errorf("%w: eps %g", crerr.ErrInvalidBuffer, er.Eps)
	}
	buf, err := grid.FromSlice(er.Rows, er.Cols, er.Data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", crerr.ErrInvalidBuffer, err)
	}
	buf.Dataset, buf.Field, buf.Step = er.Dataset, er.Field, er.Step
	if err := buf.Validate(grid.DefaultValidation); err != nil {
		return nil, err
	}
	return buf, nil
}

// EstimateResponse is one conformal estimate.
type EstimateResponse struct {
	CR float64 `json:"cr"`
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// WireError is the JSON error body: a stable kind for routing plus the
// human-readable message.
type WireError struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
}

// BatchWireRequest asks for many estimates at once.
type BatchWireRequest struct {
	Requests []EstimateRequest `json:"requests"`
}

// BatchItem is one slot of a batch response: a result or an error.
type BatchItem struct {
	Result *EstimateResponse `json:"result,omitempty"`
	Error  *WireError        `json:"error,omitempty"`
}

// BatchWireResponse carries per-request results in request order.
type BatchWireResponse struct {
	Results []BatchItem `json:"results"`
}

// ---------------------------------------------------------------------------
// Handlers

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	s.withAdmission(w, r, func(ctx context.Context) {
		var req EstimateRequest
		if err := s.decodeBody(w, r, &req); err != nil {
			s.failRequest(w, err)
			return
		}
		buf, err := req.buffer()
		if err != nil {
			s.failRequest(w, err)
			return
		}
		ests, err := s.engine.EstimateAllContext(ctx, []batch.Request{{Buf: buf, Eps: req.Eps}})
		if err != nil {
			var agg *crerr.AggregateError
			if errors.As(err, &agg) {
				err = agg.ByIndex(0)
			}
			s.failRequest(w, err)
			return
		}
		s.served.Add(1)
		s.writeJSON(w, http.StatusOK, EstimateResponse{CR: ests[0].CR, Lo: ests[0].Lo, Hi: ests[0].Hi})
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.withAdmission(w, r, func(ctx context.Context) {
		var wire BatchWireRequest
		if err := s.decodeBody(w, r, &wire); err != nil {
			s.failRequest(w, err)
			return
		}
		if len(wire.Requests) == 0 {
			s.failRequest(w, fmt.Errorf("%w: empty batch", crerr.ErrInvalidBuffer))
			return
		}
		if len(wire.Requests) > s.cfg.MaxBatch {
			s.failRequest(w, fmt.Errorf("%w: batch of %d exceeds limit %d",
				crerr.ErrInvalidBuffer, len(wire.Requests), s.cfg.MaxBatch))
			return
		}
		reqs := make([]batch.Request, len(wire.Requests))
		buildErrs := make([]error, len(wire.Requests))
		for i := range wire.Requests {
			buf, err := wire.Requests[i].buffer()
			if err != nil {
				buildErrs[i] = err
				continue
			}
			reqs[i] = batch.Request{Buf: buf, Eps: wire.Requests[i].Eps}
		}
		// Only structurally valid requests reach the engine; invalid ones
		// keep their slots and report their own typed errors.
		valid := make([]batch.Request, 0, len(reqs))
		validIdx := make([]int, 0, len(reqs))
		for i, br := range reqs {
			if buildErrs[i] == nil {
				valid = append(valid, br)
				validIdx = append(validIdx, i)
			}
		}
		ests, err := s.engine.EstimateAllContext(ctx, valid)
		// A whole-batch cancellation is a request-level failure.
		if err != nil && errors.Is(err, crerr.ErrCanceled) {
			s.failRequest(w, err)
			return
		}
		var agg *crerr.AggregateError
		errors.As(err, &agg)

		out := BatchWireResponse{Results: make([]BatchItem, len(reqs))}
		for vi, i := range validIdx {
			if agg != nil {
				if perReq := agg.ByIndex(vi); perReq != nil {
					buildErrs[i] = perReq
					continue
				}
			}
			e := ests[vi]
			out.Results[i] = BatchItem{Result: &EstimateResponse{CR: e.CR, Lo: e.Lo, Hi: e.Hi}}
		}
		nFailed := 0
		for i, berr := range buildErrs {
			if berr != nil {
				nFailed++
				kind, _ := classify(berr)
				out.Results[i] = BatchItem{Error: &WireError{Kind: kind, Message: berr.Error()}}
			}
		}
		if nFailed > 0 {
			s.failed.Add(uint64(nFailed))
		}
		s.served.Add(1)
		s.writeJSON(w, http.StatusOK, out)
	})
}

// withAdmission runs fn under the full admission pipeline: drain check,
// semaphore/queue, per-request deadline.
func (s *Server) withAdmission(w http.ResponseWriter, r *http.Request, fn func(ctx context.Context)) {
	if !s.ready.Load() || !s.beginRequest() {
		s.drainRejected.Add(1)
		s.writeShed(w, crerr.ErrDraining)
		return
	}
	defer s.endRequest()
	release, err := s.admit(r.Context())
	if err != nil {
		switch {
		case errors.Is(err, crerr.ErrOverloaded):
			s.shed.Add(1)
		case errors.Is(err, crerr.ErrDraining):
			s.drainRejected.Add(1)
		}
		s.writeShed(w, err)
		return
	}
	defer release()
	s.accepted.Add(1)

	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	fn(ctx)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.Ready() {
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		return
	}
	s.setRetryAfter(w)
	s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
}

// StatsPayload is the /statsz body: serving-layer counters plus the
// engine snapshot (which embeds the shared feature-cache counters).
type StatsPayload struct {
	Server Stats       `json:"server"`
	Engine batch.Stats `json:"engine"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, StatsPayload{Server: s.Stats(), Engine: s.engine.Stats()})
}

// Stats is a point-in-time snapshot of the serving-layer counters.
type Stats struct {
	// Accepted counts requests admitted past the semaphore; Served the
	// 2xx completions; Failed per-request estimation/validation
	// failures; Shed 503s from a full queue; DrainRejected 503s during
	// drain or unreadiness; Timeouts 504s from expired deadlines;
	// RecoveredPanics handler panics converted to 500s.
	Accepted        uint64 `json:"accepted"`
	Served          uint64 `json:"served"`
	Failed          uint64 `json:"failed"`
	Shed            uint64 `json:"shed"`
	DrainRejected   uint64 `json:"drain_rejected"`
	Timeouts        uint64 `json:"timeouts"`
	RecoveredPanics uint64 `json:"recovered_panics"`

	// Inflight and Queued are current occupancy; MaxInflight and
	// MaxQueue the configured bounds.
	Inflight    int `json:"inflight"`
	Queued      int `json:"queued"`
	MaxInflight int `json:"max_inflight"`
	MaxQueue    int `json:"max_queue"`

	Ready    bool `json:"ready"`
	Draining bool `json:"draining"`
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	return Stats{
		Accepted:        s.accepted.Load(),
		Served:          s.served.Load(),
		Failed:          s.failed.Load(),
		Shed:            s.shed.Load(),
		DrainRejected:   s.drainRejected.Load(),
		Timeouts:        s.timeouts.Load(),
		RecoveredPanics: s.panics.Load(),
		Inflight:        len(s.inflight),
		Queued:          int(s.queued.Load()),
		MaxInflight:     s.cfg.MaxInflight,
		MaxQueue:        s.cfg.MaxQueue,
		Ready:           s.ready.Load() && !draining,
		Draining:        draining,
	}
}

// ---------------------------------------------------------------------------
// Response plumbing

// classify maps a pipeline error onto (wire kind, HTTP status) using the
// crerr taxonomy.
func classify(err error) (string, int) {
	switch {
	case errors.Is(err, crerr.ErrOverloaded):
		return "overloaded", http.StatusServiceUnavailable
	case errors.Is(err, crerr.ErrDraining):
		return "draining", http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline_exceeded", http.StatusGatewayTimeout
	case errors.Is(err, crerr.ErrCanceled):
		return "canceled", http.StatusServiceUnavailable
	case errors.Is(err, crerr.ErrNonFiniteData):
		return "non_finite_data", http.StatusBadRequest
	case errors.Is(err, crerr.ErrInvalidBuffer):
		return "invalid_buffer", http.StatusBadRequest
	case errors.Is(err, crerr.ErrModelDegenerate):
		return "model_degenerate", http.StatusInternalServerError
	default:
		return "internal", http.StatusInternalServerError
	}
}

// decodeBody decodes a JSON request body under the size cap.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("%w: body: %v", crerr.ErrInvalidBuffer, err)
	}
	return nil
}

// failRequest writes a classified error response and bumps the matching
// counters.
func (s *Server) failRequest(w http.ResponseWriter, err error) {
	kind, status := classify(err)
	if status == http.StatusGatewayTimeout {
		s.timeouts.Add(1)
	}
	s.failed.Add(1)
	if status == http.StatusServiceUnavailable {
		s.setRetryAfter(w)
	}
	s.writeError(w, status, kind, err)
}

// writeShed writes the 503 shedding response with its Retry-After hint.
func (s *Server) writeShed(w http.ResponseWriter, err error) {
	kind, status := classify(err)
	s.setRetryAfter(w)
	s.writeError(w, status, kind, err)
}

func (s *Server) setRetryAfter(w http.ResponseWriter) {
	secs := int(s.cfg.RetryAfter / time.Second)
	if s.cfg.RetryAfter%time.Second != 0 || secs == 0 {
		secs++ // Retry-After is integral seconds; round up
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

func (s *Server) writeError(w http.ResponseWriter, status int, kind string, err error) {
	s.writeJSON(w, status, map[string]WireError{"error": {Kind: kind, Message: err.Error()}})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(body); err != nil {
		s.cfg.Logf("server: write response: %v", err)
	}
}
