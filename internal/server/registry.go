package server

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/crestlab/crest/internal/batch"
	"github.com/crestlab/crest/internal/core"
	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/registry"
)

// registry.go is the multi-tenant serving surface: tenant extraction and
// per-tenant admission quotas, request routing to model lineages (with
// the registry's canary split), the feedback bridge into the canary
// comparison, and the /v1/models admin endpoints.

// TenantHeader names the requesting tenant; requests without it are
// billed to the default quota bucket.
const TenantHeader = "X-Crest-Tenant"

// LineageHeader selects the model lineage a request is served by;
// requests without it route to the registry's default lineage.
const LineageHeader = "X-Crest-Lineage"

// ModelVersionHeader reports which snapshot sequence served the request;
// CanaryHeader is "1" when the canary split chose the candidate.
const (
	ModelVersionHeader = "X-Crest-Model-Version"
	CanaryHeader       = "X-Crest-Canary"
)

// registryFallbackEngine picks the engine that stands in for Config.Engine
// in registry mode: the default lineage's active engine, else any
// lineage's (sorted order). Errors when the registry hosts nothing — an
// empty registry has nothing to serve.
func registryFallbackEngine(reg *registry.Registry) (*batch.Engine, error) {
	if eng, err := reg.ActiveEngine(""); err == nil {
		return eng, nil
	}
	for _, name := range reg.Lineages() {
		if eng, err := reg.ActiveEngine(name); err == nil {
			return eng, nil
		}
	}
	return nil, fmt.Errorf("server: registry hosts no lineages")
}

// tenantOf extracts the requesting tenant.
func tenantOf(r *http.Request) string { return r.Header.Get(TenantHeader) }

// lineageOf extracts the requested lineage ("" = default).
func lineageOf(r *http.Request) string { return r.Header.Get(LineageHeader) }

// checkQuota runs the request through its tenant's admission quota. On
// denial it writes the 429 with the tenant's own Retry-After and returns
// false. Quota exhaustion is deliberately checked before the shared
// inflight/queue admission: a tenant over budget must not occupy queue
// slots other tenants need.
func (s *Server) checkQuota(w http.ResponseWriter, r *http.Request) bool {
	if s.cfg.Registry == nil {
		return true
	}
	tenant := tenantOf(r)
	wait, ok := s.cfg.Registry.AllowTenant(tenant)
	if ok {
		return true
	}
	s.quotaRejected.Add(1)
	secs := int(wait / time.Second)
	if wait%time.Second != 0 || secs == 0 {
		secs++ // Retry-After is integral seconds; round up
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	if tenant == "" {
		tenant = "(default)"
	}
	s.writeError(w, http.StatusTooManyRequests, "quota_exceeded",
		fmt.Errorf("%w: tenant %s, retry after %ds", crerr.ErrQuotaExceeded, tenant, secs))
	return false
}

// engineFor resolves the engine one request runs on. Outside registry
// mode that is the fixed engine; in registry mode the request routes to
// its lineage's active model — or, a configured fraction of the time
// during a rollout, to the canary candidate — and the response is stamped
// with the serving version.
func (s *Server) engineFor(w http.ResponseWriter, r *http.Request) (*batch.Engine, error) {
	if s.cfg.Registry == nil {
		return s.engine, nil
	}
	rt, err := s.cfg.Registry.Route(lineageOf(r))
	if err != nil {
		return nil, err
	}
	w.Header().Set(ModelVersionHeader, strconv.Itoa(rt.Seq))
	if rt.Canary {
		w.Header().Set(CanaryHeader, "1")
	}
	return rt.Engine, nil
}

// currentEngine is the engine introspection endpoints report on: the
// registry's default active model when in registry mode, else the fixed
// engine.
func (s *Server) currentEngine() *batch.Engine {
	if s.cfg.Registry != nil {
		if eng, err := s.cfg.Registry.ActiveEngine(""); err == nil {
			return eng
		}
	}
	return s.engine
}

// registryFeedback routes one ground-truth observation through the
// registry: the lineage's active model absorbs it for online conformal
// recalibration, and an in-flight canary scores it for the comparison.
func (s *Server) registryFeedback(w http.ResponseWriter, r *http.Request, req *FeedbackRequest) {
	res, err := s.cfg.Registry.ObserveFeedback(lineageOf(r), req.Features, req.ActualCR)
	if err != nil {
		s.failRequest(w, err)
		return
	}
	s.sm.observations.Inc()
	resp := FeedbackResponse{Decision: res.Decision}
	if st := res.Online; st != nil {
		resp.Coverage = st.Coverage
		resp.Target = st.Target
		resp.Radius = st.Radius
		resp.Recalibrated = res.Recalibrated
		resp.Recalibrations = st.Recalibrations
		resp.Windowed = st.Windowed
		if res.Recalibrated {
			s.sm.recals.Inc()
			s.sm.driftEvents.Inc()
		}
	}
	if res.Decision != "" {
		s.cfg.Logger.Info("canary decision",
			"lineage", res.Lineage, "decision", res.Decision, "active", res.ActiveSeq)
	}
	s.served.Add(1)
	s.m.served.Inc()
	s.writeJSON(w, http.StatusOK, resp)
}

// ---------------------------------------------------------------------------
// /v1/models admin endpoints (registry mode only)

// PromoteRequest is the POST /v1/models/{lineage}/promote body.
type PromoteRequest struct {
	Seq int `json:"seq"`
}

// LifecycleResponse acknowledges a promote/rollback with the lineage's
// resulting state.
type LifecycleResponse struct {
	Status  string               `json:"status"`
	Lineage registry.LineageInfo `json:"lineage"`
}

func (s *Server) handleModelsList(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string][]registry.LineageInfo{
		"lineages": s.cfg.Registry.InfoAll(),
	})
}

func (s *Server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	info, err := s.cfg.Registry.Info(r.PathValue("lineage"))
	if err != nil {
		s.failRequest(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleModelPromote(w http.ResponseWriter, r *http.Request) {
	var req PromoteRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.failRequest(w, err)
		return
	}
	name := r.PathValue("lineage")
	if err := s.cfg.Registry.Promote(name, req.Seq); err != nil {
		s.failRequest(w, err)
		return
	}
	info, _ := s.cfg.Registry.Info(name)
	s.writeJSON(w, http.StatusOK, LifecycleResponse{Status: "promoted", Lineage: info})
}

func (s *Server) handleModelRollback(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("lineage")
	if err := s.cfg.Registry.Rollback(name); err != nil {
		s.failRequest(w, err)
		return
	}
	info, _ := s.cfg.Registry.Info(name)
	s.writeJSON(w, http.StatusOK, LifecycleResponse{Status: "rolled_back", Lineage: info})
}

// registryBlock is the /statsz registry section.
func (s *Server) registryBlock() []registry.LineageInfo {
	if s.cfg.Registry == nil {
		return nil
	}
	return s.cfg.Registry.InfoAll()
}

// estimatorFor resolves the estimator the streaming path serves with,
// honoring lineage routing (the stream path serves whole fields, so it
// participates in the canary split like any other request).
func (s *Server) estimatorFor(w http.ResponseWriter, r *http.Request) (*core.Estimator, error) {
	eng, err := s.engineFor(w, r)
	if err != nil {
		return nil, err
	}
	return eng.Estimator(), nil
}
