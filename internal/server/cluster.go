package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/crestlab/crest/internal/batch"
	"github.com/crestlab/crest/internal/cluster"
	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/obs"
)

// This file is the server half of the replication layer: key extraction,
// ownership checks, forwarding of non-owned requests through the
// cluster's failure-aware client, and the degradation policy — when every
// remote owner is ejected, opened or held, the request is served from the
// local model and the response marked degraded rather than failed. The
// cluster package never sees wire types; this file never makes routing or
// failure-handling decisions beyond "forward failed, degrade".

// clustered reports whether this server participates in a fleet.
func (s *Server) clustered() bool { return s.cfg.Cluster != nil }

// forwardDepth reads the hop count of an incoming request (0 when the
// request came straight from a client).
func forwardDepth(r *http.Request) int {
	d, err := strconv.Atoi(r.Header.Get(cluster.ForwardDepthHeader))
	if err != nil || d < 0 {
		return 0
	}
	return d
}

// routingKey derives the consistent-hash key of one estimation ask. Named
// buffers route by identity (dataset/field/step) so repeated estimates of
// the same field land on the same replica set and its feature cache;
// anonymous buffers route by a cheap content fingerprint (shape, bound,
// and a bounded sample of the data) so identical payloads still converge
// on one owner without hashing arbitrarily large buffers.
func routingKey(req *EstimateRequest) string {
	if req.Dataset != "" || req.Field != "" {
		return fmt.Sprintf("%s/%s/%d", req.Dataset, req.Field, req.Step)
	}
	h := fnv.New64a()
	var scratch [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	put(uint64(req.Rows))
	put(uint64(req.Cols))
	put(uint64(len(req.Data)))
	put(math.Float64bits(req.Eps))
	const sample = 64
	stride := 1
	if len(req.Data) > sample {
		stride = len(req.Data) / sample
	}
	for i := 0; i < len(req.Data); i += stride {
		put(math.Float64bits(req.Data[i]))
	}
	return fmt.Sprintf("anon/%x", h.Sum64())
}

// readBodyBytes reads the whole request body under the size cap, so a
// clustered handler can both decode it locally and forward the raw bytes
// unchanged.
func (s *Server) readBodyBytes(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, classifyBodyError(err)
	}
	return body, nil
}

// strictDecode applies the decodeBody contract (unknown fields and
// trailing data rejected) to an already-read body.
func strictDecode(data []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return classifyBodyError(err)
	}
	if _, err := dec.Token(); err != io.EOF {
		if err == nil {
			err = errors.New("trailing data after JSON document")
		}
		return classifyBodyError(err)
	}
	return nil
}

// routeEstimate decides where one decoded estimate runs. It returns
// handled=true when a remote owner already answered (the response has
// been relayed); otherwise the caller serves locally with the returned
// degraded flag — true when forwarding was attempted and the whole owner
// set was unusable.
func (s *Server) routeEstimate(ctx context.Context, w http.ResponseWriter, r *http.Request,
	req *EstimateRequest, raw []byte) (handled, degraded bool) {
	cl := s.cfg.Cluster
	key := routingKey(req)
	if forwardDepth(r) >= cl.MaxForwardDepth() || cl.OwnsLocally(key) {
		return false, false
	}
	res, err := cl.Do(ctx, cluster.DoRequest{
		Peers: cl.RemoteOwners(key),
		Path:  "/v1/estimate",
		RID:   obs.RequestID(ctx),
		Depth: forwardDepth(r),
		Body:  raw,
		Hedge: true,
	})
	if err != nil {
		s.cm.degraded.Add(1)
		s.cm.degradedM.Inc()
		s.cfg.Logf("server: estimate key %s: all owners unusable (%v); serving degraded locally", key, err)
		return false, true
	}
	s.relay(w, res)
	return true, false
}

// relay copies a forwarded peer response to the client verbatim, tagging
// which peer served it.
func (s *Server) relay(w http.ResponseWriter, res cluster.Result) {
	ct := res.ContentType
	if ct == "" {
		ct = "application/json"
	}
	w.Header().Set("Content-Type", ct)
	w.Header().Set(cluster.ServedByHeader, res.Peer)
	if res.RetryAfter != "" {
		w.Header().Set("Retry-After", res.RetryAfter)
	}
	w.WriteHeader(res.Status)
	if _, err := w.Write(res.Body); err != nil {
		s.cfg.Logf("server: relay response: %v", err)
	}
	if res.Status >= 200 && res.Status < 300 {
		s.served.Add(1)
		s.m.served.Inc()
	} else if res.Status >= 400 {
		// The owning peer classified the failure; mirror its class into
		// this node's counters so fleet-wide rates add up.
		if res.Status >= 500 {
			s.serverErrors.Add(1)
			s.m.serverErrors.Inc()
		} else {
			s.clientErrors.Add(1)
			s.m.clientErrors.Inc()
		}
	}
}

// batchGroup is one owner's share of a clustered batch.
type batchGroup struct {
	peer    string   // "" = local
	owners  []string // full remote owner preference order
	indices []int    // positions in the original request list
}

// groupBatch splits a batch by primary owner: requests this node
// replicates stay local (the cheapest correct choice — no forwarding,
// cache locality for this node's share of the keyspace); the rest group
// by their first remote owner.
func (s *Server) groupBatch(wire *BatchWireRequest) (local []int, remote []batchGroup) {
	cl := s.cfg.Cluster
	byPeer := make(map[string]*batchGroup)
	for i := range wire.Requests {
		key := routingKey(&wire.Requests[i])
		if cl.OwnsLocally(key) {
			local = append(local, i)
			continue
		}
		owners := cl.RemoteOwners(key)
		if len(owners) == 0 {
			local = append(local, i)
			continue
		}
		g, ok := byPeer[owners[0]]
		if !ok {
			g = &batchGroup{peer: owners[0], owners: owners}
			byPeer[owners[0]] = g
		}
		g.indices = append(g.indices, i)
	}
	for _, g := range byPeer {
		remote = append(remote, *g)
	}
	return local, remote
}

// forwardBatchGroup sends one owner group as a sub-batch and scatters the
// results into out. Sub-batches are not hedged: they are already spread
// across owners, and duplicating a large batch against a second replica
// doubles fleet work for a small tail win. It returns the indices to
// serve locally (degraded) when the group's owners were all unusable.
func (s *Server) forwardBatchGroup(ctx context.Context, g batchGroup, wire *BatchWireRequest,
	out *BatchWireResponse, mu *sync.Mutex, gi int) []int {
	sub := BatchWireRequest{Requests: make([]EstimateRequest, len(g.indices))}
	for j, i := range g.indices {
		sub.Requests[j] = wire.Requests[i]
	}
	body, err := json.Marshal(sub)
	if err != nil {
		return g.indices
	}
	rid := obs.RequestID(ctx)
	if rid != "" {
		// Distinct sub-batches of one request must not dedupe into each
		// other, so the group index joins the flight key.
		rid = fmt.Sprintf("%s#g%d", rid, gi)
	}
	res, err := s.cfg.Cluster.Do(ctx, cluster.DoRequest{
		Peers: g.owners,
		Path:  "/v1/batch",
		RID:   rid,
		Body:  body,
	})
	if err != nil {
		return g.indices
	}
	if res.Status != http.StatusOK {
		// The peer rejected the sub-batch outright (it would have been a
		// 4xx/5xx for us too, but per-item local serving still produces
		// per-item classifications, which is strictly more useful).
		return g.indices
	}
	var subResp BatchWireResponse
	if err := json.Unmarshal(res.Body, &subResp); err != nil || len(subResp.Results) != len(g.indices) {
		return g.indices
	}
	mu.Lock()
	for j, i := range g.indices {
		out.Results[i] = subResp.Results[j]
	}
	mu.Unlock()
	return nil
}

// runBatchClustered executes a decoded batch across the fleet: the local
// share runs on the engine, each remote group is forwarded to its owner
// concurrently, and any group whose owners are all unusable falls back to
// the local engine with its results marked degraded.
func (s *Server) runBatchClustered(ctx context.Context, w http.ResponseWriter, r *http.Request,
	wire *BatchWireRequest) {
	out := BatchWireResponse{Results: make([]BatchItem, len(wire.Requests))}

	local, remote := s.groupBatch(wire)
	if forwardDepth(r) >= s.cfg.Cluster.MaxForwardDepth() || len(remote) == 0 {
		// Hop budget spent (or everything is ours): the whole batch runs
		// here, never degraded — this node is an owner or the guard fired.
		s.runBatchLocal(ctx, wire, allIndices(len(wire.Requests)), false, &out)
		s.finishBatch(w, &out)
		return
	}

	var mu sync.Mutex
	var degradedIdx []int
	var wg sync.WaitGroup
	for gi, g := range remote {
		wg.Add(1)
		go func(gi int, g batchGroup) {
			defer wg.Done()
			if fallback := s.forwardBatchGroup(ctx, g, wire, &out, &mu, gi); len(fallback) > 0 {
				mu.Lock()
				degradedIdx = append(degradedIdx, fallback...)
				mu.Unlock()
			}
		}(gi, g)
	}
	// The local share overlaps with the forwards.
	s.runBatchLocal(ctx, wire, local, false, &out)
	wg.Wait()

	if len(degradedIdx) > 0 {
		s.cm.degraded.Add(uint64(len(degradedIdx)))
		for range degradedIdx {
			s.cm.degradedM.Inc()
		}
		s.cfg.Logf("server: batch: %d request(s) served degraded locally", len(degradedIdx))
		s.runBatchLocal(ctx, wire, degradedIdx, true, &out)
	}
	s.finishBatch(w, &out)
}

func allIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// finishBatch writes the merged batch response.
func (s *Server) finishBatch(w http.ResponseWriter, out *BatchWireResponse) {
	s.served.Add(1)
	s.m.served.Inc()
	if s.clustered() {
		w.Header().Set(cluster.ServedByHeader, s.cfg.Cluster.Self())
	}
	s.writeJSON(w, http.StatusOK, *out)
}

// runBatchLocal runs the selected indices on the local engine and fills
// their slots, marking results degraded when requested. It reuses the
// single-node batch semantics: invalid requests keep their slots with
// typed errors, valid ones run concurrently.
func (s *Server) runBatchLocal(ctx context.Context, wire *BatchWireRequest, indices []int,
	degraded bool, out *BatchWireResponse) {
	if len(indices) == 0 {
		return
	}
	items := s.estimateItems(ctx, wire, indices, degraded)
	for j, i := range indices {
		out.Results[i] = items[j]
	}
}

// estimateItems runs the selected batch indices on the local engine and
// returns their wire items in the same order. It mirrors the single-node
// batch semantics: structurally invalid requests keep their slots with
// typed errors, valid ones run concurrently, and per-request engine
// failures classify individually.
func (s *Server) estimateItems(ctx context.Context, wire *BatchWireRequest, indices []int,
	degraded bool) []BatchItem {
	items := make([]BatchItem, len(indices))
	reqs := make([]batch.Request, 0, len(indices))
	validPos := make([]int, 0, len(indices))
	for j, i := range indices {
		buf, err := wire.Requests[i].buffer()
		if err != nil {
			items[j] = s.batchErrorItem(err)
			continue
		}
		reqs = append(reqs, batch.Request{Buf: buf, Eps: wire.Requests[i].Eps})
		validPos = append(validPos, j)
	}
	if len(reqs) == 0 {
		return items
	}
	ests, err := s.engine.EstimateAllContext(ctx, reqs)
	var agg *crerr.AggregateError
	if err != nil && !errors.As(err, &agg) {
		// Whole-batch failure (cancellation): every valid slot reports it.
		for _, j := range validPos {
			items[j] = s.batchErrorItem(err)
		}
		return items
	}
	for vi, j := range validPos {
		if agg != nil {
			if perReq := agg.ByIndex(vi); perReq != nil {
				items[j] = s.batchErrorItem(perReq)
				continue
			}
		}
		e := ests[vi]
		items[j] = BatchItem{Result: &EstimateResponse{CR: e.CR, Lo: e.Lo, Hi: e.Hi, Degraded: degraded}}
	}
	return items
}

// batchErrorItem classifies one per-request failure into its wire item,
// bumping the matching error counter.
func (s *Server) batchErrorItem(err error) BatchItem {
	kind, status := classify(err)
	if status >= 500 {
		s.serverErrors.Add(1)
		s.m.serverErrors.Inc()
	} else {
		s.clientErrors.Add(1)
		s.m.clientErrors.Inc()
	}
	return BatchItem{Error: &WireError{Kind: kind, Message: err.Error()}}
}

// clusterServerMetrics are the server-side cluster counters (the routing
// client's own metrics live in internal/cluster).
type clusterServerMetrics struct {
	degradedM *obs.Counter
	degraded  atomic.Uint64
}

func newClusterServerMetrics(r *obs.Registry) clusterServerMetrics {
	return clusterServerMetrics{degradedM: r.Counter("cluster_degraded_total")}
}

// ClusterBlock is the /statsz cluster section: the routing layer's
// snapshot plus this node's degraded-service count.
type ClusterBlock struct {
	cluster.Stats
	// Degraded counts requests answered from the local model because
	// every remote owner was unusable.
	Degraded uint64 `json:"degraded"`
}

func (s *Server) clusterBlock() *ClusterBlock {
	if !s.clustered() {
		return nil
	}
	return &ClusterBlock{Stats: s.cfg.Cluster.Stats(), Degraded: s.cm.degraded.Load()}
}
