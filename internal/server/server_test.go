package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/crestlab/crest/internal/batch"
	"github.com/crestlab/crest/internal/core"
	"github.com/crestlab/crest/internal/featcache"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/predictors"
)

// trainedEstimator fits a small model on synthetic samples.
func trainedEstimator(t testing.TB) *core.Estimator {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	samples := make([]core.Sample, 60)
	for i := range samples {
		f := make([]float64, 5)
		for j := range f {
			f[j] = rng.NormFloat64()
		}
		samples[i] = core.Sample{Features: f, CR: 1 + 8*math.Exp(0.4*f[0]-0.2*f[3])}
	}
	est, err := core.Train(samples, core.Config{Predictors: predictors.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// testBuffer builds a smooth rows×cols buffer.
func testBuffer(rows, cols int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, rows*cols)
	for i := range data {
		r, c := i/cols, i%cols
		data[i] = math.Sin(float64(r)/5)*math.Cos(float64(c)/7) + 0.01*rng.NormFloat64()
	}
	return data
}

// testServer wires an estimator, an optionally slowed feature cache and a
// Server into an httptest listener.
type testServer struct {
	srv  *Server
	ts   *httptest.Server
	gate chan struct{} // close to release gated feature computations
}

// newTestServer builds the stack. When gated is true, every dataset-
// feature computation blocks until the gate closes — the deterministic
// way to hold inflight slots and drive the server to saturation.
func newTestServer(t testing.TB, cfg Config, gated bool) *testServer {
	t.Helper()
	est := trainedEstimator(t)
	pcfg := est.PredictorConfig()
	gate := make(chan struct{})
	var dset featcache.DatasetFunc
	if gated {
		dset = func(buf *grid.Buffer, c predictors.Config) (predictors.DatasetFeatures, error) {
			<-gate
			return predictors.ComputeDataset(buf, c)
		}
	}
	cache := featcache.NewWithCompute(pcfg, dset, nil)
	cfg.Engine = batch.New(est, cache, 8)
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &testServer{srv: srv, ts: ts, gate: gate}
}

// estimateBody marshals a valid single-estimate request.
func estimateBody(t testing.TB, rows, cols int, seed int64) []byte {
	t.Helper()
	body, err := json.Marshal(EstimateRequest{
		Rows: rows, Cols: cols, Data: testBuffer(rows, cols, seed), Eps: 1e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postJSON(t testing.TB, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestEstimateEndpoint(t *testing.T) {
	env := newTestServer(t, Config{}, false)
	resp, body := postJSON(t, env.ts.URL+"/v1/estimate", estimateBody(t, 24, 24, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var er EstimateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if !(er.CR >= 1) || er.Lo > er.Hi {
		t.Fatalf("implausible estimate %+v", er)
	}
	if er.CR < er.Lo || er.CR > er.Hi {
		// The point estimate is clamped to [1, cap]; it can leave the raw
		// interval only at the clamp boundary.
		if er.CR != 1 && er.CR != 100 {
			t.Fatalf("point estimate outside interval: %+v", er)
		}
	}
}

func TestEstimateMatchesDirectPath(t *testing.T) {
	est := trainedEstimator(t)
	pcfg := est.PredictorConfig()
	cache := featcache.New(pcfg)
	srv, err := New(Config{Engine: batch.New(est, cache, 4)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rows, cols := 24, 24
	data := testBuffer(rows, cols, 5)
	resp, body := postJSON(t, ts.URL+"/v1/estimate", mustJSON(t, EstimateRequest{
		Rows: rows, Cols: cols, Data: data, Eps: 1e-3,
	}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got EstimateResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	buf, err := grid.FromSlice(rows, cols, append([]float64(nil), data...))
	if err != nil {
		t.Fatal(err)
	}
	feats, err := core.FeaturesOf(buf, 1e-3, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := est.Estimate(feats)
	if err != nil {
		t.Fatal(err)
	}
	// JSON float64 round trip is exact; the served numbers must be the
	// direct path's bit for bit.
	if got.CR != want.CR || got.Lo != want.Lo || got.Hi != want.Hi {
		t.Fatalf("served %+v != direct %+v", got, want)
	}
}

func mustJSON(t testing.TB, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBatchEndpointPerRequestErrors(t *testing.T) {
	env := newTestServer(t, Config{}, false)
	rows, cols := 24, 24
	good := EstimateRequest{Rows: rows, Cols: cols, Data: testBuffer(rows, cols, 2), Eps: 1e-3}
	badShape := EstimateRequest{Rows: 4, Cols: 4, Data: []float64{1, 2}, Eps: 1e-3}
	badDims := EstimateRequest{Rows: -1, Cols: 4, Data: nil, Eps: 1e-3}
	badEps := EstimateRequest{Rows: rows, Cols: cols, Data: testBuffer(rows, cols, 3), Eps: -1}

	resp, body := postJSON(t, env.ts.URL+"/v1/batch",
		mustJSON(t, BatchWireRequest{Requests: []EstimateRequest{good, badShape, badDims, badEps}}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out BatchWireResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 4 {
		t.Fatalf("got %d results", len(out.Results))
	}
	if out.Results[0].Result == nil || out.Results[0].Error != nil {
		t.Errorf("good request failed: %+v", out.Results[0].Error)
	}
	wantKinds := []string{"", "invalid_buffer", "invalid_buffer", "invalid_buffer"}
	for i := 1; i < 4; i++ {
		if out.Results[i].Error == nil {
			t.Errorf("request %d: invalid input accepted", i)
			continue
		}
		if out.Results[i].Error.Kind != wantKinds[i] {
			t.Errorf("request %d: kind %q, want %q", i, out.Results[i].Error.Kind, wantKinds[i])
		}
	}
}

func TestInvalidBodyAndMethodRouting(t *testing.T) {
	env := newTestServer(t, Config{}, false)
	resp, _ := postJSON(t, env.ts.URL+"/v1/estimate", []byte("{not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
	r, err := http.Get(env.ts.URL + "/v1/estimate")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET estimate: status %d, want 405", r.StatusCode)
	}
}

func TestHealthReadyStatsEndpoints(t *testing.T) {
	env := newTestServer(t, Config{}, false)
	for _, path := range []string{"/healthz", "/readyz"} {
		r, err := http.Get(env.ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, r.StatusCode)
		}
	}
	// Serve one estimate so the counters move.
	postJSON(t, env.ts.URL+"/v1/estimate", estimateBody(t, 24, 24, 7))

	r, err := http.Get(env.ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	var st StatsPayload
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("statsz not JSON: %v: %s", err, body)
	}
	if st.Server.Served != 1 || st.Server.Accepted != 1 {
		t.Errorf("server counters %+v", st.Server)
	}
	if st.Engine.Requests != 1 || st.Engine.Cache.DatasetMisses != 1 {
		t.Errorf("engine counters %+v", st.Engine)
	}
	if !st.Server.Ready {
		t.Error("server not ready")
	}
}

func TestRequestDeadlineMapsTo504(t *testing.T) {
	est := trainedEstimator(t)
	pcfg := est.PredictorConfig()
	slow := func(buf *grid.Buffer, c predictors.Config) (predictors.DatasetFeatures, error) {
		time.Sleep(150 * time.Millisecond)
		return predictors.ComputeDataset(buf, c)
	}
	cache := featcache.NewWithCompute(pcfg, slow, nil)
	srv, err := New(Config{Engine: batch.New(est, cache, 2), RequestTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/estimate", estimateBody(t, 24, 24, 9))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	var we map[string]WireError
	if err := json.Unmarshal(body, &we); err != nil {
		t.Fatal(err)
	}
	if we["error"].Kind != "deadline_exceeded" {
		t.Errorf("kind %q", we["error"].Kind)
	}
	if srv.Stats().Timeouts != 1 {
		t.Errorf("timeouts counter %d", srv.Stats().Timeouts)
	}
}

func TestSetReadyFlipsAdmission(t *testing.T) {
	env := newTestServer(t, Config{}, false)
	env.srv.SetReady(false)
	r, err := http.Get(env.ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while unready: %d", r.StatusCode)
	}
	resp, _ := postJSON(t, env.ts.URL+"/v1/estimate", estimateBody(t, 24, 24, 1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("estimate while unready: %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("no Retry-After on unready 503")
	}
	env.srv.SetReady(true)
	resp, _ = postJSON(t, env.ts.URL+"/v1/estimate", estimateBody(t, 24, 24, 1))
	if resp.StatusCode != http.StatusOK {
		t.Errorf("estimate after re-ready: %d", resp.StatusCode)
	}
}

func TestAdmitQueueReleasesOnCallerCancel(t *testing.T) {
	env := newTestServer(t, Config{MaxInflight: 1, MaxQueue: 4}, true)
	// Fill the only slot.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postJSON(t, env.ts.URL+"/v1/estimate", estimateBody(t, 24, 24, 1))
	}()
	waitFor(t, func() bool { return env.srv.Stats().Inflight == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	release, err := env.srv.admit(ctx)
	if err == nil {
		release()
		t.Fatal("admit succeeded with a full semaphore")
	}
	if env.srv.Stats().Queued != 0 {
		t.Errorf("queue slot leaked: %d", env.srv.Stats().Queued)
	}
	close(env.gate)
	wg.Wait()
}

// waitFor polls cond for up to 2s.
func waitFor(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never held")
}

func TestNewRequiresEngine(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil engine accepted")
	}
}

func TestRetryAfterRounding(t *testing.T) {
	est := trainedEstimator(t)
	for _, tc := range []struct {
		d    time.Duration
		want string
	}{{time.Second, "1"}, {1500 * time.Millisecond, "2"}, {200 * time.Millisecond, "1"}} {
		srv, err := New(Config{Engine: batch.New(est, nil, 1), RetryAfter: tc.d})
		if err != nil {
			t.Fatal(err)
		}
		rec := httptest.NewRecorder()
		srv.setRetryAfter(rec)
		if got := rec.Header().Get("Retry-After"); got != tc.want {
			t.Errorf("RetryAfter(%s) header %q, want %q", tc.d, got, tc.want)
		}
	}
}

func TestStatszJSONShapes(t *testing.T) {
	env := newTestServer(t, Config{}, false)
	r, err := http.Get(env.ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"server", "engine"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("statsz missing %q: %s", key, body)
		}
	}
	var eng map[string]json.RawMessage
	if err := json.Unmarshal(raw["engine"], &eng); err != nil {
		t.Fatal(err)
	}
	if _, ok := eng["Cache"]; !ok {
		t.Errorf("engine stats missing feature-cache counters: %s", raw["engine"])
	}
}

func ExampleServer() {
	// Construct a server over a trained engine, then drain it.
	var s *Server
	_ = s
	fmt.Println("see TestEstimateEndpoint")
	// Output: see TestEstimateEndpoint
}
