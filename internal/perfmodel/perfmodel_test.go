package perfmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestElfvingBasics(t *testing.T) {
	d := Dist{Mu: 5, Sigma: 2}
	// n = 1: expected max is the mean.
	if e := ElfvingMax(d, 1); !almost(e, 5, 1e-9) {
		t.Errorf("ElfvingMax(n=1) = %g", e)
	}
	if e := ElfvingMax(d, 0); e != 0 {
		t.Errorf("ElfvingMax(n=0) = %g", e)
	}
	// Monotone nondecreasing in n.
	prev := math.Inf(-1)
	for _, n := range []int{1, 2, 4, 10, 100, 10000} {
		e := ElfvingMax(d, n)
		if e < prev {
			t.Errorf("ElfvingMax not monotone at n=%d: %g < %g", n, e, prev)
		}
		prev = e
	}
	// Zero variance: max = mean for any n.
	if e := ElfvingMax(Dist{Mu: 3}, 1000); !almost(e, 3, 1e-9) {
		t.Errorf("deterministic max = %g", e)
	}
}

func TestElfvingMatchesSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Dist{Mu: 10, Sigma: 3}
	n := 40
	trials := 20000
	var sum float64
	for trial := 0; trial < trials; trial++ {
		m := math.Inf(-1)
		for i := 0; i < n; i++ {
			v := d.Mu + d.Sigma*rng.NormFloat64()
			if v > m {
				m = v
			}
		}
		sum += m
	}
	sim := sum / float64(trials)
	model := ElfvingMax(d, n)
	if !almost(sim, model, 0.15) {
		t.Errorf("simulated max %g vs Elfving %g", sim, model)
	}
}

func TestW(t *testing.T) {
	d := Dist{Mu: 2, Sigma: 0}
	// 10 deterministic tasks on 5 procs: 2 waves of 2s.
	if w := W(d, 10, 5); !almost(w, 4, 1e-9) {
		t.Errorf("W = %g", w)
	}
	// Fewer tasks than processors: single wave over nt samples.
	if w := W(d, 3, 8); !almost(w, 2, 1e-9) {
		t.Errorf("W = %g", w)
	}
	if w := W(d, 0, 4); w != 0 {
		t.Errorf("W(0 tasks) = %g", w)
	}
	// Variance increases completion time.
	if W(Dist{Mu: 2, Sigma: 1}, 10, 5) <= W(d, 10, 5) {
		t.Error("stragglers free of charge")
	}
}

func TestDistAdd(t *testing.T) {
	s := Dist{Mu: 1, Sigma: 3}.Add(Dist{Mu: 2, Sigma: 4})
	if !almost(s.Mu, 3, 1e-12) || !almost(s.Sigma, 5, 1e-12) {
		t.Errorf("sum = %+v", s)
	}
}

func TestMakespanKnownCases(t *testing.T) {
	tasks := []float64{3, 3, 2, 2, 2}
	// 2 procs: optimal is 6 (3+3 | 2+2+2).
	if m := ExactMakespan(tasks, 2); !almost(m, 6, 1e-9) {
		t.Errorf("exact makespan = %g", m)
	}
	// 1 proc: sum.
	if m := ExactMakespan(tasks, 1); !almost(m, 12, 1e-9) {
		t.Errorf("serial makespan = %g", m)
	}
	// procs >= tasks: max.
	if m := ExactMakespan(tasks, 9); !almost(m, 3, 1e-9) {
		t.Errorf("fully parallel makespan = %g", m)
	}
	if m := ExactMakespan(nil, 3); m != 0 {
		t.Errorf("empty makespan = %g", m)
	}
}

// TestMakespanProperties: exact ≤ LPT ≤ (2 − 1/m)·exact, and exact ≥ both
// lower bounds (max task, total/m).
func TestMakespanProperties(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%10) + 1
		m := int(mRaw%4) + 1
		tasks := make([]float64, n)
		var total, maxT float64
		for i := range tasks {
			tasks[i] = rng.Float64()*10 + 0.1
			total += tasks[i]
			if tasks[i] > maxT {
				maxT = tasks[i]
			}
		}
		exact := ExactMakespan(tasks, m)
		lpt := LPTMakespan(tasks, m)
		lower := math.Max(maxT, total/float64(m))
		if exact < lower-1e-9 {
			return false
		}
		if lpt < exact-1e-9 {
			return false
		}
		return lpt <= (2-1/float64(m))*exact+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestUseCaseASpeedup(t *testing.T) {
	// Identical estimate and compressor cost with zero data-pred cost and
	// equal variance: speedup ≈ 1 for many searches.
	in := UseCaseAInput{
		Compressor: Dist{Mu: 1, Sigma: 0.5},
		EBPred:     Dist{Mu: 1, Sigma: 0.5},
		Searches:   1000,
		Procs:      10,
	}
	if s := UseCaseASpeedup(in); !almost(s, 1, 0.02) {
		t.Errorf("parity speedup = %g", s)
	}
	// Cheaper estimates: speedup > 1; more consistent estimates at equal
	// mean cost: also > 1 (the §VI-G observation).
	in.EBPred = Dist{Mu: 0.1, Sigma: 0.05}
	if s := UseCaseASpeedup(in); s <= 2 {
		t.Errorf("cheap-estimate speedup = %g", s)
	}
	in.EBPred = Dist{Mu: 1, Sigma: 0.05}
	if s := UseCaseASpeedup(in); s <= 1 {
		t.Errorf("consistency-only speedup = %g", s)
	}
}

func TestPaperWorkedExampleUseCaseA(t *testing.T) {
	// §VI-G: unit-cost compressor and predictors, σ_e = 0.33, 100k
	// iterations, 40 procs. Our W-based model gives ≈1.8×; the paper
	// reports 2.56×. Pin the value so regressions are visible.
	in := UseCaseAInput{
		Compressor: Dist{Mu: 1, Sigma: 1},
		DataPred:   Dist{Mu: 1, Sigma: 1},
		EBPred:     Dist{Mu: 1, Sigma: 0.33},
		Searches:   100000,
		Procs:      40,
	}
	s := UseCaseASpeedup(in)
	if s < 1.5 || s > 2.6 {
		t.Errorf("worked example speedup = %g, expected in [1.5, 2.6]", s)
	}
}

func TestUseCaseBSpeedup(t *testing.T) {
	in := UseCaseBInput{
		Compressors: []Dist{{Mu: 5}, {Mu: 3}, {Mu: 4}},
		OptIndex:    0,
		Estimate:    Dist{Mu: 1e-6},
		Procs:       1,
	}
	// Serial: (5+3+4 + 5) / (≈0 + 5) = 17/5.
	if s := UseCaseBSpeedup(in); !almost(s, 17.0/5, 0.01) {
		t.Errorf("serial speedup = %g", s)
	}
	in.Procs = 3
	// Parallel: (5 + 5) / (≈0 + 5) = 2.
	if s := UseCaseBSpeedup(in); !almost(s, 2, 0.01) {
		t.Errorf("parallel speedup = %g", s)
	}
}

func TestInversionProbabilityWorkedExample(t *testing.T) {
	// §V-D: CR means 1,2,3 (best 3), variance .1; error variances
	// .0625/.125/.25/.5 → ≈3.9/6.9/12.3/20.8% inversions.
	crMean := []float64{3, 2, 1}
	crVar := []float64{0.1, 0.1, 0.1}
	want := map[float64]float64{0.0625: 0.040, 0.125: 0.069, 0.25: 0.123, 0.5: 0.208}
	for ev, expected := range want {
		p := InversionProbability(crMean, crVar, []float64{ev, ev, ev})
		if !almost(p, expected, 0.004) {
			t.Errorf("errVar=%g: inversion %.4f, want ≈%.3f", ev, p, expected)
		}
	}
	// No estimates: lower inversion rate than any noisy case.
	base := InversionProbability(crMean, crVar, nil)
	if base >= 0.04 {
		t.Errorf("baseline inversion %.4f", base)
	}
	// Degenerate inputs.
	if p := InversionProbability([]float64{5}, []float64{0.1}, nil); p != 0 {
		t.Errorf("single compressor inversion = %g", p)
	}
	if p := InversionProbability([]float64{3, 1}, []float64{0, 0}, nil); p != 0 {
		t.Errorf("deterministic separated inversion = %g", p)
	}
	if p := InversionProbability([]float64{1, 3}, []float64{0, 0}, nil); p != 1 {
		t.Errorf("deterministic inverted = %g", p)
	}
}

func TestUseCaseCSpeedup(t *testing.T) {
	in := UseCaseCInput{
		Compressor: Dist{Mu: 1, Sigma: 0},
		Estimate:   Dist{Mu: 1e-9},
		Buffers:    64,
		MemBuffers: 0,
		Procs:      1,
		MissRate:   0,
	}
	// Serial with free estimates: exactly 2× (two passes become one).
	if s := UseCaseCSpeedup(in); !almost(s, 2, 1e-6) {
		t.Errorf("serial free-estimate speedup = %g", s)
	}
	// Misses eat into the speedup.
	in.MissRate = 0.5
	if s := UseCaseCSpeedup(in); s >= 2 {
		t.Errorf("missing speedup penalty: %g", s)
	}
	// Costly estimates can make it a slowdown.
	in.MissRate = 0
	in.Estimate = Dist{Mu: 3}
	if s := UseCaseCSpeedup(in); s >= 1 {
		t.Errorf("expensive estimates still speed up: %g", s)
	}
}

func TestTrainingSpeedup(t *testing.T) {
	in := TrainingInput{
		Pred0:      Dist{Mu: 2},
		Pred1:      Dist{Mu: 1},
		Compressor: Dist{Mu: 1},
		Buffers0:   100,
		Buffers1:   50,
		Procs:      1,
	}
	// (100·3) / (50·2) = 3.
	if s := TrainingSpeedup(in); !almost(s, 3, 1e-9) {
		t.Errorf("training speedup = %g", s)
	}
}

func TestSearchEBMonotoneCurve(t *testing.T) {
	curve := func(eps float64) float64 { return 5 * math.Pow(eps/1e-6, 0.3) }
	eb := SearchEB(curve, 20, 1e-8, 1e-1, 40)
	if got := curve(eb); !almost(got, 20, 0.1) {
		t.Errorf("search achieved CR %g, want ≈20", got)
	}
}

func TestErrorInjectionGrowsWithNoise(t *testing.T) {
	curve := func(eps float64) float64 { return 5 * math.Pow(eps/1e-6, 0.3) }
	res := ErrorInjection(curve, 20, 1e-8, 1e-1, 25,
		[]float64{0.005, 0.02, 0.08}, 60, 3)
	if len(res) != 3 {
		t.Fatalf("%d results", len(res))
	}
	if res[0].ErrPct > res[2].ErrPct {
		t.Errorf("error not growing with noise: %v", res)
	}
	if res[2].ErrPct <= 0 {
		t.Errorf("8%% noise produced zero deviation")
	}
}

func TestMeasureDist(t *testing.T) {
	d := MeasureDist([]float64{1, 2, 3})
	if !almost(d.Mu, 2, 1e-12) || d.Sigma <= 0 {
		t.Errorf("measured = %+v", d)
	}
}

func TestMetricCostModel(t *testing.T) {
	m := MetricCostModel{CPairs: 1e-9, COuter: 1e-9, CEigen: 1e-9}
	// Cost grows with p at fixed k.
	if m.Cost(128, 8, 1, 1) <= m.Cost(64, 8, 1, 1) {
		t.Error("cost not growing with p")
	}
	// The eigen term dominates at large k (the k⁶ blowup the block-size
	// ablation bench shows empirically).
	if m.DominantTerm(96, 32, 1, 1) != "eigen" {
		t.Errorf("dominant at k=32: %s", m.DominantTerm(96, 32, 1, 1))
	}
	if m.DominantTerm(512, 4, 1, 1) != "pairs" {
		t.Errorf("dominant at p=512,k=4: %s", m.DominantTerm(512, 4, 1, 1))
	}
	// Acceleration only helps the offloaded terms.
	slow := m.Cost(96, 16, 1, 1)
	fast := m.Cost(96, 16, 1, 100)
	if fast >= slow {
		t.Error("gamma does not accelerate")
	}
	pairsOnly := MetricCostModel{CPairs: 1e-9}
	if pairsOnly.Cost(96, 8, 1, 100) != pairsOnly.Cost(96, 8, 1, 1) {
		t.Error("gamma affected the CPU-only pairwise term")
	}
}

func TestFitMetricCostRecoversConstants(t *testing.T) {
	truth := MetricCostModel{CPairs: 2e-9, COuter: 5e-10, CEigen: 3e-11}
	var ps, ks []int
	var secs []float64
	for _, p := range []int{32, 64, 96, 128} {
		for _, k := range []int{4, 8, 16} {
			ps = append(ps, p)
			ks = append(ks, k)
			secs = append(secs, truth.Cost(p, k, 1, 1))
		}
	}
	got := FitMetricCost(ps, ks, secs, 1, 1)
	for i, pair := range [][2]float64{
		{truth.CPairs, got.CPairs}, {truth.COuter, got.COuter}, {truth.CEigen, got.CEigen},
	} {
		if math.Abs(pair[0]-pair[1]) > 0.05*pair[0] {
			t.Errorf("constant %d: fit %g vs truth %g", i, pair[1], pair[0])
		}
	}
}
