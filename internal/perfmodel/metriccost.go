package perfmodel

// metriccost.go implements the paper's §IV-C runtime complexity model for
// the error-bound-agnostic metric computation,
//
//	O( p²/(k·n_c) + p·k/(n_c·γ) + k⁶/γ ),
//
// where p is the buffer edge, k the tile edge, n_c the CPU scaling factor
// and γ the accelerator scaling factor. The three terms are the pairwise
// tile-norm pass, the per-tile outer products, and the k²×k² eigensolve of
// the CovSVD-trunc metric. In this pure-Go reproduction γ models the GPU
// the paper offloads to: γ=1 describes this library's CPU execution, and
// larger γ lets the §V speedup formulas explore what accelerated
// predictors would buy.

// MetricCostModel holds the calibrated constants of the three terms (in
// seconds per unit work).
type MetricCostModel struct {
	// CPairs scales the p²/(k·n_c) pairwise term.
	CPairs float64
	// COuter scales the p·k/(n_c·γ) outer-product term.
	COuter float64
	// CEigen scales the k⁶/γ eigendecomposition term.
	CEigen float64
}

// Cost returns the modeled runtime for a p×p buffer with tile edge k on
// nc CPU units and accelerator factor gamma (≥ 1).
func (m MetricCostModel) Cost(p, k int, nc, gamma float64) float64 {
	if nc < 1 {
		nc = 1
	}
	if gamma < 1 {
		gamma = 1
	}
	fp, fk := float64(p), float64(k)
	return m.CPairs*fp*fp*fp*fp/(fk*fk*fk*fk*nc) + // B² pairs × k² work = p⁴/k²
		m.COuter*fp*fp*fk*fk/(nc*gamma) + // B tiles × k⁴ outer work
		m.CEigen*fk*fk*fk*fk*fk*fk/gamma // (k²)³ eigensolve
}

// DominantTerm names the asymptotically dominating term at (p, k).
func (m MetricCostModel) DominantTerm(p, k int, nc, gamma float64) string {
	fp, fk := float64(p), float64(k)
	pairs := m.CPairs * fp * fp * fp * fp / (fk * fk * fk * fk * nc)
	outer := m.COuter * fp * fp * fk * fk / (nc * gamma)
	eigen := m.CEigen * fk * fk * fk * fk * fk * fk / gamma
	switch {
	case pairs >= outer && pairs >= eigen:
		return "pairs"
	case eigen >= outer:
		return "eigen"
	default:
		return "outer"
	}
}

// FitMetricCost calibrates the model from measured (p, k, seconds)
// samples by non-negative least squares on the three basis terms (solved
// by projected coordinate descent — three variables, so exact enough).
func FitMetricCost(ps, ks []int, secs []float64, nc, gamma float64) MetricCostModel {
	n := len(secs)
	basis := make([][3]float64, n)
	for i := 0; i < n; i++ {
		fp, fk := float64(ps[i]), float64(ks[i])
		basis[i] = [3]float64{
			fp * fp * fp * fp / (fk * fk * fk * fk * nc),
			fp * fp * fk * fk / (nc * gamma),
			fk * fk * fk * fk * fk * fk / gamma,
		}
	}
	var c [3]float64
	for iter := 0; iter < 200; iter++ {
		for j := 0; j < 3; j++ {
			var num, den float64
			for i := 0; i < n; i++ {
				resid := secs[i]
				for l := 0; l < 3; l++ {
					if l != j {
						resid -= c[l] * basis[i][l]
					}
				}
				num += resid * basis[i][j]
				den += basis[i][j] * basis[i][j]
			}
			if den > 0 {
				c[j] = num / den
			}
			if c[j] < 0 {
				c[j] = 0
			}
		}
	}
	return MetricCostModel{CPairs: c[0], COuter: c[1], CEigen: c[2]}
}
