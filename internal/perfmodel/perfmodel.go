// Package perfmodel implements the analytic speedup models of §V: the
// Elfving expected-maximum of Gaussian task times, the parallel completion
// time W(μ, σ, n_t, n_p), minimal-makespan scheduling (exact for realistic
// compressor counts, LPT list scheduling with the classic 2−1/m bound
// otherwise), the use-case A/B/C speedup formulas, the training-time
// model, and the use-case-B inversion probability of picking the wrong
// compressor under estimate noise.
package perfmodel

import (
	"math"
	"sort"

	"github.com/crestlab/crest/internal/stats"
)

// Dist is a Gaussian runtime model N(Mu, Sigma) for a task family
// (Table I).
type Dist struct {
	Mu, Sigma float64
}

// Add returns the distribution of the sum of independent Gaussians.
func (d Dist) Add(o Dist) Dist {
	return Dist{Mu: d.Mu + o.Mu, Sigma: math.Sqrt(d.Sigma*d.Sigma + o.Sigma*o.Sigma)}
}

// ElfvingMax returns the asymptotic expected maximum of n samples from
// N(μ, σ): μ + σ·Φ⁻¹((n − π/8)/(n − π/4 + 1)) (Elfving 1947, §V-B).
func ElfvingMax(d Dist, n int) float64 {
	if n <= 0 {
		return 0
	}
	p := (float64(n) - math.Pi/8) / (float64(n) - math.Pi/4 + 1)
	if p <= 0 {
		p = 1e-9
	}
	if p >= 1 {
		p = 1 - 1e-9
	}
	return d.Mu + d.Sigma*stats.NormalQuantile(p)
}

// W returns the expected time to run nt i.i.d. Gaussian tasks on np
// processors: W(μ, σ, n_t, n_p) = ⌈n_t/n_p⌉·(μ + σ·Φ⁻¹((n_p−π/8)/(n_p−π/4+1))).
func W(d Dist, nt, np int) float64 {
	if nt <= 0 || np <= 0 {
		return 0
	}
	waves := (nt + np - 1) / np
	perWave := np
	if nt < np {
		perWave = nt
	}
	return float64(waves) * ElfvingMax(d, perWave)
}

// LPTMakespan schedules tasks with longest-processing-time-first list
// scheduling on np processors and returns the makespan; the classic
// Graham bound guarantees ≤ (2 − 1/np)·OPT (§V-D).
func LPTMakespan(tasks []float64, np int) float64 {
	if len(tasks) == 0 || np <= 0 {
		return 0
	}
	sorted := append([]float64(nil), tasks...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	loads := make([]float64, np)
	for _, t := range sorted {
		mi := 0
		for i := 1; i < np; i++ {
			if loads[i] < loads[mi] {
				mi = i
			}
		}
		loads[mi] += t
	}
	var m float64
	for _, l := range loads {
		if l > m {
			m = l
		}
	}
	return m
}

// ExactMakespan returns the minimal makespan of tasks on np processors by
// branch and bound, practical for the ≤ 30 compressors of real use cases
// (§V-D notes open-source solvers handle these sizes in under a second).
// It falls back to LPT beyond 24 tasks.
func ExactMakespan(tasks []float64, np int) float64 {
	n := len(tasks)
	if n == 0 || np <= 0 {
		return 0
	}
	if np == 1 {
		var s float64
		for _, t := range tasks {
			s += t
		}
		return s
	}
	if np >= n {
		var m float64
		for _, t := range tasks {
			if t > m {
				m = t
			}
		}
		return m
	}
	if n > 24 {
		return LPTMakespan(tasks, np)
	}
	sorted := append([]float64(nil), tasks...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	best := LPTMakespan(sorted, np) // upper bound; also a feasible answer
	loads := make([]float64, np)
	var lower float64
	var total float64
	for _, t := range sorted {
		total += t
	}
	lower = math.Max(sorted[0], total/float64(np))
	var dfs func(i int)
	dfs = func(i int) {
		if best <= lower*(1+1e-12) {
			return // cannot beat the theoretical lower bound
		}
		if i == len(sorted) {
			var m float64
			for _, l := range loads {
				if l > m {
					m = l
				}
			}
			if m < best {
				best = m
			}
			return
		}
		seen := map[float64]bool{} // symmetric loads prune
		for p := 0; p < np; p++ {
			if seen[loads[p]] {
				continue
			}
			seen[loads[p]] = true
			if loads[p]+sorted[i] >= best {
				continue
			}
			loads[p] += sorted[i]
			dfs(i + 1)
			loads[p] -= sorted[i]
		}
	}
	dfs(0)
	return best
}

// UseCaseAInput parameterizes the CR-target-search model (§V-C).
type UseCaseAInput struct {
	Compressor Dist // c: one compressor invocation
	DataPred   Dist // d: dataset-specific predictors (error-bound agnostic)
	EBPred     Dist // e: error-bound-specific predictors
	Estimate   Dist // y: computing one model estimate
	Searches   int  // n_s
	Procs      int  // n_p
}

// UseCaseASpeedup returns the expected parallel speedup of estimate-driven
// target search over compressor-driven search:
//
//	W(μ_c, σ_c, n_s, n_p) / (μ_d + μ_c + W(μ_e+μ_y, √(σ_e²+σ_y²), n_s, n_p)).
func UseCaseASpeedup(in UseCaseAInput) float64 {
	num := W(in.Compressor, in.Searches, in.Procs)
	den := in.DataPred.Mu + in.Compressor.Mu + W(in.EBPred.Add(in.Estimate), in.Searches, in.Procs)
	if den <= 0 {
		return math.Inf(1)
	}
	return num / den
}

// UseCaseBInput parameterizes the best-compressor-selection model (§V-D).
type UseCaseBInput struct {
	Compressors []Dist // c_i: per-compressor invocation times
	OptIndex    int    // index of the compressor that will be re-run
	DataPred    Dist
	EBPred      Dist
	Estimate    Dist
	Procs       int
}

// UseCaseBSpeedup returns
//
//	(M(μ_{c_i}, n_p) + μ_{c_opt}) / (μ_e + μ_d + W(μ_y, σ_y, n_c, n_p) + μ_{c_opt}).
func UseCaseBSpeedup(in UseCaseBInput) float64 {
	mus := make([]float64, len(in.Compressors))
	for i, c := range in.Compressors {
		mus[i] = c.Mu
	}
	muOpt := 0.0
	if in.OptIndex >= 0 && in.OptIndex < len(mus) {
		muOpt = mus[in.OptIndex]
	}
	num := ExactMakespan(mus, in.Procs) + muOpt
	den := in.EBPred.Mu + in.DataPred.Mu + W(in.Estimate, len(mus), in.Procs) + muOpt
	if den <= 0 {
		return math.Inf(1)
	}
	return num / den
}

// InversionProbability returns the probability of selecting a suboptimal
// compressor in use case B: compressor 0 must be the true best;
// crVar[i] is the CR sampling variance and errVar[i] the estimate error
// variance added when switching to estimates (zero slice for the
// no-estimate case):
//
//	1 − Π_{i≥1} Φ((μ_0 − μ_i)/√(σ_0² + σ_i² + σ_err0² + σ_erri²)).
func InversionProbability(crMean, crVar, errVar []float64) float64 {
	if len(crMean) < 2 {
		return 0
	}
	pCorrect := 1.0
	for i := 1; i < len(crMean); i++ {
		v := crVar[0] + crVar[i]
		if errVar != nil {
			v += errVar[0] + errVar[i]
		}
		if v <= 0 {
			if crMean[0] > crMean[i] {
				continue
			}
			return 1
		}
		pCorrect *= stats.NormalCDF((crMean[0] - crMean[i]) / math.Sqrt(v))
	}
	return 1 - pCorrect
}

// UseCaseCInput parameterizes the parallel-aggregated-write model (§V-E).
type UseCaseCInput struct {
	Compressor Dist
	DataPred   Dist
	EBPred     Dist
	Estimate   Dist
	Buffers    int     // n_b
	MemBuffers int     // n_m: compressed buffers that fit per processor
	Procs      int     // n_p
	MissRate   float64 // m: probability of under-prediction
}

// UseCaseCSpeedup returns
//
//	(W(c, n_b, n_p) + W(c, n_b−n_m, n_p)) / (T_est + W(c, n_b, n_p) + T_miss)
//
// with T_est = W(μ_e+μ_d+μ_y, √(σ_e²+σ_d²+σ_y²), n_b, n_p) and
// T_miss = W(c, max(0, ⌈m·n_b/n_p − n_m⌉), n_p).
func UseCaseCSpeedup(in UseCaseCInput) float64 {
	c := in.Compressor
	num := W(c, in.Buffers, in.Procs) + W(c, in.Buffers-in.MemBuffers, in.Procs)
	tEst := W(in.EBPred.Add(in.DataPred).Add(in.Estimate), in.Buffers, in.Procs)
	nMiss := int(math.Ceil(in.MissRate*float64(in.Buffers)/float64(in.Procs) - float64(in.MemBuffers)))
	if nMiss < 0 {
		nMiss = 0
	}
	tMiss := W(c, nMiss, in.Procs)
	den := tEst + W(c, in.Buffers, in.Procs) + tMiss
	if den <= 0 {
		return math.Inf(1)
	}
	return num / den
}

// TrainingInput parameterizes the model-production-time comparison (§V-F):
// the baseline strategy (suffix 0) versus a cheaper strategy (suffix 1)
// differing in predictor speed and training-set size.
type TrainingInput struct {
	Fit0, Fit1         Dist // μ_t: model fitting time
	Pred0, Pred1       Dist // combined d+e predictor time per buffer
	Compressor         Dist
	Buffers0, Buffers1 int // n_b vs n_b'
	Procs              int
}

// TrainingSpeedup returns
//
//	(μ_t + W(μ_d+μ_e+μ_c, √(σ_d²+σ_e²+σ_c²), n_b, n_p)) /
//	(μ_t' + W(μ_d'+μ_e'+μ_c, √(σ_d'²+σ_e'²+σ_c²), n_b', n_p)).
func TrainingSpeedup(in TrainingInput) float64 {
	num := in.Fit0.Mu + W(in.Pred0.Add(in.Compressor), in.Buffers0, in.Procs)
	den := in.Fit1.Mu + W(in.Pred1.Add(in.Compressor), in.Buffers1, in.Procs)
	if den <= 0 {
		return math.Inf(1)
	}
	return num / den
}
