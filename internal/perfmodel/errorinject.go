package perfmodel

import (
	"math"
	"math/rand"

	"github.com/crestlab/crest/internal/stats"
)

// errorinject.go reproduces the Fig. 3 study: prediction errors are
// modeled as Gaussian noise proportional to the true compression ratio and
// injected into the CR oracle driving a use-case-A target search; the
// deviation of the achieved ratio from the unperturbed solution measures
// how estimate inaccuracy degrades the search exponentially.

// Curve maps an error bound to the (true) compression ratio; it must be
// nondecreasing in the bound, as error-bounded compressors are.
type Curve func(eps float64) float64

// SearchEB binary-searches [loEps, hiEps] (log scale) for the bound whose
// oracle CR is closest to target, using iters oracle calls.
func SearchEB(oracle Curve, target, loEps, hiEps float64, iters int) float64 {
	lo, hi := math.Log(loEps), math.Log(hiEps)
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		if oracle(math.Exp(mid)) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Exp((lo + hi) / 2)
}

// InjectionResult is one noise level of the Fig. 3 study.
type InjectionResult struct {
	NoisePct float64 // injected error std as % of true CR
	ErrPct   float64 // median |achieved − unperturbed| as % of true CR
}

// ErrorInjection runs the study: for each noise level (a fraction of the
// true CR, e.g. 0.005 for 0.5%), repeat the noisy search trials times and
// report the median deviation of the achieved CR from the noise-free
// solution, as a percentage of the noise-free solution.
func ErrorInjection(truth Curve, target, loEps, hiEps float64, iters int, levels []float64, trials int, seed int64) []InjectionResult {
	cleanEB := SearchEB(truth, target, loEps, hiEps, iters)
	cleanCR := truth(cleanEB)
	rng := rand.New(rand.NewSource(seed))
	out := make([]InjectionResult, 0, len(levels))
	for _, level := range levels {
		devs := make([]float64, trials)
		for t := 0; t < trials; t++ {
			noisy := func(eps float64) float64 {
				cr := truth(eps)
				return cr + rng.NormFloat64()*level*cr
			}
			eb := SearchEB(noisy, target, loEps, hiEps, iters)
			achieved := truth(eb)
			devs[t] = 100 * math.Abs(achieved-cleanCR) / math.Max(cleanCR, 1e-12)
		}
		out = append(out, InjectionResult{NoisePct: 100 * level, ErrPct: stats.Median(devs)})
	}
	return out
}

// MeasureDist summarizes timing samples (seconds) as a Gaussian runtime
// model, the measurement step feeding the §V formulas.
func MeasureDist(samples []float64) Dist {
	mu, sd := stats.MeanStd(samples)
	return Dist{Mu: mu, Sigma: sd}
}
