// Package cluster is the coordinator-free replication layer of the
// serving boundary: a static peer list, a consistent-hash ring that maps
// every estimation key to an owner replica set, and a failure-aware
// forwarding client — per-peer health probing with ejection, a
// closed/open/half-open circuit breaker per peer, request hedging against
// backup replicas, and per-peer Retry-After holds — so a fleet of
// `crest serve` nodes keeps answering when individual replicas crash,
// brown out, or flap, without any elected coordinator.
//
// The division of labor with internal/server: this package knows peers,
// routing and failure state but nothing about wire formats; the server
// knows the HTTP API and asks the cluster two questions — "who owns this
// key?" and "forward these bytes to the owners, surviving what you can".
// Degradation policy (serve locally and mark the response degraded when
// every owner is unusable) also lives in the server, because only it can
// produce a local answer.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodes is the number of virtual ring points per peer. 64 points keeps
// the per-peer load imbalance of FNV-placed tokens within a few percent
// for small static fleets while the full ring stays tiny (N·64 entries).
const vnodes = 64

// ringPoint is one virtual node: a hash position owned by a peer.
type ringPoint struct {
	hash uint64
	peer int // index into the peer list
}

// Ring is an immutable consistent-hash ring over a static peer list.
// Construct with NewRing; methods are safe for concurrent use.
type Ring struct {
	peers  []string
	points []ringPoint
}

// NewRing builds the ring. Peers must be non-empty and free of
// duplicates; order does not affect placement (only the peer strings do).
func NewRing(peers []string) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer address")
		}
		if seen[p] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
		seen[p] = true
	}
	r := &Ring{
		peers:  append([]string(nil), peers...),
		points: make([]ringPoint, 0, len(peers)*vnodes),
	}
	for pi, p := range r.peers {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", p, v)), peer: pi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on peer index so placement is deterministic even in
		// the (astronomically unlikely) event of a token collision.
		return r.points[i].peer < r.points[j].peer
	})
	return r, nil
}

// Peers returns the peer list in construction order.
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// Owners returns the first n distinct peers clockwise from the key's hash
// position — the key's replica set in preference order. n is clamped to
// the peer count.
func (r *Ring) Owners(key string, n int) []string {
	if n <= 0 {
		n = 1
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	taken := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		pt := r.points[(start+i)%len(r.points)]
		if taken[pt.peer] {
			continue
		}
		taken[pt.peer] = true
		owners = append(owners, r.peers[pt.peer])
	}
	return owners
}

// hash64 is the ring's placement hash: FNV-1a followed by a murmur-style
// finalizer. Raw FNV-1a has weak avalanche — inputs differing only in a
// trailing byte (peer vnode suffixes, sequential key names) keep their
// high bytes, which would cluster each peer's 64 tokens into one arc and
// hand whole key ranges to a single owner. The finalizer scatters those
// clusters; routing only needs an even, stable spread, not cryptographic
// strength.
func hash64(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
