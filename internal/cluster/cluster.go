package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/crestlab/crest/internal/capacity"
	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/obs"
	"github.com/crestlab/crest/internal/retry"
)

// ForwardDepthHeader carries the hop count of a forwarded request. A node
// receiving a request at or past the configured MaxForwardDepth serves it
// locally instead of forwarding again — the loop guard of the
// coordinator-free design (no node has authoritative membership, so
// disagreeing rings must not bounce a request forever).
const ForwardDepthHeader = "X-Crest-Forward-Depth"

// ServedByHeader names the peer that actually produced a forwarded
// response, so clients and tests can observe routing decisions.
const ServedByHeader = "X-Crest-Served-By"

// ErrNoPeers reports that no remote owner is currently eligible: every
// candidate is ejected by health probing, opened by its breaker, or held
// by a Retry-After hint. The server reacts by serving from the local
// model and marking the response degraded.
var ErrNoPeers = errors.New("cluster: no eligible peer")

// Config assembles a Cluster. Self and Peers are required; everything
// else has serviceable defaults.
type Config struct {
	// Self is this node's own base URL; it must appear in Peers. Requests
	// owned by Self are served locally by the caller, never forwarded.
	Self string
	// Peers is the full static peer list (including Self), each a base
	// URL such as "http://10.0.0.1:8080".
	Peers []string

	// Replicas is the owner replica-set size per key (default
	// min(2, len(Peers))).
	Replicas int

	// MaxForwardDepth is the hop budget: a request arriving with this
	// depth (or more) is served locally (default 1 — one forwarding hop,
	// then the request lands).
	MaxForwardDepth int

	// ForwardTimeout bounds one forwarded request (default 10s).
	ForwardTimeout time.Duration

	// MaxResponseBytes caps a forwarded response body (default 64 MiB).
	MaxResponseBytes int64

	// HedgeAfter is the fixed delay before the backup replica is tried.
	// Zero selects the adaptive delay: the HedgePercentile of recent
	// forward latencies, clamped to [HedgeMin, HedgeMax]. Negative
	// disables hedging.
	HedgeAfter      time.Duration
	HedgePercentile float64       // default 0.90
	HedgeMin        time.Duration // default 2ms
	HedgeMax        time.Duration // default 250ms

	// Retry drives the per-request forwarding loop; each retry attempt
	// rotates to a different eligible owner (never the peer that just
	// failed, unless it is the only one). Zero-value fields pick
	// MaxAttempts 3, BaseDelay 25ms, MaxDelay 1s.
	Retry retry.Policy

	// Breaker tunes every peer's circuit breaker; Health the readiness
	// prober.
	Breaker BreakerConfig
	Health  HealthConfig

	// Transport is the HTTP transport of forwards and probes (default
	// http.DefaultTransport) — the seam the chaos network injector wraps.
	Transport http.RoundTripper

	// Obs receives the cluster_* metric series (default obs.Default()).
	Obs *obs.Registry

	// Spans, when non-nil, receives one capacity.Span per forward leg,
	// tagged with the peer that served (or failed) it — the raw material
	// for per-replica USL fits in `crest capacity`. Nil disables span
	// recording; the hot path then pays only a nil check.
	Spans *capacity.Recorder

	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Replicas > len(c.Peers) {
		c.Replicas = len(c.Peers)
	}
	if c.MaxForwardDepth <= 0 {
		c.MaxForwardDepth = 1
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 10 * time.Second
	}
	if c.MaxResponseBytes <= 0 {
		c.MaxResponseBytes = 64 << 20
	}
	if c.HedgePercentile <= 0 || c.HedgePercentile >= 1 {
		c.HedgePercentile = 0.90
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 2 * time.Millisecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = 250 * time.Millisecond
	}
	if c.HedgeMax < c.HedgeMin {
		c.HedgeMax = c.HedgeMin
	}
	if c.Retry.MaxAttempts <= 0 {
		c.Retry.MaxAttempts = 3
	}
	if c.Retry.BaseDelay <= 0 {
		c.Retry.BaseDelay = 25 * time.Millisecond
	}
	if c.Retry.MaxDelay <= 0 {
		c.Retry.MaxDelay = time.Second
	}
	if c.Transport == nil {
		c.Transport = http.DefaultTransport
	}
	if c.Obs == nil {
		c.Obs = obs.Default()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// clusterMetrics are the registry handles of the cluster_* series.
type clusterMetrics struct {
	forwarded    *obs.Counter
	forwardFails *obs.Counter
	hedges       *obs.Counter
	hedgeWins    *obs.Counter
	dedupHits    *obs.Counter
	breakerTrips *obs.Counter
	ejections    *obs.Counter
	recoveries   *obs.Counter
	latency      *obs.Histogram
}

func newClusterMetrics(r *obs.Registry) clusterMetrics {
	return clusterMetrics{
		forwarded:    r.Counter("cluster_forwarded_total"),
		forwardFails: r.Counter("cluster_forward_failures_total"),
		hedges:       r.Counter("cluster_hedges_total"),
		hedgeWins:    r.Counter("cluster_hedge_wins_total"),
		dedupHits:    r.Counter("cluster_dedup_hits_total"),
		breakerTrips: r.Counter("cluster_breaker_trips_total"),
		ejections:    r.Counter("cluster_ejections_total"),
		recoveries:   r.Counter("cluster_recoveries_total"),
		latency:      r.Histogram("cluster_forward_seconds", nil),
	}
}

// Cluster is the replication/routing layer of one serving node. Construct
// with New, Start the health prober, and Close at shutdown. All methods
// are safe for concurrent use.
type Cluster struct {
	cfg      Config
	ring     *Ring
	client   *http.Client
	breakers map[string]*Breaker
	prober   *prober
	m        clusterMetrics

	// Per-peer Retry-After holds: a peer that shed with a hint is not
	// retried before the hold expires — but other peers are unaffected,
	// which the retry×hedging interaction tests pin.
	holdMu sync.Mutex
	holds  map[string]time.Time

	// Singleflight by request ID: hedge legs and client retries carrying
	// the same rid share one upstream request instead of multiplying
	// load on a struggling fleet.
	flightMu sync.Mutex
	flights  map[string]*flight

	lat latencyRing
}

// flight is one in-progress deduplicated forward.
type flight struct {
	done chan struct{}
	res  Result
	err  error
}

// New validates the configuration and builds the cluster layer. The
// health prober is not started until Start.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		return nil, errors.New("cluster: no self address")
	}
	ring, err := NewRing(cfg.Peers)
	if err != nil {
		return nil, err
	}
	selfIn := false
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			selfIn = true
		}
	}
	if !selfIn {
		return nil, fmt.Errorf("cluster: self %q not in peer list", cfg.Self)
	}
	c := &Cluster{
		cfg:  cfg,
		ring: ring,
		// No client-level Timeout: each forward carries ForwardTimeout in
		// its context instead, which cancels cleanly through any custom
		// RoundTripper (the chaos injector's blackhole included).
		client:   &http.Client{Transport: cfg.Transport},
		breakers: make(map[string]*Breaker, len(cfg.Peers)),
		m:        newClusterMetrics(cfg.Obs),
		holds:    make(map[string]time.Time),
		flights:  make(map[string]*flight),
	}
	c.lat.init(256)
	var remotes []string
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			continue
		}
		remotes = append(remotes, p)
		b := NewBreaker(cfg.Breaker)
		stateGauge := cfg.Obs.Gauge("cluster_breaker_state_" + MetricLabel(p))
		b.onTransition(func(s BreakerState) {
			stateGauge.Set(int64(s))
			if s == BreakerOpen {
				c.m.breakerTrips.Inc()
			}
		})
		c.breakers[p] = b
	}
	c.prober = newProber(cfg.Health, c.client, remotes, func(peer string, healthy bool) {
		c.cfg.Obs.Gauge("cluster_peer_healthy_" + MetricLabel(peer)).Set(boolGauge(healthy))
		if healthy {
			c.m.recoveries.Inc()
			c.cfg.Logf("cluster: peer %s recovered", peer)
		} else {
			c.m.ejections.Inc()
			c.cfg.Logf("cluster: peer %s ejected after consecutive probe failures", peer)
		}
	})
	for _, p := range remotes {
		cfg.Obs.Gauge("cluster_peer_healthy_" + MetricLabel(p)).Set(1)
	}
	return c, nil
}

func boolGauge(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// MetricLabel sanitizes a peer URL into a metric-name suffix: lowercase,
// scheme stripped, every non-alphanumeric byte mapped to '_'.
func MetricLabel(peer string) string {
	s := strings.ToLower(peer)
	s = strings.TrimPrefix(s, "http://")
	s = strings.TrimPrefix(s, "https://")
	var b strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Start launches the readiness prober.
func (c *Cluster) Start() { c.prober.start() }

// Close stops the prober and releases idle transport connections.
func (c *Cluster) Close() {
	c.prober.stop()
	if t, ok := c.cfg.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
}

// Self returns this node's own peer URL.
func (c *Cluster) Self() string { return c.cfg.Self }

// Peers returns the full static peer list.
func (c *Cluster) Peers() []string { return c.ring.Peers() }

// MaxForwardDepth returns the configured hop budget.
func (c *Cluster) MaxForwardDepth() int { return c.cfg.MaxForwardDepth }

// Owners returns the key's replica set in ring preference order.
func (c *Cluster) Owners(key string) []string {
	return c.ring.Owners(key, c.cfg.Replicas)
}

// OwnsLocally reports whether this node is in the key's replica set.
func (c *Cluster) OwnsLocally(key string) bool {
	for _, p := range c.Owners(key) {
		if p == c.cfg.Self {
			return true
		}
	}
	return false
}

// RemoteOwners returns the key's replica set with Self removed, in
// preference order.
func (c *Cluster) RemoteOwners(key string) []string {
	owners := c.Owners(key)
	out := owners[:0]
	for _, p := range owners {
		if p != c.cfg.Self {
			out = append(out, p)
		}
	}
	return out
}

// DoRequest is one forwarding ask: the candidate peers in preference
// order plus the opaque HTTP payload to deliver.
type DoRequest struct {
	// Peers are the candidate owners in preference order, Self excluded.
	Peers []string
	// Path is the request path on the peer (e.g. "/v1/estimate"); Query
	// the raw query string to append, if any.
	Path  string
	Query string
	// RID is the request ID: threaded to the peer as X-Request-ID and
	// used to deduplicate concurrent identical forwards.
	RID string
	// Depth is the incoming request's forward depth; the outgoing hop
	// carries Depth+1.
	Depth int
	// Body is the request payload; ContentType its media type (default
	// application/json).
	Body        []byte
	ContentType string
	// Hedge enables the backup-replica race for this request.
	Hedge bool
}

// Result is a completed forward: the peer's status and body, to be
// relayed verbatim. Statuses below 500 complete a Do — a 4xx is the
// client's problem wherever it is served, so it is passed through rather
// than retried against other replicas.
type Result struct {
	Status      int
	Body        []byte
	ContentType string
	Peer        string
	// RetryAfter carries the peer's Retry-After header on pass-through
	// responses (a tenant quota 429), so the relaying node can hand the
	// backoff hint on to the client instead of dropping it.
	RetryAfter string
	// Hedged reports that the backup leg produced this result.
	Hedged bool
}

// Do forwards the request to the first eligible candidate peer, hedging
// to a backup replica when the primary is slow, rotating to a different
// peer on retryable failure, and deduplicating concurrent calls that
// share a request ID. It returns ErrNoPeers (possibly wrapped) when no
// candidate is currently eligible — the caller's cue to degrade to local
// serving.
func (c *Cluster) Do(ctx context.Context, req DoRequest) (Result, error) {
	if req.RID == "" {
		return c.do(ctx, req)
	}
	c.flightMu.Lock()
	if f, ok := c.flights[req.RID]; ok {
		c.flightMu.Unlock()
		c.m.dedupHits.Inc()
		select {
		case <-f.done:
			return f.res, f.err
		case <-ctx.Done():
			return Result{}, crerr.Canceled(ctx.Err())
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[req.RID] = f
	c.flightMu.Unlock()
	f.res, f.err = c.do(ctx, req)
	c.flightMu.Lock()
	delete(c.flights, req.RID)
	c.flightMu.Unlock()
	close(f.done)
	return f.res, f.err
}

// do is the retry-rotating forward loop.
func (c *Cluster) do(ctx context.Context, req DoRequest) (Result, error) {
	var res Result
	lastFailed := ""
	err := c.cfg.Retry.Do(ctx, func(ctx context.Context) error {
		primary := c.acquireEligible(req.Peers, lastFailed)
		if primary == "" {
			// Rotation exhausted the candidate set; the lastFailed
			// exclusion is advisory, so fall back to any eligible peer
			// (retrying the same peer beats not trying at all) before
			// declaring the fleet unreachable.
			primary = c.acquireEligible(req.Peers, "")
		}
		if primary == "" {
			return retry.Permanent(fmt.Errorf("%w: %d candidate(s) all ejected, open or held",
				ErrNoPeers, len(req.Peers)))
		}
		r, err := c.attempt(ctx, primary, req)
		if err != nil {
			lastFailed = primary
			c.m.forwardFails.Inc()
			return err
		}
		res = r
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	return res, nil
}

// acquireEligible returns the first candidate that is healthy, not under
// a Retry-After hold, not skip, and whose breaker admits a request — with
// the breaker slot acquired. Empty when none qualifies.
func (c *Cluster) acquireEligible(peers []string, skip string) string {
	now := time.Now()
	for _, p := range peers {
		if p == skip || p == c.cfg.Self {
			continue
		}
		if !c.prober.healthyPeer(p) {
			continue
		}
		if c.heldUntil(p).After(now) {
			continue
		}
		b := c.breakers[p]
		if b == nil || !b.Acquire() {
			continue
		}
		return p
	}
	return ""
}

// attempt runs one hedged forward: the primary leg immediately, a backup
// leg on a different eligible replica once the hedge delay elapses. The
// first leg to complete with a relayable result wins and the loser's
// context is canceled; a losing leg's cancellation is recorded as neutral
// on its breaker, never as a failure.
func (c *Cluster) attempt(ctx context.Context, primary string, req DoRequest) (Result, error) {
	type legDone struct {
		res  Result
		err  error
		peer string
	}
	done := make(chan legDone, 2)
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	go func() {
		r, err := c.forwardOnce(pctx, primary, req)
		done <- legDone{r, err, primary}
	}()

	var hedgeCh <-chan time.Time
	if req.Hedge && c.cfg.HedgeAfter >= 0 && len(req.Peers) > 1 {
		t := time.NewTimer(c.hedgeDelay())
		defer t.Stop()
		hedgeCh = t.C
	}
	var bcancel context.CancelFunc
	pending := 1
	var firstErr error
	for pending > 0 {
		select {
		case leg := <-done:
			pending--
			if leg.err == nil {
				// Cancel the loser; its goroutine completes into the
				// buffered channel and records a neutral breaker verdict.
				if leg.peer == primary && bcancel != nil {
					bcancel()
				} else if leg.peer != primary {
					pcancel()
				}
				res := leg.res
				res.Hedged = leg.peer != primary
				if res.Hedged {
					c.m.hedgeWins.Inc()
				}
				return res, nil
			}
			if firstErr == nil {
				firstErr = leg.err
			}
		case <-hedgeCh:
			hedgeCh = nil
			backup := c.acquireEligible(req.Peers, primary)
			if backup == "" {
				continue
			}
			c.m.hedges.Inc()
			var bctx context.Context
			bctx, bcancel = context.WithCancel(ctx)
			defer bcancel()
			pending++
			go func() {
				r, err := c.forwardOnce(bctx, backup, req)
				done <- legDone{r, err, backup}
			}()
		case <-ctx.Done():
			pcancel()
			if bcancel != nil {
				bcancel()
			}
			return Result{}, crerr.Canceled(ctx.Err())
		}
	}
	return Result{}, firstErr
}

// hedgeDelay resolves the backup-send delay: the fixed HedgeAfter when
// configured, otherwise the HedgePercentile of recent forward latencies
// clamped to [HedgeMin, HedgeMax] (HedgeMax before enough samples exist —
// hedge conservatively until the latency profile is known).
func (c *Cluster) hedgeDelay() time.Duration {
	if c.cfg.HedgeAfter > 0 {
		return c.cfg.HedgeAfter
	}
	p, ok := c.lat.percentile(c.cfg.HedgePercentile)
	if !ok {
		return c.cfg.HedgeMax
	}
	d := time.Duration(p * float64(time.Second))
	if d < c.cfg.HedgeMin {
		d = c.cfg.HedgeMin
	}
	if d > c.cfg.HedgeMax {
		d = c.cfg.HedgeMax
	}
	return d
}

// forwardOnce delivers one forward leg through forwardLeg and, when a
// span recorder is configured, records the leg tagged with its peer.
// Outcome mapping: pass-through → OK, 503/drain → Shed, transport
// errors and 5xx → Error, and a leg abandoned from above (hedge loser,
// caller gone) → Canceled. A peer that blows the forward deadline is an
// Error, not Canceled: the peer's slowness was observed, the
// measurement window did not close on it — only ctx death from above
// reclassifies the leg as Canceled.
func (c *Cluster) forwardOnce(ctx context.Context, peer string, req DoRequest) (Result, error) {
	if c.cfg.Spans == nil {
		return c.forwardLeg(ctx, peer, req)
	}
	t0 := time.Now()
	res, err := c.forwardLeg(ctx, peer, req)
	out := capacity.Classify(err)
	if out == capacity.Canceled && ctx.Err() == nil {
		out = capacity.Error
	}
	c.cfg.Spans.Record(capacity.Span{
		Start:    t0,
		Duration: time.Since(t0),
		Outcome:  out,
		Peer:     peer,
	})
	return res, err
}

// forwardLeg delivers the payload to one peer and settles that peer's
// breaker slot: Success on any relayable status (2xx–4xx), Failure on
// transport errors and 5xx, Cancel when this leg lost a hedge race.
func (c *Cluster) forwardLeg(ctx context.Context, peer string, req DoRequest) (Result, error) {
	b := c.breakers[peer]
	lctx, cancel := context.WithTimeout(ctx, c.cfg.ForwardTimeout)
	defer cancel()
	url := peer + req.Path
	if req.Query != "" {
		url += "?" + req.Query
	}
	hreq, err := http.NewRequestWithContext(lctx, http.MethodPost, url, bytes.NewReader(req.Body))
	if err != nil {
		b.Cancel()
		return Result{}, retry.Permanent(fmt.Errorf("cluster: build forward to %s: %w", peer, err))
	}
	ct := req.ContentType
	if ct == "" {
		ct = "application/json"
	}
	hreq.Header.Set("Content-Type", ct)
	if req.RID != "" {
		hreq.Header.Set("X-Request-ID", req.RID)
	}
	hreq.Header.Set(ForwardDepthHeader, strconv.Itoa(req.Depth+1))

	t0 := time.Now()
	resp, err := c.client.Do(hreq)
	if err != nil {
		switch {
		case ctx.Err() != nil:
			// The leg was abandoned from above (hedge loser, caller gave
			// up): neutral — the peer's behavior was never observed.
			b.Cancel()
			return Result{}, crerr.Canceled(ctx.Err())
		case errors.Is(lctx.Err(), context.DeadlineExceeded):
			// The peer itself blew the forward budget: that is a failure.
			b.Failure()
			return Result{}, fmt.Errorf("cluster: forward to %s timed out after %s: %w",
				peer, c.cfg.ForwardTimeout, err)
		default:
			b.Failure()
			return Result{}, fmt.Errorf("cluster: forward to %s: %w", peer, err)
		}
	}
	body, rerr := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxResponseBytes))
	resp.Body.Close()
	if rerr != nil {
		b.Failure()
		return Result{}, fmt.Errorf("cluster: read response from %s: %w", peer, rerr)
	}
	switch {
	case resp.StatusCode == http.StatusServiceUnavailable:
		// The peer shed or is draining: honor its Retry-After as a
		// per-peer hold so rotation and hedging move on immediately while
		// this peer backs off.
		if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
			c.hold(peer, time.Duration(secs)*time.Second)
		}
		b.Failure()
		return Result{}, fmt.Errorf("%w: peer %s shed the forward", crerr.ErrOverloaded, peer)
	case resp.StatusCode >= 500:
		b.Failure()
		return Result{}, fmt.Errorf("cluster: peer %s answered HTTP %d: %s",
			peer, resp.StatusCode, firstLine(body))
	default:
		// Everything else — including a tenant quota 429 — passes through
		// as a breaker Success with no per-peer hold: the peer answered
		// promptly and authoritatively; a single tenant being over budget
		// says nothing about the peer's health, and holding or ejecting it
		// would let one tenant's storm evict the peer for everyone.
		b.Success()
		dur := time.Since(t0).Seconds()
		c.lat.observe(dur)
		c.m.latency.Observe(dur)
		c.m.forwarded.Inc()
		return Result{
			Status:      resp.StatusCode,
			Body:        body,
			ContentType: resp.Header.Get("Content-Type"),
			RetryAfter:  resp.Header.Get("Retry-After"),
			Peer:        peer,
		}, nil
	}
}

// firstLine trims a response body to one log-friendly line.
func firstLine(b []byte) string {
	s := strings.TrimSpace(string(b))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 160 {
		s = s[:160]
	}
	return s
}

// hold records a Retry-After hold for one peer.
func (c *Cluster) hold(peer string, d time.Duration) {
	until := time.Now().Add(d)
	c.holdMu.Lock()
	if until.After(c.holds[peer]) {
		c.holds[peer] = until
	}
	c.holdMu.Unlock()
}

// heldUntil returns the peer's current hold deadline (zero when none).
func (c *Cluster) heldUntil(peer string) time.Time {
	c.holdMu.Lock()
	defer c.holdMu.Unlock()
	return c.holds[peer]
}

// ---------------------------------------------------------------------------
// Latency ring

// latencyRing is a small mutex-guarded ring of recent forward latencies
// (seconds) backing the adaptive hedge delay. A fixed window tracks the
// current regime instead of averaging over the deployment's lifetime.
type latencyRing struct {
	mu   sync.Mutex
	buf  []float64
	n    int
	head int
}

// minHedgeSamples is how many latencies must be observed before the
// adaptive percentile is trusted.
const minHedgeSamples = 16

func (l *latencyRing) init(size int) { l.buf = make([]float64, size) }

func (l *latencyRing) observe(v float64) {
	l.mu.Lock()
	l.buf[l.head] = v
	l.head = (l.head + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

func (l *latencyRing) percentile(p float64) (float64, bool) {
	l.mu.Lock()
	if l.n < minHedgeSamples {
		l.mu.Unlock()
		return 0, false
	}
	vals := make([]float64, l.n)
	copy(vals, l.buf[:l.n])
	l.mu.Unlock()
	sort.Float64s(vals)
	i := int(p * float64(len(vals)))
	if i >= len(vals) {
		i = len(vals) - 1
	}
	return vals[i], true
}

// ---------------------------------------------------------------------------
// Stats

// PeerStats is one peer's failure-handling state in a Stats snapshot.
type PeerStats struct {
	Addr         string `json:"addr"`
	Self         bool   `json:"self,omitempty"`
	Healthy      bool   `json:"healthy"`
	Breaker      string `json:"breaker,omitempty"`
	BreakerTrips uint64 `json:"breaker_trips,omitempty"`
	Probes       uint64 `json:"probes,omitempty"`
	ProbeFails   uint64 `json:"probe_failures,omitempty"`
	Ejections    uint64 `json:"ejections,omitempty"`
	HoldMs       int64  `json:"retry_after_hold_ms,omitempty"`
}

// Stats is a point-in-time snapshot of the routing layer, served inside
// the /statsz cluster block.
type Stats struct {
	Self         string      `json:"self"`
	Replicas     int         `json:"replicas"`
	HedgeDelayMs float64     `json:"hedge_delay_ms"`
	Forwarded    uint64      `json:"forwarded"`
	ForwardFails uint64      `json:"forward_failures"`
	Hedges       uint64      `json:"hedges"`
	HedgeWins    uint64      `json:"hedge_wins"`
	DedupHits    uint64      `json:"dedup_hits"`
	Peers        []PeerStats `json:"peers"`
}

// Stats returns the current snapshot.
func (c *Cluster) Stats() Stats {
	st := Stats{
		Self:         c.cfg.Self,
		Replicas:     c.cfg.Replicas,
		HedgeDelayMs: float64(c.hedgeDelay()) / float64(time.Millisecond),
		Forwarded:    c.m.forwarded.Value(),
		ForwardFails: c.m.forwardFails.Value(),
		Hedges:       c.m.hedges.Value(),
		HedgeWins:    c.m.hedgeWins.Value(),
		DedupHits:    c.m.dedupHits.Value(),
	}
	now := time.Now()
	for _, p := range c.ring.Peers() {
		ps := PeerStats{Addr: p, Self: p == c.cfg.Self, Healthy: true}
		if ps.Self {
			st.Peers = append(st.Peers, ps)
			continue
		}
		if ph, ok := c.prober.peers[p]; ok {
			ps.Healthy = ph.healthy.Load()
			ps.Probes = ph.probes.Load()
			ps.ProbeFails = ph.failures.Load()
			ps.Ejections = ph.ejections.Load()
		}
		if b := c.breakers[p]; b != nil {
			ps.Breaker = b.State().String()
			ps.BreakerTrips = b.Trips()
		}
		if until := c.heldUntil(p); until.After(now) {
			ps.HoldMs = int64(until.Sub(now) / time.Millisecond)
		}
		st.Peers = append(st.Peers, ps)
	}
	return st
}
