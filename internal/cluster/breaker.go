package cluster

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker state machine position.
type BreakerState int32

const (
	// BreakerClosed passes requests and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects requests until OpenFor has elapsed.
	BreakerOpen
	// BreakerHalfOpen admits a bounded number of probe requests; enough
	// successes close the breaker, any failure reopens it.
	BreakerHalfOpen
)

// String implements fmt.Stringer for logs and stats payloads.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes one peer's circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that trips a
	// closed breaker open (default 5).
	FailureThreshold int
	// OpenFor is how long an open breaker rejects before admitting
	// half-open probes (default 2s).
	OpenFor time.Duration
	// HalfOpenProbes bounds concurrently admitted probe requests in the
	// half-open state (default 1).
	HalfOpenProbes int
	// HalfOpenSuccesses is the probe-success count that closes a
	// half-open breaker (default 1).
	HalfOpenSuccesses int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 2 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.HalfOpenSuccesses <= 0 {
		c.HalfOpenSuccesses = 1
	}
	return c
}

// Breaker is one peer's circuit breaker: closed while the peer behaves,
// open after FailureThreshold consecutive failures, half-open after
// OpenFor to let a bounded probe stream test recovery. Acquire/Success/
// Failure are safe for concurrent use; every Acquire that returns true
// must be paired with exactly one Success or Failure.
type Breaker struct {
	mu  sync.Mutex
	cfg BreakerConfig
	now func() time.Time // injectable clock for deterministic tests

	state      BreakerState
	fails      int // consecutive failures while closed
	openedAt   time.Time
	probes     int // inflight half-open probes
	probeOK    int // successful probes this half-open episode
	trips      uint64
	transition func(BreakerState) // observer hook, called with mu held
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), now: time.Now}
}

// onTransition registers an observer invoked on every state change (used
// to mirror the state onto an obs gauge). Must be set before concurrent
// use.
func (b *Breaker) onTransition(fn func(BreakerState)) { b.transition = fn }

// setState transitions with the observer hook; called with mu held.
func (b *Breaker) setState(s BreakerState) {
	if b.state == s {
		return
	}
	b.state = s
	if b.transition != nil {
		b.transition(s)
	}
}

// Acquire reports whether a request may be sent to the peer right now.
// An open breaker whose OpenFor has elapsed transitions to half-open and
// admits the call as a probe. A true return must be paired with Success
// or Failure.
func (b *Breaker) Acquire() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.OpenFor {
			return false
		}
		b.setState(BreakerHalfOpen)
		b.probes = 1
		b.probeOK = 0
		return true
	case BreakerHalfOpen:
		if b.probes >= b.cfg.HalfOpenProbes {
			return false
		}
		b.probes++
		return true
	}
	return false
}

// Success records a successful request.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails = 0
	case BreakerHalfOpen:
		b.probes--
		b.probeOK++
		if b.probeOK >= b.cfg.HalfOpenSuccesses {
			b.setState(BreakerClosed)
			b.fails = 0
		}
	}
}

// Failure records a failed request, tripping or reopening as configured.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.trip()
		}
	case BreakerHalfOpen:
		b.probes--
		b.trip()
	}
}

// Cancel releases an acquired slot without a verdict — used when a
// request leg is abandoned (hedge loser, caller gave up) and the peer's
// behavior was never observed. A half-open probe slot is returned; a
// closed breaker's consecutive-failure count is untouched.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen && b.probes > 0 {
		b.probes--
	}
}

// trip opens the breaker; called with mu held.
func (b *Breaker) trip() {
	b.setState(BreakerOpen)
	b.openedAt = b.now()
	b.fails = 0
	b.trips++
}

// State returns the current state without consuming a probe slot. An open
// breaker past its OpenFor still reports open — only Acquire transitions,
// so the state observed here is what a request would have seen.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
