package cluster

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// HealthConfig tunes the per-peer readiness prober.
type HealthConfig struct {
	// Interval is the base probe period (default 2s). Each wait is
	// jittered by ±Jitter·Interval so a fleet restarted together does not
	// probe in lockstep.
	Interval time.Duration
	// Jitter is the relative probe-interval jitter (default 0.2;
	// negative disables).
	Jitter float64
	// Timeout bounds one probe request (default min(Interval, 1s)).
	Timeout time.Duration
	// EjectAfter is the consecutive probe-failure count that ejects a
	// peer from routing (default 3).
	EjectAfter int
	// Seed drives the deterministic jitter stream (tests); 0 seeds from
	// the clock.
	Seed int64
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Jitter == 0 {
		c.Jitter = 0.2
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Second
		if c.Timeout > c.Interval {
			c.Timeout = c.Interval
		}
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.Seed == 0 {
		c.Seed = time.Now().UnixNano()
	}
	return c
}

// peerHealth is one peer's probe state. Routing reads healthy lock-free;
// the prober goroutine is the only writer.
type peerHealth struct {
	healthy    atomic.Bool
	consecFail atomic.Int64
	probes     atomic.Uint64
	failures   atomic.Uint64
	ejections  atomic.Uint64
}

// prober drives the readiness probes of every remote peer. Peers start
// healthy (optimistic: routing works before the first probe lands) and
// are ejected after EjectAfter consecutive failures; a single successful
// probe restores them — the health-level half of the recovery story, the
// request-level half being the circuit breaker's half-open probes.
type prober struct {
	cfg    HealthConfig
	client *http.Client
	peers  map[string]*peerHealth
	onFlip func(peer string, healthy bool)

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

func newProber(cfg HealthConfig, client *http.Client, peers []string, onFlip func(string, bool)) *prober {
	p := &prober{
		cfg:    cfg.withDefaults(),
		client: client,
		peers:  make(map[string]*peerHealth, len(peers)),
		onFlip: onFlip,
	}
	for _, addr := range peers {
		ph := &peerHealth{}
		ph.healthy.Store(true)
		p.peers[addr] = ph
	}
	return p
}

// start launches one probe loop per peer.
func (p *prober) start() {
	ctx, cancel := context.WithCancel(context.Background())
	p.cancel = cancel
	seq := int64(0)
	for addr, ph := range p.peers {
		seq++
		p.wg.Add(1)
		go p.loop(ctx, addr, ph, p.cfg.Seed+seq)
	}
}

// stop halts every probe loop and waits for them to exit.
func (p *prober) stop() {
	if p.cancel != nil {
		p.cancel()
	}
	p.wg.Wait()
}

// loop probes one peer until ctx is done.
func (p *prober) loop(ctx context.Context, addr string, ph *peerHealth, seed int64) {
	defer p.wg.Done()
	rng := rand.New(rand.NewSource(seed))
	for {
		wait := p.cfg.Interval
		if p.cfg.Jitter > 0 {
			u := 2*rng.Float64() - 1
			wait = time.Duration(float64(wait) * (1 + p.cfg.Jitter*u))
		}
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
		p.probe(ctx, addr, ph)
	}
}

// probe performs one readiness check and updates the peer's state.
func (p *prober) probe(ctx context.Context, addr string, ph *peerHealth) {
	ph.probes.Add(1)
	pctx, cancel := context.WithTimeout(ctx, p.cfg.Timeout)
	defer cancel()
	ok := false
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, addr+"/readyz", nil)
	if err == nil {
		resp, rerr := p.client.Do(req)
		if rerr == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
	}
	if ok {
		ph.consecFail.Store(0)
		if !ph.healthy.Swap(true) && p.onFlip != nil {
			p.onFlip(addr, true)
		}
		return
	}
	ph.failures.Add(1)
	if n := ph.consecFail.Add(1); n >= int64(p.cfg.EjectAfter) {
		if ph.healthy.Swap(false) {
			ph.ejections.Add(1)
			if p.onFlip != nil {
				p.onFlip(addr, false)
			}
		}
	}
}

// healthyPeer reports the routing eligibility of addr (unknown peers are
// healthy: the prober only tracks configured remotes).
func (p *prober) healthyPeer(addr string) bool {
	ph, ok := p.peers[addr]
	if !ok {
		return true
	}
	return ph.healthy.Load()
}
