package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/crestlab/crest/internal/capacity"
	"github.com/crestlab/crest/internal/obs"
	"github.com/crestlab/crest/internal/retry"
)

// ---------------------------------------------------------------------------
// Ring

func TestRingOwnersDistinctAndDeterministic(t *testing.T) {
	peers := []string{"http://a", "http://b", "http://c", "http://d"}
	r, err := NewRing(peers)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"pressure/x", "velocity/y", "qmcpack", ""} {
		owners := r.Owners(key, 3)
		if len(owners) != 3 {
			t.Fatalf("Owners(%q) = %d peers, want 3", key, len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%q) repeated %s", key, o)
			}
			seen[o] = true
		}
		again := r.Owners(key, 3)
		for i := range owners {
			if owners[i] != again[i] {
				t.Fatalf("Owners(%q) not deterministic: %v vs %v", key, owners, again)
			}
		}
	}
	if got := r.Owners("k", 99); len(got) != len(peers) {
		t.Fatalf("Owners clamp: got %d, want %d", len(got), len(peers))
	}
}

func TestRingBalance(t *testing.T) {
	peers := []string{"http://a", "http://b", "http://c"}
	r, err := NewRing(peers)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owners(fmt.Sprintf("key-%d", i), 1)[0]]++
	}
	for p, c := range counts {
		frac := float64(c) / n
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("peer %s owns %.0f%% of keys — ring badly imbalanced: %v", p, 100*frac, counts)
		}
	}
}

func TestRingRejectsBadPeerLists(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Fatal("empty peer list accepted")
	}
	if _, err := NewRing([]string{"http://a", "http://a"}); err == nil {
		t.Fatal("duplicate peer accepted")
	}
	if _, err := NewRing([]string{"http://a", ""}); err == nil {
		t.Fatal("empty peer address accepted")
	}
}

// ---------------------------------------------------------------------------
// Breaker

func TestBreakerLifecycle(t *testing.T) {
	clock := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, OpenFor: time.Second})
	b.now = func() time.Time { return clock }

	for i := 0; i < 3; i++ {
		if !b.Acquire() {
			t.Fatalf("closed breaker refused acquire %d", i)
		}
		b.Failure()
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after threshold failures state = %v, want open", got)
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
	if b.Acquire() {
		t.Fatal("open breaker admitted a request before OpenFor elapsed")
	}

	clock = clock.Add(1100 * time.Millisecond)
	if !b.Acquire() {
		t.Fatal("breaker past OpenFor refused the half-open probe")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	if b.Acquire() {
		t.Fatal("half-open breaker admitted a second concurrent probe (HalfOpenProbes=1)")
	}
	b.Failure() // probe fails → reopen
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after failed probe state = %v, want open", got)
	}

	clock = clock.Add(1100 * time.Millisecond)
	if !b.Acquire() {
		t.Fatal("reopened breaker refused second half-open probe")
	}
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("after successful probe state = %v, want closed", got)
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", b.Trips())
	}
}

func TestBreakerCancelReleasesProbeSlot(t *testing.T) {
	clock := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: time.Second})
	b.now = func() time.Time { return clock }
	b.Acquire()
	b.Failure()
	clock = clock.Add(2 * time.Second)
	if !b.Acquire() {
		t.Fatal("no half-open probe admitted")
	}
	b.Cancel() // abandoned leg: no verdict
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after cancel = %v, want half-open", got)
	}
	if !b.Acquire() {
		t.Fatal("canceled probe slot was not released")
	}
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed", got)
	}
}

func TestBreakerSuccessResetsConsecutiveFailures(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 3})
	for i := 0; i < 10; i++ {
		b.Acquire()
		b.Failure()
		b.Acquire()
		b.Failure()
		b.Acquire()
		b.Success() // interleaved success: never 3 consecutive
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed (failures were never consecutive)", got)
	}
}

// ---------------------------------------------------------------------------
// Prober

func TestProberEjectsAndRecovers(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			http.NotFound(w, r)
			return
		}
		if healthy.Load() {
			w.WriteHeader(http.StatusOK)
		} else {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	}))
	defer srv.Close()

	flips := make(chan bool, 16)
	p := newProber(HealthConfig{
		Interval:   10 * time.Millisecond,
		Jitter:     -1,
		Timeout:    200 * time.Millisecond,
		EjectAfter: 3,
		Seed:       1,
	}, srv.Client(), []string{srv.URL}, func(_ string, h bool) { flips <- h })
	p.start()
	defer p.stop()

	waitFlip := func(want bool) {
		t.Helper()
		deadline := time.After(5 * time.Second)
		for {
			select {
			case h := <-flips:
				if h == want {
					return
				}
			case <-deadline:
				t.Fatalf("timed out waiting for health flip to %v", want)
			}
		}
	}

	healthy.Store(false)
	waitFlip(false)
	if p.healthyPeer(srv.URL) {
		t.Fatal("peer still routable after ejection")
	}
	healthy.Store(true)
	waitFlip(true)
	if !p.healthyPeer(srv.URL) {
		t.Fatal("peer not restored after successful probe")
	}
	if p.peers[srv.URL].ejections.Load() == 0 {
		t.Fatal("ejection not counted")
	}
}

// ---------------------------------------------------------------------------
// Cluster forwarding

// rtFunc adapts a function to http.RoundTripper so tests can script peer
// behavior without real listeners.
type rtFunc func(*http.Request) (*http.Response, error)

func (f rtFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func okResponse(body string) *http.Response {
	return &http.Response{
		StatusCode: http.StatusOK,
		Header:     http.Header{"Content-Type": []string{"application/json"}},
		Body:       io.NopCloser(strings.NewReader(body)),
	}
}

func statusResponse(code int, hdr http.Header) *http.Response {
	if hdr == nil {
		hdr = http.Header{}
	}
	return &http.Response{StatusCode: code, Header: hdr, Body: io.NopCloser(strings.NewReader(""))}
}

// attemptLog records the order in which peers were attempted.
type attemptLog struct {
	mu    sync.Mutex
	hosts []string
}

func (l *attemptLog) add(host string) {
	l.mu.Lock()
	l.hosts = append(l.hosts, host)
	l.mu.Unlock()
}

func (l *attemptLog) list() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.hosts...)
}

func newTestCluster(t *testing.T, peers []string, transport http.RoundTripper, mod func(*Config)) *Cluster {
	t.Helper()
	cfg := Config{
		Self:       peers[0],
		Peers:      peers,
		Replicas:   2,
		Transport:  transport,
		Obs:        obs.NewRegistry(),
		HedgeAfter: -1, // hedging off unless a test opts in
		Retry: retry.Policy{
			MaxAttempts: 4,
			BaseDelay:   time.Millisecond,
			MaxDelay:    5 * time.Millisecond,
			Seed:        1,
		},
	}
	if mod != nil {
		mod(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestClusterForwardsToFirstEligiblePeer(t *testing.T) {
	var log attemptLog
	rt := rtFunc(func(r *http.Request) (*http.Response, error) {
		log.add(r.URL.Host)
		if got := r.Header.Get(ForwardDepthHeader); got != "1" {
			t.Errorf("forward depth header = %q, want 1", got)
		}
		if got := r.Header.Get("X-Request-ID"); got != "rid-1" {
			t.Errorf("request id header = %q, want rid-1", got)
		}
		return okResponse(`{"cr":2.5}`), nil
	})
	c := newTestCluster(t, []string{"http://self", "http://b", "http://cc"}, rt, nil)
	res, err := c.Do(context.Background(), DoRequest{
		Peers: []string{"http://b", "http://cc"},
		Path:  "/v1/estimate",
		RID:   "rid-1",
		Body:  []byte(`{}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Peer != "http://b" || res.Status != http.StatusOK {
		t.Fatalf("res = %+v, want peer http://b status 200", res)
	}
	if string(res.Body) != `{"cr":2.5}` {
		t.Fatalf("body = %q", res.Body)
	}
	if got := log.list(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("attempts = %v, want [b]", got)
	}
}

func TestCluster4xxPassesThroughWithoutRetry(t *testing.T) {
	var log attemptLog
	rt := rtFunc(func(r *http.Request) (*http.Response, error) {
		log.add(r.URL.Host)
		return statusResponse(http.StatusBadRequest, nil), nil
	})
	c := newTestCluster(t, []string{"http://self", "http://b", "http://cc"}, rt, nil)
	res, err := c.Do(context.Background(), DoRequest{
		Peers: []string{"http://b", "http://cc"},
		Path:  "/v1/estimate",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 passthrough", res.Status)
	}
	if got := log.list(); len(got) != 1 {
		t.Fatalf("4xx was retried: attempts %v", got)
	}
}

func TestClusterRotatesOffFailedPeer(t *testing.T) {
	var log attemptLog
	rt := rtFunc(func(r *http.Request) (*http.Response, error) {
		log.add(r.URL.Host)
		if r.URL.Host == "b" {
			return nil, errors.New("connection refused")
		}
		return okResponse("ok"), nil
	})
	c := newTestCluster(t, []string{"http://self", "http://b", "http://cc"}, rt, nil)
	res, err := c.Do(context.Background(), DoRequest{
		Peers: []string{"http://b", "http://cc"},
		Path:  "/v1/estimate",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Peer != "http://cc" {
		t.Fatalf("peer = %s, want rotation to http://cc", res.Peer)
	}
	if got := log.list(); len(got) != 2 || got[0] != "b" || got[1] != "cc" {
		t.Fatalf("attempts = %v, want [b cc]", got)
	}
}

// TestHedgedRequestNeverRetriesSameDeadPeerTwiceInARow pins the
// retry×hedging rotation contract: with every candidate dead, successive
// attempts must alternate peers — the retry loop never hammers the peer
// that just failed while an alternative exists.
func TestHedgedRequestNeverRetriesSameDeadPeerTwiceInARow(t *testing.T) {
	var log attemptLog
	rt := rtFunc(func(r *http.Request) (*http.Response, error) {
		log.add(r.URL.Host)
		return nil, errors.New("connection refused")
	})
	c := newTestCluster(t, []string{"http://self", "http://b", "http://cc"}, rt, func(cfg *Config) {
		cfg.HedgeAfter = 50 * time.Millisecond // hedging on; legs fail before it fires
		cfg.Retry.MaxAttempts = 4
		// Threshold above the attempt count so breakers do not mask rotation.
		cfg.Breaker = BreakerConfig{FailureThreshold: 10}
	})
	_, err := c.Do(context.Background(), DoRequest{
		Peers: []string{"http://b", "http://cc"},
		Path:  "/v1/estimate",
		Hedge: true,
	})
	if err == nil {
		t.Fatal("expected failure with every peer dead")
	}
	got := log.list()
	if len(got) < 3 {
		t.Fatalf("expected several rotated attempts, got %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1] {
			t.Fatalf("attempt %d retried the same dead peer twice in a row: %v", i, got)
		}
	}
}

// TestRetryAfterHoldIsPerPeer pins the other retry×hedging contract: a
// Retry-After hint from one overloaded peer holds that peer only — the
// next send goes to a different peer immediately, not after the hint.
func TestRetryAfterHoldIsPerPeer(t *testing.T) {
	var log attemptLog
	rt := rtFunc(func(r *http.Request) (*http.Response, error) {
		log.add(r.URL.Host)
		if r.URL.Host == "b" {
			return statusResponse(http.StatusServiceUnavailable,
				http.Header{"Retry-After": []string{"30"}}), nil
		}
		return okResponse("ok"), nil
	})
	c := newTestCluster(t, []string{"http://self", "http://b", "http://cc"}, rt, nil)

	start := time.Now()
	res, err := c.Do(context.Background(), DoRequest{
		Peers: []string{"http://b", "http://cc"},
		Path:  "/v1/estimate",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Peer != "http://cc" {
		t.Fatalf("peer = %s, want http://cc", res.Peer)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("send to the healthy peer was delayed %v by another peer's Retry-After", elapsed)
	}

	// The held peer must be skipped outright on the next request.
	log.mu.Lock()
	log.hosts = nil
	log.mu.Unlock()
	res, err = c.Do(context.Background(), DoRequest{
		Peers: []string{"http://b", "http://cc"},
		Path:  "/v1/estimate",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := log.list(); len(got) != 1 || got[0] != "cc" {
		t.Fatalf("attempts = %v, want the held peer skipped entirely ([cc])", got)
	}
	st := c.Stats()
	held := false
	for _, p := range st.Peers {
		if p.Addr == "http://b" && p.HoldMs > 0 {
			held = true
		}
	}
	if !held {
		t.Fatalf("stats do not show the Retry-After hold: %+v", st.Peers)
	}
}

func TestClusterHedgeWinsOnSlowPrimary(t *testing.T) {
	rt := rtFunc(func(r *http.Request) (*http.Response, error) {
		if r.URL.Host == "b" { // slow primary: parks until canceled
			select {
			case <-time.After(2 * time.Second):
				return okResponse("slow"), nil
			case <-r.Context().Done():
				return nil, r.Context().Err()
			}
		}
		return okResponse("fast"), nil
	})
	c := newTestCluster(t, []string{"http://self", "http://b", "http://cc"}, rt, func(cfg *Config) {
		cfg.HedgeAfter = 10 * time.Millisecond
	})
	start := time.Now()
	res, err := c.Do(context.Background(), DoRequest{
		Peers: []string{"http://b", "http://cc"},
		Path:  "/v1/estimate",
		Hedge: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hedged || res.Peer != "http://cc" {
		t.Fatalf("res = %+v, want hedged win from http://cc", res)
	}
	if string(res.Body) != "fast" {
		t.Fatalf("body = %q", res.Body)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedged request took %v — loser was not raced", elapsed)
	}
	st := c.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("hedges = %d wins = %d, want 1/1", st.Hedges, st.HedgeWins)
	}
}

func TestClusterDedupesByRequestID(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	rt := rtFunc(func(r *http.Request) (*http.Response, error) {
		calls.Add(1)
		select {
		case <-release:
		case <-r.Context().Done():
			return nil, r.Context().Err()
		}
		return okResponse("ok"), nil
	})
	c := newTestCluster(t, []string{"http://self", "http://b"}, rt, nil)
	req := DoRequest{Peers: []string{"http://b"}, Path: "/v1/estimate", RID: "same-rid"}

	var wg sync.WaitGroup
	results := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, results[i] = c.Do(context.Background(), req)
		}(i)
	}
	// Let the followers join the flight, then release the upstream call.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, err := range results {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("upstream called %d times, want 1 (rid dedupe)", n)
	}
	if st := c.Stats(); st.DedupHits != 3 {
		t.Fatalf("dedup hits = %d, want 3", st.DedupHits)
	}
}

func TestClusterNoPeersReturnsErrNoPeers(t *testing.T) {
	rt := rtFunc(func(r *http.Request) (*http.Response, error) {
		return statusResponse(http.StatusInternalServerError, nil), nil
	})
	c := newTestCluster(t, []string{"http://self", "http://b"}, rt, func(cfg *Config) {
		cfg.Breaker = BreakerConfig{FailureThreshold: 1, OpenFor: time.Hour}
	})
	// First Do trips the only remote's breaker.
	if _, err := c.Do(context.Background(), DoRequest{Peers: []string{"http://b"}, Path: "/x"}); err == nil {
		t.Fatal("expected failure")
	}
	// Second Do finds no eligible peer at all.
	_, err := c.Do(context.Background(), DoRequest{Peers: []string{"http://b"}, Path: "/x"})
	if !errors.Is(err, ErrNoPeers) {
		t.Fatalf("err = %v, want ErrNoPeers", err)
	}
}

func TestClusterOwnershipHelpers(t *testing.T) {
	rt := rtFunc(func(r *http.Request) (*http.Response, error) { return okResponse("ok"), nil })
	peers := []string{"http://self", "http://b", "http://cc"}
	c := newTestCluster(t, peers, rt, nil)
	ownedLocally := 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("ds/f%d", i)
		owners := c.Owners(key)
		if len(owners) != 2 {
			t.Fatalf("owners(%q) = %v, want 2 replicas", key, owners)
		}
		if c.OwnsLocally(key) {
			ownedLocally++
		}
		for _, p := range c.RemoteOwners(key) {
			if p == c.Self() {
				t.Fatal("RemoteOwners contains self")
			}
		}
	}
	// 2-of-3 replica sets: roughly two-thirds of keys should be local.
	if ownedLocally < 60 || ownedLocally > 190 {
		t.Fatalf("local ownership %d/200 is implausible for 2-of-3 replication", ownedLocally)
	}
}

func TestMetricLabel(t *testing.T) {
	if got := MetricLabel("http://127.0.0.1:8080"); got != "127_0_0_1_8080" {
		t.Fatalf("MetricLabel = %q", got)
	}
	if got := MetricLabel("https://Node-A.local:9"); got != "node_a_local_9" {
		t.Fatalf("MetricLabel = %q", got)
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := New(Config{Self: "http://a", Peers: []string{"http://b"}}); err == nil {
		t.Fatal("self outside peer list accepted")
	}
	if _, err := New(Config{Peers: []string{"http://b"}}); err == nil {
		t.Fatal("missing self accepted")
	}
}

// TestClusterQuota429IsBreakerSuccessNoHold pins the quota wire contract
// at the forwarding layer: a tenant's 429 passes through verbatim with
// its Retry-After preserved, counts as a breaker Success (the peer
// answered authoritatively — one tenant being over budget is not peer
// unhealth), and records no per-peer hold, so the same peer keeps
// serving other tenants immediately.
func TestClusterQuota429IsBreakerSuccessNoHold(t *testing.T) {
	var log attemptLog
	rt := rtFunc(func(r *http.Request) (*http.Response, error) {
		log.add(r.URL.Host)
		return statusResponse(http.StatusTooManyRequests,
			http.Header{"Retry-After": []string{"7"}}), nil
	})
	c := newTestCluster(t, []string{"http://self", "http://b", "http://cc"}, rt, nil)

	res, err := c.Do(context.Background(), DoRequest{
		Peers: []string{"http://b", "http://cc"},
		Path:  "/v1/estimate",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusTooManyRequests || res.Peer != "http://b" {
		t.Fatalf("res = %+v, want 429 passthrough from http://b", res)
	}
	if res.RetryAfter != "7" {
		t.Fatalf("RetryAfter = %q, want the peer's hint preserved", res.RetryAfter)
	}
	if got := log.list(); len(got) != 1 {
		t.Fatalf("429 was retried across peers: attempts %v", got)
	}

	// No hold and no breaker damage: the very next request must go straight
	// back to the same primary.
	log.mu.Lock()
	log.hosts = nil
	log.mu.Unlock()
	if _, err := c.Do(context.Background(), DoRequest{
		Peers: []string{"http://b", "http://cc"},
		Path:  "/v1/estimate",
	}); err != nil {
		t.Fatal(err)
	}
	if got := log.list(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("attempts = %v, want [b]: a quota 429 must not hold or eject the peer", got)
	}
	for _, p := range c.Stats().Peers {
		if p.Addr == "http://b" && p.HoldMs > 0 {
			t.Fatalf("quota 429 recorded a per-peer hold: %+v", p)
		}
	}
}

// ---------------------------------------------------------------------------
// Span recording

// TestClusterSpanRecording: with a Recorder configured, every forward
// leg lands as one span tagged with its peer, classified OK / Shed /
// Error, and stamped with the recorder's current sweep level.
func TestClusterSpanRecording(t *testing.T) {
	var rec capacity.Recorder
	rec.SetLevel(4)
	rt := rtFunc(func(r *http.Request) (*http.Response, error) {
		switch r.URL.Host {
		case "b":
			return okResponse(`{}`), nil
		case "cc":
			return statusResponse(http.StatusServiceUnavailable, nil), nil
		default:
			return nil, errors.New("connection refused")
		}
	})
	c := newTestCluster(t, []string{"http://self", "http://b", "http://cc", "http://d"}, rt, func(cfg *Config) {
		cfg.Spans = &rec
		cfg.Retry = retry.Policy{MaxAttempts: 1, BaseDelay: time.Millisecond, Seed: 1}
	})
	for _, peer := range []string{"http://b", "http://cc", "http://d"} {
		_, _ = c.Do(context.Background(), DoRequest{Peers: []string{peer}, Path: "/x"})
	}
	spans := rec.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(spans), spans)
	}
	want := map[string]capacity.Outcome{
		"http://b":  capacity.OK,
		"http://cc": capacity.Shed,
		"http://d":  capacity.Error,
	}
	for _, s := range spans {
		if w, ok := want[s.Peer]; !ok || s.Outcome != w {
			t.Errorf("span for %q has outcome %v, want %v", s.Peer, s.Outcome, want[s.Peer])
		}
		if s.Level != 4 {
			t.Errorf("span for %q has level %d, want 4 (recorder stamp)", s.Peer, s.Level)
		}
		delete(want, s.Peer)
	}
}

// TestClusterSpanCanceledLeg: a leg abandoned because the caller's
// context died mid-flight records as Canceled, never Error.
func TestClusterSpanCanceledLeg(t *testing.T) {
	var rec capacity.Recorder
	rt := rtFunc(func(r *http.Request) (*http.Response, error) {
		<-r.Context().Done()
		return nil, r.Context().Err()
	})
	c := newTestCluster(t, []string{"http://self", "http://b"}, rt, func(cfg *Config) {
		cfg.Spans = &rec
		cfg.Retry = retry.Policy{MaxAttempts: 1, BaseDelay: time.Millisecond, Seed: 1}
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, err := c.Do(ctx, DoRequest{Peers: []string{"http://b"}, Path: "/x"}); err == nil {
		t.Fatal("abandoned forward returned nil error")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if spans := rec.Spans(); len(spans) > 0 {
			if spans[0].Outcome != capacity.Canceled {
				t.Fatalf("abandoned leg outcome = %v, want Canceled", spans[0].Outcome)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no span recorded for the abandoned leg")
		}
		time.Sleep(time.Millisecond)
	}
}
