// Package kmeans implements deterministic k-means++ clustering and a
// silhouette-based selection of the cluster count. The paper sets the
// latent class dimension L of its mixture regression "by fitting a
// clustering method like k-means" (§IV-B1); this package is that fitting,
// and also provides the cluster labels for the Fig. 2 visualization.
package kmeans

import (
	"math"
	"math/rand"
)

// Result is a fitted clustering.
type Result struct {
	K          int
	Centers    [][]float64
	Labels     []int
	Inertia    float64 // total within-cluster squared distance
	Iterations int
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Fit clusters the n×d points into k clusters with k-means++ seeding and
// Lloyd iterations, deterministically from seed.
func Fit(points [][]float64, k int, seed int64) *Result {
	n := len(points)
	if n == 0 || k <= 0 {
		return &Result{K: 0}
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))

	// k-means++ seeding.
	centers := make([][]float64, 0, k)
	first := rng.Intn(n)
	centers = append(centers, append([]float64(nil), points[first]...))
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = sqDist(points[i], centers[0])
	}
	for len(centers) < k {
		var total float64
		for _, v := range dist {
			total += v
		}
		var next int
		if total <= 0 {
			next = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			cum := 0.0
			next = n - 1
			for i, v := range dist {
				cum += v
				if cum >= r {
					next = i
					break
				}
			}
		}
		c := append([]float64(nil), points[next]...)
		centers = append(centers, c)
		for i := range dist {
			if d2 := sqDist(points[i], c); d2 < dist[i] {
				dist[i] = d2
			}
		}
	}

	labels := make([]int, n)
	counts := make([]int, k)
	const maxIter = 100
	var iter int
	for iter = 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				if d2 := sqDist(p, centers[c]); d2 < bestD {
					best, bestD = c, d2
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		for c := range centers {
			for j := range centers[c] {
				centers[c][j] = 0
			}
			counts[c] = 0
		}
		for i, p := range points {
			c := labels[i]
			counts[c]++
			for j, v := range p {
				centers[c][j] += v
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				// Re-seed empty cluster at the farthest point.
				far, farD := 0, -1.0
				for i, p := range points {
					if d2 := sqDist(p, centers[labels[i]]); d2 > farD {
						far, farD = i, d2
					}
				}
				copy(centers[c], points[far])
				continue
			}
			for j := range centers[c] {
				centers[c][j] /= float64(counts[c])
			}
		}
	}
	var inertia float64
	for i, p := range points {
		inertia += sqDist(p, centers[labels[i]])
	}
	return &Result{K: k, Centers: centers, Labels: labels, Inertia: inertia, Iterations: iter}
}

// Silhouette returns the mean silhouette coefficient of a clustering,
// in [−1, 1]; higher means better-separated clusters.
func Silhouette(points [][]float64, labels []int, k int) float64 {
	n := len(points)
	if n == 0 || k < 2 {
		return 0
	}
	var total float64
	var counted int
	for i := range points {
		// Mean distance to own cluster (a) and nearest other cluster (b).
		sums := make([]float64, k)
		counts := make([]int, k)
		for j := range points {
			if i == j {
				continue
			}
			d := math.Sqrt(sqDist(points[i], points[j]))
			sums[labels[j]] += d
			counts[labels[j]]++
		}
		own := labels[i]
		if counts[own] == 0 {
			continue // singleton cluster: silhouette undefined
		}
		a := sums[own] / float64(counts[own])
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || counts[c] == 0 {
				continue
			}
			if m := sums[c] / float64(counts[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// SelectK picks the latent class count L ∈ [1, maxK] by maximizing the
// silhouette over k ≥ 2, falling back to 1 when no multi-cluster fit
// reaches minSilhouette (weakly clustered data is best served by a single
// regression component).
func SelectK(points [][]float64, maxK int, minSilhouette float64, seed int64) int {
	n := len(points)
	if maxK < 1 {
		maxK = 1
	}
	if maxK > n {
		maxK = n
	}
	bestK, bestS := 1, minSilhouette
	for k := 2; k <= maxK; k++ {
		res := Fit(points, k, seed)
		s := Silhouette(points, res.Labels, k)
		if s > bestS {
			bestK, bestS = k, s
		}
	}
	return bestK
}
