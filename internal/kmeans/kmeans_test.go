package kmeans

import (
	"math"
	"math/rand"
	"testing"
)

// blobs generates k well-separated Gaussian clusters.
func blobs(k, perCluster int, sep float64, seed int64) (points [][]float64, truth []int) {
	rng := rand.New(rand.NewSource(seed))
	for c := 0; c < k; c++ {
		cx := float64(c) * sep
		cy := float64(c%2) * sep
		for i := 0; i < perCluster; i++ {
			points = append(points, []float64{cx + rng.NormFloat64()*0.3, cy + rng.NormFloat64()*0.3})
			truth = append(truth, c)
		}
	}
	return points, truth
}

func TestFitRecoverSeparatedBlobs(t *testing.T) {
	points, truth := blobs(3, 40, 10, 1)
	res := Fit(points, 3, 7)
	if res.K != 3 {
		t.Fatalf("K = %d", res.K)
	}
	// Cluster labels must be a permutation of truth: same-cluster pairs
	// stay together.
	perm := map[int]int{}
	for i, l := range res.Labels {
		if want, ok := perm[truth[i]]; ok {
			if l != want {
				t.Fatalf("point %d: cluster %d, want %d", i, l, want)
			}
		} else {
			perm[truth[i]] = l
		}
	}
	if len(perm) != 3 {
		t.Errorf("recovered %d clusters", len(perm))
	}
}

func TestFitDeterministic(t *testing.T) {
	points, _ := blobs(4, 25, 6, 2)
	a := Fit(points, 4, 11)
	b := Fit(points, 4, 11)
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels differ across identical runs")
		}
	}
	if a.Inertia != b.Inertia {
		t.Error("inertia differs across identical runs")
	}
}

func TestFitEdgeCases(t *testing.T) {
	if res := Fit(nil, 3, 1); res.K != 0 {
		t.Error("empty input did not degenerate")
	}
	// k > n clamps to n.
	points := [][]float64{{0, 0}, {1, 1}}
	res := Fit(points, 10, 1)
	if res.K != 2 {
		t.Errorf("K = %d, want 2", res.K)
	}
	// k = 1: all one cluster, inertia = total variance·n.
	res1 := Fit(points, 1, 1)
	for _, l := range res1.Labels {
		if l != 0 {
			t.Error("k=1 produced multiple labels")
		}
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	points, _ := blobs(4, 30, 5, 3)
	prev := math.Inf(1)
	for k := 1; k <= 5; k++ {
		res := Fit(points, k, 13)
		if res.Inertia > prev+1e-9 {
			t.Errorf("inertia increased at k=%d: %g > %g", k, res.Inertia, prev)
		}
		prev = res.Inertia
	}
}

func TestSilhouetteSeparatedVsUniform(t *testing.T) {
	sepPoints, _ := blobs(2, 40, 12, 4)
	sepRes := Fit(sepPoints, 2, 17)
	sSep := Silhouette(sepPoints, sepRes.Labels, 2)
	if sSep < 0.7 {
		t.Errorf("separated blobs silhouette = %g", sSep)
	}
	rng := rand.New(rand.NewSource(5))
	var uni [][]float64
	for i := 0; i < 80; i++ {
		uni = append(uni, []float64{rng.Float64(), rng.Float64()})
	}
	uniRes := Fit(uni, 2, 17)
	sUni := Silhouette(uni, uniRes.Labels, 2)
	if sUni >= sSep {
		t.Errorf("uniform silhouette %g not below separated %g", sUni, sSep)
	}
	if s := Silhouette(sepPoints, sepRes.Labels, 1); s != 0 {
		t.Errorf("k=1 silhouette = %g", s)
	}
}

func TestSelectK(t *testing.T) {
	points, _ := blobs(3, 40, 15, 6)
	if k := SelectK(points, 6, 0.25, 19); k != 3 {
		t.Errorf("SelectK on 3 blobs = %d", k)
	}
	// Unclustered data falls back to 1.
	rng := rand.New(rand.NewSource(7))
	var uni [][]float64
	for i := 0; i < 60; i++ {
		uni = append(uni, []float64{rng.NormFloat64(), rng.NormFloat64()})
	}
	if k := SelectK(uni, 6, 0.5, 19); k != 1 {
		t.Errorf("SelectK on one Gaussian = %d, want 1 at high threshold", k)
	}
}

func TestEmptyClusterReseeding(t *testing.T) {
	// Duplicate points force empty clusters; Fit must not panic and must
	// still label everything.
	points := make([][]float64, 20)
	for i := range points {
		points[i] = []float64{1, 2}
	}
	res := Fit(points, 4, 23)
	if len(res.Labels) != 20 {
		t.Fatal("labels missing")
	}
	if res.Inertia != 0 {
		t.Errorf("identical points inertia = %g", res.Inertia)
	}
}
