// Request IDs and structured logging: the tracing half of the
// observability layer. A request ID is minted (or adopted from the
// X-Request-ID header) at the HTTP boundary, travels down through
// contexts into the batch engine's per-request errors, and surfaces in
// slow-request log lines — so one identifier joins a client's report, the
// server log, and the error a batch returned.
package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"io"
	"log/slog"
	"sync/atomic"
)

// ridPrefix is a per-process random prefix so IDs from different
// processes (or restarts) never collide; ridSeq orders IDs within the
// process.
var (
	ridPrefix = func() string {
		var b [4]byte
		if _, err := crand.Read(b[:]); err != nil {
			// Entropy exhaustion is not a reason to fail request
			// handling; fall back to a fixed prefix and rely on the
			// sequence number.
			return "00000000"
		}
		return hex.EncodeToString(b[:])
	}()
	ridSeq atomic.Uint64
)

// NewRequestID mints a process-unique request ID: an 8-hex-digit process
// prefix plus a monotonic sequence number (so IDs sort in arrival order
// within one process).
func NewRequestID() string {
	n := ridSeq.Add(1)
	const digits = "0123456789abcdef"
	var b [16]byte
	copy(b[:8], ridPrefix)
	for i := 15; i >= 8; i-- {
		b[i] = digits[n&0xf]
		n >>= 4
	}
	return string(b[:])
}

type ridKey struct{}

// WithRequestID attaches a request ID to ctx. An empty id returns ctx
// unchanged.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, ridKey{}, id)
}

// RequestID extracts the request ID attached by WithRequestID, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// NewLogger returns a slog text logger writing to w; a nil w yields a
// logger that discards everything (the no-op default of the serving
// layer's slow-request log).
func NewLogger(w io.Writer) *slog.Logger {
	if w == nil {
		w = io.Discard
	}
	return slog.New(slog.NewTextHandler(w, nil))
}
