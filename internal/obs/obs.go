// Package obs is the unified observability layer of the estimation
// pipeline: a dependency-free, race-safe metrics registry (atomic
// counters, gauges, and fixed-bucket latency histograms with
// p50/p90/p99 snapshots), per-request IDs threaded through contexts, and
// structured logging helpers over log/slog.
//
// The paper's value proposition is that estimation is cheap *relative to
// compression* (§V evaluates predictor cost head-to-head with the
// compressor runs), so where the pipeline spends its time is a
// first-class result, not a debugging afterthought. Every stage —
// feature cache, the five predictors, the batch engine, snapshot I/O,
// the HTTP boundary — records into one registry, and the server exports
// it as JSON at GET /metrics.
//
// Design constraints, in order:
//
//   - Zero third-party dependencies: the registry must be importable
//     from the lowest layers (predictors, featcache) without dragging a
//     metrics client into a numerical library.
//   - Race-safety without lock contention on the hot path: a metric
//     handle, once resolved, is updated with plain atomics; the registry
//     mutex is touched only at handle-resolution time.
//   - Fixed memory: histograms use a fixed bucket layout, so a
//     long-running server's metrics footprint is constant.
//
// Most call sites record into the process-wide Default() registry, which
// is what `crest serve` exports; tests that need isolation construct
// their own with NewRegistry.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// ---------------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// ---------------------------------------------------------------------------
// Gauge

// Gauge is an instantaneous signed level (queue depth, inflight work).
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by delta and returns the new value.
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Set overwrites the gauge.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// ---------------------------------------------------------------------------
// Histogram

// DefBuckets is the default latency bucket layout in seconds: roughly
// logarithmic from 10µs to 10s, dense enough that interpolated p99
// estimates stay within a bucket's width of the truth across the
// pipeline's operating range (predictor evaluation is typically
// 10µs–100ms; HTTP requests 100µs–seconds). The final implicit bucket
// catches everything above the last boundary.
var DefBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram. Observations are
// recorded with atomics only; quantiles are estimated at snapshot time by
// linear interpolation within the covering bucket.
type Histogram struct {
	bounds []float64       // upper bounds, ascending; len(counts) == len(bounds)+1
	counts []atomic.Uint64 // counts[i] covers (bounds[i-1], bounds[i]]
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	min    atomic.Uint64 // float64 bits
	max    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	h := &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value (seconds for latency histograms). NaN is
// dropped; negative values clamp to zero.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	if v < 0 {
		v = 0
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sum, v)
	atomicMinFloat(&h.min, v)
	atomicMaxFloat(&h.max, v)
}

func atomicAddFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if a.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func atomicMinFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if math.Float64frombits(old) <= v || a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func atomicMaxFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if math.Float64frombits(old) >= v || a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time summary of a histogram. Quantiles
// are bucket-interpolated estimates; Min and Max are exact.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot summarizes the histogram. Concurrent observations may land
// between the per-bucket loads; the snapshot is internally consistent to
// within those in-flight updates, never torn within one bucket.
func (h *Histogram) Snapshot() HistogramSnapshot {
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{Count: total, Sum: math.Float64frombits(h.sum.Load())}
	if total == 0 {
		return s
	}
	s.Min = math.Float64frombits(h.min.Load())
	s.Max = math.Float64frombits(h.max.Load())
	s.P50 = h.quantile(counts, total, 0.50)
	s.P90 = h.quantile(counts, total, 0.90)
	s.P99 = h.quantile(counts, total, 0.99)
	return s
}

// quantile estimates the q-quantile by linear interpolation inside the
// bucket holding the target rank, with the interpolation span clamped
// into the exact observed [Min, Max] before interpolating. The clamp
// matters at the edges:
//
//   - A single observation (or a rank bucket whose nominal range
//     extends past the observed extremes) must report a value that was
//     actually observed, not a mid-bucket point outside [Min, Max].
//   - The overflow bucket has no upper bound; its span is
//     [max(lastBound, Min), Max], so an all-overflow distribution
//     interpolates between its observed extremes instead of pinning
//     every quantile — P50 included — to the maximum.
func (h *Histogram) quantile(counts []uint64, total uint64, q float64) float64 {
	min := math.Float64frombits(h.min.Load())
	max := math.Float64frombits(h.max.Load())
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lo, hi := 0.0, max
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			// Clamp the bucket span to the observed range: observations
			// in this bucket cannot lie below Min or above Max.
			if lo < min {
				lo = min
			}
			if hi > max {
				hi = max
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return max
}

// ---------------------------------------------------------------------------
// Registry

// Registry is a race-safe namespace of metrics. Handles are resolved by
// name once (under a short mutex) and then updated lock-free; resolving
// an existing name returns the same handle. The zero value is not usable;
// construct with NewRegistry or use the process-wide Default.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry: the one `crest serve`
// exports at GET /metrics and the default sink of every instrumented
// pipeline stage.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter registered under name, creating it on
// first use. Registering a name already held by another metric type
// panics: metric names are a static, code-owned namespace, so a clash is
// a programming error, not an input error.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.mustBeFree(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.mustBeFree(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use (nil selects
// DefBuckets). The bucket layout of an existing histogram is not
// re-checked: first registration wins.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	r.mustBeFree(name, "histogram")
	if buckets == nil {
		buckets = DefBuckets
	}
	h := newHistogram(buckets)
	r.histograms[name] = h
	return h
}

func (r *Registry) mustBeFree(name, want string) {
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a counter, requested as %s", name, want))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a gauge, requested as %s", name, want))
	}
	if _, ok := r.histograms[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a histogram, requested as %s", name, want))
	}
}

// Snapshot is a point-in-time JSON-serializable view of a registry.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered metric. It takes the registry mutex
// only to copy the handle maps; the metric reads themselves are atomic.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	cs := make(map[string]*Counter, len(r.counters))
	gs := make(map[string]*Gauge, len(r.gauges))
	hs := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.counters {
		cs[k] = v
	}
	for k, v := range r.gauges {
		gs[k] = v
	}
	for k, v := range r.histograms {
		hs[k] = v
	}
	r.mu.Unlock()

	out := Snapshot{
		Counters:   make(map[string]uint64, len(cs)),
		Gauges:     make(map[string]int64, len(gs)),
		Histograms: make(map[string]HistogramSnapshot, len(hs)),
	}
	for k, v := range cs {
		out.Counters[k] = v.Value()
	}
	for k, v := range gs {
		out.Gauges[k] = v.Value()
	}
	for k, v := range hs {
		out.Histograms[k] = v.Snapshot()
	}
	return out
}
