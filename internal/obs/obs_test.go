package obs

import (
	"context"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("reqs_total") != c {
		t.Fatal("re-resolving a counter must return the same handle")
	}
	g := r.Gauge("depth")
	g.Add(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestTypeClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter name as a gauge must panic")
		}
	}()
	r.Gauge("x")
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", nil)
	// 1000 observations uniform over (0, 1]s: p50 ≈ 0.5, p90 ≈ 0.9.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if math.Abs(s.Sum-500.5) > 1e-6 {
		t.Fatalf("sum = %g, want 500.5", s.Sum)
	}
	if s.Min != 0.001 || s.Max != 1 {
		t.Fatalf("min/max = %g/%g, want 0.001/1", s.Min, s.Max)
	}
	// Bucket interpolation error is bounded by the covering bucket width.
	if math.Abs(s.P50-0.5) > 0.25 {
		t.Fatalf("p50 = %g, want ≈0.5", s.P50)
	}
	if math.Abs(s.P90-0.9) > 0.5 {
		t.Fatalf("p90 = %g, want ≈0.9", s.P90)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 {
		t.Fatalf("quantiles must be ordered: p50=%g p90=%g p99=%g", s.P50, s.P90, s.P99)
	}
	if s.P99 > s.Max {
		t.Fatalf("p99 %g exceeds observed max %g", s.P99, s.Max)
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("one", nil)
	h.Observe(0.42)
	s := h.Snapshot()
	if s.Count != 1 || s.Min != 0.42 || s.Max != 0.42 {
		t.Fatalf("snapshot = %+v", s)
	}
	// All quantiles of a single observation stay within [min, max].
	for _, q := range []float64{s.P50, s.P90, s.P99} {
		if q < s.Min || q > s.Max {
			t.Fatalf("quantile %g outside [%g, %g]", q, s.Min, s.Max)
		}
	}
}

func TestHistogramOverflowAndClamp(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("of", []float64{1, 2})
	h.Observe(100) // overflow bucket
	h.Observe(-5)  // clamps to 0
	h.Observe(math.NaN())
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2 (NaN dropped)", s.Count)
	}
	if s.Max != 100 || s.Min != 0 {
		t.Fatalf("min/max = %g/%g", s.Min, s.Max)
	}
	// The overflow bucket has no upper bound; its quantiles interpolate
	// over [lastBound, Max] rather than pinning to Max.
	if s.P99 < 2 || s.P99 > s.Max {
		t.Fatalf("overflow-bucket p99 = %g, want within [2, %g]", s.P99, s.Max)
	}
}

// TestHistogramAllOverflowBucket is the regression test for the
// overflow-pinning bug: when every observation lands past the last
// bucket boundary, quantiles used to collapse to Max — the median of
// {42, 55} reported 55. They must interpolate over the observed span.
func TestHistogramAllOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ofonly", []float64{1, 2})
	h.Observe(42)
	h.Observe(55)
	s := h.Snapshot()
	if s.Min != 42 || s.Max != 55 {
		t.Fatalf("min/max = %g/%g, want 42/55", s.Min, s.Max)
	}
	if s.P50 >= s.Max {
		t.Fatalf("all-overflow p50 = %g pinned to max %g", s.P50, s.Max)
	}
	if s.P50 < s.Min {
		t.Fatalf("all-overflow p50 = %g below min %g", s.P50, s.Min)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 {
		t.Fatalf("quantiles must be ordered: p50=%g p90=%g p99=%g", s.P50, s.P90, s.P99)
	}
}

// TestHistogramQuantilesWithinRange: for any mix of observations —
// sub-minimum bucket spans, overflow bucket, single values — every
// reported quantile must lie inside the exact observed [Min, Max].
func TestHistogramQuantilesWithinRange(t *testing.T) {
	cases := [][]float64{
		{0.42},
		{0.42, 0.55},
		{100, 200, 300},          // all overflow with DefBuckets' 10s cap... still in-range
		{1e-7},                   // far below the first bound
		{1e-7, 1e-6, 11, 12, 13}, // both tails at once
		{0.003, 0.003, 0.003},    // repeated value inside one bucket
	}
	for ci, vals := range cases {
		r := NewRegistry()
		h := r.Histogram("rng", nil)
		for _, v := range vals {
			h.Observe(v)
		}
		s := h.Snapshot()
		for _, q := range []struct {
			name string
			v    float64
		}{{"p50", s.P50}, {"p90", s.P90}, {"p99", s.P99}} {
			if q.v < s.Min || q.v > s.Max {
				t.Errorf("case %d %v: %s = %g outside [%g, %g]", ci, vals, q.name, q.v, s.Min, s.Max)
			}
		}
		if s.P50 > s.P90 || s.P90 > s.P99 {
			t.Errorf("case %d %v: quantiles out of order: %g/%g/%g", ci, vals, s.P50, s.P90, s.P99)
		}
	}
}

func TestEmptyHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	s := r.Histogram("empty", nil).Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot = %+v, want zeros", s)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(-2)
	r.Histogram("h", nil).Observe(0.01)
	doc, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(doc, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["c"] != 3 || back.Gauges["g"] != -2 || back.Histograms["h"].Count != 1 {
		t.Fatalf("round-trip snapshot = %+v", back)
	}
}

// TestRegistryHammer drives every metric type from many goroutines while
// snapshots are taken concurrently; run under -race this is the
// registry's data-race certification.
func TestRegistryHammer(t *testing.T) {
	r := NewRegistry()
	const (
		goroutines = 8
		iters      = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("hammer_total")
			ga := r.Gauge("hammer_depth")
			h := r.Histogram("hammer_lat", nil)
			for i := 0; i < iters; i++ {
				c.Inc()
				ga.Add(1)
				h.Observe(float64(i%100) / 1000)
				ga.Add(-1)
				if i%500 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["hammer_total"] != goroutines*iters {
		t.Fatalf("counter = %d, want %d", s.Counters["hammer_total"], goroutines*iters)
	}
	if s.Gauges["hammer_depth"] != 0 {
		t.Fatalf("gauge = %d, want 0", s.Gauges["hammer_depth"])
	}
	if s.Histograms["hammer_lat"].Count != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", s.Histograms["hammer_lat"].Count, goroutines*iters)
	}
}

func TestRequestIDs(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Fatalf("request IDs must be unique: %s == %s", a, b)
	}
	if len(a) != 16 {
		t.Fatalf("request ID %q should be 16 chars", a)
	}
	ctx := WithRequestID(context.Background(), a)
	if got := RequestID(ctx); got != a {
		t.Fatalf("RequestID = %q, want %q", got, a)
	}
	if got := RequestID(context.Background()); got != "" {
		t.Fatalf("RequestID of bare context = %q, want empty", got)
	}
	if ctx2 := WithRequestID(context.Background(), ""); RequestID(ctx2) != "" {
		t.Fatal("empty id must not be attached")
	}
}

func TestNewLoggerNilDiscards(t *testing.T) {
	lg := NewLogger(nil)
	lg.Info("goes nowhere", "k", "v") // must not panic
}
