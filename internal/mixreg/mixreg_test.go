package mixreg

import (
	"math"
	"math/rand"
	"testing"
)

// twoLineData draws from two linear regimes with covariate-separated
// clusters: cluster 0 lives at x≈(0,0) with y = 1 + 2x₁ − x₂, cluster 1 at
// x≈(10,10) with y = −5 + 0.5x₁ + 3x₂.
func twoLineData(n int, noise float64, seed int64) (x [][]float64, y []float64, labels []int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		c := i % 2
		var x1, x2 float64
		if c == 0 {
			x1, x2 = rng.NormFloat64(), rng.NormFloat64()
			y = append(y, 1+2*x1-x2+noise*rng.NormFloat64())
		} else {
			x1, x2 = 10+rng.NormFloat64(), 10+rng.NormFloat64()
			y = append(y, -5+0.5*x1+3*x2+noise*rng.NormFloat64())
		}
		x = append(x, []float64{x1, x2})
		labels = append(labels, c)
	}
	return x, y, labels
}

func TestFitSingleComponentIsLinearRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 200
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x1, x2 := rng.NormFloat64(), rng.NormFloat64()
		x[i] = []float64{x1, x2}
		y[i] = 3 - 1.5*x1 + 0.5*x2
	}
	m, err := Fit(x, y, Config{L: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.L != 1 {
		t.Fatalf("L = %d", m.L)
	}
	want := []float64{3, -1.5, 0.5}
	for i, w := range want {
		if math.Abs(m.Beta[0][i]-w) > 1e-4 {
			t.Errorf("beta[%d] = %g, want %g", i, m.Beta[0][i], w)
		}
	}
	// Noise-free fit: sigma at its floor.
	if m.Sigma[0] > 1e-3 {
		t.Errorf("sigma = %g for noiseless data", m.Sigma[0])
	}
}

func TestFitRecoversTwoComponents(t *testing.T) {
	x, y, _ := twoLineData(300, 0.05, 2)
	m, err := Fit(x, y, Config{L: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.L != 2 {
		t.Fatalf("L = %d", m.L)
	}
	// Both mixing weights near 1/2.
	for c := 0; c < 2; c++ {
		if m.Pi[c] < 0.4 || m.Pi[c] > 0.6 {
			t.Errorf("pi[%d] = %g", c, m.Pi[c])
		}
	}
	// One component must match each regime (order unknown).
	wantA := []float64{1, 2, -1}
	wantB := []float64{-5, 0.5, 3}
	matchA := betaClose(m.Beta[0], wantA, 0.2) || betaClose(m.Beta[1], wantA, 0.2)
	matchB := betaClose(m.Beta[0], wantB, 0.2) || betaClose(m.Beta[1], wantB, 0.2)
	if !matchA || !matchB {
		t.Errorf("components %v / %v do not match regimes", m.Beta[0], m.Beta[1])
	}
}

func betaClose(got, want []float64, tol float64) bool {
	for i := range want {
		if math.Abs(got[i]-want[i]) > tol {
			return false
		}
	}
	return true
}

func TestGatedPredictionRoutesByRegion(t *testing.T) {
	x, y, _ := twoLineData(300, 0.05, 4)
	m, err := Fit(x, y, Config{L: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// A point deep in cluster 0 territory must be predicted by the
	// cluster-0 line, not by a π-weighted average of both.
	pred := m.Predict([]float64{0.5, -0.5})
	want := 1 + 2*0.5 - (-0.5)
	if math.Abs(pred-want) > 0.3 {
		t.Errorf("gated prediction %g, want ≈%g", pred, want)
	}
	pred2 := m.Predict([]float64{10, 10})
	want2 := -5 + 0.5*10 + 3*10.0
	if math.Abs(pred2-want2) > 1.0 {
		t.Errorf("gated prediction %g, want ≈%g", pred2, want2)
	}
	// Gate weights are a distribution.
	g := m.Gate([]float64{0, 0})
	var sum float64
	for _, w := range g {
		if w < 0 {
			t.Fatalf("negative gate %g", w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("gate sums to %g", sum)
	}
	// Near cluster 0 the gate must favor that component decisively.
	best := 0
	for c := range g {
		if g[c] > g[best] {
			best = c
		}
	}
	if g[best] < 0.95 {
		t.Errorf("gate not decisive at a cluster center: %v", g)
	}
}

func TestAutoSelectL(t *testing.T) {
	x, y, _ := twoLineData(300, 0.05, 6)
	m, err := Fit(x, y, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if m.L != 2 {
		t.Errorf("auto-selected L = %d, want 2", m.L)
	}
}

func TestComponentCapOnSmallData(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 10
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y[i] = rng.NormFloat64()
	}
	m, err := Fit(x, y, Config{L: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.L != 1 {
		t.Errorf("L = %d on 10 samples with 5 covariates, want capped to 1", m.L)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Fit(nil, nil, Config{}); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, Config{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Fit([][]float64{{1, 2}, {1}}, []float64{1, 2}, Config{}); err == nil {
		t.Error("ragged covariates accepted")
	}
}

func TestPredictAllAndDensity(t *testing.T) {
	x, y, _ := twoLineData(200, 0.1, 9)
	m, err := Fit(x, y, Config{L: 2, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	preds := m.PredictAll(x)
	if len(preds) != len(x) {
		t.Fatal("PredictAll length")
	}
	var mse float64
	for i := range preds {
		mse += (preds[i] - y[i]) * (preds[i] - y[i])
	}
	mse /= float64(len(preds))
	if mse > 0.1 {
		t.Errorf("training MSE = %g", mse)
	}
	// Density is positive at observed points and integrates sensibly
	// (spot check: higher at the observation than far away).
	d1 := m.Density(y[0], x[0])
	d2 := m.Density(y[0]+100, x[0])
	if d1 <= d2 {
		t.Errorf("density not peaked: %g vs %g", d1, d2)
	}
}

func TestDegenerateConstantTarget(t *testing.T) {
	x := make([][]float64, 30)
	y := make([]float64, 30)
	rng := rand.New(rand.NewSource(11))
	for i := range x {
		x[i] = []float64{rng.NormFloat64()}
		y[i] = 7 // constant
	}
	m, err := Fit(x, y, Config{L: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The ridge penalty shrinks the intercept by O(ridge), so allow that.
	if p := m.Predict([]float64{0.3}); math.Abs(p-7) > 1e-4 {
		t.Errorf("constant target predicted %g", p)
	}
}
