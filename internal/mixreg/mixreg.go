// Package mixreg implements the mixture-of-linear-regressions model of
// §IV-B1, fitted by expectation-maximization with k-means initialization
// and a ridge-regularized weighted-least-squares M-step. The latent class
// count L is a hyperparameter selected with k-means (silhouette) when not
// fixed, exactly as the paper prescribes.
package mixreg

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/kmeans"
	"github.com/crestlab/crest/internal/linalg"
	"github.com/crestlab/crest/internal/stats"
)

// Config tunes the EM fit.
type Config struct {
	// L fixes the number of latent components; 0 selects it with k-means
	// silhouette up to MaxL.
	L int
	// MaxL caps the automatic selection (default 4).
	MaxL int
	// Ridge is the M-step L2 regularization (default 1e-6).
	Ridge float64
	// MaxIter caps EM iterations (default 200).
	MaxIter int
	// Tol is the relative log-likelihood convergence threshold
	// (default 1e-8).
	Tol float64
	// Seed drives the deterministic initialization.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MaxL <= 0 {
		c.MaxL = 4
	}
	if c.Ridge <= 0 {
		c.Ridge = 1e-6
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 200
	}
	if c.Tol <= 0 {
		c.Tol = 1e-8
	}
	return c
}

// Model is a fitted mixture of linear regressions: component weights π_l,
// per-component coefficients β_l (intercept first) and noise σ_l. The
// per-component covariate distributions (XMean, XVar) act as a generative
// gate at prediction time: a new point is routed to the components whose
// covariate region it falls in, which is what makes the mixture effective
// on heterogeneous multi-field data (§IV-B1's grouping effects).
type Model struct {
	L     int
	D     int // number of covariates
	Pi    []float64
	Beta  [][]float64 // L × (D+1), β[l][0] is the intercept
	Sigma []float64
	// XMean and XVar are the responsibility-weighted per-component
	// covariate means and (diagonal) variances used for gating.
	XMean [][]float64
	XVar  [][]float64
	// LogLik is the final training log-likelihood.
	LogLik float64
	// Iterations is the number of EM iterations performed.
	Iterations int
}

// ErrNoData reports an empty training set.
var ErrNoData = errors.New("mixreg: no training data")

// Fit trains the mixture on covariate rows X and targets y.
func Fit(x [][]float64, y []float64, cfg Config) (*Model, error) {
	return FitContext(context.Background(), x, y, cfg)
}

// FitContext is Fit with cooperative cancellation: the context is checked
// before every EM iteration, so a cancelled training run returns within
// one iteration with an error matching crerr.ErrCanceled.
func FitContext(ctx context.Context, x [][]float64, y []float64, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, ErrNoData
	}
	d := len(x[0])
	for i, row := range x {
		if len(row) != d {
			return nil, fmt.Errorf("mixreg: row %d has %d covariates, want %d", i, len(row), d)
		}
	}

	l := cfg.L
	if l <= 0 {
		l = selectL(x, y, cfg)
	}
	// Each component estimates d+2 parameters (coefficients, intercept,
	// variance); cap L so every component can see at least twice that
	// many points on average, preventing degenerate fits on small folds.
	if maxL := n / (2 * (d + 2)); l > maxL {
		l = maxL
	}
	if l < 1 {
		l = 1
	}
	if l > n {
		l = n
	}

	m := &Model{L: l, D: d,
		Pi:    make([]float64, l),
		Beta:  make([][]float64, l),
		Sigma: make([]float64, l),
		XMean: make([][]float64, l),
		XVar:  make([][]float64, l),
	}
	// Responsibilities from k-means on the joint (x, y) space.
	resp := initResponsibilities(x, y, l, cfg.Seed)

	sigmaFloor := 1e-6*stats.StdDev(y) + 1e-12
	prevLL := math.Inf(-1)
	for iter := 1; iter <= cfg.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, crerr.Canceled(err)
		}
		// M-step: weighted ridge regression per component, plus the
		// covariate moments of the gating distribution.
		for c := 0; c < l; c++ {
			beta, sigma, weight := wls(x, y, resp, c, cfg.Ridge, sigmaFloor)
			m.Beta[c] = beta
			m.Sigma[c] = sigma
			m.Pi[c] = weight / float64(n)
			m.XMean[c], m.XVar[c] = weightedMoments(x, resp, c)
		}
		normalizePi(m.Pi)

		// E-step and log-likelihood.
		ll := 0.0
		for i := range x {
			var total float64
			dens := make([]float64, l)
			for c := 0; c < l; c++ {
				dens[c] = m.Pi[c] * normalPDF(y[i], m.mean(c, x[i]), m.Sigma[c])
				total += dens[c]
			}
			if total <= 0 || math.IsNaN(total) {
				// Degenerate point: spread responsibility evenly.
				for c := 0; c < l; c++ {
					resp[i][c] = 1 / float64(l)
				}
				ll += math.Log(1e-300)
				continue
			}
			for c := 0; c < l; c++ {
				resp[i][c] = dens[c] / total
			}
			ll += math.Log(total)
		}
		m.LogLik = ll
		m.Iterations = iter
		if iter > 1 && math.Abs(ll-prevLL) <= cfg.Tol*(math.Abs(prevLL)+1) {
			break
		}
		prevLL = ll
	}
	return m, nil
}

// Degenerate reports whether the fitted model is numerically unusable:
// any non-finite mixture weight, coefficient, noise scale or gating
// moment, or a NaN final log-likelihood. Callers (core.Train) fall back
// to a single-component linear fit when EM degenerates.
func (m *Model) Degenerate() bool {
	if m.L < 1 || math.IsNaN(m.LogLik) {
		return true
	}
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	for c := 0; c < m.L; c++ {
		if !finite(m.Pi[c]) || !finite(m.Sigma[c]) || m.Sigma[c] <= 0 {
			return true
		}
		for _, b := range m.Beta[c] {
			if !finite(b) {
				return true
			}
		}
		for j := range m.XMean[c] {
			if !finite(m.XMean[c][j]) || !finite(m.XVar[c][j]) {
				return true
			}
		}
	}
	return false
}

// selectL chooses the latent class count with k-means silhouette over the
// joint standardized (x, y) space (§IV-B1).
func selectL(x [][]float64, y []float64, cfg Config) int {
	pts := joint(x, y)
	return kmeans.SelectK(pts, cfg.MaxL, 0.25, cfg.Seed)
}

// joint builds standardized (x, y) points for clustering.
func joint(x [][]float64, y []float64) [][]float64 {
	n := len(x)
	d := len(x[0])
	pts := make([][]float64, n)
	// Column standardization so no covariate dominates the metric.
	means := make([]float64, d+1)
	stds := make([]float64, d+1)
	for j := 0; j < d; j++ {
		col := make([]float64, n)
		for i := range x {
			col[i] = x[i][j]
		}
		means[j], stds[j] = stats.MeanStd(col)
	}
	means[d], stds[d] = stats.MeanStd(y)
	for j := range stds {
		if stds[j] == 0 {
			stds[j] = 1
		}
	}
	for i := range x {
		p := make([]float64, d+1)
		for j := 0; j < d; j++ {
			p[j] = (x[i][j] - means[j]) / stds[j]
		}
		p[d] = (y[i] - means[d]) / stds[d]
		pts[i] = p
	}
	return pts
}

func initResponsibilities(x [][]float64, y []float64, l int, seed int64) [][]float64 {
	n := len(x)
	resp := make([][]float64, n)
	labels := kmeans.Fit(joint(x, y), l, seed).Labels
	for i := range resp {
		resp[i] = make([]float64, l)
		// Soft assignment: 0.9 to the k-means cluster, rest spread.
		for c := 0; c < l; c++ {
			resp[i][c] = 0.1 / float64(l)
		}
		resp[i][labels[i]] += 0.9
	}
	return resp
}

// wls solves the responsibility-weighted ridge regression for component c
// and returns (β, σ, total weight).
func wls(x [][]float64, y []float64, resp [][]float64, c int, ridge, sigmaFloor float64) ([]float64, float64, float64) {
	d := len(x[0])
	p := d + 1
	ata := linalg.NewMatrix(p, p)
	atb := make([]float64, p)
	var weight float64
	row := make([]float64, p)
	for i := range x {
		w := resp[i][c]
		if w <= 0 {
			continue
		}
		weight += w
		row[0] = 1
		copy(row[1:], x[i])
		for a := 0; a < p; a++ {
			wa := w * row[a]
			atb[a] += wa * y[i]
			r := ata.Row(a)
			for bI := 0; bI < p; bI++ {
				r[bI] += wa * row[bI]
			}
		}
	}
	scale := weight
	if scale <= 0 {
		scale = 1
	}
	for a := 0; a < p; a++ {
		ata.Add(a, a, ridge*scale)
	}
	beta, err := linalg.SolveSPD(ata, atb)
	if err != nil {
		beta = make([]float64, p) // fall back to the zero model
	}
	// Weighted residual variance.
	var rss float64
	for i := range x {
		w := resp[i][c]
		if w <= 0 {
			continue
		}
		pred := beta[0]
		for j := 0; j < d; j++ {
			pred += beta[j+1] * x[i][j]
		}
		r := y[i] - pred
		rss += w * r * r
	}
	sigma := sigmaFloor
	if weight > 0 {
		sigma = math.Max(math.Sqrt(rss/weight), sigmaFloor)
	}
	return beta, sigma, weight
}

// weightedMoments returns the responsibility-weighted mean and diagonal
// variance of the covariates for component c, floored for stability.
func weightedMoments(x [][]float64, resp [][]float64, c int) (mean, variance []float64) {
	d := len(x[0])
	mean = make([]float64, d)
	variance = make([]float64, d)
	var weight float64
	for i := range x {
		w := resp[i][c]
		weight += w
		for j, v := range x[i] {
			mean[j] += w * v
		}
	}
	if weight <= 0 {
		for j := range variance {
			variance[j] = 1
		}
		return mean, variance
	}
	for j := range mean {
		mean[j] /= weight
	}
	for i := range x {
		w := resp[i][c]
		for j, v := range x[i] {
			diff := v - mean[j]
			variance[j] += w * diff * diff
		}
	}
	for j := range variance {
		variance[j] = variance[j]/weight + 1e-4 // floor: gate stays proper
	}
	return mean, variance
}

func normalizePi(pi []float64) {
	var s float64
	for _, v := range pi {
		s += v
	}
	if s <= 0 {
		for i := range pi {
			pi[i] = 1 / float64(len(pi))
		}
		return
	}
	for i := range pi {
		pi[i] /= s
	}
}

func normalPDF(y, mu, sigma float64) float64 {
	if sigma <= 0 {
		return 0
	}
	z := (y - mu) / sigma
	return math.Exp(-0.5*z*z) / (sigma * math.Sqrt(2*math.Pi))
}

// mean returns the component-c regression mean for covariates x.
func (m *Model) mean(c int, x []float64) float64 {
	pred := m.Beta[c][0]
	for j := 0; j < m.D; j++ {
		pred += m.Beta[c][j+1] * x[j]
	}
	return pred
}

// Gate returns the posterior component weights for covariates x,
// π_l(x) ∝ π_l·N(x; μ_l, diag σ_l²). When every component's density
// underflows (far extrapolation) the prior weights are returned.
func (m *Model) Gate(x []float64) []float64 {
	w := make([]float64, m.L)
	// Log-domain for numerical stability.
	logw := make([]float64, m.L)
	maxLog := math.Inf(-1)
	for c := 0; c < m.L; c++ {
		lw := math.Log(math.Max(m.Pi[c], 1e-300))
		for j := 0; j < m.D; j++ {
			v := m.XVar[c][j]
			diff := x[j] - m.XMean[c][j]
			lw += -0.5*diff*diff/v - 0.5*math.Log(2*math.Pi*v)
		}
		logw[c] = lw
		if lw > maxLog {
			maxLog = lw
		}
	}
	if math.IsInf(maxLog, -1) || math.IsNaN(maxLog) {
		copy(w, m.Pi)
		return w
	}
	var total float64
	for c := 0; c < m.L; c++ {
		w[c] = math.Exp(logw[c] - maxLog)
		total += w[c]
	}
	for c := range w {
		w[c] /= total
	}
	return w
}

// Predict returns the gated mixture conditional mean
// E[y|x] = Σ_l π_l(x)·(β_l·x).
func (m *Model) Predict(x []float64) float64 {
	gate := m.Gate(x)
	var out float64
	for c := 0; c < m.L; c++ {
		out += gate[c] * m.mean(c, x)
	}
	return out
}

// PredictAll maps Predict over rows.
func (m *Model) PredictAll(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = m.Predict(row)
	}
	return out
}

// Density returns the mixture conditional density f(y|x), used by
// diagnostics and tests.
func (m *Model) Density(y float64, x []float64) float64 {
	var total float64
	for c := 0; c < m.L; c++ {
		total += m.Pi[c] * normalPDF(y, m.mean(c, x), m.Sigma[c])
	}
	return total
}
