package mixreg

import "testing"

func BenchmarkFitAuto(b *testing.B) {
	x, y, _ := twoLineData(300, 0.1, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(x, y, Config{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitL1(b *testing.B) {
	x, y, _ := twoLineData(300, 0.1, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(x, y, Config{L: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	x, y, _ := twoLineData(300, 0.1, 11)
	m, err := Fit(x, y, Config{L: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	q := []float64{5, 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(q)
	}
}
