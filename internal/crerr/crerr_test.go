package crerr

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestCanceledMatchesBothSentinels(t *testing.T) {
	err := Canceled(context.DeadlineExceeded)
	if !errors.Is(err, ErrCanceled) {
		t.Error("canceled error does not match ErrCanceled")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("canceled error does not match its context cause")
	}
	if errors.Is(err, context.Canceled) {
		t.Error("deadline error must not match context.Canceled")
	}
	if !errors.Is(Canceled(nil), context.Canceled) {
		t.Error("nil cause should default to context.Canceled")
	}
}

func TestRecoveredClassifiesAndKeepsValue(t *testing.T) {
	err := Recovered("index out of range", ErrInvalidBuffer)
	if !errors.Is(err, ErrInvalidBuffer) {
		t.Error("recovered panic does not match its sentinel")
	}
	v, ok := PanicValue(err)
	if !ok || v != "index out of range" {
		t.Errorf("PanicValue = %v, %v", v, ok)
	}
	if _, ok := PanicValue(errors.New("plain")); ok {
		t.Error("plain error reported a panic value")
	}
	// Wrapping must not hide the panic value.
	wrapped := fmt.Errorf("request 3: %w", err)
	if _, ok := PanicValue(wrapped); !ok {
		t.Error("wrapped panic error lost its value")
	}
}

func TestAggregatePreservesEveryIndex(t *testing.T) {
	errs := make([]error, 6)
	errs[1] = fmt.Errorf("feature: %w", ErrNonFiniteData)
	errs[4] = fmt.Errorf("compress: %w", ErrCompressor)
	err := Aggregate(errs)
	if err == nil {
		t.Fatal("Aggregate returned nil for failing slots")
	}
	var agg *AggregateError
	if !errors.As(err, &agg) {
		t.Fatalf("Aggregate returned %T", err)
	}
	if got := agg.Indices(); len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Errorf("Indices = %v", got)
	}
	if agg.Total != 6 {
		t.Errorf("Total = %d", agg.Total)
	}
	if !errors.Is(err, ErrNonFiniteData) || !errors.Is(err, ErrCompressor) {
		t.Error("aggregate does not match member sentinels")
	}
	if errors.Is(err, ErrCanceled) {
		t.Error("aggregate matches a sentinel no member carries")
	}
	if agg.ByIndex(4) == nil || agg.ByIndex(0) != nil {
		t.Error("ByIndex misroutes")
	}
	if !strings.Contains(err.Error(), "2/6 requests failed") {
		t.Errorf("summary message %q", err)
	}
}

func TestAggregateNilWhenAllSucceed(t *testing.T) {
	if err := Aggregate(make([]error, 3)); err != nil {
		t.Errorf("Aggregate of successes = %v", err)
	}
	if err := Aggregate(nil); err != nil {
		t.Errorf("Aggregate of empty = %v", err)
	}
}

func TestAggregateMessageTruncates(t *testing.T) {
	errs := make([]error, 10)
	for i := range errs {
		errs[i] = ErrInvalidBuffer
	}
	msg := Aggregate(errs).Error()
	if !strings.Contains(msg, "and 6 more") {
		t.Errorf("long aggregate not truncated: %q", msg)
	}
}
