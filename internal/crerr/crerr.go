// Package crerr is the error taxonomy of the estimation pipeline. Every
// failure that can cross a public API boundary is classified under one of
// a small set of sentinel errors so callers can route on failure class
// with errors.Is instead of string matching, and multi-request paths (the
// batch engine, sample collection, cache warming) aggregate per-request
// failures without losing either the failing indices or the successes.
//
// The package sits below every other internal package (it imports only
// the standard library), so grid, featcache, batch, core and eval can all
// classify their failures consistently.
package crerr

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
)

// Sentinel errors of the pipeline. All errors returned by the estimation
// stack wrap exactly one of these (match with errors.Is).
var (
	// ErrInvalidBuffer reports a buffer whose shape or backing storage is
	// inconsistent (non-positive dimensions, data length mismatch, nil
	// buffer) or an invalid request parameter such as a non-positive
	// error bound.
	ErrInvalidBuffer = errors.New("crest: invalid buffer")

	// ErrNonFiniteData reports buffer data whose NaN/Inf fraction exceeds
	// the validation policy in force.
	ErrNonFiniteData = errors.New("crest: non-finite data")

	// ErrCanceled reports work abandoned because a context was canceled
	// or its deadline expired. Errors matching it also match the
	// underlying context sentinel (context.Canceled or
	// context.DeadlineExceeded).
	ErrCanceled = errors.New("crest: canceled")

	// ErrModelDegenerate reports a model fit that could not produce a
	// usable estimator even after falling back to the single-component
	// linear fit.
	ErrModelDegenerate = errors.New("crest: degenerate model fit")

	// ErrCompressor reports a compressor failure (error or recovered
	// panic) during ground-truth collection.
	ErrCompressor = errors.New("crest: compressor failure")

	// ErrSnapshotCorrupt reports a model snapshot whose envelope is
	// malformed, whose payload digest does not match, or whose decoded
	// state fails validation — anything short of a loadable model.
	ErrSnapshotCorrupt = errors.New("crest: snapshot corrupt")

	// ErrSnapshotVersion reports a model snapshot written with a format
	// version this build does not speak. The snapshot may be perfectly
	// intact; the reader is the wrong vintage.
	ErrSnapshotVersion = errors.New("crest: snapshot version skew")

	// ErrOverloaded reports work refused by admission control: the
	// serving layer's inflight and queue bounds were both full, so the
	// request was shed rather than allowed to collapse the process.
	// Overload is transient by definition — callers should back off
	// (honoring any Retry-After hint) and retry.
	ErrOverloaded = errors.New("crest: overloaded")

	// ErrDraining reports work refused because the process is shutting
	// down: readiness has been withdrawn and no new work is admitted
	// while inflight requests finish.
	ErrDraining = errors.New("crest: draining")

	// ErrBodyTooLarge reports a request body rejected by the serving
	// layer's size cap before it was fully read. Distinct from
	// ErrInvalidBuffer so the HTTP boundary can answer 413 (the client
	// must shrink the payload) rather than 400 (the payload is
	// malformed).
	ErrBodyTooLarge = errors.New("crest: request body too large")

	// ErrStreamCorrupt reports a chunked block stream (grid.ChunkReader)
	// that cannot be decoded: bad magic or version, a header outside the
	// configured ingest limits, a chunk frame that overruns the declared
	// shape, or a stream truncated mid-chunk. Errors from the underlying
	// reader are wrapped alongside this sentinel, so both
	// errors.Is(err, ErrStreamCorrupt) and errors.Is(err, <cause>) hold.
	ErrStreamCorrupt = errors.New("crest: block stream corrupt")

	// ErrQuotaExceeded reports work refused because the requesting tenant
	// spent its admission quota. Deliberately distinct from ErrOverloaded:
	// quota exhaustion is the *tenant's* backpressure (HTTP 429 with a
	// per-tenant Retry-After), not the server's (503) — the server has
	// capacity, this tenant just is not entitled to more of it right now.
	// Clients should wait out the Retry-After hint and resume; the
	// condition says nothing about server health, so it must not trip
	// circuit breakers or count toward peer failure ejection.
	ErrQuotaExceeded = errors.New("crest: tenant quota exceeded")

	// ErrUnknownLineage reports a request routed at a model lineage the
	// registry does not host (and that has no default to fall back to).
	ErrUnknownLineage = errors.New("crest: unknown model lineage")
)

// Canceled wraps a context error (or nil, treated as context.Canceled) so
// the result matches both ErrCanceled and the original context sentinel.
func Canceled(cause error) error {
	if cause == nil {
		cause = context.Canceled
	}
	return &canceledError{cause: cause}
}

type canceledError struct{ cause error }

func (e *canceledError) Error() string {
	return "crest: canceled: " + e.cause.Error()
}

// Unwrap exposes both the taxonomy sentinel and the context cause, so
// errors.Is(err, ErrCanceled) and errors.Is(err, context.Canceled) (or
// context.DeadlineExceeded) both hold.
func (e *canceledError) Unwrap() []error { return []error{ErrCanceled, e.cause} }

// Recovered converts a recovered panic value into an error classified
// under sentinel, capturing the stack at the recovery site. It is the
// bridge that keeps panics from malformed buffers or injected faults from
// escaping worker goroutines.
func Recovered(v any, sentinel error) error {
	return &panicError{v: v, sentinel: sentinel, stack: debug.Stack()}
}

type panicError struct {
	v        any
	sentinel error
	stack    []byte
}

func (e *panicError) Error() string {
	return fmt.Sprintf("%v: recovered panic: %v", e.sentinel, e.v)
}

func (e *panicError) Unwrap() error { return e.sentinel }

// Stack returns the goroutine stack captured at the recovery site.
func (e *panicError) Stack() []byte { return e.stack }

// PanicValue extracts the recovered panic value when err (or an error it
// wraps) originated from Recovered.
func PanicValue(err error) (any, bool) {
	var pe *panicError
	if errors.As(err, &pe) {
		return pe.v, true
	}
	return nil, false
}

// IndexedError labels one request's failure with its position in a batch.
type IndexedError struct {
	Index int
	Err   error
}

func (e *IndexedError) Error() string {
	return fmt.Sprintf("request %d: %v", e.Index, e.Err)
}

func (e *IndexedError) Unwrap() error { return e.Err }

// AggregateError collects every per-request failure of a multi-request
// operation, preserving each failing index. errors.Is / errors.As descend
// into every member, so a caller can ask "did anything fail because of
// non-finite data?" across the whole batch in one call.
type AggregateError struct {
	// Errs holds one entry per failing request, in index order.
	Errs []*IndexedError
	// Total is the total number of requests in the operation, so the
	// message can report a failure rate.
	Total int
}

// maxListed bounds how many member errors the summary message spells out.
const maxListed = 4

func (e *AggregateError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d/%d requests failed", len(e.Errs), e.Total)
	for i, ie := range e.Errs {
		if i == maxListed {
			fmt.Fprintf(&b, "; and %d more", len(e.Errs)-maxListed)
			break
		}
		b.WriteString("; ")
		b.WriteString(ie.Error())
	}
	return b.String()
}

// Unwrap exposes every member failure for errors.Is / errors.As.
func (e *AggregateError) Unwrap() []error {
	out := make([]error, len(e.Errs))
	for i, ie := range e.Errs {
		out[i] = ie
	}
	return out
}

// Indices lists the failing request indices in order.
func (e *AggregateError) Indices() []int {
	out := make([]int, len(e.Errs))
	for i, ie := range e.Errs {
		out[i] = ie.Index
	}
	return out
}

// ByIndex returns the failure of request i, or nil when it succeeded.
func (e *AggregateError) ByIndex(i int) error {
	for _, ie := range e.Errs {
		if ie.Index == i {
			return ie.Err
		}
	}
	return nil
}

// Aggregate builds an AggregateError from a positional error slice (one
// slot per request, nil for successes). It returns nil when every slot is
// nil, so callers can write `return out, crerr.Aggregate(errs)`.
func Aggregate(errs []error) error {
	var idx []*IndexedError
	for i, err := range errs {
		if err != nil {
			idx = append(idx, &IndexedError{Index: i, Err: err})
		}
	}
	if len(idx) == 0 {
		return nil
	}
	return &AggregateError{Errs: idx, Total: len(errs)}
}
