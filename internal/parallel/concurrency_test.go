package parallel

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// TestForEachEquivalenceProperty: for arbitrary (n, workers), ForEach and
// ForEachDynamic must both invoke fn on every index in [0, n) exactly
// once — the static-stripe and dynamic-claim schedules are observationally
// equivalent.
func TestForEachEquivalenceProperty(t *testing.T) {
	prop := func(rawN uint16, rawW uint8) bool {
		n := int(rawN % 500)
		workers := int(rawW%10) + 1
		static := make([]int32, n)
		dynamic := make([]int32, n)
		ForEach(n, workers, func(i int) { atomic.AddInt32(&static[i], 1) })
		ForEachDynamic(n, workers, func(i int) { atomic.AddInt32(&dynamic[i], 1) })
		for i := 0; i < n; i++ {
			if static[i] != 1 || dynamic[i] != 1 {
				t.Logf("n=%d workers=%d index %d visited static=%d dynamic=%d",
					n, workers, i, static[i], dynamic[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestForEachZeroAndNegative: degenerate ranges must not call fn.
func TestForEachZeroAndNegative(t *testing.T) {
	for _, n := range []int{0, -3} {
		called := int32(0)
		ForEach(n, 4, func(i int) { atomic.AddInt32(&called, 1) })
		ForEachDynamic(n, 4, func(i int) { atomic.AddInt32(&called, 1) })
		if called != 0 {
			t.Errorf("n=%d: fn called %d times", n, called)
		}
	}
}

// TestFloat64ContentionAgainstMutexOracle hammers the CAS accumulator
// from many goroutines and compares against a mutex-guarded oracle fed
// the same values. All addends are integer-valued, so every partial sum
// is exactly representable and the two totals must agree bit-for-bit
// regardless of accumulation order.
func TestFloat64ContentionAgainstMutexOracle(t *testing.T) {
	const goroutines = 8
	const perG = 2000
	var cas Float64
	var mu sync.Mutex
	oracle := 0.0

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			local := 0.0
			for i := 0; i < perG; i++ {
				v := float64(rng.Intn(2001) - 1000) // integer-valued, mixed sign
				cas.Add(v)
				local += v
			}
			mu.Lock()
			oracle += local
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	if got := cas.Load(); got != oracle {
		t.Errorf("CAS accumulator %g != mutex oracle %g", got, oracle)
	}
}

// TestVecAccumulatorAddOuterLowerSymmetry accumulates scaled outer
// products concurrently and checks (a) the total matches a serial oracle
// exactly (dyadic inputs keep every product and sum exact), and (b) the
// reconstructed full matrix is symmetric with the diagonal matching
// Σ scale·x_i².
func TestVecAccumulatorAddOuterLowerSymmetry(t *testing.T) {
	const n = 7
	const vectors = 64
	const scale = 0.25 // dyadic: products stay exactly representable

	rng := rand.New(rand.NewSource(11))
	xs := make([][]float64, vectors)
	for v := range xs {
		xs[v] = make([]float64, n)
		for i := range xs[v] {
			xs[v][i] = float64(rng.Intn(17) - 8)
		}
	}

	// Serial oracle over the full n×n outer-product sum.
	full := make([]float64, n*n)
	for _, x := range xs {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				full[i*n+j] += scale * x[i] * x[j]
			}
		}
	}

	acc := NewVecAccumulator(n * (n + 1) / 2)
	ForEachDynamic(vectors, 8, func(v int) {
		acc.AddOuterLower(xs[v], scale)
	})
	lower := acc.Sum()

	idx := 0
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if lower[idx] != full[i*n+j] {
				t.Errorf("entry (%d,%d): accumulated %g != oracle %g", i, j, lower[idx], full[i*n+j])
			}
			if full[i*n+j] != full[j*n+i] {
				t.Errorf("oracle asymmetric at (%d,%d)", i, j)
			}
			idx++
		}
	}
	if idx != len(lower) {
		t.Fatalf("consumed %d entries of %d", idx, len(lower))
	}
}

// TestVecAccumulatorConcurrentAdd: plain vector adds from many goroutines
// must sum exactly (integer inputs) and Sum must return a copy.
func TestVecAccumulatorConcurrentAdd(t *testing.T) {
	const n = 16
	const goroutines = 8
	const perG = 200
	acc := NewVecAccumulator(n)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v := make([]float64, n)
			for i := range v {
				v[i] = float64(g + i)
			}
			for it := 0; it < perG; it++ {
				acc.Add(v)
			}
		}(g)
	}
	wg.Wait()
	sum := acc.Sum()
	for i := range sum {
		want := 0.0
		for g := 0; g < goroutines; g++ {
			want += float64(perG) * float64(g+i)
		}
		if sum[i] != want {
			t.Errorf("sum[%d] = %g, want %g", i, sum[i], want)
		}
	}
	sum[0] = -1
	if acc.Sum()[0] == -1 {
		t.Error("Sum returned the internal slice, not a copy")
	}
}
