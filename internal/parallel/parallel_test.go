package parallel

import (
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestWorkers(t *testing.T) {
	if w := Workers(4); w != 4 {
		t.Errorf("Workers(4) = %d", w)
	}
	if w := Workers(0); w != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d", w)
	}
	if w := Workers(-3); w != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", w)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 1000
		var hits = make([]int64, n)
		ForEach(n, workers, func(i int) {
			atomic.AddInt64(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
	// n <= 0 is a no-op.
	ForEach(0, 4, func(i int) { t.Fatal("called for n=0") })
	ForEach(-5, 4, func(i int) { t.Fatal("called for n<0") })
}

func TestForEachDynamicCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		n := 500
		var hits = make([]int64, n)
		ForEachDynamic(n, workers, func(i int) {
			atomic.AddInt64(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
	ForEachDynamic(0, 4, func(i int) { t.Fatal("called for n=0") })
}

func TestFloat64ConcurrentSum(t *testing.T) {
	var acc Float64
	n := 10000
	ForEach(n, 8, func(i int) {
		acc.Add(0.5)
	})
	if got := acc.Load(); math.Abs(got-float64(n)/2) > 1e-9 {
		t.Errorf("sum = %g, want %g", got, float64(n)/2)
	}
	acc.Store(3.5)
	if acc.Load() != 3.5 {
		t.Error("Store/Load failed")
	}
}

// TestFloat64SumMatchesSerial: concurrent accumulation of arbitrary values
// matches the serial sum to floating-point reordering tolerance.
func TestFloat64SumMatchesSerial(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, 500)
		var serial float64
		for i := range vals {
			vals[i] = rng.NormFloat64()
			serial += vals[i]
		}
		var acc Float64
		ForEachDynamic(len(vals), 8, func(i int) { acc.Add(vals[i]) })
		return math.Abs(acc.Load()-serial) < 1e-9*(1+math.Abs(serial))*100
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestVecAccumulator(t *testing.T) {
	acc := NewVecAccumulator(3)
	ForEach(100, 8, func(i int) {
		acc.Add([]float64{1, 2, 3})
	})
	sum := acc.Sum()
	want := []float64{100, 200, 300}
	for i := range want {
		if math.Abs(sum[i]-want[i]) > 1e-9 {
			t.Fatalf("sum = %v", sum)
		}
	}
	// Sum returns a copy.
	sum[0] = -1
	if acc.Sum()[0] == -1 {
		t.Error("Sum aliases internal state")
	}
}

func TestVecAccumulatorAddOuterLower(t *testing.T) {
	// Accumulate x·xᵀ lower triangle for two vectors; compare to direct.
	n := 4
	acc := NewVecAccumulator(n * (n + 1) / 2)
	xs := [][]float64{{1, 2, 3, 4}, {0.5, -1, 2, 0}}
	for _, x := range xs {
		acc.AddOuterLower(x, 2)
	}
	got := acc.Sum()
	idx := 0
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var want float64
			for _, x := range xs {
				want += 2 * x[i] * x[j]
			}
			if math.Abs(got[idx]-want) > 1e-12 {
				t.Fatalf("entry (%d,%d) = %g, want %g", i, j, got[idx], want)
			}
			idx++
		}
	}
}

func TestForEachStripesAreContiguous(t *testing.T) {
	// With striped scheduling, each worker sees a contiguous range; we
	// verify indirectly: the set of goroutine-observed predecessors in a
	// stripe are i-1 (no interleaving within a stripe is observable from
	// fn order per goroutine). Here we just confirm order within a single
	// worker run (workers=1) is strictly ascending.
	var last int64 = -1
	ok := true
	ForEach(100, 1, func(i int) {
		if int64(i) != last+1 {
			ok = false
		}
		last = int64(i)
	})
	if !ok {
		t.Error("single-worker ForEach not in order")
	}
}
