// Package parallel provides the execution substrate the paper implements
// with multi-threaded CPU + GPU offload (§IV-C): a bounded worker pool,
// lock-free float accumulation via compare-and-swap atomics, and a single
// shared-mutex vector accumulator for the one case the paper found a mutex
// cheaper than a sequence of atomic adds.
package parallel

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the number of workers to use when n <= 0: the number of
// logical CPUs.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for i in [0, n) across at most workers goroutines.
// Work is distributed in contiguous stripes so adjacent indices land on the
// same worker, mirroring the paper's tiled iteration. It blocks until all
// work completes.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for g := 0; g < w; g++ {
		lo := g * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ForEachDynamic runs fn(i) for i in [0, n) with dynamic scheduling: each
// worker repeatedly claims the next index with an atomic counter. It suits
// irregular per-item cost (e.g. compressing buffers of varying content).
func ForEachDynamic(n, workers int, fn func(i int)) {
	ForEachDynamicCtx(context.Background(), n, workers, fn) //nolint:errcheck // background ctx never cancels
}

// ForEachDynamicCtx is ForEachDynamic with cooperative cancellation: once
// ctx is done, workers stop claiming new indices, finish the item they are
// already running, and drain. It blocks until every started fn call has
// returned (no goroutine outlives the call), then reports ctx.Err() — nil
// when all n items ran, the context error when the sweep was cut short.
// Indices not yet claimed at cancellation are never visited.
func ForEachDynamicCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	done := ctx.Done()
	if w == 1 {
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			fn(i)
		}
		return ctx.Err()
	}
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// SumOrdered computes Σ term(i) for i in [0, n) deterministically: the
// terms are evaluated in parallel into per-index slots (each slot written
// by exactly one worker) and then folded left to right in index order. The
// result is therefore bit-identical to the workers=1 serial sum for every
// worker count — floating-point reduction order never depends on goroutine
// scheduling. This is the reduction hot paths must use instead of Float64,
// whose CAS accumulation order follows the scheduler.
func SumOrdered(n, workers int, term func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	return SumOrderedInto(make([]float64, n), workers, term)
}

// SumOrderedInto is SumOrdered over n = len(scratch) terms with
// caller-provided scratch storage, for callers that pool buffers to keep
// the reduction allocation-free. The scratch contents are overwritten.
func SumOrderedInto(scratch []float64, workers int, term func(i int) float64) float64 {
	ForEach(len(scratch), workers, func(i int) {
		scratch[i] = term(i)
	})
	var sum float64
	for _, v := range scratch {
		sum += v
	}
	return sum
}

// Float64 is a float64 accumulator safe for concurrent Add via a CAS loop,
// the "atomic instructions to handle the sums shared between threads"
// strategy of §IV-C.
//
// Determinism caveat: the accumulation order follows goroutine scheduling,
// so repeated runs can differ in low-order bits. Paths that promise
// bit-for-bit reproducibility (the predictor kernels, the evaluation
// protocol) must use SumOrdered instead; Float64 remains for throughput
// counters and other statistics where the last ulp is immaterial.
type Float64 struct {
	bits uint64
}

// Add atomically accumulates v.
func (a *Float64) Add(v float64) {
	for {
		old := atomic.LoadUint64(&a.bits)
		cur := math.Float64frombits(old)
		nw := math.Float64bits(cur + v)
		if atomic.CompareAndSwapUint64(&a.bits, old, nw) {
			return
		}
	}
}

// Load returns the current value.
func (a *Float64) Load() float64 {
	return math.Float64frombits(atomic.LoadUint64(&a.bits))
}

// Store sets the value (not atomic with respect to concurrent Add).
func (a *Float64) Store(v float64) {
	atomic.StoreUint64(&a.bits, math.Float64bits(v))
}

// VecAccumulator accumulates whole vectors under a single mutex. The paper
// found through profiling that for the per-block array addition in the
// CovSVD-trunc computation a single mutex beats a sequence of per-element
// atomic adds; this type reproduces that design point (§IV-C).
type VecAccumulator struct {
	mu  sync.Mutex
	sum []float64
}

// NewVecAccumulator returns an accumulator over vectors of length n.
func NewVecAccumulator(n int) *VecAccumulator {
	return &VecAccumulator{sum: make([]float64, n)}
}

// Add accumulates v element-wise under the mutex.
func (a *VecAccumulator) Add(v []float64) {
	a.mu.Lock()
	for i, x := range v {
		a.sum[i] += x
	}
	a.mu.Unlock()
}

// AddOuterLower accumulates the lower triangle (and diagonal) of scale·x xᵀ
// flattened row-major into the accumulator, used when forming symmetric
// covariance matrices concurrently. The accumulator length must be
// n*(n+1)/2 for len(x) == n.
func (a *VecAccumulator) AddOuterLower(x []float64, scale float64) {
	a.mu.Lock()
	idx := 0
	for i := range x {
		xi := x[i] * scale
		for j := 0; j <= i; j++ {
			a.sum[idx] += xi * x[j]
			idx++
		}
	}
	a.mu.Unlock()
}

// Sum returns a copy of the accumulated vector.
func (a *VecAccumulator) Sum() []float64 {
	a.mu.Lock()
	out := make([]float64, len(a.sum))
	copy(out, a.sum)
	a.mu.Unlock()
	return out
}
