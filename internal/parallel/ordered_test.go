package parallel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// orderSensitiveTerms returns values spanning many magnitudes, so any
// reassociation of the floating-point sum changes low-order bits and is
// caught by exact comparison.
func orderSensitiveTerms(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64() * float64(int(1)<<uint(rng.Intn(40)))
	}
	return xs
}

// TestSumOrderedMatchesSerial: the result must equal the plain serial
// left-to-right fold bit for bit.
func TestSumOrderedMatchesSerial(t *testing.T) {
	xs := orderSensitiveTerms(10007, 1)
	var want float64
	for _, v := range xs {
		want += v
	}
	for _, w := range []int{1, 2, 3, 8, 33} {
		got := SumOrdered(len(xs), w, func(i int) float64 { return xs[i] })
		if got != want {
			t.Fatalf("workers=%d: SumOrdered = %x, serial = %x", w, got, want)
		}
	}
}

// TestSumOrderedWorkerInvariance: repeated runs across worker counts must
// be bit-identical — the property the CAS Float64 accumulator lacks.
func TestSumOrderedWorkerInvariance(t *testing.T) {
	prop := func(seed int64, w8 uint8) bool {
		n := 1 + int(seed%997+997)%997
		xs := orderSensitiveTerms(n, seed)
		base := SumOrdered(n, 1, func(i int) float64 { return xs[i] })
		w := 1 + int(w8%16)
		for rep := 0; rep < 3; rep++ {
			if SumOrdered(n, w, func(i int) float64 { return xs[i] }) != base {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSumOrderedEdgeCases(t *testing.T) {
	if got := SumOrdered(0, 4, func(int) float64 { panic("called") }); got != 0 {
		t.Errorf("SumOrdered(0) = %g", got)
	}
	if got := SumOrdered(-3, 4, func(int) float64 { panic("called") }); got != 0 {
		t.Errorf("SumOrdered(-3) = %g", got)
	}
	if got := SumOrderedInto(nil, 4, func(int) float64 { panic("called") }); got != 0 {
		t.Errorf("SumOrderedInto(nil) = %g", got)
	}
}

// TestSumOrderedIntoReusesScratch: the scratch buffer is fully
// overwritten, so stale contents cannot leak into the sum.
func TestSumOrderedIntoReusesScratch(t *testing.T) {
	scratch := []float64{1e300, 1e300, 1e300}
	got := SumOrderedInto(scratch, 2, func(i int) float64 { return float64(i) })
	if got != 3 {
		t.Errorf("SumOrderedInto = %g, want 3", got)
	}
}
