package parallel

import (
	"sync"
	"testing"
)

// BenchmarkAblationAtomics reproduces the paper's §IV-C profiling
// decision: scalar sums shared between threads use CAS atomics, but the
// per-block *vector* addition in the CovSVD accumulation is cheaper under
// a single mutex than as a sequence of atomic adds.
func BenchmarkAblationAtomics(b *testing.B) {
	const vecLen = 64
	vec := make([]float64, vecLen)
	for i := range vec {
		vec[i] = float64(i)
	}

	b.Run("scalar-atomic", func(b *testing.B) {
		var acc Float64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				acc.Add(1.5)
			}
		})
	})
	b.Run("scalar-mutex", func(b *testing.B) {
		var mu sync.Mutex
		var sum float64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				mu.Lock()
				sum += 1.5
				mu.Unlock()
			}
		})
		_ = sum
	})
	b.Run("vector-atomic-elementwise", func(b *testing.B) {
		accs := make([]Float64, vecLen)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				for i, v := range vec {
					accs[i].Add(v)
				}
			}
		})
	})
	b.Run("vector-single-mutex", func(b *testing.B) {
		acc := NewVecAccumulator(vecLen)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				acc.Add(vec)
			}
		})
	})
}

func BenchmarkForEach(b *testing.B) {
	work := func(i int) {
		x := float64(i)
		for k := 0; k < 50; k++ {
			x = x*1.0000001 + 1
		}
		_ = x
	}
	b.Run("static", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ForEach(1024, 0, work)
		}
	})
	b.Run("dynamic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ForEachDynamic(1024, 0, work)
		}
	})
}
