package parallel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestForEachDynamicCtxCompletes: an uncanceled context visits every index
// exactly once, same as ForEachDynamic.
func TestForEachDynamicCtxCompletes(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var visits [64]int32
		err := ForEachDynamicCtx(context.Background(), len(visits), workers, func(i int) {
			atomic.AddInt32(&visits[i], 1)
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

// TestForEachDynamicCtxPreCanceled: a context canceled before the call
// visits nothing.
func TestForEachDynamicCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var visited atomic.Int32
		err := ForEachDynamicCtx(ctx, 100, workers, func(i int) { visited.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v", workers, err)
		}
		if n := visited.Load(); n != 0 {
			t.Errorf("workers=%d: %d indices visited after pre-cancel", workers, n)
		}
	}
}

// TestForEachDynamicCtxMidwayCancel: canceling mid-sweep stops workers
// from claiming further work, lets in-flight items finish, and drains all
// goroutines before returning.
func TestForEachDynamicCtxMidwayCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		const n = 1000
		var visited, inFlight atomic.Int32
		err := ForEachDynamicCtx(ctx, n, workers, func(i int) {
			inFlight.Add(1)
			defer inFlight.Add(-1)
			if visited.Add(1) == 10 {
				cancel()
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v", workers, err)
		}
		// After return every started fn has completed (no goroutine leaks
		// past the WaitGroup) and at most one extra claim per worker ran.
		if got := inFlight.Load(); got != 0 {
			t.Errorf("workers=%d: %d fn calls still in flight after return", workers, got)
		}
		if got := visited.Load(); got >= n {
			t.Errorf("workers=%d: all %d indices visited despite cancel", workers, got)
		}
	}
}

// TestForEachDynamicCtxDeadline: a deadline context surfaces
// context.DeadlineExceeded.
func TestForEachDynamicCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	var mu sync.Mutex
	seen := 0
	err := ForEachDynamicCtx(ctx, 1<<20, 2, func(i int) {
		mu.Lock()
		seen++
		mu.Unlock()
		time.Sleep(100 * time.Microsecond)
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if seen == 0 {
		t.Error("no work ran before the deadline")
	}
}
