package eval

import (
	"testing"

	"github.com/crestlab/crest/internal/baselines"
	"github.com/crestlab/crest/internal/compressors"
	"github.com/crestlab/crest/internal/core"
	"github.com/crestlab/crest/internal/synthdata"
)

// TestSanityPipeline is a development smoke test printing method accuracy
// on one field; kept as a cheap regression guard on the end-to-end shape:
// proposed must beat Tao by a wide margin in-sample.
func TestSanityPipeline(t *testing.T) {
	ds := synthdata.Hurricane(synthdata.Options{NZ: 16, NY: 64, NX: 64, Seed: 1})
	comp := compressors.MustNew("szinterp")
	cache := NewCRCache()
	eps := 1e-3
	field := ds.Field("TC")
	for _, m := range []baselines.Method{
		baselines.NewProposed(core.Config{}),
		baselines.NewUnderwood(),
		baselines.NewTao(),
		baselines.NewLu(),
	} {
		q, folds, err := KFold(m, field.Buffers, comp, eps, 5, 7, cache)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		t.Logf("%-10s %v folds=%v", m.Name(), q, folds)
	}
	// Shape assertion: proposed beats tao.
	prop, _, err := KFold(baselines.NewProposed(core.Config{}), field.Buffers, comp, eps, 5, 7, cache)
	if err != nil {
		t.Fatal(err)
	}
	tao, _, err := KFold(baselines.NewTao(), field.Buffers, comp, eps, 5, 7, cache)
	if err != nil {
		t.Fatal(err)
	}
	if prop.Q50 >= tao.Q50 {
		t.Errorf("proposed MedAPE %.2f not better than tao %.2f", prop.Q50, tao.Q50)
	}
}
