package eval

import (
	"math"
	"testing"

	"github.com/crestlab/crest/internal/baselines"
	"github.com/crestlab/crest/internal/compressors"
	"github.com/crestlab/crest/internal/core"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/synthdata"
)

// oracleMethod predicts the exact (capped) ratio — Algorithm 2 must report
// zero error for it.
type oracleMethod struct {
	comp  compressors.Compressor
	cache *CRCache
}

func (o *oracleMethod) Name() string { return "oracle" }
func (o *oracleMethod) Fit(bufs []*grid.Buffer, crs []float64, eps float64) error {
	return nil
}
func (o *oracleMethod) Predict(buf *grid.Buffer, eps float64) (float64, error) {
	return o.cache.Ratio(o.comp, buf, eps)
}

// biasedMethod predicts a fixed multiple of the truth.
type biasedMethod struct {
	oracleMethod
	factor float64
}

func (b *biasedMethod) Name() string { return "biased" }
func (b *biasedMethod) Predict(buf *grid.Buffer, eps float64) (float64, error) {
	cr, err := b.cache.Ratio(b.comp, buf, eps)
	return cr * b.factor, err
}

func testField(t *testing.T) *grid.Field {
	t.Helper()
	ds := synthdata.Miranda(synthdata.Options{NZ: 12, NY: 40, NX: 40, Seed: 77})
	return ds.Field("density")
}

func TestKFoldOracleIsPerfect(t *testing.T) {
	field := testField(t)
	comp := compressors.MustNew("szinterp")
	cache := NewCRCache()
	m := &oracleMethod{comp: comp, cache: cache}
	q, folds, err := KFold(m, field.Buffers, comp, 1e-3, 4, 1, cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 4 {
		t.Fatalf("%d folds", len(folds))
	}
	if q.Q10 != 0 || q.Q50 != 0 || q.Q90 != 0 {
		t.Errorf("oracle quantiles = %+v", q)
	}
}

func TestKFoldBiasedMethodReportsBias(t *testing.T) {
	field := testField(t)
	comp := compressors.MustNew("szinterp")
	cache := NewCRCache()
	m := &biasedMethod{oracleMethod{comp: comp, cache: cache}, 1.25}
	q, _, err := KFold(m, field.Buffers, comp, 1e-3, 4, 1, cache)
	if err != nil {
		t.Fatal(err)
	}
	// 25% over-prediction everywhere -> MedAPE exactly 25.
	if math.Abs(q.Q50-25) > 1e-9 {
		t.Errorf("MedAPE = %g, want 25", q.Q50)
	}
}

func TestKFoldDeterministicGivenSeed(t *testing.T) {
	field := testField(t)
	comp := compressors.MustNew("szinterp")
	cache := NewCRCache()
	run := func() Quantiles {
		m := baselines.NewProposed(core.Config{})
		q, _, err := KFold(m, field.Buffers, comp, 1e-3, 4, 9, cache)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("k-fold not deterministic: %+v vs %+v", a, b)
	}
}

func TestKFoldErrors(t *testing.T) {
	field := testField(t)
	comp := compressors.MustNew("szinterp")
	if _, _, err := KFold(&oracleMethod{comp: comp, cache: NewCRCache()}, field.Buffers[:1], comp, 1e-3, 5, 1, nil); err == nil {
		t.Error("single-buffer k-fold accepted")
	}
}

func TestCRCacheAvoidsRecompression(t *testing.T) {
	field := testField(t)
	comp := &countingCompressor{inner: compressors.MustNew("szinterp")}
	cache := NewCRCache()
	buf := field.Buffers[0]
	for i := 0; i < 5; i++ {
		if _, err := cache.Ratio(comp, buf, 1e-3); err != nil {
			t.Fatal(err)
		}
	}
	if comp.calls != 1 {
		t.Errorf("compressor called %d times, want 1", comp.calls)
	}
	// Different bound: one more call.
	if _, err := cache.Ratio(comp, buf, 1e-4); err != nil {
		t.Fatal(err)
	}
	if comp.calls != 2 {
		t.Errorf("compressor called %d times, want 2", comp.calls)
	}
}

type countingCompressor struct {
	inner compressors.Compressor
	calls int
}

func (c *countingCompressor) Name() string { return c.inner.Name() }
func (c *countingCompressor) Compress(b *grid.Buffer, eps float64) ([]byte, error) {
	c.calls++
	return c.inner.Compress(b, eps)
}
func (c *countingCompressor) Decompress(data []byte) (*grid.Buffer, error) {
	return c.inner.Decompress(data)
}

func TestCRCacheCapsRatios(t *testing.T) {
	// A constant buffer compresses absurdly well; the cache caps at 100.
	buf := grid.NewBuffer(64, 64)
	cache := NewCRCache()
	cr, err := cache.Ratio(compressors.MustNew("szinterp"), buf, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if cr > CRCap {
		t.Errorf("cached CR %g above cap", cr)
	}
}

func TestOutOfSampleProducesIntervalsForProposed(t *testing.T) {
	ds := synthdata.Hurricane(synthdata.Options{NZ: 10, NY: 40, NX: 40, Seed: 21})
	comp := compressors.MustNew("szinterp")
	cache := NewCRCache()
	m := baselines.NewProposed(core.Config{})
	medape, pairs, err := OutOfSample(m, ds.Field("QCLOUD").Buffers, ds.Field("QICE").Buffers, comp, 1e-3, cache)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(medape) {
		t.Error("NaN medape")
	}
	for _, p := range pairs {
		if math.IsNaN(p.Lo) || math.IsNaN(p.Hi) {
			t.Fatal("proposed pairs missing conformal bounds")
		}
		if p.Lo > p.Hi {
			t.Fatalf("inverted interval [%g, %g]", p.Lo, p.Hi)
		}
	}
	// Non-proposed methods get NaN bounds.
	_, pairs2, err := OutOfSample(baselines.NewTao(), ds.Field("QCLOUD").Buffers, ds.Field("QICE").Buffers, comp, 1e-3, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(pairs2[0].Lo) {
		t.Error("tao pairs carry bounds")
	}
}

func TestInSamplePairsSplits(t *testing.T) {
	field := testField(t)
	comp := compressors.MustNew("szinterp")
	cache := NewCRCache()
	m := baselines.NewProposed(core.Config{})
	medape, pairs, err := InSamplePairs(m, field.Buffers, comp, 1e-3, 0.25, 3, cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 { // 25% of 12
		t.Errorf("%d test pairs", len(pairs))
	}
	if medape > 25 {
		t.Errorf("in-sample MedAPE %.2f implausibly high", medape)
	}
}

func TestAblationRowsComplete(t *testing.T) {
	ds := synthdata.Miranda(synthdata.Options{NZ: 10, NY: 40, NX: 40, Seed: 13})
	comp := compressors.MustNew("szinterp")
	rows, err := Ablation(ds.Fields[:2], comp, 1e-3, core.Config{}, 3, 1, NewCRCache())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if math.IsNaN(r.Full) {
			t.Errorf("%s full model NaN", r.Field)
		}
		for i, w := range r.Without {
			if math.IsNaN(w) {
				t.Errorf("%s ablation %d NaN", r.Field, i)
			}
		}
	}
}

func TestQuantilesString(t *testing.T) {
	q := Quantiles{Q10: 1, Q50: 2, Q90: 3}
	if s := q.String(); s == "" {
		t.Error("empty String()")
	}
}

// TestAllCompressorsEstimable is the cross-module integration test: every
// compressor in the registry must be predictable by the proposed method
// with single-digit in-sample MedAPE on a well-behaved field.
func TestAllCompressorsEstimable(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short")
	}
	ds := synthdata.Hurricane(synthdata.Options{NZ: 12, NY: 48, NX: 48, Seed: 31})
	field := ds.Field("TC")
	cache := NewCRCache()
	for _, name := range compressors.Names() {
		comp := compressors.MustNew(name)
		m := baselines.NewProposed(core.Config{})
		q, _, err := KFold(m, field.Buffers, comp, 1e-3, 4, 1, cache)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		t.Logf("%-12s MedAPE %s", name, q)
		if q.Q50 > 10 {
			t.Errorf("%s: in-sample MedAPE %.2f%% above 10%%", name, q.Q50)
		}
	}
}
