package eval

import (
	"github.com/crestlab/crest/internal/baselines"
	"github.com/crestlab/crest/internal/compressors"
	"github.com/crestlab/crest/internal/core"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/predictors"
)

// AblationRow is one field's row of the Fig. 1 study: the in-sample MedAPE
// of the fully specified model and of each leave-one-predictor-out model.
type AblationRow struct {
	Field   string
	Full    float64
	Without [predictors.NumFeatures]float64
}

// Ablation reproduces Fig. 1: for each field, train in-sample with the
// full five-predictor model and with each predictor excluded in turn, and
// report the median per-fold MedAPE from Algorithm 2.
func Ablation(fields []*grid.Field, comp compressors.Compressor, eps float64, cfg core.Config, k int, seed int64, cache *CRCache) ([]AblationRow, error) {
	if cache == nil {
		cache = NewCRCache()
	}
	rows := make([]AblationRow, 0, len(fields))
	for _, field := range fields {
		row := AblationRow{Field: field.Name}
		full := cfg
		full.FeatureMask = nil
		q, _, err := KFold(baselines.NewProposed(full), field.Buffers, comp, eps, k, seed, cache)
		if err != nil {
			return nil, err
		}
		row.Full = q.Q50
		for drop := 0; drop < predictors.NumFeatures; drop++ {
			mask := make([]bool, predictors.NumFeatures)
			for i := range mask {
				mask[i] = i != drop
			}
			ablated := cfg
			ablated.FeatureMask = mask
			q, _, err := KFold(baselines.NewProposed(ablated), field.Buffers, comp, eps, k, seed, cache)
			if err != nil {
				return nil, err
			}
			row.Without[drop] = q.Q50
		}
		rows = append(rows, row)
	}
	return rows, nil
}
