// Package eval implements the paper's evaluation protocol: Algorithm 2
// (k-fold cross-validated median absolute percentage error with 10/50/90%
// quantiles), the out-of-sample field-transfer protocol of §VI-C, and the
// leave-one-predictor-out ablation of Fig. 1. Ground-truth compression
// ratios are memoized so that comparing several methods never re-runs a
// compressor on the same buffer.
package eval

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"github.com/crestlab/crest/internal/baselines"
	"github.com/crestlab/crest/internal/compressors"
	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/parallel"
	"github.com/crestlab/crest/internal/stats"
)

// CRCap is the operational compression-ratio cap of the protocol (§IV-B).
const CRCap = 100

// Quantiles are the 10%, 50% and 90% quantiles of the per-fold MedAPEs,
// the summary Algorithm 2 line 18 reports.
type Quantiles struct {
	Q10, Q50, Q90 float64
}

func (q Quantiles) String() string {
	return fmt.Sprintf("10%%=%.3g med=%.3g 90%%=%.3g", q.Q10, q.Q50, q.Q90)
}

// CRCache memoizes ground-truth compression ratios per (buffer,
// compressor, bound), already capped at CRCap. It is safe for concurrent
// use: entries admit singleflight-style, so racing first requests for the
// same key run the compressor exactly once.
type CRCache struct {
	mu sync.Mutex
	m  map[crKey]*crEntry
}

type crKey struct {
	buf  *grid.Buffer
	comp string
	eps  float64
}

// crEntry is a singleflight slot: done closes once cr/err are final.
type crEntry struct {
	done chan struct{}
	cr   float64
	err  error
}

// NewCRCache returns an empty cache.
func NewCRCache() *CRCache { return &CRCache{m: make(map[crKey]*crEntry)} }

// Ratio returns the capped true compression ratio, compressing on first
// use. Concurrent first requests for the same key share one compression.
// A failing (or panicking) compression is reported to its requesters but
// never cached: the key misses again on the next call, and the panic is
// recovered into an error matching crerr.ErrCompressor.
func (c *CRCache) Ratio(comp compressors.Compressor, buf *grid.Buffer, eps float64) (float64, error) {
	k := crKey{buf, comp.Name(), eps}
	c.mu.Lock()
	e, ok := c.m[k]
	if ok {
		c.mu.Unlock()
		<-e.done
		return e.cr, e.err
	}
	e = &crEntry{done: make(chan struct{})}
	c.m[k] = e
	c.mu.Unlock()
	func() {
		defer func() {
			if v := recover(); v != nil {
				e.err = crerr.Recovered(v, crerr.ErrCompressor)
			}
		}()
		cr, err := compressors.Ratio(comp, buf, eps)
		if err == nil && cr > CRCap {
			cr = CRCap
		} else if err != nil {
			err = fmt.Errorf("%w: %v", crerr.ErrCompressor, err)
		}
		e.cr, e.err = cr, err
	}()
	if e.err != nil {
		c.mu.Lock()
		if c.m[k] == e {
			delete(c.m, k)
		}
		c.mu.Unlock()
	}
	close(e.done)
	return e.cr, e.err
}

// Ratios maps Ratio over buffers.
func (c *CRCache) Ratios(comp compressors.Compressor, bufs []*grid.Buffer, eps float64) ([]float64, error) {
	out := make([]float64, len(bufs))
	for i, b := range bufs {
		cr, err := c.Ratio(comp, b, eps)
		if err != nil {
			return nil, fmt.Errorf("eval: %s on %s/%s step %d: %w", comp.Name(), b.Dataset, b.Field, b.Step, err)
		}
		out[i] = cr
	}
	return out, nil
}

// RatiosParallel is Ratios with the cache misses compressed on a bounded
// worker pool (workers <= 0 selects GOMAXPROCS). Output order and values
// are identical to Ratios; on failure every failing buffer index is
// reported (crerr.AggregateError).
func (c *CRCache) RatiosParallel(comp compressors.Compressor, bufs []*grid.Buffer, eps float64, workers int) ([]float64, error) {
	return c.RatiosParallelCtx(context.Background(), comp, bufs, eps, workers)
}

// RatiosParallelCtx is RatiosParallel with cooperative cancellation: once
// ctx is done, workers finish the compression they are running and drain,
// and the returned error matches crerr.ErrCanceled.
func (c *CRCache) RatiosParallelCtx(ctx context.Context, comp compressors.Compressor, bufs []*grid.Buffer, eps float64, workers int) ([]float64, error) {
	out := make([]float64, len(bufs))
	errs := make([]error, len(bufs))
	cerr := parallel.ForEachDynamicCtx(ctx, len(bufs), workers, func(i int) {
		cr, err := c.Ratio(comp, bufs[i], eps)
		if err != nil {
			b := bufs[i]
			errs[i] = fmt.Errorf("eval: %s on %s/%s step %d: %w", comp.Name(), b.Dataset, b.Field, b.Step, err)
			return
		}
		out[i] = cr
	})
	if cerr != nil {
		return nil, crerr.Canceled(cerr)
	}
	if err := crerr.Aggregate(errs); err != nil {
		return nil, err
	}
	return out, nil
}

// featureWarmer is implemented by methods (the proposed approach) that can
// precompute their feature cache for a buffer set across workers.
type featureWarmer interface {
	Warm(bufs []*grid.Buffer, epses []float64, workers int) error
}

// ctxWarmer is the cancellable refinement of featureWarmer.
type ctxWarmer interface {
	WarmContext(ctx context.Context, bufs []*grid.Buffer, epses []float64, workers int) error
}

// KFold runs Algorithm 2: k-fold cross-validation of method m on bufs with
// compressor comp at bound eps, returning the MedAPE quantiles and the raw
// per-fold MedAPEs.
//
// The expensive per-buffer work scales with cores: ground-truth ratios and
// (for methods that support warming) predictor features are precomputed on
// a worker pool before the fold loop, and per-fold predictions fan out
// when the method marks its Predict concurrency-safe. Fold order, fitting
// and all numeric results are identical to a serial run.
func KFold(m baselines.Method, bufs []*grid.Buffer, comp compressors.Compressor, eps float64, k int, seed int64, cache *CRCache) (Quantiles, []float64, error) {
	return KFoldContext(context.Background(), m, bufs, comp, eps, k, seed, cache)
}

// KFoldContext is KFold with cooperative cancellation: the context gates
// the concurrent pre-passes, every fold boundary, and (for the proposed
// method) each EM training iteration, so a cancelled evaluation returns
// promptly with an error matching crerr.ErrCanceled.
func KFoldContext(ctx context.Context, m baselines.Method, bufs []*grid.Buffer, comp compressors.Compressor, eps float64, k int, seed int64, cache *CRCache) (Quantiles, []float64, error) {
	n := len(bufs)
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	if n < 2 {
		return Quantiles{}, nil, fmt.Errorf("eval: need at least 2 buffers, got %d", n)
	}
	if cache == nil {
		cache = NewCRCache()
	}
	// Pre-pass: every buffer's ground truth (and, when available, its
	// features) is needed across the folds; compute them concurrently once
	// instead of faulting them in one at a time inside the fold loop.
	if _, err := cache.RatiosParallelCtx(ctx, comp, bufs, eps, 0); err != nil {
		return Quantiles{}, nil, err
	}
	switch w := m.(type) {
	case ctxWarmer:
		if err := w.WarmContext(ctx, bufs, []float64{eps}, 0); err != nil {
			return Quantiles{}, nil, fmt.Errorf("eval: feature warm: %w", err)
		}
	case featureWarmer:
		if err := w.Warm(bufs, []float64{eps}, 0); err != nil {
			return Quantiles{}, nil, fmt.Errorf("eval: feature warm: %w", err)
		}
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	folds := make([][]int, k)
	for i, p := range perm {
		folds[i%k] = append(folds[i%k], p)
	}
	concurrent := false
	if cp, ok := m.(baselines.ConcurrentPredictor); ok {
		concurrent = cp.ConcurrentPredictSafe()
	}
	medapes := make([]float64, 0, k)
	for f := 0; f < k; f++ {
		if err := ctx.Err(); err != nil {
			return Quantiles{}, nil, crerr.Canceled(err)
		}
		var trainIdx []int
		for g := 0; g < k; g++ {
			if g != f {
				trainIdx = append(trainIdx, folds[g]...)
			}
		}
		trainBufs := pick(bufs, trainIdx)
		trainCRs, err := cache.Ratios(comp, trainBufs, eps)
		if err != nil {
			return Quantiles{}, nil, err
		}
		if err := m.Fit(trainBufs, trainCRs, eps); err != nil {
			return Quantiles{}, nil, fmt.Errorf("eval: fold %d fit: %w", f, err)
		}
		apes, err := foldAPEs(m, bufs, folds[f], comp, eps, cache, concurrent)
		if err != nil {
			return Quantiles{}, nil, fmt.Errorf("eval: fold %d: %w", f, err)
		}
		medapes = append(medapes, stats.Median(apes))
	}
	qs := stats.Quantiles(medapes, 0.10, 0.50, 0.90)
	return Quantiles{Q10: qs[0], Q50: qs[1], Q90: qs[2]}, medapes, nil
}

// foldAPEs evaluates one fold's held-out buffers, fanning predictions over
// a worker pool when the method's Predict is concurrency-safe. Results are
// written by index, so the output order matches the serial loop exactly.
func foldAPEs(m baselines.Method, bufs []*grid.Buffer, fold []int, comp compressors.Compressor, eps float64, cache *CRCache, concurrent bool) ([]float64, error) {
	apes := make([]float64, len(fold))
	errs := make([]error, len(fold))
	workers := 1
	if concurrent {
		workers = 0 // GOMAXPROCS
	}
	parallel.ForEachDynamic(len(fold), workers, func(j int) {
		ti := fold[j]
		truth, err := cache.Ratio(comp, bufs[ti], eps)
		if err != nil {
			errs[j] = err
			return
		}
		pred, err := m.Predict(bufs[ti], eps)
		if err != nil {
			errs[j] = fmt.Errorf("predict: %w", err)
			return
		}
		apes[j] = stats.AbsPercentageError(truth, pred)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return apes, nil
}

func pick(bufs []*grid.Buffer, idx []int) []*grid.Buffer {
	out := make([]*grid.Buffer, len(idx))
	for i, j := range idx {
		out[i] = bufs[j]
	}
	return out
}

// PredPair is one test observation for predicted-vs-actual plots (Fig. 6).
type PredPair struct {
	True, Pred float64
	Lo, Hi     float64 // conformal interval when available, else NaN
}

// OutOfSample fits on buffers from training fields and evaluates on a held
// -out field (§VI-C), returning the MedAPE and the per-buffer pairs.
func OutOfSample(m baselines.Method, trainBufs, testBufs []*grid.Buffer, comp compressors.Compressor, eps float64, cache *CRCache) (float64, []PredPair, error) {
	if cache == nil {
		cache = NewCRCache()
	}
	trainCRs, err := cache.RatiosParallel(comp, trainBufs, eps, 0)
	if err != nil {
		return 0, nil, err
	}
	// The held-out truths are needed below; compress them concurrently too.
	if _, err := cache.RatiosParallel(comp, testBufs, eps, 0); err != nil {
		return 0, nil, err
	}
	if err := m.Fit(trainBufs, trainCRs, eps); err != nil {
		return 0, nil, fmt.Errorf("eval: out-of-sample fit: %w", err)
	}
	pairs := make([]PredPair, 0, len(testBufs))
	apes := make([]float64, 0, len(testBufs))
	prop, isProposed := m.(*baselines.Proposed)
	for _, b := range testBufs {
		truth, err := cache.Ratio(comp, b, eps)
		if err != nil {
			return 0, nil, err
		}
		pair := PredPair{True: truth, Lo: math.NaN(), Hi: math.NaN()}
		if isProposed {
			est, err := prop.Interval(b, eps)
			if err != nil {
				return 0, nil, err
			}
			pair.Pred, pair.Lo, pair.Hi = est.CR, est.Lo, est.Hi
		} else {
			pred, err := m.Predict(b, eps)
			if err != nil {
				return 0, nil, err
			}
			pair.Pred = pred
		}
		apes = append(apes, stats.AbsPercentageError(truth, pair.Pred))
		pairs = append(pairs, pair)
	}
	return stats.Median(apes), pairs, nil
}

// InSamplePairs runs a single train/test split within one field's buffers
// and returns predicted-vs-actual pairs with conformal intervals, the
// in-sample panels of Fig. 6.
func InSamplePairs(m baselines.Method, bufs []*grid.Buffer, comp compressors.Compressor, eps float64, testFraction float64, seed int64, cache *CRCache) (float64, []PredPair, error) {
	n := len(bufs)
	if testFraction <= 0 || testFraction >= 1 {
		testFraction = 0.3
	}
	nTest := int(math.Round(testFraction * float64(n)))
	if nTest < 1 {
		nTest = 1
	}
	if nTest >= n {
		nTest = n - 1
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	test := pick(bufs, perm[:nTest])
	train := pick(bufs, perm[nTest:])
	return OutOfSample(m, train, test, comp, eps, cache)
}
