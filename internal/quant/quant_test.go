package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaults(t *testing.T) {
	q := New(1e-3, 0)
	if q.Radius() != DefaultRadius {
		t.Errorf("Radius = %d", q.Radius())
	}
	if q.Eps() != 1e-3 {
		t.Errorf("Eps = %g", q.Eps())
	}
}

func TestQuantizeRoundTripBound(t *testing.T) {
	q := New(0.01, 0)
	for _, r := range []float64{0, 0.004, -0.004, 0.3, -0.3, 1.999, -1.999} {
		code, ok := q.Quantize(r)
		if !ok {
			t.Fatalf("residual %g not quantizable", r)
		}
		if code == OutlierCode {
			t.Fatalf("residual %g got the outlier code", r)
		}
		if err := math.Abs(r - q.Dequantize(code)); err > 0.01+1e-15 {
			t.Errorf("residual %g error %g > eps", r, err)
		}
	}
}

func TestQuantizeOutliers(t *testing.T) {
	q := New(1e-3, 4) // tiny radius: codes cover ±8e-3 around zero
	if _, ok := q.Quantize(1.0); ok {
		t.Error("far residual quantized with tiny radius")
	}
	if _, ok := q.Quantize(math.NaN()); ok {
		t.Error("NaN quantized")
	}
	if _, ok := q.Quantize(math.Inf(1)); ok {
		t.Error("+Inf quantized")
	}
	if code, ok := q.Quantize(0); !ok || code == OutlierCode {
		t.Error("zero residual should quantize to a non-outlier code")
	}
}

func TestZeroEpsRejectsAll(t *testing.T) {
	q := New(0, 0)
	if _, ok := q.Quantize(0.5); ok {
		t.Error("eps=0 quantized a value")
	}
}

// TestQuantizeProperty: whenever Quantize says ok, the reconstruction is
// within eps, the code is in (0, 2·radius], and Dequantize is exact-inverse
// of the bin center.
func TestQuantizeProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eps := math.Pow(10, -float64(rng.Intn(8)))
		q := New(eps, 1<<uint(rng.Intn(12)+2))
		for i := 0; i < 200; i++ {
			r := rng.NormFloat64() * eps * math.Pow(10, float64(rng.Intn(6)-2))
			code, ok := q.Quantize(r)
			if !ok {
				continue
			}
			if code == OutlierCode || int(code) > 2*q.Radius() {
				return false
			}
			if math.Abs(r-q.Dequantize(code)) > eps*(1+1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCodesAreContiguousBins(t *testing.T) {
	q := New(0.5, 8)
	// Residuals exactly at bin centers map to distinct consecutive codes.
	prev := uint32(0)
	for k := -7; k <= 8; k++ {
		r := float64(k) * 2 * 0.5
		code, ok := q.Quantize(r)
		if !ok {
			t.Fatalf("bin center %g rejected", r)
		}
		if k > -7 && code != prev+1 {
			t.Fatalf("codes not contiguous at k=%d: %d after %d", k, code, prev)
		}
		prev = code
	}
}
