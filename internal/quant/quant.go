// Package quant implements the error-controlled linear quantizer shared by
// the SZ-family compressors: prediction errors are mapped to integer codes
// with bin width 2ε so that reconstruction stays within the absolute error
// bound, and values that fall outside the code range escape as exact
// outliers (the "unpredictable data" path of SZ).
package quant

import "math"

// DefaultRadius is the default quantization radius (half the code range),
// matching SZ's default of 2^15 intervals.
const DefaultRadius = 32768

// OutlierCode is the reserved symbol for unpredictable values stored
// verbatim.
const OutlierCode = 0

// Quantizer maps prediction residuals to integer codes with guaranteed
// |residual - Dequantize(code)| ≤ ε for non-outlier codes.
type Quantizer struct {
	eps    float64
	radius int
}

// New returns a quantizer for absolute error bound eps with the given
// radius (codes span [1, 2*radius]; 0 is the outlier escape). A
// non-positive radius selects DefaultRadius.
func New(eps float64, radius int) *Quantizer {
	if radius <= 0 {
		radius = DefaultRadius
	}
	return &Quantizer{eps: eps, radius: radius}
}

// Eps returns the error bound.
func (q *Quantizer) Eps() float64 { return q.eps }

// Radius returns the quantization radius.
func (q *Quantizer) Radius() int { return q.radius }

// Quantize returns the code for residual r and whether it was quantizable.
// Codes are in [1, 2*radius]; ok=false means the caller must store the
// value exactly and emit OutlierCode.
func (q *Quantizer) Quantize(r float64) (code uint32, ok bool) {
	if q.eps <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		return OutlierCode, false
	}
	bin := math.Round(r / (2 * q.eps))
	if bin < float64(-q.radius+1) || bin > float64(q.radius) {
		return OutlierCode, false
	}
	return uint32(int(bin) + q.radius), true
}

// Dequantize returns the reconstructed residual for a non-outlier code.
func (q *Quantizer) Dequantize(code uint32) float64 {
	return float64(int(code)-q.radius) * 2 * q.eps
}
