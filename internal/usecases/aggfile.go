// Package usecases implements executable versions of the paper's three
// application use cases (§I, §V): (A) searching for an error bound that
// meets a compression-ratio target, (B) selecting the best compressor
// under constraints, and (C) writing many compressed buffers into one
// aggregated file in parallel, where each writer must know its offset
// before compressing — the HDF5-style scenario. The aggfile container in
// this file is the aggregated-file substrate for use case C.
package usecases

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/crestlab/crest/internal/compressors"
	"github.com/crestlab/crest/internal/grid"
)

// aggMagic identifies an aggregated file.
var aggMagic = []byte("CRAG1")

// AggEntry is the directory record of one compressed buffer in an
// aggregated file.
type AggEntry struct {
	Field    string
	Step     int
	Eps      float64
	Offset   uint64 // payload offset from the start of the data region
	Size     uint64 // actual compressed size
	Reserved uint64 // space reserved at planning time (≥ Size when planned)
	Overflow bool   // true when the payload lives in the overflow region
}

// AggFile is an in-memory aggregated file: a directory plus the packed
// data region. It stands in for the parallel-HDF5 target of use case C.
type AggFile struct {
	Entries []AggEntry
	Data    []byte
}

// ErrBadAggFile reports an unparseable aggregated file.
var ErrBadAggFile = errors.New("usecases: bad aggregated file")

// Marshal serializes the aggregated file.
func (f *AggFile) Marshal() []byte {
	var buf bytes.Buffer
	buf.Write(aggMagic)
	writeUvarint(&buf, uint64(len(f.Entries)))
	for _, e := range f.Entries {
		writeUvarint(&buf, uint64(len(e.Field)))
		buf.WriteString(e.Field)
		writeUvarint(&buf, uint64(e.Step))
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(e.Eps))
		buf.Write(tmp[:])
		writeUvarint(&buf, e.Offset)
		writeUvarint(&buf, e.Size)
		writeUvarint(&buf, e.Reserved)
		if e.Overflow {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
	}
	buf.Write(f.Data)
	return buf.Bytes()
}

// UnmarshalAggFile parses a serialized aggregated file.
func UnmarshalAggFile(b []byte) (*AggFile, error) {
	if len(b) < len(aggMagic) || !bytes.Equal(b[:len(aggMagic)], aggMagic) {
		return nil, ErrBadAggFile
	}
	r := bytes.NewReader(b[len(aggMagic):])
	n, err := binary.ReadUvarint(r)
	if err != nil || n > 1<<24 {
		return nil, ErrBadAggFile
	}
	f := &AggFile{Entries: make([]AggEntry, n)}
	for i := range f.Entries {
		var e AggEntry
		fl, err := binary.ReadUvarint(r)
		if err != nil || fl > 4096 {
			return nil, ErrBadAggFile
		}
		name := make([]byte, fl)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, ErrBadAggFile
		}
		e.Field = string(name)
		st, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, ErrBadAggFile
		}
		e.Step = int(st)
		var tmp [8]byte
		if _, err := io.ReadFull(r, tmp[:]); err != nil {
			return nil, ErrBadAggFile
		}
		e.Eps = math.Float64frombits(binary.LittleEndian.Uint64(tmp[:]))
		if e.Offset, err = binary.ReadUvarint(r); err != nil {
			return nil, ErrBadAggFile
		}
		if e.Size, err = binary.ReadUvarint(r); err != nil {
			return nil, ErrBadAggFile
		}
		if e.Reserved, err = binary.ReadUvarint(r); err != nil {
			return nil, ErrBadAggFile
		}
		ov, err := r.ReadByte()
		if err != nil {
			return nil, ErrBadAggFile
		}
		e.Overflow = ov == 1
		f.Entries[i] = e
	}
	f.Data = make([]byte, r.Len())
	if _, err := io.ReadFull(r, f.Data); err != nil {
		return nil, ErrBadAggFile
	}
	return f, nil
}

// Read decompresses entry i with the given compressor.
func (f *AggFile) Read(i int, comp compressors.Compressor) (*grid.Buffer, error) {
	if i < 0 || i >= len(f.Entries) {
		return nil, fmt.Errorf("usecases: entry %d out of range", i)
	}
	e := f.Entries[i]
	if e.Offset+e.Size > uint64(len(f.Data)) {
		return nil, ErrBadAggFile
	}
	buf, err := comp.Decompress(f.Data[e.Offset : e.Offset+e.Size])
	if err != nil {
		return nil, err
	}
	buf.Field = e.Field
	buf.Step = e.Step
	return buf, nil
}

// WastedBytes returns the reserved-but-unused space, the storage cost of
// over-allocation in estimate-driven writes.
func (f *AggFile) WastedBytes() uint64 {
	var w uint64
	for _, e := range f.Entries {
		if !e.Overflow && e.Reserved > e.Size {
			w += e.Reserved - e.Size
		}
	}
	return w
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}
