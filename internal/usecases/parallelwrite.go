package usecases

import (
	"fmt"
	"sync"
	"time"

	"github.com/crestlab/crest/internal/baselines"
	"github.com/crestlab/crest/internal/compressors"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/parallel"
)

// WriteResult reports one use-case-C run.
type WriteResult struct {
	File          *AggFile
	Elapsed       time.Duration
	Compressions  int // total compressor invocations
	Mispredicts   int // buffers whose reserved space was too small
	OverflowBytes uint64
}

// ParallelWriteNoEstimate builds an aggregated file the baseline way:
// compress every buffer once to learn sizes (discarding payloads beyond
// the memory budget of memBuffers per worker), lay out offsets, then
// compress again and write (§V-E: "run compression of each buffer twice").
func ParallelWriteNoEstimate(bufs []*grid.Buffer, comp compressors.Compressor, eps float64, workers, memBuffers int) (WriteResult, error) {
	start := time.Now()
	res := WriteResult{}
	n := len(bufs)
	sizes := make([]uint64, n)
	kept := make([][]byte, n) // payloads retained within the memory budget

	var mu sync.Mutex
	var firstErr error
	held := 0
	runParallel(n, workers, func(i int) {
		data, err := comp.Compress(bufs[i], eps)
		mu.Lock()
		defer mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
			return
		}
		res.Compressions++
		sizes[i] = uint64(len(data))
		if held < memBuffers*maxInt(workers, 1) {
			kept[i] = data
			held++
		}
	})
	if firstErr != nil {
		return res, fmt.Errorf("usecases: first pass: %w", firstErr)
	}

	f := &AggFile{Entries: make([]AggEntry, n)}
	var off uint64
	for i, b := range bufs {
		f.Entries[i] = AggEntry{Field: b.Field, Step: b.Step, Eps: eps, Offset: off, Size: sizes[i], Reserved: sizes[i]}
		off += sizes[i]
	}
	f.Data = make([]byte, off)

	runParallel(n, workers, func(i int) {
		data := kept[i]
		if data == nil {
			var err error
			data, err = comp.Compress(bufs[i], eps)
			mu.Lock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			res.Compressions++
			mu.Unlock()
			if err != nil {
				return
			}
		}
		copy(f.Data[f.Entries[i].Offset:], data)
	})
	if firstErr != nil {
		return res, fmt.Errorf("usecases: second pass: %w", firstErr)
	}
	res.File = f
	res.Elapsed = time.Since(start)
	return res, nil
}

// SizeEstimator predicts a reserved byte count for a buffer before
// compressing it.
type SizeEstimator func(buf *grid.Buffer, eps float64) (uint64, error)

// ConservativeEstimator reserves space from a method's CR estimate divided
// by the over-allocation factor alpha ≥ 1 (§VI-G: "the user can
// over-allocate storage relative to the prediction"); for the proposed
// method the conformal lower bound replaces the point estimate, making the
// miss rate a dialable quantity.
func ConservativeEstimator(m baselines.Method, alpha float64) SizeEstimator {
	if alpha < 1 {
		alpha = 1
	}
	return func(buf *grid.Buffer, eps float64) (uint64, error) {
		var cr float64
		if p, ok := m.(*baselines.Proposed); ok {
			est, err := p.Interval(buf, eps)
			if err != nil {
				return 0, err
			}
			cr = est.Lo // conformal lower CR bound ⇒ upper size bound
		} else {
			var err error
			cr, err = m.Predict(buf, eps)
			if err != nil {
				return 0, err
			}
		}
		cr /= alpha
		if cr < 1 {
			cr = 1
		}
		return uint64(float64(buf.SizeBytes())/cr) + 64, nil
	}
}

// TargetMissEstimator builds a size estimator whose under-prediction
// probability is dialed a priori through the conformal level (§VI-G:
// "With our approach based on conformal prediction, we can easily choose
// this parameter and determine a priori our space vs speed trade-offs").
// The method is retrained with λ = 2·missRate, so the lower CR bound is
// exceeded downward — i.e. the reservation is too small — with
// probability ≈ missRate on exchangeable data.
func TargetMissEstimator(p *baselines.Proposed, bufs []*grid.Buffer, crs []float64, eps, missRate float64) (SizeEstimator, error) {
	if missRate <= 0 || missRate >= 0.5 {
		return nil, fmt.Errorf("usecases: miss rate %g outside (0, 0.5)", missRate)
	}
	cfg := p.Cfg
	cfg.Conformal.Lambda = 2 * missRate
	tuned := baselines.NewProposed(cfg)
	if err := tuned.Fit(bufs, crs, eps); err != nil {
		return nil, err
	}
	return ConservativeEstimator(tuned, 1.0), nil
}

// ParallelWriteWithEstimate builds the aggregated file the paper's way:
// reserve offsets from size estimates, compress each buffer exactly once
// and write it at its reserved offset; buffers that overflow their
// reservation are appended to an overflow region in a repair pass (§V-E).
func ParallelWriteWithEstimate(bufs []*grid.Buffer, comp compressors.Compressor, eps float64, workers int, estimate SizeEstimator) (WriteResult, error) {
	start := time.Now()
	res := WriteResult{}
	n := len(bufs)

	f := &AggFile{Entries: make([]AggEntry, n)}
	var off uint64
	for i, b := range bufs {
		reserve, err := estimate(b, eps)
		if err != nil {
			return res, fmt.Errorf("usecases: estimate: %w", err)
		}
		f.Entries[i] = AggEntry{Field: b.Field, Step: b.Step, Eps: eps, Offset: off, Reserved: reserve}
		off += reserve
	}
	base := off

	payloads := make([][]byte, n)
	var mu sync.Mutex
	var firstErr error
	runParallel(n, workers, func(i int) {
		data, err := comp.Compress(bufs[i], eps)
		mu.Lock()
		defer mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
			return
		}
		res.Compressions++
		payloads[i] = data
	})
	if firstErr != nil {
		return res, fmt.Errorf("usecases: compress: %w", firstErr)
	}

	// Repair pass: misses move to the overflow region.
	var overflow uint64
	for i := range bufs {
		size := uint64(len(payloads[i]))
		f.Entries[i].Size = size
		if size > f.Entries[i].Reserved {
			res.Mispredicts++
			f.Entries[i].Overflow = true
			f.Entries[i].Offset = base + overflow
			overflow += size
		}
	}
	f.Data = make([]byte, base+overflow)
	runParallel(n, workers, func(i int) {
		copy(f.Data[f.Entries[i].Offset:], payloads[i])
	})
	res.OverflowBytes = overflow
	res.File = f
	res.Elapsed = time.Since(start)
	return res, nil
}

// runParallel executes fn(i) for i in [0,n) on up to workers goroutines
// with dynamic scheduling, matching irregular compression costs. It
// delegates to the shared §IV-C substrate; workers <= 1 stays serial
// (unlike parallel.Workers, which maps 0 to GOMAXPROCS) to preserve the
// simulation's explicit worker accounting.
func runParallel(n, workers int, fn func(i int)) {
	if workers < 1 {
		workers = 1
	}
	parallel.ForEachDynamic(n, workers, fn)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
