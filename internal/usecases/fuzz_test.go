package usecases

import "testing"

// FuzzUnmarshalAggFile hardens the aggregated-file parser.
func FuzzUnmarshalAggFile(f *testing.F) {
	good := (&AggFile{
		Entries: []AggEntry{{Field: "x", Step: 1, Eps: 1e-3, Size: 2, Reserved: 2}},
		Data:    []byte{1, 2},
	}).Marshal()
	f.Add(good)
	f.Add([]byte("CRAG1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if af, err := UnmarshalAggFile(data); err == nil {
			if af == nil {
				t.Fatal("nil file without error")
			}
			_ = af.WastedBytes()
		}
	})
}
