package usecases

import (
	"fmt"
	"time"

	"github.com/crestlab/crest/internal/baselines"
	"github.com/crestlab/crest/internal/compressors"
	"github.com/crestlab/crest/internal/grid"
)

// SelectionResult reports one use-case-B run: which compressor was chosen
// for a buffer, whether the choice matched the true optimum, and the work
// performed.
type SelectionResult struct {
	Chosen    string
	TrueBest  string
	Correct   bool
	ChosenCR  float64 // true CR of the chosen compressor
	BestCR    float64 // true CR of the optimal compressor
	Elapsed   time.Duration
	FinalData []byte // the buffer compressed with the chosen compressor
}

// trueBest runs every compressor and returns the best name and per-name
// true ratios.
func trueBest(comps []compressors.Compressor, buf *grid.Buffer, eps float64) (string, map[string]float64, error) {
	crs := make(map[string]float64, len(comps))
	best, bestCR := "", -1.0
	for _, c := range comps {
		cr, err := compressors.Ratio(c, buf, eps)
		if err != nil {
			return "", nil, fmt.Errorf("usecases: %s: %w", c.Name(), err)
		}
		crs[c.Name()] = cr
		if cr > bestCR {
			best, bestCR = c.Name(), cr
		}
	}
	return best, crs, nil
}

// SelectBestNoEstimate runs every candidate once, picks the highest true
// ratio, and re-runs the winner to produce the stored stream (§V-D
// no-estimation case).
func SelectBestNoEstimate(comps []compressors.Compressor, buf *grid.Buffer, eps float64) (SelectionResult, error) {
	start := time.Now()
	best, crs, err := trueBest(comps, buf, eps)
	if err != nil {
		return SelectionResult{}, err
	}
	var winner compressors.Compressor
	for _, c := range comps {
		if c.Name() == best {
			winner = c
		}
	}
	data, err := winner.Compress(buf, eps)
	if err != nil {
		return SelectionResult{}, err
	}
	return SelectionResult{
		Chosen: best, TrueBest: best, Correct: true,
		ChosenCR: crs[best], BestCR: crs[best],
		Elapsed: time.Since(start), FinalData: data,
	}, nil
}

// SelectBestWithEstimate estimates every candidate's ratio with the
// per-compressor trained methods, picks the highest estimate, and runs
// only that compressor (§V-D estimation case). methods maps compressor
// name to a method already trained for that compressor.
func SelectBestWithEstimate(comps []compressors.Compressor, buf *grid.Buffer, eps float64, methods map[string]baselines.Method) (SelectionResult, error) {
	start := time.Now()
	chosen, bestEst := "", -1.0
	for _, c := range comps {
		m, ok := methods[c.Name()]
		if !ok {
			return SelectionResult{}, fmt.Errorf("usecases: no method trained for %s", c.Name())
		}
		est, err := m.Predict(buf, eps)
		if err != nil {
			return SelectionResult{}, fmt.Errorf("usecases: estimate %s: %w", c.Name(), err)
		}
		if est > bestEst {
			chosen, bestEst = c.Name(), est
		}
	}
	var winner compressors.Compressor
	for _, c := range comps {
		if c.Name() == chosen {
			winner = c
		}
	}
	data, err := winner.Compress(buf, eps)
	if err != nil {
		return SelectionResult{}, err
	}
	elapsed := time.Since(start)

	// Ground truth for scoring (not charged to the measured time).
	best, crs, err := trueBest(comps, buf, eps)
	if err != nil {
		return SelectionResult{}, err
	}
	return SelectionResult{
		Chosen: chosen, TrueBest: best, Correct: chosen == best,
		ChosenCR: crs[chosen], BestCR: crs[best],
		Elapsed: elapsed, FinalData: data,
	}, nil
}
