package usecases

import (
	"math"
	"testing"

	"github.com/crestlab/crest/internal/baselines"
	"github.com/crestlab/crest/internal/compressors"
	"github.com/crestlab/crest/internal/core"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/synthdata"
)

func hurricane(t *testing.T) *grid.Dataset {
	t.Helper()
	return synthdata.Hurricane(synthdata.Options{NZ: 10, NY: 48, NX: 48, Seed: 55})
}

func TestAggFileRoundTrip(t *testing.T) {
	f := &AggFile{
		Entries: []AggEntry{
			{Field: "a", Step: 3, Eps: 1e-3, Offset: 0, Size: 4, Reserved: 6},
			{Field: "b", Step: 0, Eps: 1e-4, Offset: 6, Size: 3, Reserved: 3, Overflow: true},
		},
		Data: []byte{1, 2, 3, 4, 0, 0, 7, 8, 9},
	}
	blob := f.Marshal()
	got, err := UnmarshalAggFile(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 2 {
		t.Fatalf("%d entries", len(got.Entries))
	}
	for i := range f.Entries {
		if got.Entries[i] != f.Entries[i] {
			t.Errorf("entry %d = %+v, want %+v", i, got.Entries[i], f.Entries[i])
		}
	}
	if string(got.Data) != string(f.Data) {
		t.Error("data region differs")
	}
	if w := f.WastedBytes(); w != 2 {
		t.Errorf("wasted = %d", w)
	}
}

func TestAggFileRejectsCorrupt(t *testing.T) {
	if _, err := UnmarshalAggFile(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := UnmarshalAggFile([]byte("WRONG...")); err == nil {
		t.Error("bad magic accepted")
	}
	good := (&AggFile{Entries: []AggEntry{{Field: "x", Size: 1}}, Data: []byte{9}}).Marshal()
	if _, err := UnmarshalAggFile(good[:len(good)-3]); err == nil {
		t.Error("truncated file accepted")
	}
}

func TestAggFileReadBoundsChecks(t *testing.T) {
	comp := compressors.MustNew("szinterp")
	f := &AggFile{Entries: []AggEntry{{Field: "x", Offset: 0, Size: 100}}, Data: []byte{1, 2}}
	if _, err := f.Read(0, comp); err == nil {
		t.Error("out-of-bounds entry accepted")
	}
	if _, err := f.Read(5, comp); err == nil {
		t.Error("bad index accepted")
	}
}

func trainedMethod(t *testing.T, ds *grid.Dataset, comp compressors.Compressor, eps float64) *baselines.Proposed {
	t.Helper()
	var bufs []*grid.Buffer
	var crs []float64
	for _, f := range ds.Fields {
		for _, b := range f.Buffers[:4] {
			cr, err := compressors.Ratio(comp, b, eps)
			if err != nil {
				t.Fatal(err)
			}
			bufs = append(bufs, b)
			crs = append(crs, math.Min(cr, 100))
		}
	}
	m := baselines.NewProposed(core.Config{})
	if err := m.Fit(bufs, crs, eps); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParallelWriteEquivalence(t *testing.T) {
	ds := hurricane(t)
	comp := compressors.MustNew("szinterp")
	eps := 1e-3
	var write []*grid.Buffer
	for _, f := range ds.Fields[:6] {
		write = append(write, f.Buffers[4:8]...)
	}
	m := trainedMethod(t, ds, comp, eps)

	base, err := ParallelWriteNoEstimate(write, comp, eps, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	est, err := ParallelWriteWithEstimate(write, comp, eps, 3, ConservativeEstimator(m, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	// Both files must decompress every buffer within the bound.
	for name, res := range map[string]WriteResult{"base": base, "est": est} {
		if len(res.File.Entries) != len(write) {
			t.Fatalf("%s: %d entries", name, len(res.File.Entries))
		}
		for i, b := range write {
			dec, err := res.File.Read(i, comp)
			if err != nil {
				t.Fatalf("%s entry %d: %v", name, i, err)
			}
			if d := b.MaxAbsDiff(dec); d > eps*(1+1e-12) {
				t.Fatalf("%s entry %d error %g > eps", name, i, d)
			}
			if res.File.Entries[i].Field != b.Field || res.File.Entries[i].Step != b.Step {
				t.Fatalf("%s entry %d identity mismatch", name, i)
			}
		}
	}
	// The estimate path compresses once per buffer; baseline twice (minus
	// whatever fit the memory budget).
	if est.Compressions != len(write) {
		t.Errorf("estimate path used %d compressions for %d buffers", est.Compressions, len(write))
	}
	if base.Compressions <= len(write) {
		t.Errorf("baseline used %d compressions, expected more than %d", base.Compressions, len(write))
	}
}

func TestParallelWriteMispredictionRepair(t *testing.T) {
	ds := hurricane(t)
	comp := compressors.MustNew("szinterp")
	eps := 1e-3
	var write []*grid.Buffer
	for _, f := range ds.Fields[:4] {
		write = append(write, f.Buffers[4:7]...)
	}
	// A deliberately optimistic estimator (reserves half the needed
	// space) forces overflow repairs.
	tight := func(buf *grid.Buffer, eps float64) (uint64, error) {
		data, err := comp.Compress(buf, eps)
		if err != nil {
			return 0, err
		}
		return uint64(len(data) / 2), nil
	}
	res, err := ParallelWriteWithEstimate(write, comp, eps, 2, tight)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mispredicts != len(write) {
		t.Errorf("mispredicts = %d, want all %d", res.Mispredicts, len(write))
	}
	if res.OverflowBytes == 0 {
		t.Error("no overflow bytes recorded")
	}
	// Still fully readable.
	for i, b := range write {
		dec, err := res.File.Read(i, comp)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if d := b.MaxAbsDiff(dec); d > eps*(1+1e-12) {
			t.Fatalf("entry %d error %g", i, d)
		}
	}
}

func TestSearchTargetNoEstimateConverges(t *testing.T) {
	ds := hurricane(t)
	comp := compressors.MustNew("szinterp")
	buf := ds.Field("TC").Buffers[0]
	res, err := SearchTargetNoEstimate(comp, buf, 10, 1e-7, 1e-1, 25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.AchievedCR-10)/10 > 0.25 {
		t.Errorf("achieved CR %.2f for target 10", res.AchievedCR)
	}
	if res.Compressions != 26 {
		t.Errorf("compressions = %d", res.Compressions)
	}
}

func TestSearchTargetWithEstimateUsesOneCompression(t *testing.T) {
	ds := hurricane(t)
	comp := compressors.MustNew("szinterp")
	field := ds.Field("TC")
	// Rate-aware training across bounds.
	epses := []float64{1e-2, 1e-3, 1e-4, 1e-5}
	train := field.Buffers[:8]
	crs := make([][]float64, len(train))
	for i, b := range train {
		crs[i] = make([]float64, len(epses))
		for j, e := range epses {
			cr, err := compressors.Ratio(comp, b, e)
			if err != nil {
				t.Fatal(err)
			}
			crs[i][j] = math.Min(cr, 100)
		}
	}
	m := baselines.NewProposed(core.Config{})
	if err := m.FitMulti(train, crs, epses); err != nil {
		t.Fatal(err)
	}
	res, err := SearchTargetWithEstimate(comp, field.Buffers[9], m, 10, 1e-7, 1e-1, 25)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compressions != 1 {
		t.Errorf("compressions = %d, want 1", res.Compressions)
	}
	if res.Estimations != 25 {
		t.Errorf("estimations = %d", res.Estimations)
	}
	if math.Abs(res.AchievedCR-10)/10 > 0.5 {
		t.Errorf("achieved CR %.2f for target 10", res.AchievedCR)
	}
}

func TestSelectBestAgainstOracle(t *testing.T) {
	ds := hurricane(t)
	eps := 1e-3
	comps := []compressors.Compressor{
		compressors.MustNew("szinterp"),
		compressors.MustNew("zfplike"),
		compressors.MustNew("bitgroom"),
	}
	buf := ds.Field("QSNOW").Buffers[5]
	noEst, err := SelectBestNoEstimate(comps, buf, eps)
	if err != nil {
		t.Fatal(err)
	}
	if !noEst.Correct || noEst.Chosen != noEst.TrueBest {
		t.Errorf("oracle selection inconsistent: %+v", noEst)
	}
	if noEst.ChosenCR != noEst.BestCR {
		t.Error("chosen CR differs from best CR in oracle mode")
	}
	// With perfect (oracle) per-compressor methods the estimate path must
	// agree with the oracle.
	methods := map[string]baselines.Method{}
	for _, c := range comps {
		methods[c.Name()] = &oracleEstimator{comp: c}
	}
	withEst, err := SelectBestWithEstimate(comps, buf, eps, methods)
	if err != nil {
		t.Fatal(err)
	}
	if !withEst.Correct {
		t.Errorf("oracle-estimate selection wrong: chose %s, best %s", withEst.Chosen, withEst.TrueBest)
	}
	if len(withEst.FinalData) == 0 {
		t.Error("no compressed stream produced")
	}
	// Missing method errors.
	if _, err := SelectBestWithEstimate(comps, buf, eps, map[string]baselines.Method{}); err == nil {
		t.Error("missing methods accepted")
	}
}

type oracleEstimator struct{ comp compressors.Compressor }

func (o *oracleEstimator) Name() string { return "oracle" }
func (o *oracleEstimator) Fit(bufs []*grid.Buffer, crs []float64, eps float64) error {
	return nil
}
func (o *oracleEstimator) Predict(buf *grid.Buffer, eps float64) (float64, error) {
	return compressors.Ratio(o.comp, buf, eps)
}

func TestConservativeEstimatorReservesEnough(t *testing.T) {
	ds := hurricane(t)
	comp := compressors.MustNew("szinterp")
	eps := 1e-3
	m := trainedMethod(t, ds, comp, eps)
	est := ConservativeEstimator(m, 1.0)
	misses := 0
	total := 0
	for _, f := range ds.Fields[:6] {
		for _, b := range f.Buffers[5:8] {
			reserve, err := est(b, eps)
			if err != nil {
				t.Fatal(err)
			}
			data, err := comp.Compress(b, eps)
			if err != nil {
				t.Fatal(err)
			}
			total++
			if uint64(len(data)) > reserve {
				misses++
			}
		}
	}
	// The conformal lower bound makes misses rare (not necessarily zero).
	if misses > total/3 {
		t.Errorf("%d/%d reservations too small", misses, total)
	}
	// Higher alpha reserves more.
	estBig := ConservativeEstimator(m, 2.0)
	b := ds.Fields[0].Buffers[5]
	r1, err := est(b, eps)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := estBig(b, eps)
	if err != nil {
		t.Fatal(err)
	}
	if r2 <= r1 {
		t.Errorf("alpha=2 reserve %d not above alpha=1 reserve %d", r2, r1)
	}
}

func TestTargetMissEstimatorDial(t *testing.T) {
	ds := hurricane(t)
	comp := compressors.MustNew("szinterp")
	eps := 1e-3
	var trainBufs []*grid.Buffer
	var trainCRs []float64
	var writeBufs []*grid.Buffer
	for _, f := range ds.Fields {
		for i, b := range f.Buffers {
			if i < 5 {
				cr, err := compressors.Ratio(comp, b, eps)
				if err != nil {
					t.Fatal(err)
				}
				trainBufs = append(trainBufs, b)
				trainCRs = append(trainCRs, math.Min(cr, 100))
			} else {
				writeBufs = append(writeBufs, b)
			}
		}
	}
	m := baselines.NewProposed(core.Config{})
	if err := m.Fit(trainBufs, trainCRs, eps); err != nil {
		t.Fatal(err)
	}
	missAt := func(target float64) int {
		est, err := TargetMissEstimator(m, trainBufs, trainCRs, eps, target)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ParallelWriteWithEstimate(writeBufs, comp, eps, 2, est)
		if err != nil {
			t.Fatal(err)
		}
		return res.Mispredicts
	}
	loose := missAt(0.25)
	tight := missAt(0.02)
	if tight > loose {
		t.Errorf("2%% target missed %d, 25%% target missed %d — dial inverted", tight, loose)
	}
	// Out-of-range targets rejected.
	if _, err := TargetMissEstimator(m, trainBufs, trainCRs, eps, 0); err == nil {
		t.Error("missRate=0 accepted")
	}
	if _, err := TargetMissEstimator(m, trainBufs, trainCRs, eps, 0.7); err == nil {
		t.Error("missRate=0.7 accepted")
	}
}
