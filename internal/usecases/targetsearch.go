package usecases

import (
	"fmt"
	"math"
	"time"

	"github.com/crestlab/crest/internal/baselines"
	"github.com/crestlab/crest/internal/compressors"
	"github.com/crestlab/crest/internal/grid"
)

// SearchResult reports one use-case-A run: the bound found for the CR
// target, the ratio it actually achieves, and the work performed.
type SearchResult struct {
	Eps          float64
	AchievedCR   float64
	Compressions int
	Estimations  int
	Elapsed      time.Duration
}

// SearchTargetNoEstimate binary-searches the error bound whose true
// compression ratio meets target, running the compressor at every
// iteration — the baseline the paper's use case A replaces (§V-C).
func SearchTargetNoEstimate(comp compressors.Compressor, buf *grid.Buffer, target, loEps, hiEps float64, iters int) (SearchResult, error) {
	start := time.Now()
	res := SearchResult{}
	lo, hi := math.Log(loEps), math.Log(hiEps)
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		cr, err := compressors.Ratio(comp, buf, math.Exp(mid))
		if err != nil {
			return res, fmt.Errorf("usecases: search compress: %w", err)
		}
		res.Compressions++
		if cr < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	res.Eps = math.Exp((lo + hi) / 2)
	cr, err := compressors.Ratio(comp, buf, res.Eps)
	if err != nil {
		return res, err
	}
	res.Compressions++
	res.AchievedCR = cr
	res.Elapsed = time.Since(start)
	return res, nil
}

// SearchTargetWithEstimate runs the same search but answers every probe
// with the trained estimation method, compressing only once at the end to
// realize the chosen bound (§V-C: predictors per iteration, compressor
// once).
func SearchTargetWithEstimate(comp compressors.Compressor, buf *grid.Buffer, m baselines.Method, target, loEps, hiEps float64, iters int) (SearchResult, error) {
	start := time.Now()
	res := SearchResult{}
	lo, hi := math.Log(loEps), math.Log(hiEps)
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		cr, err := m.Predict(buf, math.Exp(mid))
		if err != nil {
			return res, fmt.Errorf("usecases: search estimate: %w", err)
		}
		res.Estimations++
		if cr < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	res.Eps = math.Exp((lo + hi) / 2)
	cr, err := compressors.Ratio(comp, buf, res.Eps)
	if err != nil {
		return res, err
	}
	res.Compressions++
	res.AchievedCR = cr
	res.Elapsed = time.Since(start)
	return res, nil
}

// SearchComparison is the Fig. 7 measurement for one (compressor, method)
// pair.
type SearchComparison struct {
	Compressor string
	Method     string
	Speedup    float64 // no-estimate time / with-estimate time
	// TargetErrPct is |achieved − baselineAchieved| as % of the baseline,
	// the accuracy cost of using estimates.
	TargetErrPct float64
}

// CompareSearch measures the use-case-A speedup of a trained method
// against the no-estimation baseline on one buffer.
func CompareSearch(comp compressors.Compressor, buf *grid.Buffer, m baselines.Method, target, loEps, hiEps float64, iters int) (SearchComparison, error) {
	base, err := SearchTargetNoEstimate(comp, buf, target, loEps, hiEps, iters)
	if err != nil {
		return SearchComparison{}, err
	}
	est, err := SearchTargetWithEstimate(comp, buf, m, target, loEps, hiEps, iters)
	if err != nil {
		return SearchComparison{}, err
	}
	sc := SearchComparison{
		Compressor: comp.Name(),
		Method:     m.Name(),
		Speedup:    float64(base.Elapsed) / math.Max(float64(est.Elapsed), 1),
	}
	if base.AchievedCR > 0 {
		sc.TargetErrPct = 100 * math.Abs(est.AchievedCR-base.AchievedCR) / base.AchievedCR
	}
	return sc, nil
}
