package synthdata

import (
	"math"
	"testing"

	"github.com/crestlab/crest/internal/stats"
)

func TestDeterminism(t *testing.T) {
	a := Hurricane(Options{NZ: 4, NY: 32, NX: 32, Seed: 9})
	b := Hurricane(Options{NZ: 4, NY: 32, NX: 32, Seed: 9})
	for fi, f := range a.Fields {
		for bi, buf := range f.Buffers {
			other := b.Fields[fi].Buffers[bi]
			for i := range buf.Data {
				if buf.Data[i] != other.Data[i] {
					t.Fatalf("field %s slice %d differs at %d", f.Name, bi, i)
				}
			}
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := Hurricane(Options{NZ: 2, NY: 16, NX: 16, Seed: 1})
	b := Hurricane(Options{NZ: 2, NY: 16, NX: 16, Seed: 2})
	same := true
	bufA := a.Fields[0].Buffers[0]
	bufB := b.Fields[0].Buffers[0]
	for i := range bufA.Data {
		if bufA.Data[i] != bufB.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestShapesAndIdentity(t *testing.T) {
	ds := NYX(Options{NZ: 3, NY: 20, NX: 24, Seed: 5})
	if ds.Name != "nyx" || len(ds.Fields) != 3 {
		t.Fatalf("dataset %q with %d fields", ds.Name, len(ds.Fields))
	}
	for _, f := range ds.Fields {
		if len(f.Buffers) != 3 {
			t.Errorf("%s has %d slices", f.Name, len(f.Buffers))
		}
		for z, b := range f.Buffers {
			if b.Rows != 20 || b.Cols != 24 {
				t.Errorf("%s slice %d shape %dx%d", f.Name, z, b.Rows, b.Cols)
			}
			if b.Dataset != "nyx" || b.Field != f.Name || b.Step != z {
				t.Errorf("identity %q/%q step %d", b.Dataset, b.Field, b.Step)
			}
		}
	}
}

func TestHurricaneHasTwelveFields(t *testing.T) {
	ds := Hurricane(Options{NZ: 2, NY: 16, NX: 16})
	if len(ds.Fields) != 12 {
		t.Fatalf("%d fields", len(ds.Fields))
	}
	for _, want := range []string{"CLOUD", "QVAPOR", "TC", "U", "V", "W", "PRECIP"} {
		if ds.Field(want) == nil {
			t.Errorf("missing field %s", want)
		}
	}
}

func TestSparseTransformProducesZeros(t *testing.T) {
	ds := Hurricane(Options{NZ: 2, NY: 48, NX: 48, Seed: 3})
	for _, name := range []string{"CLOUD", "QRAIN", "QSNOW"} {
		buf := ds.Field(name).Buffers[0]
		zeros := 0
		for _, v := range buf.Data {
			if v == 0 {
				zeros++
			}
			if v < 0 {
				t.Fatalf("%s has negative value %g after sparse transform", name, v)
			}
		}
		if frac := float64(zeros) / float64(len(buf.Data)); frac < 0.1 {
			t.Errorf("%s only %.0f%% zeros; expected a sparse hydrometeor field", name, 100*frac)
		}
	}
}

func TestExpTransformIsPositiveWithDynamicRange(t *testing.T) {
	ds := NYX(Options{NZ: 2, NY: 48, NX: 48, Seed: 3})
	buf := ds.Field("baryon_density").Buffers[0]
	lo, hi := buf.Range()
	if lo <= 0 {
		t.Fatalf("log-normal field has non-positive min %g", lo)
	}
	if hi/lo < 100 {
		t.Errorf("dynamic range %.1f too small for a baryon-density analogue", hi/lo)
	}
}

func TestCouplingCorrelatesFields(t *testing.T) {
	ds := Hurricane(Options{NZ: 2, NY: 48, NX: 48, Seed: 4})
	u := ds.Field("U").Buffers[0]
	tc := ds.Field("TC").Buffers[0]
	v := ds.Field("V").Buffers[0]
	rUT := math.Abs(stats.Pearson(u.Data, tc.Data))
	rVT := math.Abs(stats.Pearson(v.Data, tc.Data))
	if rUT <= rVT {
		t.Errorf("coupled U-TC correlation %.3f not above uncoupled V-TC %.3f", rUT, rVT)
	}
}

func TestSmoothnessOrdering(t *testing.T) {
	// QVAPOR (slope 3.0) must be smoother than V (slope 0.8): measured by
	// the variance of first differences relative to total variance.
	ds := Hurricane(Options{NZ: 2, NY: 64, NX: 64, Seed: 6})
	rough := func(buf interface{ At(int, int) float64 }, rows, cols int) float64 {
		var diff2, tot float64
		var mean float64
		n := 0
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				mean += buf.At(i, j)
				n++
			}
		}
		mean /= float64(n)
		for i := 0; i < rows; i++ {
			for j := 1; j < cols; j++ {
				d := buf.At(i, j) - buf.At(i, j-1)
				diff2 += d * d
				tot += (buf.At(i, j) - mean) * (buf.At(i, j) - mean)
			}
		}
		if tot == 0 {
			return 0
		}
		return diff2 / tot
	}
	qv := ds.Field("QVAPOR").Buffers[0]
	vv := ds.Field("V").Buffers[0]
	if rq, rv := rough(qv, qv.Rows, qv.Cols), rough(vv, vv.Rows, vv.Cols); rq >= rv {
		t.Errorf("QVAPOR roughness %.4f not below V roughness %.4f", rq, rv)
	}
}

func TestSlicesAreZCorrelated(t *testing.T) {
	// Adjacent slices of the same field must correlate strongly (the
	// time-step structure k-fold relies on).
	ds := Miranda(Options{NZ: 4, NY: 48, NX: 48, Seed: 7})
	f := ds.Field("density")
	r := stats.Pearson(f.Buffers[0].Data, f.Buffers[1].Data)
	if r < 0.8 {
		t.Errorf("adjacent-slice correlation %.3f too low", r)
	}
}

func TestAllReturnsFourDatasets(t *testing.T) {
	all := All(Options{NZ: 2, NY: 16, NX: 16})
	if len(all) != 4 {
		t.Fatalf("All returned %d datasets", len(all))
	}
	names := map[string]bool{}
	for _, ds := range all {
		names[ds.Name] = true
	}
	for _, want := range []string{"hurricane", "nyx", "miranda", "cesm"} {
		if !names[want] {
			t.Errorf("missing dataset %s", want)
		}
	}
}

func TestDefaultSizes(t *testing.T) {
	ds := CESM(Options{})
	if len(ds.Fields[0].Buffers) != 20 {
		t.Errorf("default NZ = %d", len(ds.Fields[0].Buffers))
	}
	b := ds.Fields[0].Buffers[0]
	if b.Rows != 96 || b.Cols != 96 {
		t.Errorf("default shape %dx%d", b.Rows, b.Cols)
	}
}

func TestGenerateCustomSpecs(t *testing.T) {
	specs := []FieldSpec{
		{Name: "flat", Slope: 5, Modes: 4},
		{Name: "offset", Slope: 1, Offset: 42, Scale: 1e-9},
	}
	ds := Generate("custom", specs, 2, 8, 8, 1)
	if len(ds.Fields) != 2 || ds.Field("offset") == nil {
		t.Fatal("custom fields missing")
	}
	lo, hi := ds.Field("offset").Buffers[0].Range()
	if lo < 41.9 || hi > 42.1 {
		t.Errorf("offset field range [%g, %g]", lo, hi)
	}
}
