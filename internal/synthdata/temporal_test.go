package synthdata

import (
	"math"
	"testing"

	"github.com/crestlab/crest/internal/stats"
)

func TestVolumeMatchesGenerate(t *testing.T) {
	specs := HurricaneSpecs()
	ds := Generate("hurricane", specs, 4, 32, 40, 7)
	vol := Volume("hurricane", specs[7], 4, 32, 40, 7) // TC, uncoupled
	want := ds.Fields[7].Buffers
	for z := 0; z < 4; z++ {
		got := vol.Slice(z)
		for i := range got.Data {
			if math.Float64bits(got.Data[i]) != math.Float64bits(want[z].Data[i]) {
				t.Fatalf("slice %d element %d differs from Generate", z, i)
			}
		}
	}
}

func TestTemporalDeterministicAndStamped(t *testing.T) {
	spec := NYXSpecs()[0]
	a := Temporal("nyx", spec, 5, 24, 24, 3, 0.9)
	b := Temporal("nyx", spec, 5, 24, 24, 3, 0.9)
	if len(a) != 5 {
		t.Fatalf("got %d steps", len(a))
	}
	for tt := range a {
		if a[tt].Step != tt || a[tt].Dataset != "nyx" || a[tt].Field != spec.Name {
			t.Fatalf("step %d mis-stamped: %+v", tt, a[tt])
		}
		for i := range a[tt].Data {
			if a[tt].Data[i] != b[tt].Data[i] {
				t.Fatalf("step %d not deterministic", tt)
			}
		}
	}
}

// TestTemporalEvolvesGradually: consecutive steps stay correlated (the
// AR(1) persistence) while distant steps decorrelate — the property the
// streaming pipeline's temporal mode exists to exercise.
func TestTemporalEvolvesGradually(t *testing.T) {
	spec := HurricaneSpecs()[7] // TC: smooth, no sparse clipping
	series := Temporal("hurricane", spec, 12, 32, 32, 11, 0.8)
	corr := func(x, y []float64) float64 {
		mx, sx := stats.MeanStd(x)
		my, sy := stats.MeanStd(y)
		var c float64
		for i := range x {
			c += (x[i] - mx) * (y[i] - my)
		}
		return c / (float64(len(x)) * sx * sy)
	}
	adjacent := corr(series[0].Data, series[1].Data)
	distant := corr(series[0].Data, series[11].Data)
	if adjacent < 0.5 {
		t.Fatalf("adjacent steps decorrelated too fast: r=%g", adjacent)
	}
	if distant >= adjacent {
		t.Fatalf("no temporal decay: r(0,1)=%g r(0,11)=%g", adjacent, distant)
	}
}
