// Package synthdata generates the deterministic synthetic stand-ins for
// the SDRBench datasets used in the paper's evaluation (NYX, Hurricane,
// Miranda, plus a fourth CESM-like set for Fig. 4). Each field is a 3D
// volume synthesized as a sum of random spectral modes with a tunable
// power-law slope — smoothness, anisotropy, sparsity, dynamic range and
// cross-field coupling are the knobs the paper's five predictors measure,
// so the generated families exhibit the same in-field homogeneity and
// cross-field heterogeneity the evaluation protocol depends on. Volumes
// are sliced along the slowest dimension into 2D buffers exactly as the
// paper converts its 3D datasets (§VI-A1).
package synthdata

import (
	"hash/fnv"
	"math"
	"math/rand"

	"github.com/crestlab/crest/internal/grid"
)

// Transform selects a pointwise nonlinearity applied after spectral
// synthesis.
type Transform int

const (
	// TransformNone leaves the Gaussian-like field unchanged.
	TransformNone Transform = iota
	// TransformExp exponentiates, producing log-normal high-dynamic-range
	// fields (e.g. cosmology baryon density).
	TransformExp
	// TransformSparse thresholds at zero, producing fields that are
	// exactly zero over much of the domain (e.g. hydrometeor mixing
	// ratios such as QRAIN).
	TransformSparse
)

// FieldSpec describes one synthetic field of a dataset.
type FieldSpec struct {
	Name string
	// Slope is the spectral power-law decay: larger ⇒ smoother field.
	Slope float64
	// Modes is the number of random spectral modes summed.
	Modes int
	// Noise is the white-noise amplitude relative to unit signal.
	Noise float64
	// Scale and Offset map the synthesized field to physical range.
	Scale, Offset float64
	// Transform is the pointwise nonlinearity.
	Transform Transform
	// ExpGain scales the argument of TransformExp.
	ExpGain float64
	// SparseBias shifts the field before TransformSparse: more negative
	// bias ⇒ sparser field.
	SparseBias float64
	// AnisoY stretches wavevectors in y, creating banded structure.
	AnisoY float64
	// CoupleWith mixes in a previously generated field of the dataset;
	// CoupleMix ∈ [0,1] is the blend weight.
	CoupleWith string
	CoupleMix  float64
}

type mode struct {
	amp, kx, ky, kz, phase float64
}

// fieldSeed derives a stable per-field seed.
func fieldSeed(dataset, field string, seed int64) int64 {
	h := fnv.New64a()
	h.Write([]byte(dataset))
	h.Write([]byte{0})
	h.Write([]byte(field))
	return seed ^ int64(h.Sum64())
}

// synthesize generates one field volume.
func synthesize(dataset string, spec FieldSpec, nz, ny, nx int, seed int64, prior map[string]*grid.Volume) *grid.Volume {
	rng := rand.New(rand.NewSource(fieldSeed(dataset, spec.Name, seed)))
	nModes := spec.Modes
	if nModes <= 0 {
		nModes = 48
	}
	aniso := spec.AnisoY
	if aniso == 0 {
		aniso = 1
	}
	modes := make([]mode, nModes)
	for m := range modes {
		// Log-uniform spatial frequency in cycles per domain length.
		f := math.Exp(rng.Float64() * math.Log(float64(minInt(ny, nx))/2))
		amp := math.Pow(f, -spec.Slope) * (0.5 + rng.Float64())
		theta := rng.Float64() * 2 * math.Pi
		kx := 2 * math.Pi * f * math.Cos(theta) / float64(nx)
		ky := 2 * math.Pi * f * math.Sin(theta) * aniso / float64(ny)
		kz := 2 * math.Pi * (0.2 + 0.8*rng.Float64()) * f / float64(4*nz)
		modes[m] = mode{amp: amp, kx: kx, ky: ky, kz: kz, phase: rng.Float64() * 2 * math.Pi}
	}
	vol := grid.NewVolume(nz, ny, nx)
	vol.Dataset = dataset
	vol.Field = spec.Name
	// Normalize mode amplitudes to unit total power.
	var pow float64
	for _, m := range modes {
		pow += m.amp * m.amp / 2
	}
	norm := 1.0
	if pow > 0 {
		norm = 1 / math.Sqrt(pow)
	}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				var v float64
				for _, m := range modes {
					v += m.amp * math.Cos(m.kx*float64(x)+m.ky*float64(y)+m.kz*float64(z)+m.phase)
				}
				v *= norm
				if spec.Noise > 0 {
					v += spec.Noise * rng.NormFloat64()
				}
				vol.Set(z, y, x, v)
			}
		}
	}
	if spec.CoupleWith != "" {
		if p, ok := prior[spec.CoupleWith]; ok && len(p.Data) == len(vol.Data) {
			mix := spec.CoupleMix
			for i := range vol.Data {
				vol.Data[i] = (1-mix)*vol.Data[i] + mix*p.Data[i]
			}
		}
	}
	switch spec.Transform {
	case TransformExp:
		g := spec.ExpGain
		if g == 0 {
			g = 1
		}
		for i, v := range vol.Data {
			vol.Data[i] = math.Exp(g * v)
		}
	case TransformSparse:
		for i, v := range vol.Data {
			v += spec.SparseBias
			if v < 0 {
				v = 0
			}
			vol.Data[i] = v
		}
	}
	scale := spec.Scale
	if scale == 0 {
		scale = 1
	}
	for i, v := range vol.Data {
		vol.Data[i] = v*scale + spec.Offset
	}
	return vol
}

// Generate builds a dataset of nz slices of ny×nx buffers per field,
// deterministically from seed.
func Generate(name string, specs []FieldSpec, nz, ny, nx int, seed int64) *grid.Dataset {
	ds := &grid.Dataset{Name: name}
	prior := make(map[string]*grid.Volume, len(specs))
	for _, spec := range specs {
		vol := synthesize(name, spec, nz, ny, nx, seed, prior)
		prior[spec.Name] = vol
		f := &grid.Field{Dataset: name, Name: spec.Name, Buffers: vol.Slices()}
		ds.Fields = append(ds.Fields, f)
	}
	return ds
}

// HurricaneSpecs returns the 12-field recipe mirroring the Hurricane
// ISABEL fields of Table III: smooth dynamical fields (TC, U, V, W),
// sparse hydrometeors (QCLOUD…QICE, PRECIP, CLOUD) and the deliberately
// dissimilar QVAPOR/V outliers the paper's similarity table exposes.
func HurricaneSpecs() []FieldSpec {
	return []FieldSpec{
		{Name: "CLOUD", Slope: 1.4, Noise: 0.02, Transform: TransformSparse, SparseBias: -0.25, Scale: 1.2},
		{Name: "QCLOUD", Slope: 1.5, Noise: 0.02, Transform: TransformSparse, SparseBias: -0.30, Scale: 0.8, CoupleWith: "CLOUD", CoupleMix: 0.25},
		{Name: "PRECIP", Slope: 1.3, Noise: 0.05, Transform: TransformSparse, SparseBias: -0.35, Scale: 2.4},
		{Name: "QGRAUP", Slope: 1.5, Noise: 0.03, Transform: TransformSparse, SparseBias: -0.40, Scale: 0.6},
		{Name: "QRAIN", Slope: 1.45, Noise: 0.03, Transform: TransformSparse, SparseBias: -0.38, Scale: 0.7, CoupleWith: "QGRAUP", CoupleMix: 0.2},
		{Name: "QSNOW", Slope: 1.5, Noise: 0.025, Transform: TransformSparse, SparseBias: -0.35, Scale: 0.5},
		{Name: "QICE", Slope: 1.4, Noise: 0.02, Transform: TransformSparse, SparseBias: -0.25, Scale: 0.9, CoupleWith: "CLOUD", CoupleMix: 0.3},
		{Name: "TC", Slope: 2.2, Noise: 0.004, Scale: 25, Offset: 15},
		{Name: "U", Slope: 2.0, Noise: 0.006, Scale: 30, CoupleWith: "TC", CoupleMix: 0.15},
		{Name: "V", Slope: 0.8, Noise: 0.25, Scale: 30, AnisoY: 3},
		{Name: "W", Slope: 1.1, Noise: 0.08, Scale: 3},
		{Name: "QVAPOR", Slope: 3.0, Noise: 0.0005, Transform: TransformExp, ExpGain: 2.5, Scale: 20},
	}
}

// NYXSpecs returns the cosmology-like recipe: a log-normal baryon density
// with extreme dynamic range, a smoother temperature and a velocity field.
func NYXSpecs() []FieldSpec {
	return []FieldSpec{
		{Name: "baryon_density", Slope: 1.2, Noise: 0.05, Transform: TransformExp, ExpGain: 3, Scale: 1e8},
		{Name: "temperature", Slope: 1.6, Noise: 0.02, Transform: TransformExp, ExpGain: 1.2, Scale: 1e4},
		{Name: "velocity_x", Slope: 1.8, Noise: 0.01, Scale: 1e6},
	}
}

// MirandaSpecs returns the hydrodynamics-turbulence recipe: relatively
// smooth fields with mild noise, the regime where interpolation-based
// compressors shine.
func MirandaSpecs() []FieldSpec {
	return []FieldSpec{
		{Name: "density", Slope: 2.1, Noise: 0.003, Scale: 2, Offset: 1.5},
		{Name: "pressure", Slope: 2.3, Noise: 0.002, Scale: 5, Offset: 10, CoupleWith: "density", CoupleMix: 0.4},
		{Name: "velocityx", Slope: 1.9, Noise: 0.006, Scale: 1.2},
	}
}

// CESMSpecs returns the climate-like recipe used as the fourth dataset of
// Fig. 4: 2D-ish banded atmospheric fields.
func CESMSpecs() []FieldSpec {
	return []FieldSpec{
		{Name: "CLDHGH", Slope: 1.3, Noise: 0.04, AnisoY: 2.5, Transform: TransformSparse, SparseBias: -0.1, Scale: 0.9},
		{Name: "FLDS", Slope: 1.9, Noise: 0.008, AnisoY: 2, Scale: 80, Offset: 300},
		{Name: "TS", Slope: 2.1, Noise: 0.004, AnisoY: 1.5, Scale: 30, Offset: 285},
	}
}

// Options sizes a generated dataset.
type Options struct {
	NZ, NY, NX int
	Seed       int64
}

func (o Options) withDefaults(nz, ny, nx int) Options {
	if o.NZ == 0 {
		o.NZ = nz
	}
	if o.NY == 0 {
		o.NY = ny
	}
	if o.NX == 0 {
		o.NX = nx
	}
	return o
}

// Hurricane generates the 12-field hurricane-like dataset.
func Hurricane(o Options) *grid.Dataset {
	o = o.withDefaults(20, 96, 96)
	return Generate("hurricane", HurricaneSpecs(), o.NZ, o.NY, o.NX, o.Seed)
}

// NYX generates the cosmology-like dataset.
func NYX(o Options) *grid.Dataset {
	o = o.withDefaults(20, 96, 96)
	return Generate("nyx", NYXSpecs(), o.NZ, o.NY, o.NX, o.Seed)
}

// Miranda generates the turbulence-like dataset.
func Miranda(o Options) *grid.Dataset {
	o = o.withDefaults(20, 96, 96)
	return Generate("miranda", MirandaSpecs(), o.NZ, o.NY, o.NX, o.Seed)
}

// CESM generates the climate-like dataset.
func CESM(o Options) *grid.Dataset {
	o = o.withDefaults(20, 96, 96)
	return Generate("cesm", CESMSpecs(), o.NZ, o.NY, o.NX, o.Seed)
}

// All generates the four evaluation datasets of Fig. 4.
func All(o Options) []*grid.Dataset {
	return []*grid.Dataset{Hurricane(o), NYX(o), Miranda(o), CESM(o)}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
