package synthdata

import "github.com/crestlab/crest/internal/grid"

// temporal.go extends the generator to the shapes the streaming ingest
// path consumes: single-field 3D volumes (streamed slice by slice along
// z) and time-evolving 2D fields (streamed step by step), without
// building a whole multi-field Dataset.

// Volume synthesizes one field's nz×ny×nx volume deterministically from
// seed — the single-field face of Generate, for callers that stream a
// volume rather than slice a dataset up front.
func Volume(dataset string, spec FieldSpec, nz, ny, nx int, seed int64) *grid.Volume {
	return synthesize(dataset, spec, nz, ny, nx, seed, nil)
}

// Temporal synthesizes a time series of ny×nx buffers for one field:
// step 0 is the field itself, and each later step is an AR(1) evolution
// b_t = rho·b_{t−1} + (1−rho)·e_t with an independent innovation field
// e_t, mimicking the slow decorrelation of simulation output across
// checkpoints (rho outside (0,1) defaults to 0.85). Buffers carry their
// step index, so a stream encoded from the result round-trips the
// temporal ordering.
func Temporal(dataset string, spec FieldSpec, steps, ny, nx int, seed int64, rho float64) []*grid.Buffer {
	if steps <= 0 {
		return nil
	}
	if rho <= 0 || rho >= 1 {
		rho = 0.85
	}
	out := make([]*grid.Buffer, steps)
	prev := Volume(dataset, spec, 1, ny, nx, seed).Slice(0)
	for t := 0; t < steps; t++ {
		if t > 0 {
			innov := Volume(dataset, spec, 1, ny, nx, seed+int64(t)*7919).Slice(0)
			next := grid.NewBuffer(ny, nx)
			for i := range next.Data {
				next.Data[i] = rho*prev.Data[i] + (1-rho)*innov.Data[i]
			}
			prev = next
		}
		b := prev.Clone()
		b.Dataset, b.Field, b.Step = dataset, spec.Name, t
		out[t] = b
	}
	return out
}
