package stats

import (
	"math"
	"testing"
)

// FuzzQuantizeBin hardens the bin-index computation against the full
// float64 input space: the result must always be the saturated floor of
// x/eps — in particular, never the platform's undefined-conversion
// sentinel for quotients outside the int64 range — and must stay
// monotone in x for fixed positive eps.
func FuzzQuantizeBin(f *testing.F) {
	f.Add(2.7, 0.5)
	f.Add(-0.1, 0.5)
	f.Add(1e30, 1e-30)   // positive overflow
	f.Add(-1e30, 1e-30)  // negative overflow
	f.Add(math.NaN(), 0.5)
	f.Add(1.0, math.SmallestNonzeroFloat64) // tiny eps
	f.Add(math.MaxFloat64, 1e-9)
	f.Add(0.0, 0.0)
	f.Fuzz(func(t *testing.T, x, eps float64) {
		got := QuantizeBin(x, eps)
		q := math.Floor(x / eps)
		switch {
		case math.IsNaN(q):
			if got != 0 {
				t.Fatalf("QuantizeBin(%g, %g) = %d for NaN quotient, want 0", x, eps, got)
			}
		case q >= math.MaxInt64:
			if got != math.MaxInt64 {
				t.Fatalf("QuantizeBin(%g, %g) = %d, want saturated MaxInt64", x, eps, got)
			}
		case q <= math.MinInt64:
			if got != math.MinInt64 {
				t.Fatalf("QuantizeBin(%g, %g) = %d, want saturated MinInt64", x, eps, got)
			}
		default:
			if got != int64(q) {
				t.Fatalf("QuantizeBin(%g, %g) = %d, want %d", x, eps, got, int64(q))
			}
		}
		// Monotonicity in x for positive finite eps and finite x: a larger
		// value can never land in a smaller bin.
		if eps > 0 && !math.IsInf(eps, 0) && !math.IsNaN(x) && !math.IsInf(x, 0) {
			bigger := math.Nextafter(x, math.Inf(1))
			if !math.IsInf(bigger, 0) {
				if gb := QuantizeBin(bigger, eps); gb < got {
					t.Fatalf("monotonicity broken: bin(%g)=%d > bin(%g)=%d for eps=%g",
						x, got, bigger, gb, eps)
				}
			}
		}
	})
}
