package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if m := Mean(xs); m != 2.5 {
		t.Errorf("Mean = %g", m)
	}
	if v := Variance(xs); !almost(v, 1.25, 1e-12) {
		t.Errorf("Variance = %g", v)
	}
	if v := SampleVariance(xs); !almost(v, 5.0/3, 1e-12) {
		t.Errorf("SampleVariance = %g", v)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || SampleVariance([]float64{1}) != 0 {
		t.Error("empty/degenerate cases nonzero")
	}
}

func TestMeanStdMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
	}
	m1, s1 := MeanStd(xs)
	if !almost(m1, Mean(xs), 1e-9) || !almost(s1, StdDev(xs), 1e-9) {
		t.Errorf("MeanStd (%g,%g) vs two-pass (%g,%g)", m1, s1, Mean(xs), StdDev(xs))
	}
}

func TestPearsonProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = 2*x[i] + 0.1*rng.NormFloat64()
	}
	if r := Pearson(x, x); !almost(r, 1, 1e-12) {
		t.Errorf("ρ(x,x) = %g", r)
	}
	if r := Pearson(x, y); r < 0.95 {
		t.Errorf("strong linear relation ρ = %g", r)
	}
	// Symmetry and sign flip.
	if Pearson(x, y) != Pearson(y, x) {
		t.Error("Pearson not symmetric")
	}
	neg := make([]float64, len(y))
	for i := range y {
		neg[i] = -y[i]
	}
	if r := Pearson(x, neg); !almost(r, -Pearson(x, y), 1e-12) {
		t.Errorf("sign flip ρ = %g", r)
	}
	// Scale invariance.
	scaled := make([]float64, len(y))
	for i := range y {
		scaled[i] = 100*y[i] + 5
	}
	if !almost(Pearson(x, scaled), Pearson(x, y), 1e-9) {
		t.Error("Pearson not affine invariant")
	}
	// Degenerate cases.
	if Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Error("constant vector correlation != 0")
	}
	if Pearson(x, y[:50]) != 0 {
		t.Error("length mismatch != 0")
	}
}

func TestEuclideanDist(t *testing.T) {
	if d := EuclideanDist([]float64{0, 3}, []float64{4, 0}); !almost(d, 5, 1e-12) {
		t.Errorf("dist = %g", d)
	}
	if d := EuclideanDist(nil, nil); d != 0 {
		t.Errorf("empty dist = %g", d)
	}
}

func TestQuantize(t *testing.T) {
	if q := Quantize(2.7, 0.5); !almost(q, 2.5, 1e-12) {
		t.Errorf("Quantize(2.7, .5) = %g", q)
	}
	if q := Quantize(-2.7, 0.5); !almost(q, -3.0, 1e-12) {
		t.Errorf("Quantize(-2.7, .5) = %g (floor semantics)", q)
	}
	if q := Quantize(1.23, 0); q != 1.23 {
		t.Error("eps=0 should pass through")
	}
	if b := QuantizeBin(-0.1, 0.5); b != -1 {
		t.Errorf("QuantizeBin(-0.1, .5) = %d", b)
	}
}

// TestQuantizeBinSaturation: out-of-int64-range quotients must clamp to
// the range boundaries instead of hitting Go's undefined float→int
// conversion (which collapses both overflow directions onto MinInt64 on
// amd64), and NaN quotients must land in bin 0.
func TestQuantizeBinSaturation(t *testing.T) {
	cases := []struct {
		name   string
		x, eps float64
		want   int64
	}{
		{"tiny eps positive", 1e30, 1e-30, math.MaxInt64},
		{"tiny eps negative", -1e30, 1e-30, math.MinInt64},
		{"pos inf quotient", math.Inf(1), 0.5, math.MaxInt64},
		{"neg inf quotient", math.Inf(-1), 0.5, math.MinInt64},
		{"nan value", math.NaN(), 0.5, 0},
		{"zero eps", 1.0, 0, math.MaxInt64},
		{"just below 2^63", (1 << 63) - 1024, 1, (1 << 63) - 1024},
		{"exactly 2^63", 1 << 63, 1, math.MaxInt64},
		{"exactly -2^63", -(1 << 63), 1, math.MinInt64},
		{"ordinary", 2.7, 0.5, 5},
	}
	for _, c := range cases {
		if got := QuantizeBin(c.x, c.eps); got != c.want {
			t.Errorf("%s: QuantizeBin(%g, %g) = %d, want %d",
				c.name, c.x, c.eps, got, c.want)
		}
	}
	// Opposite-sign overflows must not alias into the same bin — the bug
	// the saturation fixes.
	if QuantizeBin(1e300, 1e-300) == QuantizeBin(-1e300, 1e-300) {
		t.Error("positive and negative overflow collapsed into one bin")
	}
}

func TestEntropyBasics(t *testing.T) {
	if h := Entropy(map[int64]int{1: 5}); h != 0 {
		t.Errorf("single symbol entropy = %g", h)
	}
	if h := Entropy(map[int64]int{1: 10, 2: 10}); !almost(h, 1, 1e-12) {
		t.Errorf("uniform-2 entropy = %g", h)
	}
	if h := Entropy(map[int64]int{}); h != 0 {
		t.Errorf("empty entropy = %g", h)
	}
}

// TestEntropyBounds: 0 ≤ H ≤ log2(#symbols), maximized by uniform.
func TestEntropyBounds(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%16) + 2
		counts := make(map[int64]int, n)
		for i := 0; i < n; i++ {
			counts[int64(i)] = rng.Intn(100) + 1
		}
		h := Entropy(counts)
		return h >= 0 && h <= math.Log2(float64(n))+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuantizedEntropy(t *testing.T) {
	// Two well-separated values -> exactly 1 bit.
	xs := []float64{0, 0, 10, 10}
	if h := QuantizedEntropy(xs, 1); !almost(h, 1, 1e-12) {
		t.Errorf("H = %g", h)
	}
	// Coarser quantization cannot increase entropy.
	rng := rand.New(rand.NewSource(3))
	data := make([]float64, 2000)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	fine := QuantizedEntropy(data, 1e-4)
	coarse := QuantizedEntropy(data, 1e-1)
	if coarse > fine {
		t.Errorf("coarse H %g > fine H %g", coarse, fine)
	}
	if h := QuantizedEntropy(data, 0); h != 0 {
		t.Error("eps=0 entropy nonzero")
	}
}

func TestHistogramEntropy(t *testing.T) {
	if h := HistogramEntropy([]float64{5, 5, 5}, 16); h != 0 {
		t.Errorf("constant histogram entropy = %g", h)
	}
	// Uniform over [0,1) with many samples ≈ log2(bins).
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	if h := HistogramEntropy(xs, 16); !almost(h, 4, 0.05) {
		t.Errorf("uniform 16-bin entropy = %g, want ≈4", h)
	}
}

func TestDifferentialEntropyGaussian(t *testing.T) {
	// Differential entropy of N(0,σ) is 0.5·log2(2πeσ²).
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 200000)
	sigma := 2.0
	for i := range xs {
		xs[i] = rng.NormFloat64() * sigma
	}
	want := 0.5 * math.Log2(2*math.Pi*math.E*sigma*sigma)
	got := DifferentialEntropy(xs, 256)
	if !almost(got, want, 0.1) {
		t.Errorf("differential entropy = %g, want ≈%g", got, want)
	}
	if !math.IsInf(DifferentialEntropy([]float64{1, 1}, 8), -1) {
		t.Error("point mass differential entropy not -Inf")
	}
}

func TestQuantileAgainstSorted(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %g", q)
	}
	if q := Quantile(xs, 1); q != 9 {
		t.Errorf("q1 = %g", q)
	}
	if q := Quantile(xs, 0.5); !almost(q, 3.5, 1e-12) {
		t.Errorf("median = %g", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile not NaN")
	}
	// Quantiles (multi) matches Quantile.
	multi := Quantiles(xs, 0.1, 0.5, 0.9)
	for i, q := range []float64{0.1, 0.5, 0.9} {
		if !almost(multi[i], Quantile(xs, q), 1e-12) {
			t.Errorf("Quantiles[%d] = %g vs %g", i, multi[i], Quantile(xs, q))
		}
	}
}

// TestQuantileMonotone: quantiles are nondecreasing in q and bounded by
// the data range.
func TestQuantileMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, rng.Intn(50)+1)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-12 || v < sorted[0]-1e-12 || v > sorted[len(sorted)-1]+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAbsPercentageError(t *testing.T) {
	if e := AbsPercentageError(10, 9); !almost(e, 10, 1e-12) {
		t.Errorf("APE = %g", e)
	}
	if e := AbsPercentageError(0, 0); e != 0 {
		t.Errorf("APE(0,0) = %g", e)
	}
	if e := AbsPercentageError(0, 1); !math.IsInf(e, 1) {
		t.Errorf("APE(0,1) = %g", e)
	}
	if e := AbsPercentageError(-10, -9); !almost(e, 10, 1e-12) {
		t.Errorf("negative-truth APE = %g", e)
	}
}

func TestMedAPE(t *testing.T) {
	truth := []float64{10, 10, 10}
	pred := []float64{9, 10, 20}
	if m := MedAPE(truth, pred); !almost(m, 10, 1e-12) {
		t.Errorf("MedAPE = %g", m)
	}
	if !math.IsNaN(MedAPE(truth, pred[:2])) {
		t.Error("length mismatch not NaN")
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999} {
		x := NormalQuantile(p)
		if back := NormalCDF(x); !almost(back, p, 1e-8) {
			t.Errorf("Φ(Φ⁻¹(%g)) = %g", p, back)
		}
	}
	if x := NormalQuantile(0.5); !almost(x, 0, 1e-9) {
		t.Errorf("Φ⁻¹(0.5) = %g", x)
	}
	// Known value: Φ⁻¹(0.975) ≈ 1.959964.
	if x := NormalQuantile(0.975); !almost(x, 1.959964, 1e-5) {
		t.Errorf("Φ⁻¹(0.975) = %g", x)
	}
}

func TestNormalQuantilePanicsOutOfRange(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%g) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestNormalCDFSymmetry(t *testing.T) {
	for _, x := range []float64{0.3, 1.1, 2.7} {
		if s := NormalCDF(x) + NormalCDF(-x); !almost(s, 1, 1e-12) {
			t.Errorf("Φ(%g)+Φ(−%g) = %g", x, x, s)
		}
	}
}
