// Package stats implements the scalar statistics shared by the
// compressibility predictors and the evaluation harness: moments, Shannon
// and quantized entropy, the paper's linear quantizer, Pearson correlation,
// quantiles and the median absolute percentage error.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (denominator n), or 0 for
// an empty slice.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(n)
}

// SampleVariance returns the unbiased sample variance (denominator n-1), or
// 0 for fewer than two elements.
func SampleVariance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the population standard deviation sd(x), the paper's
// intra-block weight w^intra.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanStd returns mean and population standard deviation in one pass.
func MeanStd(xs []float64) (mean, std float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	var s, s2 float64
	for _, v := range xs {
		s += v
		s2 += v * v
	}
	mean = s / float64(n)
	v := s2/float64(n) - mean*mean
	if v < 0 {
		v = 0 // numerical guard
	}
	return mean, math.Sqrt(v)
}

// Pearson returns the Pearson correlation coefficient ρ(x, y). It returns 0
// when either vector is constant or lengths differ.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// EuclideanDist returns the Euclidean distance between equal-length vectors,
// the D^e_{b,b'} term of the spatial-diversity weights.
func EuclideanDist(x, y []float64) float64 {
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Quantize applies the paper's linear quantization scheme
// α(x, ε) = ⌊x/ε⌋·ε used by the generic distortion metric (§IV-A).
func Quantize(x, eps float64) float64 {
	if eps <= 0 {
		return x
	}
	return math.Floor(x/eps) * eps
}

// QuantizeBin returns the integer bin index ⌊x/ε⌋, saturated to the int64
// range. For tiny ε (or huge x) the quotient overflows int64, and the bare
// conversion int64(float64) is undefined for out-of-range values — on
// amd64 it yields the sentinel 0x8000000000000000 for *both* directions,
// silently aliasing +∞-side and −∞-side bins into one histogram bucket.
// NaN quotients (x = ±Inf·0 interactions upstream) map to bin 0 rather
// than poisoning the histogram with the platform sentinel.
func QuantizeBin(x, eps float64) int64 {
	q := math.Floor(x / eps)
	switch {
	case math.IsNaN(q):
		return 0
	case q >= math.MaxInt64: // 2⁶³ is exact in float64; q ≥ 2⁶³ overflows
		return math.MaxInt64
	case q <= math.MinInt64:
		return math.MinInt64
	}
	return int64(q)
}

// Entropy returns the Shannon entropy in bits of a discrete distribution
// given by counts. Zero counts contribute nothing. Summation runs in
// sorted count order so the result is independent of map iteration order
// (bit-for-bit reproducibility matters to the deterministic evaluation
// protocol).
func Entropy(counts map[int64]int) float64 {
	var n int
	cs := make([]int, 0, len(counts))
	for _, c := range counts {
		n += c
		if c > 0 {
			cs = append(cs, c)
		}
	}
	if n == 0 {
		return 0
	}
	sort.Ints(cs)
	var h float64
	fn := float64(n)
	for _, c := range cs {
		p := float64(c) / fn
		h -= p * math.Log2(p)
	}
	return h
}

// QuantizedEntropy returns the Shannon entropy in bits of ⌊x/ε⌋ over xs,
// the quantized entropy H(α(X)) of the generic distortion metric.
func QuantizedEntropy(xs []float64, eps float64) float64 {
	if eps <= 0 || len(xs) == 0 {
		return 0
	}
	counts := make(map[int64]int, 64)
	for _, v := range xs {
		counts[QuantizeBin(v, eps)]++
	}
	return Entropy(counts)
}

// HistogramEntropy estimates the entropy in bits of xs using an
// equal-width histogram with bins cells spanning [min,max]. It is the
// nonparametric empirical-distribution estimator used for H_b in the
// generic distortion (§IV-A). Constant data has zero entropy.
func HistogramEntropy(xs []float64, bins int) float64 {
	if len(xs) == 0 || bins <= 0 {
		return 0
	}
	lo, hi := xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		return 0
	}
	counts := make([]int, bins)
	w := float64(bins) / (hi - lo)
	for _, v := range xs {
		b := int((v - lo) * w)
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	var h float64
	n := float64(len(xs))
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// DifferentialEntropy estimates the differential entropy h(x) in bits by
// the histogram method: h ≈ H_discrete + log2(binwidth). Used to estimate
// the rate-distortion distortion constant (§IV-A).
func DifferentialEntropy(xs []float64, bins int) float64 {
	if len(xs) == 0 || bins <= 0 {
		return 0
	}
	lo, hi := xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		return math.Inf(-1) // point mass: differential entropy -> -inf
	}
	bw := (hi - lo) / float64(bins)
	return HistogramEntropy(xs, bins) + math.Log2(bw)
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (R type-7). xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return sortedQuantile(s, q)
}

// Quantiles returns multiple quantiles with a single sort.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	for i, q := range qs {
		out[i] = sortedQuantile(s, q)
	}
	return out
}

func sortedQuantile(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median returns the 50% quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// AbsPercentageError returns 100·|true−pred|/|true|, the APE of Algorithm 2
// line 14. It returns +Inf when the true value is zero and pred differs.
func AbsPercentageError(truth, pred float64) float64 {
	if truth == 0 {
		if pred == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return 100 * math.Abs(truth-pred) / math.Abs(truth)
}

// MedAPE returns the median absolute percentage error between parallel
// slices of true and predicted values.
func MedAPE(truth, pred []float64) float64 {
	if len(truth) != len(pred) || len(truth) == 0 {
		return math.NaN()
	}
	apes := make([]float64, len(truth))
	for i := range truth {
		apes[i] = AbsPercentageError(truth[i], pred[i])
	}
	return Median(apes)
}

// NormalQuantile returns Φ⁻¹(p), the quantile function of the standard
// normal distribution, via the Acklam rational approximation (relative
// error < 1.15e-9). It panics for p outside (0,1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: NormalQuantile requires 0 < p < 1")
	}
	// Coefficients of the Acklam approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// NormalCDF returns Φ(x), the standard normal cumulative distribution.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
