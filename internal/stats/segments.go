package stats

import "math"

// segments.go holds the segment-fed twins of the entropy estimators: the
// same statistics computed over a virtual concatenation of slices, so the
// streaming predictor pipeline — whose retained values live scattered
// across vectorized blocks plus a crop remainder rather than in one
// row-major buffer — can evaluate the error-bound-specific distortion
// without reassembling the buffer.
//
// Bit-identity contract: both estimators are functions of the value
// *multiset* only. Min/max are order-independent; bin counts are integer
// tallies; and the final entropy sums run in a canonical order (bin index
// for the histogram, sorted counts for the quantized form — see Entropy).
// HistogramEntropySeg and QuantizedEntropySeg therefore return results
// bit-identical to HistogramEntropy/QuantizedEntropy over any
// concatenation order of the same values, which the streaming
// differential suite pins against the in-memory path.
//
// Both estimators are generic over the stored element type: float32
// segments are widened per element (exactly) and every accumulation,
// bin-edge computation, and entropy sum runs in float64, so feeding
// float32 segments is bit-identical to widening them first and calling
// the float64 form.

// Real is the element-type constraint of the segment estimators.
type Real interface{ ~float32 | ~float64 }

// HistogramEntropySeg is HistogramEntropy over the concatenation of segs.
func HistogramEntropySeg[F Real](segs [][]F, bins int) float64 {
	n := 0
	for _, s := range segs {
		n += len(s)
	}
	if n == 0 || bins <= 0 {
		return 0
	}
	first := true
	var lo, hi float64
	for _, s := range segs {
		for _, raw := range s {
			v := float64(raw)
			if first {
				lo, hi = v, v
				first = false
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi == lo {
		return 0
	}
	counts := make([]int, bins)
	w := float64(bins) / (hi - lo)
	for _, s := range segs {
		for _, raw := range s {
			b := int((float64(raw) - lo) * w)
			if b >= bins {
				b = bins - 1
			}
			counts[b]++
		}
	}
	var h float64
	fn := float64(n)
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / fn
		h -= p * math.Log2(p)
	}
	return h
}

// QuantizedEntropySeg is QuantizedEntropy over the concatenation of segs.
func QuantizedEntropySeg[F Real](segs [][]F, eps float64) float64 {
	n := 0
	for _, s := range segs {
		n += len(s)
	}
	if eps <= 0 || n == 0 {
		return 0
	}
	counts := make(map[int64]int, 64)
	for _, s := range segs {
		for _, v := range s {
			counts[QuantizeBin(float64(v), eps)]++
		}
	}
	return Entropy(counts)
}
