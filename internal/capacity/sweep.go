package capacity

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// SweepConfig drives a concurrency sweep: for each level N in Levels,
// N worker goroutines issue requests through Do until PerLevel requests
// have been started (or LevelTimeout expires), and the level's spans
// are aggregated into a LevelStats.
type SweepConfig struct {
	// Levels are the offered concurrency steps, each ≥ 1.
	Levels []int
	// PerLevel is how many requests each level offers (default 100).
	PerLevel int
	// LevelTimeout bounds one level's wall time; when it expires the
	// level's context is canceled and in-flight requests are recorded as
	// Canceled, not errors (0: no bound).
	LevelTimeout time.Duration
	// Do issues one request under ctx. Its error is classified with
	// Classify; implementations that retry internally must return the
	// retry loop's error unwrapped enough for errors.Is to see
	// crerr.ErrCanceled / crerr.ErrOverloaded sentinels.
	Do func(ctx context.Context) error
	// Recorder, when set, additionally receives every span (tagged with
	// the level) — the hook fleet sweeps use to collect per-peer spans
	// alongside the per-level aggregates.
	Recorder *Recorder
}

// Sweep runs the configured load sweep and returns one LevelStats per
// level, in order. It stops early (returning what it measured plus the
// context error) only when the *sweep* context is canceled; a level
// timeout merely advances to the next level.
func Sweep(ctx context.Context, cfg SweepConfig) ([]LevelStats, error) {
	if cfg.Do == nil {
		return nil, errors.New("capacity: sweep needs a Do function")
	}
	if len(cfg.Levels) == 0 {
		return nil, errors.New("capacity: sweep needs at least one level")
	}
	perLevel := cfg.PerLevel
	if perLevel <= 0 {
		perLevel = 100
	}
	var out []LevelStats
	for _, n := range cfg.Levels {
		if n < 1 {
			return out, fmt.Errorf("capacity: concurrency level %d < 1", n)
		}
		if err := ctx.Err(); err != nil {
			return out, err
		}
		if cfg.Recorder != nil {
			cfg.Recorder.SetLevel(n)
		}
		st := runLevel(ctx, n, perLevel, cfg)
		out = append(out, st)
	}
	return out, nil
}

// runLevel executes one concurrency level.
func runLevel(ctx context.Context, n, perLevel int, cfg SweepConfig) LevelStats {
	lctx := ctx
	cancel := context.CancelFunc(func() {})
	if cfg.LevelTimeout > 0 {
		lctx, cancel = context.WithTimeout(ctx, cfg.LevelTimeout)
	}
	defer cancel()

	var (
		mu    sync.Mutex
		spans []Span
		next  int
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= perLevel {
					mu.Unlock()
					return
				}
				next++
				mu.Unlock()
				if lctx.Err() != nil {
					return
				}
				t0 := time.Now()
				err := cfg.Do(lctx)
				s := Span{
					Start:    t0,
					Duration: time.Since(t0),
					Outcome:  Classify(err),
					Level:    n,
				}
				mu.Lock()
				spans = append(spans, s)
				mu.Unlock()
				if cfg.Recorder != nil {
					cfg.Recorder.Record(s)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	mu.Lock()
	defer mu.Unlock()
	return Aggregate(spans, n, wall)
}

// CurveFromLevels projects sweep aggregates onto USL fit points,
// skipping levels that served nothing (a level that was entirely shed
// or canceled carries no throughput signal).
func CurveFromLevels(levels []LevelStats) []Point {
	var pts []Point
	for _, l := range levels {
		if l.OK > 0 && l.Throughput > 0 {
			pts = append(pts, Point{N: float64(l.N), X: l.Throughput})
		}
	}
	return pts
}

// PeerCurves groups recorded spans by peer tag into per-level
// throughput points, using each level's wall-clock window from the
// aggregates. Spans without a peer tag are skipped. The result feeds
// FitUSL per replica.
func PeerCurves(spans []Span, levels []LevelStats) map[string][]Point {
	walls := make(map[int]time.Duration, len(levels))
	for _, l := range levels {
		walls[l.N] = l.Wall
	}
	type key struct {
		peer  string
		level int
	}
	okCount := make(map[key]int)
	for _, s := range spans {
		if s.Peer == "" || s.Outcome != OK {
			continue
		}
		okCount[key{s.Peer, s.Level}]++
	}
	out := make(map[string][]Point)
	for k, c := range okCount {
		wall, okWall := walls[k.level]
		if !okWall || wall <= 0 {
			continue
		}
		out[k.peer] = append(out[k.peer], Point{N: float64(k.level), X: float64(c) / wall.Seconds()})
	}
	for _, pts := range out {
		sortPoints(pts)
	}
	return out
}

func sortPoints(pts []Point) {
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && pts[j].N < pts[j-1].N; j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
}
