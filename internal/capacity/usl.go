package capacity

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Point is one measured (concurrency, throughput) sample of a load
// sweep: X requests per second observed at offered concurrency N.
type Point struct {
	N float64 `json:"n"`
	X float64 `json:"x"`
}

// Fit is a fitted Universal Scalability Law model
//
//	X(N) = λN / (1 + σ(N−1) + κN(N−1))
//
// λ (Lambda) is the single-stream throughput X(1), σ (Sigma) the
// contention fraction — the Amdahl serial part, bounding X at λ/σ — and
// κ (Kappa) the coherence penalty, whose N² crosstalk term makes
// throughput *retrograde* past N* = √((1−σ)/κ).
type Fit struct {
	Lambda float64 `json:"lambda"`
	Sigma  float64 `json:"sigma"`
	Kappa  float64 `json:"kappa"`
	// R2 is the coefficient of determination of the fit against the
	// measured throughputs (1 = perfect).
	R2 float64 `json:"r2"`
	// Points is how many (N, X) samples the fit consumed.
	Points int `json:"points"`
}

// Throughput evaluates the fitted model at concurrency n.
func (f Fit) Throughput(n float64) float64 {
	den := 1 + f.Sigma*(n-1) + f.Kappa*n*(n-1)
	if den <= 0 {
		return 0
	}
	return f.Lambda * n / den
}

// Peak returns the concurrency N* and throughput X(N*) at the model's
// interior maximum. ok is false when κ = 0: the curve is monotone
// (Amdahl or linear) and has no saturation peak — throughput approaches
// λ/σ asymptotically (or grows without bound when σ = 0 too).
func (f Fit) Peak() (nstar, xpeak float64, ok bool) {
	if f.Kappa <= 0 {
		return 0, 0, false
	}
	nstar = math.Sqrt((1 - f.Sigma) / f.Kappa)
	if nstar < 1 {
		nstar = 1
	}
	return nstar, f.Throughput(nstar), true
}

// ErrFitUnderdetermined reports too few distinct concurrency levels to
// fit the model.
var ErrFitUnderdetermined = errors.New("capacity: need at least 3 distinct concurrency levels to fit USL")

// ErrFitDegenerate reports measurements no physical USL curve explains
// (non-positive throughputs, or a fit with λ ≤ 0).
var ErrFitDegenerate = errors.New("capacity: degenerate USL fit")

// FitUSL estimates (λ, σ, κ) from measured (N, X) samples by least
// squares on the linearized form: with y = N/X,
//
//	y = a + b(N−1) + cN(N−1),  λ = 1/a, σ = b/a, κ = c/a.
//
// The physical constraints σ ≥ 0, κ ≥ 0 are enforced by backing off to
// the reduced model when an unconstrained coefficient comes out
// negative: κ < 0 refits the Amdahl form (κ = 0), and σ < 0 then refits
// the linear form (σ = 0) — so the degenerate cases are recovered
// exactly instead of with small negative noise. The fit is scale
// invariant in λ: scaling every X by s scales λ by s and leaves σ and κ
// unchanged (the normal equations are linear in y = N/X).
func FitUSL(points []Point) (Fit, error) {
	// Deduplicate by N (average X of repeated levels) and validate.
	byN := make(map[float64][]float64)
	for _, p := range points {
		if !(p.N >= 1) || math.IsInf(p.N, 0) {
			return Fit{}, fmt.Errorf("%w: concurrency %g < 1", ErrFitDegenerate, p.N)
		}
		if !(p.X > 0) || math.IsInf(p.X, 0) {
			return Fit{}, fmt.Errorf("%w: non-positive throughput %g at N=%g", ErrFitDegenerate, p.X, p.N)
		}
		byN[p.N] = append(byN[p.N], p.X)
	}
	if len(byN) < 3 {
		return Fit{}, fmt.Errorf("%w (got %d)", ErrFitUnderdetermined, len(byN))
	}
	ns := make([]float64, 0, len(byN))
	for n := range byN {
		ns = append(ns, n)
	}
	sort.Float64s(ns)
	xs := make([]float64, len(ns))
	for i, n := range ns {
		sum := 0.0
		for _, x := range byN[n] {
			sum += x
		}
		xs[i] = sum / float64(len(byN[n]))
	}

	// Basis columns for y = N/X: [1, N−1, N(N−1)]. cols selects the
	// active subset; dropped coefficients are pinned at 0.
	basis := func(n float64) [3]float64 { return [3]float64{1, n - 1, n * (n - 1)} }
	solve := func(cols []int) ([3]float64, bool) {
		var ata [3][3]float64
		var aty [3]float64
		for i, n := range ns {
			b := basis(n)
			y := n / xs[i]
			for r, br := range cols {
				aty[r] += b[br] * y
				for c, bc := range cols {
					ata[r][c] += b[br] * b[bc]
				}
			}
		}
		sol, ok := gauss3(ata, aty, len(cols))
		var coef [3]float64
		for i, bc := range cols {
			coef[bc] = sol[i]
		}
		return coef, ok
	}

	// The physical constraints σ ≥ 0, κ ≥ 0 bind by dropping the
	// offending basis column and refitting, so the degenerate Amdahl
	// (κ = 0) and linear (σ = κ = 0) cases come out exact.
	coef, ok := solve([]int{0, 1, 2})
	if ok {
		switch {
		case coef[2] < 0 && coef[1] >= 0:
			coef, ok = solve([]int{0, 1}) // κ = 0: Amdahl
		case coef[1] < 0 && coef[2] >= 0:
			coef, ok = solve([]int{0, 2}) // σ = 0, coherence only
		case coef[1] < 0 && coef[2] < 0:
			coef, ok = solve([]int{0}) // σ = κ = 0: linear
		}
	}
	if ok && (coef[1] < 0 || coef[2] < 0) {
		// A reduced refit crossed the other constraint: linear model.
		coef, ok = solve([]int{0})
	}
	if !ok || coef[0] <= 0 {
		return Fit{}, fmt.Errorf("%w: singular or non-positive λ", ErrFitDegenerate)
	}
	f := Fit{
		Lambda: 1 / coef[0],
		Sigma:  coef[1] / coef[0],
		Kappa:  coef[2] / coef[0],
		Points: len(points),
	}

	// R² against the measured throughputs (not the transformed y), so
	// the headline number describes the curve the operator sees.
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ssRes, ssTot float64
	for i, n := range ns {
		d := xs[i] - f.Throughput(n)
		ssRes += d * d
		t := xs[i] - mean
		ssTot += t * t
	}
	if ssTot > 0 {
		f.R2 = 1 - ssRes/ssTot
	} else if ssRes == 0 {
		f.R2 = 1
	}
	return f, nil
}

// gauss3 solves the leading k×k block of a 3×3 system by Gaussian
// elimination with partial pivoting.
func gauss3(a [3][3]float64, b [3]float64, k int) ([3]float64, bool) {
	var x [3]float64
	for col := 0; col < k; col++ {
		piv := col
		for r := col + 1; r < k; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-300 {
			return x, false
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		for r := col + 1; r < k; r++ {
			m := a[r][col] / a[col][col]
			for c := col; c < k; c++ {
				a[r][c] -= m * a[col][c]
			}
			b[r] -= m * b[col]
		}
	}
	for r := k - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < k; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, true
}
