package capacity

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/retry"
)

func TestSweepLevels(t *testing.T) {
	var calls atomic.Int64
	levels, err := Sweep(context.Background(), SweepConfig{
		Levels:   []int{1, 2, 4},
		PerLevel: 20,
		Do: func(ctx context.Context) error {
			calls.Add(1)
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(levels) != 3 {
		t.Fatalf("got %d levels, want 3", len(levels))
	}
	for i, n := range []int{1, 2, 4} {
		l := levels[i]
		if l.N != n || l.OK != 20 || l.Errors != 0 || l.Canceled != 0 {
			t.Fatalf("level %d = %+v, want N=%d OK=20", i, l, n)
		}
		if l.Throughput <= 0 {
			t.Fatalf("level %d throughput %g, want > 0", i, l.Throughput)
		}
	}
	if calls.Load() != 60 {
		t.Fatalf("Do called %d times, want 60", calls.Load())
	}
}

// TestSweepCancellationAtLevelBoundary is the regression test for the
// level-boundary contract: requests still in flight when a level's
// window closes are canceled by the driver and must be recorded as
// Canceled — not as errors — and must not deflate X(N) accounting for
// requests that did complete.
func TestSweepCancellationAtLevelBoundary(t *testing.T) {
	var served atomic.Int64
	levels, err := Sweep(context.Background(), SweepConfig{
		Levels:       []int{4},
		PerLevel:     100,
		LevelTimeout: 120 * time.Millisecond,
		Do: func(ctx context.Context) error {
			// First 8 requests are instant; the rest block until the
			// level boundary cancels them.
			if served.Add(1) <= 8 {
				return nil
			}
			<-ctx.Done()
			return crerr.Canceled(ctx.Err())
		},
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	l := levels[0]
	if l.Errors != 0 {
		t.Fatalf("level boundary cancellation counted as %d error(s): %+v", l.Errors, l)
	}
	if l.Canceled != 4 {
		t.Fatalf("canceled = %d, want 4 (one per worker in flight at the boundary)", l.Canceled)
	}
	if l.OK != 8 {
		t.Fatalf("ok = %d, want 8", l.OK)
	}
	if l.Throughput <= 0 {
		t.Fatalf("throughput = %g, want > 0 from the 8 served requests", l.Throughput)
	}
}

// TestSweepRetryCancellationAtLevelBoundary audits the retry loop's
// interaction with the sweep driver: a Do that retries overload with
// Retry-After hints, interrupted mid-backoff by the level boundary,
// must surface as Canceled (crerr.ErrCanceled), never as an exhausted-
// attempts error that would land in the error column.
func TestSweepRetryCancellationAtLevelBoundary(t *testing.T) {
	pol := retry.Policy{MaxAttempts: 50, BaseDelay: 5 * time.Millisecond, Seed: 1}
	levels, err := Sweep(context.Background(), SweepConfig{
		Levels:       []int{2},
		PerLevel:     2,
		LevelTimeout: 60 * time.Millisecond,
		Do: func(ctx context.Context) error {
			return pol.Do(ctx, func(context.Context) error {
				// Permanently overloaded: the retry loop backs off until
				// the level context dies.
				return retry.WithRetryAfter(
					fmt.Errorf("%w: bench server full", crerr.ErrOverloaded),
					10*time.Millisecond)
			})
		},
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	l := levels[0]
	if l.Errors != 0 {
		t.Fatalf("retry interrupted at level boundary counted as %d error(s): %+v", l.Errors, l)
	}
	if l.Canceled != 2 {
		t.Fatalf("canceled = %d, want 2", l.Canceled)
	}
}

// TestSweepShedNotErrors: overload rejections are their own column.
func TestSweepShedNotErrors(t *testing.T) {
	var n atomic.Int64
	levels, err := Sweep(context.Background(), SweepConfig{
		Levels:   []int{2},
		PerLevel: 10,
		Do: func(ctx context.Context) error {
			if n.Add(1)%2 == 0 {
				return crerr.ErrOverloaded
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	l := levels[0]
	if l.OK != 5 || l.Shed != 5 || l.Errors != 0 {
		t.Fatalf("got ok %d shed %d err %d, want 5/5/0", l.OK, l.Shed, l.Errors)
	}
}

func TestSweepRecorderAndPeerCurves(t *testing.T) {
	var rec Recorder
	var n atomic.Int64
	// Simulate a 2-peer fleet: alternate spans tagged per peer through
	// the recorder hook the cluster layer uses.
	levels, err := Sweep(context.Background(), SweepConfig{
		Levels:   []int{1, 2, 4},
		PerLevel: 40,
		Recorder: &rec,
		Do: func(ctx context.Context) error {
			peer := "http://a"
			if n.Add(1)%2 == 0 {
				peer = "http://b"
			}
			rec.Record(Span{Outcome: OK, Peer: peer, Duration: time.Millisecond})
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	curves := PeerCurves(rec.Spans(), levels)
	if len(curves) != 2 {
		t.Fatalf("got %d peer curves, want 2: %v", len(curves), curves)
	}
	for peer, pts := range curves {
		if len(pts) != 3 {
			t.Fatalf("peer %s has %d levels, want 3", peer, len(pts))
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].N <= pts[i-1].N {
				t.Fatalf("peer %s curve not sorted by N: %v", peer, pts)
			}
		}
	}
}
