package capacity

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// uslPoints generates exact model samples at the given levels.
func uslPoints(lambda, sigma, kappa float64, levels []float64) []Point {
	f := Fit{Lambda: lambda, Sigma: sigma, Kappa: kappa}
	pts := make([]Point, len(levels))
	for i, n := range levels {
		pts[i] = Point{N: n, X: f.Throughput(n)}
	}
	return pts
}

var sweepLevels = []float64{1, 2, 4, 8, 16, 32, 64}

// TestFitUSLGolden pins exact recovery of known (λ, σ, κ) from
// noise-free curves, including the degenerate Amdahl (κ=0) and linear
// (σ=κ=0) forms the constraint back-off must land on exactly.
func TestFitUSLGolden(t *testing.T) {
	cases := []struct {
		name                 string
		lambda, sigma, kappa float64
	}{
		{"full", 1000, 0.05, 0.001},
		{"high-contention", 500, 0.3, 0.0004},
		{"amdahl", 1200, 0.08, 0},
		{"linear", 750, 0, 0},
		{"coherence-only", 900, 0, 0.002},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fit, err := FitUSL(uslPoints(tc.lambda, tc.sigma, tc.kappa, sweepLevels))
			if err != nil {
				t.Fatalf("FitUSL: %v", err)
			}
			relOK := func(got, want float64) bool {
				if want == 0 {
					return math.Abs(got) < 1e-9
				}
				return math.Abs(got-want)/want < 1e-6
			}
			if !relOK(fit.Lambda, tc.lambda) || !relOK(fit.Sigma, tc.sigma) || !relOK(fit.Kappa, tc.kappa) {
				t.Fatalf("fit (λ=%g σ=%g κ=%g) != truth (λ=%g σ=%g κ=%g)",
					fit.Lambda, fit.Sigma, fit.Kappa, tc.lambda, tc.sigma, tc.kappa)
			}
			if fit.R2 < 1-1e-9 {
				t.Fatalf("noise-free fit R2 = %g, want ~1", fit.R2)
			}
		})
	}
}

// TestFitUSLNoisy demands <10% relative parameter error under ±2%
// multiplicative throughput noise — the acceptance bar of the committed
// synthetic sweep.
func TestFitUSLNoisy(t *testing.T) {
	const lambda, sigma, kappa = 1000.0, 0.05, 0.001
	rng := rand.New(rand.NewSource(7))
	pts := uslPoints(lambda, sigma, kappa, sweepLevels)
	for i := range pts {
		pts[i].X *= 1 + 0.02*(2*rng.Float64()-1)
	}
	fit, err := FitUSL(pts)
	if err != nil {
		t.Fatalf("FitUSL: %v", err)
	}
	for _, p := range []struct {
		name       string
		got, want float64
	}{{"lambda", fit.Lambda, lambda}, {"sigma", fit.Sigma, sigma}, {"kappa", fit.Kappa, kappa}} {
		if rel := math.Abs(p.got-p.want) / p.want; rel >= 0.10 {
			t.Errorf("%s relative error %.3f >= 0.10 (got %g, want %g)", p.name, rel, p.got, p.want)
		}
	}
}

// TestFitUSLScaleInvariant: scaling every X by s must scale λ by s and
// leave σ, κ (and thus N*) unchanged — the fit is linear in y = N/X.
func TestFitUSLScaleInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		lambda := 10 + 5000*rng.Float64()
		sigma := 0.4 * rng.Float64()
		kappa := 0.005 * rng.Float64()
		noise := make([]float64, len(sweepLevels))
		for i := range noise {
			noise[i] = 1 + 0.05*(2*rng.Float64()-1)
		}
		scale := math.Exp(6 * (2*rng.Float64() - 1)) // 1/403 .. 403×
		base := uslPoints(lambda, sigma, kappa, sweepLevels)
		scaled := make([]Point, len(base))
		for i := range base {
			base[i].X *= noise[i]
			scaled[i] = Point{N: base[i].N, X: base[i].X * scale}
		}
		f1, err1 := FitUSL(base)
		f2, err2 := FitUSL(scaled)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: fit errors %v / %v", trial, err1, err2)
		}
		if math.Abs(f2.Lambda-scale*f1.Lambda) > 1e-6*scale*f1.Lambda {
			t.Fatalf("trial %d: λ not scaled: %g vs %g×%g", trial, f2.Lambda, scale, f1.Lambda)
		}
		tol := func(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }
		if !tol(f1.Sigma, f2.Sigma) || !tol(f1.Kappa, f2.Kappa) {
			t.Fatalf("trial %d: (σ, κ) not scale-invariant: (%g, %g) vs (%g, %g)",
				trial, f1.Sigma, f2.Sigma, f1.Kappa, f2.Kappa)
		}
	}
}

func TestFitUSLPeak(t *testing.T) {
	fit, err := FitUSL(uslPoints(1000, 0.05, 0.001, sweepLevels))
	if err != nil {
		t.Fatalf("FitUSL: %v", err)
	}
	nstar, xpeak, ok := fit.Peak()
	if !ok {
		t.Fatal("κ>0 fit has no peak")
	}
	want := math.Sqrt((1 - 0.05) / 0.001)
	if math.Abs(nstar-want) > 1e-3 {
		t.Fatalf("N* = %g, want %g", nstar, want)
	}
	if xpeak <= 0 || xpeak < fit.Throughput(1) {
		t.Fatalf("peak throughput %g not above X(1)=%g", xpeak, fit.Throughput(1))
	}
	// Peak really is the maximum over the swept range.
	for _, n := range sweepLevels {
		if x := fit.Throughput(n); x > xpeak+1e-9 {
			t.Fatalf("X(%g)=%g exceeds reported peak %g", n, x, xpeak)
		}
	}
	// Monotone models report no interior peak.
	amdahl, err := FitUSL(uslPoints(800, 0.1, 0, sweepLevels))
	if err != nil {
		t.Fatalf("FitUSL amdahl: %v", err)
	}
	if _, _, ok := amdahl.Peak(); ok {
		t.Fatal("κ=0 fit reported an interior peak")
	}
}

func TestFitUSLErrors(t *testing.T) {
	if _, err := FitUSL([]Point{{1, 100}, {2, 150}}); !errors.Is(err, ErrFitUnderdetermined) {
		t.Fatalf("2 levels: err = %v, want ErrFitUnderdetermined", err)
	}
	// Repeated levels collapse: still underdetermined.
	if _, err := FitUSL([]Point{{1, 100}, {1, 110}, {2, 150}, {2, 140}}); !errors.Is(err, ErrFitUnderdetermined) {
		t.Fatalf("2 distinct levels: err = %v, want ErrFitUnderdetermined", err)
	}
	if _, err := FitUSL([]Point{{1, 100}, {2, 0}, {4, 300}}); !errors.Is(err, ErrFitDegenerate) {
		t.Fatalf("zero throughput: err = %v, want ErrFitDegenerate", err)
	}
	if _, err := FitUSL([]Point{{0.5, 100}, {2, 200}, {4, 300}}); !errors.Is(err, ErrFitDegenerate) {
		t.Fatalf("N<1: err = %v, want ErrFitDegenerate", err)
	}
}
