package capacity

import (
	"math"
	"testing"
	"time"
)

func TestWindowTickAccumulation(t *testing.T) {
	w := NewWindow()
	t0 := time.Unix(1000, 0)
	w.Tick(t0, 0, 0) // baseline only
	if w.Samples() != 0 {
		t.Fatalf("baseline tick recorded a sample")
	}
	// 1s later: 100 requests completed at inflight 4.
	w.Tick(t0.Add(time.Second), 100, 4)
	// Idle interval: no sample.
	w.Tick(t0.Add(2*time.Second), 100, 0)
	// 200 more at inflight 8.
	w.Tick(t0.Add(3*time.Second), 300, 8)
	if w.Samples() != 2 {
		t.Fatalf("samples = %d, want 2 (idle tick must not record)", w.Samples())
	}
	if w.DistinctLevels() != 2 {
		t.Fatalf("distinct levels = %d, want 2", w.DistinctLevels())
	}
	if w.LastLevel() != 8 {
		t.Fatalf("last level = %d, want 8", w.LastLevel())
	}
	snap := w.Snapshot()
	if snap.Ticks != 4 {
		t.Fatalf("ticks = %d, want 4", snap.Ticks)
	}
	if len(snap.Levels) != 2 || snap.Levels[0].N != 4 || snap.Levels[1].N != 8 {
		t.Fatalf("levels = %+v, want N=4 then N=8", snap.Levels)
	}
	if math.Abs(snap.Levels[0].MeanX-100) > 1e-9 || math.Abs(snap.Levels[1].MeanX-200) > 1e-9 {
		t.Fatalf("mean throughputs = %+v, want 100 and 200", snap.Levels)
	}
	if snap.Fit != nil {
		t.Fatalf("fit with 2 levels should be nil, got %+v", snap.Fit)
	}
}

func TestWindowFitEmerges(t *testing.T) {
	w := NewWindow()
	truth := Fit{Lambda: 1000, Sigma: 0.05, Kappa: 0.001}
	now := time.Unix(2000, 0)
	w.Tick(now, 0, 0)
	served := 0.0
	for i, n := range []int{1, 2, 4, 8, 16, 32} {
		served += truth.Throughput(float64(n)) // one second per tick
		now = now.Add(time.Second)
		w.Tick(now, uint64(served), n)
		_ = i
	}
	snap := w.Snapshot()
	if snap.Fit == nil {
		t.Fatalf("no fit with %d levels", len(snap.Levels))
	}
	if rel := math.Abs(snap.Fit.Sigma-truth.Sigma) / truth.Sigma; rel > 0.10 {
		t.Fatalf("online σ = %g, want within 10%% of %g", snap.Fit.Sigma, truth.Sigma)
	}
	if snap.NStar <= 0 || snap.NStar > 64 {
		t.Fatalf("online N* = %g, want an interior peak", snap.NStar)
	}
}

func TestWindowCounterGuards(t *testing.T) {
	w := NewWindow()
	t0 := time.Unix(3000, 0)
	w.Tick(t0, 100, 0)
	// Counter going backwards (restart) must not underflow.
	w.Tick(t0.Add(time.Second), 50, 2)
	snap := w.Snapshot()
	for _, l := range snap.Levels {
		if l.MeanX < 0 {
			t.Fatalf("negative throughput after counter reset: %+v", l)
		}
	}
	// Zero-dt tick must not divide by zero.
	w.Tick(t0.Add(time.Second), 60, 2)
	if w.Samples() > 2 {
		t.Fatalf("zero-dt tick recorded a sample")
	}
}
