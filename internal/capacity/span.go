// Package capacity is the capacity-planning layer of the serving stack:
// shared request-span bookkeeping for the load benches, a concurrency
// sweep driver, and a Universal Scalability Law (USL) fit that turns a
// measured load-vs-throughput curve into a saturation forecast.
//
// The paper's pitch is that compressibility estimation is cheap enough
// to run inline at scale; this package answers the operational follow-up
// — *how much* traffic one deployment takes before it saturates. Every
// load tool records request spans through one Recorder, aggregates them
// with one nearest-rank percentile convention (servebench and
// clusterbench previously each carried their own sort-and-index code,
// which had drifted), and the sweep driver steps offered concurrency N
// across a range, measuring throughput X(N) per level. FitUSL then
// estimates
//
//	X(N) = λN / (1 + σ(N−1) + κN(N−1))
//
// by least squares: λ is the single-stream throughput, σ the contention
// (serialization) fraction, κ the coherence (crosstalk) penalty. κ > 0
// yields an interior throughput peak at N* = √((1−σ)/κ) — the forecast
// saturation point of the deployment.
package capacity

import (
	"context"
	"errors"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/crestlab/crest/internal/crerr"
)

// Outcome classifies one request span for throughput accounting.
type Outcome int

const (
	// OK is a served request: the only outcome that counts toward X(N).
	OK Outcome = iota
	// Shed is an admission rejection (503/overload): offered load the
	// server declined, not an error and not throughput.
	Shed
	// Error is a genuine failure (transport error, 5xx, bad response).
	Error
	// Canceled is a request abandoned by the driver — typically in
	// flight when its sweep level ended. Canceled spans are excluded
	// from both throughput and the error count: the server did nothing
	// wrong, the measurement window simply closed on them.
	Canceled
)

// Span is one request's timing record.
type Span struct {
	Start    time.Time
	Duration time.Duration
	Outcome  Outcome
	// Level is the offered-concurrency level the span ran under (0 when
	// recorded outside a sweep).
	Level int
	// Peer tags the replica that served the request in fleet runs, so a
	// fit can be computed per-replica.
	Peer string
}

// Recorder collects spans race-safely. The zero value is ready to use.
type Recorder struct {
	mu    sync.Mutex
	spans []Span
	level int
}

// SetLevel sets the concurrency level stamped onto spans recorded with a
// zero Level — the sweep driver advances it at each level boundary so
// lower layers (the cluster forwarder) need not know about the sweep.
func (r *Recorder) SetLevel(n int) {
	r.mu.Lock()
	r.level = n
	r.mu.Unlock()
}

// Record appends one span, stamping the recorder's current level when
// the span does not carry its own.
func (r *Recorder) Record(s Span) {
	r.mu.Lock()
	if s.Level == 0 {
		s.Level = r.level
	}
	r.spans = append(r.spans, s)
	r.mu.Unlock()
}

// Spans returns a copy of everything recorded so far.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// Reset drops all recorded spans (the level tag is kept).
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.spans = r.spans[:0]
	r.mu.Unlock()
}

// Percentile returns the p-quantile of durations by the nearest-rank
// convention: the ⌈p·n⌉-th smallest sample (1-based), so Percentile(d,
// 0.99) of 100 samples is exactly the 99th sorted value — never an
// interpolated point that was not observed. p outside (0,1] clamps to
// the nearest end; an empty input returns 0. The input is not modified.
func Percentile(d []time.Duration, p float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	s := make([]time.Duration, len(d))
	copy(s, d)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return sortedPercentile(s, p)
}

// sortedPercentile is Percentile over an already-sorted slice.
func sortedPercentile(s []time.Duration, p float64) time.Duration {
	if len(s) == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// LevelStats aggregates the spans of one concurrency level.
type LevelStats struct {
	// N is the offered concurrency of the level.
	N int `json:"n"`
	// OK/Shed/Errors/Canceled count spans by outcome.
	OK       int `json:"ok"`
	Shed     int `json:"shed"`
	Errors   int `json:"errors"`
	Canceled int `json:"canceled"`
	// Throughput is X(N): served (OK) requests per second of wall time.
	Throughput float64 `json:"throughput_rps"`
	// P50/P90/P99 are nearest-rank latency quantiles of the OK spans.
	P50 time.Duration `json:"p50_ns"`
	P90 time.Duration `json:"p90_ns"`
	P99 time.Duration `json:"p99_ns"`
	// Wall is the level's measurement window.
	Wall time.Duration `json:"wall_ns"`
}

// Aggregate summarizes the spans of one level over the given wall-clock
// window. Only OK spans contribute to throughput and latency; canceled
// spans are counted but never folded into the error total.
func Aggregate(spans []Span, level int, wall time.Duration) LevelStats {
	st := LevelStats{N: level, Wall: wall}
	var lat []time.Duration
	for _, s := range spans {
		if s.Level != level {
			continue
		}
		switch s.Outcome {
		case OK:
			st.OK++
			lat = append(lat, s.Duration)
		case Shed:
			st.Shed++
		case Canceled:
			st.Canceled++
		default:
			st.Errors++
		}
	}
	if wall > 0 {
		st.Throughput = float64(st.OK) / wall.Seconds()
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	st.P50 = sortedPercentile(lat, 0.50)
	st.P90 = sortedPercentile(lat, 0.90)
	st.P99 = sortedPercentile(lat, 0.99)
	return st
}

// Classify maps a request error onto a span outcome. Cancellation —
// the level context closing on an in-flight request, directly or
// surfaced through the retry loop as crerr.ErrCanceled — is Canceled,
// never Error: a sweep level that ends mid-request must not report the
// stragglers as server failures. Overload (shed, drain) maps to Shed.
func Classify(err error) Outcome {
	switch {
	case err == nil:
		return OK
	case errors.Is(err, crerr.ErrCanceled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return Canceled
	case errors.Is(err, crerr.ErrOverloaded), errors.Is(err, crerr.ErrDraining):
		return Shed
	default:
		return Error
	}
}
