package capacity

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/crestlab/crest/internal/crerr"
)

// TestPercentileNearestRank pins the shared convention both benches now
// inherit: the p-quantile of n samples is the ⌈p·n⌉-th smallest value —
// in particular p99 of 100 samples is the 99th sorted value, and p50 of
// an even count is the lower middle, never an interpolated midpoint.
func TestPercentileNearestRank(t *testing.T) {
	hundred := make([]time.Duration, 100)
	for i := range hundred {
		// Shuffled deterministic fill 1ms..100ms.
		hundred[(i*37)%100] = time.Duration(i+1) * time.Millisecond
	}
	if got := Percentile(hundred, 0.99); got != 99*time.Millisecond {
		t.Fatalf("p99 of 100 samples = %v, want 99ms (the 99th value)", got)
	}
	if got := Percentile(hundred, 0.50); got != 50*time.Millisecond {
		t.Fatalf("p50 of 100 samples = %v, want 50ms", got)
	}
	if got := Percentile(hundred, 0.90); got != 90*time.Millisecond {
		t.Fatalf("p90 of 100 samples = %v, want 90ms", got)
	}
	if got := Percentile(hundred, 1.0); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v, want the max", got)
	}

	four := []time.Duration{40, 10, 30, 20}
	if got := Percentile(four, 0.5); got != 20 {
		t.Fatalf("p50 of 4 samples = %v, want the 2nd value (20)", got)
	}
	if got := Percentile(four, 0.99); got != 40 {
		t.Fatalf("p99 of 4 samples = %v, want the max (40)", got)
	}
	one := []time.Duration{7}
	for _, p := range []float64{0.01, 0.5, 0.99, 1} {
		if got := Percentile(one, p); got != 7 {
			t.Fatalf("p%g of 1 sample = %v, want 7", 100*p, got)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty input = %v, want 0", got)
	}
	// The input must not be reordered.
	if four[0] != 40 || four[3] != 20 {
		t.Fatalf("Percentile mutated its input: %v", four)
	}
}

func TestAggregateOutcomes(t *testing.T) {
	spans := []Span{
		{Level: 4, Outcome: OK, Duration: 10 * time.Millisecond},
		{Level: 4, Outcome: OK, Duration: 30 * time.Millisecond},
		{Level: 4, Outcome: Shed},
		{Level: 4, Outcome: Error},
		{Level: 4, Outcome: Canceled, Duration: time.Second},
		{Level: 8, Outcome: OK, Duration: 99 * time.Millisecond}, // other level: excluded
	}
	st := Aggregate(spans, 4, 2*time.Second)
	if st.OK != 2 || st.Shed != 1 || st.Errors != 1 || st.Canceled != 1 {
		t.Fatalf("counts = ok %d shed %d err %d canceled %d, want 2/1/1/1",
			st.OK, st.Shed, st.Errors, st.Canceled)
	}
	if st.Throughput != 1.0 { // 2 OK over 2s
		t.Fatalf("throughput = %g, want 1.0 (canceled spans must not count)", st.Throughput)
	}
	// Latency quantiles come from OK spans only: the 1s canceled span
	// must not drag the p99 up.
	if st.P99 != 30*time.Millisecond {
		t.Fatalf("p99 = %v, want 30ms (OK spans only)", st.P99)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Outcome
	}{
		{nil, OK},
		{crerr.Canceled(context.Canceled), Canceled},
		{context.Canceled, Canceled},
		{context.DeadlineExceeded, Canceled},
		{fmt.Errorf("retry: 3 attempt(s) exhausted: %w", crerr.ErrOverloaded), Shed},
		{crerr.ErrDraining, Shed},
		{errors.New("connection refused"), Error},
		{fmt.Errorf("wrap: %w", crerr.ErrCanceled), Canceled},
	}
	for i, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("case %d (%v): outcome %v, want %v", i, tc.err, got, tc.want)
		}
	}
}

func TestRecorderLevelStamping(t *testing.T) {
	var r Recorder
	r.SetLevel(3)
	r.Record(Span{Outcome: OK, Peer: "a"})
	r.Record(Span{Outcome: OK, Level: 9, Peer: "b"}) // explicit level wins
	spans := r.Spans()
	if len(spans) != 2 || spans[0].Level != 3 || spans[1].Level != 9 {
		t.Fatalf("spans = %+v, want levels 3 and 9", spans)
	}
	r.Reset()
	if len(r.Spans()) != 0 {
		t.Fatal("Reset left spans behind")
	}
}
