package capacity

import (
	"sort"
	"sync"
	"time"
)

// maxWindowLevels bounds the per-level table of an online Window so a
// long-lived server's capacity bookkeeping stays fixed-size (inflight
// levels are bounded by admission control anyway; the cap is a
// belt-and-braces guard).
const maxWindowLevels = 512

// Window accumulates online X(N) samples on a live server: each Tick
// pairs the admission-control inflight gauge (the concurrency level N
// the server is actually running at) with the served-request counter
// delta since the previous tick (the throughput X over that interval).
// Over time the busy levels build a load-vs-throughput curve that
// Snapshot can fit with FitUSL — capacity planning from production
// traffic, no synthetic sweep required.
type Window struct {
	mu         sync.Mutex
	lastServed uint64
	lastAt     time.Time
	levels     map[int]*levelAgg
	ticks      uint64
	samples    uint64
	lastLevel  int
}

type levelAgg struct {
	sumX    float64
	samples uint64
}

// NewWindow returns an empty online sampling window.
func NewWindow() *Window {
	return &Window{levels: make(map[int]*levelAgg)}
}

// Tick records one sampling instant: served is the monotone count of
// completed requests, inflight the current admission gauge. The first
// tick only establishes the baseline; idle ticks (inflight 0 and no
// completions) advance the baseline without recording a sample, so a
// quiet server does not flood level 0.
func (w *Window) Tick(now time.Time, served uint64, inflight int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.ticks++
	if w.lastAt.IsZero() {
		w.lastAt, w.lastServed = now, served
		return
	}
	dt := now.Sub(w.lastAt).Seconds()
	var delta uint64
	if served > w.lastServed { // counter is monotone; guard regardless
		delta = served - w.lastServed
	}
	w.lastAt, w.lastServed = now, served
	if dt <= 0 {
		return
	}
	if inflight <= 0 && delta == 0 {
		return // idle interval: no concurrency level to attribute
	}
	level := inflight
	if level < 1 {
		// Completions landed but the gauge already drained: attribute to
		// the lowest busy level rather than inventing level 0.
		level = 1
	}
	agg := w.levels[level]
	if agg == nil {
		if len(w.levels) >= maxWindowLevels {
			return
		}
		agg = &levelAgg{}
		w.levels[level] = agg
	}
	agg.sumX += float64(delta) / dt
	agg.samples++
	w.samples++
	w.lastLevel = level
}

// WindowLevel is one concurrency level's aggregated online throughput.
type WindowLevel struct {
	N       int     `json:"n"`
	MeanX   float64 `json:"mean_throughput_rps"`
	Samples uint64  `json:"samples"`
}

// WindowSnapshot is the /statsz capacity block: the observed per-level
// curve and, once at least three distinct busy levels exist, the USL
// fit with its saturation forecast.
type WindowSnapshot struct {
	Ticks   uint64        `json:"ticks"`
	Samples uint64        `json:"samples"`
	Levels  []WindowLevel `json:"levels,omitempty"`
	Fit     *Fit          `json:"fit,omitempty"`
	// NStar and PeakThroughput forecast the saturation point when the
	// fit has an interior peak (κ > 0).
	NStar          float64 `json:"n_star,omitempty"`
	PeakThroughput float64 `json:"peak_throughput_rps,omitempty"`
}

// Samples returns how many non-idle samples have been recorded.
func (w *Window) Samples() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.samples
}

// LastLevel returns the concurrency level of the most recent sample.
func (w *Window) LastLevel() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastLevel
}

// DistinctLevels returns how many distinct busy levels have samples.
func (w *Window) DistinctLevels() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.levels)
}

// Snapshot summarizes the window and attempts a USL fit over the mean
// per-level throughputs. A failed or underdetermined fit simply leaves
// Fit nil — online data is allowed to be degenerate.
func (w *Window) Snapshot() WindowSnapshot {
	w.mu.Lock()
	snap := WindowSnapshot{Ticks: w.ticks, Samples: w.samples}
	for n, agg := range w.levels {
		snap.Levels = append(snap.Levels, WindowLevel{
			N:       n,
			MeanX:   agg.sumX / float64(agg.samples),
			Samples: agg.samples,
		})
	}
	w.mu.Unlock()
	sort.Slice(snap.Levels, func(i, j int) bool { return snap.Levels[i].N < snap.Levels[j].N })

	pts := make([]Point, 0, len(snap.Levels))
	for _, l := range snap.Levels {
		if l.MeanX > 0 {
			pts = append(pts, Point{N: float64(l.N), X: l.MeanX})
		}
	}
	if fit, err := FitUSL(pts); err == nil {
		snap.Fit = &fit
		if nstar, xpeak, ok := fit.Peak(); ok {
			snap.NStar, snap.PeakThroughput = nstar, xpeak
		}
	}
	return snap
}
