package core

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"github.com/crestlab/crest/internal/chaos"
	"github.com/crestlab/crest/internal/compressors"
	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/mixreg"
	"github.com/crestlab/crest/internal/predictors"
)

// degenerateFor returns a fitFunc that yields a numerically dead model for
// every fit with more than one component and delegates single-component
// fits to the real EM.
func degenerateFor(realFits *atomic.Int32) fitFunc {
	return func(ctx context.Context, tx [][]float64, ty []float64, cfg mixreg.Config) (*mixreg.Model, error) {
		if cfg.L == 1 {
			realFits.Add(1)
			return mixreg.FitContext(ctx, tx, ty, cfg)
		}
		d := len(tx[0])
		return &mixreg.Model{L: 2, D: d,
			Pi:    []float64{math.NaN(), math.NaN()},
			Beta:  [][]float64{make([]float64, d+1), make([]float64, d+1)},
			Sigma: []float64{math.NaN(), math.NaN()},
			XMean: [][]float64{make([]float64, d), make([]float64, d)},
			XVar:  [][]float64{make([]float64, d), make([]float64, d)},
		}, nil
	}
}

// TestFitFallbackOnDegenerateEM: a degenerate mixture fit degrades to the
// single-component linear model instead of failing, and the fallback is
// recorded.
func TestFitFallbackOnDegenerateEM(t *testing.T) {
	samples := synthSamples(80, 0.05, 7)
	x := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		x[i] = s.Features
		y[i] = math.Log(s.CR)
	}
	var fellBack atomic.Bool
	var realFits atomic.Int32
	pred, err := fitWithFallback(context.Background(), x, y, mixreg.Config{L: 2},
		degenerateFor(&realFits), &fellBack)
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if !fellBack.Load() {
		t.Error("fallback not recorded")
	}
	if realFits.Load() != 1 {
		t.Errorf("%d single-component fits, want 1", realFits.Load())
	}
	// The fallback predictor is usable.
	if got := pred.Predict(x[0]); math.IsNaN(got) {
		t.Error("fallback predictor returns NaN")
	}
}

// TestFitFallbackBothDegenerate: when even the single-component fit is
// dead, the error is classified under ErrModelDegenerate.
func TestFitFallbackBothDegenerate(t *testing.T) {
	allDead := func(ctx context.Context, tx [][]float64, ty []float64, cfg mixreg.Config) (*mixreg.Model, error) {
		return &mixreg.Model{L: 1, D: len(tx[0]),
			Pi: []float64{1}, Beta: [][]float64{make([]float64, len(tx[0])+1)},
			Sigma: []float64{math.NaN()},
			XMean: [][]float64{make([]float64, len(tx[0]))},
			XVar:  [][]float64{make([]float64, len(tx[0]))},
		}, nil
	}
	var fellBack atomic.Bool
	_, err := fitWithFallback(context.Background(),
		[][]float64{{1}, {2}}, []float64{1, 2}, mixreg.Config{}, allDead, &fellBack)
	if !errors.Is(err, crerr.ErrModelDegenerate) {
		t.Fatalf("err = %v, want ErrModelDegenerate", err)
	}
	if fellBack.Load() {
		t.Error("fallback recorded despite degenerate fallback fit")
	}
}

// TestTrainNotFellBackOnHealthyFit: a healthy training run reports no
// fallback.
func TestTrainNotFellBackOnHealthyFit(t *testing.T) {
	est, err := Train(synthSamples(120, 0.05, 9), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if est.FellBack() {
		t.Error("healthy fit reported FellBack")
	}
}

// TestTrainContextCanceled: cancellation beats degradation — a canceled
// training run fails with ErrCanceled rather than falling back.
func TestTrainContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := TrainContext(ctx, synthSamples(60, 0.05, 11), Config{})
	if !errors.Is(err, crerr.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
}

// TestEstimateRejectsNonFiniteFeatures: a poisoned covariate vector is a
// typed error, not a NaN estimate.
func TestEstimateRejectsNonFiniteFeatures(t *testing.T) {
	est, err := Train(synthSamples(60, 0.05, 13), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		f := []float64{1, 2, bad, 4, 5}
		if _, err := est.Estimate(f); !errors.Is(err, crerr.ErrNonFiniteData) {
			t.Errorf("feature %g: err = %v, want ErrNonFiniteData", bad, err)
		}
	}
}

func faultBuffers(n int) []*grid.Buffer {
	bufs := make([]*grid.Buffer, n)
	for i := range bufs {
		b := grid.NewBuffer(32, 32)
		for j := range b.Data {
			b.Data[j] = math.Sin(float64(j)/11) + 0.01*float64(i)
		}
		b.Dataset, b.Field, b.Step = "fault", "f", i
		bufs[i] = b
	}
	return bufs
}

// TestChaosCollectSamplesCompressorFaults: injected compressor errors and
// panics become per-buffer entries classified under ErrCompressor while
// the surviving buffers' samples are still collected, bit-identical to the
// serial clean path.
func TestChaosCollectSamplesCompressorFaults(t *testing.T) {
	bufs := faultBuffers(12)
	cfg := predictors.Config{Workers: 1}
	inner := compressors.NewZFPLike()

	clean, err := BuildSamplesContext(context.Background(), bufs, inner, 1e-3, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}

	in := chaos.NewInjector(chaos.Plan{Seed: 2, ErrorEvery: 4, PanicEvery: 5})
	comp := chaos.WrapCompressor(inner, in)
	out, err := BuildSamplesContext(context.Background(), bufs, comp, 1e-3, cfg, 4)
	var agg *crerr.AggregateError
	if !errors.As(err, &agg) {
		t.Fatalf("err = %T %v, want AggregateError", err, err)
	}
	if !errors.Is(err, crerr.ErrCompressor) {
		t.Errorf("aggregate does not match ErrCompressor: %v", err)
	}
	failed := make(map[int]bool)
	for _, i := range agg.Indices() {
		failed[i] = true
	}
	for i := range bufs {
		if failed[i] {
			continue
		}
		if out[i].CR != clean[i].CR {
			t.Errorf("buffer %d: CR %g != clean %g", i, out[i].CR, clean[i].CR)
		}
	}
	if c := in.Counts(); uint64(len(agg.Errs)) != c.Errors+c.Panics {
		// Each buffer makes exactly one Compress and one Decompress call,
		// so every injected fault fails exactly one buffer.
		t.Errorf("%d buffers failed for %d injected faults", len(agg.Errs), c.Errors+c.Panics)
	}
}

// TestChaosCollectSamplesCancel: cancellation mid-collection drains the
// workers and reports ErrCanceled.
func TestChaosCollectSamplesCancel(t *testing.T) {
	bufs := faultBuffers(32)
	cfg := predictors.Config{Workers: 1}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var runs atomic.Int32
	comp := cancelingCompressor{inner: compressors.NewZFPLike(), after: 3, runs: &runs, cancel: cancel}
	out, err := BuildSamplesContext(ctx, bufs, comp, 1e-3, cfg, 2)
	if !errors.Is(err, crerr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	done := 0
	for _, s := range out {
		if s.CR != 0 {
			done++
		}
	}
	if done >= len(bufs) {
		t.Error("every buffer completed despite mid-collection cancel")
	}
}

type cancelingCompressor struct {
	inner  compressors.Compressor
	after  int32
	runs   *atomic.Int32
	cancel context.CancelFunc
}

func (c cancelingCompressor) Name() string { return "canceling" }

func (c cancelingCompressor) Compress(buf *grid.Buffer, eps float64) ([]byte, error) {
	if c.runs.Add(1) == c.after {
		c.cancel()
	}
	return c.inner.Compress(buf, eps)
}

func (c cancelingCompressor) Decompress(data []byte) (*grid.Buffer, error) {
	return c.inner.Decompress(data)
}
