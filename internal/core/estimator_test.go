package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/crestlab/crest/internal/compressors"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/predictors"
	"github.com/crestlab/crest/internal/synthdata"
)

// synthSamples builds samples whose log(CR) is a noisy linear function of
// five synthetic features.
func synthSamples(n int, noise float64, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Sample, n)
	for i := range out {
		f := make([]float64, 5)
		for j := range f {
			f[j] = rng.NormFloat64()
		}
		// Coefficients chosen so CR stays below the cap for typical draws.
		logCR := 1.0 + 0.4*f[0] - 0.2*f[2] + 0.3*f[4] + noise*rng.NormFloat64()
		out[i] = Sample{Features: f, CR: math.Exp(logCR)}
	}
	return out
}

func TestTrainEstimateRecoversRelation(t *testing.T) {
	train := synthSamples(300, 0.02, 1)
	test := synthSamples(100, 0.02, 2)
	est, err := Train(train, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var apes []float64
	for _, s := range test {
		e, err := est.Estimate(s.Features)
		if err != nil {
			t.Fatal(err)
		}
		cr := math.Min(s.CR, 100)
		apes = append(apes, 100*math.Abs(cr-e.CR)/cr)
	}
	var mean float64
	for _, a := range apes {
		mean += a
	}
	mean /= float64(len(apes))
	if mean > 8 {
		t.Errorf("mean APE = %.2f%% on a near-linear relation", mean)
	}
}

func TestEstimateClampsToTrainingRegime(t *testing.T) {
	train := synthSamples(100, 0.05, 3)
	est, err := Train(train, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Extreme extrapolation input.
	e, err := est.Estimate([]float64{100, -100, 100, -100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if e.CR < 1 || e.CR > DefaultCRCap {
		t.Errorf("point estimate %g escaped [1, %d]", e.CR, DefaultCRCap)
	}
}

func TestCoverage(t *testing.T) {
	train := synthSamples(400, 0.1, 4)
	test := synthSamples(200, 0.1, 5)
	est, err := Train(train, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cov := est.Coverage(test)
	if cov < 0.9 {
		t.Errorf("coverage %.2f below nominal 0.95 minus tolerance", cov)
	}
	if est.IntervalRadius() <= 0 {
		t.Error("zero interval radius on noisy data")
	}
	if !math.IsNaN(est.Coverage(nil)) {
		t.Error("empty coverage not NaN")
	}
}

func TestFeatureMask(t *testing.T) {
	train := synthSamples(200, 0.05, 6)
	mask := []bool{true, false, true, false, true}
	est, err := Train(train, Config{FeatureMask: mask})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Estimate(train[0].Features); err != nil {
		t.Fatal(err)
	}
	// Bad masks.
	if _, err := Train(train, Config{FeatureMask: []bool{true}}); err == nil {
		t.Error("short mask accepted")
	}
	if _, err := Train(train, Config{FeatureMask: make([]bool, 5)}); err == nil {
		t.Error("all-false mask accepted")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, Config{}); err == nil {
		t.Error("empty training set accepted")
	}
	bad := synthSamples(10, 0.1, 7)
	bad[3].CR = -1
	if _, err := Train(bad, Config{}); err == nil {
		t.Error("negative CR accepted")
	}
	ragged := synthSamples(10, 0.1, 8)
	ragged[2].Features = ragged[2].Features[:3]
	if _, err := Train(ragged, Config{}); err == nil {
		t.Error("ragged features accepted")
	}
}

func TestEstimateWrongArity(t *testing.T) {
	est, err := Train(synthSamples(50, 0.1, 9), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Estimate([]float64{1, 2}); err == nil {
		t.Error("wrong feature arity accepted")
	}
}

func TestCRCapApplied(t *testing.T) {
	// Samples all above the cap: the model learns log(cap) exactly.
	samples := make([]Sample, 40)
	rng := rand.New(rand.NewSource(10))
	for i := range samples {
		f := make([]float64, 5)
		for j := range f {
			f[j] = rng.NormFloat64()
		}
		samples[i] = Sample{Features: f, CR: 5000}
	}
	est, err := Train(samples, Config{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := est.Estimate(samples[0].Features)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.CR-DefaultCRCap) > 1 {
		t.Errorf("capped training predicted %g, want ≈%d", e.CR, DefaultCRCap)
	}
}

func TestTrainGroupedRuns(t *testing.T) {
	train := synthSamples(120, 0.1, 11)
	groups := make([]int, len(train))
	for i := range groups {
		groups[i] = i % 4
	}
	est, err := TrainGrouped(train, groups, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Estimate(train[0].Features); err != nil {
		t.Fatal(err)
	}
}

func TestBuildSamplesEndToEnd(t *testing.T) {
	ds := synthdata.Miranda(synthdata.Options{NZ: 3, NY: 32, NX: 32, Seed: 12})
	bufs := ds.Fields[0].Buffers
	comp := compressors.MustNew("szinterp")
	samples, err := BuildSamples(bufs, comp, 1e-3, predictors.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != len(bufs) {
		t.Fatalf("%d samples", len(samples))
	}
	for i, s := range samples {
		if len(s.Features) != predictors.NumFeatures {
			t.Fatalf("sample %d has %d features", i, len(s.Features))
		}
		if s.CR <= 0 {
			t.Fatalf("sample %d CR = %g", i, s.CR)
		}
	}
	// FeaturesOf matches the features embedded in BuildSample.
	f, err := FeaturesOf(bufs[0], 1e-3, predictors.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for j := range f {
		if f[j] != samples[0].Features[j] {
			t.Fatal("FeaturesOf differs from BuildSample features")
		}
	}
	// Errors propagate: a non-tileable buffer fails cleanly.
	tiny := grid.NewBuffer(2, 2)
	if _, err := BuildSample(tiny, comp, 1e-3, predictors.Config{}); err == nil {
		t.Error("tiny buffer accepted")
	}
}
