package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/crestlab/crest/internal/conformal"
	"github.com/crestlab/crest/internal/mixreg"
)

// EstimatorState is the complete serializable parameter set of a trained
// Estimator: the resolved feature mask and standardization moments, the
// conformal calibration (radius, miscoverage level, calibration size),
// the mixture components of the point predictor (one per conformal split;
// more than one means the multi-split mean ensemble), the FellBack flag
// and the training configuration. State and FromState are exact inverses
// for any trained estimator: a restored estimator produces bit-identical
// Estimate results, which the snapshot differential tests assert.
type EstimatorState struct {
	// Config is the configuration the estimator was trained with; the
	// Predictors part is what feature caches must be built from.
	Config Config `json:"config"`

	// Mask, Mean and Std are the resolved feature mask and the
	// standardization moments of the kept features.
	Mask []bool    `json:"mask"`
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`

	// FellBack records whether EM degenerated during training and the
	// model is the single-component linear fallback.
	FellBack bool `json:"fell_back"`

	// Radius, Lambda and NCalib are the conformal calibration: the
	// residual quantile half-width (log-CR scale), the miscoverage level
	// and the calibration-set size.
	Radius float64 `json:"radius"`
	Lambda float64 `json:"lambda"`
	NCalib int     `json:"n_calib"`

	// Components are the fitted mixture models behind the conformal
	// wrapper: exactly one for a single-split fit, one per split for the
	// multi-split mean ensemble.
	Components []*mixreg.Model `json:"components"`

	// Online is the rolling recalibration tracker state, present only
	// when online recalibration was enabled at capture time. Absent in
	// snapshots written before the field existed; those restore with no
	// tracker, exactly as they always did.
	Online *conformal.OnlineState `json:"online,omitempty"`
}

// ErrNotSnapshotable reports an estimator whose inner predictor is not
// built from mixture components (a custom conformal fitter), which the
// snapshot format cannot represent.
var ErrNotSnapshotable = errors.New("core: estimator is not snapshotable")

// State extracts the estimator's full parameter set for persistence.
func (e *Estimator) State() (*EstimatorState, error) {
	inner := e.model.Inner()
	var comps []*mixreg.Model
	if parts, ok := conformal.EnsembleParts(inner); ok {
		for _, p := range parts {
			m, ok := p.(*mixreg.Model)
			if !ok {
				return nil, fmt.Errorf("%w: ensemble member %T", ErrNotSnapshotable, p)
			}
			comps = append(comps, m)
		}
	} else if m, ok := inner.(*mixreg.Model); ok {
		comps = []*mixreg.Model{m}
	} else {
		return nil, fmt.Errorf("%w: inner predictor %T", ErrNotSnapshotable, inner)
	}
	st := &EstimatorState{
		Config:     e.cfg,
		Mask:       append([]bool(nil), e.mask...),
		Mean:       append([]float64(nil), e.mean...),
		Std:        append([]float64(nil), e.std...),
		FellBack:   e.fellBack,
		Radius:     e.model.Radius(),
		Lambda:     e.model.Lambda(),
		NCalib:     e.model.CalibrationSize(),
		Components: comps,
	}
	if e.online != nil {
		ost := e.online.State()
		st.Online = &ost
	}
	return st, nil
}

// FromState reconstructs a usable estimator from a decoded state,
// validating every invariant the estimation path relies on (slice shapes,
// finite moments, positive gating variances, non-degenerate components)
// so that arbitrary decoded bytes can never panic Estimate. The snapshot
// layer wraps any validation failure under crerr.ErrSnapshotCorrupt.
func FromState(st *EstimatorState) (*Estimator, error) {
	if st == nil {
		return nil, errors.New("core: nil estimator state")
	}
	nKept := 0
	for _, keep := range st.Mask {
		if keep {
			nKept++
		}
	}
	if len(st.Mask) == 0 || nKept == 0 {
		return nil, fmt.Errorf("core: state mask keeps %d of %d features", nKept, len(st.Mask))
	}
	if len(st.Mean) != nKept || len(st.Std) != nKept {
		return nil, fmt.Errorf("core: state moments %d/%d values, want %d", len(st.Mean), len(st.Std), nKept)
	}
	for j := range st.Mean {
		if !finite(st.Mean[j]) || !finite(st.Std[j]) || st.Std[j] == 0 {
			return nil, fmt.Errorf("core: state moment %d is (%g, %g)", j, st.Mean[j], st.Std[j])
		}
	}
	if !finite(st.Radius) || st.Radius < 0 {
		return nil, fmt.Errorf("core: state radius %g", st.Radius)
	}
	if !finite(st.Lambda) || st.Lambda < 0 || st.Lambda >= 1 {
		return nil, fmt.Errorf("core: state lambda %g", st.Lambda)
	}
	if st.NCalib < 0 {
		return nil, fmt.Errorf("core: state calibration size %d", st.NCalib)
	}
	if len(st.Components) == 0 {
		return nil, errors.New("core: state has no mixture components")
	}
	for ci, m := range st.Components {
		if err := validateComponent(m, nKept); err != nil {
			return nil, fmt.Errorf("core: state component %d: %w", ci, err)
		}
	}

	var inner conformal.Predictor
	if len(st.Components) == 1 {
		inner = st.Components[0]
	} else {
		parts := make([]conformal.Predictor, len(st.Components))
		for i, m := range st.Components {
			parts[i] = m
		}
		inner = conformal.Ensemble(parts)
	}
	cfg := st.Config.withDefaults()
	est := &Estimator{
		cfg:      cfg,
		model:    conformal.Restore(inner, st.Radius, st.Lambda, st.NCalib),
		mask:     append([]bool(nil), st.Mask...),
		mean:     append([]float64(nil), st.Mean...),
		std:      append([]float64(nil), st.Std...),
		nKept:    nKept,
		fellBack: st.FellBack,
	}
	if st.Online != nil {
		om, err := conformal.NewOnlineFromState(est.model, *st.Online)
		if err != nil {
			return nil, fmt.Errorf("core: state online tracker: %w", err)
		}
		est.online = om
	}
	return est, nil
}

// validateComponent checks one mixture model's shape and numeric
// invariants against the kept-feature dimensionality.
func validateComponent(m *mixreg.Model, d int) error {
	if m == nil {
		return errors.New("nil model")
	}
	if m.L < 1 || m.D != d {
		return fmt.Errorf("L=%d D=%d, want D=%d", m.L, m.D, d)
	}
	if len(m.Pi) != m.L || len(m.Beta) != m.L || len(m.Sigma) != m.L ||
		len(m.XMean) != m.L || len(m.XVar) != m.L {
		return fmt.Errorf("parameter slices sized %d/%d/%d/%d/%d, want %d",
			len(m.Pi), len(m.Beta), len(m.Sigma), len(m.XMean), len(m.XVar), m.L)
	}
	for c := 0; c < m.L; c++ {
		if len(m.Beta[c]) != d+1 {
			return fmt.Errorf("component %d has %d coefficients, want %d", c, len(m.Beta[c]), d+1)
		}
		if len(m.XMean[c]) != d || len(m.XVar[c]) != d {
			return fmt.Errorf("component %d gating moments sized %d/%d, want %d",
				c, len(m.XMean[c]), len(m.XVar[c]), d)
		}
		for j := 0; j < d; j++ {
			// Gate divides by XVar; a zero or negative variance would make
			// prediction NaN or panic-adjacent, so reject it here.
			if !(m.XVar[c][j] > 0) {
				return fmt.Errorf("component %d gating variance %d is %g", c, j, m.XVar[c][j])
			}
		}
	}
	if m.Degenerate() {
		return errors.New("degenerate parameters")
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
