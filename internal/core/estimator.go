// Package core assembles the paper's primary contribution: a
// compressibility estimator that maps the five statistical predictors of
// internal/predictors through a mixture-of-linear-regressions model
// (internal/mixreg) wrapped in split conformal prediction
// (internal/conformal), producing a point estimate and a statistically
// valid interval for the compression ratio of an error-bounded lossy
// compressor on a buffer — without running the compressor.
package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/crestlab/crest/internal/compressors"
	"github.com/crestlab/crest/internal/conformal"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/mixreg"
	"github.com/crestlab/crest/internal/parallel"
	"github.com/crestlab/crest/internal/predictors"
	"github.com/crestlab/crest/internal/stats"
)

// DefaultCRCap caps compression ratios during training; the paper focuses
// on CR ≤ 100 as the operational regime (§IV-B).
const DefaultCRCap = 100

// Config tunes the full estimation pipeline.
type Config struct {
	// Predictors configures the feature computation.
	Predictors predictors.Config
	// Mixture configures the regression mixture.
	Mixture mixreg.Config
	// Conformal configures the interval calibration.
	Conformal conformal.Config
	// CRCap clamps training compression ratios (default 100).
	CRCap float64
	// FeatureMask enables a subset of the five features; nil enables all.
	// Used by the Fig. 1 ablation study.
	FeatureMask []bool
	// ConformalSplits > 1 enables multi-split conformal prediction
	// (median radius over independent splits); default 1 (single split).
	ConformalSplits int
}

func (c Config) withDefaults() Config {
	if c.CRCap <= 0 {
		c.CRCap = DefaultCRCap
	}
	return c
}

// Sample is one training observation: the covariates of a buffer at an
// error bound, plus the observed compression ratio.
type Sample struct {
	Features []float64
	CR       float64
}

// Estimate is a conformal compression-ratio estimate: the point value and
// a (1−λ) interval, all on the CR scale.
type Estimate struct {
	CR, Lo, Hi float64
}

// Contains reports whether the true ratio lies in the interval.
func (e Estimate) Contains(cr float64) bool { return cr >= e.Lo && cr <= e.Hi }

// Estimator is a trained compressibility model for one (compressor, error
// bound regime) pairing.
type Estimator struct {
	cfg   Config
	model *conformal.Model
	// Standardization parameters of the masked feature space.
	mask  []bool
	mean  []float64
	std   []float64
	nKept int
}

// ErrNoSamples reports an empty training set.
var ErrNoSamples = errors.New("core: no training samples")

// Train fits the mixture + conformal pipeline on the samples.
func Train(samples []Sample, cfg Config) (*Estimator, error) {
	return TrainGrouped(samples, nil, cfg)
}

// TrainGrouped is Train with an exchangeability group label per sample
// (typically the source field): conformal calibration then holds out whole
// groups, keeping the coverage guarantee meaningful for out-of-field
// prediction (§VI-C/§VI-D).
func TrainGrouped(samples []Sample, groups []int, cfg Config) (*Estimator, error) {
	cfg = cfg.withDefaults()
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	d := len(samples[0].Features)
	mask := cfg.FeatureMask
	if mask == nil {
		mask = make([]bool, d)
		for i := range mask {
			mask[i] = true
		}
	}
	if len(mask) != d {
		return nil, fmt.Errorf("core: feature mask length %d != %d features", len(mask), d)
	}
	nKept := 0
	for _, m := range mask {
		if m {
			nKept++
		}
	}
	if nKept == 0 {
		return nil, errors.New("core: feature mask disables every feature")
	}

	// Standardize kept features; targets are log(CR) with the CR cap.
	x := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		if len(s.Features) != d {
			return nil, fmt.Errorf("core: sample %d has %d features, want %d", i, len(s.Features), d)
		}
		row := make([]float64, 0, nKept)
		for j, keep := range mask {
			if keep {
				row = append(row, s.Features[j])
			}
		}
		x[i] = row
		cr := s.CR
		if cr > cfg.CRCap {
			cr = cfg.CRCap
		}
		if cr <= 0 || math.IsNaN(cr) {
			return nil, fmt.Errorf("core: sample %d has invalid CR %g", i, s.CR)
		}
		y[i] = math.Log(cr)
	}
	mean := make([]float64, nKept)
	std := make([]float64, nKept)
	col := make([]float64, len(x))
	for j := 0; j < nKept; j++ {
		for i := range x {
			col[i] = x[i][j]
		}
		mean[j], std[j] = stats.MeanStd(col)
		if std[j] == 0 {
			std[j] = 1
		}
	}
	for i := range x {
		for j := 0; j < nKept; j++ {
			x[i][j] = (x[i][j] - mean[j]) / std[j]
		}
	}

	fitter := func(tx [][]float64, ty []float64) (conformal.Predictor, error) {
		return mixreg.Fit(tx, ty, cfg.Mixture)
	}
	ccfg := cfg.Conformal
	if ccfg.CalibFraction == 0 && len(samples) < 30 {
		// Small training sets: keep more points for the regression; the
		// interval is correspondingly more conservative.
		ccfg.CalibFraction = 0.25
	}
	var cm *conformal.Model
	var err error
	if cfg.ConformalSplits > 1 {
		cm, err = conformal.FitMultiSplit(x, y, groups, fitter, ccfg, cfg.ConformalSplits)
	} else {
		cm, err = conformal.FitGrouped(x, y, groups, fitter, ccfg)
	}
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Estimator{cfg: cfg, model: cm, mask: mask, mean: mean, std: std, nKept: nKept}, nil
}

// standardize masks and standardizes one feature vector.
func (e *Estimator) standardize(features []float64) ([]float64, error) {
	if len(features) != len(e.mask) {
		return nil, fmt.Errorf("core: %d features, want %d", len(features), len(e.mask))
	}
	row := make([]float64, 0, e.nKept)
	for j, keep := range e.mask {
		if keep {
			row = append(row, features[j])
		}
	}
	for j := range row {
		row[j] = (row[j] - e.mean[j]) / e.std[j]
	}
	return row, nil
}

// Estimate predicts the compression ratio and its conformal interval for
// one covariate vector, back-transforming from the log scale and clamping
// to [1, CRCap] on the point estimate's natural range.
func (e *Estimator) Estimate(features []float64) (Estimate, error) {
	row, err := e.standardize(features)
	if err != nil {
		return Estimate{}, err
	}
	iv := e.model.Predict(row)
	// The model is trained on CR ∈ (0, CRCap]; predictions outside that
	// range are extrapolations, so the point estimate is clamped to the
	// training regime (the interval keeps its raw width).
	point := math.Exp(iv.Point)
	if point > e.cfg.CRCap {
		point = e.cfg.CRCap
	}
	if point < 1 {
		point = 1
	}
	return Estimate{
		CR: point,
		Lo: math.Exp(iv.Lo),
		Hi: math.Exp(iv.Hi),
	}, nil
}

// IntervalRadius returns the conformal half-width on the log(CR) scale.
func (e *Estimator) IntervalRadius() float64 { return e.model.Radius() }

// PredictorConfig returns the predictor configuration the estimator was
// trained with, so feature caches can be built to match.
func (e *Estimator) PredictorConfig() predictors.Config { return e.cfg.Predictors }

// Coverage returns the empirical interval coverage over samples, for
// comparison against the nominal 1−λ (§VI-D).
func (e *Estimator) Coverage(samples []Sample) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	hits := 0
	for _, s := range samples {
		est, err := e.Estimate(s.Features)
		if err != nil {
			continue
		}
		cr := math.Min(s.CR, e.cfg.CRCap)
		if est.Contains(cr) {
			hits++
		}
	}
	return float64(hits) / float64(len(samples))
}

// FeaturesOf computes the model covariates for one buffer and error bound.
func FeaturesOf(buf *grid.Buffer, eps float64, cfg predictors.Config) ([]float64, error) {
	f, err := predictors.Compute(buf, eps, cfg)
	if err != nil {
		return nil, err
	}
	return f.Vector(), nil
}

// BuildSample computes both the covariates and the ground-truth CR by
// running the compressor once — the training-data collection step of
// Algorithm 2 lines 4–7.
func BuildSample(buf *grid.Buffer, comp compressors.Compressor, eps float64, cfg predictors.Config) (Sample, error) {
	feats, err := FeaturesOf(buf, eps, cfg)
	if err != nil {
		return Sample{}, err
	}
	cr, err := compressors.Ratio(comp, buf, eps)
	if err != nil {
		return Sample{}, err
	}
	return Sample{Features: feats, CR: cr}, nil
}

// BuildSamples maps BuildSample over buffers across all cores; see
// BuildSamplesWorkers.
func BuildSamples(bufs []*grid.Buffer, comp compressors.Compressor, eps float64, cfg predictors.Config) ([]Sample, error) {
	return BuildSamplesWorkers(bufs, comp, eps, cfg, 0)
}

// BuildSamplesWorkers maps BuildSample over buffers on a bounded worker
// pool with dynamic scheduling (workers <= 0 selects GOMAXPROCS), so
// Algorithm 2's training-data collection — one compressor run plus one
// feature pass per buffer — scales with cores. Each sample lands in its
// own slot, keeping the output identical to the serial path; on failure
// the lowest-indexed buffer's error is returned.
func BuildSamplesWorkers(bufs []*grid.Buffer, comp compressors.Compressor, eps float64, cfg predictors.Config, workers int) ([]Sample, error) {
	out := make([]Sample, len(bufs))
	errs := make([]error, len(bufs))
	parallel.ForEachDynamic(len(bufs), workers, func(i int) {
		s, err := BuildSample(bufs[i], comp, eps, cfg)
		if err != nil {
			errs[i] = err
			return
		}
		out[i] = s
	})
	for i, err := range errs {
		if err != nil {
			b := bufs[i]
			return nil, fmt.Errorf("core: buffer %d (%s/%s step %d): %w", i, b.Dataset, b.Field, b.Step, err)
		}
	}
	return out, nil
}
