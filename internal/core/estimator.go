// Package core assembles the paper's primary contribution: a
// compressibility estimator that maps the five statistical predictors of
// internal/predictors through a mixture-of-linear-regressions model
// (internal/mixreg) wrapped in split conformal prediction
// (internal/conformal), producing a point estimate and a statistically
// valid interval for the compression ratio of an error-bounded lossy
// compressor on a buffer — without running the compressor.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"github.com/crestlab/crest/internal/compressors"
	"github.com/crestlab/crest/internal/conformal"
	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/mixreg"
	"github.com/crestlab/crest/internal/parallel"
	"github.com/crestlab/crest/internal/predictors"
	"github.com/crestlab/crest/internal/stats"
)

// DefaultCRCap caps compression ratios during training; the paper focuses
// on CR ≤ 100 as the operational regime (§IV-B).
const DefaultCRCap = 100

// Config tunes the full estimation pipeline.
type Config struct {
	// Predictors configures the feature computation.
	Predictors predictors.Config
	// Mixture configures the regression mixture.
	Mixture mixreg.Config
	// Conformal configures the interval calibration.
	Conformal conformal.Config
	// CRCap clamps training compression ratios (default 100).
	CRCap float64
	// FeatureMask enables a subset of the five features; nil enables all.
	// Used by the Fig. 1 ablation study.
	FeatureMask []bool
	// ConformalSplits > 1 enables multi-split conformal prediction
	// (median radius over independent splits); default 1 (single split).
	ConformalSplits int
}

func (c Config) withDefaults() Config {
	if c.CRCap <= 0 {
		c.CRCap = DefaultCRCap
	}
	return c
}

// Sample is one training observation: the covariates of a buffer at an
// error bound, plus the observed compression ratio.
type Sample struct {
	Features []float64
	CR       float64
}

// Estimate is a conformal compression-ratio estimate: the point value and
// a (1−λ) interval, all on the CR scale.
type Estimate struct {
	CR, Lo, Hi float64
}

// Contains reports whether the true ratio lies in the interval.
func (e Estimate) Contains(cr float64) bool { return cr >= e.Lo && cr <= e.Hi }

// Estimator is a trained compressibility model for one (compressor, error
// bound regime) pairing.
type Estimator struct {
	cfg   Config
	model *conformal.Model
	// Standardization parameters of the masked feature space.
	mask  []bool
	mean  []float64
	std   []float64
	nKept int
	// fellBack is true when at least one mixture fit degenerated and the
	// estimator was trained on the single-component linear fallback.
	fellBack bool
	// online, when non-nil, carries the rolling-coverage recalibration
	// wrapper; Estimate and IntervalRadius then use its dynamic radius.
	online *conformal.OnlineModel
}

// FellBack reports whether EM degenerated during training and the
// estimator fell back to a single-component linear fit. The estimator is
// still usable — intervals remain conformally valid — but the mixture's
// grouping effects are lost, which callers may want to surface.
func (e *Estimator) FellBack() bool { return e.fellBack }

// ErrNoSamples reports an empty training set.
var ErrNoSamples = errors.New("core: no training samples")

// Train fits the mixture + conformal pipeline on the samples.
func Train(samples []Sample, cfg Config) (*Estimator, error) {
	return TrainGrouped(samples, nil, cfg)
}

// TrainContext is Train with cooperative cancellation: the context is
// propagated into every EM iteration, so a cancelled training run returns
// promptly with an error matching crerr.ErrCanceled.
func TrainContext(ctx context.Context, samples []Sample, cfg Config) (*Estimator, error) {
	return TrainGroupedContext(ctx, samples, nil, cfg)
}

// TrainGrouped is Train with an exchangeability group label per sample
// (typically the source field): conformal calibration then holds out whole
// groups, keeping the coverage guarantee meaningful for out-of-field
// prediction (§VI-C/§VI-D).
func TrainGrouped(samples []Sample, groups []int, cfg Config) (*Estimator, error) {
	return TrainGroupedContext(context.Background(), samples, groups, cfg)
}

// TrainGroupedContext is TrainGrouped with cancellation and graceful EM
// degradation: when the mixture fit fails or produces a numerically
// degenerate model, training falls back to a single-component linear fit
// (flagged via Estimator.FellBack) instead of failing the whole pipeline;
// only when even the fallback cannot fit does it return an error matching
// crerr.ErrModelDegenerate.
func TrainGroupedContext(ctx context.Context, samples []Sample, groups []int, cfg Config) (*Estimator, error) {
	cfg = cfg.withDefaults()
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	d := len(samples[0].Features)
	mask := cfg.FeatureMask
	if mask == nil {
		mask = make([]bool, d)
		for i := range mask {
			mask[i] = true
		}
	}
	if len(mask) != d {
		return nil, fmt.Errorf("core: feature mask length %d != %d features", len(mask), d)
	}
	nKept := 0
	for _, m := range mask {
		if m {
			nKept++
		}
	}
	if nKept == 0 {
		return nil, errors.New("core: feature mask disables every feature")
	}

	// Standardize kept features; targets are log(CR) with the CR cap.
	x := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		if len(s.Features) != d {
			return nil, fmt.Errorf("core: sample %d has %d features, want %d", i, len(s.Features), d)
		}
		row := make([]float64, 0, nKept)
		for j, keep := range mask {
			if keep {
				row = append(row, s.Features[j])
			}
		}
		x[i] = row
		cr := s.CR
		if cr > cfg.CRCap {
			cr = cfg.CRCap
		}
		if cr <= 0 || math.IsNaN(cr) {
			return nil, fmt.Errorf("core: sample %d has invalid CR %g", i, s.CR)
		}
		y[i] = math.Log(cr)
	}
	mean := make([]float64, nKept)
	std := make([]float64, nKept)
	col := make([]float64, len(x))
	for j := 0; j < nKept; j++ {
		for i := range x {
			col[i] = x[i][j]
		}
		mean[j], std[j] = stats.MeanStd(col)
		if std[j] == 0 {
			std[j] = 1
		}
	}
	for i := range x {
		for j := 0; j < nKept; j++ {
			x[i][j] = (x[i][j] - mean[j]) / std[j]
		}
	}

	// fellBack is set from inside the fitter, which multi-split conformal
	// may invoke once per split; atomic keeps the flag race-free should a
	// future conformal implementation fit splits concurrently.
	var fellBack atomic.Bool
	fitter := func(tx [][]float64, ty []float64) (conformal.Predictor, error) {
		return fitWithFallback(ctx, tx, ty, cfg.Mixture, mixreg.FitContext, &fellBack)
	}
	ccfg := cfg.Conformal
	if ccfg.CalibFraction == 0 && len(samples) < 30 {
		// Small training sets: keep more points for the regression; the
		// interval is correspondingly more conservative.
		ccfg.CalibFraction = 0.25
	}
	var cm *conformal.Model
	var err error
	if cfg.ConformalSplits > 1 {
		cm, err = conformal.FitMultiSplit(x, y, groups, fitter, ccfg, cfg.ConformalSplits)
	} else {
		cm, err = conformal.FitGrouped(x, y, groups, fitter, ccfg)
	}
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Estimator{cfg: cfg, model: cm, mask: mask, mean: mean, std: std,
		nKept: nKept, fellBack: fellBack.Load()}, nil
}

// fitFunc matches mixreg.FitContext; injectable so the degradation path
// can be driven deterministically in tests.
type fitFunc func(context.Context, [][]float64, []float64, mixreg.Config) (*mixreg.Model, error)

// fitWithFallback is the graceful-degradation policy of training: try the
// configured mixture fit; when it fails or produces a numerically
// degenerate model, refit with a single linear component (L=1 EM is one
// ridge regression) and record the fallback. Cancellation propagates
// untouched — it is not a degeneracy. Only when even the fallback is
// degenerate does the fit fail, classified under crerr.ErrModelDegenerate.
func fitWithFallback(ctx context.Context, tx [][]float64, ty []float64, mcfg mixreg.Config, fit fitFunc, fellBack *atomic.Bool) (conformal.Predictor, error) {
	m, err := fit(ctx, tx, ty, mcfg)
	if err == nil && !m.Degenerate() {
		return m, nil
	}
	if err != nil && errors.Is(err, crerr.ErrCanceled) {
		return nil, err
	}
	fbCfg := mcfg
	fbCfg.L = 1
	fb, fbErr := fit(ctx, tx, ty, fbCfg)
	if fbErr != nil {
		return nil, fbErr
	}
	if fb.Degenerate() {
		if err == nil {
			err = errors.New("mixture fit degenerated")
		}
		return nil, fmt.Errorf("%w: %v", crerr.ErrModelDegenerate, err)
	}
	fellBack.Store(true)
	return fb, nil
}

// standardize masks and standardizes one feature vector.
func (e *Estimator) standardize(features []float64) ([]float64, error) {
	if len(features) != len(e.mask) {
		return nil, fmt.Errorf("core: %w: %d features, want %d", crerr.ErrInvalidBuffer, len(features), len(e.mask))
	}
	row := make([]float64, 0, e.nKept)
	for j, keep := range e.mask {
		if keep {
			row = append(row, features[j])
		}
	}
	for j := range row {
		row[j] = (row[j] - e.mean[j]) / e.std[j]
	}
	return row, nil
}

// Estimate predicts the compression ratio and its conformal interval for
// one covariate vector, back-transforming from the log scale and clamping
// to [1, CRCap] on the point estimate's natural range.
func (e *Estimator) Estimate(features []float64) (Estimate, error) {
	for i, v := range features {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Estimate{}, fmt.Errorf("core: %w: feature %d is %g", crerr.ErrNonFiniteData, i, v)
		}
	}
	row, err := e.standardize(features)
	if err != nil {
		return Estimate{}, err
	}
	var iv conformal.Interval
	if e.online != nil {
		iv = e.online.Predict(row)
	} else {
		iv = e.model.Predict(row)
	}
	// The model is trained on CR ∈ (0, CRCap]; predictions outside that
	// range are extrapolations, so the point estimate is clamped to the
	// training regime (the interval keeps its raw width).
	point := math.Exp(iv.Point)
	if point > e.cfg.CRCap {
		point = e.cfg.CRCap
	}
	if point < 1 {
		point = 1
	}
	return Estimate{
		CR: point,
		Lo: math.Exp(iv.Lo),
		Hi: math.Exp(iv.Hi),
	}, nil
}

// IntervalRadius returns the conformal half-width on the log(CR) scale —
// the rolling recalibrated radius when online recalibration is enabled.
func (e *Estimator) IntervalRadius() float64 {
	if e.online != nil {
		return e.online.Radius()
	}
	return e.model.Radius()
}

// EnableOnlineRecalibration wraps the estimator's conformal model with a
// rolling-coverage tracker (conformal.OnlineModel): subsequent Estimate
// calls use the dynamic radius, and ObserveActual feeds ground truth into
// the tracker. Call once, before serving traffic; it replaces any prior
// online wrapper (resetting the window), including one restored from a
// snapshot — check OnlineRecalibrationEnabled first to resume instead.
func (e *Estimator) EnableOnlineRecalibration(cfg conformal.OnlineConfig) {
	e.online = conformal.NewOnline(e.model, cfg)
}

// OnlineRecalibrationEnabled reports whether a rolling tracker is
// installed, either via EnableOnlineRecalibration or restored from a
// snapshot that captured one.
func (e *Estimator) OnlineRecalibrationEnabled() bool { return e.online != nil }

// OnlineStats returns the rolling tracker snapshot, or (zero, false) when
// online recalibration is not enabled.
func (e *Estimator) OnlineStats() (conformal.OnlineStats, bool) {
	if e.online == nil {
		return conformal.OnlineStats{}, false
	}
	return e.online.Stats(), true
}

// ObserveActual records the observed compression ratio for a previously
// estimated feature vector, updating the rolling coverage and possibly
// recalibrating the interval radius. The CR is capped and mapped to the
// log scale exactly as in training, so residuals are commensurate with
// the calibration residuals. Returns the post-update snapshot and whether
// this observation triggered a recalibration. It is an error to call
// before EnableOnlineRecalibration, or with a non-positive CR.
func (e *Estimator) ObserveActual(features []float64, actualCR float64) (conformal.OnlineStats, bool, error) {
	if e.online == nil {
		return conformal.OnlineStats{}, false, errors.New("core: online recalibration not enabled")
	}
	if actualCR <= 0 || math.IsNaN(actualCR) || math.IsInf(actualCR, 0) {
		return conformal.OnlineStats{}, false, fmt.Errorf("core: %w: observed CR %g", crerr.ErrNonFiniteData, actualCR)
	}
	for i, v := range features {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return conformal.OnlineStats{}, false, fmt.Errorf("core: %w: feature %d is %g", crerr.ErrNonFiniteData, i, v)
		}
	}
	row, err := e.standardize(features)
	if err != nil {
		return conformal.OnlineStats{}, false, err
	}
	cr := actualCR
	if cr > e.cfg.CRCap {
		cr = e.cfg.CRCap
	}
	st, recal := e.online.Observe(row, math.Log(cr))
	return st, recal, nil
}

// PredictorConfig returns the predictor configuration the estimator was
// trained with, so feature caches can be built to match.
func (e *Estimator) PredictorConfig() predictors.Config { return e.cfg.Predictors }

// Coverage returns the empirical interval coverage over samples, for
// comparison against the nominal 1−λ (§VI-D).
func (e *Estimator) Coverage(samples []Sample) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	hits := 0
	for _, s := range samples {
		est, err := e.Estimate(s.Features)
		if err != nil {
			continue
		}
		cr := math.Min(s.CR, e.cfg.CRCap)
		if est.Contains(cr) {
			hits++
		}
	}
	return float64(hits) / float64(len(samples))
}

// FeaturesOf computes the model covariates for one buffer and error bound.
func FeaturesOf(buf *grid.Buffer, eps float64, cfg predictors.Config) ([]float64, error) {
	f, err := predictors.Compute(buf, eps, cfg)
	if err != nil {
		return nil, err
	}
	return f.Vector(), nil
}

// BuildSample computes both the covariates and the ground-truth CR by
// running the compressor once — the training-data collection step of
// Algorithm 2 lines 4–7. Compressor failures (including recovered panics)
// are classified under crerr.ErrCompressor.
func BuildSample(buf *grid.Buffer, comp compressors.Compressor, eps float64, cfg predictors.Config) (Sample, error) {
	feats, err := FeaturesOf(buf, eps, cfg)
	if err != nil {
		return Sample{}, err
	}
	cr, err := runCompressor(comp, buf, eps)
	if err != nil {
		return Sample{}, err
	}
	return Sample{Features: feats, CR: cr}, nil
}

// runCompressor runs the ground-truth compression with panic isolation:
// a compressor that panics on a pathological buffer yields a typed error
// instead of taking down the host process.
func runCompressor(comp compressors.Compressor, buf *grid.Buffer, eps float64) (cr float64, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = crerr.Recovered(v, crerr.ErrCompressor)
		}
	}()
	cr, err = compressors.Ratio(comp, buf, eps)
	if err != nil {
		err = fmt.Errorf("%w: %s: %v", crerr.ErrCompressor, comp.Name(), err)
	}
	return cr, err
}

// BuildSamples maps BuildSample over buffers across all cores; see
// BuildSamplesWorkers.
func BuildSamples(bufs []*grid.Buffer, comp compressors.Compressor, eps float64, cfg predictors.Config) ([]Sample, error) {
	return BuildSamplesWorkers(bufs, comp, eps, cfg, 0)
}

// BuildSamplesWorkers maps BuildSample over buffers on a bounded worker
// pool with dynamic scheduling (workers <= 0 selects GOMAXPROCS), so
// Algorithm 2's training-data collection — one compressor run plus one
// feature pass per buffer — scales with cores. Each sample lands in its
// own slot, keeping the output identical to the serial path. On failure
// every failing buffer index is reported (crerr.AggregateError).
func BuildSamplesWorkers(bufs []*grid.Buffer, comp compressors.Compressor, eps float64, cfg predictors.Config, workers int) ([]Sample, error) {
	return BuildSamplesContext(context.Background(), bufs, comp, eps, cfg, workers)
}

// BuildSamplesContext is BuildSamplesWorkers with cooperative
// cancellation: once ctx is done, workers finish their current buffer and
// drain, and the returned error matches crerr.ErrCanceled. Worker panics
// are recovered into per-buffer errors. Like the batch engine, failure is
// per-buffer: the samples of succeeding buffers are returned alongside the
// aggregate error (out[i] is valid exactly when the aggregate has no entry
// for i), so a caller may drop the failing buffers and train on the rest.
func BuildSamplesContext(ctx context.Context, bufs []*grid.Buffer, comp compressors.Compressor, eps float64, cfg predictors.Config, workers int) ([]Sample, error) {
	out := make([]Sample, len(bufs))
	errs := make([]error, len(bufs))
	cerr := parallel.ForEachDynamicCtx(ctx, len(bufs), workers, func(i int) {
		defer func() {
			if v := recover(); v != nil {
				errs[i] = crerr.Recovered(v, crerr.ErrCompressor)
			}
		}()
		s, err := BuildSample(bufs[i], comp, eps, cfg)
		if err != nil {
			b := bufs[i]
			errs[i] = fmt.Errorf("core: buffer %d (%s/%s step %d): %w", i, b.Dataset, b.Field, b.Step, err)
			return
		}
		out[i] = s
	})
	if cerr != nil {
		return out, crerr.Canceled(cerr)
	}
	return out, crerr.Aggregate(errs)
}
