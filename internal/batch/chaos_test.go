package batch

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/crestlab/crest/internal/chaos"
	"github.com/crestlab/crest/internal/core"
	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/featcache"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/predictors"
)

// chaosFixture builds the shared inputs of the chaos matrix: buffers, a
// trained estimator, the request list, and the clean serial reference.
func chaosFixture(t *testing.T) ([]Request, *core.Estimator, []core.Estimate) {
	t.Helper()
	var bufs []*grid.Buffer
	for s := int64(0); s < 8; s++ {
		bufs = append(bufs, testBuffer(32, 32, s))
	}
	epses := []float64{1e-2, 1e-3, 1e-4}
	est := trainedEstimator(t, bufs[:5], epses)
	var reqs []Request
	for _, b := range bufs {
		for _, eps := range epses {
			reqs = append(reqs, Request{Buf: b, Eps: eps})
		}
	}
	want := make([]core.Estimate, len(reqs))
	for i, r := range reqs {
		feats, err := core.FeaturesOf(r.Buf, r.Eps, serialCfg)
		if err != nil {
			t.Fatal(err)
		}
		e, err := est.Estimate(feats)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = e
	}
	return reqs, est, want
}

// TestChaosMatrix drives the batch engine through every injected fault
// kind on the feature path and asserts the resilience invariants: no
// process panic, every failure is a typed per-request error, every success
// is bit-identical to the clean serial path, and the shared cache's
// counters stay balanced with no wedged singleflight slots.
func TestChaosMatrix(t *testing.T) {
	plans := map[string]chaos.Plan{
		"errors":  {Seed: 3, ErrorEvery: 3},
		"panics":  {Seed: 5, PanicEvery: 4},
		"nans":    {Seed: 7, NaNEvery: 5},
		"latency": {Seed: 9, LatencyEvery: 2, Latency: 200 * time.Microsecond},
		"mixed":   {Seed: 11, ErrorEvery: 5, PanicEvery: 7, NaNEvery: 6, LatencyEvery: 3, Latency: 100 * time.Microsecond},
	}
	reqs, est, want := chaosFixture(t)

	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			in := chaos.NewInjector(plan)
			cache := featcache.NewWithCompute(serialCfg,
				in.Dataset(predictors.ComputeDataset), in.EB(predictors.ComputeEB))
			eng := New(est, cache, 8)
			out, err := eng.EstimateAll(reqs)

			var agg *crerr.AggregateError
			if err != nil && !errors.As(err, &agg) {
				t.Fatalf("error is %T (%v), want *crerr.AggregateError", err, err)
			}
			nFailed := 0
			for i := range reqs {
				var ferr error
				if agg != nil {
					ferr = agg.ByIndex(i)
				}
				if ferr != nil {
					nFailed++
					// Every failure is classified under the taxonomy.
					if !errors.Is(ferr, chaos.ErrInjected) &&
						!errors.Is(ferr, crerr.ErrInvalidBuffer) &&
						!errors.Is(ferr, crerr.ErrNonFiniteData) {
						t.Errorf("request %d failed outside the taxonomy: %v", i, ferr)
					}
					continue
				}
				if out[i] != want[i] {
					t.Errorf("request %d: success %+v differs from clean serial %+v", i, out[i], want[i])
				}
			}
			counts := in.Counts()
			if counts.Errors+counts.Panics+counts.NaNs > 0 && nFailed == 0 {
				t.Errorf("%d faults injected but no request failed", counts.Errors+counts.Panics+counts.NaNs)
			}

			st := eng.Stats()
			if st.Failures != uint64(nFailed) {
				t.Errorf("Stats().Failures = %d, aggregate has %d", st.Failures, nFailed)
			}
			// Every request performs exactly one dataset lookup, whether or
			// not it fails: the hit/miss counters must balance.
			cst := st.Cache
			if cst.DatasetHits+cst.DatasetMisses != st.Requests {
				t.Errorf("dataset hits %d + misses %d != %d requests",
					cst.DatasetHits, cst.DatasetMisses, st.Requests)
			}
			if cache.Pending() != 0 {
				t.Errorf("%d wedged singleflight slots after batch", cache.Pending())
			}
			if st.InFlight != 0 {
				t.Errorf("in-flight gauge %d after batch returned", st.InFlight)
			}
		})
	}
}

// TestChaosPanicsBecomeRequestErrors: a panicking feature computation
// surfaces as that request's typed error (with the panic value preserved),
// never as a process crash, and the engine counts it.
func TestChaosPanicsBecomeRequestErrors(t *testing.T) {
	reqs, est, _ := chaosFixture(t)
	in := chaos.NewInjector(chaos.Plan{PanicEvery: 1}) // every compute panics
	cache := featcache.NewWithCompute(serialCfg,
		in.Dataset(predictors.ComputeDataset), in.EB(predictors.ComputeEB))
	eng := New(est, cache, 4)
	_, err := eng.EstimateAll(reqs)
	var agg *crerr.AggregateError
	if !errors.As(err, &agg) {
		t.Fatalf("error is %T, want aggregate", err)
	}
	if len(agg.Errs) != len(reqs) {
		t.Fatalf("%d/%d requests failed, want all", len(agg.Errs), len(reqs))
	}
	for _, ie := range agg.Errs {
		if _, ok := crerr.PanicValue(ie.Err); !ok {
			t.Errorf("request %d: no panic value in %v", ie.Index, ie.Err)
		}
	}
	if cache.Pending() != 0 || cache.Len() != 0 {
		t.Errorf("cache pending=%d len=%d after all-panic batch", cache.Pending(), cache.Len())
	}
}

// TestChaosCancellationMidBatch cancels the context from inside a feature
// computation and asserts prompt, leak-free shutdown: the call returns an
// error matching both crerr.ErrCanceled and context.Canceled, unclaimed
// requests never run, the in-flight gauge drains to zero, and no
// singleflight slot is left wedged.
func TestChaosCancellationMidBatch(t *testing.T) {
	var bufs []*grid.Buffer
	for s := int64(0); s < 32; s++ {
		bufs = append(bufs, testBuffer(32, 32, s))
	}
	est := trainedEstimator(t, bufs[:5], []float64{1e-3})
	reqs := make([]Request, len(bufs))
	for i, b := range bufs {
		reqs[i] = Request{Buf: b, Eps: 1e-3}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var computes atomic.Int32
	cache := featcache.NewWithCompute(serialCfg,
		func(buf *grid.Buffer, cfg predictors.Config) (predictors.DatasetFeatures, error) {
			if computes.Add(1) == 3 {
				cancel()
			}
			return predictors.ComputeDataset(buf, cfg)
		}, nil)
	eng := New(est, cache, 2)
	out, err := eng.EstimateAllContext(ctx, reqs)

	if !errors.Is(err, crerr.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	done := 0
	for _, e := range out {
		if e.CR != 0 {
			done++
		}
	}
	if done >= len(reqs) {
		t.Error("every request completed despite mid-batch cancel")
	}
	st := eng.Stats()
	if st.InFlight != 0 {
		t.Errorf("in-flight gauge %d after canceled batch returned", st.InFlight)
	}
	if st.CanceledBatches != 1 {
		t.Errorf("CanceledBatches = %d, want 1", st.CanceledBatches)
	}
	if cache.Pending() != 0 {
		t.Errorf("%d wedged singleflight slots after cancel", cache.Pending())
	}
}

// TestChaosBatchTimeout: the engine's per-batch deadline cuts a slow batch
// short with an error matching both the taxonomy and
// context.DeadlineExceeded.
func TestChaosBatchTimeout(t *testing.T) {
	var bufs []*grid.Buffer
	for s := int64(0); s < 48; s++ {
		bufs = append(bufs, testBuffer(32, 32, s))
	}
	est := trainedEstimator(t, bufs[:5], []float64{1e-3})
	reqs := make([]Request, len(bufs))
	for i, b := range bufs {
		reqs[i] = Request{Buf: b, Eps: 1e-3}
	}
	in := chaos.NewInjector(chaos.Plan{LatencyEvery: 1, Latency: 2 * time.Millisecond})
	cache := featcache.NewWithCompute(serialCfg,
		in.Dataset(predictors.ComputeDataset), in.EB(predictors.ComputeEB))
	eng := New(est, cache, 2)
	eng.SetBatchTimeout(5 * time.Millisecond)
	_, err := eng.EstimateAll(reqs)
	if !errors.Is(err, crerr.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
	st := eng.Stats()
	if st.CanceledBatches != 1 || st.InFlight != 0 {
		t.Errorf("canceled=%d inflight=%d after deadline", st.CanceledBatches, st.InFlight)
	}

	// Without the timeout the same engine completes the batch.
	eng.SetBatchTimeout(0)
	if _, err := eng.EstimateAll(reqs); err != nil {
		t.Fatalf("untimed batch failed: %v", err)
	}
}
