package batch

import (
	"testing"

	"github.com/crestlab/crest/internal/featcache"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/predictors"
	"github.com/crestlab/crest/internal/testutil"
)

// TestBatchSteadyStateZeroAlloc pins the zero-steady-state-allocation
// contract of the saturated batch path: once the feature cache is warm,
// the pooled per-request feature stage — cache lookup plus vector
// assembly into a recycled buffer, for both precisions — performs no
// allocation at all. This is the stage EstimateAllContext runs per
// request; the model stage and the per-batch result slices are the only
// remaining allocation sites, and both are O(batch), not O(request).
func TestBatchSteadyStateZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("sync.Pool drops items randomly under -race; alloc counts are nondeterministic")
	}
	buf := testBuffer(64, 64, 1)
	buf32 := grid.NewBuffer32(64, 64)
	for i, v := range buf.Data {
		buf32.Data[i] = float32(v)
	}
	const eps = 1e-3
	// SkipProfile keeps the dataset-predictor result slice-free, so a
	// cache MISS on this config is also allocation-bounded; the steady
	// state below is all hits regardless.
	cfg := predictors.Config{Workers: 1, SkipProfile: true}
	cache := featcache.New(cfg)

	feats := make([]float64, 0, 8)
	warm := func() {
		var err error
		feats, err = cache.FeaturesInto(feats[:0], buf, eps)
		if err != nil {
			t.Fatal(err)
		}
		feats, err = cache.Features32Into(feats[:0], buf32, eps)
		if err != nil {
			t.Fatal(err)
		}
	}
	warm()

	allocs := testing.AllocsPerRun(100, func() {
		var err error
		feats, err = cache.FeaturesInto(feats[:0], buf, eps)
		if err != nil {
			t.Fatal(err)
		}
		if len(feats) != 5 {
			t.Fatalf("feature vector length %d", len(feats))
		}
	})
	if allocs != 0 {
		t.Fatalf("warm-cache f64 feature stage: %.1f allocs/op, want 0", allocs)
	}

	allocs = testing.AllocsPerRun(100, func() {
		var err error
		feats, err = cache.Features32Into(feats[:0], buf32, eps)
		if err != nil {
			t.Fatal(err)
		}
		if len(feats) != 5 {
			t.Fatalf("feature vector length %d", len(feats))
		}
	})
	if allocs != 0 {
		t.Fatalf("warm-cache f32 feature stage: %.1f allocs/op, want 0", allocs)
	}
}

// TestFeaturesIntoMatchesFeatures pins that the zero-alloc variant
// returns the exact bits of the allocating one, for both precisions.
func TestFeaturesIntoMatchesFeatures(t *testing.T) {
	buf := testBuffer(48, 56, 2)
	buf32 := grid.NewBuffer32(48, 56)
	for i, v := range buf.Data {
		buf32.Data[i] = float32(v)
	}
	cache := featcache.New(serialCfg)
	const eps = 1e-2

	want, err := cache.Features(buf, eps)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cache.FeaturesInto(nil, buf, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("length %d vs %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("f64 feature %d: %g vs %g", i, got[i], want[i])
		}
	}

	want32, err := cache.Features32(buf32, eps)
	if err != nil {
		t.Fatal(err)
	}
	got32, err := cache.Features32Into(nil, buf32, eps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want32 {
		if want32[i] != got32[i] {
			t.Errorf("f32 feature %d: %g vs %g", i, got32[i], want32[i])
		}
	}
}

// TestEngineFloat32Requests routes Buf32 requests through the engine
// end to end and checks they agree with the direct float32 feature
// path, mixed freely with float64 requests in one batch.
func TestEngineFloat32Requests(t *testing.T) {
	var bufs []*grid.Buffer
	for s := int64(0); s < 4; s++ {
		bufs = append(bufs, testBuffer(32, 32, s))
	}
	epses := []float64{1e-2, 1e-3}
	est := trainedEstimator(t, bufs, epses)

	narrow := make([]*grid.Buffer32, len(bufs))
	for i, b := range bufs {
		narrow[i] = grid.NewBuffer32(b.Rows, b.Cols)
		narrow[i].Dataset, narrow[i].Field, narrow[i].Step = b.Dataset, b.Field, b.Step
		for j, v := range b.Data {
			narrow[i].Data[j] = float32(v)
		}
	}

	var reqs []Request
	for i := range bufs {
		for _, eps := range epses {
			reqs = append(reqs, Request{Buf: bufs[i], Eps: eps})
			reqs = append(reqs, Request{Buf32: narrow[i], Eps: eps})
		}
	}
	cache := featcache.New(serialCfg)
	eng := New(est, cache, 4)
	got, err := eng.EstimateAll(reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check: the f32 request for the same values must produce an
	// estimate close to (but not necessarily equal to) its f64 twin.
	for i := 0; i+1 < len(reqs); i += 2 {
		f64est, f32est := got[i], got[i+1]
		if f32est.CR <= 0 {
			t.Fatalf("request %d: empty f32 estimate", i+1)
		}
		rel := (f32est.CR - f64est.CR) / f64est.CR
		if rel < -0.01 || rel > 0.01 {
			t.Errorf("request %d: f32 CR %.6g vs f64 CR %.6g (drift %.3g)", i, f32est.CR, f64est.CR, rel)
		}
	}

	// A request setting both buffers must fail typed, without touching
	// its siblings.
	bad := append([]Request{}, reqs...)
	bad[0].Buf32 = narrow[0]
	out, err := eng.EstimateAll(bad)
	if err == nil {
		t.Fatal("expected an aggregate error for a double-buffer request")
	}
	if out[1].CR <= 0 {
		t.Error("sibling request failed alongside the invalid one")
	}
}
