package batch

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/crestlab/crest/internal/core"
	"github.com/crestlab/crest/internal/featcache"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/predictors"
)

// serialCfg keeps predictor passes single-threaded for bit-determinism.
var serialCfg = predictors.Config{Workers: 1}

func testBuffer(rows, cols int, seed int64) *grid.Buffer {
	rng := rand.New(rand.NewSource(seed))
	b := grid.NewBuffer(rows, cols)
	for i := range b.Data {
		b.Data[i] = math.Sin(float64(i)/23) + 0.2*rng.NormFloat64()
	}
	b.Dataset, b.Field, b.Step = "batch", "f", int(seed)
	return b
}

// trainedEstimator fits a small estimator on synthetic feature/CR pairs
// derived from real buffers, so Estimate is exercised end-to-end.
func trainedEstimator(t *testing.T, bufs []*grid.Buffer, epses []float64) *core.Estimator {
	t.Helper()
	cache := featcache.New(serialCfg)
	var samples []core.Sample
	for i, b := range bufs {
		for j, eps := range epses {
			feats, err := cache.Features(b, eps)
			if err != nil {
				t.Fatal(err)
			}
			// Synthetic but feature-linked target keeps training stable.
			cr := 2 + 3*math.Abs(feats[4]) + 0.5*float64(i+j)
			samples = append(samples, core.Sample{Features: feats, CR: cr})
		}
	}
	cfg := core.Config{Predictors: serialCfg}
	est, err := core.Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func TestEngineMatchesSerialAcrossWorkerCounts(t *testing.T) {
	var bufs []*grid.Buffer
	for s := int64(0); s < 6; s++ {
		bufs = append(bufs, testBuffer(32, 32, s))
	}
	epses := []float64{1e-2, 1e-3, 1e-4}
	est := trainedEstimator(t, bufs[:4], epses)

	var reqs []Request
	for _, b := range bufs {
		for _, eps := range epses {
			reqs = append(reqs, Request{Buf: b, Eps: eps})
		}
	}

	// Serial reference through the uncached path.
	want := make([]core.Estimate, len(reqs))
	for i, r := range reqs {
		feats, err := core.FeaturesOf(r.Buf, r.Eps, serialCfg)
		if err != nil {
			t.Fatal(err)
		}
		e, err := est.Estimate(feats)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = e
	}

	for _, workers := range []int{1, 2, 4, 16} {
		eng := New(est, featcache.New(serialCfg), workers)
		got, err := eng.EstimateAll(reqs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d request %d: %+v != serial %+v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestEngineStatsCounters(t *testing.T) {
	var bufs []*grid.Buffer
	for s := int64(0); s < 3; s++ {
		bufs = append(bufs, testBuffer(32, 32, s))
	}
	epses := []float64{1e-2, 1e-3, 1e-4}
	est := trainedEstimator(t, bufs, epses[:2])

	var reqs []Request
	for _, b := range bufs {
		for _, eps := range epses {
			reqs = append(reqs, Request{Buf: b, Eps: eps})
		}
	}
	eng := New(est, nil, 4)
	if eng.Workers() != 4 {
		t.Fatalf("Workers() = %d", eng.Workers())
	}
	if _, err := eng.EstimateAll(reqs); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Requests != uint64(len(reqs)) || st.Batches != 1 {
		t.Errorf("requests=%d batches=%d, want %d and 1", st.Requests, st.Batches, len(reqs))
	}
	if st.Cache.DatasetMisses != uint64(len(bufs)) {
		t.Errorf("dataset misses %d, want %d", st.Cache.DatasetMisses, len(bufs))
	}
	// Each buffer appears at len(epses) bounds: its dataset features are
	// hit at least len(epses)-1 times — >1 hit per shared buffer.
	if st.Cache.DatasetHits < uint64(len(bufs)*(len(epses)-1)) {
		t.Errorf("dataset hits %d, want >= %d", st.Cache.DatasetHits, len(bufs)*(len(epses)-1))
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight %d after batch completed", st.InFlight)
	}
	if st.PeakInFlight < 1 || st.PeakInFlight > 4 {
		t.Errorf("peak in-flight %d outside [1, workers]", st.PeakInFlight)
	}
	if st.WallTime <= 0 || st.FeatureTime <= 0 {
		t.Errorf("non-positive stage times: %+v", st)
	}
	if st.String() == "" {
		t.Error("empty Stats string")
	}

	// A second identical batch is all hits.
	if _, err := eng.EstimateAll(reqs); err != nil {
		t.Fatal(err)
	}
	st2 := eng.Stats()
	if st2.Batches != 2 || st2.Requests != 2*uint64(len(reqs)) {
		t.Errorf("after second batch: batches=%d requests=%d", st2.Batches, st2.Requests)
	}
	if st2.Cache.Misses() != st.Cache.Misses() {
		t.Errorf("second batch recomputed: misses %d -> %d", st.Cache.Misses(), st2.Cache.Misses())
	}
}

func TestEngineErrorCarriesRequestIdentity(t *testing.T) {
	var bufs []*grid.Buffer
	for s := int64(0); s < 5; s++ {
		bufs = append(bufs, testBuffer(32, 32, s))
	}
	est := trainedEstimator(t, bufs, []float64{1e-2, 1e-3, 1e-4})
	tiny := grid.NewBuffer(4, 4) // cannot be blocked at K=8
	tiny.Dataset, tiny.Field, tiny.Step = "batch", "bad", 9
	eng := New(est, nil, 2)
	_, err := eng.EstimateAll([]Request{{Buf: bufs[0], Eps: 1e-3}, {Buf: tiny, Eps: 1e-3}})
	if err == nil {
		t.Fatal("expected error for untileable buffer")
	}
	if !strings.Contains(err.Error(), "request 1") || !strings.Contains(err.Error(), "step 9") {
		t.Errorf("error %q lacks request identity", err)
	}
}

func TestEngineEmptyBatch(t *testing.T) {
	var bufs []*grid.Buffer
	for s := int64(0); s < 5; s++ {
		bufs = append(bufs, testBuffer(32, 32, s))
	}
	est := trainedEstimator(t, bufs, []float64{1e-2, 1e-3, 1e-4})
	eng := New(est, nil, 3)
	out, err := eng.EstimateAll(nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: out=%v err=%v", out, err)
	}
	if st := eng.Stats(); st.Batches != 1 || st.Requests != 0 {
		t.Errorf("stats after empty batch: %+v", st)
	}
}
