// Package batch is the concurrent batch-estimation engine: it fans
// buffer × error-bound estimation requests over a bounded worker pool so
// compressibility estimation stays cheap enough to run inline with large
// parallel workloads — the operating point the paper targets with its
// multi-threaded predictor implementation (§IV-C) and its parallel
// aggregated-write use case (§V-E).
//
// Every request's features come from a shared featcache.Cache, so a batch
// touching the same buffer at several bounds (or several batches touching
// the same buffers) computes each buffer's dataset predictors exactly
// once. Results are written by request index, which makes the engine's
// output bit-identical to the serial Estimate path for any worker count
// and any request order (given a deterministic predictor configuration).
package batch

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/crestlab/crest/internal/core"
	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/featcache"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/obs"
	"github.com/crestlab/crest/internal/parallel"
)

// Request asks for one compression-ratio estimate: one buffer at one
// absolute error bound. Exactly one of Buf and Buf32 must be set;
// Buf32 routes the request through the native float32 predictor
// pipeline (no widening copy) and the cache's float32 key space.
type Request struct {
	Buf   *grid.Buffer
	Buf32 *grid.Buffer32
	Eps   float64
}

// featsPool recycles the per-request feature vectors across workers and
// batches; see EstimateAllContext's feature stage.
var featsPool = sync.Pool{New: func() any {
	s := make([]float64, 0, 8)
	return &s
}}

// Engine evaluates batches of requests against one trained estimator,
// sharing a feature cache across requests and batches. An Engine is safe
// for concurrent use; EstimateAll may itself be called from several
// goroutines sharing the cache and counters.
type Engine struct {
	est     *core.Estimator
	cache   *featcache.Cache
	workers int
	// timeout, when positive, bounds every batch: EstimateAllContext
	// derives a per-batch deadline from it.
	timeout time.Duration

	// Counters, all updated atomically.
	requests      uint64
	batches       uint64
	failures      uint64
	panics        uint64
	canceled      uint64
	inFlight      int64
	peakInFlight  int64
	featureNanos  int64
	estimateNanos int64
	wallNanos     int64

	// Per-stage latency histograms on the observability registry:
	// feature extraction (cache lookup + predictor computation on miss),
	// mixture-model inference, and the whole per-request path.
	hFeature *obs.Histogram
	hEstim   *obs.Histogram
	hRequest *obs.Histogram
}

// New returns an engine over a trained estimator and a shared feature
// cache. workers <= 0 selects GOMAXPROCS. The cache must have been built
// with the same predictor configuration the estimator was trained on; nil
// creates a private cache from the estimator's default configuration.
func New(est *core.Estimator, cache *featcache.Cache, workers int) *Engine {
	if cache == nil {
		cache = featcache.New(est.PredictorConfig())
	}
	e := &Engine{est: est, cache: cache, workers: parallel.Workers(workers)}
	e.SetObs(nil)
	return e
}

// SetObs re-points the engine's stage-latency histograms at registry r
// (nil selects the process default). Call before the engine is shared
// across goroutines; the Stats() counters are unaffected.
func (e *Engine) SetObs(r *obs.Registry) {
	if r == nil {
		r = obs.Default()
	}
	e.hFeature = r.Histogram("batch_feature_seconds", nil)
	e.hEstim = r.Histogram("batch_estimate_seconds", nil)
	e.hRequest = r.Histogram("batch_request_seconds", nil)
}

// Workers returns the resolved worker-pool bound.
func (e *Engine) Workers() int { return e.workers }

// Cache returns the engine's shared feature cache.
func (e *Engine) Cache() *featcache.Cache { return e.cache }

// Estimator returns the wrapped estimator, so the serving layer can reach
// estimator-level facilities (streaming ingest, online recalibration)
// behind the batch engine.
func (e *Engine) Estimator() *core.Estimator { return e.est }

// SetBatchTimeout bounds every subsequent batch with a per-batch deadline
// (zero disables). It composes with any deadline already on the caller's
// context: the earlier of the two wins.
func (e *Engine) SetBatchTimeout(d time.Duration) { e.timeout = d }

// EstimateAll evaluates every request and returns the estimates in request
// order; see EstimateAllContext for the failure contract.
func (e *Engine) EstimateAll(reqs []Request) ([]core.Estimate, error) {
	return e.EstimateAllContext(context.Background(), reqs)
}

// EstimateAllContext evaluates every request, fanning out over the worker
// pool with dynamic scheduling (per-buffer cost is irregular); each result
// lands in its own slot, so the output is independent of scheduling and
// bit-identical to the serial Estimate path.
//
// Failure contract: the engine degrades per-request, never per-batch. A
// request that fails — invalid buffer, non-finite data, feature or model
// error, recovered worker panic — contributes a typed, index-labelled
// error; every other request still completes and its estimate is returned.
// The returned error is a *crerr.AggregateError preserving every failing
// index (match classes with errors.Is, recover indices with errors.As);
// out[i] is valid exactly when the aggregate has no entry for i.
//
// Cancellation: once ctx is done (or the engine's per-batch timeout
// expires), workers finish the request they are running and drain — no
// goroutine outlives the call and the in-flight gauge returns to zero.
// The estimates completed before cancellation are returned alongside an
// error matching crerr.ErrCanceled.
func (e *Engine) EstimateAllContext(ctx context.Context, reqs []Request) ([]core.Estimate, error) {
	if e.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.timeout)
		defer cancel()
	}
	start := time.Now()
	out := make([]core.Estimate, len(reqs))
	errs := make([]error, len(reqs))
	cerr := parallel.ForEachDynamicCtx(ctx, len(reqs), e.workers, func(i int) {
		cur := atomic.AddInt64(&e.inFlight, 1)
		for {
			peak := atomic.LoadInt64(&e.peakInFlight)
			if cur <= peak || atomic.CompareAndSwapInt64(&e.peakInFlight, peak, cur) {
				break
			}
		}
		defer atomic.AddInt64(&e.inFlight, -1)
		// Panic isolation: a worker panic (malformed buffer slipping past
		// validation, injected fault) becomes this request's error, not a
		// process crash, and cannot take sibling requests down with it.
		defer func() {
			if v := recover(); v != nil {
				atomic.AddUint64(&e.panics, 1)
				errs[i] = crerr.Recovered(v, crerr.ErrInvalidBuffer)
			}
		}()

		// Feature vectors are assembled into recycled per-worker buffers
		// so a warm-cache request allocates nothing in the feature stage.
		fp := featsPool.Get().(*[]float64)
		defer featsPool.Put(fp)
		t0 := time.Now()
		var feats []float64
		var err error
		switch {
		case reqs[i].Buf != nil && reqs[i].Buf32 != nil:
			err = fmt.Errorf("%w: request sets both Buf and Buf32", crerr.ErrInvalidBuffer)
		case reqs[i].Buf32 != nil:
			feats, err = e.cache.Features32Into((*fp)[:0], reqs[i].Buf32, reqs[i].Eps)
		default:
			feats, err = e.cache.FeaturesInto((*fp)[:0], reqs[i].Buf, reqs[i].Eps)
		}
		if cap(feats) > cap(*fp) {
			*fp = feats
		}
		featDur := time.Since(t0)
		atomic.AddInt64(&e.featureNanos, int64(featDur))
		e.hFeature.Observe(featDur.Seconds())
		if err != nil {
			errs[i] = err
			return
		}
		t1 := time.Now()
		est, err := e.est.Estimate(feats)
		estDur := time.Since(t1)
		atomic.AddInt64(&e.estimateNanos, int64(estDur))
		e.hEstim.Observe(estDur.Seconds())
		e.hRequest.Observe(time.Since(t0).Seconds())
		if err != nil {
			errs[i] = err
			return
		}
		out[i] = est
	})
	atomic.AddUint64(&e.requests, uint64(len(reqs)))
	atomic.AddUint64(&e.batches, 1)
	atomic.AddInt64(&e.wallNanos, int64(time.Since(start)))

	// Decorate failures with the request identity — and the tracing
	// request ID when the context carries one, so a batch error can be
	// joined against the server's slow-request log and the client's
	// X-Request-ID header.
	rid := obs.RequestID(ctx)
	nFailed := 0
	for i, err := range errs {
		if err != nil {
			nFailed++
			var dataset, field string
			var step int
			switch {
			case reqs[i].Buf != nil:
				dataset, field, step = reqs[i].Buf.Dataset, reqs[i].Buf.Field, reqs[i].Buf.Step
			case reqs[i].Buf32 != nil:
				dataset, field, step = reqs[i].Buf32.Dataset, reqs[i].Buf32.Field, reqs[i].Buf32.Step
			default:
				continue
			}
			if rid != "" {
				errs[i] = fmt.Errorf("batch: rid %s: %s/%s step %d @ eps %g: %w",
					rid, dataset, field, step, reqs[i].Eps, err)
			} else {
				errs[i] = fmt.Errorf("batch: %s/%s step %d @ eps %g: %w",
					dataset, field, step, reqs[i].Eps, err)
			}
		}
	}
	atomic.AddUint64(&e.failures, uint64(nFailed))
	if cerr != nil {
		atomic.AddUint64(&e.canceled, 1)
		if rid != "" {
			return out, fmt.Errorf("batch: rid %s: %w", rid, crerr.Canceled(cerr))
		}
		return out, crerr.Canceled(cerr)
	}
	return out, crerr.Aggregate(errs)
}

// Stats is a point-in-time snapshot of the engine counters: request and
// batch totals, shared-cache hit/miss counters, worker occupancy, and the
// cumulative wall time of each pipeline stage (feature computation,
// model evaluation) summed across workers, plus the end-to-end batch wall
// time.
type Stats struct {
	Requests uint64
	Batches  uint64

	// Failures counts requests that returned a per-request error;
	// RecoveredPanics counts the subset whose failure was a recovered
	// worker panic; CanceledBatches counts batches cut short by
	// cancellation or deadline.
	Failures        uint64
	RecoveredPanics uint64
	CanceledBatches uint64

	Cache featcache.Stats

	InFlight     int64 // workers busy right now
	PeakInFlight int64 // highest concurrent occupancy observed

	FeatureTime  time.Duration // Σ per-request feature stage
	EstimateTime time.Duration // Σ per-request model stage
	WallTime     time.Duration // Σ per-batch end-to-end
}

// Stats returns a snapshot of the engine and cache counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Requests:        atomic.LoadUint64(&e.requests),
		Batches:         atomic.LoadUint64(&e.batches),
		Failures:        atomic.LoadUint64(&e.failures),
		RecoveredPanics: atomic.LoadUint64(&e.panics),
		CanceledBatches: atomic.LoadUint64(&e.canceled),
		Cache:           e.cache.Stats(),
		InFlight:        atomic.LoadInt64(&e.inFlight),
		PeakInFlight:    atomic.LoadInt64(&e.peakInFlight),
		FeatureTime:     time.Duration(atomic.LoadInt64(&e.featureNanos)),
		EstimateTime:    time.Duration(atomic.LoadInt64(&e.estimateNanos)),
		WallTime:        time.Duration(atomic.LoadInt64(&e.wallNanos)),
	}
}

func (s Stats) String() string {
	return fmt.Sprintf(
		"requests=%d batches=%d failures=%d panics=%d canceled=%d cache[dset %d/%d eb %d/%d hit/miss] peak_workers=%d feature=%s estimate=%s wall=%s",
		s.Requests, s.Batches, s.Failures, s.RecoveredPanics, s.CanceledBatches,
		s.Cache.DatasetHits, s.Cache.DatasetMisses, s.Cache.EBHits, s.Cache.EBMisses,
		s.PeakInFlight, s.FeatureTime.Round(time.Microsecond),
		s.EstimateTime.Round(time.Microsecond), s.WallTime.Round(time.Microsecond))
}
