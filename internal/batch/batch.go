// Package batch is the concurrent batch-estimation engine: it fans
// buffer × error-bound estimation requests over a bounded worker pool so
// compressibility estimation stays cheap enough to run inline with large
// parallel workloads — the operating point the paper targets with its
// multi-threaded predictor implementation (§IV-C) and its parallel
// aggregated-write use case (§V-E).
//
// Every request's features come from a shared featcache.Cache, so a batch
// touching the same buffer at several bounds (or several batches touching
// the same buffers) computes each buffer's dataset predictors exactly
// once. Results are written by request index, which makes the engine's
// output bit-identical to the serial Estimate path for any worker count
// and any request order (given a deterministic predictor configuration).
package batch

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/crestlab/crest/internal/core"
	"github.com/crestlab/crest/internal/featcache"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/parallel"
)

// Request asks for one compression-ratio estimate: one buffer at one
// absolute error bound.
type Request struct {
	Buf *grid.Buffer
	Eps float64
}

// Engine evaluates batches of requests against one trained estimator,
// sharing a feature cache across requests and batches. An Engine is safe
// for concurrent use; EstimateAll may itself be called from several
// goroutines sharing the cache and counters.
type Engine struct {
	est     *core.Estimator
	cache   *featcache.Cache
	workers int

	// Counters, all updated atomically.
	requests     uint64
	batches      uint64
	inFlight     int64
	peakInFlight int64
	featureNanos int64
	estimateNanos int64
	wallNanos    int64
}

// New returns an engine over a trained estimator and a shared feature
// cache. workers <= 0 selects GOMAXPROCS. The cache must have been built
// with the same predictor configuration the estimator was trained on; nil
// creates a private cache from the estimator's default configuration.
func New(est *core.Estimator, cache *featcache.Cache, workers int) *Engine {
	if cache == nil {
		cache = featcache.New(est.PredictorConfig())
	}
	return &Engine{est: est, cache: cache, workers: parallel.Workers(workers)}
}

// Workers returns the resolved worker-pool bound.
func (e *Engine) Workers() int { return e.workers }

// Cache returns the engine's shared feature cache.
func (e *Engine) Cache() *featcache.Cache { return e.cache }

// EstimateAll evaluates every request and returns the estimates in request
// order. Requests fan out over the worker pool with dynamic scheduling
// (per-buffer cost is irregular); each result lands in its own slot, so
// the output is independent of scheduling. On failure the error of the
// lowest-indexed failing request is returned.
func (e *Engine) EstimateAll(reqs []Request) ([]core.Estimate, error) {
	start := time.Now()
	out := make([]core.Estimate, len(reqs))
	errs := make([]error, len(reqs))
	parallel.ForEachDynamic(len(reqs), e.workers, func(i int) {
		cur := atomic.AddInt64(&e.inFlight, 1)
		for {
			peak := atomic.LoadInt64(&e.peakInFlight)
			if cur <= peak || atomic.CompareAndSwapInt64(&e.peakInFlight, peak, cur) {
				break
			}
		}
		defer atomic.AddInt64(&e.inFlight, -1)

		t0 := time.Now()
		feats, err := e.cache.Features(reqs[i].Buf, reqs[i].Eps)
		atomic.AddInt64(&e.featureNanos, int64(time.Since(t0)))
		if err != nil {
			errs[i] = err
			return
		}
		t1 := time.Now()
		est, err := e.est.Estimate(feats)
		atomic.AddInt64(&e.estimateNanos, int64(time.Since(t1)))
		if err != nil {
			errs[i] = err
			return
		}
		out[i] = est
	})
	atomic.AddUint64(&e.requests, uint64(len(reqs)))
	atomic.AddUint64(&e.batches, 1)
	atomic.AddInt64(&e.wallNanos, int64(time.Since(start)))
	for i, err := range errs {
		if err != nil {
			b := reqs[i].Buf
			return nil, fmt.Errorf("batch: request %d (%s/%s step %d @ eps %g): %w",
				i, b.Dataset, b.Field, b.Step, reqs[i].Eps, err)
		}
	}
	return out, nil
}

// Stats is a point-in-time snapshot of the engine counters: request and
// batch totals, shared-cache hit/miss counters, worker occupancy, and the
// cumulative wall time of each pipeline stage (feature computation,
// model evaluation) summed across workers, plus the end-to-end batch wall
// time.
type Stats struct {
	Requests uint64
	Batches  uint64

	Cache featcache.Stats

	InFlight     int64 // workers busy right now
	PeakInFlight int64 // highest concurrent occupancy observed

	FeatureTime  time.Duration // Σ per-request feature stage
	EstimateTime time.Duration // Σ per-request model stage
	WallTime     time.Duration // Σ per-batch end-to-end
}

// Stats returns a snapshot of the engine and cache counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Requests:     atomic.LoadUint64(&e.requests),
		Batches:      atomic.LoadUint64(&e.batches),
		Cache:        e.cache.Stats(),
		InFlight:     atomic.LoadInt64(&e.inFlight),
		PeakInFlight: atomic.LoadInt64(&e.peakInFlight),
		FeatureTime:  time.Duration(atomic.LoadInt64(&e.featureNanos)),
		EstimateTime: time.Duration(atomic.LoadInt64(&e.estimateNanos)),
		WallTime:     time.Duration(atomic.LoadInt64(&e.wallNanos)),
	}
}

func (s Stats) String() string {
	return fmt.Sprintf(
		"requests=%d batches=%d cache[dset %d/%d eb %d/%d hit/miss] peak_workers=%d feature=%s estimate=%s wall=%s",
		s.Requests, s.Batches,
		s.Cache.DatasetHits, s.Cache.DatasetMisses, s.Cache.EBHits, s.Cache.EBMisses,
		s.PeakInFlight, s.FeatureTime.Round(time.Microsecond),
		s.EstimateTime.Round(time.Microsecond), s.WallTime.Round(time.Microsecond))
}
