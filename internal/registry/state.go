package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"time"

	"github.com/crestlab/crest/internal/vfs"
)

// stateFile is the per-lineage control file, written atomically next to
// the snapshots it points into.
const stateFile = "state.json"

// stateFormat is the control-file schema version.
const stateFormat = 1

// lineageState is the durable control state of one lineage: which version
// serves, which version is the proven fallback, which candidates were
// rejected, and — when a canary is in flight — the full comparison window,
// so a crash mid-rollout resumes the split and the evidence instead of
// restarting the experiment.
type lineageState struct {
	Format int `json:"format"`

	// Active is the serving version's sequence number; LKG is the
	// last-known-good version promotion preserves as the rollback target
	// (0: none). Bad lists candidate sequences that were rolled back for
	// regression — never re-adopted, eligible for pruning.
	Active int   `json:"active"`
	LKG    int   `json:"lkg,omitempty"`
	Bad    []int `json:"bad,omitempty"`

	// Canary, when present, is the in-flight rollout.
	Canary *canaryState `json:"canary,omitempty"`

	// Decisions is the capped, newest-last audit log of lifecycle
	// transitions.
	Decisions []Decision `json:"decisions,omitempty"`
}

// canaryState is the persisted half of a canary rollout: the candidate,
// the deterministic split position, and the sliding comparison windows.
type canaryState struct {
	Candidate int     `json:"candidate"`
	Fraction  float64 `json:"fraction"`

	// Requests is the split counter: request n goes to the candidate
	// exactly when floor(fraction·(n+1)) > floor(fraction·n), so the
	// split is deterministic and resumes exactly where it stopped.
	Requests       uint64 `json:"requests"`
	CanaryRequests uint64 `json:"canary_requests"`

	// Observed counts feedback observations scored against both models.
	Observed int `json:"observed"`

	// ActiveAPE and CandAPE are the rolling APE windows (percent),
	// newest-last, capped at the configured window.
	ActiveAPE []float64 `json:"active_ape,omitempty"`
	CandAPE   []float64 `json:"cand_ape,omitempty"`

	// Coverage tallies over the same window of observations.
	ActiveHits int `json:"active_hits"`
	CandHits   int `json:"cand_hits"`
	WindowObs  int `json:"window_obs"`

	// WinStreak counts consecutive evaluations the candidate won; the
	// configured sustain threshold promotes.
	WinStreak int `json:"win_streak"`
}

// Decision is one audit-log entry of a lifecycle transition.
type Decision struct {
	Time   time.Time `json:"time"`
	Action string    `json:"action"` // adopt|publish|promote|rollback|retrain
	From   int       `json:"from,omitempty"`
	To     int       `json:"to,omitempty"`
	Auto   bool      `json:"auto,omitempty"`
	Reason string    `json:"reason,omitempty"`
}

// maxDecisions caps the persisted audit log.
const maxDecisions = 64

func (st *lineageState) logDecision(d Decision) {
	st.Decisions = append(st.Decisions, d)
	if len(st.Decisions) > maxDecisions {
		st.Decisions = st.Decisions[len(st.Decisions)-maxDecisions:]
	}
}

func (st *lineageState) isBad(seq int) bool {
	for _, b := range st.Bad {
		if b == seq {
			return true
		}
	}
	return false
}

// saveState writes the control file crash-safely.
func saveState(fsys vfs.FS, dir string, st *lineageState) error {
	st.Format = stateFormat
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("registry: encode state: %w", err)
	}
	if err := vfs.WriteFileAtomic(fsys, filepath.Join(dir, stateFile), data); err != nil {
		return fmt.Errorf("registry: write state %s: %w", dir, err)
	}
	return nil
}

// loadState reads the control file. A missing file returns (nil, nil) —
// the adopt-newest path; a corrupt file returns an error the caller
// degrades from (adopt-newest with the history lost, never a crash).
func loadState(fsys vfs.FS, dir string) (*lineageState, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, stateFile))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("registry: read state %s: %w", dir, err)
	}
	var st lineageState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("registry: state %s corrupt: %w", dir, err)
	}
	if st.Format != stateFormat {
		return nil, fmt.Errorf("registry: state %s is format %d, this build reads %d", dir, st.Format, stateFormat)
	}
	if st.Active < 0 || st.LKG < 0 {
		return nil, fmt.Errorf("registry: state %s has negative sequence", dir)
	}
	if st.Canary != nil {
		c := st.Canary
		if c.Candidate <= 0 || c.Fraction <= 0 || c.Fraction > 1 {
			return nil, fmt.Errorf("registry: state %s has invalid canary (candidate %d, fraction %g)",
				dir, c.Candidate, c.Fraction)
		}
	}
	return &st, nil
}
