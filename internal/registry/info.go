package registry

// CanaryInfo is the observable state of an in-flight canary rollout.
type CanaryInfo struct {
	Candidate      int     `json:"candidate"`
	Fraction       float64 `json:"fraction"`
	Requests       uint64  `json:"requests"`
	CanaryRequests uint64  `json:"canary_requests"`
	Observed       int     `json:"observed"`
	ActiveMedAPE   float64 `json:"active_medape"`
	CandMedAPE     float64 `json:"candidate_medape"`
	ActiveCoverage float64 `json:"active_coverage"`
	CandCoverage   float64 `json:"candidate_coverage"`
	WinStreak      int     `json:"win_streak"`
}

// LineageInfo is the observable state of one lineage, the payload of the
// /v1/models admin endpoint and `crest models list`.
type LineageInfo struct {
	Name       string      `json:"name"`
	Active     int         `json:"active"`
	LKG        int         `json:"lkg,omitempty"`
	Bad        []int       `json:"bad,omitempty"`
	Canary     *CanaryInfo `json:"canary,omitempty"`
	Retraining bool        `json:"retraining,omitempty"`
	Decisions  []Decision  `json:"decisions,omitempty"`
}

// Info returns the observable state of the named lineage.
func (r *Registry) Info(name string) (LineageInfo, error) {
	ln, err := r.lineage(name)
	if err != nil {
		return LineageInfo{}, err
	}
	ln.mu.Lock()
	defer ln.mu.Unlock()
	return infoLocked(ln), nil
}

// InfoAll returns the observable state of every lineage, sorted by name.
func (r *Registry) InfoAll() []LineageInfo {
	out := make([]LineageInfo, 0)
	for _, name := range r.Lineages() {
		if info, err := r.Info(name); err == nil {
			out = append(out, info)
		}
	}
	return out
}

func infoLocked(ln *lineage) LineageInfo {
	info := LineageInfo{
		Name:       ln.name,
		Active:     ln.st.Active,
		LKG:        ln.st.LKG,
		Bad:        append([]int(nil), ln.st.Bad...),
		Retraining: ln.retrain != nil && ln.retrain.inFlight,
		Decisions:  append([]Decision(nil), ln.st.Decisions...),
	}
	if c := ln.st.Canary; c != nil {
		ci := &CanaryInfo{
			Candidate:      c.Candidate,
			Fraction:       c.Fraction,
			Requests:       c.Requests,
			CanaryRequests: c.CanaryRequests,
			Observed:       c.Observed,
			WinStreak:      c.WinStreak,
		}
		if len(c.ActiveAPE) > 0 {
			ci.ActiveMedAPE = median(c.ActiveAPE)
		}
		if len(c.CandAPE) > 0 {
			ci.CandMedAPE = median(c.CandAPE)
		}
		if c.WindowObs > 0 {
			ci.ActiveCoverage = float64(c.ActiveHits) / float64(c.WindowObs)
			ci.CandCoverage = float64(c.CandHits) / float64(c.WindowObs)
		}
		info.Canary = ci
	}
	return info
}
