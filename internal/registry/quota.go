package registry

import (
	"math"
	"sync"
	"time"
)

// TenantQuota is one tenant's admission budget: a token bucket refilled
// at Rate tokens/second with capacity Burst. A zero Rate means unlimited.
type TenantQuota struct {
	Rate  float64
	Burst float64
}

func (q TenantQuota) withDefaults() TenantQuota {
	if q.Rate > 0 && q.Burst <= 0 {
		q.Burst = math.Max(1, q.Rate)
	}
	return q
}

// QuotaConfig configures per-tenant admission quotas. Quota exhaustion is
// the tenant's backpressure (429 + Retry-After), layered in front of the
// server's inflight/queue admission control (503): a tenant over budget
// is rejected before it can occupy queue slots other tenants need.
type QuotaConfig struct {
	// Default applies to tenants without an explicit entry. The zero
	// value (Rate 0) admits everything — quotas are opt-in.
	Default TenantQuota

	// Tenants maps tenant name to its quota, overriding Default.
	Tenants map[string]TenantQuota

	// MaxTenants bounds the bucket table (default 1024). Tenants beyond
	// the bound share one overflow bucket sized like Default, so an
	// adversarial flood of fresh tenant names cannot grow memory — it
	// only starves itself.
	MaxTenants int
}

// defaultMaxTenants bounds the per-tenant bucket table.
const defaultMaxTenants = 1024

// bucket is one token bucket.
type bucket struct {
	quota  TenantQuota
	tokens float64
	last   time.Time
}

// take refills the bucket to now and tries to spend one token. On denial
// it returns the wait until a token accrues.
func (b *bucket) take(now time.Time) (time.Duration, bool) {
	if b.quota.Rate <= 0 {
		return 0, true
	}
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.quota.Rate
	} else {
		b.tokens = b.quota.Burst
	}
	if b.tokens > b.quota.Burst {
		b.tokens = b.quota.Burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	wait := time.Duration((1 - b.tokens) / b.quota.Rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	return wait, false
}

// Quotas is the tenant admission table.
type Quotas struct {
	mu       sync.Mutex
	cfg      QuotaConfig
	now      func() time.Time
	buckets  map[string]*bucket
	overflow bucket
}

func newQuotas(cfg QuotaConfig, now func() time.Time) *Quotas {
	cfg.Default = cfg.Default.withDefaults()
	for name, q := range cfg.Tenants {
		cfg.Tenants[name] = q.withDefaults()
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = defaultMaxTenants
	}
	return &Quotas{
		cfg:      cfg,
		now:      now,
		buckets:  make(map[string]*bucket),
		overflow: bucket{quota: cfg.Default},
	}
}

// Allow spends one admission token of the tenant's bucket. It returns
// ok=true when admitted, else the Retry-After duration.
func (q *Quotas) Allow(tenant string) (time.Duration, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[tenant]
	if b == nil {
		if len(q.buckets) >= q.cfg.MaxTenants {
			b = &q.overflow
		} else {
			quota, ok := q.cfg.Tenants[tenant]
			if !ok {
				quota = q.cfg.Default
			}
			b = &bucket{quota: quota}
			q.buckets[tenant] = b
		}
	}
	return b.take(q.now())
}
