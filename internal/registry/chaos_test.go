package registry

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/crestlab/crest/internal/chaos"
	"github.com/crestlab/crest/internal/vfs"
)

// TestTornWriteChurnNeverLosesServingPath is the registry half of the
// retention acceptance scenario: with every third write torn (half the
// bytes persisted, success reported), a churn of publishes and feedback
// must never leave a lineage unservable, and pruning must never remove
// the snapshot a reopened registry ends up serving — the digest check
// classifies torn files as corrupt garbage, everything else is kept.
func TestTornWriteChurnNeverLosesServingPath(t *testing.T) {
	root := t.TempDir()
	torn := chaos.WrapFS(vfs.OS, chaos.FSPlan{Seed: 5, ShortWriteEvery: 3})

	reg := openTest(t, root, func(c *Config) {
		c.FS = torn
		c.Keep = 2
		c.Canary = fastCanary()
	})
	if _, err := reg.Publish("ln", goodEstimator(t)); err != nil {
		t.Fatalf("first publish: %v", err)
	}
	// Churn: publishes may silently write torn snapshots or torn state;
	// feedback drives canary decisions between them. None of it may
	// panic or wedge the lineage.
	feed := feedbackStream(99)
	for i := 0; i < 6; i++ {
		if _, err := reg.Publish("ln", goodEstimator(t)); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		for j := 0; j < 30; j++ {
			f, cr := feed()
			if _, err := reg.ObserveFeedback("ln", f, cr); err != nil {
				t.Fatalf("feedback: %v", err)
			}
		}
		if _, err := reg.Route("ln"); err != nil {
			t.Fatalf("route during churn: %v", err)
		}
	}
	if cnt := torn.Counts(); cnt.ShortWrites == 0 {
		t.Fatal("chaos plan injected no torn writes; the test exercised nothing")
	}
	reg.Close()

	// Reopen on the real filesystem: startup must degrade past any torn
	// snapshot/state to a valid serving version.
	reg2 := openTest(t, root, func(c *Config) { c.Keep = 2; c.Canary = fastCanary() })
	defer reg2.Close()
	rt, err := reg2.Route("ln")
	if err != nil {
		t.Fatalf("route after torn-write churn: %v", err)
	}
	if _, err := rt.Engine.Estimator().Estimate([]float64{0.1, 0.2, 0.3, 0.4, 0.5}); err != nil {
		t.Fatalf("serving estimator broken: %v", err)
	}

	// The snapshot backing the serving version survived pruning.
	dir := filepath.Join(root, "ln")
	if _, err := os.Stat(filepath.Join(dir, seqPath("", rt.Seq))); err != nil {
		entries, _ := os.ReadDir(dir)
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("serving v%d has no snapshot on disk (%v): %v", rt.Seq, names, err)
	}
}
