package registry

import (
	"fmt"
	"math"
	"time"

	"github.com/crestlab/crest/internal/conformal"
)

// CanaryConfig tunes the canary controller: how much traffic the
// candidate sees, how much evidence a decision needs, and the regression
// and win margins.
type CanaryConfig struct {
	// Fraction of requests split to the candidate (default 0.1).
	Fraction float64

	// Window is the rolling APE comparison window in observations
	// (default 128).
	Window int

	// MinObs is the minimum number of scored observations before any
	// decision (default 24).
	MinObs int

	// EvalEvery re-evaluates the comparison every N observations once
	// MinObs is reached (default 8).
	EvalEvery int

	// RegressFactor and APESlack set the rollback bound: the candidate
	// regresses when its MedAPE exceeds RegressFactor·active + APESlack
	// percentage points (defaults 1.25 and 2.0). The multiplicative term
	// scales with how hard the workload is; the additive slack keeps tiny
	// absolute differences from triggering on easy workloads.
	RegressFactor float64
	APESlack      float64

	// CoverageSlack is the tolerated conformal-coverage deficit: the
	// candidate regresses when its empirical coverage falls more than
	// this far below the active model's (default 0.10).
	CoverageSlack float64

	// SustainEvals is how many consecutive winning evaluations promote
	// the candidate (default 3).
	SustainEvals int

	// PersistEvery bounds replay after a crash: canary counters are
	// persisted at least every N observations (default 16) in addition to
	// at every decision.
	PersistEvery int
}

func (c CanaryConfig) withDefaults() CanaryConfig {
	if c.Fraction <= 0 || c.Fraction > 1 {
		c.Fraction = 0.1
	}
	if c.Window <= 0 {
		c.Window = 128
	}
	if c.MinObs <= 0 {
		c.MinObs = 24
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 8
	}
	if c.RegressFactor <= 0 {
		c.RegressFactor = 1.25
	}
	if c.APESlack <= 0 {
		c.APESlack = 2.0
	}
	if c.CoverageSlack <= 0 {
		c.CoverageSlack = 0.10
	}
	if c.SustainEvals <= 0 {
		c.SustainEvals = 3
	}
	if c.PersistEvery <= 0 {
		c.PersistEvery = 16
	}
	return c
}

// FeedbackResult reports what one feedback observation did to the
// lineage: the online-recalibration outcome of the active model, the
// canary decision (if this observation triggered one), and whether drift
// kicked off a background retrain.
type FeedbackResult struct {
	Lineage   string
	ActiveSeq int

	// Online carries the active model's rolling conformal stats when
	// online recalibration is enabled.
	Online       *conformal.OnlineStats
	Recalibrated bool

	// Decision is "", "promote" or "rollback".
	Decision string

	// RetrainStarted reports that this observation's drift check kicked
	// off a background retrain.
	RetrainStarted bool
}

// ObserveFeedback scores one ground-truth observation (feature vector +
// actual compression ratio) against the lineage's active model — feeding
// its online conformal recalibration when enabled — and, when a canary is
// in flight, against the candidate as well, updating the comparison
// windows and possibly deciding the rollout. Decisions persist the
// control state before taking effect, so they survive a crash.
func (r *Registry) ObserveFeedback(name string, features []float64, actualCR float64) (FeedbackResult, error) {
	ln, err := r.lineage(name)
	if err != nil {
		return FeedbackResult{}, err
	}
	ln.mu.Lock()
	defer ln.mu.Unlock()
	res := FeedbackResult{Lineage: ln.name, ActiveSeq: ln.st.Active}

	activeEst, estErr := ln.active.est.Estimate(features)
	if estErr != nil {
		return res, estErr
	}
	if ln.active.est.OnlineRecalibrationEnabled() {
		if st, recal, oerr := ln.active.est.ObserveActual(features, actualCR); oerr == nil {
			res.Online = &st
			res.Recalibrated = recal
		}
	}
	ln.drift.observe(ape(activeEst.CR, actualCR))
	res.RetrainStarted = r.maybeRetrainLocked(ln)

	c := ln.st.Canary
	if c == nil || ln.candidate == nil {
		return res, nil
	}
	candEst, cerr := ln.candidate.est.Estimate(features)
	if cerr != nil {
		// A candidate that cannot score live traffic is regressed by
		// definition.
		r.rollbackCanaryLocked(ln, true, "candidate failed to estimate: "+cerr.Error())
		res.Decision = "rollback"
		return res, nil
	}
	if ln.candidate.est.OnlineRecalibrationEnabled() {
		ln.candidate.est.ObserveActual(features, actualCR) //nolint:errcheck // advisory
	}

	cc := r.cfg.Canary
	c.ActiveAPE = pushRing(c.ActiveAPE, ape(activeEst.CR, actualCR), cc.Window)
	c.CandAPE = pushRing(c.CandAPE, ape(candEst.CR, actualCR), cc.Window)
	if activeEst.Contains(actualCR) {
		c.ActiveHits++
	}
	if candEst.Contains(actualCR) {
		c.CandHits++
	}
	c.WindowObs++
	c.Observed++
	ln.unsaved++

	if c.Observed >= cc.MinObs && c.Observed%cc.EvalEvery == 0 {
		start := time.Now()
		res.Decision = r.decideLocked(ln)
		r.obs.decisionSecs.Observe(time.Since(start).Seconds())
	}
	if res.Decision == "" && ln.unsaved >= cc.PersistEvery {
		if err := saveState(r.cfg.FS, ln.dir, ln.st); err != nil {
			r.cfg.Logf("registry: %s: canary persist: %v", ln.name, err)
		} else {
			ln.unsaved = 0
		}
	}
	if res.Decision != "" {
		ln.unsaved = 0
	}
	return res, nil
}

// decideLocked evaluates the canary comparison and returns "", "promote"
// or "rollback". Caller holds ln.mu with a canary in flight.
func (r *Registry) decideLocked(ln *lineage) string {
	c := ln.st.Canary
	cc := r.cfg.Canary
	activeMed := median(c.ActiveAPE)
	candMed := median(c.CandAPE)
	activeCov := float64(c.ActiveHits) / float64(c.WindowObs)
	candCov := float64(c.CandHits) / float64(c.WindowObs)

	regressed := candMed > activeMed*cc.RegressFactor+cc.APESlack ||
		candCov < activeCov-cc.CoverageSlack
	if regressed {
		r.rollbackCanaryLocked(ln, true, decisionReason(activeMed, candMed, activeCov, candCov))
		return "rollback"
	}
	win := candMed <= activeMed+cc.APESlack && candCov >= activeCov-cc.CoverageSlack/2
	if !win {
		c.WinStreak = 0
		return ""
	}
	c.WinStreak++
	if c.WinStreak < cc.SustainEvals {
		return ""
	}
	cand := ln.candidate
	r.promoteLocked(ln, cand, true, decisionReason(activeMed, candMed, activeCov, candCov))
	return "promote"
}

func decisionReason(activeMed, candMed, activeCov, candCov float64) string {
	return fmt.Sprintf("medape active %.1f%% vs candidate %.1f%%, coverage %.0f%% vs %.0f%%",
		activeMed, candMed, activeCov*100, candCov*100)
}

// ape is the absolute percentage error of estimate est against actual,
// with actual capped at the training CR cap so a wild outlier does not
// dominate the window. actual is validated positive by the caller's
// request decode.
func ape(est, actual float64) float64 {
	if actual <= 0 || math.IsNaN(actual) || math.IsInf(actual, 0) {
		return math.NaN()
	}
	return 100 * math.Abs(est-actual) / actual
}

// pushRing appends v to the ring, trimming to the window from the front.
func pushRing(ring []float64, v float64, window int) []float64 {
	if math.IsNaN(v) {
		return ring
	}
	ring = append(ring, v)
	if len(ring) > window {
		ring = ring[len(ring)-window:]
	}
	return ring
}
