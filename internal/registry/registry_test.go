package registry

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/crestlab/crest/internal/core"
	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/obs"
	"github.com/crestlab/crest/snapshot"
)

// trueCR is the synthetic ground-truth relation every test model is
// scored against.
func trueCR(f []float64) float64 {
	return 1 + 10*math.Exp(0.5*f[0]-0.3*f[1]+0.2*f[2])
}

// trainSamples draws n samples of the true relation (plus noise) with a
// deterministic seed.
func trainSamples(seed int64, n int) []core.Sample {
	rng := rand.New(rand.NewSource(seed))
	samples := make([]core.Sample, n)
	for i := range samples {
		f := make([]float64, 5)
		for j := range f {
			f[j] = rng.NormFloat64()
		}
		cr := trueCR(f) * math.Exp(0.05*rng.NormFloat64())
		samples[i] = core.Sample{Features: f, CR: cr}
	}
	return samples
}

// goodEstimator trains on the true relation.
func goodEstimator(t testing.TB) *core.Estimator {
	t.Helper()
	est, err := core.Train(trainSamples(7, 80), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// badEstimator trains on scrambled labels: features carry no information
// about its CRs, so its predictions regress hard against the truth.
func badEstimator(t testing.TB) *core.Estimator {
	t.Helper()
	samples := trainSamples(7, 80)
	rng := rand.New(rand.NewSource(13))
	rng.Shuffle(len(samples), func(i, j int) {
		samples[i].CR, samples[j].CR = samples[j].CR, samples[i].CR
	})
	est, err := core.Train(samples, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// feedbackStream yields deterministic (features, actual) observations of
// the true relation.
func feedbackStream(seed int64) func() ([]float64, float64) {
	rng := rand.New(rand.NewSource(seed))
	return func() ([]float64, float64) {
		f := make([]float64, 5)
		for j := range f {
			f[j] = rng.NormFloat64()
		}
		return f, trueCR(f)
	}
}

// fastCanary is a canary config small enough for tests to drive decisions
// in tens of observations.
func fastCanary() CanaryConfig {
	return CanaryConfig{
		Fraction:     0.25,
		Window:       32,
		MinObs:       8,
		EvalEvery:    4,
		SustainEvals: 2,
		PersistEvery: 4,
	}
}

func openTest(t *testing.T, root string, mut func(*Config)) *Registry {
	t.Helper()
	cfg := Config{
		Root:   root,
		Canary: fastCanary(),
		Obs:    obs.NewRegistry(),
		Logf:   t.Logf,
	}
	if mut != nil {
		mut(&cfg)
	}
	r, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestPublishAdoptAndRoute(t *testing.T) {
	r := openTest(t, t.TempDir(), nil)
	seq, err := r.Publish("default", goodEstimator(t))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := r.Route("") // empty routes to the default lineage
	if err != nil {
		t.Fatal(err)
	}
	if rt.Seq != seq || rt.Canary || rt.Engine == nil {
		t.Fatalf("route = %+v, want active v%d", rt, seq)
	}
	if _, err := r.Route("nope"); !errors.Is(err, crerr.ErrUnknownLineage) {
		t.Fatalf("unknown lineage error = %v, want ErrUnknownLineage", err)
	}
	info, err := r.Info("default")
	if err != nil {
		t.Fatal(err)
	}
	if info.Active != seq || len(info.Decisions) == 0 || info.Decisions[0].Action != "adopt" {
		t.Fatalf("info = %+v", info)
	}
}

// TestCanarySplitDeterministic: fraction f sends exactly ⌊f·n⌋ of any n
// requests to the candidate.
func TestCanarySplitDeterministic(t *testing.T) {
	r := openTest(t, t.TempDir(), nil)
	if _, err := r.Publish("default", goodEstimator(t)); err != nil {
		t.Fatal(err)
	}
	cand, err := r.Publish("default", goodEstimator(t))
	if err != nil {
		t.Fatal(err)
	}
	canaries := 0
	for i := 0; i < 100; i++ {
		rt, err := r.Route("default")
		if err != nil {
			t.Fatal(err)
		}
		if rt.Canary {
			canaries++
			if rt.Seq != cand {
				t.Fatalf("canary routed to v%d, want candidate v%d", rt.Seq, cand)
			}
		}
	}
	if canaries != 25 {
		t.Fatalf("canary fraction 0.25 over 100 requests gave %d, want exactly 25", canaries)
	}
}

// TestCanaryAutoPromote: a candidate as good as the active model wins the
// comparison and is promoted after the sustain threshold, preserving the
// previous active as last-known-good.
func TestCanaryAutoPromote(t *testing.T) {
	r := openTest(t, t.TempDir(), nil)
	active, _ := r.Publish("default", goodEstimator(t))
	cand, err := r.Publish("default", goodEstimator(t))
	if err != nil {
		t.Fatal(err)
	}
	next := feedbackStream(21)
	promoted := false
	for i := 0; i < 200 && !promoted; i++ {
		f, actual := next()
		res, err := r.ObserveFeedback("default", f, actual)
		if err != nil {
			t.Fatal(err)
		}
		switch res.Decision {
		case "promote":
			promoted = true
		case "rollback":
			t.Fatalf("equal-quality candidate rolled back at obs %d", i)
		}
	}
	if !promoted {
		t.Fatal("candidate never promoted")
	}
	info, _ := r.Info("default")
	if info.Active != cand || info.LKG != active || info.Canary != nil {
		t.Fatalf("post-promote info = %+v, want active v%d lkg v%d", info, cand, active)
	}
	last := info.Decisions[len(info.Decisions)-1]
	if last.Action != "promote" || !last.Auto || !strings.Contains(last.Reason, "medape") {
		t.Fatalf("promote decision not logged: %+v", last)
	}
}

// TestCanaryAutoRollback is the acceptance scenario: a deliberately
// regressed candidate is auto-rolled back, the decision is durable, and
// zero requests route to it afterward.
func TestCanaryAutoRollback(t *testing.T) {
	dir := t.TempDir()
	r := openTest(t, dir, nil)
	active, _ := r.Publish("default", goodEstimator(t))
	bad, err := r.Publish("default", badEstimator(t))
	if err != nil {
		t.Fatal(err)
	}
	next := feedbackStream(22)
	rolledBack := false
	for i := 0; i < 300 && !rolledBack; i++ {
		f, actual := next()
		res, err := r.ObserveFeedback("default", f, actual)
		if err != nil {
			t.Fatal(err)
		}
		switch res.Decision {
		case "rollback":
			rolledBack = true
		case "promote":
			t.Fatalf("regressed candidate promoted at obs %d", i)
		}
	}
	if !rolledBack {
		t.Fatal("regressed candidate never rolled back")
	}
	// Zero requests served by the rejected candidate afterward.
	for i := 0; i < 200; i++ {
		rt, err := r.Route("default")
		if err != nil {
			t.Fatal(err)
		}
		if rt.Seq == bad || rt.Canary {
			t.Fatalf("request %d routed to rolled-back v%d", i, rt.Seq)
		}
		if rt.Seq != active {
			t.Fatalf("request %d routed to v%d, want active v%d", i, rt.Seq, active)
		}
	}
	// The rollback is durable: a fresh registry over the same directory
	// still refuses the bad version.
	r2 := openTest(t, dir, nil)
	info, err := r2.Info("default")
	if err != nil {
		t.Fatal(err)
	}
	if info.Active != active || info.Canary != nil {
		t.Fatalf("reopened info = %+v, want active v%d, no canary", info, active)
	}
	found := false
	for _, b := range info.Bad {
		found = found || b == bad
	}
	if !found {
		t.Fatalf("bad list %v does not record rejected v%d", info.Bad, bad)
	}
}

// TestRestartMidCanary: a crash during a canary resumes the rollout — the
// candidate, the traffic-split position and the comparison window all
// come back from persisted state, and the rollout still concludes.
func TestRestartMidCanary(t *testing.T) {
	dir := t.TempDir()
	r := openTest(t, dir, nil)
	r.Publish("default", goodEstimator(t))
	cand, _ := r.Publish("default", goodEstimator(t))
	for i := 0; i < 40; i++ {
		r.Route("default")
	}
	next := feedbackStream(23)
	// Stay under MinObs=8 so no decision fires, but cross PersistEvery=4
	// so the window is durable.
	for i := 0; i < 6; i++ {
		f, actual := next()
		if _, err := r.ObserveFeedback("default", f, actual); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := r.Info("default")
	if before.Canary == nil {
		t.Fatal("no canary in flight before restart")
	}
	// Simulated crash: no Close, just reopen from disk.
	r2 := openTest(t, dir, nil)
	after, err := r2.Info("default")
	if err != nil {
		t.Fatal(err)
	}
	if after.Canary == nil {
		t.Fatal("canary did not survive restart")
	}
	if after.Canary.Candidate != cand {
		t.Fatalf("resumed candidate v%d, want v%d", after.Canary.Candidate, cand)
	}
	if after.Canary.Observed < 4 {
		t.Fatalf("comparison window lost: observed %d, want >= 4 (persisted)", after.Canary.Observed)
	}
	if after.Canary.Requests == 0 {
		t.Fatal("traffic-split counter lost across restart")
	}
	// The split resumes mid-sequence rather than restarting at zero:
	// the next 40 requests produce the canary share of positions n..n+40
	// of the deterministic sequence, not of positions 0..40.
	resumedAt := after.Canary.Requests
	for i := 0; i < 40; i++ {
		if _, err := r2.Route("default"); err != nil {
			t.Fatal(err)
		}
	}
	stat, _ := r2.Info("default")
	if got := stat.Canary.Requests; got != resumedAt+40 {
		t.Fatalf("split counter = %d, want %d", got, resumedAt+40)
	}
	// And the rollout still concludes after the restart.
	decided := ""
	for i := 0; i < 300 && decided == ""; i++ {
		f, actual := next()
		res, err := r2.ObserveFeedback("default", f, actual)
		if err != nil {
			t.Fatal(err)
		}
		decided = res.Decision
	}
	if decided != "promote" {
		t.Fatalf("resumed rollout concluded %q, want promote", decided)
	}
}

// TestCorruptStateDegrades: a corrupt control file degrades to adopting
// the newest valid snapshot — the lineage keeps serving.
func TestCorruptStateDegrades(t *testing.T) {
	dir := t.TempDir()
	r := openTest(t, dir, nil)
	r.Publish("default", goodEstimator(t))
	seq, _ := r.Publish("default", goodEstimator(t))
	r.Close()
	if err := os.WriteFile(filepath.Join(dir, "default", stateFile), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	r2 := openTest(t, dir, nil)
	info, err := r2.Info("default")
	if err != nil {
		t.Fatal(err)
	}
	if info.Active != seq {
		t.Fatalf("adopted v%d, want newest valid v%d", info.Active, seq)
	}
	if len(info.Decisions) == 0 || info.Decisions[0].Action != "adopt" {
		t.Fatalf("adoption not logged: %+v", info.Decisions)
	}
}

// TestActiveCorruptFallsBack: when the recorded active snapshot is torn
// on disk, startup falls back (LKG first), marks the torn version bad,
// and logs an automatic rollback.
func TestActiveCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	r := openTest(t, dir, nil)
	first, _ := r.Publish("default", goodEstimator(t))
	cand, _ := r.Publish("default", goodEstimator(t))
	if err := r.Promote("default", cand); err != nil {
		t.Fatal(err)
	}
	r.Close()
	// Tear the active snapshot's payload.
	data, err := os.ReadFile(seqPath(filepath.Join(dir, "default"), cand))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seqPath(filepath.Join(dir, "default"), cand), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	r2 := openTest(t, dir, nil)
	info, err := r2.Info("default")
	if err != nil {
		t.Fatal(err)
	}
	if info.Active != first {
		t.Fatalf("fell back to v%d, want lkg v%d", info.Active, first)
	}
	last := info.Decisions[len(info.Decisions)-1]
	if last.Action != "rollback" || !last.Auto {
		t.Fatalf("startup fallback not logged as auto rollback: %+v", last)
	}
}

// TestRetentionProtectsLifecyclePointers: churning many versions with a
// small keep budget never deletes the active or last-known-good snapshot.
func TestRetentionProtectsLifecyclePointers(t *testing.T) {
	dir := t.TempDir()
	r := openTest(t, dir, func(c *Config) { c.Keep = 2 })
	est := goodEstimator(t)
	first, _ := r.Publish("default", est)
	second, _ := r.Publish("default", est)
	if err := r.Promote("default", second); err != nil {
		t.Fatal(err)
	}
	// Churn candidates; each publish runs retention.
	for i := 0; i < 6; i++ {
		if _, err := r.Publish("default", est); err != nil {
			t.Fatal(err)
		}
	}
	ldir := filepath.Join(dir, "default")
	for _, seq := range []int{first, second} {
		if _, err := os.Stat(seqPath(ldir, seq)); err != nil {
			t.Fatalf("retention deleted lifecycle pointer v%d: %v", seq, err)
		}
	}
	entries, _ := os.ReadDir(ldir)
	files := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == snapshot.Ext {
			files++
		}
	}
	// active + lkg + candidate + keep-budget survivors: bounded, not 8.
	if files > 5 {
		t.Fatalf("retention kept %d snapshots with keep=2", files)
	}
}

func TestManualRollback(t *testing.T) {
	r := openTest(t, t.TempDir(), nil)
	first, _ := r.Publish("default", goodEstimator(t))
	second, _ := r.Publish("default", goodEstimator(t))
	if err := r.Promote("default", second); err != nil {
		t.Fatal(err)
	}
	if err := r.Rollback("default"); err != nil {
		t.Fatal(err)
	}
	info, _ := r.Info("default")
	if info.Active != first {
		t.Fatalf("rollback restored v%d, want v%d", info.Active, first)
	}
	if !contains(info.Bad, second) {
		t.Fatalf("rolled-back v%d not marked bad: %v", second, info.Bad)
	}
	if err := r.Rollback("default"); err == nil {
		t.Fatal("second rollback should fail: no last-known-good left")
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func TestQuotaTokenBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	q := newQuotas(QuotaConfig{
		Tenants: map[string]TenantQuota{"alice": {Rate: 1, Burst: 2}},
	}, clock)

	// Burst admits two, then denies with a Retry-After.
	for i := 0; i < 2; i++ {
		if _, ok := q.Allow("alice"); !ok {
			t.Fatalf("request %d within burst denied", i)
		}
	}
	wait, ok := q.Allow("alice")
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	if wait < time.Second {
		t.Fatalf("retry-after %v, want >= 1s", wait)
	}
	// Tokens accrue with time.
	now = now.Add(1500 * time.Millisecond)
	if _, ok := q.Allow("alice"); !ok {
		t.Fatal("request after refill denied")
	}
	// Unconfigured tenants ride the (unlimited) default.
	for i := 0; i < 100; i++ {
		if _, ok := q.Allow("bob"); !ok {
			t.Fatal("default quota should be unlimited")
		}
	}
}

func TestQuotaTenantTableBounded(t *testing.T) {
	now := time.Unix(1000, 0)
	q := newQuotas(QuotaConfig{
		Default:    TenantQuota{Rate: 1, Burst: 1},
		MaxTenants: 4,
	}, func() time.Time { return now })
	for i := 0; i < 100; i++ {
		q.Allow(string(rune('a' + i%26)))
	}
	if len(q.buckets) > 4 {
		t.Fatalf("bucket table grew to %d entries with MaxTenants=4", len(q.buckets))
	}
}

// TestDriftTriggersRetrain: sustained bad feedback crosses the drift
// threshold, kicks off a background retrain over the field library, and
// the retrained model arrives as a canary candidate.
func TestDriftTriggersRetrain(t *testing.T) {
	r := openTest(t, t.TempDir(), func(c *Config) {
		c.Drift = DriftConfig{Window: 16, MinObs: 8, MedAPEThreshold: 30}
	})
	r.Publish("default", badEstimator(t)) // serving model that drifted
	field := &grid.Field{Name: "f0", Buffers: []*grid.Buffer{grid.NewBuffer(8, 8)}}
	retrained := make(chan struct{})
	err := r.SetRetraining("default", Retraining{
		Library: []*grid.Field{field},
		Retrain: func(ctx context.Context, fields []*grid.Field) (*core.Estimator, error) {
			if len(fields) != 1 || fields[0] != field {
				t.Errorf("retrain fields = %v", fields)
			}
			close(retrained)
			return goodEstimator(t), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	next := feedbackStream(31)
	started := false
	for i := 0; i < 100 && !started; i++ {
		f, actual := next()
		res, err := r.ObserveFeedback("default", f, actual)
		if err != nil {
			t.Fatal(err)
		}
		started = res.RetrainStarted
	}
	if !started {
		t.Fatal("drift never triggered a retrain")
	}
	select {
	case <-retrained:
	case <-time.After(10 * time.Second):
		t.Fatal("retrain func never ran")
	}
	// The retrained model lands as a canary candidate.
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, _ := r.Info("default")
		if info.Canary != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("retrained model never published as candidate")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestConcurrentLifecycleHammer drives routing, feedback, publishes,
// promotes, rollbacks and introspection concurrently under -race. The
// assertions are the invariants: every route lands on a live engine, and
// no request is ever served by a version already marked bad.
func TestConcurrentLifecycleHammer(t *testing.T) {
	r := openTest(t, t.TempDir(), nil)
	est := goodEstimator(t)
	if _, err := r.Publish("default", est); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rt, err := r.Route("default")
				if err != nil || rt.Engine == nil {
					t.Errorf("route: %v %+v", err, rt)
					return
				}
				if rt.Engine.Estimator() == nil {
					t.Error("route returned engine without estimator")
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := feedbackStream(41)
		for {
			select {
			case <-stop:
				return
			default:
			}
			f, actual := next()
			if _, err := r.ObserveFeedback("default", f, actual); err != nil {
				t.Errorf("feedback: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			select {
			case <-stop:
				return
			default:
			}
			seq, err := r.Publish("default", est)
			if err != nil {
				t.Errorf("publish: %v", err)
				return
			}
			switch i % 3 {
			case 0:
				if err := r.Promote("default", seq); err != nil &&
					!strings.Contains(err.Error(), "already active") {
					t.Errorf("promote: %v", err)
					return
				}
			case 1:
				r.Rollback("default") //nolint:errcheck // racing decisions may empty LKG
			}
			r.Info("default")
			r.InfoAll()
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}
