package registry

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/crestlab/crest/internal/core"
	"github.com/crestlab/crest/internal/fieldsim"
	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/predictors"
)

// DriftConfig tunes drift detection on the feedback stream: when the
// active model's rolling MedAPE over ground-truth observations crosses
// the threshold, the lineage's workload has drifted from the training
// distribution and a background retrain is triggered.
type DriftConfig struct {
	// Window is the rolling APE window (default 64 observations).
	Window int

	// MinObs is the minimum window fill before drift can trigger
	// (default 32).
	MinObs int

	// MedAPEThreshold is the rolling MedAPE (percent) that declares
	// drift. 0 disables drift detection.
	MedAPEThreshold float64

	// Cooldown is the minimum spacing between retrain triggers
	// (default 5m), so a persistently hard workload retrains once, not in
	// a loop.
	Cooldown time.Duration
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.MinObs <= 0 {
		c.MinObs = 32
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Minute
	}
	return c
}

// driftTracker is the per-lineage rolling APE window. Guarded by the
// lineage mutex.
type driftTracker struct {
	cfg         DriftConfig
	ring        []float64
	lastTrigger time.Time
}

func newDriftTracker(cfg DriftConfig) driftTracker {
	return driftTracker{cfg: cfg}
}

func (d *driftTracker) observe(ape float64) {
	d.ring = pushRing(d.ring, ape, d.cfg.Window)
}

func (d *driftTracker) reset() { d.ring = d.ring[:0] }

// drifted reports whether the window declares drift and the cooldown has
// elapsed.
func (d *driftTracker) drifted(now time.Time) bool {
	if d.cfg.MedAPEThreshold <= 0 || len(d.ring) < d.cfg.MinObs {
		return false
	}
	if !d.lastTrigger.IsZero() && now.Sub(d.lastTrigger) < d.cfg.Cooldown {
		return false
	}
	return median(d.ring) >= d.cfg.MedAPEThreshold
}

// RetrainFunc trains a replacement model from the selected training
// fields. It runs on a background goroutine; the context is canceled when
// the registry closes.
type RetrainFunc func(ctx context.Context, fields []*grid.Field) (*core.Estimator, error)

// Retraining wires drift-triggered retraining for one lineage: the field
// library set-cover selection draws from, the predictor configuration the
// similarity profiles use, and the training function itself.
type Retraining struct {
	// Library is the candidate training set. Set-cover selection picks a
	// minimal subset whose similarity neighborhoods cover the library.
	Library []*grid.Field

	// Predictors configures the fieldsim profiles (should match the
	// serving model's predictor config).
	Predictors predictors.Config

	// RadiusFactor scales the cover radius relative to the similarity
	// matrix's self-distance baseline (default 1.5).
	RadiusFactor float64

	// Retrain builds the replacement model from the selected fields.
	Retrain RetrainFunc
}

// retrainer is the per-lineage retraining state. Guarded by the lineage
// mutex.
type retrainer struct {
	cfg      Retraining
	inFlight bool
}

// SetRetraining arms drift-triggered retraining on the named lineage.
func (r *Registry) SetRetraining(name string, rt Retraining) error {
	if rt.Retrain == nil {
		return errors.New("registry: retraining needs a Retrain func")
	}
	if len(rt.Library) == 0 {
		return errors.New("registry: retraining needs a field library")
	}
	if rt.RadiusFactor <= 0 {
		rt.RadiusFactor = 1.5
	}
	ln, err := r.lineage(name)
	if err != nil {
		return err
	}
	ln.mu.Lock()
	defer ln.mu.Unlock()
	ln.retrain = &retrainer{cfg: rt}
	return nil
}

// maybeRetrainLocked checks the drift tracker and, when drift is declared
// and retraining is armed, kicks off a background retrain whose result is
// published as a canary candidate. At most one retrain runs per lineage,
// and none while a canary is already in flight (the rollout must settle
// before fresh evidence arrives). Caller holds ln.mu.
func (r *Registry) maybeRetrainLocked(ln *lineage) bool {
	rt := ln.retrain
	if rt == nil || rt.inFlight || ln.st.Canary != nil {
		return false
	}
	if !ln.drift.drifted(r.cfg.Now()) {
		return false
	}
	ln.drift.lastTrigger = r.cfg.Now()
	ln.drift.reset()
	rt.inFlight = true
	ln.st.logDecision(Decision{
		Time: r.cfg.Now(), Action: "retrain", From: ln.st.Active, Auto: true,
		Reason: fmt.Sprintf("drift: rolling MedAPE crossed %.1f%%", r.cfg.Drift.MedAPEThreshold),
	})
	if err := saveState(r.cfg.FS, ln.dir, ln.st); err != nil {
		r.cfg.Logf("registry: %s: retrain persist: %v", ln.name, err)
	}
	r.obs.retrains.Inc()
	r.cfg.Logf("registry: %s: drift detected, retraining in background", ln.name)

	cfg := rt.cfg
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer func() {
			ln.mu.Lock()
			rt.inFlight = false
			ln.mu.Unlock()
		}()
		fields := selectCover(cfg, r.cfg.Logf, ln.name)
		est, err := cfg.Retrain(r.ctx, fields)
		if err != nil {
			r.obs.retrainFails.Inc()
			r.cfg.Logf("registry: %s: retrain failed: %v", ln.name, err)
			return
		}
		if _, err := r.Publish(ln.name, est); err != nil {
			r.obs.retrainFails.Inc()
			r.cfg.Logf("registry: %s: publish retrained model: %v", ln.name, err)
		}
	}()
	return true
}

// selectCover picks the minimal set-cover training subset of the library:
// fields whose similarity neighborhoods (radius scaled off the matrix's
// self-distance baseline) cover every library member. Selection failures
// degrade to the full library — retraining on more data than necessary
// beats not retraining.
func selectCover(cfg Retraining, logf func(string, ...any), lineage string) []*grid.Field {
	if len(cfg.Library) == 1 {
		return cfg.Library
	}
	m, err := fieldsim.SimilarityMatrix(cfg.Library, cfg.Predictors)
	if err != nil {
		logf("registry: %s: similarity matrix: %v; retraining on full library", lineage, err)
		return cfg.Library
	}
	radius := cfg.RadiusFactor * m.SelfDistanceBaseline()
	covers := m.Covers(radius)
	chosen, err := fieldsim.MinimalCover(covers, nil)
	if err != nil {
		chosen, err = fieldsim.GreedyCover(covers, nil)
	}
	if err != nil {
		logf("registry: %s: set cover: %v; retraining on full library", lineage, err)
		return cfg.Library
	}
	out := make([]*grid.Field, 0, len(chosen))
	for _, i := range chosen {
		out = append(out, cfg.Library[i])
	}
	return out
}
