// Package registry hosts named model lineages over the snapshot package
// and runs their lifecycle: versioned per-lineage directories with a
// last-known-good pointer, atomic promote/rollback, a canary controller
// that splits a configurable fraction of traffic to a candidate version
// and compares MedAPE and conformal coverage against the active model
// (auto-promote on sustained win, auto-rollback on regression), per-tenant
// admission quotas, and drift-triggered background retraining driven by
// fieldsim set-cover selection.
//
// Every lifecycle decision is logged, metered, and persisted atomically
// (state.json next to the snapshots), so a crash mid-canary resumes the
// traffic split and the comparison evidence instead of restarting the
// experiment — and a corrupt control file degrades to adopting the newest
// valid snapshot, never to refusing to serve.
package registry

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/crestlab/crest/internal/batch"
	"github.com/crestlab/crest/internal/core"
	"github.com/crestlab/crest/internal/crerr"
	"github.com/crestlab/crest/internal/obs"
	"github.com/crestlab/crest/internal/vfs"
	"github.com/crestlab/crest/snapshot"
)

// DefaultLineage is the lineage requests without a model header route to.
const DefaultLineage = "default"

// Config configures a Registry.
type Config struct {
	// Root is the registry root directory; each immediate subdirectory is
	// one lineage holding model-NNNNNN.crsnap snapshots plus state.json.
	Root string

	// FS is the filesystem snapshots and control state go through
	// (vfs.OS when nil) — the seam the chaos suite injects faults at.
	FS vfs.FS

	// Workers sizes each version's batch engine (engine default when 0).
	Workers int

	// Keep is the per-lineage snapshot retention budget passed to
	// snapshot.PruneFS after registry writes; active, last-known-good and
	// candidate versions are always protected. 0 selects DefaultKeep;
	// negative disables pruning.
	Keep int

	Canary CanaryConfig
	Quota  QuotaConfig
	Drift  DriftConfig

	// Obs receives registry metrics (obs.Default() when nil).
	Obs *obs.Registry

	// Logf, when set, receives one line per lifecycle event.
	Logf func(format string, args ...any)

	// Now is the clock (time.Now when nil); tests inject a fake.
	Now func() time.Time
}

// DefaultKeep is the snapshot retention budget when Config.Keep is zero.
const DefaultKeep = 5

func (c Config) withDefaults() Config {
	if c.FS == nil {
		c.FS = vfs.OS
	}
	if c.Keep == 0 {
		c.Keep = DefaultKeep
	}
	if c.Obs == nil {
		c.Obs = obs.Default()
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	c.Canary = c.Canary.withDefaults()
	c.Drift = c.Drift.withDefaults()
	return c
}

// model is one loaded snapshot version with its serving engine.
type model struct {
	seq    int
	path   string
	est    *core.Estimator
	engine *batch.Engine
}

// lineage is one named model lineage. Its mutex guards the control state
// and the model pointers; the engines themselves are concurrency-safe and
// are used outside the lock.
type lineage struct {
	name string
	dir  string

	mu        sync.Mutex
	st        *lineageState
	active    *model
	candidate *model
	drift     driftTracker
	retrain   *retrainer
	unsaved   int // feedback observations since the last state persist
}

// metrics is the registry's metric handle set.
type metrics struct {
	lineages       *obs.Gauge
	requests       *obs.Counter
	canaryRequests *obs.Counter
	publishes      *obs.Counter
	promotions     *obs.Counter
	rollbacks      *obs.Counter
	retrains       *obs.Counter
	retrainFails   *obs.Counter
	decisionSecs   *obs.Histogram
	tenantRequests *obs.Counter
	tenantRejects  *obs.Counter
}

func newMetrics(r *obs.Registry) metrics {
	return metrics{
		lineages:       r.Gauge("registry_lineages"),
		requests:       r.Counter("registry_requests_total"),
		canaryRequests: r.Counter("registry_canary_requests_total"),
		publishes:      r.Counter("registry_publishes_total"),
		promotions:     r.Counter("registry_promotions_total"),
		rollbacks:      r.Counter("registry_rollbacks_total"),
		retrains:       r.Counter("registry_retrains_total"),
		retrainFails:   r.Counter("registry_retrain_failures_total"),
		decisionSecs:   r.Histogram("registry_decision_seconds", nil),
		tenantRequests: r.Counter("tenant_requests_total"),
		tenantRejects:  r.Counter("tenant_quota_rejections_total"),
	}
}

// Registry hosts the lineages under one root directory.
type Registry struct {
	cfg Config
	obs metrics

	mu       sync.RWMutex
	lineages map[string]*lineage

	quotas *Quotas
	wg     sync.WaitGroup // background retrains
	ctx    context.Context
	cancel context.CancelFunc
}

// Open loads every lineage under cfg.Root (each immediate subdirectory
// holding at least one loadable snapshot becomes a lineage) and resumes
// any persisted canary rollouts. A missing root is an empty registry, not
// an error: Publish creates lineages on demand.
func Open(cfg Config) (*Registry, error) {
	cfg = cfg.withDefaults()
	if cfg.Root == "" {
		return nil, errors.New("registry: no root directory")
	}
	r := &Registry{
		cfg:      cfg,
		obs:      newMetrics(cfg.Obs),
		lineages: make(map[string]*lineage),
		quotas:   newQuotas(cfg.Quota, cfg.Now),
	}
	r.ctx, r.cancel = context.WithCancel(context.Background())
	entries, err := cfg.FS.ReadDir(cfg.Root)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("registry: scan %s: %w", cfg.Root, err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		ln, err := r.loadLineage(e.Name())
		if err != nil {
			cfg.Logf("registry: skipping lineage %s: %v", e.Name(), err)
			continue
		}
		if ln != nil {
			r.lineages[ln.name] = ln
		}
	}
	r.obs.lineages.Set(int64(len(r.lineages)))
	return r, nil
}

// Close cancels background retrains, waits for them, and persists every
// lineage's control state.
func (r *Registry) Close() error {
	r.cancel()
	r.wg.Wait()
	r.mu.RLock()
	defer r.mu.RUnlock()
	var firstErr error
	for _, ln := range r.lineages {
		ln.mu.Lock()
		err := saveState(r.cfg.FS, ln.dir, ln.st)
		ln.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// loadLineage restores one lineage directory: control state when present
// (resuming any canary), adopt-newest when the control state is missing
// or corrupt, and fallback across corrupt snapshots when the recorded
// active version does not load. Returns (nil, nil) when the directory
// holds nothing loadable.
func (r *Registry) loadLineage(name string) (*lineage, error) {
	dir := filepath.Join(r.cfg.Root, name)
	ln := &lineage{name: name, dir: dir, drift: newDriftTracker(r.cfg.Drift)}

	st, err := loadState(r.cfg.FS, dir)
	if err != nil {
		// Corrupt control state: degrade to adopt-newest, keep serving.
		r.cfg.Logf("registry: lineage %s: %v; adopting newest valid snapshot", name, err)
		st = nil
	}
	if st == nil {
		m, lerr := r.loadSeq(dir, -1, nil)
		if errors.Is(lerr, snapshot.ErrNoSnapshots) {
			// Nothing in the registry's own sequence namespace: the dir
			// may still hold externally-written snapshots (model-000000
			// from `crest train -dir`, or arbitrary *.crsnap names).
			// Re-sequence the newest valid one instead of referencing it.
			est, from, ferr := snapshot.LoadLatestFS(r.cfg.FS, dir)
			if ferr != nil {
				if errors.Is(ferr, snapshot.ErrNoSnapshots) {
					return nil, nil
				}
				return nil, ferr
			}
			if m, lerr = r.writeNext(dir, est); lerr != nil {
				return nil, lerr
			}
			r.cfg.Logf("registry: lineage %s: adopted external snapshot %s as v%d", name, from, m.seq)
		} else if lerr != nil {
			return nil, lerr
		}
		ln.st = &lineageState{Active: m.seq}
		ln.st.logDecision(Decision{
			Time: r.cfg.Now(), Action: "adopt", To: m.seq, Auto: true,
			Reason: "no control state; adopted newest valid snapshot",
		})
		ln.active = m
		if err := saveState(r.cfg.FS, dir, ln.st); err != nil {
			r.cfg.Logf("registry: lineage %s: %v", name, err)
		}
		return ln, nil
	}

	ln.st = st
	active, lerr := r.loadSeq(dir, st.Active, nil)
	if lerr != nil {
		// The recorded active version is gone or corrupt: fall back to
		// LKG, then to the newest valid snapshot not marked bad.
		r.cfg.Logf("registry: lineage %s: active v%d unloadable (%v); falling back", name, st.Active, lerr)
		from := st.Active
		if st.LKG != 0 {
			if m, err := r.loadSeq(dir, st.LKG, nil); err == nil {
				active = m
			}
		}
		if active == nil {
			skip := append([]int{st.Active}, st.Bad...)
			m, err := r.loadSeq(dir, -1, skip)
			if err != nil {
				return nil, fmt.Errorf("registry: lineage %s has no loadable version: %w", name, err)
			}
			active = m
		}
		st.Bad = append(st.Bad, from)
		st.Active = active.seq
		if st.LKG == active.seq {
			st.LKG = 0
		}
		st.Canary = nil
		st.logDecision(Decision{
			Time: r.cfg.Now(), Action: "rollback", From: from, To: active.seq, Auto: true,
			Reason: "active version unloadable at startup",
		})
		r.obs.rollbacks.Inc()
		if err := saveState(r.cfg.FS, dir, st); err != nil {
			r.cfg.Logf("registry: lineage %s: %v", name, err)
		}
	}
	ln.active = active

	if st.Canary != nil {
		cand, cerr := r.loadSeq(dir, st.Canary.Candidate, nil)
		if cerr != nil {
			r.cfg.Logf("registry: lineage %s: candidate v%d unloadable (%v); dropping canary",
				name, st.Canary.Candidate, cerr)
			st.Bad = append(st.Bad, st.Canary.Candidate)
			st.logDecision(Decision{
				Time: r.cfg.Now(), Action: "rollback", From: st.Canary.Candidate, Auto: true,
				Reason: "candidate unloadable at startup",
			})
			r.obs.rollbacks.Inc()
			st.Canary = nil
			if err := saveState(r.cfg.FS, dir, st); err != nil {
				r.cfg.Logf("registry: lineage %s: %v", name, err)
			}
		} else {
			ln.candidate = cand
		}
	}
	return ln, nil
}

// seqPath is the canonical snapshot path of sequence number seq.
func seqPath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("model-%06d%s", seq, snapshot.Ext))
}

// writeNext saves est under the next free registry sequence number.
// Registry sequences start at 1 — 0 is the "none" sentinel of the
// last-known-good pointer — so externally-seeded model-000000 files are
// re-sequenced on adoption rather than referenced.
func (r *Registry) writeNext(dir string, est *core.Estimator) (*model, error) {
	entries, err := r.cfg.FS.ReadDir(dir)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("registry: scan %s: %w", dir, err)
	}
	if errors.Is(err, fs.ErrNotExist) {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("registry: create %s: %w", dir, err)
		}
	}
	seq := 1
	for _, e := range entries {
		if n, ok := seqOf(e.Name()); ok && n >= seq {
			seq = n + 1
		}
	}
	path := seqPath(dir, seq)
	if err := snapshot.SaveFS(r.cfg.FS, path, est); err != nil {
		return nil, err
	}
	return r.newModel(seq, path, est), nil
}

// loadSeq loads version seq from dir, or — when seq is negative — the
// newest valid snapshot whose sequence is not in skip.
func (r *Registry) loadSeq(dir string, seq int, skip []int) (*model, error) {
	if seq >= 0 {
		path := seqPath(dir, seq)
		est, err := snapshot.LoadFS(r.cfg.FS, path)
		if err != nil {
			return nil, err
		}
		return r.newModel(seq, path, est), nil
	}
	skipSet := make(map[int]bool, len(skip))
	for _, s := range skip {
		skipSet[s] = true
	}
	entries, err := r.cfg.FS.ReadDir(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, snapshot.ErrNoSnapshots
		}
		return nil, err
	}
	// Highest sequence first: registry snapshots are sequence-ordered by
	// construction, which survives mtime truncation.
	var seqs []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if n, ok := seqOf(e.Name()); ok && n >= 1 && !skipSet[n] {
			seqs = append(seqs, n)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(seqs)))
	for _, n := range seqs {
		path := seqPath(dir, n)
		est, lerr := snapshot.LoadFS(r.cfg.FS, path)
		if lerr != nil {
			continue
		}
		return r.newModel(n, path, est), nil
	}
	return nil, snapshot.ErrNoSnapshots
}

// seqOf extracts the sequence number from a model-NNNNNN.crsnap name.
func seqOf(name string) (int, bool) {
	if filepath.Ext(name) != snapshot.Ext {
		return 0, false
	}
	base := name[:len(name)-len(snapshot.Ext)]
	const prefix = "model-"
	if len(base) <= len(prefix) || base[:len(prefix)] != prefix {
		return 0, false
	}
	n := 0
	for _, c := range base[len(prefix):] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

func (r *Registry) newModel(seq int, path string, est *core.Estimator) *model {
	eng := batch.New(est, nil, r.cfg.Workers)
	eng.SetObs(r.cfg.Obs)
	return &model{seq: seq, path: path, est: est, engine: eng}
}

// lineage returns the named lineage, resolving "" to DefaultLineage.
func (r *Registry) lineage(name string) (*lineage, error) {
	if name == "" {
		name = DefaultLineage
	}
	r.mu.RLock()
	ln := r.lineages[name]
	r.mu.RUnlock()
	if ln == nil {
		return nil, fmt.Errorf("registry: %w: %q", crerr.ErrUnknownLineage, name)
	}
	return ln, nil
}

// ActiveEngine returns the named lineage's active serving engine without
// registering a routed request — the introspection companion of Route.
func (r *Registry) ActiveEngine(name string) (*batch.Engine, error) {
	ln, err := r.lineage(name)
	if err != nil {
		return nil, err
	}
	ln.mu.Lock()
	defer ln.mu.Unlock()
	return ln.active.engine, nil
}

// Lineages lists the hosted lineage names, sorted.
func (r *Registry) Lineages() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.lineages))
	for name := range r.lineages {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Route is one routing decision: the engine a request should be served
// by, and whether it was split to the canary candidate.
type Route struct {
	Lineage string
	Seq     int
	Canary  bool
	Engine  *batch.Engine
}

// Route picks the serving version for one request of the named lineage
// ("" routes to DefaultLineage). When a canary is in flight, a
// deterministic counter-based split sends the configured fraction to the
// candidate: request n is canary exactly when ⌊f·(n+1)⌋ > ⌊f·n⌋, so the
// split is exact over any window and resumes from the persisted counter
// after a restart.
func (r *Registry) Route(name string) (Route, error) {
	ln, err := r.lineage(name)
	if err != nil {
		return Route{}, err
	}
	ln.mu.Lock()
	defer ln.mu.Unlock()
	r.obs.requests.Inc()
	rt := Route{Lineage: ln.name, Seq: ln.st.Active, Engine: ln.active.engine}
	if c := ln.st.Canary; c != nil && ln.candidate != nil {
		n := c.Requests
		c.Requests++
		if uint64(c.Fraction*float64(n+1)) > uint64(c.Fraction*float64(n)) {
			c.CanaryRequests++
			r.obs.canaryRequests.Inc()
			rt.Seq = ln.candidate.seq
			rt.Canary = true
			rt.Engine = ln.candidate.engine
		}
	}
	return rt, nil
}

// Publish writes est as a new version of the named lineage (creating the
// lineage when absent). The first version of a lineage becomes active
// immediately; later versions start a canary rollout at the configured
// fraction, superseding any candidate already in flight. Returns the new
// sequence number.
func (r *Registry) Publish(name string, est *core.Estimator) (int, error) {
	if name == "" {
		name = DefaultLineage
	}
	if err := validLineageName(name); err != nil {
		return 0, err
	}
	r.mu.Lock()
	ln := r.lineages[name]
	if ln == nil {
		ln = &lineage{
			name:  name,
			dir:   filepath.Join(r.cfg.Root, name),
			st:    &lineageState{},
			drift: newDriftTracker(r.cfg.Drift),
		}
		r.lineages[name] = ln
		r.obs.lineages.Set(int64(len(r.lineages)))
	}
	r.mu.Unlock()

	ln.mu.Lock()
	defer ln.mu.Unlock()
	m, err := r.writeNext(ln.dir, est)
	if err != nil {
		return 0, err
	}
	seq := m.seq
	now := r.cfg.Now()
	prev := ln.st
	st := *prev // shallow copy; decision slices re-appended below
	if ln.active == nil {
		st.Active = seq
		st.logDecision(Decision{Time: now, Action: "adopt", To: seq, Reason: "first version"})
	} else {
		reason := "published candidate"
		if c := st.Canary; c != nil {
			reason = fmt.Sprintf("superseded candidate v%d", c.Candidate)
		}
		st.Canary = &canaryState{Candidate: seq, Fraction: r.cfg.Canary.Fraction}
		st.logDecision(Decision{Time: now, Action: "publish", To: seq, Reason: reason})
	}
	if err := saveState(r.cfg.FS, ln.dir, &st); err != nil {
		return 0, err
	}
	ln.st = &st
	if ln.active == nil {
		ln.active = m
	} else {
		ln.candidate = m
	}
	r.obs.publishes.Inc()
	r.cfg.Logf("registry: %s: published v%d", name, seq)
	r.pruneLocked(ln)
	return seq, nil
}

// Promote makes version seq the active model of the named lineage,
// preserving the previous active as last-known-good. Promoting the
// in-flight candidate ends the canary; promoting any other stored version
// is the manual override path. The control state is persisted before the
// in-memory swap, so a crash between the two replays the promote, never
// loses it.
func (r *Registry) Promote(name string, seq int) error {
	ln, err := r.lineage(name)
	if err != nil {
		return err
	}
	ln.mu.Lock()
	defer ln.mu.Unlock()
	if seq == ln.st.Active {
		return fmt.Errorf("registry: %s: v%d is already active", ln.name, seq)
	}
	var m *model
	if ln.candidate != nil && ln.candidate.seq == seq {
		m = ln.candidate
	} else {
		m, err = r.loadSeq(ln.dir, seq, nil)
		if err != nil {
			return fmt.Errorf("registry: %s: cannot promote v%d: %w", ln.name, seq, err)
		}
	}
	r.promoteLocked(ln, m, false, "manual promote")
	return nil
}

// promoteLocked installs m as active. Caller holds ln.mu.
func (r *Registry) promoteLocked(ln *lineage, m *model, auto bool, reason string) {
	st := *ln.st
	st.LKG = st.Active
	st.Active = m.seq
	st.Canary = nil
	st.logDecision(Decision{
		Time: r.cfg.Now(), Action: "promote", From: st.LKG, To: m.seq, Auto: auto, Reason: reason,
	})
	if err := saveState(r.cfg.FS, ln.dir, &st); err != nil {
		r.cfg.Logf("registry: %s: promote persist failed: %v", ln.name, err)
	}
	ln.st = &st
	ln.active = m
	ln.candidate = nil
	ln.drift.reset()
	r.obs.promotions.Inc()
	r.cfg.Logf("registry: %s: promoted v%d (lkg v%d, %s)", ln.name, m.seq, st.LKG, reason)
	r.pruneLocked(ln)
}

// Rollback reverts the named lineage: an in-flight canary is aborted
// (candidate marked bad); otherwise the active version is rolled back to
// last-known-good and marked bad. Errors when there is nothing to roll
// back to.
func (r *Registry) Rollback(name string) error {
	ln, err := r.lineage(name)
	if err != nil {
		return err
	}
	ln.mu.Lock()
	defer ln.mu.Unlock()
	if ln.st.Canary != nil {
		r.rollbackCanaryLocked(ln, false, "manual rollback")
		return nil
	}
	if ln.st.LKG == 0 {
		return fmt.Errorf("registry: %s: no last-known-good version to roll back to", ln.name)
	}
	lkg, err := r.loadSeq(ln.dir, ln.st.LKG, nil)
	if err != nil {
		return fmt.Errorf("registry: %s: last-known-good v%d unloadable: %w", ln.name, ln.st.LKG, err)
	}
	st := *ln.st
	from := st.Active
	st.Active = lkg.seq
	st.LKG = 0
	st.Bad = append(append([]int(nil), st.Bad...), from)
	st.Canary = nil
	st.logDecision(Decision{
		Time: r.cfg.Now(), Action: "rollback", From: from, To: lkg.seq, Reason: "manual rollback",
	})
	if err := saveState(r.cfg.FS, ln.dir, &st); err != nil {
		return err
	}
	ln.st = &st
	ln.active = lkg
	ln.candidate = nil
	ln.drift.reset()
	r.obs.rollbacks.Inc()
	r.cfg.Logf("registry: %s: rolled back v%d -> v%d", ln.name, from, lkg.seq)
	r.pruneLocked(ln)
	return nil
}

// rollbackCanaryLocked aborts the in-flight canary, marking the candidate
// bad. Caller holds ln.mu.
func (r *Registry) rollbackCanaryLocked(ln *lineage, auto bool, reason string) {
	cand := ln.st.Canary.Candidate
	st := *ln.st
	st.Bad = append(append([]int(nil), st.Bad...), cand)
	st.Canary = nil
	st.logDecision(Decision{
		Time: r.cfg.Now(), Action: "rollback", From: cand, To: st.Active, Auto: auto, Reason: reason,
	})
	if err := saveState(r.cfg.FS, ln.dir, &st); err != nil {
		r.cfg.Logf("registry: %s: rollback persist failed: %v", ln.name, err)
	}
	ln.st = &st
	ln.candidate = nil
	r.obs.rollbacks.Inc()
	r.cfg.Logf("registry: %s: rolled back candidate v%d (%s)", ln.name, cand, reason)
	r.pruneLocked(ln)
}

// pruneLocked enforces keep-N retention on the lineage directory,
// protecting the active, last-known-good and candidate snapshot files.
// Caller holds ln.mu. Prune failures are logged, never fatal: retention
// is advisory, serving state is not.
func (r *Registry) pruneLocked(ln *lineage) {
	if r.cfg.Keep < 0 {
		return
	}
	protect := []string{seqPath(ln.dir, ln.st.Active)}
	if ln.st.LKG != 0 {
		protect = append(protect, seqPath(ln.dir, ln.st.LKG))
	}
	if ln.st.Canary != nil {
		protect = append(protect, seqPath(ln.dir, ln.st.Canary.Candidate))
	}
	if _, err := snapshot.PruneFS(r.cfg.FS, ln.dir, r.cfg.Keep, protect...); err != nil {
		r.cfg.Logf("registry: %s: prune: %v", ln.name, err)
	}
}

// validLineageName rejects names that would escape the root directory or
// collide with control files.
func validLineageName(name string) error {
	if name == "" || name != filepath.Base(name) || name[0] == '.' {
		return fmt.Errorf("registry: invalid lineage name %q", name)
	}
	return nil
}

// AllowTenant runs one request of the given tenant through its admission
// quota. It returns ok=true when admitted; otherwise the duration the
// tenant should wait before retrying (the 429 Retry-After value). The
// empty tenant is billed to the default bucket.
func (r *Registry) AllowTenant(tenant string) (time.Duration, bool) {
	r.obs.tenantRequests.Inc()
	wait, ok := r.quotas.Allow(tenant)
	if !ok {
		r.obs.tenantRejects.Inc()
	}
	return wait, ok
}

// median returns the median of xs (NaN when empty). xs is not modified.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
