package compressors

import (
	"fmt"
	"math"

	"github.com/crestlab/crest/internal/grid"
)

// SperrLike is the SPERR-family compressor: the buffer is quantized onto
// an ε-proportional integer grid, transformed with a multi-level exactly
// invertible CDF 5/3 lifted wavelet (the wavelet decomposition of §II),
// thresholded, and losslessly coded. A certify loop shrinks the threshold
// until the reconstruction provably meets the bound; a whole-buffer raw
// fallback covers degenerate dynamic ranges. Like the real SPERR it is
// comparatively slow but highly effective on smooth data.
type SperrLike struct {
	// Levels caps the wavelet decomposition depth (default: derived from
	// the buffer shape).
	Levels int
}

// NewSperrLike returns a SPERR-family compressor with default parameters.
func NewSperrLike() *SperrLike { return &SperrLike{} }

// Name implements Compressor.
func (c *SperrLike) Name() string { return "sperrlike" }

// fwd53 applies the integer CDF 5/3 lifting to x, writing the smoothed
// subband to out[:ns] and details to out[ns:]. Exactly invertible for any
// length ≥ 1.
func fwd53(x, out []float64) {
	n := len(x)
	ns := (n + 1) / 2
	nd := n / 2
	s, d := out[:ns], out[ns:ns+nd]
	xi := func(i int) int64 { return int64(x[i]) }
	// Predict: d[i] = x[2i+1] − ⌊(x[2i]+x[2i+2])/2⌋ with symmetric edge.
	for i := 0; i < nd; i++ {
		left := xi(2 * i)
		right := left
		if 2*i+2 < n {
			right = xi(2*i + 2)
		}
		d[i] = float64(xi(2*i+1) - floorDiv(left+right, 2))
	}
	// Update: s[i] = x[2i] + ⌊(d[i−1]+d[i]+2)/4⌋ with symmetric edge.
	di := func(i int) int64 {
		if nd == 0 {
			return 0
		}
		if i < 0 {
			i = 0
		}
		if i >= nd {
			i = nd - 1
		}
		return int64(d[i])
	}
	for i := 0; i < ns; i++ {
		s[i] = float64(xi(2*i) + floorDiv(di(i-1)+di(i)+2, 4))
	}
}

// inv53 inverts fwd53.
func inv53(in, x []float64) {
	n := len(x)
	ns := (n + 1) / 2
	nd := n / 2
	s, d := in[:ns], in[ns:ns+nd]
	di := func(i int) int64 {
		if nd == 0 {
			return 0
		}
		if i < 0 {
			i = 0
		}
		if i >= nd {
			i = nd - 1
		}
		return int64(d[i])
	}
	// Undo update to recover evens.
	for i := 0; i < ns; i++ {
		x[2*i] = float64(int64(s[i]) - floorDiv(di(i-1)+di(i)+2, 4))
	}
	// Undo predict to recover odds.
	for i := 0; i < nd; i++ {
		left := int64(x[2*i])
		right := left
		if 2*i+2 < n {
			right = int64(x[2*i+2])
		}
		x[2*i+1] = float64(int64(d[i]) + floorDiv(left+right, 2))
	}
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// waveLevels returns the decomposition depth for a rows×cols buffer.
func (c *SperrLike) waveLevels(rows, cols int) int {
	l := 0
	for (rows>>l) >= 8 && (cols>>l) >= 8 && l < 6 {
		l++
	}
	if c.Levels > 0 && l > c.Levels {
		l = c.Levels
	}
	return l
}

// fwdWave2D applies lv levels of the 2D wavelet in place over data
// (rows×cols, row-major), recursing on the LL subband.
func fwdWave2D(data []float64, rows, cols, lv int) {
	rl, cl := rows, cols
	tmp := make([]float64, maxInt(rows, cols))
	for l := 0; l < lv; l++ {
		for r := 0; r < rl; r++ {
			row := data[r*cols : r*cols+cl]
			fwd53(row, tmp[:cl])
			copy(row, tmp[:cl])
		}
		col := make([]float64, rl)
		for cc := 0; cc < cl; cc++ {
			for r := 0; r < rl; r++ {
				col[r] = data[r*cols+cc]
			}
			fwd53(col, tmp[:rl])
			for r := 0; r < rl; r++ {
				data[r*cols+cc] = tmp[r]
			}
		}
		rl = (rl + 1) / 2
		cl = (cl + 1) / 2
	}
}

// invWave2D inverts fwdWave2D.
func invWave2D(data []float64, rows, cols, lv int) {
	// Precompute per-level extents.
	rls := make([]int, lv+1)
	cls := make([]int, lv+1)
	rls[0], cls[0] = rows, cols
	for l := 1; l <= lv; l++ {
		rls[l] = (rls[l-1] + 1) / 2
		cls[l] = (cls[l-1] + 1) / 2
	}
	tmp := make([]float64, maxInt(rows, cols))
	for l := lv - 1; l >= 0; l-- {
		rl, cl := rls[l], cls[l]
		col := make([]float64, rl)
		src := make([]float64, rl)
		for cc := 0; cc < cl; cc++ {
			for r := 0; r < rl; r++ {
				src[r] = data[r*cols+cc]
			}
			inv53(src, col)
			for r := 0; r < rl; r++ {
				data[r*cols+cc] = col[r]
			}
		}
		for r := 0; r < rl; r++ {
			row := data[r*cols : r*cols+cl]
			copy(tmp[:cl], row)
			inv53(tmp[:cl], row)
		}
	}
}

// Compress implements Compressor.
func (c *SperrLike) Compress(buf *grid.Buffer, eps float64) ([]byte, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("sperrlike: error bound must be positive, got %g", eps)
	}
	rows, cols := buf.Rows, buf.Cols
	delta := eps // integer grid step; round-off ≤ δ/2 = ε/2
	qv := make([]float64, len(buf.Data))
	rawMode := false
	for i, v := range buf.Data {
		q := math.Round(v / delta)
		if math.IsNaN(q) || math.Abs(q) > 1e15 { // keep lifting exact in float64
			rawMode = true
			break
		}
		qv[i] = q
	}
	var w wbuf
	w.putFloat(eps)
	if rawMode {
		w.putByte(1)
		w.putFloats(buf.Data)
		return sealStream(tagSperr, rows, cols, w.Bytes()), nil
	}
	lv := c.waveLevels(rows, cols)
	coeffs := make([]float64, len(qv))
	copy(coeffs, qv)
	fwdWave2D(coeffs, rows, cols, lv)

	// Threshold certify loop: zero small details, verify the bound on the
	// exact reconstruction path, shrink the threshold on failure. t = 0
	// is lossless on the integer grid, so the loop always terminates
	// within the bound.
	thresh := math.Floor(eps / (2 * delta) * 4) // optimistic start
	work := make([]float64, len(coeffs))
	rec := make([]float64, len(coeffs))
	for {
		copy(work, coeffs)
		if thresh > 0 {
			applyThreshold(work, rows, cols, lv, thresh)
		}
		copy(rec, work)
		invWave2D(rec, rows, cols, lv)
		ok := true
		for i, v := range buf.Data {
			if math.Abs(v-rec[i]*delta) > eps {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		if thresh == 0 {
			// Unreachable: t=0 leaves only the ≤δ/2 rounding error.
			return nil, fmt.Errorf("sperrlike: internal error, lossless path exceeded bound")
		}
		thresh = math.Floor(thresh / 2)
	}

	w.putByte(0)
	w.putUvarint(uint64(lv))
	for _, v := range work {
		w.putVarint(int64(v))
	}
	return sealStream(tagSperr, rows, cols, w.Bytes()), nil
}

// applyThreshold zeroes detail coefficients with |c| ≤ t. The LL subband
// of the deepest level (top-left block) is preserved.
func applyThreshold(coeffs []float64, rows, cols, lv int, t float64) {
	rl, cl := rows, cols
	for l := 0; l < lv; l++ {
		rl = (rl + 1) / 2
		cl = (cl + 1) / 2
	}
	for r := 0; r < rows; r++ {
		for cc := 0; cc < cols; cc++ {
			if r < rl && cc < cl {
				continue
			}
			i := r*cols + cc
			if math.Abs(coeffs[i]) <= t {
				coeffs[i] = 0
			}
		}
	}
}

// Decompress implements Compressor.
func (c *SperrLike) Decompress(data []byte) (*grid.Buffer, error) {
	rows, cols, payload, err := openStream(tagSperr, data)
	if err != nil {
		return nil, err
	}
	r := newRbuf(payload)
	eps, err := r.getFloat()
	if err != nil {
		return nil, ErrCorrupt
	}
	mode, err := r.getByte()
	if err != nil {
		return nil, ErrCorrupt
	}
	out := grid.NewBuffer(rows, cols)
	if mode == 1 {
		fs, err := r.getFloats(rows * cols)
		if err != nil {
			return nil, ErrCorrupt
		}
		copy(out.Data, fs)
		return out, nil
	}
	lv64, err := r.getUvarint()
	if err != nil || lv64 > 16 {
		return nil, ErrCorrupt
	}
	// Each coefficient varint occupies at least one payload byte.
	if rows*cols > r.Len() {
		return nil, ErrCorrupt
	}
	coeffs := make([]float64, rows*cols)
	for i := range coeffs {
		v, err := r.getVarint()
		if err != nil {
			return nil, ErrCorrupt
		}
		coeffs[i] = float64(v)
	}
	invWave2D(coeffs, rows, cols, int(lv64))
	delta := eps
	for i, v := range coeffs {
		out.Data[i] = v * delta
	}
	return out, nil
}
