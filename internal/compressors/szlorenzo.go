package compressors

import (
	"fmt"
	"math"

	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/huffman"
	"github.com/crestlab/crest/internal/quant"
)

// SZLorenzo is the SZ2-family compressor: per-block selection between a 2D
// Lorenzo predictor and a least-squares plane (block regression) predictor,
// error-controlled quantization of the residuals, Huffman coding and a
// DEFLATE back end. The paper singles SZ2 out as one of the hardest
// compressors to estimate because of exactly this multi-predictor design
// (§II).
type SZLorenzo struct {
	// BlockSize is the edge length of prediction blocks (default 8).
	BlockSize int
	// Radius is the quantization radius (default quant.DefaultRadius).
	Radius int
}

// NewSZLorenzo returns an SZ2-family compressor with default parameters.
func NewSZLorenzo() *SZLorenzo { return &SZLorenzo{BlockSize: 8} }

// Name implements Compressor.
func (c *SZLorenzo) Name() string { return "szlorenzo" }

const (
	modeLorenzo byte = 0
	modeRegress byte = 1
)

// Compress implements Compressor.
func (c *SZLorenzo) Compress(buf *grid.Buffer, eps float64) ([]byte, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("szlorenzo: error bound must be positive, got %g", eps)
	}
	bs := c.BlockSize
	if bs <= 0 {
		bs = 8
	}
	q := quant.New(eps, c.Radius)
	rows, cols := buf.Rows, buf.Cols
	recon := make([]float64, rows*cols)

	nbr := (rows + bs - 1) / bs
	nbc := (cols + bs - 1) / bs
	modes := make([]byte, 0, nbr*nbc)
	var coefs []float64 // 3 per regression block, stored at float32 precision
	codes := make([]uint32, 0, rows*cols)
	var outliers []float64

	for br := 0; br < nbr; br++ {
		for bc := 0; bc < nbc; bc++ {
			r0, c0 := br*bs, bc*bs
			r1, c1 := minInt(r0+bs, rows), minInt(c0+bs, cols)
			mode, b0, b1, b2 := c.chooseMode(buf, r0, c0, r1, c1)
			modes = append(modes, mode)
			if mode == modeRegress {
				// Round-trip through float32 so encoder and decoder use
				// identical coefficients.
				b0 = float64(float32(b0))
				b1 = float64(float32(b1))
				b2 = float64(float32(b2))
				coefs = append(coefs, b0, b1, b2)
			}
			for i := r0; i < r1; i++ {
				for j := c0; j < c1; j++ {
					var pred float64
					if mode == modeRegress {
						pred = b0 + b1*float64(i-r0) + b2*float64(j-c0)
					} else {
						pred = lorenzo2D(recon, cols, i, j)
					}
					x := buf.Data[i*cols+j]
					code, ok := q.Quantize(x - pred)
					if !ok {
						codes = append(codes, quant.OutlierCode)
						outliers = append(outliers, x)
						recon[i*cols+j] = x
						continue
					}
					codes = append(codes, code)
					recon[i*cols+j] = pred + q.Dequantize(code)
				}
			}
		}
	}

	hblob, _ := huffman.Encode(codes)

	var w wbuf
	w.putFloat(eps)
	w.putUvarint(uint64(q.Radius()))
	w.putUvarint(uint64(bs))
	w.putUvarint(uint64(len(modes)))
	w.Write(packBits(modes))
	w.putUvarint(uint64(len(coefs)))
	for _, f := range coefs {
		w.putUvarint(uint64(math.Float32bits(float32(f))))
	}
	w.putUvarint(uint64(len(hblob)))
	w.Write(hblob)
	w.putUvarint(uint64(len(outliers)))
	w.putFloats(outliers)
	return sealStream(tagSZLorenzo, rows, cols, w.Bytes()), nil
}

// chooseMode picks the predictor with the smaller sampled absolute
// residual, using original (not reconstructed) neighbors as SZ2 does when
// sampling.
func (c *SZLorenzo) chooseMode(buf *grid.Buffer, r0, c0, r1, c1 int) (mode byte, b0, b1, b2 float64) {
	b0, b1, b2 = fitPlane(buf, r0, c0, r1, c1)
	var lorErr, regErr float64
	cols := buf.Cols
	for i := r0; i < r1; i++ {
		for j := c0; j < c1; j++ {
			x := buf.Data[i*cols+j]
			lorErr += math.Abs(x - lorenzo2D(buf.Data, cols, i, j))
			regErr += math.Abs(x - (b0 + b1*float64(i-r0) + b2*float64(j-c0)))
		}
	}
	if regErr < lorErr {
		return modeRegress, b0, b1, b2
	}
	return modeLorenzo, 0, 0, 0
}

// fitPlane least-squares fits x ≈ b0 + b1·di + b2·dj over the block. On a
// regular grid the normal equations decouple around the centroid.
func fitPlane(buf *grid.Buffer, r0, c0, r1, c1 int) (b0, b1, b2 float64) {
	h, w := r1-r0, c1-c0
	n := float64(h * w)
	cols := buf.Cols
	var sum, sumI, sumJ float64
	for i := r0; i < r1; i++ {
		for j := c0; j < c1; j++ {
			v := buf.Data[i*cols+j]
			sum += v
			sumI += v * float64(i-r0)
			sumJ += v * float64(j-c0)
		}
	}
	mi := float64(h-1) / 2
	mj := float64(w-1) / 2
	// Σ(di-mi)² over block = w·Σ(di-mi)² over rows, etc.
	sii := float64(w) * sumSqCentered(h)
	sjj := float64(h) * sumSqCentered(w)
	mean := sum / n
	if sii > 0 {
		b1 = (sumI - mi*sum) / sii
	}
	if sjj > 0 {
		b2 = (sumJ - mj*sum) / sjj
	}
	b0 = mean - b1*mi - b2*mj
	return b0, b1, b2
}

// sumSqCentered returns Σ_{t=0}^{n-1} (t - (n-1)/2)² = n(n²−1)/12.
func sumSqCentered(n int) float64 {
	fn := float64(n)
	return fn * (fn*fn - 1) / 12
}

// lorenzo2D is the first-order 2D Lorenzo predictor over the (partially
// filled) reconstruction plane: x̂[i,j] = x[i−1,j] + x[i,j−1] − x[i−1,j−1],
// with zero outside the domain.
func lorenzo2D(data []float64, cols, i, j int) float64 {
	var a, b, d float64
	if i > 0 {
		a = data[(i-1)*cols+j]
	}
	if j > 0 {
		b = data[i*cols+j-1]
	}
	if i > 0 && j > 0 {
		d = data[(i-1)*cols+j-1]
	}
	return a + b - d
}

// Decompress implements Compressor.
func (c *SZLorenzo) Decompress(data []byte) (*grid.Buffer, error) {
	rows, cols, payload, err := openStream(tagSZLorenzo, data)
	if err != nil {
		return nil, err
	}
	r := newRbuf(payload)
	eps, err := r.getFloat()
	if err != nil {
		return nil, ErrCorrupt
	}
	radius, err := r.getUvarint()
	if err != nil {
		return nil, ErrCorrupt
	}
	bs64, err := r.getUvarint()
	if err != nil || bs64 == 0 {
		return nil, ErrCorrupt
	}
	bs := int(bs64)
	nmodes, err := r.getUvarint()
	if err != nil || nmodes > uint64(rows*cols) {
		return nil, ErrCorrupt
	}
	modeBytes := make([]byte, (nmodes+7)/8)
	if _, err := r.Read(modeBytes); err != nil {
		return nil, ErrCorrupt
	}
	modes := unpackBits(modeBytes, int(nmodes))
	ncoef, err := r.getUvarint()
	if err != nil || ncoef > 3*nmodes || ncoef > uint64(r.Len()) {
		return nil, ErrCorrupt
	}
	coefs := make([]float64, ncoef)
	for i := range coefs {
		u, err := r.getUvarint()
		if err != nil {
			return nil, ErrCorrupt
		}
		coefs[i] = float64(math.Float32frombits(uint32(u)))
	}
	hlen, err := r.getUvarint()
	if err != nil || hlen > uint64(r.Len()) {
		return nil, ErrCorrupt
	}
	hblob := make([]byte, hlen)
	if _, err := r.Read(hblob); err != nil {
		return nil, ErrCorrupt
	}
	codes, err := huffman.Decode(hblob)
	if err != nil {
		return nil, fmt.Errorf("szlorenzo: %w", err)
	}
	nout, err := r.getUvarint()
	if err != nil {
		return nil, ErrCorrupt
	}
	outliers, err := r.getFloats(int(nout))
	if err != nil {
		return nil, ErrCorrupt
	}

	q := quant.New(eps, int(radius))
	out := grid.NewBuffer(rows, cols)
	nbr := (rows + bs - 1) / bs
	nbc := (cols + bs - 1) / bs
	if int(nmodes) != nbr*nbc {
		return nil, ErrCorrupt
	}
	ci, oi, bi, coefI := 0, 0, 0, 0
	for br := 0; br < nbr; br++ {
		for bc := 0; bc < nbc; bc++ {
			r0, c0 := br*bs, bc*bs
			r1, c1 := minInt(r0+bs, rows), minInt(c0+bs, cols)
			mode := modes[bi]
			bi++
			var b0, b1v, b2 float64
			if mode == modeRegress {
				if coefI+3 > len(coefs) {
					return nil, ErrCorrupt
				}
				b0, b1v, b2 = coefs[coefI], coefs[coefI+1], coefs[coefI+2]
				coefI += 3
			}
			for i := r0; i < r1; i++ {
				for j := c0; j < c1; j++ {
					if ci >= len(codes) {
						return nil, ErrCorrupt
					}
					code := codes[ci]
					ci++
					if code == quant.OutlierCode {
						if oi >= len(outliers) {
							return nil, ErrCorrupt
						}
						out.Data[i*cols+j] = outliers[oi]
						oi++
						continue
					}
					var pred float64
					if mode == modeRegress {
						pred = b0 + b1v*float64(i-r0) + b2*float64(j-c0)
					} else {
						pred = lorenzo2D(out.Data, cols, i, j)
					}
					out.Data[i*cols+j] = pred + q.Dequantize(code)
				}
			}
		}
	}
	return out, nil
}

func packBits(bits []byte) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b != 0 {
			out[i/8] |= 1 << (7 - i%8)
		}
	}
	return out
}

func unpackBits(b []byte, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		if i/8 < len(b) && b[i/8]&(1<<(7-i%8)) != 0 {
			out[i] = 1
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
