package compressors

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/crestlab/crest/internal/grid"
)

// testField builds a rows×cols buffer blending smooth structure and noise.
func testField(rows, cols int, noise float64, seed int64) *grid.Buffer {
	rng := rand.New(rand.NewSource(seed))
	buf := grid.NewBuffer(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := math.Sin(float64(i)/9)*math.Cos(float64(j)/13) +
				0.3*math.Sin(float64(i+j)/23) + noise*rng.NormFloat64()
			buf.Set(i, j, v)
		}
	}
	return buf
}

var testShapes = []struct{ rows, cols int }{
	{1, 1}, {1, 17}, {17, 1}, {4, 4}, {7, 5}, {32, 32}, {33, 31}, {67, 95},
}

func TestErrorBoundAllCompressorsSmooth(t *testing.T) {
	for _, name := range Names() {
		c := MustNew(name)
		for _, sh := range testShapes {
			buf := testField(sh.rows, sh.cols, 0.02, 42)
			for _, eps := range []float64{1e-1, 1e-3, 1e-6} {
				maxErr, ok, err := VerifyBound(c, buf, eps)
				if err != nil {
					t.Fatalf("%s %dx%d eps=%g: %v", name, sh.rows, sh.cols, eps, err)
				}
				if !ok {
					t.Errorf("%s %dx%d eps=%g: bound violated, maxErr=%g", name, sh.rows, sh.cols, eps, maxErr)
				}
			}
		}
	}
}

func TestErrorBoundPureNoise(t *testing.T) {
	buf := testField(40, 40, 5.0, 99)
	for _, name := range Names() {
		c := MustNew(name)
		maxErr, ok, err := VerifyBound(c, buf, 1e-4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !ok {
			t.Errorf("%s: bound violated on noise, maxErr=%g", name, maxErr)
		}
	}
}

func TestErrorBoundExtremeValues(t *testing.T) {
	buf := grid.NewBuffer(16, 16)
	vals := []float64{0, 1e-300, -1e-300, 1e300, -1e300, 1e-12, 123456789.123, -0.5}
	for i := range buf.Data {
		buf.Data[i] = vals[i%len(vals)]
	}
	for _, name := range Names() {
		c := MustNew(name)
		maxErr, ok, err := VerifyBound(c, buf, 1e-3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !ok {
			t.Errorf("%s: bound violated on extreme values, maxErr=%g", name, maxErr)
		}
	}
}

func TestErrorBoundConstantField(t *testing.T) {
	for _, v := range []float64{0, 3.25, -1e6} {
		buf := grid.NewBuffer(24, 24)
		for i := range buf.Data {
			buf.Data[i] = v
		}
		for _, name := range Names() {
			c := MustNew(name)
			maxErr, ok, err := VerifyBound(c, buf, 1e-5)
			if err != nil {
				t.Fatalf("%s const=%g: %v", name, v, err)
			}
			if !ok {
				t.Errorf("%s const=%g: bound violated, maxErr=%g", name, v, maxErr)
			}
			cr, err := Ratio(MustNew(name), buf, 1e-5)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if cr < 1 {
				t.Errorf("%s const=%g: constant field expanded, CR=%.2f", name, v, cr)
			}
		}
	}
}

// TestErrorBoundProperty is the headline property-based test: for random
// fields, shapes and bounds, every compressor must satisfy the absolute
// error invariant.
func TestErrorBoundProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short")
	}
	cfg := &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(7))}
	for _, name := range Names() {
		name := name
		prop := func(seed int64, rowsRaw, colsRaw uint8, epsExp int8) bool {
			rows := int(rowsRaw%48) + 1
			cols := int(colsRaw%48) + 1
			eps := math.Pow(10, -1-float64(uint8(epsExp)%6))
			rng := rand.New(rand.NewSource(seed))
			buf := grid.NewBuffer(rows, cols)
			scale := math.Pow(10, float64(rng.Intn(7)-3))
			for i := range buf.Data {
				buf.Data[i] = scale * (math.Sin(float64(i)/7) + 0.1*rng.NormFloat64())
			}
			_, ok, err := VerifyBound(MustNew(name), buf, eps)
			return err == nil && ok
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestSmoothCompressesBetterThanNoise(t *testing.T) {
	smooth := testField(64, 64, 0.0, 1)
	noisy := testField(64, 64, 1.0, 1)
	for _, name := range []string{"szlorenzo", "szinterp", "zfplike", "sperrlike", "mgardlike"} {
		c := MustNew(name)
		crS, err := Ratio(c, smooth, 1e-4)
		if err != nil {
			t.Fatalf("%s smooth: %v", name, err)
		}
		crN, err := Ratio(c, noisy, 1e-4)
		if err != nil {
			t.Fatalf("%s noisy: %v", name, err)
		}
		if crS <= crN {
			t.Errorf("%s: smooth CR %.2f not better than noisy CR %.2f", name, crS, crN)
		}
	}
}

func TestRatioImprovesWithLargerBound(t *testing.T) {
	buf := testField(64, 64, 0.05, 3)
	for _, name := range Names() {
		c := MustNew(name)
		crTight, err := Ratio(c, buf, 1e-6)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		crLoose, err := Ratio(c, buf, 1e-2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if crLoose < crTight*0.95 { // allow slack for container overhead
			t.Errorf("%s: CR at 1e-2 (%.2f) worse than at 1e-6 (%.2f)", name, crLoose, crTight)
		}
	}
}

func TestDecompressRejectsForeignStreams(t *testing.T) {
	buf := testField(16, 16, 0.1, 5)
	szData, err := MustNew("szlorenzo").Compress(buf, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MustNew("zfplike").Decompress(szData); err == nil {
		t.Error("zfplike decoded an szlorenzo stream without error")
	}
	if _, err := MustNew("szlorenzo").Decompress(nil); err == nil {
		t.Error("decoded nil stream without error")
	}
	if _, err := MustNew("szlorenzo").Decompress([]byte{0x51}); err == nil {
		t.Error("decoded truncated stream without error")
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 8 {
		t.Fatalf("expected 8 compressors, got %d: %v", len(names), names)
	}
	for _, n := range names {
		c, err := New(n)
		if err != nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		if c.Name() != n {
			t.Errorf("Name() = %q, want %q", c.Name(), n)
		}
	}
	if _, err := New("nope"); err == nil {
		t.Error("New(nope) succeeded")
	}
}

func TestInvalidErrorBound(t *testing.T) {
	buf := testField(8, 8, 0.1, 5)
	for _, name := range Names() {
		c := MustNew(name)
		if _, err := c.Compress(buf, 0); err == nil {
			t.Errorf("%s: accepted eps=0", name)
		}
		if _, err := c.Compress(buf, -1); err == nil {
			t.Errorf("%s: accepted eps<0", name)
		}
	}
}

// TestParameterSweeps: the error-bound invariant must hold for every
// exposed compressor parameter, not only the defaults.
func TestParameterSweeps(t *testing.T) {
	buf := testField(40, 36, 0.05, 77)
	eps := 1e-4
	check := func(name string, c Compressor) {
		t.Helper()
		maxErr, ok, err := VerifyBound(c, buf, eps)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !ok {
			t.Errorf("%s: bound violated, maxErr=%g", name, maxErr)
		}
	}
	for _, bs := range []int{2, 4, 6, 8, 16, 64} {
		check(fmt.Sprintf("szlorenzo/bs=%d", bs), &SZLorenzo{BlockSize: bs})
	}
	for _, radius := range []int{4, 256, 1 << 20} {
		check(fmt.Sprintf("szlorenzo/radius=%d", radius), &SZLorenzo{BlockSize: 8, Radius: radius})
		check(fmt.Sprintf("szinterp/radius=%d", radius), &SZInterp{Radius: radius})
		check(fmt.Sprintf("mgardlike/radius=%d", radius), &MGARDLike{Radius: radius})
	}
	for _, tile := range []int{4, 16, 48, 128} {
		check(fmt.Sprintf("tthreshlike/tile=%d", tile), &TThreshLike{Tile: tile})
	}
	for _, lv := range []int{1, 2, 6} {
		check(fmt.Sprintf("sperrlike/levels=%d", lv), &SperrLike{Levels: lv})
	}
}

// TestDoubleRoundTripIdempotent: decompress∘compress applied twice yields
// the same bytes the second time — reconstructions are fixed points.
func TestDoubleRoundTripIdempotent(t *testing.T) {
	buf := testField(32, 32, 0.1, 13)
	eps := 1e-3
	for _, name := range Names() {
		c := MustNew(name)
		b1, err := c.Compress(buf, eps)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d1, err := c.Decompress(b1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b2, err := c.Compress(d1, eps)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d2, err := c.Decompress(b2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// d2 must stay within eps of d1 (and usually be identical).
		if diff := d1.MaxAbsDiff(d2); diff > eps*(1+1e-12) {
			t.Errorf("%s: second round trip drifted by %g", name, diff)
		}
	}
}
