package compressors

import (
	"fmt"
	"math"

	"github.com/crestlab/crest/internal/grid"
)

// BitGroom leverages the IEEE-754 representation (§II): it rounds away
// low-order mantissa bits that are insignificant at the requested absolute
// error bound, then byte-plane transposes the result and applies lossless
// DEFLATE. The groomed mantissas are zero-heavy, which is exactly what the
// lossless stage exploits.
type BitGroom struct{}

// NewBitGroom returns a BitGrooming-style compressor.
func NewBitGroom() *BitGroom { return &BitGroom{} }

// Name implements Compressor.
func (c *BitGroom) Name() string { return "bitgroom" }

// groom rounds v to the nearest value whose mantissa has its low bits
// cleared such that the rounding error is ≤ eps/2. Values not
// representable this way (NaN/Inf) pass through unchanged.
func groom(v, eps float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return v
	}
	if math.Abs(v) <= eps {
		return 0
	}
	ebExp := int(math.Floor(math.Log2(eps)))
	bits := math.Float64bits(v)
	exp := int(bits>>52&0x7ff) - 1023
	if bits>>52&0x7ff == 0 {
		// Subnormal: magnitude < 2^-1022; |v| > eps was already excluded
		// above unless eps is also subnormal-scale — keep exact then.
		return v
	}
	// Clearing j low mantissa bits incurs ≤ 2^(exp-52+j-1) rounding error.
	j := 52 + ebExp - exp
	if j <= 0 {
		return v // already finer than the bound
	}
	if j > 52 {
		j = 52
	}
	half := uint64(1) << (j - 1)
	mask := ^(uint64(1)<<j - 1)
	return math.Float64frombits((bits + half) & mask)
}

// Compress implements Compressor.
func (c *BitGroom) Compress(buf *grid.Buffer, eps float64) ([]byte, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("bitgroom: error bound must be positive, got %g", eps)
	}
	n := len(buf.Data)
	groomed := make([]uint64, n)
	for i, v := range buf.Data {
		g := groom(v, eps)
		if math.Abs(v-g) > eps {
			g = v // exact fallback; groom's bound makes this unreachable
		}
		groomed[i] = math.Float64bits(g)
	}
	// Byte-plane transposition: all byte-7s, then byte-6s, ... so DEFLATE
	// sees long runs of identical exponent/cleared-mantissa bytes.
	planes := make([]byte, 8*n)
	for p := 0; p < 8; p++ {
		for i, b := range groomed {
			planes[p*n+i] = byte(b >> (8 * (7 - p)))
		}
	}
	return sealStream(tagBitGroom, buf.Rows, buf.Cols, planes), nil
}

// Decompress implements Compressor.
func (c *BitGroom) Decompress(data []byte) (*grid.Buffer, error) {
	rows, cols, payload, err := openStream(tagBitGroom, data)
	if err != nil {
		return nil, err
	}
	n := rows * cols
	if len(payload) != 8*n {
		return nil, ErrCorrupt
	}
	out := grid.NewBuffer(rows, cols)
	for i := 0; i < n; i++ {
		var b uint64
		for p := 0; p < 8; p++ {
			b = b<<8 | uint64(payload[p*n+i])
		}
		out.Data[i] = math.Float64frombits(b)
	}
	return out, nil
}
