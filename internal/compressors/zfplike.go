package compressors

import (
	"fmt"
	"math"

	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/huffman"
)

// ZFPLike is the ZFP-family compressor: independent 4×4 blocks are aligned
// to a common exponent (block-floating point), transformed with an exactly
// invertible integer wavelet (S-transform along rows then columns — the
// "near optimal block transform" role of §II), and entropy-coded by
// embedded bit planes from the most significant down to an error-bound
// cutoff. A verify-and-fallback pass lowers the cutoff (or stores the
// block exactly) whenever the certified reconstruction would exceed the
// bound, so the absolute error invariant always holds.
type ZFPLike struct{}

// NewZFPLike returns a ZFP-family compressor.
func NewZFPLike() *ZFPLike { return &ZFPLike{} }

// Name implements Compressor.
func (c *ZFPLike) Name() string { return "zfplike" }

const (
	zfpBlock = 4  // block edge
	zfpQ     = 48 // integer quantization precision in bits
)

// fwdLift4 applies the two-level integer S-transform to a 4-vector in
// place: exactly invertible with arithmetic shifts.
func fwdLift4(v *[4]int64) {
	l0 := (v[0] + v[1]) >> 1
	h0 := v[0] - v[1]
	l1 := (v[2] + v[3]) >> 1
	h1 := v[2] - v[3]
	ll := (l0 + l1) >> 1
	lh := l0 - l1
	v[0], v[1], v[2], v[3] = ll, lh, h0, h1
}

// invLift4 inverts fwdLift4.
func invLift4(v *[4]int64) {
	ll, lh, h0, h1 := v[0], v[1], v[2], v[3]
	l0 := ll + ((lh + 1) >> 1)
	l1 := l0 - lh
	a0 := l0 + ((h0 + 1) >> 1)
	a1 := a0 - h0
	a2 := l1 + ((h1 + 1) >> 1)
	a3 := a2 - h1
	v[0], v[1], v[2], v[3] = a0, a1, a2, a3
}

// fwdTransform2D applies the lifting along rows then columns of a 4×4
// block stored row-major.
func fwdTransform2D(b *[16]int64) {
	var t [4]int64
	for r := 0; r < 4; r++ {
		copy(t[:], b[4*r:4*r+4])
		fwdLift4(&t)
		copy(b[4*r:4*r+4], t[:])
	}
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			t[r] = b[4*r+c]
		}
		fwdLift4(&t)
		for r := 0; r < 4; r++ {
			b[4*r+c] = t[r]
		}
	}
}

// invTransform2D inverts fwdTransform2D (columns then rows).
func invTransform2D(b *[16]int64) {
	var t [4]int64
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			t[r] = b[4*r+c]
		}
		invLift4(&t)
		for r := 0; r < 4; r++ {
			b[4*r+c] = t[r]
		}
	}
	for r := 0; r < 4; r++ {
		copy(t[:], b[4*r:4*r+4])
		invLift4(&t)
		copy(b[4*r:4*r+4], t[:])
	}
}

// encodePlanes writes the coefficients' bit planes [maxPlane, cutoff] with
// a per-plane all-zero skip flag and on-first-significance sign bits.
func encodePlanes(w *huffman.BitWriter, coefs *[16]int64, maxPlane, cutoff int) {
	var mag [16]uint64
	var neg [16]bool
	for i, v := range coefs {
		if v < 0 {
			neg[i] = true
			mag[i] = uint64(-v)
		} else {
			mag[i] = uint64(v)
		}
	}
	var sig [16]bool
	for p := maxPlane; p >= cutoff; p-- {
		var any uint64
		for i := 0; i < 16; i++ {
			any |= (mag[i] >> uint(p)) & 1
		}
		if any == 0 {
			w.WriteBits(0, 1)
			continue
		}
		w.WriteBits(1, 1)
		for i := 0; i < 16; i++ {
			bit := (mag[i] >> uint(p)) & 1
			w.WriteBits(bit, 1)
			if bit == 1 && !sig[i] {
				sig[i] = true
				if neg[i] {
					w.WriteBits(1, 1)
				} else {
					w.WriteBits(0, 1)
				}
			}
		}
	}
}

// decodePlanes reverses encodePlanes, returning coefficients truncated at
// the cutoff plane.
func decodePlanes(r *huffman.BitReader, maxPlane, cutoff int) [16]int64 {
	var mag [16]uint64
	var neg, sig [16]bool
	for p := maxPlane; p >= cutoff; p-- {
		if r.ReadBits(1) == 0 {
			continue
		}
		for i := 0; i < 16; i++ {
			bit := r.ReadBits(1)
			mag[i] |= bit << uint(p)
			if bit == 1 && !sig[i] {
				sig[i] = true
				neg[i] = r.ReadBits(1) == 1
			}
		}
	}
	var out [16]int64
	for i := range out {
		v := int64(mag[i])
		if neg[i] {
			v = -v
		}
		out[i] = v
	}
	return out
}

// blockEncode encodes one block and returns the reconstruction it
// certifies. mode: 0 zero-block, 1 coded, 2 raw.
func zfpBlockEncode(w *huffman.BitWriter, vals *[16]float64, eps float64) (recon [16]float64) {
	maxAbs := 0.0
	for _, v := range vals {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs <= eps {
		// Entire block reconstructs as zero within bound.
		w.WriteBits(0, 2)
		return recon
	}
	_, emax := math.Frexp(maxAbs)
	scale := math.Ldexp(1, zfpQ-emax)
	var q [16]int64
	quantOK := true
	for i, v := range vals {
		f := v * scale
		if f > math.MaxInt64/4 || f < math.MinInt64/4 || math.IsNaN(f) {
			quantOK = false
			break
		}
		q[i] = int64(math.Round(f))
	}
	if quantOK {
		coefs := q
		fwdTransform2D(&coefs)
		maxPlane := 0
		for _, v := range coefs {
			a := v
			if a < 0 {
				a = -a
			}
			for p := 63; p >= maxPlane; p-- {
				if a>>uint(p)&1 == 1 {
					maxPlane = p
					break
				}
			}
		}
		// Initial cutoff from the error budget, then certify by exact
		// reconstruction; lower until the bound holds.
		intEps := eps * scale
		cutoff := 0
		if intEps > 16 {
			cutoff = int(math.Floor(math.Log2(intEps / 16)))
		}
		if cutoff > maxPlane {
			cutoff = maxPlane
		}
		for ; cutoff >= 0; cutoff-- {
			rec := truncReconstruct(&coefs, cutoff, scale)
			ok := true
			for i := range vals {
				if math.Abs(vals[i]-rec[i]) > eps {
					ok = false
					break
				}
			}
			if ok {
				w.WriteBits(1, 2)
				w.WriteBits(uint64(emax+1024), 12)
				w.WriteBits(uint64(maxPlane), 6)
				w.WriteBits(uint64(cutoff), 6)
				encodePlanes(w, &coefs, maxPlane, cutoff)
				return rec
			}
		}
	}
	// Raw fallback: exact storage.
	w.WriteBits(2, 2)
	for _, v := range vals {
		w.WriteBits(math.Float64bits(v), 57)
		w.WriteBits(math.Float64bits(v)>>57, 7)
	}
	return *vals
}

// truncReconstruct drops bit planes below cutoff, inverts the transform
// and rescales — exactly what the decoder will compute.
func truncReconstruct(coefs *[16]int64, cutoff int, scale float64) [16]float64 {
	var tr [16]int64
	mask := int64(-1) << uint(cutoff)
	for i, v := range coefs {
		if v >= 0 {
			tr[i] = v & mask
		} else {
			tr[i] = -((-v) & mask)
		}
	}
	invTransform2D(&tr)
	var out [16]float64
	inv := 1 / scale
	for i, v := range tr {
		out[i] = float64(v) * inv
	}
	return out
}

// Compress implements Compressor.
func (c *ZFPLike) Compress(buf *grid.Buffer, eps float64) ([]byte, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("zfplike: error bound must be positive, got %g", eps)
	}
	rows, cols := buf.Rows, buf.Cols
	w := huffman.NewBitWriter()
	var vals [16]float64
	for r0 := 0; r0 < rows; r0 += zfpBlock {
		for c0 := 0; c0 < cols; c0 += zfpBlock {
			// Gather with edge replication for partial blocks.
			for i := 0; i < zfpBlock; i++ {
				ri := minInt(r0+i, rows-1)
				for j := 0; j < zfpBlock; j++ {
					cj := minInt(c0+j, cols-1)
					vals[i*zfpBlock+j] = buf.Data[ri*cols+cj]
				}
			}
			zfpBlockEncode(w, &vals, eps)
		}
	}
	var out wbuf
	out.putFloat(eps)
	out.Write(w.Bytes())
	return sealStream(tagZFPLike, rows, cols, out.Bytes()), nil
}

// Decompress implements Compressor.
func (c *ZFPLike) Decompress(data []byte) (*grid.Buffer, error) {
	rows, cols, payload, err := openStream(tagZFPLike, data)
	if err != nil {
		return nil, err
	}
	if len(payload) < 8 {
		return nil, ErrCorrupt
	}
	r := huffman.NewBitReader(payload[8:])
	out := grid.NewBuffer(rows, cols)
	for r0 := 0; r0 < rows; r0 += zfpBlock {
		for c0 := 0; c0 < cols; c0 += zfpBlock {
			var rec [16]float64
			mode := r.ReadBits(2)
			switch mode {
			case 0:
				// zero block
			case 1:
				emax := int(r.ReadBits(12)) - 1024
				maxPlane := int(r.ReadBits(6))
				cutoff := int(r.ReadBits(6))
				if maxPlane > 63 || cutoff > maxPlane {
					return nil, ErrCorrupt
				}
				coefs := decodePlanes(r, maxPlane, cutoff)
				rec = truncReconstruct(&coefs, 0, math.Ldexp(1, zfpQ-emax))
			case 2:
				for i := 0; i < 16; i++ {
					lo := r.ReadBits(57)
					hi := r.ReadBits(7)
					rec[i] = math.Float64frombits(hi<<57 | lo)
				}
			default:
				return nil, ErrCorrupt
			}
			for i := 0; i < zfpBlock; i++ {
				ri := r0 + i
				if ri >= rows {
					break
				}
				for j := 0; j < zfpBlock; j++ {
					cj := c0 + j
					if cj >= cols {
						break
					}
					out.Data[ri*cols+cj] = rec[i*zfpBlock+j]
				}
			}
		}
	}
	return out, nil
}
