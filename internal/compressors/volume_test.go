package compressors

import (
	"math"
	"testing"

	"github.com/crestlab/crest/internal/grid"
)

func testVolume(nz, ny, nx int) *grid.Volume {
	v := grid.NewVolume(nz, ny, nx)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v.Set(z, y, x, math.Sin(float64(x)/7+float64(z)/3)*math.Cos(float64(y)/9))
			}
		}
	}
	return v
}

func TestVolumeRoundTripAllCompressors(t *testing.T) {
	vol := testVolume(5, 24, 20)
	eps := 1e-4
	for _, name := range Names() {
		c := MustNew(name)
		blob, err := CompressVolume(c, vol, eps, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := DecompressVolume(c, blob, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.NZ != vol.NZ || got.NY != vol.NY || got.NX != vol.NX {
			t.Fatalf("%s: shape %dx%dx%d", name, got.NZ, got.NY, got.NX)
		}
		var worst float64
		for i := range vol.Data {
			if d := math.Abs(vol.Data[i] - got.Data[i]); d > worst {
				worst = d
			}
		}
		if worst > eps*(1+1e-12) {
			t.Errorf("%s: volume max error %g > eps", name, worst)
		}
	}
}

func TestVolumeRejectsCorrupt(t *testing.T) {
	c := MustNew("szinterp")
	if _, err := DecompressVolume(c, nil, 1); err == nil {
		t.Error("nil accepted")
	}
	if _, err := DecompressVolume(c, []byte("CRVL1"), 1); err == nil {
		t.Error("empty body accepted")
	}
	vol := testVolume(3, 8, 8)
	blob, err := CompressVolume(c, vol, 1e-3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressVolume(c, blob[:len(blob)/2], 1); err == nil {
		t.Error("truncated volume accepted")
	}
	// Foreign compressor rejects the slice streams.
	if _, err := DecompressVolume(MustNew("zfplike"), blob, 1); err == nil {
		t.Error("foreign compressor accepted")
	}
}

func TestRelativeBound(t *testing.T) {
	buf := grid.NewBuffer(2, 2)
	copy(buf.Data, []float64{0, 5, 10, 2})
	if got := RelativeBound(buf, 0.01); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelativeBound = %g, want 0.1", got)
	}
	constant := grid.NewBuffer(2, 2)
	if got := RelativeBound(constant, 0.01); got != 0 {
		t.Errorf("constant RelativeBound = %g", got)
	}
	// Relative bound composes with the absolute-bound invariant.
	data := testVolume(1, 16, 16).Slice(0)
	eps := RelativeBound(data, 1e-3)
	maxErr, ok, err := VerifyBound(MustNew("szlorenzo"), data, eps)
	if err != nil || !ok {
		t.Errorf("relative-bound roundtrip: err=%v ok=%v maxErr=%g", err, ok, maxErr)
	}
}
