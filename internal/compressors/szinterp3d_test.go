package compressors

import (
	"math"
	"testing"

	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/synthdata"
)

func TestSZInterp3DVisitCoversAllPointsOnce(t *testing.T) {
	for _, sh := range []struct{ nz, ny, nx int }{
		{1, 1, 1}, {1, 1, 9}, {1, 9, 1}, {9, 1, 1}, {2, 3, 4}, {5, 8, 7}, {8, 16, 12},
	} {
		recon := make([]float64, sh.nz*sh.ny*sh.nx)
		seen := make([]int, len(recon))
		szinterp3dVisit(recon, sh.nz, sh.ny, sh.nx, func(z, y, x int, pred float64) {
			seen[(z*sh.ny+y)*sh.nx+x]++
		})
		if seen[0] != 0 {
			t.Errorf("%v: anchor visited", sh)
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] != 1 {
				t.Fatalf("%v: point %d visited %d times", sh, i, seen[i])
			}
		}
	}
}

func TestSZInterp3DErrorBound(t *testing.T) {
	vol := testVolume(6, 20, 24)
	c := NewSZInterp3D()
	for _, eps := range []float64{1e-2, 1e-4, 1e-6} {
		blob, err := c.CompressVolume(vol, eps)
		if err != nil {
			t.Fatal(err)
		}
		back, err := c.DecompressVolume(blob)
		if err != nil {
			t.Fatal(err)
		}
		var worst float64
		for i := range vol.Data {
			if d := math.Abs(vol.Data[i] - back.Data[i]); d > worst {
				worst = d
			}
		}
		if worst > eps*(1+1e-12) {
			t.Errorf("eps=%g: max error %g", eps, worst)
		}
	}
	if _, err := c.CompressVolume(vol, 0); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestSZInterp3DRejectsCorrupt(t *testing.T) {
	c := NewSZInterp3D()
	if _, err := c.DecompressVolume(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := c.DecompressVolume([]byte("CR3D1")); err == nil {
		t.Error("empty body accepted")
	}
	vol := testVolume(2, 8, 8)
	blob, err := c.CompressVolume(vol, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DecompressVolume(blob[:len(blob)-4]); err == nil {
		t.Error("truncated accepted")
	}
}

// TestNative3DBeatsSlicedOnZCorrelatedData: the point of the native 3D
// hierarchy — with strong correlation along z, predicting across slices
// must compress better than compressing each slice independently.
func TestNative3DBeatsSlicedOnZCorrelatedData(t *testing.T) {
	ds := synthdata.Miranda(synthdata.Options{NZ: 16, NY: 48, NX: 48, Seed: 5})
	f := ds.Field("density")
	vol := grid.NewVolume(len(f.Buffers), 48, 48)
	for z, b := range f.Buffers {
		copy(vol.Data[z*48*48:], b.Data)
	}
	eps := 1e-4
	c3d := NewSZInterp3D()
	blob3d, err := c3d.CompressVolume(vol, eps)
	if err != nil {
		t.Fatal(err)
	}
	blob2d, err := CompressVolume(MustNew("szinterp"), vol, eps, 1)
	if err != nil {
		t.Fatal(err)
	}
	cr3d := float64(8*len(vol.Data)) / float64(len(blob3d))
	cr2d := float64(8*len(vol.Data)) / float64(len(blob2d))
	t.Logf("native 3D CR %.2f vs sliced 2D CR %.2f", cr3d, cr2d)
	if cr3d <= cr2d {
		t.Errorf("native 3D CR %.2f not above sliced CR %.2f on z-correlated data", cr3d, cr2d)
	}
}

func FuzzDecompressSZInterp3D(f *testing.F) {
	vol := testVolume(2, 6, 6)
	c := NewSZInterp3D()
	blob, err := c.CompressVolume(vol, 1e-3)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte("CR3D1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if v, err := c.DecompressVolume(data); err == nil {
			if v == nil || len(v.Data) != v.NZ*v.NY*v.NX {
				t.Fatal("accepted stream yielded invalid volume")
			}
		}
	})
}
