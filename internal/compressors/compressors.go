// Package compressors implements a suite of error-bounded lossy
// compressors for 2D float64 buffers, one per design family surveyed in
// the paper's background section (§II):
//
//   - szlorenzo:  prediction-based with Lorenzo + block regression
//     predictors, error-controlled quantization and Huffman coding
//     (SZ2 family).
//   - szinterp:   multi-level cubic/linear interpolation prediction
//     (SZ3 family).
//   - zfplike:    block-floating-point + orthogonal block transform +
//     embedded bit-plane coding (ZFP family).
//   - bitgroom:   IEEE-754 mantissa grooming + lossless coding
//     (BitGrooming).
//   - digitround: decimal rounding + lossless coding (DigitRounding).
//   - sperrlike:  multi-level lifted wavelets + thresholded coefficient
//     coding (SPERR family).
//   - tthreshlike: tiled SVD truncation (TThresh family).
//   - mgardlike:  multilevel hierarchical decomposition with per-level
//     error budgets (MGARD family).
//
// Every compressor guarantees the absolute pointwise error bound
// max|x−x̂| ≤ ε, enforced structurally and — for the transform coders —
// by a verify-and-fallback pass that stores blocks exactly whenever the
// transform path cannot certify the bound.
package compressors

import (
	"errors"
	"fmt"
	"sort"

	"github.com/crestlab/crest/internal/grid"
)

// Compressor is an error-bounded lossy compressor for 2D buffers.
type Compressor interface {
	// Name returns the registry name of the compressor.
	Name() string
	// Compress encodes buf so that every reconstructed value is within
	// eps of the original.
	Compress(buf *grid.Buffer, eps float64) ([]byte, error)
	// Decompress reverses Compress. The identity metadata (dataset,
	// field, step) is not preserved.
	Decompress(data []byte) (*grid.Buffer, error)
}

// ErrCorrupt reports an undecodable compressed stream.
var ErrCorrupt = errors.New("compressors: corrupt stream")

// ErrUnknown reports a compressor name absent from the registry.
var ErrUnknown = errors.New("compressors: unknown compressor")

// registry of all built-in compressors, keyed by name.
var registry = map[string]func() Compressor{
	"szlorenzo":   func() Compressor { return NewSZLorenzo() },
	"szinterp":    func() Compressor { return NewSZInterp() },
	"zfplike":     func() Compressor { return NewZFPLike() },
	"bitgroom":    func() Compressor { return NewBitGroom() },
	"digitround":  func() Compressor { return NewDigitRound() },
	"sperrlike":   func() Compressor { return NewSperrLike() },
	"tthreshlike": func() Compressor { return NewTThreshLike() },
	"mgardlike":   func() Compressor { return NewMGARDLike() },
}

// New returns a fresh compressor by registry name.
func New(name string) (Compressor, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	return f(), nil
}

// MustNew is New that panics on unknown names; for tests and examples.
func MustNew(name string) Compressor {
	c, err := New(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Names lists all registered compressor names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Ratio compresses buf with c at bound eps and returns the compression
// ratio uncompressed/compressed. It is the ground truth of Algorithm 2.
func Ratio(c Compressor, buf *grid.Buffer, eps float64) (float64, error) {
	data, err := c.Compress(buf, eps)
	if err != nil {
		return 0, err
	}
	if len(data) == 0 {
		return 0, fmt.Errorf("compressors: %s produced empty output", c.Name())
	}
	return float64(buf.SizeBytes()) / float64(len(data)), nil
}

// VerifyBound round-trips buf through c and reports the maximum absolute
// error and whether it satisfies eps. It is the invariant checked by the
// property-based tests.
func VerifyBound(c Compressor, buf *grid.Buffer, eps float64) (maxErr float64, ok bool, err error) {
	data, err := c.Compress(buf, eps)
	if err != nil {
		return 0, false, err
	}
	dec, err := c.Decompress(data)
	if err != nil {
		return 0, false, err
	}
	maxErr = buf.MaxAbsDiff(dec)
	return maxErr, maxErr <= eps*(1+1e-12), nil
}
