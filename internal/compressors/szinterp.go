package compressors

import (
	"fmt"

	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/huffman"
	"github.com/crestlab/crest/internal/quant"
)

// SZInterp is the SZ3-family compressor: level-by-level dynamic
// interpolation prediction (cubic where four neighbors exist, linear at
// boundaries) over a dyadic grid hierarchy, followed by error-controlled
// quantization and Huffman coding. Unlike SZLorenzo it has no fixed block
// design, mirroring the paper's observation that SZ3's interpolation makes
// its ratio easier to predict than SZ2's (§II).
type SZInterp struct {
	// Radius is the quantization radius (default quant.DefaultRadius).
	Radius int
}

// NewSZInterp returns an SZ3-family compressor with default parameters.
func NewSZInterp() *SZInterp { return &SZInterp{} }

// Name implements Compressor.
func (c *SZInterp) Name() string { return "szinterp" }

// visit enumerates, in a deterministic order shared by the encoder and
// decoder, every grid point except (0,0) together with its interpolation
// prediction computed from already-visited points in recon.
func szinterpVisit(recon []float64, rows, cols int, fn func(i, j int, pred float64)) {
	s := 1
	for s < rows || s < cols {
		s <<= 1
	}
	for ; s >= 2; s >>= 1 {
		h := s / 2
		// Pass 1: rows on the coarse lattice, new columns between knowns.
		for i := 0; i < rows; i += s {
			for j := h; j < cols; j += s {
				fn(i, j, interp1D(recon, cols, i, j, 0, h, cols))
			}
		}
		// Pass 2: new rows, all columns on the refined lattice.
		for i := h; i < rows; i += s {
			for j := 0; j < cols; j += h {
				fn(i, j, interp1D(recon, cols, i, j, h, 0, rows))
			}
		}
	}
}

// interp1D predicts recon[i,j] along one axis. (di,dj) is the unit step of
// the axis scaled by the half-stride h; limit is the extent along that
// axis. Cubic interpolation with weights (−1/16, 9/16, 9/16, −1/16) is
// used when all four neighbors are in-bounds, linear when two are, and
// nearest otherwise.
func interp1D(recon []float64, cols, i, j, di, dj, limit int) float64 {
	at := func(k int) float64 { // k in units of half-strides from the point
		return recon[(i+k*di)*cols+(j+k*dj)]
	}
	pos := i*di/maxInt(di, 1) + j*dj/maxInt(dj, 1) // position along the axis
	h := maxInt(di, dj)
	lo1, hi1 := pos-h >= 0, pos+h < limit
	lo3, hi3 := pos-3*h >= 0, pos+3*h < limit
	switch {
	case lo1 && hi1 && lo3 && hi3:
		return (-at(-3) + 9*at(-1) + 9*at(1) - at(3)) / 16
	case lo1 && hi1:
		return (at(-1) + at(1)) / 2
	case lo1 && lo3:
		return 2*at(-1) - at(-3) // linear extrapolation
	case lo1:
		return at(-1)
	case hi1 && hi3:
		return 2*at(1) - at(3)
	case hi1:
		return at(1)
	default:
		return 0
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Compress implements Compressor.
func (c *SZInterp) Compress(buf *grid.Buffer, eps float64) ([]byte, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("szinterp: error bound must be positive, got %g", eps)
	}
	q := quant.New(eps, c.Radius)
	rows, cols := buf.Rows, buf.Cols
	recon := make([]float64, rows*cols)
	anchor := buf.Data[0]
	recon[0] = anchor

	codes := make([]uint32, 0, rows*cols)
	var outliers []float64
	szinterpVisit(recon, rows, cols, func(i, j int, pred float64) {
		x := buf.Data[i*cols+j]
		code, ok := q.Quantize(x - pred)
		if !ok {
			codes = append(codes, quant.OutlierCode)
			outliers = append(outliers, x)
			recon[i*cols+j] = x
			return
		}
		codes = append(codes, code)
		recon[i*cols+j] = pred + q.Dequantize(code)
	})

	hblob, _ := huffman.Encode(codes)
	var w wbuf
	w.putFloat(eps)
	w.putUvarint(uint64(q.Radius()))
	w.putFloat(anchor)
	w.putUvarint(uint64(len(hblob)))
	w.Write(hblob)
	w.putUvarint(uint64(len(outliers)))
	w.putFloats(outliers)
	return sealStream(tagSZInterp, rows, cols, w.Bytes()), nil
}

// Decompress implements Compressor.
func (c *SZInterp) Decompress(data []byte) (*grid.Buffer, error) {
	rows, cols, payload, err := openStream(tagSZInterp, data)
	if err != nil {
		return nil, err
	}
	r := newRbuf(payload)
	eps, err := r.getFloat()
	if err != nil {
		return nil, ErrCorrupt
	}
	radius, err := r.getUvarint()
	if err != nil {
		return nil, ErrCorrupt
	}
	anchor, err := r.getFloat()
	if err != nil {
		return nil, ErrCorrupt
	}
	hlen, err := r.getUvarint()
	if err != nil || hlen > uint64(r.Len()) {
		return nil, ErrCorrupt
	}
	hblob := make([]byte, hlen)
	if _, err := r.Read(hblob); err != nil {
		return nil, ErrCorrupt
	}
	codes, err := huffman.Decode(hblob)
	if err != nil {
		return nil, fmt.Errorf("szinterp: %w", err)
	}
	nout, err := r.getUvarint()
	if err != nil {
		return nil, ErrCorrupt
	}
	outliers, err := r.getFloats(int(nout))
	if err != nil {
		return nil, ErrCorrupt
	}

	q := quant.New(eps, int(radius))
	out := grid.NewBuffer(rows, cols)
	out.Data[0] = anchor
	ci, oi := 0, 0
	var decodeErr error
	szinterpVisit(out.Data, rows, cols, func(i, j int, pred float64) {
		if decodeErr != nil {
			return
		}
		if ci >= len(codes) {
			decodeErr = ErrCorrupt
			return
		}
		code := codes[ci]
		ci++
		if code == quant.OutlierCode {
			if oi >= len(outliers) {
				decodeErr = ErrCorrupt
				return
			}
			out.Data[i*cols+j] = outliers[oi]
			oi++
			return
		}
		out.Data[i*cols+j] = pred + q.Dequantize(code)
	})
	if decodeErr != nil {
		return nil, decodeErr
	}
	return out, nil
}
