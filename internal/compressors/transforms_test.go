package compressors

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/crestlab/crest/internal/huffman"
)

// transforms_test.go white-box tests the exactly-invertible integer
// transforms inside the zfplike, sperrlike and szinterp/mgardlike coders —
// the invariants the verify-and-fallback error-bound logic relies on.

func TestLift4RoundTrip(t *testing.T) {
	prop := func(a, b, c, d int32) bool {
		v := [4]int64{int64(a), int64(b), int64(c), int64(d)}
		orig := v
		fwdLift4(&v)
		invLift4(&v)
		return v == orig
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTransform2DRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b [16]int64
		for i := range b {
			b[i] = int64(rng.Int31()) - 1<<30
		}
		orig := b
		fwdTransform2D(&b)
		invTransform2D(&b)
		return b == orig
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTransform2DDecorrelatesConstantBlock(t *testing.T) {
	var b [16]int64
	for i := range b {
		b[i] = 1000
	}
	fwdTransform2D(&b)
	// A constant block must concentrate into the single LL coefficient.
	if b[0] == 0 {
		t.Error("LL coefficient zero for constant block")
	}
	for i := 1; i < 16; i++ {
		if b[i] != 0 {
			t.Errorf("detail coefficient %d = %d for constant block", i, b[i])
		}
	}
}

func TestBitPlaneCodecRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var coefs [16]int64
		maxPlane := 0
		for i := range coefs {
			coefs[i] = int64(rng.Int31()) - 1<<30
			a := coefs[i]
			if a < 0 {
				a = -a
			}
			for p := 62; p >= 0; p-- {
				if a>>uint(p)&1 == 1 {
					if p > maxPlane {
						maxPlane = p
					}
					break
				}
			}
		}
		w := huffman.NewBitWriter()
		encodePlanes(w, &coefs, maxPlane, 0)
		r := huffman.NewBitReader(w.Bytes())
		got := decodePlanes(r, maxPlane, 0)
		return got == coefs
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFwd53RoundTrip(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%64) + 1
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(rng.Intn(2000000) - 1000000)
		}
		orig := append([]float64(nil), x...)
		tmp := make([]float64, n)
		fwd53(x, tmp)
		out := make([]float64, n)
		inv53(tmp, out)
		for i := range out {
			if out[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWave2DRoundTrip(t *testing.T) {
	prop := func(seed int64, rRaw, cRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := int(rRaw%48) + 1
		cols := int(cRaw%48) + 1
		lv := (&SperrLike{}).waveLevels(rows, cols)
		data := make([]float64, rows*cols)
		for i := range data {
			data[i] = float64(rng.Intn(200000) - 100000)
		}
		orig := append([]float64(nil), data...)
		fwdWave2D(data, rows, cols, lv)
		invWave2D(data, rows, cols, lv)
		for i := range data {
			if data[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSZInterpVisitCoversAllPointsOnce: the interpolation visitor must hit
// every grid point except (0,0) exactly once, in the same order for
// encoder and decoder.
func TestSZInterpVisitCoversAllPointsOnce(t *testing.T) {
	for _, sh := range []struct{ rows, cols int }{
		{1, 1}, {1, 9}, {9, 1}, {2, 2}, {5, 7}, {16, 16}, {17, 33}, {48, 31},
	} {
		recon := make([]float64, sh.rows*sh.cols)
		seen := make([]int, sh.rows*sh.cols)
		var order []int
		szinterpVisit(recon, sh.rows, sh.cols, func(i, j int, pred float64) {
			seen[i*sh.cols+j]++
			order = append(order, i*sh.cols+j)
		})
		if seen[0] != 0 {
			t.Errorf("%dx%d: anchor (0,0) visited", sh.rows, sh.cols)
		}
		for idx := 1; idx < len(seen); idx++ {
			if seen[idx] != 1 {
				t.Fatalf("%dx%d: point %d visited %d times", sh.rows, sh.cols, idx, seen[idx])
			}
		}
		// Determinism: a second pass yields the identical order.
		var order2 []int
		szinterpVisit(recon, sh.rows, sh.cols, func(i, j int, pred float64) {
			order2 = append(order2, i*sh.cols+j)
		})
		for i := range order {
			if order[i] != order2[i] {
				t.Fatalf("%dx%d: visit order not deterministic", sh.rows, sh.cols)
			}
		}
	}
}

func TestMGARDVisitLevelsAreMonotone(t *testing.T) {
	rows, cols := 33, 17
	recon := make([]float64, rows*cols)
	prev := -1
	count := 0
	mgardVisit(recon, rows, cols, func(level, i, j int, pred float64) {
		if level < prev {
			t.Fatalf("level decreased: %d after %d", level, prev)
		}
		prev = level
		count++
	})
	if count != rows*cols-1 {
		t.Errorf("visited %d points, want %d", count, rows*cols-1)
	}
}

func TestLevelEps(t *testing.T) {
	eps := 1.0
	n := 6
	// Finest level gets full eps, coarser at most 8x tighter.
	if e := levelEps(eps, n-1, n); e != eps {
		t.Errorf("finest level eps = %g", e)
	}
	if e := levelEps(eps, 0, n); e != eps/8 {
		t.Errorf("coarsest level eps = %g", e)
	}
	for l := 0; l < n; l++ {
		if e := levelEps(eps, l, n); e <= 0 || e > eps {
			t.Errorf("level %d eps = %g out of (0, eps]", l, e)
		}
	}
}
