package compressors

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// container.go holds the shared serialization helpers: a tiny header
// (format tag + shape), varint/float primitives, and a DEFLATE wrapper
// used as the generic lossless back end (standing in for the zstd stage of
// the real compressors).

// format tags distinguish the streams so Decompress can reject foreign
// data.
const (
	tagSZLorenzo byte = 0x51
	tagSZInterp  byte = 0x52
	tagZFPLike   byte = 0x53
	tagBitGroom  byte = 0x54
	tagDigitRnd  byte = 0x55
	tagSperr     byte = 0x56
	tagTThresh   byte = 0x57
	tagMGARD     byte = 0x58
)

type wbuf struct {
	bytes.Buffer
}

func (w *wbuf) putByte(b byte) { w.WriteByte(b) }

func (w *wbuf) putUvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	w.Write(tmp[:n])
}

func (w *wbuf) putVarint(v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	w.Write(tmp[:n])
}

func (w *wbuf) putFloat(f float64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(f))
	w.Write(tmp[:])
}

func (w *wbuf) putFloats(fs []float64) {
	for _, f := range fs {
		w.putFloat(f)
	}
}

type rbuf struct {
	*bytes.Reader
}

func newRbuf(b []byte) *rbuf { return &rbuf{bytes.NewReader(b)} }

func (r *rbuf) getByte() (byte, error) { return r.ReadByte() }

func (r *rbuf) getUvarint() (uint64, error) { return binary.ReadUvarint(r.Reader) }

func (r *rbuf) getVarint() (int64, error) { return binary.ReadVarint(r.Reader) }

func (r *rbuf) getFloat() (float64, error) {
	var tmp [8]byte
	if _, err := io.ReadFull(r.Reader, tmp[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(tmp[:])), nil
}

func (r *rbuf) getFloats(n int) ([]float64, error) {
	// A float64 costs 8 payload bytes; reject declared counts the
	// remaining payload cannot possibly hold before allocating.
	if n < 0 || n > r.Len()/8 {
		return nil, ErrCorrupt
	}
	out := make([]float64, n)
	for i := range out {
		f, err := r.getFloat()
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

// deflate losslessly compresses b at the default level.
func deflate(b []byte) []byte {
	var out bytes.Buffer
	fw, err := flate.NewWriter(&out, flate.DefaultCompression)
	if err != nil {
		panic(err) // only on invalid level
	}
	if _, err := fw.Write(b); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	if err := fw.Close(); err != nil {
		panic(err)
	}
	return out.Bytes()
}

// inflate reverses deflate.
func inflate(b []byte) ([]byte, error) {
	fr := flate.NewReader(bytes.NewReader(b))
	defer fr.Close()
	out, err := io.ReadAll(fr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return out, nil
}

// sealStream frames a payload with tag + shape and deflates the payload.
func sealStream(tag byte, rows, cols int, payload []byte) []byte {
	var w wbuf
	w.putByte(tag)
	w.putUvarint(uint64(rows))
	w.putUvarint(uint64(cols))
	comp := deflate(payload)
	w.putUvarint(uint64(len(comp)))
	w.Write(comp)
	return w.Bytes()
}

// openStream validates the tag and returns shape plus the inflated
// payload.
func openStream(tag byte, data []byte) (rows, cols int, payload []byte, err error) {
	r := newRbuf(data)
	got, err := r.getByte()
	if err != nil || got != tag {
		return 0, 0, nil, fmt.Errorf("%w: bad tag", ErrCorrupt)
	}
	ur, err := r.getUvarint()
	if err != nil {
		return 0, 0, nil, ErrCorrupt
	}
	uc, err := r.getUvarint()
	if err != nil {
		return 0, 0, nil, ErrCorrupt
	}
	n, err := r.getUvarint()
	if err != nil || n > uint64(r.Len()) {
		return 0, 0, nil, ErrCorrupt
	}
	comp := make([]byte, n)
	if _, err := io.ReadFull(r.Reader, comp); err != nil {
		return 0, 0, nil, ErrCorrupt
	}
	payload, err = inflate(comp)
	if err != nil {
		return 0, 0, nil, err
	}
	// Cap the declared shape so corrupt headers cannot demand absurd
	// allocations (2^26 elements = 512 MiB of float64, far above any
	// buffer this library produces).
	if ur == 0 || uc == 0 || ur*uc > 1<<24 {
		return 0, 0, nil, ErrCorrupt
	}
	return int(ur), int(uc), payload, nil
}

// rawStoreBytes encodes the full buffer verbatim; the universal fallback
// when a lossy path cannot certify the error bound.
func rawStoreBytes(data []float64) []byte {
	var w wbuf
	w.putFloats(data)
	return w.Bytes()
}
