package compressors

import (
	"fmt"

	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/huffman"
	"github.com/crestlab/crest/internal/quant"
)

// SZInterp3D is the native 3D variant of the SZ3-family compressor: the
// dyadic interpolation hierarchy runs over the full volume, so prediction
// exploits the correlation along the slowest (z) dimension that
// slice-by-slice compression throws away — the reason the real SZ3
// compresses 3D fields natively. Streams are independent of the 2D
// SZInterp format.
type SZInterp3D struct {
	// Radius is the quantization radius (default quant.DefaultRadius).
	Radius int
}

// NewSZInterp3D returns a native-3D SZ3-family compressor.
func NewSZInterp3D() *SZInterp3D { return &SZInterp3D{} }

// Name returns the registry-style name (the type is a VolumeCompressor,
// not part of the 2D registry).
func (c *SZInterp3D) Name() string { return "szinterp3d" }

// vol3dMagic identifies a native-3D stream.
var vol3dMagic = []byte("CR3D1")

// szinterp3dVisit enumerates every lattice point except (0,0,0) exactly
// once, coarse to fine, with its interpolation prediction from
// already-visited points. Axis passes per level: x within known (z,y)
// planes, then y within known z planes, then z.
func szinterp3dVisit(recon []float64, nz, ny, nx int, fn func(z, y, x int, pred float64)) {
	s := 1
	for s < nz || s < ny || s < nx {
		s <<= 1
	}
	idx := func(z, y, x int) int { return (z*ny+y)*nx + x }
	// interp predicts along one axis with cubic/linear/nearest fallbacks.
	interp := func(z, y, x, dz, dy, dx, pos, limit, h int) float64 {
		at := func(k int) float64 { return recon[idx(z+k*dz*h, y+k*dy*h, x+k*dx*h)] }
		lo1, hi1 := pos-h >= 0, pos+h < limit
		lo3, hi3 := pos-3*h >= 0, pos+3*h < limit
		switch {
		case lo1 && hi1 && lo3 && hi3:
			return (-at(-3) + 9*at(-1) + 9*at(1) - at(3)) / 16
		case lo1 && hi1:
			return (at(-1) + at(1)) / 2
		case lo1 && lo3:
			return 2*at(-1) - at(-3)
		case lo1:
			return at(-1)
		case hi1 && hi3:
			return 2*at(1) - at(3)
		case hi1:
			return at(1)
		default:
			return 0
		}
	}
	for ; s >= 2; s >>= 1 {
		h := s / 2
		// Pass 1: new x positions on rows with coarse y and z.
		for z := 0; z < nz; z += s {
			for y := 0; y < ny; y += s {
				for x := h; x < nx; x += s {
					fn(z, y, x, interp(z, y, x, 0, 0, 1, x, nx, h))
				}
			}
		}
		// Pass 2: new y positions, x on the refined lattice, z coarse.
		for z := 0; z < nz; z += s {
			for y := h; y < ny; y += s {
				for x := 0; x < nx; x += h {
					fn(z, y, x, interp(z, y, x, 0, 1, 0, y, ny, h))
				}
			}
		}
		// Pass 3: new z positions, y and x on the refined lattice.
		for z := h; z < nz; z += s {
			for y := 0; y < ny; y += h {
				for x := 0; x < nx; x += h {
					fn(z, y, x, interp(z, y, x, 1, 0, 0, z, nz, h))
				}
			}
		}
	}
}

// CompressVolume encodes vol with the native 3D hierarchy.
func (c *SZInterp3D) CompressVolume(vol *grid.Volume, eps float64) ([]byte, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("szinterp3d: error bound must be positive, got %g", eps)
	}
	q := quant.New(eps, c.Radius)
	nz, ny, nx := vol.NZ, vol.NY, vol.NX
	recon := make([]float64, len(vol.Data))
	anchor := vol.Data[0]
	recon[0] = anchor
	codes := make([]uint32, 0, len(vol.Data))
	var outliers []float64
	szinterp3dVisit(recon, nz, ny, nx, func(z, y, x int, pred float64) {
		i := (z*ny+y)*nx + x
		v := vol.Data[i]
		code, ok := q.Quantize(v - pred)
		if !ok {
			codes = append(codes, quant.OutlierCode)
			outliers = append(outliers, v)
			recon[i] = v
			return
		}
		codes = append(codes, code)
		recon[i] = pred + q.Dequantize(code)
	})
	hblob, _ := huffman.Encode(codes)
	var w wbuf
	w.Write(vol3dMagic)
	w.putUvarint(uint64(nz))
	w.putUvarint(uint64(ny))
	w.putUvarint(uint64(nx))
	var payload wbuf
	payload.putFloat(eps)
	payload.putUvarint(uint64(q.Radius()))
	payload.putFloat(anchor)
	payload.putUvarint(uint64(len(hblob)))
	payload.Write(hblob)
	payload.putUvarint(uint64(len(outliers)))
	payload.putFloats(outliers)
	comp := deflate(payload.Bytes())
	w.putUvarint(uint64(len(comp)))
	w.Write(comp)
	return w.Bytes(), nil
}

// DecompressVolume reverses CompressVolume.
func (c *SZInterp3D) DecompressVolume(data []byte) (*grid.Volume, error) {
	if len(data) < len(vol3dMagic) || string(data[:len(vol3dMagic)]) != string(vol3dMagic) {
		return nil, fmt.Errorf("%w: bad 3d magic", ErrCorrupt)
	}
	r := newRbuf(data[len(vol3dMagic):])
	nz64, err := r.getUvarint()
	if err != nil {
		return nil, ErrCorrupt
	}
	ny64, err := r.getUvarint()
	if err != nil {
		return nil, ErrCorrupt
	}
	nx64, err := r.getUvarint()
	if err != nil {
		return nil, ErrCorrupt
	}
	if nz64 == 0 || ny64 == 0 || nx64 == 0 || nz64*ny64*nx64 > 1<<24 {
		return nil, ErrCorrupt
	}
	clen, err := r.getUvarint()
	if err != nil || clen > uint64(r.Len()) {
		return nil, ErrCorrupt
	}
	comp := make([]byte, clen)
	if _, err := r.Read(comp); err != nil {
		return nil, ErrCorrupt
	}
	payload, err := inflate(comp)
	if err != nil {
		return nil, err
	}
	pr := newRbuf(payload)
	eps, err := pr.getFloat()
	if err != nil {
		return nil, ErrCorrupt
	}
	radius, err := pr.getUvarint()
	if err != nil {
		return nil, ErrCorrupt
	}
	anchor, err := pr.getFloat()
	if err != nil {
		return nil, ErrCorrupt
	}
	hlen, err := pr.getUvarint()
	if err != nil || hlen > uint64(pr.Len()) {
		return nil, ErrCorrupt
	}
	hblob := make([]byte, hlen)
	if _, err := pr.Read(hblob); err != nil {
		return nil, ErrCorrupt
	}
	codes, err := huffman.Decode(hblob)
	if err != nil {
		return nil, fmt.Errorf("szinterp3d: %w", err)
	}
	nout, err := pr.getUvarint()
	if err != nil {
		return nil, ErrCorrupt
	}
	outliers, err := pr.getFloats(int(nout))
	if err != nil {
		return nil, ErrCorrupt
	}
	nz, ny, nx := int(nz64), int(ny64), int(nx64)
	q := quant.New(eps, int(radius))
	vol := grid.NewVolume(nz, ny, nx)
	vol.Data[0] = anchor
	ci, oi := 0, 0
	var decodeErr error
	szinterp3dVisit(vol.Data, nz, ny, nx, func(z, y, x int, pred float64) {
		if decodeErr != nil {
			return
		}
		if ci >= len(codes) {
			decodeErr = ErrCorrupt
			return
		}
		code := codes[ci]
		ci++
		i := (z*ny+y)*nx + x
		if code == quant.OutlierCode {
			if oi >= len(outliers) {
				decodeErr = ErrCorrupt
				return
			}
			vol.Data[i] = outliers[oi]
			oi++
			return
		}
		vol.Data[i] = pred + q.Dequantize(code)
	})
	if decodeErr != nil {
		return nil, decodeErr
	}
	return vol, nil
}
