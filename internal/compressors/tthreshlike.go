package compressors

import (
	"fmt"
	"math"

	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/linalg"
)

// TThreshLike is the TThresh-family compressor: each tile is decomposed
// with a singular value decomposition and truncated to the smallest rank
// whose certified reconstruction — including the float32 quantization of
// the stored factors — satisfies the error bound. Mirroring the real
// TThresh (§II), it is slow but highly effective on data with low-rank
// spatial structure.
type TThreshLike struct {
	// Tile is the square tile edge (default 32).
	Tile int
}

// NewTThreshLike returns a TThresh-family compressor with default
// parameters.
func NewTThreshLike() *TThreshLike { return &TThreshLike{Tile: 32} }

// Name implements Compressor.
func (c *TThreshLike) Name() string { return "tthreshlike" }

// Compress implements Compressor.
func (c *TThreshLike) Compress(buf *grid.Buffer, eps float64) ([]byte, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("tthreshlike: error bound must be positive, got %g", eps)
	}
	t := c.Tile
	if t <= 0 {
		t = 32
	}
	rows, cols := buf.Rows, buf.Cols
	var w wbuf
	w.putFloat(eps)
	w.putUvarint(uint64(t))
	for r0 := 0; r0 < rows; r0 += t {
		for c0 := 0; c0 < cols; c0 += t {
			r1, c1 := minInt(r0+t, rows), minInt(c0+t, cols)
			encodeSVDTile(&w, buf, r0, c0, r1, c1, eps)
		}
	}
	return sealStream(tagTThresh, rows, cols, w.Bytes()), nil
}

// encodeSVDTile writes one tile: mode 0 = truncated SVD, mode 1 = raw.
func encodeSVDTile(w *wbuf, buf *grid.Buffer, r0, c0, r1, c1 int, eps float64) {
	h, wd := r1-r0, c1-c0
	a := linalg.NewMatrix(h, wd)
	var mean float64
	for i := 0; i < h; i++ {
		for j := 0; j < wd; j++ {
			v := buf.At(r0+i, c0+j)
			a.Set(i, j, v)
			mean += v
		}
	}
	mean /= float64(h * wd)
	mean = float64(float32(mean)) // stored precision
	for i := 0; i < h; i++ {
		for j := 0; j < wd; j++ {
			a.Add(i, j, -mean)
		}
	}

	// Right singular vectors and values via the Gram matrix.
	gram := linalg.NewMatrix(wd, wd)
	for i := 0; i < h; i++ {
		gram.AddOuter(a.Row(i), 1)
	}
	vals, vecs := linalg.SymEigen(gram)

	maxRank := minInt(h, wd)
	// u_k = A v_k / σ_k; quantize factors to float32 and certify ranks
	// incrementally.
	us := make([][]float64, 0, maxRank)
	vs := make([][]float64, 0, maxRank)
	sigs := make([]float64, 0, maxRank)
	rec := make([]float64, h*wd)
	okRank := -1
	for k := 0; k < maxRank; k++ {
		sigma := math.Sqrt(math.Max(vals[k], 0))
		if sigma == 0 {
			// Remaining energy is zero; certification below decides.
			break
		}
		v := make([]float64, wd)
		for j := 0; j < wd; j++ {
			v[j] = float64(float32(vecs.At(j, k)))
		}
		u := make([]float64, h)
		for i := 0; i < h; i++ {
			var s float64
			arow := a.Row(i)
			for j := 0; j < wd; j++ {
				s += arow[j] * vecs.At(j, k)
			}
			u[i] = float64(float32(s / sigma))
		}
		sq := float64(float32(sigma))
		us, vs, sigs = append(us, u), append(vs, v), append(sigs, sq)
		for i := 0; i < h; i++ {
			for j := 0; j < wd; j++ {
				rec[i*wd+j] += sq * u[i] * v[j]
			}
		}
		if tileCertified(a, rec, eps) {
			okRank = k + 1
			break
		}
	}
	if okRank < 0 && tileCertified(a, rec, eps) {
		okRank = len(sigs) // zero-residual tile (e.g. constant)
	}
	// Compare encoded sizes: SVD payload vs raw; keep the smaller or fall
	// back when certification failed.
	svdBytes := 4 * okRank * (h + wd + 1)
	if okRank < 0 || svdBytes >= 8*h*wd {
		w.putByte(1)
		for i := 0; i < h; i++ {
			for j := 0; j < wd; j++ {
				w.putFloat(buf.At(r0+i, c0+j))
			}
		}
		return
	}
	w.putByte(0)
	w.putFloat(mean)
	w.putUvarint(uint64(okRank))
	for k := 0; k < okRank; k++ {
		w.putUvarint(uint64(math.Float32bits(float32(sigs[k]))))
		for _, x := range us[k] {
			w.putUvarint(uint64(math.Float32bits(float32(x))))
		}
		for _, x := range vs[k] {
			w.putUvarint(uint64(math.Float32bits(float32(x))))
		}
	}
}

func tileCertified(a *linalg.Matrix, rec []float64, eps float64) bool {
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		for j := 0; j < a.Cols; j++ {
			if math.Abs(arow[j]-rec[i*a.Cols+j]) > eps {
				return false
			}
		}
	}
	return true
}

// Decompress implements Compressor.
func (c *TThreshLike) Decompress(data []byte) (*grid.Buffer, error) {
	rows, cols, payload, err := openStream(tagTThresh, data)
	if err != nil {
		return nil, err
	}
	r := newRbuf(payload)
	if _, err := r.getFloat(); err != nil { // eps, informational
		return nil, ErrCorrupt
	}
	t64, err := r.getUvarint()
	if err != nil || t64 == 0 {
		return nil, ErrCorrupt
	}
	t := int(t64)
	out := grid.NewBuffer(rows, cols)
	for r0 := 0; r0 < rows; r0 += t {
		for c0 := 0; c0 < cols; c0 += t {
			r1, c1 := minInt(r0+t, rows), minInt(c0+t, cols)
			h, wd := r1-r0, c1-c0
			mode, err := r.getByte()
			if err != nil {
				return nil, ErrCorrupt
			}
			switch mode {
			case 1:
				for i := 0; i < h; i++ {
					for j := 0; j < wd; j++ {
						v, err := r.getFloat()
						if err != nil {
							return nil, ErrCorrupt
						}
						out.Set(r0+i, c0+j, v)
					}
				}
			case 0:
				mean, err := r.getFloat()
				if err != nil {
					return nil, ErrCorrupt
				}
				rank64, err := r.getUvarint()
				if err != nil || rank64 > uint64(minInt(h, wd)) {
					return nil, ErrCorrupt
				}
				rec := make([]float64, h*wd)
				for k := 0; k < int(rank64); k++ {
					sig, err := readF32(r)
					if err != nil {
						return nil, ErrCorrupt
					}
					u := make([]float64, h)
					for i := range u {
						if u[i], err = readF32(r); err != nil {
							return nil, ErrCorrupt
						}
					}
					v := make([]float64, wd)
					for j := range v {
						if v[j], err = readF32(r); err != nil {
							return nil, ErrCorrupt
						}
					}
					for i := 0; i < h; i++ {
						for j := 0; j < wd; j++ {
							rec[i*wd+j] += sig * u[i] * v[j]
						}
					}
				}
				for i := 0; i < h; i++ {
					for j := 0; j < wd; j++ {
						out.Set(r0+i, c0+j, rec[i*wd+j]+mean)
					}
				}
			default:
				return nil, ErrCorrupt
			}
		}
	}
	return out, nil
}

func readF32(r *rbuf) (float64, error) {
	u, err := r.getUvarint()
	if err != nil {
		return 0, err
	}
	return float64(math.Float32frombits(uint32(u))), nil
}
