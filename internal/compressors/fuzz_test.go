package compressors

import (
	"math"
	"testing"

	"github.com/crestlab/crest/internal/grid"
)

// fuzz_test.go hardens every decoder against corrupt input: decompression
// of arbitrary bytes must return an error or a valid buffer — never panic
// and never allocate absurdly. The seed corpus holds real streams from
// each compressor so mutation explores near-valid inputs.

func fuzzSeeds(f *testing.F) {
	buf := grid.NewBuffer(12, 10)
	for i := range buf.Data {
		buf.Data[i] = math.Sin(float64(i) / 5)
	}
	for _, name := range Names() {
		c := MustNew(name)
		blob, err := c.Compress(buf, 1e-3)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte{})
	f.Add([]byte{0x51, 0x00})
}

func fuzzDecoder(f *testing.F, name string) {
	fuzzSeeds(f)
	c := MustNew(name)
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := c.Decompress(data)
		if err == nil {
			if dec == nil || dec.Rows <= 0 || dec.Cols <= 0 || len(dec.Data) != dec.Rows*dec.Cols {
				t.Fatalf("accepted stream yielded invalid buffer %+v", dec)
			}
		}
	})
}

func FuzzDecompressSZLorenzo(f *testing.F)   { fuzzDecoder(f, "szlorenzo") }
func FuzzDecompressSZInterp(f *testing.F)    { fuzzDecoder(f, "szinterp") }
func FuzzDecompressZFPLike(f *testing.F)     { fuzzDecoder(f, "zfplike") }
func FuzzDecompressBitGroom(f *testing.F)    { fuzzDecoder(f, "bitgroom") }
func FuzzDecompressDigitRound(f *testing.F)  { fuzzDecoder(f, "digitround") }
func FuzzDecompressSperrLike(f *testing.F)   { fuzzDecoder(f, "sperrlike") }
func FuzzDecompressTThreshLike(f *testing.F) { fuzzDecoder(f, "tthreshlike") }
func FuzzDecompressMGARDLike(f *testing.F)   { fuzzDecoder(f, "mgardlike") }

func FuzzDecompressVolume(f *testing.F) {
	vol := grid.NewVolume(2, 8, 8)
	for i := range vol.Data {
		vol.Data[i] = float64(i % 7)
	}
	c := MustNew("szinterp")
	blob, err := CompressVolume(c, vol, 1e-3, 1)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte("CRVL1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if v, err := DecompressVolume(c, data, 1); err == nil {
			if v == nil || v.NZ <= 0 || len(v.Data) != v.NZ*v.NY*v.NX {
				t.Fatalf("accepted stream yielded invalid volume")
			}
		}
	})
}
