package compressors

import (
	"fmt"
	"math"

	"github.com/crestlab/crest/internal/grid"
)

// DigitRound combines decimal rounding with lossless coding (§II): values
// are rounded to the largest power of ten whose half-step fits inside the
// error bound, stored as zig-zag delta varints of the rounded integers and
// DEFLATE-compressed. Values the decimal grid cannot certify (overflow,
// float round-off past the bound, NaN) escape to exact storage.
type DigitRound struct{}

// NewDigitRound returns a DigitRounding-style compressor.
func NewDigitRound() *DigitRound { return &DigitRound{} }

// Name implements Compressor.
func (c *DigitRound) Name() string { return "digitround" }

const drEscape = int64(math.MinInt64) // reserved delta marking an exact value

// Compress implements Compressor.
func (c *DigitRound) Compress(buf *grid.Buffer, eps float64) ([]byte, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("digitround: error bound must be positive, got %g", eps)
	}
	step := math.Pow(10, math.Floor(math.Log10(2*eps)))
	// Guard against float pow landing just above 2ε.
	for step/2 > eps {
		step /= 10
	}
	var w wbuf
	w.putFloat(step)
	var prev int64
	var escapes []float64
	deltas := make([]int64, 0, len(buf.Data))
	for _, v := range buf.Data {
		q := math.Round(v / step)
		k := int64(q)
		ok := !math.IsNaN(v) && !math.IsInf(v, 0) &&
			q >= -9.0e18 && q <= 9.0e18 &&
			math.Abs(v-float64(k)*step) <= eps
		if !ok {
			deltas = append(deltas, drEscape)
			escapes = append(escapes, v)
			continue
		}
		d := k - prev
		if d == drEscape { // collision with the escape marker
			deltas = append(deltas, drEscape)
			escapes = append(escapes, v)
			continue
		}
		deltas = append(deltas, d)
		prev = k
	}
	for _, d := range deltas {
		w.putVarint(d)
	}
	w.putUvarint(uint64(len(escapes)))
	w.putFloats(escapes)
	return sealStream(tagDigitRnd, buf.Rows, buf.Cols, w.Bytes()), nil
}

// Decompress implements Compressor.
func (c *DigitRound) Decompress(data []byte) (*grid.Buffer, error) {
	rows, cols, payload, err := openStream(tagDigitRnd, data)
	if err != nil {
		return nil, err
	}
	r := newRbuf(payload)
	step, err := r.getFloat()
	if err != nil {
		return nil, ErrCorrupt
	}
	n := rows * cols
	if n > r.Len() { // each delta varint needs at least one byte
		return nil, ErrCorrupt
	}
	deltas := make([]int64, n)
	for i := range deltas {
		d, err := r.getVarint()
		if err != nil {
			return nil, ErrCorrupt
		}
		deltas[i] = d
	}
	nesc, err := r.getUvarint()
	if err != nil {
		return nil, ErrCorrupt
	}
	escapes, err := r.getFloats(int(nesc))
	if err != nil {
		return nil, ErrCorrupt
	}
	out := grid.NewBuffer(rows, cols)
	var prev int64
	ei := 0
	for i, d := range deltas {
		if d == drEscape {
			if ei >= len(escapes) {
				return nil, ErrCorrupt
			}
			out.Data[i] = escapes[ei]
			ei++
			continue
		}
		prev += d
		out.Data[i] = float64(prev) * step
	}
	return out, nil
}
