package compressors

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/crestlab/crest/internal/grid"
	"github.com/crestlab/crest/internal/parallel"
)

// volume.go extends the 2D compressors to native 3D volumes the way the
// evaluation protocol does (§VI-A1): the volume is sliced along its
// slowest dimension, slices are compressed independently (and hence in
// parallel), and the streams are packed into a small container. The
// error-bound guarantee carries over slice by slice.

// volMagic identifies a packed volume stream.
var volMagic = []byte("CRVL1")

// CompressVolume compresses vol slice-parallel with c at bound eps.
func CompressVolume(c Compressor, vol *grid.Volume, eps float64, workers int) ([]byte, error) {
	slices := vol.Slices()
	blobs := make([][]byte, len(slices))
	errs := make([]error, len(slices))
	parallel.ForEachDynamic(len(slices), workers, func(i int) {
		blobs[i], errs[i] = c.Compress(slices[i], eps)
	})
	for z, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("compressors: slice %d: %w", z, err)
		}
	}
	var out bytes.Buffer
	out.Write(volMagic)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		out.Write(tmp[:n])
	}
	put(uint64(vol.NZ))
	for _, b := range blobs {
		put(uint64(len(b)))
	}
	for _, b := range blobs {
		out.Write(b)
	}
	return out.Bytes(), nil
}

// DecompressVolume reverses CompressVolume.
func DecompressVolume(c Compressor, data []byte, workers int) (*grid.Volume, error) {
	if len(data) < len(volMagic) || !bytes.Equal(data[:len(volMagic)], volMagic) {
		return nil, fmt.Errorf("%w: bad volume magic", ErrCorrupt)
	}
	r := bytes.NewReader(data[len(volMagic):])
	nz64, err := binary.ReadUvarint(r)
	if err != nil || nz64 == 0 || nz64 > 1<<20 {
		return nil, ErrCorrupt
	}
	nz := int(nz64)
	sizes := make([]uint64, nz)
	var total uint64
	for i := range sizes {
		if sizes[i], err = binary.ReadUvarint(r); err != nil {
			return nil, ErrCorrupt
		}
		total += sizes[i]
	}
	if total > uint64(r.Len()) {
		return nil, ErrCorrupt
	}
	payload := make([]byte, total)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, ErrCorrupt
	}
	blobs := make([][]byte, nz)
	var off uint64
	for i, s := range sizes {
		blobs[i] = payload[off : off+s]
		off += s
	}
	slices := make([]*grid.Buffer, nz)
	errs := make([]error, nz)
	parallel.ForEachDynamic(nz, workers, func(i int) {
		slices[i], errs[i] = c.Decompress(blobs[i])
	})
	for z, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("compressors: slice %d: %w", z, err)
		}
	}
	vol := grid.NewVolume(nz, slices[0].Rows, slices[0].Cols)
	for z, s := range slices {
		if s.Rows != vol.NY || s.Cols != vol.NX {
			return nil, fmt.Errorf("%w: slice %d shape %dx%d != %dx%d",
				ErrCorrupt, z, s.Rows, s.Cols, vol.NY, vol.NX)
		}
		copy(vol.Data[z*vol.NY*vol.NX:], s.Data)
	}
	return vol, nil
}

// RelativeBound converts a value-range-relative error bound into the
// absolute bound the compressors take: ε_abs = rel·(max−min). Real
// compressors call this mode "vrrel"; a constant buffer yields 0, which
// callers should treat as lossless-required.
func RelativeBound(buf *grid.Buffer, rel float64) float64 {
	lo, hi := buf.Range()
	return rel * (hi - lo)
}
